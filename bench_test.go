// Benchmarks regenerating the paper's tables and figures as testing.B
// targets (one per experiment) plus the DESIGN.md ablations. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers reflect this Go substrate, not the authors' testbed;
// the shapes (who wins, by what factor, where the crossover sits) are what
// EXPERIMENTS.md records against the paper.
package plsqlaway

import (
	"fmt"
	"testing"

	"plsqlaway/internal/bench"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/workload"
)

// BenchmarkTable1_Breakdown regenerates Table 1 (phase breakdown of
// interpreted PL/pgSQL) once per iteration and reports the Exec·Start share
// of walk as a custom metric.
func BenchmarkTable1_Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(bench.Table1Config{
			WalkSteps: 2_000, ParseLen: 2_000, TraverseHops: 1_000, FibN: 20_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Start+r.End, r.Name+"_ctxswitch_%")
			}
		}
	}
}

// benchWalkOnce measures one walk() invocation at the given steps through
// either the interpreter or the compiled WITH RECURSIVE form (Figure 10's
// two series).
func benchWalkOnce(b *testing.B, fn string, steps int64) {
	env, err := bench.NewEnv(profile.PostgreSQL, "walk")
	if err != nil {
		b.Fatal(err)
	}
	e := env.E
	call := fmt.Sprintf("SELECT %s(coord(2, 2), $1, $2, $3)", fn)
	args := []sqltypes.Value{
		sqltypes.NewInt(1_000_000_000), sqltypes.NewInt(-1_000_000_000), sqltypes.NewInt(steps),
	}
	e.Seed(42)
	if _, err := e.Query(call, args...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seed(42)
		if _, err := e.Query(call, args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_Walk10k_PLSQL(b *testing.B)     { benchWalkOnce(b, "walk", 10_000) }
func BenchmarkFig10_Walk10k_Recursive(b *testing.B) { benchWalkOnce(b, "walk_c", 10_000) }
func BenchmarkFig10_Walk50k_PLSQL(b *testing.B)     { benchWalkOnce(b, "walk", 50_000) }
func BenchmarkFig10_Walk50k_Recursive(b *testing.B) { benchWalkOnce(b, "walk_c", 50_000) }

// BenchmarkFig11a_WalkGrid regenerates a reduced Figure 11a grid and
// reports the best amortized cell.
func BenchmarkFig11a_WalkGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm, err := bench.Figure11(bench.Fig11Config{
			Fn:          "walk",
			Invocations: []int64{2, 16, 128},
			Iterations:  []int64{2, 16, 128},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(hm.Cells[2][2], "amortized_cell_%")
			b.ReportMetric(hm.Cells[0][0], "corner_cell_%")
		}
	}
}

// BenchmarkFig11b_ParseGrid regenerates a reduced Figure 11b grid on the
// Oracle profile.
func BenchmarkFig11b_ParseGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := bench.Figure11(bench.Fig11Config{
			Fn:          "parse",
			Profile:     profile.Oracle,
			Invocations: []int64{2, 16, 128},
			Iterations:  []int64{2, 16, 128},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_PageWrites regenerates a reduced Table 2 and reports the
// recursive form's page writes at the largest size.
func BenchmarkTable2_PageWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2([]int{2_000, 4_000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.RecursiveWrites), "recursive_page_writes")
			b.ReportMetric(float64(last.IterateWrites), "iterate_page_writes")
		}
	}
}

// Ablations (DESIGN.md A1–A5).

func benchAblation(b *testing.B, fn func(int64) ([]bench.AblationRow, error), size int64) {
	for i := 0; i < b.N; i++ {
		rows, err := fn(size)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) == 2 {
			b.ReportMetric(rows[0].Ms, "variant0_ms")
			b.ReportMetric(rows[1].Ms, "variant1_ms")
		}
	}
}

func BenchmarkAblation_Dialect(b *testing.B)   { benchAblation(b, bench.AblationDialect, 2_000) }
func BenchmarkAblation_SSAOpt(b *testing.B)    { benchAblation(b, bench.AblationSSAOpt, 2_000) }
func BenchmarkAblation_FastPath(b *testing.B)  { benchAblation(b, bench.AblationFastPath, 20_000) }
func BenchmarkAblation_PlanCache(b *testing.B) { benchAblation(b, bench.AblationPlanCache, 1_000) }
func BenchmarkAblation_Iterate(b *testing.B)   { benchAblation(b, bench.AblationIterate, 5_000) }

// BenchmarkCompile measures the compiler pipeline itself (not an experiment
// in the paper, but the cost a DBA would pay at CREATE FUNCTION time).
func BenchmarkCompile_Walk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(workload.WalkSrc, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine_RecursiveCTE measures the raw recursive-CTE machinery:
// one counting loop per iteration.
func BenchmarkEngine_RecursiveCTE(b *testing.B) {
	e := NewEngine()
	q := "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 1000) SELECT max(n) FROM r"
	if _, err := e.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterp_Fib measures pure interpreter statement dispatch (no
// embedded queries, fast path only).
func BenchmarkInterp_Fib(b *testing.B) {
	e := NewEngine()
	if err := e.Exec(workload.FibSrc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query("SELECT fibonacci($1)", Int(1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSize sweeps the vectorized executor's tuples-per-batch
// knob over the WITH RECURSIVE graphtraverse workload (a frontier
// expansion over the successor graph whose recursive term is a hash join
// probing the static edges table). Batch size 1 is tuple-at-a-time Volcano
// iteration; the win comes from amortizing per-call dispatch and
// evaluating expressions operator-at-a-time over whole batches.
//
// Measured on the CI container (GOMAXPROCS=1): throughput jumps ≈1.5×
// over batch size 1 across a flat plateau from 64 to 1024 rows per batch,
// then falls off as working batches and their scratch columns outgrow
// cache. 256 is the default (exec.DefaultBatchSize): mid-plateau, with
// headroom in both directions.
func BenchmarkBatchSize(b *testing.B) {
	for _, size := range []int{1, 64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			e := NewEngine(WithSeed(42), WithBatchSize(size), WithWorkMem(256<<20))
			if err := workload.InstallGraph(e, 4096, 3); err != nil {
				b.Fatal(err)
			}
			q := bench.GraphTraverseQuery(16, 8)
			res, err := e.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			rows := res.Rows[0][0].Int()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

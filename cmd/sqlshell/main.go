// sqlshell is a minimal shell for the plsqlaway engine: it executes SQL
// script files and/or reads statements from stdin, printing result
// tables. PL/pgSQL functions work (CREATE FUNCTION … LANGUAGE plpgsql),
// and the meta-command \compile <fn> compiles a registered function away
// and installs it as <fn>_c.
//
// By default the shell embeds an engine in-process. With -connect it
// becomes a remote client of a running plsqld, speaking the wire
// protocol through the client package — same statements, same output.
//
// Usage:
//
//	sqlshell [-profile postgres|oracle|sqlite] [-seed N]
//	         [-connect host:port] [script.sql…]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"plsqlaway/client"
	"plsqlaway/internal/catalog"
	"plsqlaway/internal/core"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/obs"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/sqlast"
)

// backend abstracts the local engine and the remote connection so the
// REPL is identical either way.
type backend interface {
	// Run executes a statement or script, dispatching query-vs-script
	// itself (so a failing statement is never re-executed by a fallback),
	// and returns the formatted result table ("" when no rows came back).
	Run(sql string) (string, error)
	// Meta handles a backslash command. quit=true exits the shell.
	Meta(cmd string) (quit bool)
	// Notices drains pending RAISE NOTICE output.
	Notices() []string
}

func main() {
	profName := flag.String("profile", "postgres", "engine profile: postgres, oracle, or sqlite")
	seed := flag.Uint64("seed", 42, "random() seed")
	connect := flag.String("connect", "", "connect to a plsqld at host:port instead of embedding an engine")
	flag.Parse()

	var b backend
	if *connect != "" {
		// The engine profile lives server-side; a -profile here would be
		// silently ignored, so reject the combination outright.
		profileSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "profile" {
				profileSet = true
			}
		})
		if profileSet {
			fatal(fmt.Errorf("-profile has no effect with -connect: the profile is chosen by the plsqld server"))
		}
		c, err := client.Dial(*connect, client.WithSeed(*seed))
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		fmt.Printf("connected to %s (%s)\n", *connect, c.Server)
		b = &remoteBackend{c: c}
	} else {
		prof, err := profile.ByName(*profName)
		if err != nil {
			fatal(err)
		}
		// The embedded engine publishes into a private metrics registry so
		// \stats can summarize latency distributions (p50/p95/p99).
		reg := obs.NewRegistry()
		e := engine.New(engine.WithProfile(prof), engine.WithSeed(*seed), engine.WithMetricsRegistry(reg))
		b = &localBackend{e: e, s: e.NewSession(), reg: reg}
	}

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if err := runScript(b, string(src)); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}

	if fi, _ := os.Stdin.Stat(); flag.NArg() == 0 || fi.Mode()&os.ModeCharDevice != 0 {
		repl(b)
	}
}

// runScript executes a file, printing rows if it was a single query.
func runScript(b backend, src string) error {
	out, err := b.Run(src)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func repl(b backend) {
	fmt.Println("plsqlaway shell — end statements with ';', meta: \\compile <fn>, \\tables, \\functions, \\q")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if b.Meta(trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			stmt := buf.String()
			buf.Reset()
			out, err := b.Run(stmt)
			if err != nil {
				fmt.Println("error:", err)
			} else if out != "" {
				fmt.Print(out)
			} else {
				fmt.Println("ok")
			}
			for _, n := range b.Notices() {
				fmt.Println("NOTICE:", n)
			}
		}
		prompt()
	}
}

// ---------------------------------------------------------------------------
// local backend: the embedded engine
// ---------------------------------------------------------------------------

type localBackend struct {
	e   *engine.Engine
	s   *engine.Session // the shell's one session: seed, notices, counters
	reg *obs.Registry   // the engine's metrics registry, for \stats
}

func (b *localBackend) Run(sql string) (string, error) {
	res, err := b.s.Run(sql)
	if err != nil {
		return "", err
	}
	if res == nil {
		return "", nil
	}
	return res.Format(), nil
}

func (b *localBackend) Notices() []string {
	return b.s.DrainNotices()
}

func (b *localBackend) Meta(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\tables":
		for _, t := range b.e.Catalog().TableNames() {
			fmt.Println(t)
		}
	case "\\functions":
		for _, f := range b.e.Catalog().FunctionNames() {
			fn, _ := b.e.Catalog().Function(f)
			fmt.Printf("%s (%s)\n", f, fn.Kind)
		}
	case "\\compile":
		if len(fields) < 2 {
			fmt.Println("usage: \\compile <function>")
			return false
		}
		if err := compileAway(b.e, fields[1]); err != nil {
			fmt.Println("error:", err)
		}
	case "\\stats":
		st := b.e.StorageStats()
		fmt.Printf("storage  page writes %d · tuples written %d · commits %d · vacuums %d (reclaimed %d)\n",
			st.PageWrites, st.TuplesWritten, st.Commits, st.Vacuums, st.VersionsReclaimed)
		printHistogramSummaries(b.reg)
	default:
		fmt.Println("unknown meta command", fields[0])
	}
	return false
}

// printHistogramSummaries renders every histogram family in the registry
// as one quantile-summary line per series — p50/p95/p99 instead of the
// raw bucket dump, the shape an operator actually reads at the shell.
func printHistogramSummaries(reg *obs.Registry) {
	for _, m := range reg.Gather() {
		if m.Type != "histogram" {
			continue
		}
		seconds := strings.HasSuffix(m.Name, "_seconds")
		for _, s := range m.Samples {
			if s.Count == nil || *s.Count == 0 || s.P50 == nil {
				continue
			}
			name := m.Name
			if s.Label != "" {
				name += "{" + m.Label + "=" + s.Label + "}"
			}
			if seconds {
				fmt.Printf("%-34s count %d · p50 %s · p95 %s · p99 %s\n",
					name, *s.Count, fmtSeconds(*s.P50), fmtSeconds(*s.P95), fmtSeconds(*s.P99))
			} else {
				fmt.Printf("%-34s count %d · p50 %.1f · p95 %.1f · p99 %.1f\n",
					name, *s.Count, *s.P50, *s.P95, *s.P99)
			}
		}
	}
}

func fmtSeconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// compileAway compiles a registered PL/pgSQL function and installs the
// pure-SQL twin as <name>_c.
func compileAway(e *engine.Engine, name string) error {
	fn, ok := e.Catalog().Function(name)
	if !ok {
		return fmt.Errorf("function %q not found", name)
	}
	if fn.Kind != catalog.FuncPLpgSQL {
		return fmt.Errorf("function %q is %s, not plpgsql", name, fn.Kind)
	}
	res, err := core.CompileFunction(fn.PL, core.Options{})
	if err != nil {
		return err
	}
	if err := e.InstallCompiled(name+"_c", res.Params, res.ReturnType, res.Query); err != nil {
		return err
	}
	fmt.Printf("installed %s_c; emitted SQL:\n%s\n", name, sqlast.DeparseQuery(res.Query))
	return nil
}

// ---------------------------------------------------------------------------
// remote backend: a plsqld connection
// ---------------------------------------------------------------------------

type remoteBackend struct {
	c *client.Conn
}

// Run sends the text as one simple-query frame; the server dispatches
// query vs script, so no client-side fallback re-executes anything.
func (b *remoteBackend) Run(sql string) (string, error) {
	res, err := b.c.Query(sql)
	if err != nil {
		return "", err
	}
	if res == nil {
		return "", nil
	}
	return res.Format(), nil
}

// Notices drains the NOTICE messages the server streamed with the last
// responses (RAISE NOTICE output, transaction-control warnings).
func (b *remoteBackend) Notices() []string { return b.c.Notices() }

func (b *remoteBackend) Meta(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\seed":
		if len(fields) < 2 {
			fmt.Println("usage: \\seed <n>")
			return false
		}
		var n uint64
		if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil {
			fmt.Println("error:", err)
			return false
		}
		if err := b.c.Seed(n); err != nil {
			fmt.Println("error:", err)
		}
	case "\\stats":
		st, err := b.c.Stats()
		if err != nil {
			// A dead connection fails fast (client.ErrClosed) instead of
			// hanging on a round-trip the server will never answer.
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("storage  page writes %d · pages alloc %d · tuples written %d · commits %d · vacuums %d (reclaimed %d)\n",
			st.PageWrites, st.PagesAlloc, st.TuplesWritten, st.Commits, st.Vacuums, st.VersionsReclaimed)
		if st.WALRecords > 0 || st.Checkpoints > 0 {
			fmt.Printf("wal      records %d (%d bytes) · fsyncs %d · checkpoints %d\n",
				st.WALRecords, st.WALBytes, st.WALFsyncs, st.Checkpoints)
		}
		if st.Legacy {
			fmt.Printf("plans    inlined %d · specialized %d · evictions %d\n",
				st.Plans.PlansInlined, st.Plans.SpecializedPlans, st.Plans.CacheEvictions)
		} else {
			fmt.Printf("plans    inlined %d · specialized %d · evictions %d · cache hits %d misses %d\n",
				st.Plans.PlansInlined, st.Plans.SpecializedPlans, st.Plans.CacheEvictions,
				st.Plans.CacheHits, st.Plans.CacheMisses)
			fmt.Printf("server   active connections %d\n", st.ActiveConns)
		}
	default:
		fmt.Printf("meta command %s is not available over -connect (try \\seed, \\stats, \\q)\n", fields[0])
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlshell:", err)
	os.Exit(1)
}

// sqlshell is a minimal shell for the embedded engine: it executes SQL
// script files and/or reads statements from stdin, printing result tables.
// PL/pgSQL functions work (CREATE FUNCTION … LANGUAGE plpgsql), and the
// meta-command \compile <fn> compiles a registered function away and
// installs it as <fn>_c.
//
// Usage:
//
//	sqlshell [-profile postgres|oracle|sqlite] [-seed N] [script.sql…]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"plsqlaway/internal/catalog"
	"plsqlaway/internal/core"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/plast"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/sqlast"
)

func main() {
	profName := flag.String("profile", "postgres", "engine profile: postgres, oracle, or sqlite")
	seed := flag.Uint64("seed", 42, "random() seed")
	flag.Parse()

	prof, err := profile.ByName(*profName)
	if err != nil {
		fatal(err)
	}
	e := engine.New(engine.WithProfile(prof), engine.WithSeed(*seed))

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if err := runScript(e, string(src)); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}

	if fi, _ := os.Stdin.Stat(); flag.NArg() == 0 || fi.Mode()&os.ModeCharDevice != 0 {
		repl(e)
	}
}

// runScript executes each statement, printing query results.
func runScript(e *engine.Engine, src string) error {
	res, err := e.Query(src)
	if err == nil {
		if res != nil {
			fmt.Print(res.Format())
		}
		return nil
	}
	// Not a single query — run as a script.
	return e.Exec(src)
}

func repl(e *engine.Engine) {
	fmt.Println("plsqlaway shell — end statements with ';', meta: \\compile <fn>, \\tables, \\functions, \\q")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !meta(e, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			stmt := buf.String()
			buf.Reset()
			res, err := e.Query(stmt)
			if err != nil {
				// DDL/DML path
				if err2 := e.Exec(stmt); err2 != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Println("ok")
				}
			} else if res != nil {
				fmt.Print(res.Format())
			}
			for _, n := range e.Counters().Notices {
				fmt.Println("NOTICE:", n)
			}
			e.Counters().Notices = nil
		}
		prompt()
	}
}

// meta handles backslash commands; returns false to quit.
func meta(e *engine.Engine, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\tables":
		for _, t := range e.Catalog().TableNames() {
			fmt.Println(t)
		}
	case "\\functions":
		for _, f := range e.Catalog().FunctionNames() {
			fn, _ := e.Catalog().Function(f)
			fmt.Printf("%s (%s)\n", f, fn.Kind)
		}
	case "\\compile":
		if len(fields) < 2 {
			fmt.Println("usage: \\compile <function>")
			return true
		}
		if err := compileAway(e, fields[1]); err != nil {
			fmt.Println("error:", err)
		}
	default:
		fmt.Println("unknown meta command", fields[0])
	}
	return true
}

// compileAway compiles a registered PL/pgSQL function and installs the
// pure-SQL twin as <name>_c.
func compileAway(e *engine.Engine, name string) error {
	fn, ok := e.Catalog().Function(name)
	if !ok {
		return fmt.Errorf("function %q not found", name)
	}
	if fn.Kind != catalog.FuncPLpgSQL {
		return fmt.Errorf("function %q is %s, not plpgsql", name, fn.Kind)
	}
	res, err := core.CompileFunction(fn.PL, core.Options{})
	if err != nil {
		return err
	}
	if err := e.InstallCompiled(name+"_c", res.Params, res.ReturnType, res.Query); err != nil {
		return err
	}
	fmt.Printf("installed %s_c; emitted SQL:\n%s\n", name, sqlast.DeparseQuery(res.Query))
	var _ []plast.Param = res.Params
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlshell:", err)
	os.Exit(1)
}

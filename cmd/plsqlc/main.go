// plsqlc is the PL/SQL-away compiler CLI: it reads a CREATE FUNCTION …
// LANGUAGE plpgsql statement (file or stdin) and emits any stage of the
// paper's pipeline.
//
// Usage:
//
//	plsqlc [-emit cfg|ssa|anf|udf|sql|all] [-dialect postgres|sqlite]
//	       [-iterate] [-no-optimize] [file.sql]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"plsqlaway/internal/core"
	"plsqlaway/internal/udf"
)

func main() {
	emit := flag.String("emit", "sql", "stage to print: cfg, ssa, anf, udf, sql, or all")
	dialect := flag.String("dialect", "postgres", "emitted SQL dialect: postgres (LATERAL) or sqlite (no LATERAL)")
	iterate := flag.Bool("iterate", false, "emit WITH ITERATE instead of WITH RECURSIVE")
	noOpt := flag.Bool("no-optimize", false, "skip the SSA optimization passes")
	forceCTE := flag.Bool("force-cte", false, "use the recursive template even for loop-less functions")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}

	opt := core.Options{Iterate: *iterate, NoOptimize: *noOpt, ForceCTE: *forceCTE}
	switch strings.ToLower(*dialect) {
	case "postgres", "postgresql", "pg":
		opt.Dialect = udf.DialectPostgres
	case "sqlite", "sqlite3":
		opt.Dialect = udf.DialectSQLite
	default:
		fatal(fmt.Errorf("unknown dialect %q", *dialect))
	}

	res, err := core.Compile(string(src), opt)
	if err != nil {
		fatal(err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}

	stages := strings.Split(strings.ToLower(*emit), ",")
	if *emit == "all" {
		stages = []string{"cfg", "ssa", "anf", "udf", "sql"}
	}
	for i, stage := range stages {
		if len(stages) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("-- ======== %s ========\n", strings.ToUpper(stage))
		}
		switch strings.TrimSpace(stage) {
		case "cfg":
			fmt.Print(res.CFG.Dump())
		case "ssa":
			fmt.Print(res.SSA.Dump())
		case "anf":
			fmt.Print(res.ANF.Dump())
		case "udf":
			sql, err := res.UDF.SQL()
			if err != nil {
				fatal(err)
			}
			fmt.Println(sql)
		case "sql":
			fmt.Println(res.SQL + ";")
		default:
			fatal(fmt.Errorf("unknown stage %q (want cfg, ssa, anf, udf, sql, all)", stage))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plsqlc:", err)
	os.Exit(1)
}

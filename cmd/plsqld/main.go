// plsqld serves an embedded plsqlaway engine over TCP using the wire
// protocol: one session per connection, pipelined request execution, and
// graceful drain on SIGINT/SIGTERM. The client package (and
// sqlshell -connect, benchrunner -addr) speak to it.
//
// Usage:
//
//	plsqld [-addr host:port] [-profile postgres|oracle|sqlite] [-seed N]
//	       [-batchsize N] [-data-dir DIR] [-sync off|batched|commit]
//	       [-metrics-addr host:port] [-slow-query-ms N]
//	       [-checkpoint-bytes N] [-verbose]
//
// The daemon starts with an empty catalog; remote clients install
// schemas and functions over the wire (CREATE TABLE / CREATE FUNCTION …
// LANGUAGE plpgsql or sql), exactly as an embedded engine would.
//
// With -data-dir the engine is durable: commits append to a write-ahead
// log in DIR, boot replays the checkpoint + log (recovering everything
// acknowledged before a crash), and graceful shutdown checkpoints.
// Without it the engine is volatile, as before. -checkpoint-bytes makes
// the engine checkpoint automatically once the log outgrows the bound.
//
// With -metrics-addr the daemon serves the engine's metrics registry in
// Prometheus text format at /metrics, plus net/http/pprof under
// /debug/pprof/, on a separate HTTP listener. -slow-query-ms logs every
// statement that crosses the threshold, with phase timings and the
// plan's shape counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/obs"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/server"
	"plsqlaway/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5455", "TCP listen address")
	profName := flag.String("profile", "postgres", "engine profile: postgres, oracle, or sqlite")
	seed := flag.Uint64("seed", 42, "default random() seed for new sessions")
	batchSize := flag.Int("batchsize", 0, "executor batch size (0 = engine default)")
	dataDir := flag.String("data-dir", "", "durable data directory (empty = volatile engine)")
	syncFlag := flag.String("sync", "batched", "WAL sync mode: off, batched (group commit), or commit")
	drain := flag.Duration("drain", 10*time.Second, "max time to drain connections on shutdown")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics and /debug/pprof (empty = off)")
	slowQueryMS := flag.Int64("slow-query-ms", 0, "log statements slower than this many milliseconds (0 = off)")
	checkpointBytes := flag.Int64("checkpoint-bytes", 0, "auto-checkpoint once the WAL exceeds this many bytes (0 = off)")
	verbose := flag.Bool("verbose", false, "log per-connection diagnostics")
	flag.Parse()

	prof, err := profile.ByName(*profName)
	if err != nil {
		fatal(err)
	}
	syncMode, err := wal.ParseSyncMode(*syncFlag)
	if err != nil {
		fatal(err)
	}
	opts := []engine.Option{
		engine.WithProfile(prof),
		engine.WithSeed(*seed),
		engine.WithSyncMode(syncMode),
	}
	if *batchSize > 0 {
		opts = append(opts, engine.WithBatchSize(*batchSize))
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
		opts = append(opts, engine.WithMetricsRegistry(reg))
	}
	if *slowQueryMS > 0 {
		opts = append(opts, engine.WithSlowQuery(time.Duration(*slowQueryMS)*time.Millisecond, log.Printf))
	}
	if *checkpointBytes > 0 {
		opts = append(opts, engine.WithCheckpointBytes(*checkpointBytes))
	}
	e, err := engine.Open(*dataDir, opts...)
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		log.Printf("plsqld: durable data dir %s (sync=%s)", *dataDir, syncMode)
	}

	if reg != nil {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		msrv := &http.Server{Handler: obs.NewMux(reg)}
		go func() {
			if err := msrv.Serve(mln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("plsqld: metrics listener: %v", err)
			}
		}()
		defer msrv.Close()
		log.Printf("plsqld: metrics on http://%s/metrics (pprof under /debug/pprof/)", mln.Addr())
	}

	srvOpts := server.Options{Banner: fmt.Sprintf("plsqlaway (%s)", prof.Name)}
	if *verbose {
		srvOpts.Logf = log.Printf
	}
	srv := server.New(e, srvOpts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("plsqld: serving profile %s on %s", prof.Name, ln.Addr())

	// Serve returns as soon as Shutdown closes the listener; drained is
	// how main waits for the in-flight statements to finish before the
	// process exits.
	drained := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		defer close(drained)
		s := <-sigs
		log.Printf("plsqld: %v — draining connections (max %s)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("plsqld: %v", err)
		}
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, server.ErrServerClosed) {
		fatal(err)
	}
	<-drained
	// Connections are drained, so no commit races the final checkpoint.
	if err := e.Close(); err != nil {
		log.Printf("plsqld: close: %v", err)
	}
	log.Printf("plsqld: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plsqld:", err)
	os.Exit(1)
}

// benchrunner regenerates the paper's evaluation: Table 1, Figure 10,
// Figures 11a/11b, Table 2, and the DESIGN.md ablations, printing each in a
// paper-style text layout.
//
// Usage:
//
//	benchrunner [-experiment table1|fig10|fig11a|fig11b|table2|ablations|parallel|all]
//	            [-quick] [-parallel N]
//
// -quick shrinks workload sizes so a full run finishes in well under a
// minute (the default sizes mirror the paper's and take several minutes,
// dominated by the Figure 11 grids and Table 2's gigabyte-scale spill).
//
// -parallel N runs the concurrent-session scaling experiment: one shared
// engine, the robot-walk / fsmparse / graphtraverse workloads spread over
// 1, 2, …, N sessions, reporting aggregate throughput and the speedup over
// the single-session baseline. Given on its own it runs just that
// experiment; combine with -experiment to add the paper's figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"plsqlaway/internal/bench"
	"plsqlaway/internal/profile"
)

func main() {
	experiment := flag.String("experiment", "all", "table1, fig10, fig11a, fig11b, table2, ablations, parallel, or all")
	quick := flag.Bool("quick", false, "reduced workload sizes")
	parallel := flag.Int("parallel", 0, "max concurrent sessions for the scaling experiment (0 = off)")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "benchrunner: -parallel wants a session count ≥ 1, got %d\n", *parallel)
		os.Exit(1)
	}
	if *parallel > 0 {
		// -parallel alone means "run the scaling experiment"; it joins any
		// explicitly requested experiments but does not drag in the rest.
		// An explicit `-experiment all` still means everything.
		experimentSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "experiment" {
				experimentSet = true
			}
		})
		if !experimentSet {
			delete(want, "all")
		}
		want["parallel"] = true
	}
	all := want["all"]
	ran := 0

	section := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		ran++
		fmt.Printf("━━━ %s ━━━\n\n", name)
		t0 := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\n(%s took %s)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	section("table1", func() error {
		cfg := bench.Table1Config{}
		if *quick {
			cfg = bench.Table1Config{WalkSteps: 1_000, ParseLen: 1_000, TraverseHops: 500, FibN: 20_000}
		}
		rows, err := bench.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable1(rows))
		return nil
	})

	section("fig10", func() error {
		cfg := bench.Fig10Config{}
		if *quick {
			cfg = bench.Fig10Config{Steps: []int64{2_000, 5_000, 10_000}, Rounds: 3}
		}
		pts, err := bench.Figure10(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFigure10(pts))
		return nil
	})

	section("fig11a", func() error {
		cfg := bench.Fig11Config{Fn: "walk"}
		if *quick {
			cfg.Invocations = []int64{2, 8, 32, 128}
			cfg.Iterations = []int64{2, 8, 32, 128}
		}
		hm, err := bench.Figure11(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatHeatMap(hm))
		return nil
	})

	section("fig11b", func() error {
		cfg := bench.Fig11Config{Fn: "parse", Profile: profile.Oracle}
		if *quick {
			cfg.Invocations = []int64{2, 8, 32, 128}
			cfg.Iterations = []int64{2, 8, 32, 128}
		}
		hm, err := bench.Figure11(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatHeatMap(hm))
		return nil
	})

	section("table2", func() error {
		lengths := []int{10_000, 20_000, 30_000, 40_000, 50_000}
		if *quick {
			lengths = []int{2_000, 4_000, 8_000}
		}
		rows, err := bench.Table2(lengths)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(rows))
		return nil
	})

	section("ablations", func() error {
		size := int64(20_000)
		if *quick {
			size = 2_000
		}
		for _, a := range []struct {
			title string
			fn    func(int64) ([]bench.AblationRow, error)
			size  int64
		}{
			{"A1: LATERAL chain vs nested-derived-table rewrite", bench.AblationDialect, size},
			{"A2: SSA optimization passes on/off", bench.AblationSSAOpt, size},
			{"A3: interpreter simple-expression fast path", bench.AblationFastPath, size * 5},
			{"A4: SPI plan cache on/off", bench.AblationPlanCache, size / 4},
			{"A5: WITH RECURSIVE vs WITH ITERATE (run time)", bench.AblationIterate, size},
		} {
			rows, err := a.fn(a.size)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatAblation(a.title, rows))
		}
		return nil
	})

	section("parallel", func() error {
		cfg := bench.ParallelConfig{MaxWorkers: *parallel}
		if cfg.MaxWorkers == 0 {
			cfg.MaxWorkers = 4
		}
		if *quick {
			cfg.Calls = 32
			cfg.WalkSteps = 300
			cfg.ParseLen = 300
			cfg.TraverseHops = 200
		}
		rows, err := bench.ParallelScaling(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatParallel(rows))
		return nil
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *experiment)
		os.Exit(1)
	}
}

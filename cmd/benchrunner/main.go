// benchrunner regenerates the paper's evaluation: Table 1, Figure 10,
// Figures 11a/11b, Table 2, the DESIGN.md ablations, the concurrent-session
// scaling sweep, and the vectorized executor's batch-size sweep, printing
// each in a paper-style text layout or as one JSON document.
//
// Usage:
//
//	benchrunner [-experiment table1|fig10|fig11a|fig11b|table2|ablations|parallel|batchsweep|widescan|mixed|contention|all]
//	            [-quick] [-parallel N] [-writeratio F] [-batchsize LIST] [-metrics] [-format text|json]
//
// -experiment also accepts a comma-separated list (e.g.
// -experiment udfcall,batchsweep). -metrics runs every engine with the
// observability registry attached: the JSON report gains a "metrics" key
// carrying the full snapshot (fsync latency, plan-cache, phase-time
// series), and the text output appends the Prometheus rendering — the
// instrumentation-overhead experiments measure in exactly this mode.
//
// -quick shrinks workload sizes so a full run finishes in well under a
// minute (the default sizes mirror the paper's and take several minutes,
// dominated by the Figure 11 grids and Table 2's gigabyte-scale spill).
//
// -parallel N runs the concurrent-session scaling experiment: one shared
// engine, the robot-walk / fsmparse / graphtraverse workloads spread over
// 1, 2, …, N sessions, reporting aggregate throughput and the speedup over
// the single-session baseline. Given on its own it runs just that
// experiment; combine with -experiment to add the paper's figures.
//
// -writeratio F turns the session sweep into the mixed read/write
// experiment: one shared table, N sessions issuing a fixed deterministic
// schedule of point UPDATEs (fraction F) and range-aggregate SELECTs,
// reporting reader throughput as sessions grow — the snapshot-isolation
// claim that readers never wait for writers. Combine with -parallel N to
// set the sweep's upper end; given on its own it runs just the mixed
// experiment (it replaces the read-only -parallel sweep).
//
// -experiment contention runs the optimistic-write-path sweep: N sessions
// each running explicit transaction blocks (BEGIN; point UPDATEs; COMMIT)
// over disjoint key partitions and over a shared hot set, reporting
// transaction throughput, serialization conflicts, and the retry rate.
// Disjoint writers should scale; overlapping writers should conflict and
// retry without ever losing or duplicating an update.
//
// -batchsize runs the batch executor sweep: the WITH RECURSIVE
// graphtraverse frontier expansion at each listed executor batch size
// (default "1,64,256,1024,4096"), reporting throughput, speedup over batch
// size 1, and buffer page writes. Like -parallel, giving the flag on its
// own runs just that experiment.
//
// -experiment widescan runs the streaming-memory experiment: a loopback
// plsqld serves wide SELECTs of growing result sizes while a heap sampler
// records the peak; the buffered prepared-statement path grows with the
// result, the streamed simple-query path must stay flat. It fails (exit 1)
// if the streamed peak is not well under the buffered peak.
//
// -format json emits every experiment that ran as a single JSON document
// on stdout (schema plsqlaway-bench/v1) — the per-PR BENCH_*.json perf
// trajectory files and the CI bench-smoke artifact are recorded this way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"plsqlaway/internal/bench"
	"plsqlaway/internal/obs"
	"plsqlaway/internal/profile"
)

func main() {
	experiment := flag.String("experiment", "all", "table1, fig10, fig11a, fig11b, table2, ablations, parallel, batchsweep, widescan, mixed, contention, udfcall, or all")
	quick := flag.Bool("quick", false, "reduced workload sizes")
	parallel := flag.Int("parallel", 0, "max concurrent sessions for the scaling experiment (0 = off)")
	writeratio := flag.Float64("writeratio", -1, "fraction of ops that are writes in the mixed read/write sweep (-1 = off)")
	mixrows := flag.Int("mixrows", 0, "table size for the mixed read/write sweep (0 = the sweep's default)")
	durability := flag.String("durability", "", "comma-separated durability modes for the mixed sweep: volatile, off, batched, commit (empty = volatile only)")
	batchsize := flag.String("batchsize", "", "comma-separated executor batch sizes for the batch sweep (e.g. 1,64,1024; empty = the sweep's default sizes)")
	inline := flag.String("inline", "on", "planner UDF inlining in the udfcall sweep: on or off (the inlining ablation axis)")
	addr := flag.String("addr", "", "host:port of a running plsqld: run the sweeps through the wire protocol against it")
	window := flag.Int("window", 32, "pipelined requests in flight per connection in the remote sweep")
	metrics := flag.Bool("metrics", false, "run the engines with the observability registry on and snapshot it into the report")
	format := flag.String("format", "text", "output format: text or json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the experiments) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // flush recent frees so the profile shows live data accurately
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown format %q (want text or json)\n", *format)
		os.Exit(1)
	}
	jsonOut := *format == "json"
	if *metrics {
		bench.MetricsRegistry = obs.NewRegistry()
	}
	if *inline != "on" && *inline != "off" {
		fmt.Fprintf(os.Stderr, "benchrunner: -inline wants on or off, got %q\n", *inline)
		os.Exit(1)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "benchrunner: -parallel wants a session count ≥ 1, got %d\n", *parallel)
		os.Exit(1)
	}
	var sweepSizes []int
	if *batchsize != "" {
		for _, tok := range strings.Split(*batchsize, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "benchrunner: bad -batchsize entry %q\n", tok)
				os.Exit(1)
			}
			sweepSizes = append(sweepSizes, n)
		}
	}
	// -parallel / -batchsize alone mean "run that experiment"; they join any
	// explicitly requested experiments but do not drag in the rest. An
	// explicit `-experiment all` still means everything.
	experimentSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "experiment" {
			experimentSet = true
		}
	})
	if *writeratio > 1 {
		fmt.Fprintf(os.Stderr, "benchrunner: -writeratio wants a fraction in [0, 1], got %g\n", *writeratio)
		os.Exit(1)
	}
	if *parallel > 0 {
		if !experimentSet {
			delete(want, "all")
		}
		want["parallel"] = true
	}
	if *writeratio >= 0 && *addr == "" {
		if !experimentSet {
			delete(want, "all")
		}
		// -writeratio repurposes the -parallel session sweep as the mixed
		// read/write experiment; don't also run the read-only sweep.
		delete(want, "parallel")
		want["mixed"] = true
	}
	if len(sweepSizes) > 0 {
		if !experimentSet {
			delete(want, "all")
		}
		want["batchsweep"] = true
	}
	// -addr redirects the session sweeps through the wire protocol: the
	// scaling sweep becomes the remote connection sweep, and -writeratio
	// selects the remote mixed experiment. An explicit -experiment list
	// is authoritative — then -addr only supplies the server address and
	// adds nothing.
	if *addr != "" && !experimentSet {
		delete(want, "all")
		delete(want, "parallel")
		if *writeratio >= 0 {
			want["remotemixed"] = true
		} else {
			want["remote"] = true
		}
	}
	all := want["all"]
	ran := 0
	report := map[string]any{}

	// section runs one experiment; fn returns the structured result (for
	// -format json) and its text rendering. The remote experiments need a
	// server address, so `all` includes them only when -addr is given —
	// a plain `benchrunner` or `-experiment all` run must keep working
	// offline.
	section := func(name string, fn func() (any, string, error)) {
		remoteOnly := name == "remote" || name == "remotemixed"
		inAll := all && (!remoteOnly || *addr != "")
		if !inAll && !want[name] {
			return
		}
		ran++
		t0 := time.Now()
		data, text, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		if jsonOut {
			report[name] = data
			return
		}
		fmt.Printf("━━━ %s ━━━\n\n", name)
		fmt.Print(text)
		fmt.Printf("\n(%s took %s)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	section("table1", func() (any, string, error) {
		cfg := bench.Table1Config{}
		if *quick {
			cfg = bench.Table1Config{WalkSteps: 1_000, ParseLen: 1_000, TraverseHops: 500, FibN: 20_000}
		}
		rows, err := bench.Table1(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, bench.FormatTable1(rows), nil
	})

	section("fig10", func() (any, string, error) {
		cfg := bench.Fig10Config{}
		if *quick {
			cfg = bench.Fig10Config{Steps: []int64{2_000, 5_000, 10_000}, Rounds: 3}
		}
		pts, err := bench.Figure10(cfg)
		if err != nil {
			return nil, "", err
		}
		return pts, bench.FormatFigure10(pts), nil
	})

	section("fig11a", func() (any, string, error) {
		cfg := bench.Fig11Config{Fn: "walk"}
		if *quick {
			cfg.Invocations = []int64{2, 8, 32, 128}
			cfg.Iterations = []int64{2, 8, 32, 128}
		}
		hm, err := bench.Figure11(cfg)
		if err != nil {
			return nil, "", err
		}
		return hm, bench.FormatHeatMap(hm), nil
	})

	section("fig11b", func() (any, string, error) {
		cfg := bench.Fig11Config{Fn: "parse", Profile: profile.Oracle}
		if *quick {
			cfg.Invocations = []int64{2, 8, 32, 128}
			cfg.Iterations = []int64{2, 8, 32, 128}
		}
		hm, err := bench.Figure11(cfg)
		if err != nil {
			return nil, "", err
		}
		return hm, bench.FormatHeatMap(hm), nil
	})

	section("table2", func() (any, string, error) {
		lengths := []int{10_000, 20_000, 30_000, 40_000, 50_000}
		if *quick {
			lengths = []int{2_000, 4_000, 8_000}
		}
		rows, err := bench.Table2(lengths)
		if err != nil {
			return nil, "", err
		}
		return rows, bench.FormatTable2(rows), nil
	})

	section("ablations", func() (any, string, error) {
		size := int64(20_000)
		if *quick {
			size = 2_000
		}
		data := map[string]any{}
		var text strings.Builder
		for _, a := range []struct {
			title string
			fn    func(int64) ([]bench.AblationRow, error)
			size  int64
		}{
			{"A1: LATERAL chain vs nested-derived-table rewrite", bench.AblationDialect, size},
			{"A2: SSA optimization passes on/off", bench.AblationSSAOpt, size},
			{"A3: interpreter simple-expression fast path", bench.AblationFastPath, size * 5},
			{"A4: SPI plan cache on/off", bench.AblationPlanCache, size / 4},
			{"A5: WITH RECURSIVE vs WITH ITERATE (run time)", bench.AblationIterate, size},
		} {
			rows, err := a.fn(a.size)
			if err != nil {
				return nil, "", err
			}
			data[a.title] = rows
			text.WriteString(bench.FormatAblation(a.title, rows))
			text.WriteString("\n")
		}
		return data, text.String(), nil
	})

	section("parallel", func() (any, string, error) {
		cfg := bench.ParallelConfig{MaxWorkers: *parallel}
		if cfg.MaxWorkers == 0 {
			cfg.MaxWorkers = 4
		}
		if *quick {
			cfg.Calls = 32
			cfg.WalkSteps = 300
			cfg.ParseLen = 300
			cfg.TraverseHops = 200
		}
		rows, err := bench.ParallelScaling(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, bench.FormatParallel(rows), nil
	})

	section("mixed", func() (any, string, error) {
		ratio := *writeratio
		if ratio < 0 {
			ratio = 0.1 // -experiment mixed without -writeratio: a sensible default
		}
		cfg := bench.MixedConfig{MaxWorkers: *parallel, WriteRatio: ratio}
		if *durability != "" {
			for _, tok := range strings.Split(*durability, ",") {
				cfg.Durability = append(cfg.Durability, strings.TrimSpace(strings.ToLower(tok)))
			}
		}
		if cfg.MaxWorkers == 0 {
			cfg.MaxWorkers = 4
		}
		if *quick {
			cfg.Ops = 512
			cfg.TableRows = 2048
			cfg.Span = 128
		}
		if *mixrows > 0 {
			cfg.TableRows = *mixrows
		}
		rows, err := bench.MixedSweep(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, bench.FormatMixed(rows), nil
	})

	section("contention", func() (any, string, error) {
		cfg := bench.ContentionConfig{MaxWorkers: *parallel}
		if cfg.MaxWorkers == 0 {
			cfg.MaxWorkers = 8
		}
		if *quick {
			cfg.Txns = 128
			cfg.TableRows = 512
		}
		rows, err := bench.ContentionSweep(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, bench.FormatContention(rows), nil
	})

	section("remote", func() (any, string, error) {
		cfg := bench.RemoteConfig{Addr: *addr, MaxConns: *parallel, Window: *window}
		if *quick {
			cfg.Calls = 128
			cfg.TraverseHops = 20
		}
		rows, err := bench.RemoteScaling(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, bench.FormatRemote(rows), nil
	})

	section("remotemixed", func() (any, string, error) {
		ratio := *writeratio
		if ratio < 0 {
			ratio = 0.1
		}
		cfg := bench.RemoteMixedConfig{Addr: *addr, MaxConns: *parallel, WriteRatio: ratio}
		if *quick {
			cfg.Ops = 512
			cfg.TableRows = 2048
			cfg.Span = 128
		}
		if *mixrows > 0 {
			cfg.TableRows = *mixrows
		}
		rows, err := bench.RemoteMixed(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, bench.FormatMixed(rows), nil
	})

	section("widescan", func() (any, string, error) {
		cfg := bench.WideScanConfig{}
		if *quick {
			cfg.Rows = []int{10_000, 40_000, 160_000}
		}
		rows, err := bench.WideScan(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, bench.FormatWideScan(rows), nil
	})

	section("udfcall", func() (any, string, error) {
		cfg := bench.UDFCallConfig{Inline: *inline != "off"}
		if *quick {
			cfg.Probes = 4_000
			cfg.Rounds = 3
		}
		rep, err := bench.UDFCall(cfg)
		if err != nil {
			return nil, "", err
		}
		return rep, bench.FormatUDFCall(rep), nil
	})

	section("batchsweep", func() (any, string, error) {
		cfg := bench.BatchSweepConfig{Sizes: sweepSizes}
		if *quick {
			cfg.Nodes = 1024
			cfg.MaxHops = 6
			cfg.Rounds = 3
		}
		rows, err := bench.BatchSweep(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, bench.FormatBatchSweep(rows), nil
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *experiment)
		os.Exit(1)
	}
	if !jsonOut && bench.MetricsRegistry != nil {
		fmt.Printf("━━━ metrics ━━━\n\n")
		bench.MetricsRegistry.WriteText(os.Stdout)
		fmt.Println()
	}
	if jsonOut {
		doc := map[string]any{
			"schema":      "plsqlaway-bench/v1",
			"gomaxprocs":  runtime.GOMAXPROCS(0),
			"quick":       *quick,
			"experiments": report,
		}
		if bench.MetricsRegistry != nil {
			doc["metrics"] = bench.MetricsRegistry.Gather()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: encoding JSON: %v\n", err)
			os.Exit(1)
		}
	}
}

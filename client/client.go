// Package client is the Go client for a plsqlaway server (cmd/plsqld):
// it speaks the wire protocol over TCP and exposes the same
// Query/Exec/Prepare surface the embedded engine offers, plus explicit
// pipelining — many statements in flight on one connection, responses
// delivered in order — and a concurrent-safe connection pool.
//
// A Conn is safe for concurrent use: callers' requests interleave on the
// wire and each caller gets its own response. Synchronous helpers
// (Query, Exec) send one request and wait; the asynchronous Send
// variants return a Pending handle so a caller can keep a window of
// statements in flight:
//
//	st, _ := conn.Prepare("SELECT traverse_c($1, $2)")
//	var pending []*client.Pending
//	for i := 0; i < 100; i++ {
//		pending = append(pending, st.Send(client.Int(0), client.Int(50)))
//	}
//	for _, p := range pending {
//		if _, err := p.Wait(); err != nil { … }
//	}
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
	"plsqlaway/internal/wire"
)

// Value is a dynamically typed SQL value (the engine's value type).
type Value = sqltypes.Value

// Convenience constructors mirroring the root package.
func Int(i int64) Value      { return sqltypes.NewInt(i) }
func Float(f float64) Value  { return sqltypes.NewFloat(f) }
func Text(s string) Value    { return sqltypes.NewText(s) }
func Bool(b bool) Value      { return sqltypes.NewBool(b) }
func Coord(x, y int64) Value { return sqltypes.NewCoord(x, y) }

// Null is the SQL NULL value.
var Null = sqltypes.Null

// Result is one query's rows, as received over the wire.
type Result struct {
	Cols []string
	Rows [][]Value
}

// Format renders the result as an aligned text table, identically to the
// embedded engine's Result.Format.
func (r *Result) Format() string { return sqltypes.FormatTable(r.Cols, r.Rows) }

// Config collects dial options.
type Config struct {
	// Seed seeds the server session's deterministic random() stream.
	Seed uint64
	// Window bounds how many requests this connection keeps in flight
	// before Send blocks (the pipelining window). Default 64.
	Window int
	// DialTimeout bounds the TCP connect. Default 5s.
	DialTimeout time.Duration
}

// Option configures Dial.
type Option func(*Config)

// WithSeed sets the session's initial random() seed.
func WithSeed(seed uint64) Option { return func(c *Config) { c.Seed = seed } }

// WithWindow sets the pipelining window (1 = fully synchronous: each
// request waits for the previous response's slot).
func WithWindow(n int) Option { return func(c *Config) { c.Window = n } }

// WithDialTimeout bounds the TCP connect.
func WithDialTimeout(d time.Duration) Option { return func(c *Config) { c.DialTimeout = d } }

// Stats is the server's counter snapshot: the storage counters (embedded,
// so st.Commits etc. read directly) plus the plan cache's counters and,
// against a v5 server, the live connection count.
type Stats struct {
	storage.StatsSnapshot
	Plans       wire.PlanStats
	ActiveConns int64 // open connections on the server (v5+; zero otherwise)

	// Legacy reports that the server answered with the pre-v5 frame shape:
	// the cache hit/miss and connection fields above are absent, not zero.
	Legacy bool
}

// outcome is one completed response.
type outcome struct {
	res     *Result
	parse   *wire.ParseOK
	stats   *Stats
	notices []string
	doneTag string
	err     error
}

// Pending is a request in flight. Wait blocks until its response arrives
// (responses are delivered in request order).
type Pending struct {
	ch chan outcome
	// release marks the last message of one send() call: completing it
	// frees the send's pipelining-window slot.
	release bool
	// sink, when set, streams this request's rows instead of buffering
	// them into a Result (see Conn.QueryStream). It runs on the read
	// loop.
	sink func(cols []string, rows [][]Value) error
}

// Wait returns the request's result (nil for statements that return no
// rows) or its error.
func (p *Pending) Wait() (*Result, error) {
	o := <-p.ch
	p.ch <- o // allow repeated Wait
	return o.res, o.err
}

func (p *Pending) wait() (outcome, error) {
	o := <-p.ch
	p.ch <- o
	return o, o.err
}

// Conn is one wire-protocol connection: a dedicated server session. Safe
// for concurrent use; concurrent requests pipeline on the wire.
type Conn struct {
	nc net.Conn
	bw *bufio.Writer

	// writeMu serializes frame writes and pending-queue pushes, so the
	// FIFO of pendings matches the order of requests on the wire.
	writeMu sync.Mutex
	pending chan *Pending
	// slots bounds requests in flight (the pipelining window).
	slots chan struct{}

	quit     chan struct{}
	quitOnce sync.Once
	errMu    sync.Mutex
	err      error // first fatal connection error

	// noticeMu guards the connection's pending NOTICE messages (RAISE
	// NOTICE output and transaction-control warnings the server streamed
	// ahead of response terminators).
	noticeMu sync.Mutex
	notices  []string

	stmtMu  sync.Mutex
	stmtSeq uint64

	// Server is the banner the server announced at startup.
	Server string
}

// Dial connects to a plsqlaway server.
func Dial(addr string, opts ...Option) (*Conn, error) {
	cfg := Config{Seed: 42, Window: 64, DialTimeout: 5 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	nc, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		nc: nc,
		bw: bufio.NewWriterSize(nc, 64<<10),
		// One window slot per send() call; a send carries at most 3
		// messages (parse + execute + close), so the pending queue is
		// sized to keep pushes non-blocking under a full window.
		pending: make(chan *Pending, 3*cfg.Window),
		slots:   make(chan struct{}, cfg.Window),
		quit:    make(chan struct{}),
	}
	if err := wire.WriteMessage(c.bw, &wire.Startup{Version: wire.ProtocolVersion, Seed: cfg.Seed}); err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	msg, err := wire.ReadMessage(br)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch m := msg.(type) {
	case *wire.Ready:
		c.Server = m.Server
	case *wire.Error:
		nc.Close()
		return nil, fmt.Errorf("client: server rejected startup: %s", m.Message)
	default:
		nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake frame %c", msg.Type())
	}
	go c.readLoop(br)
	return c, nil
}

// fail records the first fatal error and tears the connection down.
func (c *Conn) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
	c.quitOnce.Do(func() { close(c.quit) })
	c.nc.Close()
}

func (c *Conn) fatalErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// ErrClosed is the error pending requests receive when the connection
// goes away underneath them.
var ErrClosed = fmt.Errorf("client: connection closed")

// Retryable-failure sentinels, re-exported from the engine so remote
// callers match them without importing internal packages. The server
// classifies these on the wire (wire.Error.Code) and readResponse wraps
// the sentinel back in, so errors.Is works across the connection exactly
// as it does embedded.
var (
	// ErrSerialization: a concurrent commit invalidated the transaction's
	// snapshot — rollback and retry the whole transaction.
	ErrSerialization = engine.ErrSerialization
	// ErrTxnAborted: a prior statement failed inside the block — only
	// ROLLBACK (or COMMIT, which rolls back) is accepted.
	ErrTxnAborted = engine.ErrTxnAborted
)

// serverError is a statement failure reported by the server, carrying
// the sentinel its wire code classified it as (nil for generic errors).
type serverError struct {
	msg      string
	sentinel error
}

func (e *serverError) Error() string { return "server: " + e.msg }
func (e *serverError) Unwrap() error { return e.sentinel }

// decodeError turns a wire Error frame into the client-side error value.
func decodeError(m *wire.Error) error {
	var sentinel error
	switch m.Code {
	case wire.CodeSerialization:
		sentinel = ErrSerialization
	case wire.CodeTxnAborted:
		sentinel = ErrTxnAborted
	}
	return &serverError{msg: m.Message, sentinel: sentinel}
}

// Close terminates the connection. In-flight requests fail with
// ErrClosed (wait for them first for a graceful end). Closing an
// already-closed connection returns ErrClosed.
func (c *Conn) Close() error {
	select {
	case <-c.quit:
		return ErrClosed
	default:
	}
	c.writeMu.Lock()
	wire.WriteMessage(c.bw, &wire.Terminate{})
	c.bw.Flush()
	c.writeMu.Unlock()
	c.fail(ErrClosed)
	return nil
}

// maxBufferedNotices bounds the per-connection notice buffer: a caller
// that never drains loses the oldest messages, not memory.
const maxBufferedNotices = 1024

// Notices drains the NOTICE messages received so far (RAISE NOTICE
// output and transaction-control warnings). Notices arrive attached to
// responses, so after a synchronous Query/Exec the statement's notices
// are already here; with concurrent callers pipelining on one
// connection, their notices interleave in response order. At most the
// newest maxBufferedNotices are retained between drains.
func (c *Conn) Notices() []string {
	c.noticeMu.Lock()
	n := c.notices
	c.notices = nil
	c.noticeMu.Unlock()
	return n
}

// Begin opens a transaction block on this connection's server session.
// The block spans statements until Commit or Rollback; concurrent
// callers sharing this connection would land inside it, so either
// dedicate the connection to the transaction or use Pool.Begin, which
// pins one for you.
func (c *Conn) Begin() error { return c.Exec("BEGIN") }

// Commit commits the open transaction block.
func (c *Conn) Commit() error { return c.Exec("COMMIT") }

// Rollback rolls back the open transaction block.
func (c *Conn) Rollback() error { return c.Exec("ROLLBACK") }

// readLoop matches response sequences to pending requests in FIFO order.
func (c *Conn) readLoop(br *bufio.Reader) {
	defer c.drainPending()
	for {
		var p *Pending
		select {
		case p = <-c.pending:
		case <-c.quit:
			return
		}
		o := c.readResponse(br, p.sink)
		if len(o.notices) > 0 {
			c.noticeMu.Lock()
			c.notices = append(c.notices, o.notices...)
			// Notices are advisory: callers that never drain must not
			// leak memory, so the buffer keeps only the newest.
			if n := len(c.notices); n > maxBufferedNotices {
				c.notices = append(c.notices[:0], c.notices[n-maxBufferedNotices:]...)
			}
			c.noticeMu.Unlock()
		}
		release := p.release
		p.ch <- o
		if release {
			<-c.slots // free the send's window slot
		}
		if o.err != nil {
			if _, fatal := o.err.(*connError); fatal {
				c.fail(o.err)
				return
			}
		}
	}
}

// connError marks errors that kill the connection (as opposed to
// statement errors, after which the connection keeps serving).
type connError struct{ err error }

func (e *connError) Error() string { return e.err.Error() }
func (e *connError) Unwrap() error { return e.err }

// readResponse consumes one response sequence: zero or more data frames
// (rows, notices) ended by a terminator. With a sink, row chunks are
// handed to it as they arrive instead of accumulating in a Result; a
// sink error stops deliveries but keeps draining the response (the
// stream must stay frame-synchronized) and surfaces on the terminator.
func (c *Conn) readResponse(br *bufio.Reader, sink func(cols []string, rows [][]Value) error) outcome {
	var res *Result
	var notices []string
	var cols []string
	var sawDesc bool
	var sinkErr error
	deliver := func(rows [][]Value) {
		if !sawDesc || sinkErr != nil {
			return
		}
		sinkErr = sink(cols, rows)
	}
	for {
		msg, err := wire.ReadMessage(br)
		if err != nil {
			return outcome{err: &connError{fmt.Errorf("client: read: %w", err)}}
		}
		switch m := msg.(type) {
		case *wire.RowDesc:
			sawDesc = true
			if sink != nil {
				// Announce the result shape before any rows: the sink sees
				// (cols, nil) once, then (cols, rows) per chunk.
				cols = m.Cols
				deliver(nil)
			} else {
				res = &Result{Cols: m.Cols}
			}
		case *wire.RowBatch:
			if !sawDesc && res == nil {
				return outcome{err: &connError{fmt.Errorf("client: row batch before row description")}}
			}
			if sink != nil {
				if len(m.Rows) > 0 {
					deliver(m.Rows)
				}
			} else {
				res.Rows = append(res.Rows, m.Rows...)
			}
		case *wire.ColBatch:
			if !sawDesc && res == nil {
				return outcome{err: &connError{fmt.Errorf("client: row batch before row description")}}
			}
			rows := m.Rows()
			if sink != nil {
				if len(rows) > 0 {
					deliver(rows)
				}
			} else {
				res.Rows = append(res.Rows, rows...)
			}
		case *wire.Notice:
			notices = append(notices, m.Message)
		case *wire.Done:
			if sinkErr != nil {
				return outcome{notices: notices, err: sinkErr}
			}
			return outcome{res: res, notices: notices, doneTag: m.Tag}
		case *wire.Error:
			if sinkErr != nil {
				return outcome{notices: notices, err: sinkErr}
			}
			return outcome{notices: notices, err: decodeError(m)}
		case *wire.ParseOK:
			return outcome{parse: m}
		case *wire.StatsReply:
			return outcome{stats: &Stats{
				StatsSnapshot: m.Stats, Plans: m.Plans,
				ActiveConns: m.ActiveConns, Legacy: m.Legacy,
			}}
		default:
			return outcome{err: &connError{fmt.Errorf("client: unexpected frame %c", msg.Type())}}
		}
	}
}

// drainPending fails every queued request after the connection dies.
func (c *Conn) drainPending() {
	err := c.fatalErr()
	if err == nil {
		err = ErrClosed
	}
	for {
		select {
		case p := <-c.pending:
			release := p.release
			p.ch <- outcome{err: err}
			if release {
				<-c.slots
			}
		default:
			return
		}
	}
}

// send writes msgs as one atomic run of frames (one request) and returns
// one Pending per message, in order. It blocks while the pipelining
// window is full; the whole run occupies one window slot. The frames are
// encoded and size-checked before any protocol state changes, so an
// oversized request fails as a plain per-call error — the connection
// (and everyone pipelining on it) survives.
func (c *Conn) send(msgs ...wire.Message) ([]*Pending, error) {
	return c.sendSink(nil, msgs...)
}

// sendSink is send with a row sink attached to the first message's
// response (the others, if any, buffer normally).
func (c *Conn) sendSink(sink func(cols []string, rows [][]Value) error, msgs ...wire.Message) ([]*Pending, error) {
	type frame struct {
		typ     byte
		payload []byte
	}
	frames := make([]frame, len(msgs))
	for i, m := range msgs {
		typ, payload, err := wire.EncodeMessage(m)
		if err != nil {
			return nil, err
		}
		frames[i] = frame{typ: typ, payload: payload}
	}
	ps := make([]*Pending, len(msgs))
	for i := range ps {
		ps[i] = &Pending{ch: make(chan outcome, 1)}
	}
	ps[0].sink = sink
	ps[len(ps)-1].release = true
	// Acquire the window slot first (outside writeMu, so a blocked window
	// doesn't serialize unrelated senders' slot waits behind the lock).
	select {
	case c.slots <- struct{}{}:
	case <-c.quit:
		return nil, c.closedErr()
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	select {
	case <-c.quit:
		<-c.slots
		return nil, c.closedErr()
	default:
	}
	for i, f := range frames {
		c.pending <- ps[i]
		if err := wire.WriteFrame(c.bw, f.typ, f.payload); err != nil {
			c.fail(&connError{err})
			return nil, err
		}
	}
	if err := c.bw.Flush(); err != nil {
		c.fail(&connError{err})
		return nil, err
	}
	return ps, nil
}

func (c *Conn) closedErr() error {
	if err := c.fatalErr(); err != nil {
		return err
	}
	return ErrClosed
}

// Exec runs a SQL statement or semicolon-separated script, discarding
// any rows.
func (c *Conn) Exec(sql string) error {
	ps, err := c.send(&wire.Query{SQL: sql})
	if err != nil {
		return err
	}
	_, err = ps[0].Wait()
	return err
}

// Query runs a single SQL statement. With parameters it transparently
// uses an anonymous prepared statement (parse + execute + close,
// pipelined in one write).
func (c *Conn) Query(sql string, params ...Value) (*Result, error) {
	if len(params) == 0 {
		ps, err := c.send(&wire.Query{SQL: sql})
		if err != nil {
			return nil, err
		}
		return ps[0].Wait()
	}
	name := c.nextStmtName()
	ps, err := c.send(
		&wire.Parse{Name: name, SQL: sql},
		&wire.Execute{Name: name, Params: params},
		&wire.CloseStmt{Name: name},
	)
	if err != nil {
		return nil, err
	}
	if _, err := ps[0].wait(); err != nil {
		// Parse failed; the server answered Error for the dangling
		// execute/close too — collect them so the conn stays in sync.
		ps[1].Wait()
		ps[2].Wait()
		return nil, err
	}
	res, execErr := ps[1].Wait()
	ps[2].Wait()
	return res, execErr
}

// QueryStream runs a single row-returning statement, delivering rows to
// fn chunk by chunk as frames arrive instead of materializing the whole
// result: peak client memory is one wire batch. fn is first called once
// with (cols, nil) to announce the result shape, then with (cols, rows)
// per chunk; it runs on the connection's read loop, so a slow fn slows
// the read side, TCP backpressure reaches the server, and the server's
// executor pull stalls — end-to-end flow control with roughly one batch
// in flight. Avoid issuing requests on the same connection from inside
// fn. If fn returns an error, remaining chunks are discarded and the
// error is returned; fn may have observed a prefix of the rows when an
// error (its own or the server's) terminates the stream.
func (c *Conn) QueryStream(sql string, fn func(cols []string, rows [][]Value) error) error {
	ps, err := c.sendSink(fn, &wire.Query{SQL: sql})
	if err != nil {
		return err
	}
	_, err = ps[0].Wait()
	return err
}

// QueryValue runs a query expected to return a single value.
func (c *Conn) QueryValue(sql string, params ...Value) (Value, error) {
	res, err := c.Query(sql, params...)
	if err != nil {
		return Null, err
	}
	return singleValue(res)
}

func singleValue(res *Result) (Value, error) {
	if res == nil || len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		n := 0
		if res != nil {
			n = len(res.Rows)
		}
		return Null, fmt.Errorf("client: expected a single value, got %d rows", n)
	}
	return res.Rows[0][0], nil
}

// Seed reseeds the connection's server-side random() stream.
func (c *Conn) Seed(seed uint64) error {
	ps, err := c.send(&wire.Seed{Seed: seed})
	if err != nil {
		return err
	}
	_, err = ps[0].Wait()
	return err
}

// SeedAsync is Seed without waiting — pair it with Stmt.Send to keep a
// reseed+execute sequence pipelined.
func (c *Conn) SeedAsync(seed uint64) (*Pending, error) {
	ps, err := c.send(&wire.Seed{Seed: seed})
	if err != nil {
		return nil, err
	}
	return ps[0], nil
}

// Stats fetches the server engine's counters: storage (page writes plus
// MVCC commit/vacuum counts — remote benchmarks assert storage behaviour
// through this) and the plan cache's UDF-inlining counters.
func (c *Conn) Stats() (Stats, error) {
	// Fast-fail on a dead connection so shutdown paths (a shell printing
	// its exit stats, say) never block on a round-trip that cannot answer.
	select {
	case <-c.quit:
		return Stats{}, c.closedErr()
	default:
	}
	ps, err := c.send(&wire.StatsRequest{})
	if err != nil {
		return Stats{}, err
	}
	o, err := ps[0].wait()
	if err != nil {
		return Stats{}, err
	}
	if o.stats == nil {
		return Stats{}, fmt.Errorf("client: stats request answered with %+v", o)
	}
	return *o.stats, nil
}

func (c *Conn) nextStmtName() string {
	c.stmtMu.Lock()
	c.stmtSeq++
	n := c.stmtSeq
	c.stmtMu.Unlock()
	return fmt.Sprintf("s%d", n)
}

// Stmt is a statement prepared on the server, executable many times.
type Stmt struct {
	c         *Conn
	name      string
	numParams int
	isQuery   bool
}

// Prepare parses sql on the server and returns a reusable statement.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	name := c.nextStmtName()
	ps, err := c.send(&wire.Parse{Name: name, SQL: sql})
	if err != nil {
		return nil, err
	}
	o, err := ps[0].wait()
	if err != nil {
		return nil, err
	}
	if o.parse == nil {
		return nil, fmt.Errorf("client: parse answered with %+v", o)
	}
	return &Stmt{c: c, name: name, numParams: int(o.parse.NumParams), isQuery: o.parse.IsQuery}, nil
}

// NumParams reports how many $n parameters the statement takes.
func (s *Stmt) NumParams() int { return s.numParams }

// IsQuery reports whether executions return rows.
func (s *Stmt) IsQuery() bool { return s.isQuery }

// Send executes the statement asynchronously: it returns as soon as the
// request is on the wire, letting the caller pipeline.
func (s *Stmt) Send(params ...Value) (*Pending, error) {
	ps, err := s.c.send(&wire.Execute{Name: s.name, Params: params})
	if err != nil {
		return nil, err
	}
	return ps[0], nil
}

// Query executes the statement and waits for its rows.
func (s *Stmt) Query(params ...Value) (*Result, error) {
	p, err := s.Send(params...)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// QueryValue executes the statement, expecting a single value.
func (s *Stmt) QueryValue(params ...Value) (Value, error) {
	res, err := s.Query(params...)
	if err != nil {
		return Null, err
	}
	return singleValue(res)
}

// Exec executes the statement, discarding rows.
func (s *Stmt) Exec(params ...Value) error {
	_, err := s.Query(params...)
	return err
}

// Close releases the server-side statement.
func (s *Stmt) Close() error {
	ps, err := s.c.send(&wire.CloseStmt{Name: s.name})
	if err != nil {
		return err
	}
	_, err = ps[0].Wait()
	return err
}

package client_test

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"plsqlaway/client"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/server"
	"plsqlaway/internal/sqltypes"
)

// startServer serves a fresh engine on a loopback listener and returns
// its address plus the engine (for server-side assertions).
func startServer(t *testing.T) (string, *engine.Engine) {
	t.Helper()
	e := engine.New(engine.WithSeed(42))
	srv := server.New(e, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	})
	return ln.Addr().String(), e
}

func TestQueryRoundTrip(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Exec("CREATE TABLE t (a int, b text); INSERT INTO t VALUES (1, 'one'), (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.Cols[0] != "a" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][1].Text() != "two" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !strings.Contains(res.Format(), "(2 rows)") {
		t.Fatalf("format: %q", res.Format())
	}
}

func TestQueryWithParams(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	v, err := c.QueryValue("SELECT $1 + $2", client.Int(20), client.Int(22))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 42 {
		t.Fatalf("got %v", v)
	}
	// Coord and row values survive the wire.
	v, err = c.QueryValue("SELECT $1", client.Coord(3, -4))
	if err != nil {
		t.Fatal(err)
	}
	x, y := v.Coord()
	if x != 3 || y != -4 {
		t.Fatalf("coord = (%d,%d)", x, y)
	}
}

func TestStatementErrorKeepsConnUsable(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Query("SELECT * FROM missing"); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("want relation error, got %v", err)
	}
	v, err := c.QueryValue("SELECT 7")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 7 {
		t.Fatalf("got %v", v)
	}
}

func TestPreparedStatements(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Exec("CREATE TABLE kv (k int, v int)"); err != nil {
		t.Fatal(err)
	}
	ins, err := c.Prepare("INSERT INTO kv VALUES ($1, $2)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 || ins.IsQuery() {
		t.Fatalf("metadata: params=%d isQuery=%v", ins.NumParams(), ins.IsQuery())
	}
	for i := int64(0); i < 10; i++ {
		if err := ins.Exec(client.Int(i), client.Int(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := c.Prepare("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	if !sel.IsQuery() {
		t.Fatal("SELECT not flagged as query")
	}
	v, err := sel.QueryValue(client.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 49 {
		t.Fatalf("got %v", v)
	}
	if err := sel.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Query(client.Int(1)); err == nil || !strings.Contains(err.Error(), "unknown prepared statement") {
		t.Fatalf("closed statement executed: %v", err)
	}
}

func TestPipelinedSends(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr, client.WithWindow(32))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Prepare("SELECT $1 * 2")
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	pending := make([]*client.Pending, n)
	for i := 0; i < n; i++ {
		p, err := st.Send(client.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		pending[i] = p
	}
	for i, p := range pending {
		res, err := p.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := res.Rows[0][0].Int(); got != int64(2*i) {
			t.Fatalf("call %d: got %d (responses out of order?)", i, got)
		}
	}
}

func TestConcurrentCallersOneConn(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr, client.WithWindow(16))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				want := int64(g*1000 + i)
				v, err := c.QueryValue("SELECT $1", client.Int(want))
				if err != nil {
					errs[g] = err
					return
				}
				if v.Int() != want {
					errs[g] = &mismatchError{want, v.Int()}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

type mismatchError struct{ want, got int64 }

func (e *mismatchError) Error() string {
	return "cross-talk: want " + sqltypes.NewInt(e.want).String() + " got " + sqltypes.NewInt(e.got).String()
}

func TestSeedDeterminism(t *testing.T) {
	addr, e := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	draw := func() float64 {
		if err := c.Seed(99); err != nil {
			t.Fatal(err)
		}
		v, err := c.QueryValue("SELECT random()")
		if err != nil {
			t.Fatal(err)
		}
		return v.Float()
	}
	a, b := draw(), draw()
	if a != b {
		t.Fatalf("reseeded draws differ: %v vs %v", a, b)
	}
	// And they match a local session of the same engine, same seed.
	s := e.NewSession()
	s.Seed(99)
	lv, err := s.QueryValue("SELECT random()")
	if err != nil {
		t.Fatal(err)
	}
	if lv.Float() != a {
		t.Fatalf("remote %v vs local %v", a, lv.Float())
	}
}

func TestStatsFrame(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Exec("CREATE TABLE s (x int)"); err != nil {
		t.Fatal(err)
	}
	before, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Exec("INSERT INTO s VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Commits-before.Commits != 5 {
		t.Fatalf("commit counter: before %d after %d, want +5", before.Commits, after.Commits)
	}
}

func TestPoolConcurrent(t *testing.T) {
	addr, _ := startServer(t)
	p, err := client.NewPool(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if err := p.Exec("CREATE TABLE pt (x int)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := p.Exec("INSERT INTO pt VALUES (1)"); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	v, err := p.QueryValue("SELECT count(*) FROM pt")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 16*25 {
		t.Fatalf("count = %v, want %d", v, 16*25)
	}
}

// TestShutdownDrainsInFlight pins the graceful-drain contract: statements
// already submitted when Shutdown begins still complete with answers.
func TestShutdownDrainsInFlight(t *testing.T) {
	e := engine.New(engine.WithSeed(42))
	srv := server.New(e, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()

	c, err := client.Dial(ln.Addr().String(), client.WithWindow(64))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare("SELECT $1")
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	pending := make([]*client.Pending, n)
	for i := 0; i < n; i++ {
		p, err := st.Send(client.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		pending[i] = p
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	// Every request was flushed to the socket before Shutdown began, so
	// the drain must answer all of them — correctly and in order.
	for i, p := range pending {
		res, err := p.Wait()
		if err != nil {
			t.Fatalf("call %d dropped by drain: %v", i, err)
		}
		if res.Rows[0][0].Int() != int64(i) {
			t.Fatalf("call %d: wrong answer %v", i, res.Rows[0][0])
		}
	}
	c.Close()
}

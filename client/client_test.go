package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"plsqlaway/client"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/server"
	"plsqlaway/internal/sqltypes"
)

// startServer serves a fresh engine on a loopback listener and returns
// its address plus the engine (for server-side assertions).
func startServer(t *testing.T) (string, *engine.Engine) {
	t.Helper()
	e := engine.New(engine.WithSeed(42))
	srv := server.New(e, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	})
	return ln.Addr().String(), e
}

func TestQueryRoundTrip(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Exec("CREATE TABLE t (a int, b text); INSERT INTO t VALUES (1, 'one'), (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.Cols[0] != "a" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][1].Text() != "two" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !strings.Contains(res.Format(), "(2 rows)") {
		t.Fatalf("format: %q", res.Format())
	}
}

func TestQueryWithParams(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	v, err := c.QueryValue("SELECT $1 + $2", client.Int(20), client.Int(22))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 42 {
		t.Fatalf("got %v", v)
	}
	// Coord and row values survive the wire.
	v, err = c.QueryValue("SELECT $1", client.Coord(3, -4))
	if err != nil {
		t.Fatal(err)
	}
	x, y := v.Coord()
	if x != 3 || y != -4 {
		t.Fatalf("coord = (%d,%d)", x, y)
	}
}

func TestStatementErrorKeepsConnUsable(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Query("SELECT * FROM missing"); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("want relation error, got %v", err)
	}
	v, err := c.QueryValue("SELECT 7")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 7 {
		t.Fatalf("got %v", v)
	}
}

func TestPreparedStatements(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Exec("CREATE TABLE kv (k int, v int)"); err != nil {
		t.Fatal(err)
	}
	ins, err := c.Prepare("INSERT INTO kv VALUES ($1, $2)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 || ins.IsQuery() {
		t.Fatalf("metadata: params=%d isQuery=%v", ins.NumParams(), ins.IsQuery())
	}
	for i := int64(0); i < 10; i++ {
		if err := ins.Exec(client.Int(i), client.Int(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := c.Prepare("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	if !sel.IsQuery() {
		t.Fatal("SELECT not flagged as query")
	}
	v, err := sel.QueryValue(client.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 49 {
		t.Fatalf("got %v", v)
	}
	if err := sel.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Query(client.Int(1)); err == nil || !strings.Contains(err.Error(), "unknown prepared statement") {
		t.Fatalf("closed statement executed: %v", err)
	}
}

func TestPipelinedSends(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr, client.WithWindow(32))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Prepare("SELECT $1 * 2")
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	pending := make([]*client.Pending, n)
	for i := 0; i < n; i++ {
		p, err := st.Send(client.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		pending[i] = p
	}
	for i, p := range pending {
		res, err := p.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := res.Rows[0][0].Int(); got != int64(2*i) {
			t.Fatalf("call %d: got %d (responses out of order?)", i, got)
		}
	}
}

func TestConcurrentCallersOneConn(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr, client.WithWindow(16))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				want := int64(g*1000 + i)
				v, err := c.QueryValue("SELECT $1", client.Int(want))
				if err != nil {
					errs[g] = err
					return
				}
				if v.Int() != want {
					errs[g] = &mismatchError{want, v.Int()}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

type mismatchError struct{ want, got int64 }

func (e *mismatchError) Error() string {
	return "cross-talk: want " + sqltypes.NewInt(e.want).String() + " got " + sqltypes.NewInt(e.got).String()
}

func TestSeedDeterminism(t *testing.T) {
	addr, e := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	draw := func() float64 {
		if err := c.Seed(99); err != nil {
			t.Fatal(err)
		}
		v, err := c.QueryValue("SELECT random()")
		if err != nil {
			t.Fatal(err)
		}
		return v.Float()
	}
	a, b := draw(), draw()
	if a != b {
		t.Fatalf("reseeded draws differ: %v vs %v", a, b)
	}
	// And they match a local session of the same engine, same seed.
	s := e.NewSession()
	s.Seed(99)
	lv, err := s.QueryValue("SELECT random()")
	if err != nil {
		t.Fatal(err)
	}
	if lv.Float() != a {
		t.Fatalf("remote %v vs local %v", a, lv.Float())
	}
}

func TestStatsFrame(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Exec("CREATE TABLE s (x int)"); err != nil {
		t.Fatal(err)
	}
	before, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Exec("INSERT INTO s VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Commits-before.Commits != 5 {
		t.Fatalf("commit counter: before %d after %d, want +5", before.Commits, after.Commits)
	}
	// The client dials at the current protocol version, so the v5 tail is
	// present: this very connection is counted.
	if after.Legacy {
		t.Error("current-version session should get the extended stats shape")
	}
	if after.ActiveConns < 1 {
		t.Errorf("ActiveConns = %d, want ≥ 1", after.ActiveConns)
	}
	if after.Plans.CacheMisses < 1 {
		t.Errorf("CacheMisses = %d, want ≥ 1 (statements were planned)", after.Plans.CacheMisses)
	}
}

// TestExplainAnalyzeOverWire pins that EXPLAIN ANALYZE travels the wire
// as an ordinary result: one QUERY PLAN column whose rows carry actuals.
func TestExplainAnalyzeOverWire(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Exec("CREATE TABLE w (n int); INSERT INTO w VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("EXPLAIN ANALYZE SELECT n FROM w WHERE n > 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 1 || res.Cols[0] != "QUERY PLAN" {
		t.Fatalf("cols = %v, want [QUERY PLAN]", res.Cols)
	}
	var out strings.Builder
	for _, row := range res.Rows {
		out.WriteString(row[0].String())
		out.WriteByte('\n')
	}
	for _, want := range []string{"actual rows=2", "in=3", "Execution: rows=2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("remote EXPLAIN ANALYZE missing %q:\n%s", want, out.String())
		}
	}
}

// TestStatsAfterClose pins the fast-fail: Stats on a closed connection
// returns ErrClosed without attempting a round-trip.
func TestStatsAfterClose(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(); !errors.Is(err, client.ErrClosed) {
		t.Errorf("Stats after Close: %v, want ErrClosed", err)
	}
}

func TestPoolConcurrent(t *testing.T) {
	addr, _ := startServer(t)
	p, err := client.NewPool(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if err := p.Exec("CREATE TABLE pt (x int)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := p.Exec("INSERT INTO pt VALUES (1)"); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	v, err := p.QueryValue("SELECT count(*) FROM pt")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 16*25 {
		t.Fatalf("count = %v, want %d", v, 16*25)
	}
}

// TestShutdownDrainsInFlight pins the graceful-drain contract: statements
// already submitted when Shutdown begins still complete with answers.
func TestShutdownDrainsInFlight(t *testing.T) {
	e := engine.New(engine.WithSeed(42))
	srv := server.New(e, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()

	c, err := client.Dial(ln.Addr().String(), client.WithWindow(64))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare("SELECT $1")
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	pending := make([]*client.Pending, n)
	for i := 0; i < n; i++ {
		p, err := st.Send(client.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		pending[i] = p
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	// Every request was flushed to the socket before Shutdown began, so
	// the drain must answer all of them — correctly and in order.
	for i, p := range pending {
		res, err := p.Wait()
		if err != nil {
			t.Fatalf("call %d dropped by drain: %v", i, err)
		}
		if res.Rows[0][0].Int() != int64(i) {
			t.Fatalf("call %d: wrong answer %v", i, res.Rows[0][0])
		}
	}
	c.Close()
}

// TestTxnOverWire drives a transaction block through the wire protocol:
// read-your-own-writes inside the block, invisibility to a second
// connection, atomic publication at COMMIT, and a clean ROLLBACK.
func TestTxnOverWire(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	other, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()

	if err := c.Exec("CREATE TABLE kv (k int, v int); INSERT INTO kv VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("UPDATE kv SET v = 99 WHERE k = 1; INSERT INTO kv VALUES (2, 20)"); err != nil {
		t.Fatal(err)
	}
	v, err := c.QueryValue("SELECT sum(v) FROM kv")
	if err != nil || v.Int() != 119 {
		t.Fatalf("inside txn sum = %v (%v), want 119", v, err)
	}
	v, err = other.QueryValue("SELECT sum(v) FROM kv")
	if err != nil || v.Int() != 10 {
		t.Fatalf("uncommitted txn leaked: other conn sum = %v (%v), want 10", v, err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err = other.QueryValue("SELECT sum(v) FROM kv")
	if err != nil || v.Int() != 119 {
		t.Fatalf("after commit sum = %v (%v), want 119", v, err)
	}

	// ROLLBACK leaves no trace.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("DELETE FROM kv"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	v, err = other.QueryValue("SELECT sum(v) FROM kv")
	if err != nil || v.Int() != 119 {
		t.Fatalf("after rollback sum = %v (%v), want 119", v, err)
	}
}

// TestTxnErrorAbortsUntilRollback: a failed statement mid-block leaves
// the server session aborted; further statements fail Postgres-style
// until ROLLBACK, and the connection stays usable throughout.
func TestTxnErrorAbortsUntilRollback(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Exec("CREATE TABLE kv (k int, v int)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("INSERT INTO kv VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("statement on missing table succeeded")
	}
	if err := c.Exec("SELECT 1"); err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("aborted block accepted a statement: %v", err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	v, err := c.QueryValue("SELECT count(*) FROM kv")
	if err != nil || v.Int() != 0 {
		t.Fatalf("aborted block leaked rows: count = %v (%v)", v, err)
	}
}

// TestNoticesTravelTheWire: RAISE NOTICE output and transaction-control
// warnings stream back attached to responses.
func TestNoticesTravelTheWire(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Exec(`CREATE FUNCTION noisy(n int) RETURNS int AS $$
		BEGIN
		  RAISE NOTICE 'n is %', n;
		  RETURN n;
		END;
		$$ LANGUAGE plpgsql`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT noisy(7)"); err != nil {
		t.Fatal(err)
	}
	n := c.Notices()
	if len(n) != 1 || !strings.Contains(n[0], "n is 7") {
		t.Fatalf("notices = %v, want [... n is 7]", n)
	}
	if n := c.Notices(); len(n) != 0 {
		t.Fatalf("notices not drained: %v", n)
	}
	// Transaction-control warnings use the same channel.
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	n = c.Notices()
	if len(n) != 1 || !strings.Contains(n[0], "no transaction") {
		t.Fatalf("COMMIT warning = %v", n)
	}
}

// TestDisconnectRollsBackTxn: a client that vanishes mid-block must not
// wedge the engine — the server rolls the block back (releasing the
// commit lock) when the connection dies.
func TestDisconnectRollsBackTxn(t *testing.T) {
	addr, _ := startServer(t)
	setup, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if err := setup.Exec("CREATE TABLE kv (k int, v int)"); err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("INSERT INTO kv VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}
	c.Close() // abandon the block — takes the commit lock with it

	// If the server leaked the block, this write would deadlock (the test
	// binary's timeout catches it) and the count would be 2.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := setup.Exec("INSERT INTO kv VALUES (2, 20)"); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("write after abandoned txn: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	v, err := setup.QueryValue("SELECT count(*) FROM kv")
	if err != nil || v.Int() != 1 {
		t.Fatalf("count = %v (%v), want 1 (abandoned insert rolled back)", v, err)
	}
}

// TestPoolBeginPinsConn: pool transactions run isolated from the shared
// round-robin connections — concurrent autocommit traffic never lands
// inside an open block.
func TestPoolBeginPinsConn(t *testing.T) {
	addr, _ := startServer(t)
	p, err := client.NewPool(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Exec("CREATE TABLE kv (k int, v int)"); err != nil {
		t.Fatal(err)
	}

	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Exec("INSERT INTO kv VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}
	// Autocommit traffic through the pool proceeds while the block is
	// open and must not see (or join) it.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := p.QueryValue("SELECT count(*) FROM kv")
			if err != nil || v.Int() != 0 {
				t.Errorf("pool caller %d inside foreign txn: count = %v (%v)", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	v, err := tx.QueryValue("SELECT count(*) FROM kv")
	if err != nil || v.Int() != 1 {
		t.Fatalf("tx lost its own write: %v (%v)", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := p.QueryValue("SELECT count(*) FROM kv"); err != nil || v.Int() != 1 {
		t.Fatalf("after commit count = %v (%v)", v, err)
	}
	// Finished transactions refuse further use.
	if err := tx.Exec("SELECT 1"); err != client.ErrTxDone {
		t.Fatalf("tx after commit: %v, want ErrTxDone", err)
	}
	if err := tx.Commit(); err != client.ErrTxDone {
		t.Fatalf("double commit: %v, want ErrTxDone", err)
	}
	// A second Begin reuses the released pinned connection.
	tx2, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestClosedPoolAndConn: operations on a closed pool (and double-close
// of pool or connection) report ErrClosed instead of hanging or
// panicking.
func TestClosedPoolAndConn(t *testing.T) {
	addr, _ := startServer(t)
	p, err := client.NewPool(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != client.ErrClosed {
		t.Errorf("double pool close: %v, want ErrClosed", err)
	}
	if err := p.Exec("SELECT 1"); err != client.ErrClosed {
		t.Errorf("Exec on closed pool: %v, want ErrClosed", err)
	}
	if _, err := p.Query("SELECT 1"); err != client.ErrClosed {
		t.Errorf("Query on closed pool: %v, want ErrClosed", err)
	}
	if _, err := p.QueryValue("SELECT 1"); err != client.ErrClosed {
		t.Errorf("QueryValue on closed pool: %v, want ErrClosed", err)
	}
	if _, err := p.Begin(); err != client.ErrClosed {
		t.Errorf("Begin on closed pool: %v, want ErrClosed", err)
	}
	// Conn() on a closed pool stays panic-free; the connection it returns
	// is closed and reports ErrClosed on use.
	if err := p.Conn().Exec("SELECT 1"); err != client.ErrClosed {
		t.Errorf("conn from closed pool: %v, want ErrClosed", err)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != client.ErrClosed {
		t.Errorf("double conn close: %v, want ErrClosed", err)
	}
	if err := c.Exec("SELECT 1"); err != client.ErrClosed {
		t.Errorf("Exec on closed conn: %v, want ErrClosed", err)
	}
}

// TestTxNoticesDoNotLeakAcrossTx: a recycled pinned connection must not
// deliver the previous transaction's undrained notices to the next one.
func TestTxNoticesDoNotLeakAcrossTx(t *testing.T) {
	addr, _ := startServer(t)
	p, err := client.NewPool(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Exec(`CREATE FUNCTION noisy(n int) RETURNS int AS $$
		BEGIN
		  RAISE NOTICE 'n is %', n;
		  RETURN n;
		END;
		$$ LANGUAGE plpgsql`); err != nil {
		t.Fatal(err)
	}
	tx1, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Query("SELECT noisy(1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil { // notices never drained
		t.Fatal(err)
	}
	tx2, err := p.Begin() // reuses the pinned connection
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Rollback()
	if n := tx2.Notices(); len(n) != 0 {
		t.Errorf("stale notices leaked into new tx: %v", n)
	}
}

// TestQueryStream exercises the end-to-end streaming path: rows arrive
// at the sink chunk by chunk in order, the shape announcement comes
// first, a sink error cancels cleanly, and the connection keeps serving
// afterwards.
func TestQueryStream(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const gen = "WITH RECURSIVE g(i) AS (SELECT 1 UNION ALL SELECT i + 1 FROM g WHERE i < 5000) SELECT i, i * i FROM g"
	var streamed [][]client.Value
	var gotCols []string
	calls := 0
	err = c.QueryStream(gen, func(cols []string, rows [][]client.Value) error {
		calls++
		if calls == 1 {
			if rows != nil {
				t.Errorf("first sink call should announce shape only, got %d rows", len(rows))
			}
		}
		gotCols = cols
		streamed = append(streamed, rows...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls < 3 {
		t.Fatalf("rows arrived in %d calls — not streamed in chunks", calls)
	}
	if len(gotCols) != 2 {
		t.Fatalf("cols = %v", gotCols)
	}
	if len(streamed) != 5000 {
		t.Fatalf("streamed %d rows, want 5000", len(streamed))
	}
	for i, r := range streamed {
		if r[0].Int() != int64(i+1) || r[1].Int() != int64(i+1)*int64(i+1) {
			t.Fatalf("row %d = %v", i, r)
		}
	}

	// Byte-identical to the buffered path in value terms.
	res, err := c.Query(gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(streamed) {
		t.Fatalf("buffered %d rows vs streamed %d", len(res.Rows), len(streamed))
	}
	for i := range res.Rows {
		for j := range res.Rows[i] {
			if !sqltypes.Identical(res.Rows[i][j], streamed[i][j]) {
				t.Fatalf("row %d col %d: buffered %v streamed %v", i, j, res.Rows[i][j], streamed[i][j])
			}
		}
	}

	// A sink error aborts the stream but not the connection.
	seen := 0
	err = c.QueryStream(gen, func(cols []string, rows [][]client.Value) error {
		seen += len(rows)
		if seen > 100 {
			return fmt.Errorf("sink gave up")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "sink gave up") {
		t.Fatalf("sink error not surfaced: %v", err)
	}
	if v, err := c.QueryValue("SELECT 41 + 1"); err != nil || v.Int() != 42 {
		t.Fatalf("connection unusable after sink error: %v %v", v, err)
	}

	// Server-side statement errors surface through the streaming API too.
	err = c.QueryStream("SELECT * FROM missing_table", func([]string, [][]client.Value) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("server error not surfaced: %v", err)
	}
}

// TestQueryStreamNonQuery pins streaming of statements that return no
// rows: DDL and scripts answer without ever invoking the sink.
func TestQueryStreamNonQuery(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	called := false
	err = c.QueryStream("CREATE TABLE s (x int); INSERT INTO s VALUES (1)", func([]string, [][]client.Value) error {
		called = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("sink invoked for a rowless script")
	}
	if v, err := c.QueryValue("SELECT count(*) FROM s"); err != nil || v.Int() != 1 {
		t.Fatalf("script did not run: %v %v", v, err)
	}
}

package client

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrTxDone is returned by Tx methods after Commit or Rollback finished
// the transaction.
var ErrTxDone = fmt.Errorf("client: transaction already finished")

// Pool is a fixed-size, concurrent-safe pool of connections to one
// server. Requests are spread round-robin; each connection additionally
// pipelines concurrent callers, so a Pool of N connections sustains far
// more than N statements in flight.
//
// Transactions need statement affinity — every statement of a block must
// run on the one server session holding the block — and exclusivity, so
// Begin hands out a *pinned* connection (outside the shared round-robin
// set) wrapped in a Tx; it returns to a free list when the transaction
// ends. Sending BEGIN through Exec/Query instead would open a block on a
// shared connection where other callers' statements land inside it.
type Pool struct {
	addr string
	opts []Option

	conns []*Conn
	next  atomic.Uint64

	mu     sync.Mutex
	txIdle []*Conn // pinned-connection free list for Begin
	closed bool
}

// NewPool dials size connections to addr. Every connection gets the same
// options (seed, window).
func NewPool(addr string, size int, opts ...Option) (*Pool, error) {
	if size < 1 {
		return nil, fmt.Errorf("client: pool size %d, want ≥ 1", size)
	}
	p := &Pool{addr: addr, opts: opts, conns: make([]*Conn, size)}
	for i := range p.conns {
		c, err := Dial(addr, opts...)
		if err != nil {
			for _, prev := range p.conns[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("client: pool dial %d/%d: %w", i+1, size, err)
		}
		p.conns[i] = c
	}
	return p, nil
}

// Size reports the number of pooled connections.
func (p *Pool) Size() int { return len(p.conns) }

// isClosed reports whether Close ran.
func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Conn returns the next connection round-robin. Callers may hold onto it
// (e.g. to Prepare once per connection); the pool still owns it. After
// Close the returned connection is already closed — every operation on
// it reports ErrClosed.
func (p *Pool) Conn() *Conn {
	return p.conns[p.next.Add(1)%uint64(len(p.conns))]
}

// At returns pooled connection i (for per-connection setup loops).
func (p *Pool) At(i int) *Conn { return p.conns[i] }

// Exec runs a statement on the next connection.
func (p *Pool) Exec(sql string) error {
	if p.isClosed() {
		return ErrClosed
	}
	return p.Conn().Exec(sql)
}

// Query runs a query on the next connection.
func (p *Pool) Query(sql string, params ...Value) (*Result, error) {
	if p.isClosed() {
		return nil, ErrClosed
	}
	return p.Conn().Query(sql, params...)
}

// QueryValue runs a single-value query on the next connection.
func (p *Pool) QueryValue(sql string, params ...Value) (Value, error) {
	if p.isClosed() {
		return Null, ErrClosed
	}
	return p.Conn().QueryValue(sql, params...)
}

// Begin starts a transaction on a connection pinned for its duration:
// popped from the free list or freshly dialed, never shared with other
// callers, and returned when the Tx ends. The BEGIN itself travels
// before Begin returns, so the block's snapshot is pinned server-side.
func (p *Pool) Begin() (*Tx, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	var c *Conn
	if n := len(p.txIdle); n > 0 {
		c = p.txIdle[n-1]
		p.txIdle = p.txIdle[:n-1]
	}
	p.mu.Unlock()
	if c == nil {
		var err error
		if c, err = Dial(p.addr, p.opts...); err != nil {
			return nil, err
		}
	}
	if err := c.Begin(); err != nil {
		// A failed BEGIN must neither leak the pinned connection nor
		// leave a half-open block holding the server session. If the
		// connection itself died, drop it. Otherwise the error was
		// statement-level: roll back defensively (a no-op outside a
		// block — the server answers with a notice, not an error) so no
		// block survives, then recycle the still-healthy connection.
		if c.fatalErr() != nil {
			c.Close()
			return nil, err
		}
		if rbErr := c.Rollback(); rbErr != nil {
			c.Close()
			return nil, err
		}
		c.Notices() // drop the rollback's "no transaction" notice
		p.release(c)
		return nil, err
	}
	return &Tx{p: p, c: c}, nil
}

// release returns a pinned connection to the free list, or closes it
// when the pool is closed or already holds Size idle pinned connections.
func (p *Pool) release(c *Conn) {
	p.mu.Lock()
	if !p.closed && len(p.txIdle) < len(p.conns) {
		p.txIdle = append(p.txIdle, c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	c.Close()
}

// Close closes every pooled connection (including idle pinned ones).
// Later pool operations report ErrClosed; closing twice does too.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.closed = true
	idle := p.txIdle
	p.txIdle = nil
	p.mu.Unlock()

	var first error
	for _, c := range append(p.conns, idle...) {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Tx is one transaction block on a connection pinned from a Pool. It is
// not safe for concurrent use (the server session runs its statements in
// order against one block). Finish with Commit or Rollback; afterwards
// every method reports ErrTxDone.
type Tx struct {
	p    *Pool
	c    *Conn
	mu   sync.Mutex
	done bool
}

// conn returns the pinned connection, or nil after the Tx finished.
func (tx *Tx) conn() *Conn {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil
	}
	return tx.c
}

// Exec runs a statement inside the transaction.
func (tx *Tx) Exec(sql string) error {
	c := tx.conn()
	if c == nil {
		return ErrTxDone
	}
	return c.Exec(sql)
}

// Query runs a query inside the transaction.
func (tx *Tx) Query(sql string, params ...Value) (*Result, error) {
	c := tx.conn()
	if c == nil {
		return nil, ErrTxDone
	}
	return c.Query(sql, params...)
}

// QueryValue runs a single-value query inside the transaction.
func (tx *Tx) QueryValue(sql string, params ...Value) (Value, error) {
	c := tx.conn()
	if c == nil {
		return Null, ErrTxDone
	}
	return c.QueryValue(sql, params...)
}

// Notices drains NOTICE messages received on the pinned connection.
func (tx *Tx) Notices() []string {
	c := tx.conn()
	if c == nil {
		return nil
	}
	return c.Notices()
}

// Commit commits the block and releases the pinned connection.
func (tx *Tx) Commit() error { return tx.finish("COMMIT") }

// Rollback rolls the block back and releases the pinned connection.
func (tx *Tx) Rollback() error { return tx.finish("ROLLBACK") }

func (tx *Tx) finish(stmt string) error {
	tx.mu.Lock()
	if tx.done {
		tx.mu.Unlock()
		return ErrTxDone
	}
	tx.done = true
	c := tx.c
	tx.c = nil
	tx.mu.Unlock()

	err := c.Exec(stmt)
	if err != nil {
		// The connection's server session may still hold the block (and
		// with it the engine's commit lock) — don't recycle it, drop it:
		// the server rolls the block back on disconnect.
		c.Close()
		return err
	}
	c.Notices() // drop undrained notices: they must not leak into the next Tx
	// Keep at most Size idle pinned connections; beyond that (or after
	// Close) the connection is dropped.
	tx.p.release(c)
	return nil
}

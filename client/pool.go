package client

import (
	"fmt"
	"sync/atomic"
)

// Pool is a fixed-size, concurrent-safe pool of connections to one
// server. Requests are spread round-robin; each connection additionally
// pipelines concurrent callers, so a Pool of N connections sustains far
// more than N statements in flight.
type Pool struct {
	conns []*Conn
	next  atomic.Uint64
}

// NewPool dials size connections to addr. Every connection gets the same
// options (seed, window).
func NewPool(addr string, size int, opts ...Option) (*Pool, error) {
	if size < 1 {
		return nil, fmt.Errorf("client: pool size %d, want ≥ 1", size)
	}
	p := &Pool{conns: make([]*Conn, size)}
	for i := range p.conns {
		c, err := Dial(addr, opts...)
		if err != nil {
			for _, prev := range p.conns[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("client: pool dial %d/%d: %w", i+1, size, err)
		}
		p.conns[i] = c
	}
	return p, nil
}

// Size reports the number of pooled connections.
func (p *Pool) Size() int { return len(p.conns) }

// Conn returns the next connection round-robin. Callers may hold onto it
// (e.g. to Prepare once per connection); the pool still owns it.
func (p *Pool) Conn() *Conn {
	return p.conns[p.next.Add(1)%uint64(len(p.conns))]
}

// At returns pooled connection i (for per-connection setup loops).
func (p *Pool) At(i int) *Conn { return p.conns[i] }

// Exec runs a statement on the next connection.
func (p *Pool) Exec(sql string) error { return p.Conn().Exec(sql) }

// Query runs a query on the next connection.
func (p *Pool) Query(sql string, params ...Value) (*Result, error) {
	return p.Conn().Query(sql, params...)
}

// QueryValue runs a single-value query on the next connection.
func (p *Pool) QueryValue(sql string, params ...Value) (Value, error) {
	return p.Conn().QueryValue(sql, params...)
}

// Close closes every pooled connection.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

package client_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"plsqlaway/client"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/server"
)

// startServerStoppable is startServer with an explicit stop function so a
// test can kill the server mid-flight (idempotent with the cleanup).
func startServerStoppable(t *testing.T) (string, func()) {
	t.Helper()
	e := engine.New(engine.WithSeed(42))
	srv := server.New(e, server.Options{DrainGrace: 50 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

// TestSentinelOverWire: the server classifies ErrSerialization and
// ErrTxnAborted on the wire, and the client re-wraps them so errors.Is
// matches remotely exactly as it does embedded.
func TestSentinelOverWire(t *testing.T) {
	addr, _ := startServer(t)
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if err := c1.Exec("CREATE TABLE t (a int); INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}

	// Aborted block: after a failed statement, everything else must
	// report ErrTxnAborted until ROLLBACK.
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("query on missing table succeeded")
	}
	err = c1.Exec("INSERT INTO t VALUES (2)")
	if !errors.Is(err, client.ErrTxnAborted) {
		t.Fatalf("statement on aborted block: %v, want errors.Is ErrTxnAborted", err)
	}
	if errors.Is(err, client.ErrSerialization) {
		t.Fatalf("aborted-block error matched ErrSerialization too: %v", err)
	}
	if err := c1.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Serialization failure: both sides update the same row; c1 buffers
	// first but c2 commits first, so c1's COMMIT loses (first-updater-wins
	// is validated per row at commit time, not at the write statement).
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Exec("UPDATE t SET a = 10 WHERE a = 1"); err != nil {
		t.Fatal(err)
	}
	if err := c2.Exec("UPDATE t SET a = 20 WHERE a = 1"); err != nil {
		t.Fatal(err)
	}
	err = c1.Commit()
	if !errors.Is(err, client.ErrSerialization) {
		t.Fatalf("conflicting COMMIT: %v, want errors.Is ErrSerialization", err)
	}

	// A generic failure matches neither sentinel.
	err = c1.Exec("SELECT * FROM missing")
	if err == nil || errors.Is(err, client.ErrSerialization) || errors.Is(err, client.ErrTxnAborted) {
		t.Fatalf("generic error misclassified: %v", err)
	}
}

// TestPoolBeginRetry is the sentinel's point: a Pool.Begin transaction
// that loses the serialization race is retried wholesale and succeeds.
func TestPoolBeginRetry(t *testing.T) {
	addr, _ := startServer(t)
	p, err := client.NewPool(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Exec("CREATE TABLE acct (id int, bal int); INSERT INTO acct VALUES (1, 0)"); err != nil {
		t.Fatal(err)
	}

	deposit := func() error {
		tx, err := p.Begin()
		if err != nil {
			return err
		}
		if err := tx.Exec("UPDATE acct SET bal = bal + 1 WHERE id = 1"); err != nil {
			tx.Rollback()
			return err
		}
		return tx.Commit()
	}
	const workers, deposits = 4, 10
	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			for n := 0; n < deposits; {
				err := deposit()
				switch {
				case err == nil:
					n++
				case errors.Is(err, client.ErrSerialization):
					// retry the whole transaction
				default:
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	v, err := p.QueryValue("SELECT bal FROM acct WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != workers*deposits {
		t.Fatalf("balance %d, want %d", v.Int(), workers*deposits)
	}
}

// TestPoolBeginRecycling: a size-1 pool must recycle its single pinned
// connection through every Begin/Commit and Begin/Rollback cycle — if
// Begin or finish ever leaked the connection (or left a half-open block
// on it), the next cycle would hang or fail.
func TestPoolBeginRecycling(t *testing.T) {
	addr, _ := startServer(t)
	p, err := client.NewPool(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Exec("CREATE TABLE t (a int)"); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		// Committed cycle.
		tx, err := p.Begin()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := tx.Exec("INSERT INTO t VALUES (1)"); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		// Aborted cycle: the failed statement must not poison the
		// recycled connection for the next iteration.
		tx, err = p.Begin()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := tx.Exec("SELECT * FROM missing"); err == nil {
			t.Fatalf("cycle %d: query on missing table succeeded", i)
		}
		if err := tx.Rollback(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	v, err := p.QueryValue("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 10 {
		t.Fatalf("count %d, want 10", v.Int())
	}
}

// TestPoolBeginDeadServer: when the pooled connection dies underneath a
// Begin, the pool must surface an error (not hang on a connection it
// thinks is pinned) and must not recycle the dead connection.
func TestPoolBeginDeadServer(t *testing.T) {
	addr, srv := startServerStoppable(t)
	p, err := client.NewPool(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Prime the free list so the next Begin reuses a live connection
	// whose server is about to disappear.
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	srv()

	if tx, err := p.Begin(); err == nil {
		tx.Rollback()
		t.Fatal("Begin succeeded against a stopped server")
	}
}

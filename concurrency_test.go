// Concurrency stress tests for the session layer: many sessions execute
// compiled and interpreted UDFs against one shared engine while another
// goroutine interleaves DDL and DML. Run with -race (the CI race job does)
// to prove the locking discipline: shared catalog/storage/plan-cache reads
// under the read lock, DDL/DML exclusive, per-session mutable state
// unshared.
package plsqlaway_test

import (
	"fmt"
	"sync"
	"testing"

	"plsqlaway"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/workload"
)

// installCorpusTwins installs interpreted + compiled walk/parse/traverse.
func installCorpusTwins(t *testing.T, e *plsqlaway.Engine) {
	t.Helper()
	for _, name := range []string{"walk", "parse", "traverse"} {
		src := workload.Corpus[name]
		if err := e.Exec(src); err != nil {
			t.Fatal(err)
		}
		res, err := plsqlaway.Compile(src, plsqlaway.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := plsqlaway.Install(e, name+"_c", res); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentSessions runs ≥8 sessions of mixed compiled/interpreted
// UDF calls concurrently and checks every session computes the exact
// values a lone session computes.
func TestConcurrentSessions(t *testing.T) {
	const sessions = 8
	const rounds = 6

	e := newWorkloadEngine(t)
	installCorpusTwins(t, e)
	parseInput := plsqlaway.Text(workload.MakeParseInput(200, 11))

	type call struct {
		name string
		sql  string
		args []plsqlaway.Value
	}
	calls := []call{
		{"walk_c", "SELECT walk_c($1, 1000000, -1000000, 80)", []plsqlaway.Value{plsqlaway.Coord(2, 2)}},
		{"walk", "SELECT walk($1, 1000000, -1000000, 80)", []plsqlaway.Value{plsqlaway.Coord(2, 2)}},
		{"parse_c", "SELECT parse_c($1)", []plsqlaway.Value{parseInput}},
		{"parse", "SELECT parse($1)", []plsqlaway.Value{parseInput}},
		{"traverse_c", "SELECT traverse_c(0, 400)", nil},
		{"traverse", "SELECT traverse(0, 400)", nil},
	}

	// Expected values from a quiet reference session, one seed per call.
	ref := e.NewSession()
	want := make([]plsqlaway.Value, len(calls))
	for i, c := range calls {
		ref.Seed(7)
		v, err := ref.QueryValue(c.sql, c.args...)
		if err != nil {
			t.Fatalf("reference %s: %v", c.name, err)
		}
		want[i] = v
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions*rounds*len(calls))
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			for r := 0; r < rounds; r++ {
				// Stagger the call order per session so different
				// statements contend at the same instant.
				for k := range calls {
					c := calls[(w+r+k)%len(calls)]
					i := (w + r + k) % len(calls)
					s.Seed(7)
					v, err := s.QueryValue(c.sql, c.args...)
					if err != nil {
						errs <- fmt.Errorf("session %d round %d %s: %w", w, r, c.name, err)
						return
					}
					if !sqltypes.Identical(v, want[i]) {
						errs <- fmt.Errorf("session %d round %d %s: got %v want %v", w, r, c.name, v, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentSessionsWithDDL adds writers: while 8 query sessions
// hammer compiled and interpreted UDFs, two DDL/DML sessions create, fill,
// query, and drop private scratch tables and repeatedly CREATE OR REPLACE
// a function. The readers-writer lock must keep every query on a
// consistent snapshot and invalidate cached plans as versions move.
func TestConcurrentSessionsWithDDL(t *testing.T) {
	const readers = 8
	const writers = 2
	const rounds = 5

	e := newWorkloadEngine(t)
	installCorpusTwins(t, e)
	parseInput := plsqlaway.Text(workload.MakeParseInput(120, 11))

	ref := e.NewSession()
	ref.Seed(3)
	wantWalk, err := ref.QueryValue("SELECT walk_c($1, 1000000, -1000000, 60)", plsqlaway.Coord(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ref.Seed(3)
	wantParse, err := ref.QueryValue("SELECT parse($1)", parseInput)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, (readers+writers)*rounds*4)

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			for r := 0; r < rounds; r++ {
				s.Seed(3)
				v, err := s.QueryValue("SELECT walk_c($1, 1000000, -1000000, 60)", plsqlaway.Coord(1, 1))
				if err != nil {
					errs <- fmt.Errorf("reader %d: walk_c: %w", w, err)
					return
				}
				if !sqltypes.Identical(v, wantWalk) {
					errs <- fmt.Errorf("reader %d: walk_c got %v want %v", w, v, wantWalk)
					return
				}
				s.Seed(3)
				v, err = s.QueryValue("SELECT parse($1)", parseInput)
				if err != nil {
					errs <- fmt.Errorf("reader %d: parse: %w", w, err)
					return
				}
				if !sqltypes.Identical(v, wantParse) {
					errs <- fmt.Errorf("reader %d: parse got %v want %v", w, v, wantParse)
					return
				}
			}
		}(w)
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			for r := 0; r < rounds; r++ {
				tbl := fmt.Sprintf("scratch_%d_%d", w, r)
				script := fmt.Sprintf(`
					CREATE TABLE %[1]s (a int, b text);
					INSERT INTO %[1]s VALUES (1, 'one'), (2, 'two'), (3, 'three');
					UPDATE %[1]s SET a = a * 10 WHERE b <> 'two';
					DELETE FROM %[1]s WHERE a = 2;
				`, tbl)
				if err := s.Exec(script); err != nil {
					errs <- fmt.Errorf("writer %d round %d: %w", w, r, err)
					return
				}
				v, err := s.QueryValue(fmt.Sprintf("SELECT sum(a) FROM %s", tbl))
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: sum: %w", w, r, err)
					return
				}
				if v.Int() != 40 { // 10 + 30; the (2, 'two') row was deleted
					errs <- fmt.Errorf("writer %d round %d: sum=%v want 40", w, r, v)
					return
				}
				fn := fmt.Sprintf("bump_%d", w)
				def := fmt.Sprintf(`CREATE OR REPLACE FUNCTION %s(x int) RETURNS int AS $$
					BEGIN RETURN x + %d; END; $$ LANGUAGE plpgsql`, fn, r)
				if err := s.Exec(def); err != nil {
					errs <- fmt.Errorf("writer %d round %d: create function: %w", w, r, err)
					return
				}
				v, err = s.QueryValue(fmt.Sprintf("SELECT %s(100)", fn))
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: call: %w", w, r, err)
					return
				}
				if v.Int() != int64(100+r) {
					errs <- fmt.Errorf("writer %d round %d: %s(100)=%v want %d", w, r, fn, v, 100+r)
					return
				}
				if err := s.Exec(fmt.Sprintf("DROP TABLE %s", tbl)); err != nil {
					errs <- fmt.Errorf("writer %d round %d: drop: %w", w, r, err)
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPreparedStatementsAcrossSessions checks per-session prepared
// statements running concurrently, including plan-cache invalidation when
// DDL moves the catalog version mid-stream.
func TestPreparedStatementsAcrossSessions(t *testing.T) {
	e := plsqlaway.NewEngine()
	if err := e.Exec("CREATE TABLE kv (k int, v int); INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)"); err != nil {
		t.Fatal(err)
	}

	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			p, err := s.Prepare("SELECT sum(v) FROM kv WHERE k <= $1")
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < 20; r++ {
				v, err := p.QueryValue(plsqlaway.Int(2))
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", w, err)
					return
				}
				if v.Int() != 30 {
					errs <- fmt.Errorf("session %d: got %v want 30", w, v)
					return
				}
				if w == 0 && r%5 == 0 {
					// DDL from the same session between executions: the
					// shared plan cache must invalidate, the prepared
					// statement must replan transparently.
					tbl := fmt.Sprintf("pp_%d", r)
					if err := s.Exec(fmt.Sprintf("CREATE TABLE %[1]s (x int); DROP TABLE %[1]s", tbl)); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

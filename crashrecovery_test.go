//go:build !windows

package plsqlaway_test

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plsqlaway/client"
)

// TestCrashRecoveryDifferential is the durability acceptance test: run
// plsqld as a real process under a concurrent transactional workload,
// kill -9 it mid-burst, restart it on the same data directory, and check
// the recovered state against what clients observed. The invariant is
//
//	acked ⊆ recovered ⊆ submitted
//
// — every transaction a client saw COMMIT succeed for must survive the
// crash (sync=batched fsyncs before acknowledging), nothing the clients
// never sent may appear, and every recovered transaction must be atomic
// (both its INSERT and its UPDATE, never a torn half).
func TestCrashRecoveryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery differential is slow; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "plsqld")
	build := exec.Command("go", "build", "-o", bin, "./cmd/plsqld")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/plsqld: %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	var (
		mu        sync.Mutex
		submitted = map[int]bool{} // keys a client ever attempted
		acked     = map[int]bool{} // keys whose COMMIT was acknowledged
		nextKey   atomic.Int64
		ackCount  atomic.Int64
	)

	const rounds = 3
	const workers = 4
	const acksPerRound = 25

	for round := 0; round < rounds; round++ {
		addr, proc := startPlsqld(t, bin, dataDir)

		c, err := client.Dial(addr)
		if err != nil {
			t.Fatalf("round %d: dial: %v", round, err)
		}
		if round == 0 {
			if err := c.Exec("CREATE TABLE kv (k int, v int)"); err != nil {
				t.Fatalf("create table: %v", err)
			}
		} else {
			verifyRecovered(t, c, round, submitted, acked)
		}
		c.Close()

		// Burst: each worker claims fresh keys and runs
		// INSERT(k,k); UPDATE k → v=k+1 as one transaction block,
		// retrying serialization losses, until the server dies.
		killAt := ackCount.Load() + acksPerRound
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wc, err := client.Dial(addr)
				if err != nil {
					return
				}
				defer wc.Close()
				for {
					k := int(nextKey.Add(1))
					mu.Lock()
					submitted[k] = true
					mu.Unlock()
					for {
						err := transferTxn(wc, k)
						if err == nil {
							mu.Lock()
							acked[k] = true
							mu.Unlock()
							ackCount.Add(1)
							break
						}
						if errors.Is(err, client.ErrSerialization) || errors.Is(err, client.ErrTxnAborted) {
							wc.Rollback()
							continue
						}
						return // connection dead: the kill landed
					}
				}
			}()
		}

		// Let the burst make progress, then kill -9 mid-flight.
		deadline := time.Now().Add(30 * time.Second)
		for ackCount.Load() < killAt {
			if time.Now().After(deadline) {
				proc.Kill()
				t.Fatalf("round %d: only %d acks before deadline", round, ackCount.Load())
			}
			time.Sleep(time.Millisecond)
		}
		if err := proc.Kill(); err != nil { // SIGKILL
			t.Fatalf("round %d: kill: %v", round, err)
		}
		proc.Wait()
		wg.Wait()
	}

	// Final restart: the recovered state must still satisfy the
	// invariant after the last crash.
	addr, proc := startPlsqld(t, bin, dataDir)
	defer func() {
		proc.Kill()
		proc.Wait()
	}()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("final dial: %v", err)
	}
	defer c.Close()
	verifyRecovered(t, c, rounds, submitted, acked)
	t.Logf("crash differential: %d keys acked across %d kill -9 rounds, all recovered", len(acked), rounds)
}

// transferTxn runs the test's unit of work as one transaction block.
func transferTxn(c *client.Conn, k int) error {
	if err := c.Begin(); err != nil {
		return err
	}
	if err := c.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", k, k)); err != nil {
		return err
	}
	if err := c.Exec(fmt.Sprintf("UPDATE kv SET v = v + 1 WHERE k = %d", k)); err != nil {
		return err
	}
	return c.Commit()
}

// verifyRecovered asserts acked ⊆ recovered ⊆ submitted and per-row
// transaction atomicity (v = k+1, the INSERT and UPDATE together).
func verifyRecovered(t *testing.T, c *client.Conn, round int, submitted, acked map[int]bool) {
	t.Helper()
	res, err := c.Query("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatalf("round %d: recovery query: %v", round, err)
	}
	recovered := make(map[int]bool, len(res.Rows))
	for _, row := range res.Rows {
		k, v := int(row[0].Int()), int(row[1].Int())
		if !submitted[k] {
			t.Fatalf("round %d: recovered key %d was never submitted", round, k)
		}
		if v != k+1 {
			t.Fatalf("round %d: torn transaction: key %d has v=%d, want %d", round, k, v, k+1)
		}
		if recovered[k] {
			t.Fatalf("round %d: key %d recovered twice", round, k)
		}
		recovered[k] = true
	}
	for k := range acked {
		if !recovered[k] {
			t.Fatalf("round %d: acknowledged key %d lost in crash", round, k)
		}
	}
}

// startPlsqld launches the built daemon on an ephemeral port over dataDir
// and returns its address and process once it reports it is serving.
func startPlsqld(t *testing.T, bin, dataDir string) (string, *os.Process) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dataDir, "-sync", "batched")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start plsqld: %v", err)
	}

	servingRe := regexp.MustCompile(`serving profile \S+ on (\S+)`)
	addrCh := make(chan string, 1)
	var outMu sync.Mutex
	var lines []string
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			outMu.Lock()
			lines = append(lines, line)
			outMu.Unlock()
			if m := servingRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
		select {
		case addrCh <- "":
		default:
		}
	}()
	output := func() string {
		outMu.Lock()
		defer outMu.Unlock()
		return strings.Join(lines, "\n")
	}

	select {
	case addr := <-addrCh:
		if addr == "" {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("plsqld exited before serving:\n%s", output())
		}
		return addr, cmd.Process
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("plsqld did not start within 30s:\n%s", output())
		return "", nil
	}
}

module plsqlaway

go 1.24

// Differential test suite: for EVERY function in the workload corpus,
// install the interpreted original and its compiled twins (WITH RECURSIVE
// and WITH ITERATE) on the same engine and assert identical results across
// a grid of arguments, re-seeding the shared deterministic random() source
// before each evaluation so even the stochastic robot walk must agree
// step for step. The grid below must cover the whole corpus — the test
// fails if a corpus entry has no cases, so new corpus functions cannot
// silently dodge the differential check.
package plsqlaway_test

import (
	"fmt"
	"testing"

	"plsqlaway"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/workload"
)

// diffCase is one corpus function's call template and argument grid.
type diffCase struct {
	tmpl string // e.g. "SELECT %s($1, $2)" — %s is the function name
	args [][]plsqlaway.Value
}

func ints(vals ...int64) []plsqlaway.Value {
	out := make([]plsqlaway.Value, len(vals))
	for i, v := range vals {
		out[i] = plsqlaway.Int(v)
	}
	return out
}

// differentialGrid covers every entry of workload.Corpus.
var differentialGrid = map[string]diffCase{
	"walk": {"SELECT %s($1, $2, $3, $4)", [][]plsqlaway.Value{
		{plsqlaway.Coord(0, 0), plsqlaway.Int(5), plsqlaway.Int(-5), plsqlaway.Int(10)},
		{plsqlaway.Coord(2, 2), plsqlaway.Int(3), plsqlaway.Int(-3), plsqlaway.Int(50)},
		{plsqlaway.Coord(4, 4), plsqlaway.Int(1000000), plsqlaway.Int(-1000000), plsqlaway.Int(200)},
		{plsqlaway.Coord(1, 3), plsqlaway.Int(2), plsqlaway.Int(-8), plsqlaway.Int(0)},
	}},
	"parse": {"SELECT %s($1)", [][]plsqlaway.Value{
		{plsqlaway.Text("")},
		{plsqlaway.Text("abc")},
		{plsqlaway.Text("a1 22 bcd !")},
		{plsqlaway.Text(workload.MakeParseInput(300, 5))},
		{plsqlaway.Text(workload.MakeParseInput(64, 123))},
	}},
	"traverse": {"SELECT %s($1, $2)", [][]plsqlaway.Value{
		ints(0, 0), ints(0, 100), ints(3, 300), ints(42, 7), ints(4000, 50),
	}},
	"fibonacci": {"SELECT %s($1)", [][]plsqlaway.Value{
		ints(0), ints(1), ints(2), ints(10), ints(40), ints(90),
	}},
	"gcd": {"SELECT %s($1, $2)", [][]plsqlaway.Value{
		ints(48, 36), ints(36, 48), ints(7, 13), ints(0, 5), ints(5, 0), ints(270, 192),
	}},
	"collatz": {"SELECT %s($1)", [][]plsqlaway.Value{
		ints(1), ints(2), ints(6), ints(7), ints(27), ints(97),
	}},
	"sumskip": {"SELECT %s($1)", [][]plsqlaway.Value{
		ints(0), ints(1), ints(3), ints(10), ints(100),
	}},
	"nestedloop": {"SELECT %s($1)", [][]plsqlaway.Value{
		ints(0), ints(1), ints(3), ints(40),
	}},
	"clamp": {"SELECT %s($1, $2, $3)", [][]plsqlaway.Value{
		ints(5, 1, 10), ints(-5, 1, 10), ints(50, 1, 10), ints(1, 1, 10), ints(10, 1, 10),
	}},
	"balance": {"SELECT %s($1, $2)", [][]plsqlaway.Value{
		{plsqlaway.Float(500), plsqlaway.Int(24)},
		{plsqlaway.Float(5000), plsqlaway.Int(60)},
		{plsqlaway.Float(0), plsqlaway.Int(5)},
		{plsqlaway.Float(100000), plsqlaway.Int(12)},
	}},
	"ipow": {"SELECT %s($1, $2)", [][]plsqlaway.Value{
		ints(2, 10), ints(3, 0), ints(-2, 5), ints(7, 3),
	}},
}

// newWorkloadEngine builds an engine with every workload schema installed.
func newWorkloadEngine(t *testing.T, opts ...plsqlaway.EngineOption) *plsqlaway.Engine {
	t.Helper()
	e := plsqlaway.NewEngine(append([]plsqlaway.EngineOption{plsqlaway.WithSeed(42)}, opts...)...)
	world := workload.NewRobotWorld(5, 5, 7)
	if err := world.Install(e); err != nil {
		t.Fatal(err)
	}
	if err := workload.InstallFSM(e); err != nil {
		t.Fatal(err)
	}
	if err := workload.InstallGraph(e, 4096, 3); err != nil {
		t.Fatal(err)
	}
	if err := workload.InstallFees(e); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDifferentialCorpus is the API-level differential suite.
func TestDifferentialCorpus(t *testing.T) {
	for name := range workload.Corpus {
		if _, ok := differentialGrid[name]; !ok {
			t.Errorf("corpus function %q has no differential grid — add cases", name)
		}
	}

	for name, src := range workload.Corpus {
		c, ok := differentialGrid[name]
		if !ok {
			continue
		}
		t.Run(name, func(t *testing.T) {
			e := newWorkloadEngine(t)
			if err := e.Exec(src); err != nil {
				t.Fatalf("install interpreted: %v", err)
			}
			res, err := plsqlaway.Compile(src, plsqlaway.Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := plsqlaway.Install(e, name+"_c", res); err != nil {
				t.Fatalf("install compiled: %v", err)
			}
			resIter, err := plsqlaway.Compile(src, plsqlaway.Options{Iterate: true})
			if err != nil {
				t.Fatalf("compile (iterate): %v", err)
			}
			if err := plsqlaway.Install(e, name+"_ci", resIter); err != nil {
				t.Fatalf("install compiled (iterate): %v", err)
			}

			for i, args := range c.args {
				eval := func(fn string) plsqlaway.Value {
					t.Helper()
					e.Seed(99)
					v, err := e.QueryValue(fmt.Sprintf(c.tmpl, fn), args...)
					if err != nil {
						t.Fatalf("case %d: %s: %v", i, fn, err)
					}
					return v
				}
				want := eval(name)
				got := eval(name + "_c")
				gotIter := eval(name + "_ci")
				if !sqltypes.Identical(want, got) {
					t.Errorf("case %d: interpreted=%v compiled=%v (args %v)", i, want, got, args)
				}
				if !sqltypes.Identical(want, gotIter) {
					t.Errorf("case %d: interpreted=%v iterate=%v (args %v)", i, want, gotIter, args)
				}
			}
		})
	}
}

// TestDifferentialOnSessions re-runs a sample of the grid through a
// dedicated Session (not the engine facade), confirming the session layer
// is behaviour-preserving: same seed, same stream, same answers.
func TestDifferentialOnSessions(t *testing.T) {
	e := newWorkloadEngine(t)
	src := workload.Corpus["walk"]
	if err := e.Exec(src); err != nil {
		t.Fatal(err)
	}
	res, err := plsqlaway.Compile(src, plsqlaway.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	// Install through the session: registration lands in the shared
	// catalog, so the facade sees it too.
	if err := plsqlaway.Install(s, "walk_c", res); err != nil {
		t.Fatal(err)
	}
	for _, steps := range []int64{10, 50, 200} {
		s.Seed(99)
		want, err := s.QueryValue("SELECT walk($1, 1000000, -1000000, $2)", plsqlaway.Coord(2, 2), plsqlaway.Int(steps))
		if err != nil {
			t.Fatal(err)
		}
		s.Seed(99)
		got, err := s.QueryValue("SELECT walk_c($1, 1000000, -1000000, $2)", plsqlaway.Coord(2, 2), plsqlaway.Int(steps))
		if err != nil {
			t.Fatal(err)
		}
		if !sqltypes.Identical(want, got) {
			t.Errorf("steps=%d: session interpreted=%v compiled=%v", steps, want, got)
		}
		e.Seed(99)
		facade, err := e.QueryValue("SELECT walk_c($1, 1000000, -1000000, $2)", plsqlaway.Coord(2, 2), plsqlaway.Int(steps))
		if err != nil {
			t.Fatal(err)
		}
		if !sqltypes.Identical(want, facade) {
			t.Errorf("steps=%d: session=%v facade=%v", steps, want, facade)
		}
	}
}

// TestDifferentialBatchVsTuple is the batch-vs-tuple differential pass:
// every workload in the corpus must produce identical results (same seed)
// through the vectorized batch pipeline at the default batch size, through
// a batch size that forces many mid-stream batch boundaries, and through
// batch size 1 — the configuration in which every NextBatch moves exactly
// one tuple, i.e. the legacy Volcano iteration the batch executor
// replaced. (The Executor facade's tuple-at-a-time Next() shim is covered
// by internal/engine's TestBatchRunVsNextShim, which pulls the same plans
// row by row.)
func TestDifferentialBatchVsTuple(t *testing.T) {
	for name := range workload.Corpus {
		if _, ok := differentialGrid[name]; !ok {
			t.Errorf("corpus function %q has no differential grid — add cases", name)
		}
	}

	engines := []struct {
		label string
		size  int
	}{
		{"tuple(batch=1)", 1},
		{"batch=3", 3},
		{"batch=default", 0},
	}

	for name, src := range workload.Corpus {
		c, ok := differentialGrid[name]
		if !ok {
			continue
		}
		t.Run(name, func(t *testing.T) {
			res, err := plsqlaway.Compile(src, plsqlaway.Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			resIter, err := plsqlaway.Compile(src, plsqlaway.Options{Iterate: true})
			if err != nil {
				t.Fatalf("compile (iterate): %v", err)
			}

			es := make([]*plsqlaway.Engine, len(engines))
			for i, spec := range engines {
				var opts []plsqlaway.EngineOption
				if spec.size > 0 {
					opts = append(opts, plsqlaway.WithBatchSize(spec.size))
				}
				e := newWorkloadEngine(t, opts...)
				if err := e.Exec(src); err != nil {
					t.Fatalf("%s: install interpreted: %v", spec.label, err)
				}
				if err := plsqlaway.Install(e, name+"_c", res); err != nil {
					t.Fatalf("%s: install compiled: %v", spec.label, err)
				}
				if err := plsqlaway.Install(e, name+"_ci", resIter); err != nil {
					t.Fatalf("%s: install compiled (iterate): %v", spec.label, err)
				}
				es[i] = e
			}

			for i, args := range c.args {
				for _, fn := range []string{name, name + "_c", name + "_ci"} {
					vals := make([]plsqlaway.Value, len(engines))
					for j, e := range es {
						e.Seed(7)
						v, err := e.QueryValue(fmt.Sprintf(c.tmpl, fn), args...)
						if err != nil {
							t.Fatalf("case %d: %s on %s: %v", i, fn, engines[j].label, err)
						}
						vals[j] = v
					}
					for j := 1; j < len(vals); j++ {
						if !sqltypes.Identical(vals[0], vals[j]) {
							t.Errorf("case %d: %s: %s=%v but %s=%v (args %v)",
								i, fn, engines[0].label, vals[0], engines[j].label, vals[j], args)
						}
					}
				}
			}
		})
	}
}

package plsqlaway_test

import (
	"strings"
	"testing"

	"plsqlaway"
	"plsqlaway/internal/workload"
)

// TestPublicAPIRoundTrip exercises exactly the surface the README shows.
func TestPublicAPIRoundTrip(t *testing.T) {
	e := plsqlaway.NewEngine(plsqlaway.WithSeed(7))
	if err := e.Exec(workload.GcdSrc); err != nil {
		t.Fatal(err)
	}
	res, err := plsqlaway.Compile(workload.GcdSrc, plsqlaway.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plsqlaway.Install(e, "gcd_c", res); err != nil {
		t.Fatal(err)
	}
	a, err := e.QueryValue("SELECT gcd($1, $2)", plsqlaway.Int(48), plsqlaway.Int(18))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.QueryValue("SELECT gcd_c($1, $2)", plsqlaway.Int(48), plsqlaway.Int(18))
	if err != nil {
		t.Fatal(err)
	}
	if a.Int() != 6 || b.Int() != 6 {
		t.Errorf("gcd: %v vs %v", a, b)
	}
	// Every intermediate stage is reachable from the result.
	if res.CFG == nil || res.SSA == nil || res.ANF == nil || res.UDF == nil || res.Query == nil {
		t.Error("missing intermediate forms")
	}
	if !strings.Contains(res.SQL, "WITH RECURSIVE") {
		t.Errorf("final SQL: %s", res.SQL)
	}
}

func TestPublicValueConstructors(t *testing.T) {
	e := plsqlaway.NewEngine()
	v, err := e.QueryValue("SELECT $1", plsqlaway.Coord(3, 2))
	if err != nil || v.String() != "(3,2)" {
		t.Errorf("coord param: %v %v", v, err)
	}
	v, _ = e.QueryValue("SELECT $1 || $2", plsqlaway.Text("a"), plsqlaway.Text("b"))
	if v.Text() != "ab" {
		t.Errorf("text: %v", v)
	}
	v, _ = e.QueryValue("SELECT $1 AND true", plsqlaway.Bool(false))
	if v.Bool() {
		t.Errorf("bool: %v", v)
	}
	v, _ = e.QueryValue("SELECT $1 * 2.0", plsqlaway.Float(1.25))
	if v.Float() != 2.5 {
		t.Errorf("float: %v", v)
	}
	v, _ = e.QueryValue("SELECT coalesce($1, 9)", plsqlaway.Null)
	if v.Int() != 9 {
		t.Errorf("null: %v", v)
	}
}

// TestProfilesExposed checks the three engine profiles behave as the paper
// describes at the API level.
func TestProfilesExposed(t *testing.T) {
	lite := plsqlaway.NewEngine(plsqlaway.WithProfile(plsqlaway.ProfileSQLite))
	if err := lite.Exec(workload.FibSrc); err == nil {
		t.Error("sqlite must reject plpgsql")
	}
	res, err := plsqlaway.Compile(workload.FibSrc, plsqlaway.Options{Dialect: plsqlaway.DialectSQLite})
	if err != nil {
		t.Fatal(err)
	}
	if err := plsqlaway.Install(lite, "fib", res); err != nil {
		t.Fatal(err)
	}
	v, err := lite.QueryValue("SELECT fib($1)", plsqlaway.Int(10))
	if err != nil || v.Int() != 55 {
		t.Errorf("fib on sqlite: %v %v", v, err)
	}

	ora := plsqlaway.NewEngine(plsqlaway.WithProfile(plsqlaway.ProfileOracle))
	if err := ora.Exec(workload.FibSrc); err != nil {
		t.Fatal(err)
	}
	v, err = ora.QueryValue("SELECT fibonacci($1)", plsqlaway.Int(10))
	if err != nil || v.Int() != 55 {
		t.Errorf("fib on oracle profile: %v %v", v, err)
	}
}

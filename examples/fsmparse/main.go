// Fsmparse demonstrates two §3 results on the parse() workload: the SQLite
// dialect (a system with no PL/SQL at all runs the compiled form after the
// LATERAL-free rewrite) and the WITH ITERATE space win of Table 2.
//
//	go run ./examples/fsmparse
package main

import (
	"fmt"
	"log"

	"plsqlaway"
	"plsqlaway/internal/workload"
)

func main() {
	// An engine with the SQLite profile: CREATE FUNCTION … plpgsql is
	// rejected, LATERAL is rejected — PL/SQL simply does not exist here.
	lite := plsqlaway.NewEngine(plsqlaway.WithProfile(plsqlaway.ProfileSQLite))
	if err := workload.InstallFSM(lite); err != nil {
		log.Fatal(err)
	}
	if err := lite.Exec(workload.ParseSrc); err == nil {
		log.Fatal("sqlite profile should reject plpgsql")
	} else {
		fmt.Println("sqlite profile rejects PL/pgSQL, as expected:")
		fmt.Println("   ", err)
	}

	// Compile with the SQLite dialect: no LATERAL anywhere.
	res, err := plsqlaway.Compile(workload.ParseSrc, plsqlaway.Options{Dialect: plsqlaway.DialectSQLite})
	if err != nil {
		log.Fatal(err)
	}
	if err := plsqlaway.Install(lite, "parse", res); err != nil {
		log.Fatal(err)
	}
	input := workload.MakeParseInput(300, 5)
	v, err := lite.QueryValue("SELECT parse($1)", plsqlaway.Text(input))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled parse() now runs on the PL/SQL-less engine: %v tokens in %d chars\n\n", v, len(input))

	// WITH ITERATE vs WITH RECURSIVE: page-write accounting (Table 2 in
	// miniature).
	pg := plsqlaway.NewEngine()
	if err := workload.InstallFSM(pg); err != nil {
		log.Fatal(err)
	}
	rec, err := plsqlaway.Compile(workload.ParseSrc, plsqlaway.Options{})
	if err != nil {
		log.Fatal(err)
	}
	iter, err := plsqlaway.Compile(workload.ParseSrc, plsqlaway.Options{Iterate: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := plsqlaway.Install(pg, "parse_rec", rec); err != nil {
		log.Fatal(err)
	}
	if err := plsqlaway.Install(pg, "parse_iter", iter); err != nil {
		log.Fatal(err)
	}
	big := plsqlaway.Text(workload.MakeParseInput(5000, 5))

	pg.StorageStats().Reset()
	if _, err := pg.QueryValue("SELECT parse_rec($1)", big); err != nil {
		log.Fatal(err)
	}
	recWrites := pg.StorageStats().PageWrites

	pg.StorageStats().Reset()
	if _, err := pg.QueryValue("SELECT parse_iter($1)", big); err != nil {
		log.Fatal(err)
	}
	iterWrites := pg.StorageStats().PageWrites

	fmt.Println("buffer page writes for 5 000 input characters (Table 2 in miniature):")
	fmt.Printf("  WITH RECURSIVE: %6d pages (the whole tail-recursion trace)\n", recWrites)
	fmt.Printf("  WITH ITERATE:   %6d pages (latest activation only)\n", iterWrites)
}

// Robotwalk runs the paper's running example end to end: the Markov-policy
// robot of Figures 1–3, interpreted vs compiled, with the context-switch
// profile of each.
//
//	go run ./examples/robotwalk
package main

import (
	"fmt"
	"log"
	"time"

	"plsqlaway"
	"plsqlaway/internal/workload"
)

func main() {
	e := plsqlaway.NewEngine(plsqlaway.WithSeed(7))

	// Build the 5×5 grid world: rewards, straying model, and the policy
	// computed by value iteration (the paper's "precomputed by a Markov
	// decision process").
	world := workload.NewRobotWorld(5, 5, 7)
	if err := world.Install(e); err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy (value iteration, γ=0.9):")
	for y := world.H - 1; y >= 0; y-- {
		for x := 0; x < world.W; x++ {
			fmt.Printf(" %s", world.Policy[y][x])
		}
		fmt.Println()
	}

	// Interpreted original + compiled twin.
	if err := e.Exec(workload.WalkSrc); err != nil {
		log.Fatal(err)
	}
	res, err := plsqlaway.Compile(workload.WalkSrc, plsqlaway.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := plsqlaway.Install(e, "walk_c", res); err != nil {
		log.Fatal(err)
	}

	const steps = 10_000
	args := []plsqlaway.Value{
		plsqlaway.Coord(2, 2), plsqlaway.Int(1_000_000), plsqlaway.Int(-1_000_000), plsqlaway.Int(steps),
	}

	run := func(label, call string) plsqlaway.Value {
		e.Seed(42)
		e.Counters().Reset()
		t0 := time.Now()
		v, err := e.QueryValue(call, args...)
		if err != nil {
			log.Fatal(err)
		}
		d := time.Since(t0)
		c := e.Counters()
		fmt.Printf("%-22s result=%v  time=%v  f→Qi switches=%d  executor starts=%d\n",
			label, v, d.Round(time.Millisecond), c.CtxSwitchFQ, c.ExecutorStarts)
		return v
	}

	fmt.Printf("\nwalk from (2,2), %d steps:\n", steps)
	a := run("interpreted PL/pgSQL:", "SELECT walk($1, $2, $3, $4)")
	b := run("compiled (recursive):", "SELECT walk_c($1, $2, $3, $4)")
	if a.String() != b.String() {
		log.Fatalf("results differ: %v vs %v", a, b)
	}
	fmt.Println("\nidentical results — and the compiled form needed no PL/SQL interpreter at all.")
}

// Graphtraverse shows inlining (the paper's §4 outlook): a query calling
// traverse() once per row is rewritten so every call site becomes the
// compiled WITH RECURSIVE subquery — one joint plan, zero context switches.
//
//	go run ./examples/graphtraverse
package main

import (
	"fmt"
	"log"
	"time"

	"plsqlaway"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqlparser"
	"plsqlaway/internal/workload"
)

func main() {
	e := plsqlaway.NewEngine()
	if err := workload.InstallGraph(e, 2048, 3); err != nil {
		log.Fatal(err)
	}
	if err := e.Exec(workload.TraverseSrc); err != nil {
		log.Fatal(err)
	}
	res, err := plsqlaway.Compile(workload.TraverseSrc, plsqlaway.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := e.Exec("CREATE TABLE probes (start int); INSERT INTO probes SELECT DISTINCT e.src FROM edges AS e WHERE e.src < 64"); err != nil {
		log.Fatal(err)
	}

	outerSQL := "SELECT sum(traverse(p.start, 500)) FROM probes AS p"
	outer, err := sqlparser.ParseQuery(outerSQL)
	if err != nil {
		log.Fatal(err)
	}

	// Interpreted: one Q→f switch per probe row, three context switches
	// per hop inside.
	e.Counters().Reset()
	t0 := time.Now()
	interp, err := e.Query(outerSQL)
	if err != nil {
		log.Fatal(err)
	}
	dInterp := time.Since(t0)
	switches := e.Counters().CtxSwitchQF
	fq := e.Counters().CtxSwitchFQ

	// Inlined: every traverse(p.start, 500) call site becomes the compiled
	// WITH RECURSIVE subquery.
	inlined := res.Inline(outer)
	e.Counters().Reset()
	t0 = time.Now()
	comp, err := e.QueryPlanned(inlined)
	if err != nil {
		log.Fatal(err)
	}
	dComp := time.Since(t0)

	fmt.Printf("interpreted: %v  (%v; %d Q→f switches, %d f→Qi switches)\n",
		interp.Rows[0][0], dInterp.Round(time.Millisecond), switches, fq)
	fmt.Printf("inlined:     %v  (%v; %d Q→f switches, %d f→Qi switches)\n",
		comp.Rows[0][0], dComp.Round(time.Millisecond), e.Counters().CtxSwitchQF, e.Counters().CtxSwitchFQ)
	fmt.Println("\nfirst 160 chars of the inlined query:")
	s := sqlast.DeparseQuery(inlined)
	if len(s) > 160 {
		s = s[:160] + "…"
	}
	fmt.Println(" ", s)
}

// Quickstart: compile a PL/pgSQL function away and watch the context
// switches disappear — then serve the same engine over TCP and call the
// compiled function from a remote client.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"plsqlaway"
	"plsqlaway/client"
)

const gcdSrc = `
CREATE FUNCTION gcd(x int, y int) RETURNS int AS $$
DECLARE t int;
BEGIN
  WHILE y <> 0 LOOP
    t = y;
    y = x % y;
    x = t;
  END LOOP;
  RETURN x;
END;
$$ LANGUAGE plpgsql`

func main() {
	e := plsqlaway.NewEngine()

	// 1. Register the interpreted original.
	if err := e.Exec(gcdSrc); err != nil {
		log.Fatal(err)
	}

	// 2. Compile it away: PL/SQL → SSA → ANF → tail-recursive UDF →
	//    WITH RECURSIVE.
	res, err := plsqlaway.Compile(gcdSrc, plsqlaway.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("── the emitted pure-SQL form ──")
	fmt.Println(res.SQL)
	fmt.Println()

	// 3. Install the compiled twin and compare.
	if err := plsqlaway.Install(e, "gcd_c", res); err != nil {
		log.Fatal(err)
	}
	a, err := e.QueryValue("SELECT gcd($1, $2)", plsqlaway.Int(270), plsqlaway.Int(192))
	if err != nil {
		log.Fatal(err)
	}
	b, err := e.QueryValue("SELECT gcd_c($1, $2)", plsqlaway.Int(270), plsqlaway.Int(192))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreted gcd(270, 192) = %v\n", a)
	fmt.Printf("compiled    gcd(270, 192) = %v\n", b)

	// 4. The intermediate forms are all inspectable.
	fmt.Println("\n── ANF (the paper's Figure 6 shape) ──")
	fmt.Print(res.ANF.Dump())

	// 5. Serve the engine over TCP and call the compiled function
	//    remotely (in production this is `plsqld`, and the client dials
	//    across machines).
	srv := plsqlaway.NewServer(e, plsqlaway.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	conn, err := client.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	r, err := conn.QueryValue("SELECT gcd_c($1, $2)", client.Int(270), client.Int(192))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n── over the wire ──\nremote gcd_c(270, 192) = %v\n", r)
	conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}

// Property-style MVCC test: randomized interleavings of INSERT, UPDATE,
// and DELETE across concurrent writer sessions, with reader sessions
// asserting that every scan equals the state after some serial prefix of
// the commit history. Each writer maintains invariants that hold after
// every one of its commits — its rows' sequence numbers form a contiguous
// range and its generation column is uniform — so any snapshot that is a
// prefix of the (totally ordered) commit history satisfies them, and any
// torn or non-prefix view violates one.
package plsqlaway_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"plsqlaway"
)

func TestMVCCRandomInterleavings(t *testing.T) {
	const writers = 4
	const readers = 8
	const opsPerWriter = 50

	e := plsqlaway.NewEngine()
	if err := e.Exec("CREATE TABLE prop (wid int, seq int, gen int)"); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			ins, err := s.Prepare("INSERT INTO prop VALUES ($1, $2, $3)")
			if err != nil {
				errs <- err
				return
			}
			del, err := s.Prepare("DELETE FROM prop WHERE wid = $1 AND seq = $2")
			if err != nil {
				errs <- err
				return
			}
			upd, err := s.Prepare("UPDATE prop SET gen = $2 WHERE wid = $1")
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			lo, hi, gen := 0, 0, 0
			for i := 0; i < opsPerWriter; i++ {
				var err error
				switch op := rng.Intn(10); {
				case op < 5: // append the next sequence number
					err = ins.Exec(plsqlaway.Int(int64(w)), plsqlaway.Int(int64(hi)), plsqlaway.Int(int64(gen)))
					hi++
				case op < 8 && lo < hi: // trim the lowest sequence number
					err = del.Exec(plsqlaway.Int(int64(w)), plsqlaway.Int(int64(lo)))
					lo++
				default: // bump every row to a fresh generation
					gen++
					err = upd.Exec(plsqlaway.Int(int64(w)), plsqlaway.Int(int64(gen)))
				}
				if err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	go func() {
		// Readers run until every writer finished.
		wg.Wait()
		stop.Store(true)
	}()

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			s := e.NewSession()
			scan, err := s.Prepare("SELECT wid, seq, gen FROM prop")
			if err != nil {
				errs <- err
				return
			}
			for !stop.Load() {
				res, err := scan.Query()
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				seqs := make(map[int64][]int64)
				gens := make(map[int64]map[int64]bool)
				for _, row := range res.Rows {
					w, seq, gen := row[0].Int(), row[1].Int(), row[2].Int()
					seqs[w] = append(seqs[w], seq)
					if gens[w] == nil {
						gens[w] = map[int64]bool{}
					}
					gens[w][gen] = true
				}
				for w, ss := range seqs {
					// Contiguous range: min..max with no gaps and no dupes.
					min, max := ss[0], ss[0]
					seen := make(map[int64]bool, len(ss))
					for _, v := range ss {
						if v < min {
							min = v
						}
						if v > max {
							max = v
						}
						if seen[v] {
							errs <- fmt.Errorf("reader %d: writer %d: duplicate seq %d", r, w, v)
							return
						}
						seen[v] = true
					}
					if int(max-min)+1 != len(ss) {
						errs <- fmt.Errorf("reader %d: writer %d: non-contiguous seqs %v — not a prefix of its commit history", r, w, ss)
						return
					}
					if len(gens[w]) != 1 {
						errs <- fmt.Errorf("reader %d: writer %d: mixed generations %v — UPDATE observed half-applied", r, w, gens[w])
						return
					}
				}
			}
		}(r)
	}

	rg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Final state must equal the full commit history replayed serially:
	// recompute each writer's (lo, hi, gen) from its deterministic op
	// stream and compare.
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(1000 + w)))
		lo, hi, gen := 0, 0, 0
		for i := 0; i < opsPerWriter; i++ {
			switch op := rng.Intn(10); {
			case op < 5:
				hi++
			case op < 8 && lo < hi:
				lo++
			default:
				gen++
			}
		}
		res, err := e.Query("SELECT count(*), min(seq), max(seq), min(gen), max(gen) FROM prop WHERE wid = $1", plsqlaway.Int(int64(w)))
		if err != nil {
			t.Fatal(err)
		}
		row := res.Rows[0]
		if row[0].Int() != int64(hi-lo) {
			t.Errorf("writer %d: final count %d, want %d", w, row[0].Int(), hi-lo)
			continue
		}
		if hi-lo > 0 {
			if row[1].Int() != int64(lo) || row[2].Int() != int64(hi-1) {
				t.Errorf("writer %d: final range [%d,%d], want [%d,%d]", w, row[1].Int(), row[2].Int(), lo, hi-1)
			}
			if row[3].Int() != row[4].Int() {
				t.Errorf("writer %d: final generations mixed: %d..%d", w, row[3].Int(), row[4].Int())
			}
		}
	}
}

// TestMVCCFirstUpdaterWins runs rounds of deliberately overlapping
// explicit transactions — every writer buffers its UPDATE before any
// writer commits, enforced by a barrier — and checks the optimistic
// write path's core properties: (1) every commit conflict surfaces as
// ErrSerialization and nothing else; (2) per contended key, at least
// one writer wins each round (first updater) and later committers of
// the same key lose; (3) the final state equals the serial replay of
// the successful commits — each success incremented exactly one row
// once, so the table's sum must equal the number of successes.
func TestMVCCFirstUpdaterWins(t *testing.T) {
	const writers = 8
	const rounds = 40
	const rows = 4 // few rows + many writers = guaranteed overlap

	e := plsqlaway.NewEngine()
	if err := e.Exec("CREATE TABLE acc (k int, v int)"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rows; k++ {
		if err := e.Exec(fmt.Sprintf("INSERT INTO acc VALUES (%d, 0)", k)); err != nil {
			t.Fatal(err)
		}
	}

	sessions := make([]*plsqlaway.Session, writers)
	for w := range sessions {
		sessions[w] = e.NewSession()
	}
	rng := rand.New(rand.NewSource(7001))

	var successes, conflicts int64
	for r := 0; r < rounds; r++ {
		keys := make([]int, writers)
		for w := range keys {
			keys[w] = rng.Intn(rows)
		}

		// Phase 1: every writer opens a block and buffers its update.
		// All snapshots are pinned before any commit, so two writers on
		// the same key MUST conflict at commit time.
		for w, s := range sessions {
			if err := s.Exec("BEGIN"); err != nil {
				t.Fatalf("round %d writer %d: BEGIN: %v", r, w, err)
			}
			if err := s.Exec(fmt.Sprintf("UPDATE acc SET v = v + 1 WHERE k = %d", keys[w])); err != nil {
				t.Fatalf("round %d writer %d: UPDATE: %v", r, w, err)
			}
		}

		// Phase 2: commit concurrently; tally outcomes per key.
		outcome := make([]error, writers)
		var wg sync.WaitGroup
		for w, s := range sessions {
			wg.Add(1)
			go func(w int, s *plsqlaway.Session) {
				defer wg.Done()
				outcome[w] = s.Exec("COMMIT")
			}(w, s)
		}
		wg.Wait()

		wonKey := make(map[int]int)
		for w, err := range outcome {
			switch {
			case err == nil:
				successes++
				wonKey[keys[w]]++
			case errors.Is(err, plsqlaway.ErrSerialization):
				conflicts++
			default:
				t.Fatalf("round %d writer %d: COMMIT failed with non-serialization error: %v", r, w, err)
			}
			if sessions[w].InTxn() {
				t.Fatalf("round %d writer %d: still in a block after COMMIT returned", r, w)
			}
		}
		// First-updater-wins, not all-updaters-lose: exactly one winner
		// per contended key each round.
		for _, k := range keys {
			if wonKey[k] != 1 {
				t.Fatalf("round %d: key %d had %d winning commits, want exactly 1", r, k, wonKey[k])
			}
		}
	}

	res, err := e.Query("SELECT sum(v) FROM acc")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != successes {
		t.Errorf("sum(v) = %d, want %d (the number of successful commits): lost or duplicated an update",
			got, successes)
	}
	// 8 writers on 4 keys overlap every round by pigeonhole, so losers
	// must exist; zero conflicts would mean validation never fired.
	if conflicts == 0 {
		t.Errorf("no serialization conflicts across %d overlapping rounds — first-updater-wins validation never fired", rounds)
	}
	t.Logf("commits=%d conflicts=%d", successes, conflicts)
}

// TestMVCCVacuumSavepoint pins a snapshot with a long-lived transaction
// block (holding a savepoint), churns other rows hard enough to generate
// many dead versions and vacuum passes, and asserts the pinned block
// keeps reading its original snapshot throughout — including across a
// ROLLBACK TO that unwinds part of its own buffered writes.
func TestMVCCVacuumSavepoint(t *testing.T) {
	const churners = 4
	const churnOps = 60

	e := plsqlaway.NewEngine()
	for _, stmt := range []string{
		"CREATE TABLE pin (k int, v int)",
		"CREATE TABLE churn (k int, v int)",
	} {
		if err := e.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 8; k++ {
		if err := e.Exec(fmt.Sprintf("INSERT INTO pin VALUES (%d, 0)", k)); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < churners; k++ {
		if err := e.Exec(fmt.Sprintf("INSERT INTO churn VALUES (%d, 0)", k)); err != nil {
			t.Fatal(err)
		}
	}

	a := e.NewSession()
	sumOf := func(table string) int64 {
		t.Helper()
		res, err := a.Query("SELECT sum(v) FROM " + table)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].Int()
	}

	for _, stmt := range []string{
		"BEGIN",
		"UPDATE pin SET v = 1",
		"SAVEPOINT sp",
		"UPDATE pin SET v = 2",
	} {
		if err := a.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}

	// Churn: each goroutine repeatedly rewrites its own churn row in
	// autocommit mode, piling up dead versions that invite vacuum while
	// a's block pins an old snapshot.
	var wg sync.WaitGroup
	errs := make(chan error, churners)
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := e.NewSession()
			for i := 0; i < churnOps; i++ {
				if err := s.Exec(fmt.Sprintf("UPDATE churn SET v = v + 1 WHERE k = %d", c)); err != nil {
					errs <- fmt.Errorf("churner %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The pinned block must still see churn as it was at BEGIN — vacuum
	// may not have reclaimed versions its snapshot can reach.
	if got := sumOf("churn"); got != 0 {
		t.Errorf("pinned snapshot read churn sum %d, want 0: vacuum or churn leaked into an old snapshot", got)
	}
	if got := sumOf("pin"); got != 16 {
		t.Errorf("in-block read of pin sum = %d, want 16 (v=2 on 8 rows)", got)
	}
	if err := a.Exec("ROLLBACK TO sp"); err != nil {
		t.Fatal(err)
	}
	if got := sumOf("pin"); got != 8 {
		t.Errorf("after ROLLBACK TO sp, pin sum = %d, want 8 (v=1 on 8 rows)", got)
	}
	if got := sumOf("churn"); got != 0 {
		t.Errorf("after ROLLBACK TO sp, churn sum = %d, want 0", got)
	}
	if err := a.Exec("COMMIT"); err != nil {
		t.Fatalf("COMMIT of disjoint-key block should not conflict: %v", err)
	}

	// Fresh snapshot: a's surviving writes plus everything the churners did.
	if got := sumOf("pin"); got != 8 {
		t.Errorf("final pin sum = %d, want 8", got)
	}
	if got := sumOf("churn"); got != churners*churnOps {
		t.Errorf("final churn sum = %d, want %d", got, churners*churnOps)
	}
}

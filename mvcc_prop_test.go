// Property-style MVCC test: randomized interleavings of INSERT, UPDATE,
// and DELETE across concurrent writer sessions, with reader sessions
// asserting that every scan equals the state after some serial prefix of
// the commit history. Each writer maintains invariants that hold after
// every one of its commits — its rows' sequence numbers form a contiguous
// range and its generation column is uniform — so any snapshot that is a
// prefix of the (totally ordered) commit history satisfies them, and any
// torn or non-prefix view violates one.
package plsqlaway_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"plsqlaway"
)

func TestMVCCRandomInterleavings(t *testing.T) {
	const writers = 4
	const readers = 8
	const opsPerWriter = 50

	e := plsqlaway.NewEngine()
	if err := e.Exec("CREATE TABLE prop (wid int, seq int, gen int)"); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			ins, err := s.Prepare("INSERT INTO prop VALUES ($1, $2, $3)")
			if err != nil {
				errs <- err
				return
			}
			del, err := s.Prepare("DELETE FROM prop WHERE wid = $1 AND seq = $2")
			if err != nil {
				errs <- err
				return
			}
			upd, err := s.Prepare("UPDATE prop SET gen = $2 WHERE wid = $1")
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			lo, hi, gen := 0, 0, 0
			for i := 0; i < opsPerWriter; i++ {
				var err error
				switch op := rng.Intn(10); {
				case op < 5: // append the next sequence number
					err = ins.Exec(plsqlaway.Int(int64(w)), plsqlaway.Int(int64(hi)), plsqlaway.Int(int64(gen)))
					hi++
				case op < 8 && lo < hi: // trim the lowest sequence number
					err = del.Exec(plsqlaway.Int(int64(w)), plsqlaway.Int(int64(lo)))
					lo++
				default: // bump every row to a fresh generation
					gen++
					err = upd.Exec(plsqlaway.Int(int64(w)), plsqlaway.Int(int64(gen)))
				}
				if err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	go func() {
		// Readers run until every writer finished.
		wg.Wait()
		stop.Store(true)
	}()

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			s := e.NewSession()
			scan, err := s.Prepare("SELECT wid, seq, gen FROM prop")
			if err != nil {
				errs <- err
				return
			}
			for !stop.Load() {
				res, err := scan.Query()
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				seqs := make(map[int64][]int64)
				gens := make(map[int64]map[int64]bool)
				for _, row := range res.Rows {
					w, seq, gen := row[0].Int(), row[1].Int(), row[2].Int()
					seqs[w] = append(seqs[w], seq)
					if gens[w] == nil {
						gens[w] = map[int64]bool{}
					}
					gens[w][gen] = true
				}
				for w, ss := range seqs {
					// Contiguous range: min..max with no gaps and no dupes.
					min, max := ss[0], ss[0]
					seen := make(map[int64]bool, len(ss))
					for _, v := range ss {
						if v < min {
							min = v
						}
						if v > max {
							max = v
						}
						if seen[v] {
							errs <- fmt.Errorf("reader %d: writer %d: duplicate seq %d", r, w, v)
							return
						}
						seen[v] = true
					}
					if int(max-min)+1 != len(ss) {
						errs <- fmt.Errorf("reader %d: writer %d: non-contiguous seqs %v — not a prefix of its commit history", r, w, ss)
						return
					}
					if len(gens[w]) != 1 {
						errs <- fmt.Errorf("reader %d: writer %d: mixed generations %v — UPDATE observed half-applied", r, w, gens[w])
						return
					}
				}
			}
		}(r)
	}

	rg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Final state must equal the full commit history replayed serially:
	// recompute each writer's (lo, hi, gen) from its deterministic op
	// stream and compare.
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(1000 + w)))
		lo, hi, gen := 0, 0, 0
		for i := 0; i < opsPerWriter; i++ {
			switch op := rng.Intn(10); {
			case op < 5:
				hi++
			case op < 8 && lo < hi:
				lo++
			default:
				gen++
			}
		}
		res, err := e.Query("SELECT count(*), min(seq), max(seq), min(gen), max(gen) FROM prop WHERE wid = $1", plsqlaway.Int(int64(w)))
		if err != nil {
			t.Fatal(err)
		}
		row := res.Rows[0]
		if row[0].Int() != int64(hi-lo) {
			t.Errorf("writer %d: final count %d, want %d", w, row[0].Int(), hi-lo)
			continue
		}
		if hi-lo > 0 {
			if row[1].Int() != int64(lo) || row[2].Int() != int64(hi-1) {
				t.Errorf("writer %d: final range [%d,%d], want [%d,%d]", w, row[1].Int(), row[2].Int(), lo, hi-1)
			}
			if row[3].Int() != row[4].Int() {
				t.Errorf("writer %d: final generations mixed: %d..%d", w, row[3].Int(), row[4].Int())
			}
		}
	}
}

// Snapshot-isolation semantics tests: readers pinned to a snapshot must
// never observe a concurrent writer's half-applied statement, repeated
// reads inside one statement must be stable, and DDL racing readers must
// produce clean errors, never torn state. Run with -race (the CI race job
// does) with ≥8 concurrent sessions.
package plsqlaway_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"plsqlaway"
)

// TestSnapshotReaderStability flips every row of a table back and forth
// in single UPDATE statements while 8 reader sessions aggregate the
// table. Each UPDATE commits atomically, so a consistent snapshot shows
// either all-zeros or all-ones — a mixed result means a reader saw a
// commit mid-statement.
func TestSnapshotReaderStability(t *testing.T) {
	const readers = 8
	const flips = 40
	const tableRows = 256

	e := plsqlaway.NewEngine()
	var sb strings.Builder
	sb.WriteString("CREATE TABLE flip (k int, v int); INSERT INTO flip VALUES ")
	for i := 0; i < tableRows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 0)", i)
	}
	if err := e.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		s := e.NewSession()
		for i := 0; i < flips; i++ {
			if err := s.Exec("UPDATE flip SET v = 1 - v"); err != nil {
				errs <- fmt.Errorf("writer flip %d: %w", i, err)
				return
			}
		}
	}()

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			for !stop.Load() {
				res, err := s.Query("SELECT min(v), max(v), count(*) FROM flip")
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
				lo, hi, n := res.Rows[0][0].Int(), res.Rows[0][1].Int(), res.Rows[0][2].Int()
				if lo != hi {
					errs <- fmt.Errorf("reader %d: torn snapshot, min=%d max=%d", w, lo, hi)
					return
				}
				if n != tableRows {
					errs <- fmt.Errorf("reader %d: count=%d, want %d", w, n, tableRows)
					return
				}
				// Repeated reads inside ONE statement must agree even while
				// commits land between statements: both subqueries scan the
				// same pinned snapshot.
				v, err := s.QueryValue("SELECT (SELECT sum(v) FROM flip) - (SELECT sum(v) FROM flip)")
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
				if v.Int() != 0 {
					errs <- fmt.Errorf("reader %d: repeated read drifted by %d within one statement", w, v.Int())
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSnapshotInterleavedDDL drops and recreates a table while 8 reader
// sessions query it. A reader pinned to a snapshot from before a DROP
// keeps its table; a reader planning after the DROP gets a clean
// "does not exist" error. Anything else — a panic, a torn result, a
// strange error — fails the test.
func TestSnapshotInterleavedDDL(t *testing.T) {
	const readers = 8
	const churns = 30

	e := plsqlaway.NewEngine()
	if err := e.Exec("CREATE TABLE phantom (x int); INSERT INTO phantom VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		s := e.NewSession()
		for i := 0; i < churns; i++ {
			if err := s.Exec("DROP TABLE phantom"); err != nil {
				errs <- fmt.Errorf("drop %d: %w", i, err)
				return
			}
			if err := s.Exec("CREATE TABLE phantom (x int); INSERT INTO phantom VALUES (1), (2), (3)"); err != nil {
				errs <- fmt.Errorf("recreate %d: %w", i, err)
				return
			}
		}
	}()

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			for !stop.Load() {
				v, err := s.QueryValue("SELECT sum(x) FROM phantom")
				if err != nil {
					if strings.Contains(err.Error(), "does not exist") {
						continue // clean plan-time error: the snapshot has no phantom
					}
					errs <- fmt.Errorf("reader %d: unexpected error: %w", w, err)
					return
				}
				if v.Int() != 6 {
					errs <- fmt.Errorf("reader %d: sum=%d, want 6", w, v.Int())
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSnapshotWriterAtomicTransfer moves value between two rows in single
// UPDATE statements while readers check the conserved total — the classic
// bank-transfer anomaly test for snapshot reads.
func TestSnapshotWriterAtomicTransfer(t *testing.T) {
	const readers = 8
	const transfers = 60
	const accounts = 16
	const each = 1000

	e := plsqlaway.NewEngine()
	var sb strings.Builder
	sb.WriteString("CREATE TABLE acct (id int, bal int); INSERT INTO acct VALUES ")
	for i := 0; i < accounts; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, each)
	}
	if err := e.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	const total = accounts * each

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		s := e.NewSession()
		for i := 0; i < transfers; i++ {
			from, to := i%accounts, (i*7+3)%accounts
			if from == to {
				continue
			}
			stmt := fmt.Sprintf(
				"UPDATE acct SET bal = bal + CASE id WHEN %d THEN -50 WHEN %d THEN 50 ELSE 0 END WHERE id = %d OR id = %d",
				from, to, from, to)
			if err := s.Exec(stmt); err != nil {
				errs <- fmt.Errorf("transfer %d: %w", i, err)
				return
			}
		}
	}()

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			for !stop.Load() {
				v, err := s.QueryValue("SELECT sum(bal) FROM acct")
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
				if v.Int() != total {
					errs <- fmt.Errorf("reader %d: total=%d, want %d (saw a half-applied transfer)", w, v.Int(), total)
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

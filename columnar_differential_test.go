// Columnar-vs-row-major differential suite: the same plans run through
// the executor's unboxed column-vector kernels and through the boxed
// row-major kernels, and every answer must match byte for byte. The
// corpus pass reuses the UDF differential grid (interpreted + compiled
// twins); the plain-SQL pass drives the operators the columnar layout
// touches directly — scans, filters, projections, joins, aggregates,
// sorts, NULL handling, mixed types. A final pass pins the volatile
// rule: plans containing random() force batch size 1 in both layouts, so
// the deterministic random() stream is identical regardless of layout.
package plsqlaway_test

import (
	"fmt"
	"testing"

	"plsqlaway"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/workload"
)

// columnarDiffQueries is the plain-SQL grid, run over the workload
// schemas (graph edges, robot world, fee schedule).
var columnarDiffQueries = []string{
	// Scans + filters over int columns, including empty results.
	"SELECT count(*) FROM edges WHERE src % 7 = 0",
	"SELECT count(*) FROM edges WHERE src < 0",
	"SELECT min(dst), max(dst), sum(dst) FROM edges WHERE src % 3 <> 1",
	// Projection kernels: arithmetic, comparisons, boolean logic.
	"SELECT count(*) FROM edges WHERE src + dst > 4000 AND (src % 2 = 0 OR dst % 5 = 1)",
	"SELECT sum(src * 2 - dst) FROM edges WHERE dst % 11 < 4",
	// Grouped aggregation and HAVING over a columnar scan.
	"SELECT src % 16 AS bucket, count(*), sum(dst) FROM edges GROUP BY src % 16 ORDER BY bucket",
	"SELECT src % 8 AS bucket, avg(dst) FROM edges GROUP BY src % 8 HAVING count(*) > 10 ORDER BY bucket",
	// Hash join through the columnar absorb path, plus join + aggregate.
	"SELECT count(*) FROM edges a JOIN edges b ON a.dst = b.src WHERE a.src % 101 = 5",
	"SELECT a.src % 10 AS g, count(*) FROM edges a JOIN edges b ON a.dst = b.src WHERE a.src % 37 = 2 GROUP BY a.src % 10 ORDER BY g",
	// Sort + limit over projected expressions.
	"SELECT src, dst FROM edges WHERE src % 211 = 3 ORDER BY dst DESC, src LIMIT 25",
	// NULL-producing expressions and NULL-aware aggregates.
	"SELECT count(*), count(CASE WHEN src % 2 = 0 THEN 1 ELSE NULL END) FROM edges WHERE src % 13 = 4",
	"SELECT NULL, src FROM edges WHERE src % 509 = 1 ORDER BY src LIMIT 10",
	// Mixed types: floats and text through scans and filters.
	"SELECT count(*), sum(amount) FROM fees WHERE amount > 1.0",
	"SELECT lo, hi, amount FROM fees ORDER BY lo",
	"SELECT state, count(*), min(next) FROM fsm GROUP BY state ORDER BY state LIMIT 15",
	"SELECT action, count(*) FROM actions GROUP BY action ORDER BY action",
	// Recursive CTE (the graph-traversal shape the sweep benchmarks).
	"WITH RECURSIVE r(n, i) AS (SELECT src, 0 FROM edges WHERE src = 42 UNION ALL SELECT e.dst, r.i + 1 FROM r JOIN edges e ON e.src = r.n WHERE r.i < 4) SELECT count(*), max(i) FROM r",
	// DISTINCT and set operations.
	"SELECT count(*) FROM (SELECT DISTINCT src % 64 FROM edges) d",
	"SELECT src FROM edges WHERE src % 797 = 0 UNION SELECT dst FROM edges WHERE dst % 797 = 0 ORDER BY src LIMIT 20",
}

// TestDifferentialColumnarVsRowMajor runs the full corpus and the
// plain-SQL grid through both executor layouts and demands byte-identical
// formatted results.
func TestDifferentialColumnarVsRowMajor(t *testing.T) {
	type lane struct {
		label string
		e     *plsqlaway.Engine
	}
	lanes := []lane{
		{"columnar", newWorkloadEngine(t)},
		{"row-major", newWorkloadEngine(t, plsqlaway.WithColumnar(false))},
	}

	t.Run("plain-sql", func(t *testing.T) {
		for i, q := range columnarDiffQueries {
			texts := make([]string, len(lanes))
			for j, l := range lanes {
				res, err := l.e.Query(q)
				if err != nil {
					t.Fatalf("query %d on %s: %v\n%s", i, l.label, err, q)
				}
				texts[j] = res.Format()
			}
			if texts[0] != texts[1] {
				t.Errorf("query %d diverged:\n%s\ncolumnar:\n%s\nrow-major:\n%s", i, q, texts[0], texts[1])
			}
		}
	})

	t.Run("corpus", func(t *testing.T) {
		for name, src := range workload.Corpus {
			c, ok := differentialGrid[name]
			if !ok {
				continue // TestDifferentialBatchVsTuple enforces coverage
			}
			res, err := plsqlaway.Compile(src, plsqlaway.Options{})
			if err != nil {
				t.Fatalf("compile %s: %v", name, err)
			}
			for _, l := range lanes {
				if err := l.e.Exec(src); err != nil {
					t.Fatalf("%s: install %s: %v", l.label, name, err)
				}
				if err := plsqlaway.Install(l.e, name+"_c", res); err != nil {
					t.Fatalf("%s: install %s_c: %v", l.label, name, err)
				}
			}
			for i, args := range c.args {
				for _, fn := range []string{name, name + "_c"} {
					vals := make([]plsqlaway.Value, len(lanes))
					for j, l := range lanes {
						// Re-seed before every evaluation: stochastic corpus
						// entries (the robot walk) must agree draw for draw.
						l.e.Seed(7)
						v, err := l.e.QueryValue(fmt.Sprintf(c.tmpl, fn), args...)
						if err != nil {
							t.Fatalf("%s case %d on %s: %v", fn, i, l.label, err)
						}
						vals[j] = v
					}
					if !sqltypes.Identical(vals[0], vals[1]) {
						t.Errorf("%s case %d: columnar=%v row-major=%v (args %v)", fn, i, vals[0], vals[1], args)
					}
				}
			}
		}
	})

	t.Run("volatile-batch-1", func(t *testing.T) {
		// random() makes the plan volatile, which forces batch size 1 in
		// Instantiate no matter the layout — both lanes must therefore
		// draw the same deterministic stream in the same row order.
		q := "WITH RECURSIVE g(i) AS (SELECT 1 UNION ALL SELECT i + 1 FROM g WHERE i < 200) SELECT i, random() FROM g"
		texts := make([]string, len(lanes))
		for j, l := range lanes {
			l.e.Seed(1234)
			res, err := l.e.Query(q)
			if err != nil {
				t.Fatalf("%s: %v", l.label, err)
			}
			texts[j] = res.Format()
		}
		if texts[0] != texts[1] {
			t.Errorf("volatile stream diverged across layouts:\ncolumnar:\n%s\nrow-major:\n%s", texts[0], texts[1])
		}
	})
}

// Package plsqlaway is a from-scratch Go reproduction of "Compiling PL/SQL
// Away" (Duta, Hirn, Grust — CIDR 2020): a compiler that turns PL/pgSQL
// functions with arbitrary control flow into plain SQL queries built on
// WITH RECURSIVE, plus the relational engine substrate needed to run and
// measure both evaluation regimes.
//
// The package exposes three things:
//
//   - an embedded SQL engine (NewEngine) with PL/pgSQL interpretation,
//     LATERAL joins, window functions, recursive CTEs, and the paper's
//     proposed WITH ITERATE extension;
//   - the compiler (Compile) implementing the paper's pipeline
//     PL/SQL → SSA → ANF → tail-recursive SQL UDF → WITH RECURSIVE;
//   - glue (Install, InstallInterpreted) to register either form with an
//     engine and compare them.
//
// Quick start:
//
//	e := plsqlaway.NewEngine()
//	e.Exec(`CREATE TABLE t (…)`)                 // schema
//	e.Exec(fibSrc)                               // interpreted original
//	res, _ := plsqlaway.Compile(fibSrc, plsqlaway.Options{})
//	plsqlaway.Install(e, "fib_compiled", res)    // compiled twin
//	v, _ := e.QueryValue("SELECT fib_compiled($1)", plsqlaway.Int(30))
//
// Concurrency: one engine serves many callers. The Engine methods above
// are serialized onto a built-in session; for real parallelism give each
// goroutine its own Session:
//
//	s := e.NewSession()
//	go func() { v, _ := s.QueryValue("SELECT fib_compiled($1)", plsqlaway.Int(30)) … }()
//
// Sessions share the catalog, storage, and plan cache under snapshot
// isolation with optimistic, first-updater-wins writes: readers never
// block, writers buffer privately and validate per-row at commit, and
// only the validate-and-publish step serializes. Each session keeps
// private random streams, counters, interpreter state, and prepared
// statements. BEGIN/COMMIT/ROLLBACK open multi-statement transaction
// blocks on a session: one snapshot for the whole block, buffered
// writes the block reads back, atomic publication at COMMIT — which
// fails with ErrSerialization if another transaction committed a
// change to the same rows first. SAVEPOINT / ROLLBACK TO / RELEASE
// mark and unwind points within a block.
package plsqlaway

import (
	"plsqlaway/internal/core"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/plast"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/server"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/udf"
	"plsqlaway/internal/wal"
)

// Engine is an embedded database instance. Its own query methods are safe
// for concurrent use (serialized internally); NewSession hands out
// independent sessions for parallel execution.
type Engine = engine.Engine

// Session is one caller's execution context on a shared engine: private
// random stream, counters, interpreter state, and prepared statements over
// the engine's shared catalog/storage/plan cache. Create one per goroutine
// with Engine.NewSession; a single Session is not safe for concurrent use.
type Session = engine.Session

// Prepared is a statement parsed once and executable many times on its
// session (see Session.Prepare).
type Prepared = engine.Prepared

// EngineOption configures NewEngine.
type EngineOption = engine.Option

// Result is the outcome of one compilation, carrying every intermediate
// form (CFG, SSA, ANF, UDF) and the final pure-SQL query.
type Result = core.Result

// Options configures a compilation.
type Options = core.Options

// Value is a dynamically typed SQL value.
type Value = sqltypes.Value

// Engine profile re-exports: PostgreSQL is the neutral measured profile;
// Oracle and SQLite are the paper's §3 cross-system scenarios.
var (
	ProfilePostgreSQL = profile.PostgreSQL
	ProfileOracle     = profile.Oracle
	ProfileSQLite     = profile.SQLite
)

// Dialect re-exports.
const (
	DialectPostgres = udf.DialectPostgres
	DialectSQLite   = udf.DialectSQLite
)

// Transaction sentinel errors, matchable with errors.Is. COMMIT of an
// explicit block returns ErrSerialization when first-updater-wins
// validation finds a row the block wrote that another transaction
// already re-wrote; the block has rolled back and the caller retries.
var (
	ErrSerialization = engine.ErrSerialization
	ErrTxnAborted    = engine.ErrTxnAborted
)

// NewEngine creates an embedded engine. Options: WithProfile, WithSeed,
// WithWorkMem, WithMaxRecursion (see internal/engine).
func NewEngine(opts ...engine.Option) *Engine { return engine.New(opts...) }

// OpenEngine creates a durable embedded engine rooted at dir: commits
// append to a write-ahead log there, boot replays the last checkpoint
// plus the log's complete records, and Engine.Close checkpoints. An
// empty dir yields a volatile engine, exactly like NewEngine.
func OpenEngine(dir string, opts ...engine.Option) (*Engine, error) {
	return engine.Open(dir, opts...)
}

// WAL sync-mode re-exports for WithSyncMode: when a commit is
// acknowledged relative to the log fsync.
const (
	SyncOff       = wal.SyncOff       // never fsync: survives process crashes, not OS crashes
	SyncBatched   = wal.SyncBatched   // group commit: concurrent committers share one fsync
	SyncPerCommit = wal.SyncPerCommit // one fsync per commit
)

// WithSyncMode selects the durable engine's WAL sync mode (default
// SyncBatched). Meaningless for volatile engines.
func WithSyncMode(m wal.SyncMode) engine.Option { return engine.WithSyncMode(m) }

// WithProfile selects an engine profile.
func WithProfile(p profile.Profile) engine.Option { return engine.WithProfile(p) }

// WithSeed seeds the deterministic random() source.
func WithSeed(seed uint64) engine.Option { return engine.WithSeed(seed) }

// WithWorkMem bounds tuplestore memory before spilling (bytes).
func WithWorkMem(bytes int) engine.Option { return engine.WithWorkMem(bytes) }

// WithBatchSize sets the executor's tuples-per-batch (1 degenerates to
// tuple-at-a-time Volcano iteration).
func WithBatchSize(n int) engine.Option { return engine.WithBatchSize(n) }

// WithColumnar toggles the executor's unboxed column-vector fast paths
// (default on); off forces the boxed row-major kernels everywhere.
func WithColumnar(on bool) engine.Option { return engine.WithColumnar(on) }

// Compile runs the paper's full pipeline on the text of a
// CREATE FUNCTION … LANGUAGE plpgsql statement.
func Compile(src string, opt Options) (*Result, error) { return core.Compile(src, opt) }

// Installer is any target a compiled function can be registered on — an
// *Engine or one of its *Sessions (both register into the shared catalog).
type Installer interface {
	InstallCompiled(name string, params []plast.Param, ret sqltypes.Type, body *sqlast.Query) error
}

// Install registers a compilation result with an engine (or session) under
// the given name: calls evaluate the pure-SQL form, no interpreter
// involved.
func Install(target Installer, name string, res *Result) error {
	return target.InstallCompiled(name, res.Params, res.ReturnType, res.Query)
}

// Server serves an engine over TCP with the wire protocol: one session
// per connection, pipelined execution, graceful shutdown. The client
// package (plsqlaway/client) is its counterpart; cmd/plsqld is the
// stand-alone daemon.
type Server = server.Server

// ServerOptions tunes a Server (banner, pipelining queue depth, row
// batch size, drain grace). The zero value is production-ready.
type ServerOptions = server.Options

// NewServer wraps e in a wire-protocol server. Call Serve/ListenAndServe
// to accept connections and Shutdown to drain.
func NewServer(e *Engine, opts ServerOptions) *Server { return server.New(e, opts) }

// Int builds an integer value.
func Int(i int64) Value { return sqltypes.NewInt(i) }

// Float builds a float value.
func Float(f float64) Value { return sqltypes.NewFloat(f) }

// Text builds a text value.
func Text(s string) Value { return sqltypes.NewText(s) }

// Bool builds a boolean value.
func Bool(b bool) Value { return sqltypes.NewBool(b) }

// Coord builds a coord value (the paper's grid-cell composite type).
func Coord(x, y int64) Value { return sqltypes.NewCoord(x, y) }

// Null is the SQL NULL value.
var Null = sqltypes.Null

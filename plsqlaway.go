// Package plsqlaway is a from-scratch Go reproduction of "Compiling PL/SQL
// Away" (Duta, Hirn, Grust — CIDR 2020): a compiler that turns PL/pgSQL
// functions with arbitrary control flow into plain SQL queries built on
// WITH RECURSIVE, plus the relational engine substrate needed to run and
// measure both evaluation regimes.
//
// The package exposes three things:
//
//   - an embedded SQL engine (NewEngine) with PL/pgSQL interpretation,
//     LATERAL joins, window functions, recursive CTEs, and the paper's
//     proposed WITH ITERATE extension;
//   - the compiler (Compile) implementing the paper's pipeline
//     PL/SQL → SSA → ANF → tail-recursive SQL UDF → WITH RECURSIVE;
//   - glue (Install, InstallInterpreted) to register either form with an
//     engine and compare them.
//
// Quick start:
//
//	e := plsqlaway.NewEngine()
//	e.Exec(`CREATE TABLE t (…)`)                 // schema
//	e.Exec(fibSrc)                               // interpreted original
//	res, _ := plsqlaway.Compile(fibSrc, plsqlaway.Options{})
//	plsqlaway.Install(e, "fib_compiled", res)    // compiled twin
//	v, _ := e.QueryValue("SELECT fib_compiled($1)", plsqlaway.Int(30))
package plsqlaway

import (
	"plsqlaway/internal/core"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/udf"
)

// Engine is an embedded single-session database instance.
type Engine = engine.Engine

// Result is the outcome of one compilation, carrying every intermediate
// form (CFG, SSA, ANF, UDF) and the final pure-SQL query.
type Result = core.Result

// Options configures a compilation.
type Options = core.Options

// Value is a dynamically typed SQL value.
type Value = sqltypes.Value

// Engine profile re-exports: PostgreSQL is the neutral measured profile;
// Oracle and SQLite are the paper's §3 cross-system scenarios.
var (
	ProfilePostgreSQL = profile.PostgreSQL
	ProfileOracle     = profile.Oracle
	ProfileSQLite     = profile.SQLite
)

// Dialect re-exports.
const (
	DialectPostgres = udf.DialectPostgres
	DialectSQLite   = udf.DialectSQLite
)

// NewEngine creates an embedded engine. Options: WithProfile, WithSeed,
// WithWorkMem, WithMaxRecursion (see internal/engine).
func NewEngine(opts ...engine.Option) *Engine { return engine.New(opts...) }

// WithProfile selects an engine profile.
func WithProfile(p profile.Profile) engine.Option { return engine.WithProfile(p) }

// WithSeed seeds the deterministic random() source.
func WithSeed(seed uint64) engine.Option { return engine.WithSeed(seed) }

// WithWorkMem bounds tuplestore memory before spilling (bytes).
func WithWorkMem(bytes int) engine.Option { return engine.WithWorkMem(bytes) }

// Compile runs the paper's full pipeline on the text of a
// CREATE FUNCTION … LANGUAGE plpgsql statement.
func Compile(src string, opt Options) (*Result, error) { return core.Compile(src, opt) }

// Install registers a compilation result with an engine under the given
// name: calls evaluate the pure-SQL form, no interpreter involved.
func Install(e *Engine, name string, res *Result) error {
	return e.InstallCompiled(name, res.Params, res.ReturnType, res.Query)
}

// Int builds an integer value.
func Int(i int64) Value { return sqltypes.NewInt(i) }

// Float builds a float value.
func Float(f float64) Value { return sqltypes.NewFloat(f) }

// Text builds a text value.
func Text(s string) Value { return sqltypes.NewText(s) }

// Bool builds a boolean value.
func Bool(b bool) Value { return sqltypes.NewBool(b) }

// Coord builds a coord value (the paper's grid-cell composite type).
func Coord(x, y int64) Value { return sqltypes.NewCoord(x, y) }

// Null is the SQL NULL value.
var Null = sqltypes.Null

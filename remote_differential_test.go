// Remote-vs-local differential suite: every workload in the corpus must
// produce identical results through a loopback wire-protocol server. One
// engine hosts the interpreted originals and both compiled forms; each
// grid case is evaluated on a local session and through a client
// connection (each reseeded identically first), and the answers must be
// indistinguishable — the serving layer may add a process boundary, but
// never a semantic one.
package plsqlaway_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"plsqlaway"
	"plsqlaway/client"
	"plsqlaway/internal/bench"
	"plsqlaway/internal/server"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/workload"
)

// startLoopbackServer serves e on 127.0.0.1 and returns the address.
func startLoopbackServer(t *testing.T, e *plsqlaway.Engine) string {
	t.Helper()
	srv := server.New(e, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	})
	return ln.Addr().String()
}

// TestRemoteDifferential runs the full differential grid through a
// loopback server: interpreted, compiled, and WITH ITERATE forms of
// every corpus function, remote answers diffed against local ones.
func TestRemoteDifferential(t *testing.T) {
	for name := range workload.Corpus {
		if _, ok := differentialGrid[name]; !ok {
			t.Errorf("corpus function %q has no differential grid — add cases", name)
		}
	}

	// One engine hosts the whole corpus; local sessions and remote
	// connections share it.
	e := newWorkloadEngine(t)
	for name, src := range workload.Corpus {
		if err := e.Exec(src); err != nil {
			t.Fatalf("install interpreted %s: %v", name, err)
		}
		res, err := plsqlaway.Compile(src, plsqlaway.Options{})
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		if err := plsqlaway.Install(e, name+"_c", res); err != nil {
			t.Fatalf("install compiled %s: %v", name, err)
		}
		resIter, err := plsqlaway.Compile(src, plsqlaway.Options{Iterate: true})
		if err != nil {
			t.Fatalf("compile (iterate) %s: %v", name, err)
		}
		if err := plsqlaway.Install(e, name+"_ci", resIter); err != nil {
			t.Fatalf("install compiled (iterate) %s: %v", name, err)
		}
	}
	addr := startLoopbackServer(t, e)

	for name := range workload.Corpus {
		c, ok := differentialGrid[name]
		if !ok {
			continue
		}
		t.Run(name, func(t *testing.T) {
			conn, err := client.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			local := e.NewSession()

			for i, args := range c.args {
				for _, fn := range []string{name, name + "_c", name + "_ci"} {
					sql := fmt.Sprintf(c.tmpl, fn)
					local.Seed(99)
					want, err := local.QueryValue(sql, args...)
					if err != nil {
						t.Fatalf("case %d: %s local: %v", i, fn, err)
					}
					if err := conn.Seed(99); err != nil {
						t.Fatal(err)
					}
					got, err := conn.QueryValue(sql, args...)
					if err != nil {
						t.Fatalf("case %d: %s remote: %v", i, fn, err)
					}
					if !sqltypes.Identical(want, got) {
						t.Errorf("case %d: %s: local=%v remote=%v (args %v)", i, fn, want, got, args)
					}
				}
			}
		})
	}
}

// TestRemoteWireInstalledFunction installs a compiled function purely
// over the wire — CREATE FUNCTION … LANGUAGE sql with the deparsed
// compiled body, the textual twin of plsqlaway.Install — and diffs it
// against the locally installed compiled form.
func TestRemoteWireInstalledFunction(t *testing.T) {
	e := newWorkloadEngine(t)
	src := workload.Corpus["balance"]
	if err := e.Exec(src); err != nil {
		t.Fatal(err)
	}
	res, err := plsqlaway.Compile(src, plsqlaway.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plsqlaway.Install(e, "balance_c", res); err != nil {
		t.Fatal(err)
	}
	addr := startLoopbackServer(t, e)
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Install the same compilation result through SQL text only.
	if err := conn.Exec(bench.CreateFunctionSQL("balance_w", res)); err != nil {
		t.Fatalf("wire install: %v", err)
	}
	for _, args := range differentialGrid["balance"].args {
		want, err := conn.QueryValue("SELECT balance_c($1, $2)", args...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := conn.QueryValue("SELECT balance_w($1, $2)", args...)
		if err != nil {
			t.Fatal(err)
		}
		if !sqltypes.Identical(want, got) {
			t.Errorf("args %v: api-installed=%v wire-installed=%v", args, want, got)
		}
	}
}

// TestRemoteConcurrentSessions stresses the serving path: 8 connections
// hammer compiled UDFs concurrently while a ninth runs DDL, mirroring
// the in-process concurrency suite across the process boundary.
func TestRemoteConcurrentSessions(t *testing.T) {
	e := newWorkloadEngine(t)
	src := workload.Corpus["gcd"]
	if err := e.Exec(src); err != nil {
		t.Fatal(err)
	}
	res, err := plsqlaway.Compile(src, plsqlaway.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plsqlaway.Install(e, "gcd_c", res); err != nil {
		t.Fatal(err)
	}
	addr := startLoopbackServer(t, e)

	const conns = 8
	const callsPerConn = 40
	var wg sync.WaitGroup
	errs := make([]error, conns+1)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.WithWindow(8))
			if err != nil {
				errs[g] = err
				return
			}
			defer c.Close()
			st, err := c.Prepare("SELECT gcd_c($1, $2)")
			if err != nil {
				errs[g] = err
				return
			}
			for i := 0; i < callsPerConn; i++ {
				v, err := st.QueryValue(client.Int(int64(270+g)), client.Int(int64(192+i)))
				if err != nil {
					errs[g] = err
					return
				}
				if v.IsNull() {
					errs[g] = fmt.Errorf("NULL gcd")
					return
				}
			}
		}(g)
	}
	// Concurrent DDL through its own connection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := client.Dial(addr)
		if err != nil {
			errs[conns] = err
			return
		}
		defer c.Close()
		for i := 0; i < 10; i++ {
			tbl := fmt.Sprintf("ddl_t%d", i)
			if err := c.Exec("CREATE TABLE " + tbl + " (x int)"); err != nil {
				errs[conns] = err
				return
			}
			if err := c.Exec("DROP TABLE " + tbl); err != nil {
				errs[conns] = err
				return
			}
		}
	}()
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", g, err)
		}
	}
}

// TestRemoteTxnDifferential runs the same transactional scripts
// statement by statement on an embedded session and through a loopback
// server, diffing every statement's rows, error, and notices, plus the
// final table state — the serving layer must not change transaction
// semantics (acceptance: identical results embedded vs over TCP).
func TestRemoteTxnDifferential(t *testing.T) {
	scripts := [][]string{
		{ // commit publishes everything at once
			"CREATE TABLE acct (id int, bal int)",
			"INSERT INTO acct VALUES (1, 100), (2, 100)",
			"BEGIN",
			"UPDATE acct SET bal = bal - 40 WHERE id = 1",
			"UPDATE acct SET bal = bal + 40 WHERE id = 2",
			"SELECT id, bal FROM acct ORDER BY id",
			"COMMIT",
			"SELECT id, bal FROM acct ORDER BY id",
		},
		{ // rollback leaves no trace, including DDL
			"CREATE TABLE kv (k int, v int)",
			"INSERT INTO kv VALUES (1, 10)",
			"BEGIN",
			"DELETE FROM kv",
			"CREATE TABLE scratch (x int)",
			"INSERT INTO scratch VALUES (1)",
			"SELECT count(*) FROM kv",
			"SELECT count(*) FROM scratch",
			"ROLLBACK",
			"SELECT count(*) FROM kv",
			"SELECT count(*) FROM scratch", // errors: table was never created
		},
		{ // error aborts the block until ROLLBACK; control warnings notice
			"COMMIT",
			"CREATE TABLE t3 (x int)",
			"BEGIN",
			"INSERT INTO t3 VALUES (1)",
			"SELECT * FROM missing",
			"SELECT 1",
			"COMMIT",
			"SELECT count(*) FROM t3",
		},
		{ // read-your-own-writes incl. updates of txn-inserted rows
			"CREATE TABLE rw (k int, v int)",
			"BEGIN",
			"INSERT INTO rw VALUES (1, 1), (2, 2)",
			"UPDATE rw SET v = v * 10 WHERE k = 2",
			"DELETE FROM rw WHERE k = 1",
			"SELECT k, v FROM rw ORDER BY k",
			"COMMIT",
			"SELECT k, v FROM rw ORDER BY k",
		},
	}

	for si, script := range scripts {
		t.Run(fmt.Sprintf("script%d", si), func(t *testing.T) {
			// Independent engines so embedded and remote runs cannot see
			// each other's state.
			local := plsqlaway.NewEngine(plsqlaway.WithSeed(7)).NewSession()
			re := plsqlaway.NewEngine(plsqlaway.WithSeed(7))
			addr := startLoopbackServer(t, re)
			conn, err := client.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			for i, stmt := range script {
				lres, lerr := local.Run(stmt)
				lnotices := local.DrainNotices()
				rres, rerr := conn.Query(stmt)
				rnotices := conn.Notices()

				if (lerr == nil) != (rerr == nil) {
					t.Fatalf("stmt %d %q: local err %v, remote err %v", i, stmt, lerr, rerr)
				}
				if lerr != nil {
					if want, got := lerr.Error(), strings.TrimPrefix(rerr.Error(), "server: "); want != got {
						t.Errorf("stmt %d %q: error text diverged\n local: %s\nremote: %s", i, stmt, want, got)
					}
					continue
				}
				lout, rout := "", ""
				if lres != nil {
					lout = lres.Format()
				}
				if rres != nil {
					rout = rres.Format()
				}
				if lout != rout {
					t.Errorf("stmt %d %q: results diverged\n local:\n%s\nremote:\n%s", i, stmt, lout, rout)
				}
				if fmt.Sprint(lnotices) != fmt.Sprint(rnotices) {
					t.Errorf("stmt %d %q: notices diverged local %v remote %v", i, stmt, lnotices, rnotices)
				}
			}
		})
	}
}

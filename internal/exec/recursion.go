package exec

import (
	"fmt"

	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// rowSet is one generation of a recursion working table. The hot frontier
// shape — all-integer rows with no NULLs, the paper's graph-traversal
// closure — stays columnar in unboxed int64 lanes: nothing for the GC to
// scan, one machine word per row per column, and the lanes are handed back
// to the working-table scan as zero-copy column views. Any other shape
// falls back to boxed rows. A set picks its layout on first absorb and
// demotes to rows if a later batch disagrees; each generation is a fresh
// set, so the layouts may differ across iterations. UNION dedup keeps the
// lane layout only for single-column frontiers (tupleSet's int fast path);
// wider deduped frontiers need boxed keys anyway, so they stay rows.
type rowSet struct {
	colar bool
	w     int
	lanes [][]int64
	rows  []storage.Tuple
}

func (s *rowSet) len() int {
	if s.colar {
		return len(s.lanes[0])
	}
	return len(s.rows)
}

// allIntLanes reports whether every column of the batch is a NULL-free int
// lane — the only shape the lane layout holds losslessly. Row-major batches
// answer through the Batch's cached transpose, so a seed generation
// produced by a row-major term (DISTINCT, VALUES) still lands in lanes and
// keeps every later generation columnar.
func allIntLanes(b *Batch, w int) bool {
	for c := 0; c < w; c++ {
		col, err := b.Col(c)
		if err != nil || col.Kind != ColInt {
			return false
		}
		for _, isNull := range col.Nulls {
			if isNull {
				return false
			}
		}
	}
	return true
}

// absorb appends the batch's rows, dedup-filtering through seen when
// non-nil. Row headers from row-major batches are retained as-is (producers
// materialize fresh backing for retainable rows, per the Batch contract).
func (s *rowSet) absorb(b *Batch, seen *tupleSet) {
	m := b.Len()
	if m == 0 {
		return
	}
	w := b.Width()
	if w > 0 && (seen == nil || w == 1) &&
		((s.colar && s.w == w) || s.len() == 0) && allIntLanes(b, w) {
		if !s.colar {
			s.colar = true
			s.w = w
			if cap(s.lanes) < w {
				s.lanes = make([][]int64, w)
			}
			s.lanes = s.lanes[:w]
		}
		if seen == nil {
			for c := 0; c < w; c++ {
				col, _ := b.Col(c)
				s.lanes[c] = append(s.lanes[c], col.Ints[:m]...)
			}
			return
		}
		col, _ := b.Col(0)
		for _, v := range col.Ints[:m] {
			if seen.addInt(v) {
				s.lanes[0] = append(s.lanes[0], v)
			}
		}
		return
	}
	if s.colar {
		s.demote()
	}
	if seen == nil {
		s.rows = append(s.rows, b.Rows()...)
		return
	}
	for _, t := range b.Rows() {
		if seen.add(t) {
			s.rows = append(s.rows, t)
		}
	}
}

// demote boxes the int lanes into rows (mixed-shape generations).
func (s *rowSet) demote() {
	n := s.len()
	rows := make([]storage.Tuple, 0, n)
	backing := make([]sqltypes.Value, n*s.w)
	for i := 0; i < n; i++ {
		t := backing[i*s.w : (i+1)*s.w : (i+1)*s.w]
		for c := 0; c < s.w; c++ {
			t[c] = sqltypes.NewInt(s.lanes[c][i])
		}
		rows = append(rows, storage.Tuple(t))
	}
	s.rows = rows
	s.lanes = nil
	s.colar = false
	s.w = 0
}

// emitChunk fills out with up to Cap rows starting at idx and returns the
// new index. Lane sets emit zero-copy column views through the caller's
// scratch (valid until the caller's next emit — the producer-owned-view
// lifetime); row sets emit row headers.
func (s *rowSet) emitChunk(out *Batch, idx int, views *[]Column, ptrs *[]*Column) int {
	out.begin()
	n := s.len()
	if idx >= n {
		return idx
	}
	end := idx + out.Cap()
	if end > n {
		end = n
	}
	if s.colar {
		if cap(*views) < s.w {
			*views = make([]Column, s.w)
			*ptrs = make([]*Column, s.w)
		}
		vs := (*views)[:s.w]
		ps := (*ptrs)[:s.w]
		for c := 0; c < s.w; c++ {
			vs[c] = Column{Kind: ColInt, Ints: s.lanes[c][idx:end]}
			ps[c] = &vs[c]
		}
		out.SetCols(ps, end-idx)
	} else {
		out.Append(s.rows[idx:end])
	}
	return end
}

// cteScanNode reads a common table expression. A working scan (the
// self-reference inside a recursive term) streams the current working
// table — columnar when the generation is lane-shaped; plain scans stream
// the store materialized by withNode through the store's chunked iterator.
type cteScanNode struct {
	index   int
	working bool

	// plain mode
	iter *storage.TupleIterator
	buf  []storage.Tuple
	// working mode
	set   *rowSet
	idx   int
	views []Column
	ptrs  []*Column
}

func (n *cteScanNode) Open(ctx *Ctx) error { return n.Rescan(ctx) }

func (n *cteScanNode) Rescan(ctx *Ctx) error {
	if n.working {
		if n.index >= len(ctx.cteWorking) {
			return fmt.Errorf("exec: working table %d not available", n.index)
		}
		n.set = ctx.cteWorking[n.index]
		n.idx = 0
		return nil
	}
	if n.index >= len(ctx.cteStores) || ctx.cteStores[n.index] == nil {
		return fmt.Errorf("exec: CTE %d not materialized", n.index)
	}
	n.iter = ctx.cteStores[n.index].Iterator()
	return nil
}

func (n *cteScanNode) Close(ctx *Ctx) error { return nil }

func (n *cteScanNode) NextBatch(ctx *Ctx, out *Batch) error {
	if n.working {
		if n.set == nil {
			out.begin()
			return nil
		}
		n.idx = n.set.emitChunk(out, n.idx, &n.views, &n.ptrs)
		return nil
	}
	out.begin()
	if n.iter == nil {
		return nil
	}
	if cap(n.buf) < out.Cap() {
		n.buf = make([]storage.Tuple, out.Cap())
	}
	got, err := n.iter.NextChunk(n.buf[:out.Cap()])
	if err != nil {
		return err
	}
	out.Append(n.buf[:got])
	return nil
}

// recursiveUnionNode implements WITH RECURSIVE (and the paper's WITH
// ITERATE). It streams rows so the enclosing withNode can account every
// accumulated row through a spilling TupleStore:
//
//	working ← nonRecursive term            (rows are emitted)
//	while working not empty:
//	    cteWorking[idx] ← working
//	    working ← recursive term           (rows are emitted — vanilla mode)
//
// The working tables advance a batch at a time: each step drains the
// recursive term through the batch pipeline (the working-table scan hands
// the current generation out in chunks, the hash-join probe and projection
// evaluate vectorized over those chunks), which is exactly the quadratic-
// trace hot loop of the paper's Table 2 experiment. Single-column integer
// generations live in rowSet int lanes end to end — scan emission, join
// probe, projection, dedup (tupleSet's int fast path), and the next
// generation's accumulation never box a value. UNION dedup runs through a
// tupleSet with an int fast path for single-column frontiers.
//
// Iterate mode emits nothing until the iteration converges, then emits only
// the final non-empty working table: tail recursion needs no trace, so no
// buffer pages are ever written (Table 2).
type recursiveUnionNode struct {
	nonRec, rec Node
	cteIndex    int
	iterate     bool
	dedup       bool

	phase      int // 0 = emitting current batch, 1 = done
	batch      *rowSet
	batchIdx   int
	working    *rowSet
	seen       *tupleSet
	shuttle    *Batch
	iterations int
	opened     bool
	views      []Column
	ptrs       []*Column
}

func (n *recursiveUnionNode) Open(ctx *Ctx) error {
	n.phase = 0
	n.batchIdx = 0
	n.iterations = 0
	n.seen = nil
	if n.dedup {
		n.seen = newTupleSet()
	}
	if n.shuttle == nil {
		n.shuttle = NewBatch(ctx.BatchSize)
	}
	if err := n.nonRec.Open(ctx); err != nil {
		return err
	}
	if err := n.rec.Open(ctx); err != nil {
		return err
	}
	n.opened = true
	// Seed the working table.
	var err error
	n.working, err = n.drain(ctx, n.nonRec)
	if err != nil {
		return err
	}
	if n.iterate {
		if err := n.runToConvergence(ctx); err != nil {
			return err
		}
	}
	n.batch = n.working
	return nil
}

// drain pulls all rows from a term batch-at-a-time into a fresh rowSet,
// applying UNION dedup if requested.
func (n *recursiveUnionNode) drain(ctx *Ctx, node Node) (*rowSet, error) {
	out := &rowSet{}
	for {
		if err := node.NextBatch(ctx, n.shuttle); err != nil {
			return nil, err
		}
		if n.shuttle.Len() == 0 {
			return out, nil
		}
		out.absorb(n.shuttle, n.seen)
	}
}

// step runs one round of the recursive term against the current working
// table.
func (n *recursiveUnionNode) step(ctx *Ctx) (*rowSet, error) {
	n.iterations++
	if n.iterations > ctx.MaxRecursion {
		return nil, fmt.Errorf("exec: recursion limit of %d iterations exceeded (runaway WITH RECURSIVE?)", ctx.MaxRecursion)
	}
	for len(ctx.cteWorking) <= n.cteIndex {
		ctx.cteWorking = append(ctx.cteWorking, nil)
	}
	ctx.cteWorking[n.cteIndex] = n.working
	if err := n.rec.Rescan(ctx); err != nil {
		return nil, err
	}
	return n.drain(ctx, n.rec)
}

// runToConvergence (Iterate mode) loops until the recursive term yields no
// rows, keeping only the latest working table.
func (n *recursiveUnionNode) runToConvergence(ctx *Ctx) error {
	for n.working.len() > 0 {
		next, err := n.step(ctx)
		if err != nil {
			return err
		}
		if next.len() == 0 {
			return nil // working holds the final non-empty table
		}
		n.working = next
	}
	return nil
}

func (n *recursiveUnionNode) Rescan(ctx *Ctx) error {
	if err := n.nonRec.Rescan(ctx); err != nil {
		return err
	}
	// Re-seed completely.
	n.phase = 0
	n.batchIdx = 0
	n.iterations = 0
	if n.dedup {
		n.seen = newTupleSet()
	}
	var err error
	n.working, err = n.drain(ctx, n.nonRec)
	if err != nil {
		return err
	}
	if n.iterate {
		if err := n.runToConvergence(ctx); err != nil {
			return err
		}
	}
	n.batch = n.working
	return nil
}

func (n *recursiveUnionNode) Close(ctx *Ctx) error {
	if !n.opened {
		return nil
	}
	err1 := n.nonRec.Close(ctx)
	err2 := n.rec.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

func (n *recursiveUnionNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	for {
		if n.batch != nil && n.batchIdx < n.batch.len() {
			n.batchIdx = n.batch.emitChunk(out, n.batchIdx, &n.views, &n.ptrs)
			return nil
		}
		if n.phase == 1 || n.iterate {
			return nil
		}
		if n.working.len() == 0 {
			n.phase = 1
			return nil
		}
		next, err := n.step(ctx)
		if err != nil {
			return err
		}
		n.working = next
		n.batch = next
		n.batchIdx = 0
		if next.len() == 0 {
			n.phase = 1
			return nil
		}
	}
}

// withNode owns the CTEs of one query level. Opening (or rescanning)
// re-materializes them — correlated CTE bodies (the inlined compiled
// queries) see the current outer bindings.
type withNode struct {
	indices []int
	child   Node
}

func (n *withNode) Open(ctx *Ctx) error {
	if err := n.materialize(ctx); err != nil {
		return err
	}
	return n.child.Open(ctx)
}

func (n *withNode) Rescan(ctx *Ctx) error {
	if err := n.materialize(ctx); err != nil {
		return err
	}
	return n.child.Rescan(ctx)
}

func (n *withNode) materialize(ctx *Ctx) error {
	b := NewBatch(ctx.BatchSize)
	for _, idx := range n.indices {
		for len(ctx.cteStores) <= idx {
			ctx.cteStores = append(ctx.cteStores, nil)
		}
		if ctx.cteStores[idx] != nil {
			ctx.cteStores[idx].Close()
			ctx.cteStores[idx] = nil
		}
		def := ctx.cteDefs[idx]
		if def == nil {
			return fmt.Errorf("exec: CTE %d has no instantiated definition", idx)
		}
		store := storage.NewTupleStore(ctx.StorageStats, ctx.WorkMem)
		if err := def.Open(ctx); err != nil {
			return err
		}
		for {
			if err := def.NextBatch(ctx, b); err != nil {
				def.Close(ctx)
				return err
			}
			if b.Len() == 0 {
				break
			}
			store.AppendBatch(b.Rows())
		}
		if err := def.Close(ctx); err != nil {
			return err
		}
		store.Finish()
		ctx.cteStores[idx] = store
	}
	return nil
}

func (n *withNode) Close(ctx *Ctx) error {
	for _, idx := range n.indices {
		if idx < len(ctx.cteStores) && ctx.cteStores[idx] != nil {
			ctx.cteStores[idx].Close()
			ctx.cteStores[idx] = nil
		}
	}
	return n.child.Close(ctx)
}

func (n *withNode) NextBatch(ctx *Ctx, out *Batch) error { return n.child.NextBatch(ctx, out) }

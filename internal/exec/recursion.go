package exec

import (
	"fmt"

	"plsqlaway/internal/storage"
)

// cteScanNode reads a common table expression. A working scan (the
// self-reference inside a recursive term) streams the current working
// table; plain scans stream the store materialized by withNode through the
// store's chunked iterator.
type cteScanNode struct {
	index   int
	working bool

	// plain mode
	iter *storage.TupleIterator
	buf  []storage.Tuple
	// working mode
	rows []storage.Tuple
	idx  int
}

func (n *cteScanNode) Open(ctx *Ctx) error { return n.Rescan(ctx) }

func (n *cteScanNode) Rescan(ctx *Ctx) error {
	if n.working {
		if n.index >= len(ctx.cteWorking) {
			return fmt.Errorf("exec: working table %d not available", n.index)
		}
		n.rows = ctx.cteWorking[n.index]
		n.idx = 0
		return nil
	}
	if n.index >= len(ctx.cteStores) || ctx.cteStores[n.index] == nil {
		return fmt.Errorf("exec: CTE %d not materialized", n.index)
	}
	n.iter = ctx.cteStores[n.index].Iterator()
	return nil
}

func (n *cteScanNode) Close(ctx *Ctx) error { return nil }

func (n *cteScanNode) NextBatch(ctx *Ctx, out *Batch) error {
	if n.working {
		n.idx += copyChunk(out, n.rows, n.idx)
		return nil
	}
	out.begin()
	if n.iter == nil {
		return nil
	}
	if cap(n.buf) < out.Cap() {
		n.buf = make([]storage.Tuple, out.Cap())
	}
	got, err := n.iter.NextChunk(n.buf[:out.Cap()])
	if err != nil {
		return err
	}
	out.Append(n.buf[:got])
	return nil
}

// recursiveUnionNode implements WITH RECURSIVE (and the paper's WITH
// ITERATE). It streams rows so the enclosing withNode can account every
// accumulated row through a spilling TupleStore:
//
//	working ← nonRecursive term            (rows are emitted)
//	while working not empty:
//	    cteWorking[idx] ← working
//	    working ← recursive term           (rows are emitted — vanilla mode)
//
// The working tables advance a batch at a time: each step drains the
// recursive term through the batch pipeline (the working-table scan hands
// the current generation out in chunks, the hash-join probe and projection
// evaluate vectorized over those chunks), which is exactly the quadratic-
// trace hot loop of the paper's Table 2 experiment. UNION dedup runs
// through a tupleSet with an int fast path for single-column frontiers.
//
// Iterate mode emits nothing until the iteration converges, then emits only
// the final non-empty working table: tail recursion needs no trace, so no
// buffer pages are ever written (Table 2).
type recursiveUnionNode struct {
	nonRec, rec Node
	cteIndex    int
	iterate     bool
	dedup       bool

	phase      int // 0 = emitting current batch, 1 = done
	batch      []storage.Tuple
	batchIdx   int
	working    []storage.Tuple
	seen       *tupleSet
	shuttle    *Batch
	iterations int
	opened     bool
}

func (n *recursiveUnionNode) Open(ctx *Ctx) error {
	n.phase = 0
	n.batchIdx = 0
	n.iterations = 0
	n.seen = nil
	if n.dedup {
		n.seen = newTupleSet()
	}
	if n.shuttle == nil {
		n.shuttle = NewBatch(ctx.BatchSize)
	}
	if err := n.nonRec.Open(ctx); err != nil {
		return err
	}
	if err := n.rec.Open(ctx); err != nil {
		return err
	}
	n.opened = true
	// Seed the working table.
	var err error
	n.working, err = n.drain(ctx, n.nonRec)
	if err != nil {
		return err
	}
	if n.iterate {
		if err := n.runToConvergence(ctx); err != nil {
			return err
		}
	}
	n.batch = n.working
	return nil
}

// drain pulls all rows from a term batch-at-a-time, applying UNION dedup if
// requested. UNION ALL bulk-appends whole batches.
func (n *recursiveUnionNode) drain(ctx *Ctx, node Node) ([]storage.Tuple, error) {
	var out []storage.Tuple
	if n.seen == nil {
		for {
			if err := node.NextBatch(ctx, n.shuttle); err != nil {
				return nil, err
			}
			if n.shuttle.Len() == 0 {
				return out, nil
			}
			out = append(out, n.shuttle.Rows()...)
		}
	}
	err := drainNode(ctx, node, n.shuttle, func(t storage.Tuple) error {
		if !n.seen.add(t) {
			return nil
		}
		out = append(out, t)
		return nil
	})
	return out, err
}

// step runs one round of the recursive term against the current working
// table.
func (n *recursiveUnionNode) step(ctx *Ctx) ([]storage.Tuple, error) {
	n.iterations++
	if n.iterations > ctx.MaxRecursion {
		return nil, fmt.Errorf("exec: recursion limit of %d iterations exceeded (runaway WITH RECURSIVE?)", ctx.MaxRecursion)
	}
	for len(ctx.cteWorking) <= n.cteIndex {
		ctx.cteWorking = append(ctx.cteWorking, nil)
	}
	ctx.cteWorking[n.cteIndex] = n.working
	if err := n.rec.Rescan(ctx); err != nil {
		return nil, err
	}
	return n.drain(ctx, n.rec)
}

// runToConvergence (Iterate mode) loops until the recursive term yields no
// rows, keeping only the latest working table.
func (n *recursiveUnionNode) runToConvergence(ctx *Ctx) error {
	for len(n.working) > 0 {
		next, err := n.step(ctx)
		if err != nil {
			return err
		}
		if len(next) == 0 {
			return nil // working holds the final non-empty table
		}
		n.working = next
	}
	return nil
}

func (n *recursiveUnionNode) Rescan(ctx *Ctx) error {
	if err := n.nonRec.Rescan(ctx); err != nil {
		return err
	}
	// Re-seed completely.
	n.phase = 0
	n.batchIdx = 0
	n.iterations = 0
	if n.dedup {
		n.seen = newTupleSet()
	}
	var err error
	n.working, err = n.drain(ctx, n.nonRec)
	if err != nil {
		return err
	}
	if n.iterate {
		if err := n.runToConvergence(ctx); err != nil {
			return err
		}
	}
	n.batch = n.working
	return nil
}

func (n *recursiveUnionNode) Close(ctx *Ctx) error {
	if !n.opened {
		return nil
	}
	err1 := n.nonRec.Close(ctx)
	err2 := n.rec.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

func (n *recursiveUnionNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	for {
		if n.batchIdx < len(n.batch) {
			end := n.batchIdx + out.Cap()
			if end > len(n.batch) {
				end = len(n.batch)
			}
			out.Append(n.batch[n.batchIdx:end])
			n.batchIdx = end
			return nil
		}
		if n.phase == 1 || n.iterate {
			return nil
		}
		if len(n.working) == 0 {
			n.phase = 1
			return nil
		}
		next, err := n.step(ctx)
		if err != nil {
			return err
		}
		n.working = next
		n.batch = next
		n.batchIdx = 0
		if len(next) == 0 {
			n.phase = 1
			return nil
		}
	}
}

// withNode owns the CTEs of one query level. Opening (or rescanning)
// re-materializes them — correlated CTE bodies (the inlined compiled
// queries) see the current outer bindings.
type withNode struct {
	indices []int
	child   Node
}

func (n *withNode) Open(ctx *Ctx) error {
	if err := n.materialize(ctx); err != nil {
		return err
	}
	return n.child.Open(ctx)
}

func (n *withNode) Rescan(ctx *Ctx) error {
	if err := n.materialize(ctx); err != nil {
		return err
	}
	return n.child.Rescan(ctx)
}

func (n *withNode) materialize(ctx *Ctx) error {
	b := NewBatch(ctx.BatchSize)
	for _, idx := range n.indices {
		for len(ctx.cteStores) <= idx {
			ctx.cteStores = append(ctx.cteStores, nil)
		}
		if ctx.cteStores[idx] != nil {
			ctx.cteStores[idx].Close()
			ctx.cteStores[idx] = nil
		}
		def := ctx.cteDefs[idx]
		if def == nil {
			return fmt.Errorf("exec: CTE %d has no instantiated definition", idx)
		}
		store := storage.NewTupleStore(ctx.StorageStats, ctx.WorkMem)
		if err := def.Open(ctx); err != nil {
			return err
		}
		for {
			if err := def.NextBatch(ctx, b); err != nil {
				def.Close(ctx)
				return err
			}
			if b.Len() == 0 {
				break
			}
			store.AppendBatch(b.Rows())
		}
		if err := def.Close(ctx); err != nil {
			return err
		}
		store.Finish()
		ctx.cteStores[idx] = store
	}
	return nil
}

func (n *withNode) Close(ctx *Ctx) error {
	for _, idx := range n.indices {
		if idx < len(ctx.cteStores) && ctx.cteStores[idx] != nil {
			ctx.cteStores[idx].Close()
			ctx.cteStores[idx] = nil
		}
	}
	return n.child.Close(ctx)
}

func (n *withNode) NextBatch(ctx *Ctx, out *Batch) error { return n.child.NextBatch(ctx, out) }

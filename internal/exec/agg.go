package exec

import (
	"fmt"
	"strings"

	"plsqlaway/internal/plan"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// aggState accumulates one aggregate over one group.
type aggState struct {
	spec     *aggSpecState
	count    int64
	sum      sqltypes.Value
	extreme  sqltypes.Value
	boolAcc  sqltypes.Value
	strParts []string
	distinct map[string]bool
}

type aggSpecState struct {
	fn       string
	arg      *ExprState
	sep      *ExprState
	star     bool
	distinct bool
}

type aggNode struct {
	child  Node
	groups []*ExprState
	specs  []*aggSpecState
	out    []storage.Tuple
	idx    int
}

func instantiateAgg(x *plan.Agg) (Node, error) {
	child, err := instantiateNode(x.Child)
	if err != nil {
		return nil, err
	}
	n := &aggNode{child: child}
	for _, g := range x.GroupBy {
		es, err := instantiateExpr(g)
		if err != nil {
			return nil, err
		}
		n.groups = append(n.groups, es)
	}
	for _, a := range x.Aggs {
		s := &aggSpecState{fn: a.Func, star: a.Star, distinct: a.Distinct}
		if a.Arg != nil {
			s.arg, err = instantiateExpr(a.Arg)
			if err != nil {
				return nil, err
			}
		}
		if a.Sep != nil {
			s.sep, err = instantiateExpr(a.Sep)
			if err != nil {
				return nil, err
			}
		}
		n.specs = append(n.specs, s)
	}
	return n, nil
}

func newAggState(s *aggSpecState) *aggState {
	st := &aggState{spec: s, sum: sqltypes.Null, extreme: sqltypes.Null, boolAcc: sqltypes.Null}
	if s.distinct {
		st.distinct = make(map[string]bool)
	}
	return st
}

func (st *aggState) accumulate(ctx *Ctx, row storage.Tuple) error {
	var v sqltypes.Value
	if st.spec.star {
		st.count++
		return nil
	}
	v, err := st.spec.arg.Eval(ctx, row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // aggregates ignore NULL inputs
	}
	if st.distinct != nil {
		k := tupleKey(storage.Tuple{v})
		if st.distinct[k] {
			return nil
		}
		st.distinct[k] = true
	}
	st.count++
	switch st.spec.fn {
	case "count":
	case "sum", "avg":
		if st.sum.IsNull() {
			st.sum = v
		} else {
			st.sum, err = sqltypes.Add(st.sum, v)
			if err != nil {
				return err
			}
		}
	case "min":
		if st.extreme.IsNull() {
			st.extreme = v
		} else if c, err := sqltypes.Compare(v, st.extreme); err != nil {
			return err
		} else if c < 0 {
			st.extreme = v
		}
	case "max":
		if st.extreme.IsNull() {
			st.extreme = v
		} else if c, err := sqltypes.Compare(v, st.extreme); err != nil {
			return err
		} else if c > 0 {
			st.extreme = v
		}
	case "bool_and":
		if v.Kind() != sqltypes.KindBool {
			return fmt.Errorf("bool_and expects boolean input, got %s", v.Kind())
		}
		if st.boolAcc.IsNull() {
			st.boolAcc = v
		} else {
			st.boolAcc = sqltypes.NewBool(st.boolAcc.Bool() && v.Bool())
		}
	case "bool_or":
		if v.Kind() != sqltypes.KindBool {
			return fmt.Errorf("bool_or expects boolean input, got %s", v.Kind())
		}
		if st.boolAcc.IsNull() {
			st.boolAcc = v
		} else {
			st.boolAcc = sqltypes.NewBool(st.boolAcc.Bool() || v.Bool())
		}
	case "string_agg":
		st.strParts = append(st.strParts, v.String())
	default:
		return fmt.Errorf("exec: unknown aggregate %s", st.spec.fn)
	}
	return nil
}

func (st *aggState) result(ctx *Ctx, sampleRow storage.Tuple) (sqltypes.Value, error) {
	switch st.spec.fn {
	case "count":
		return sqltypes.NewInt(st.count), nil
	case "sum":
		return st.sum, nil
	case "avg":
		if st.count == 0 || st.sum.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewFloat(st.sum.AsFloat() / float64(st.count)), nil
	case "min", "max":
		return st.extreme, nil
	case "bool_and", "bool_or":
		return st.boolAcc, nil
	case "string_agg":
		if st.count == 0 {
			return sqltypes.Null, nil
		}
		sep := ","
		if st.spec.sep != nil {
			sv, err := st.spec.sep.Eval(ctx, sampleRow)
			if err != nil {
				return sqltypes.Null, err
			}
			if !sv.IsNull() {
				sep = sv.String()
			}
		}
		return sqltypes.NewText(strings.Join(st.strParts, sep)), nil
	}
	return sqltypes.Null, fmt.Errorf("exec: unknown aggregate %s", st.spec.fn)
}

func (n *aggNode) Open(ctx *Ctx) error {
	n.out = nil
	n.idx = 0
	if err := n.child.Open(ctx); err != nil {
		return err
	}
	type group struct {
		keys   storage.Tuple
		states []*aggState
		sample storage.Tuple
	}
	var order []string
	groupsByKey := map[string]*group{}
	for {
		t, err := n.child.Next(ctx)
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		keys := make(storage.Tuple, len(n.groups))
		for i, g := range n.groups {
			keys[i], err = g.Eval(ctx, t)
			if err != nil {
				return err
			}
		}
		k := tupleKey(keys)
		grp, ok := groupsByKey[k]
		if !ok {
			grp = &group{keys: keys, sample: t}
			for _, s := range n.specs {
				grp.states = append(grp.states, newAggState(s))
			}
			groupsByKey[k] = grp
			order = append(order, k)
		}
		for _, st := range grp.states {
			if err := st.accumulate(ctx, t); err != nil {
				return err
			}
		}
	}
	if len(order) == 0 && len(n.groups) == 0 {
		// Grand aggregate over empty input: one row of defaults.
		row := make(storage.Tuple, len(n.specs))
		for i, s := range n.specs {
			st := newAggState(s)
			v, err := st.result(ctx, nil)
			if err != nil {
				return err
			}
			row[i] = v
		}
		n.out = append(n.out, row)
	}
	for _, k := range order {
		grp := groupsByKey[k]
		row := make(storage.Tuple, 0, len(n.groups)+len(n.specs))
		row = append(row, grp.keys...)
		for _, st := range grp.states {
			v, err := st.result(ctx, grp.sample)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		n.out = append(n.out, row)
	}
	return n.child.Close(ctx)
}

// Rescan recomputes with the current outer bindings; Open is re-callable
// per the Node contract.
func (n *aggNode) Rescan(ctx *Ctx) error { return n.Open(ctx) }

func (n *aggNode) Close(ctx *Ctx) error { return nil }

func (n *aggNode) Next(ctx *Ctx) (storage.Tuple, error) {
	if n.idx >= len(n.out) {
		return nil, nil
	}
	t := n.out[n.idx]
	n.idx++
	return t, nil
}

package exec

import (
	"fmt"
	"strings"

	"plsqlaway/internal/plan"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// aggState accumulates one aggregate over one group.
type aggState struct {
	spec     *aggSpecState
	count    int64
	sum      sqltypes.Value
	extreme  sqltypes.Value
	boolAcc  sqltypes.Value
	strParts []string
	distinct map[string]bool
}

type aggSpecState struct {
	fn       string
	arg      *ExprState
	sep      *ExprState
	star     bool
	distinct bool
}

type aggNode struct {
	child  Node
	groups []*ExprState
	specs  []*aggSpecState
	out    []storage.Tuple
	idx    int

	// Shared column set of evalColumns: grouping keys followed by the
	// non-star aggregate arguments (argPos maps spec index → column, -1 for
	// count(*)).
	evalList []*ExprState
	argPos   []int
	evalCols [][]sqltypes.Value

	// argCols is foldGrandColumnar's per-spec lane scratch.
	argCols []*Column
}

func instantiateAgg(x *plan.Agg, ana *Analyzer) (Node, error) {
	child, err := instantiateNode(x.Child, ana)
	if err != nil {
		return nil, err
	}
	n := &aggNode{child: child}
	for _, g := range x.GroupBy {
		es, err := instantiateExpr(g)
		if err != nil {
			return nil, err
		}
		n.groups = append(n.groups, es)
	}
	for _, a := range x.Aggs {
		s := &aggSpecState{fn: a.Func, star: a.Star, distinct: a.Distinct}
		if a.Arg != nil {
			s.arg, err = instantiateExpr(a.Arg)
			if err != nil {
				return nil, err
			}
		}
		if a.Sep != nil {
			s.sep, err = instantiateExpr(a.Sep)
			if err != nil {
				return nil, err
			}
		}
		n.specs = append(n.specs, s)
	}
	return n, nil
}

func newAggState(s *aggSpecState) *aggState {
	st := &aggState{spec: s, sum: sqltypes.Null, extreme: sqltypes.Null, boolAcc: sqltypes.Null}
	if s.distinct {
		st.distinct = make(map[string]bool)
	}
	return st
}

func (st *aggState) accumulate(ctx *Ctx, row storage.Tuple) error {
	if st.spec.star {
		st.count++
		return nil
	}
	v, err := st.spec.arg.Eval(ctx, row)
	if err != nil {
		return err
	}
	return st.accumulateValue(v)
}

// accumulateValue folds one already-evaluated argument into the state (the
// batch path evaluates arguments vectorized and feeds them here).
func (st *aggState) accumulateValue(v sqltypes.Value) error {
	var err error
	if v.IsNull() {
		return nil // aggregates ignore NULL inputs
	}
	if st.distinct != nil {
		k := tupleKey(storage.Tuple{v})
		if st.distinct[k] {
			return nil
		}
		st.distinct[k] = true
	}
	st.count++
	switch st.spec.fn {
	case "count":
	case "sum", "avg":
		if st.sum.IsNull() {
			st.sum = v
		} else {
			st.sum, err = sqltypes.Add(st.sum, v)
			if err != nil {
				return err
			}
		}
	case "min":
		if st.extreme.IsNull() {
			st.extreme = v
		} else if c, err := sqltypes.Compare(v, st.extreme); err != nil {
			return err
		} else if c < 0 {
			st.extreme = v
		}
	case "max":
		if st.extreme.IsNull() {
			st.extreme = v
		} else if c, err := sqltypes.Compare(v, st.extreme); err != nil {
			return err
		} else if c > 0 {
			st.extreme = v
		}
	case "bool_and":
		if v.Kind() != sqltypes.KindBool {
			return fmt.Errorf("bool_and expects boolean input, got %s", v.Kind())
		}
		if st.boolAcc.IsNull() {
			st.boolAcc = v
		} else {
			st.boolAcc = sqltypes.NewBool(st.boolAcc.Bool() && v.Bool())
		}
	case "bool_or":
		if v.Kind() != sqltypes.KindBool {
			return fmt.Errorf("bool_or expects boolean input, got %s", v.Kind())
		}
		if st.boolAcc.IsNull() {
			st.boolAcc = v
		} else {
			st.boolAcc = sqltypes.NewBool(st.boolAcc.Bool() || v.Bool())
		}
	case "string_agg":
		st.strParts = append(st.strParts, v.String())
	default:
		return fmt.Errorf("exec: unknown aggregate %s", st.spec.fn)
	}
	return nil
}

func (st *aggState) result(ctx *Ctx, sampleRow storage.Tuple) (sqltypes.Value, error) {
	switch st.spec.fn {
	case "count":
		return sqltypes.NewInt(st.count), nil
	case "sum":
		return st.sum, nil
	case "avg":
		if st.count == 0 || st.sum.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewFloat(st.sum.AsFloat() / float64(st.count)), nil
	case "min", "max":
		return st.extreme, nil
	case "bool_and", "bool_or":
		return st.boolAcc, nil
	case "string_agg":
		if st.count == 0 {
			return sqltypes.Null, nil
		}
		sep := ","
		if st.spec.sep != nil {
			sv, err := st.spec.sep.Eval(ctx, sampleRow)
			if err != nil {
				return sqltypes.Null, err
			}
			if !sv.IsNull() {
				sep = sv.String()
			}
		}
		return sqltypes.NewText(strings.Join(st.strParts, sep)), nil
	}
	return sqltypes.Null, fmt.Errorf("exec: unknown aggregate %s", st.spec.fn)
}

// foldGrandColumnar folds one batch into the grand aggregate states
// lane-at-a-time, without materializing rows. Only folds whose lane
// accumulation reproduces the boxed sequential fold exactly are taken:
// count over any lane, sum/avg over int lanes (wrapping int64 addition is
// associative) and float lanes (accumulated sequentially in lane order, the
// boxed fold's exact operation sequence), min/max via lane-native extremes
// merged with one boxed Compare. Anything else — distinct, bool_and/or,
// string_agg, ColAny lanes, non-numeric sum accumulators — returns ok=false
// with no state touched, and the boxed path folds the batch instead.
func (n *aggNode) foldGrandColumnar(ctx *Ctx, b *Batch, states []*aggState) (bool, error) {
	for _, st := range states {
		s := st.spec
		if s.star {
			continue
		}
		if s.distinct || s.arg == nil || !s.arg.colable {
			return false, nil
		}
		switch s.fn {
		case "count", "sum", "avg", "min", "max":
		default:
			return false, nil
		}
	}
	if n.argCols == nil {
		n.argCols = make([]*Column, len(states))
	}
	// Evaluate (and vet) every argument lane before folding any state, so a
	// bail never leaves a batch half-accumulated.
	for i, st := range states {
		s := st.spec
		if s.star {
			n.argCols[i] = nil
			continue
		}
		c, err := s.arg.EvalCol(ctx, b)
		if err != nil {
			return false, err
		}
		if c == nil {
			return false, nil
		}
		switch c.Kind {
		case ColInt, ColFloat, ColNull:
		case ColStr:
			if s.fn == "sum" || s.fn == "avg" {
				return false, nil
			}
		case ColBool:
			if s.fn != "count" {
				return false, nil
			}
		default:
			return false, nil
		}
		if (s.fn == "sum" || s.fn == "avg") && !st.sum.IsNull() && !st.sum.IsNumeric() {
			return false, nil
		}
		n.argCols[i] = c
	}
	m := b.Len()
	for i, st := range states {
		if st.spec.star {
			st.count += int64(m)
			continue
		}
		if err := st.foldColumn(n.argCols[i], m); err != nil {
			return true, err
		}
	}
	return true, nil
}

// foldColumn folds one evaluated argument lane into the state. The caller
// has vetted the (fn, lane kind, accumulator kind) combination.
func (st *aggState) foldColumn(c *Column, m int) error {
	if c.Kind == ColNull {
		return nil // aggregates ignore NULL inputs
	}
	nn := 0 // non-null rows folded
	switch st.spec.fn {
	case "count":
		for i := 0; i < m; i++ {
			if !c.null(i) {
				nn++
			}
		}
		st.count += int64(nn)
		return nil
	case "sum", "avg":
		if c.Kind == ColInt && (st.sum.IsNull() || st.sum.Kind() == sqltypes.KindInt) {
			var sub int64
			for i := 0; i < m; i++ {
				if c.null(i) {
					continue
				}
				sub += c.Ints[i]
				nn++
			}
			if nn == 0 {
				return nil
			}
			if st.sum.IsNull() {
				st.sum = sqltypes.NewInt(sub)
			} else {
				st.sum = sqltypes.NewInt(st.sum.Int() + sub)
			}
			st.count += int64(nn)
			return nil
		}
		// Float lane, or an int lane over a float accumulator: sequential
		// float64 accumulation in lane order.
		var f float64
		have := false
		if !st.sum.IsNull() {
			f = st.sum.AsFloat()
			have = true
		}
		for i := 0; i < m; i++ {
			if c.null(i) {
				continue
			}
			var v float64
			if c.Kind == ColInt {
				v = float64(c.Ints[i])
			} else {
				v = c.Floats[i]
			}
			if !have {
				f = v
				have = true
			} else {
				f += v
			}
			nn++
		}
		if nn == 0 {
			return nil
		}
		st.sum = sqltypes.NewFloat(f)
		st.count += int64(nn)
		return nil
	case "min", "max":
		isMin := st.spec.fn == "min"
		var best sqltypes.Value
		switch c.Kind {
		case ColInt:
			var bi int64
			first := true
			for i := 0; i < m; i++ {
				if c.null(i) {
					continue
				}
				v := c.Ints[i]
				if first || (isMin && v < bi) || (!isMin && v > bi) {
					bi = v
					first = false
				}
				nn++
			}
			if nn == 0 {
				return nil
			}
			best = sqltypes.NewInt(bi)
		case ColFloat:
			var bf float64
			first := true
			for i := 0; i < m; i++ {
				if c.null(i) {
					continue
				}
				v := c.Floats[i]
				if first {
					bf = v
					first = false
				} else if cmp := cmpFloatVals(v, bf); (isMin && cmp < 0) || (!isMin && cmp > 0) {
					bf = v
				}
				nn++
			}
			if nn == 0 {
				return nil
			}
			best = sqltypes.NewFloat(bf)
		case ColStr:
			var bs string
			first := true
			for i := 0; i < m; i++ {
				if c.null(i) {
					continue
				}
				v := c.Strs[i]
				if first {
					bs = v
					first = false
				} else if cmp := strings.Compare(v, bs); (isMin && cmp < 0) || (!isMin && cmp > 0) {
					bs = v
				}
				nn++
			}
			if nn == 0 {
				return nil
			}
			best = sqltypes.NewText(bs)
		}
		st.count += int64(nn)
		if st.extreme.IsNull() {
			st.extreme = best
			return nil
		}
		cmp, err := sqltypes.Compare(best, st.extreme)
		if err != nil {
			return err
		}
		if (isMin && cmp < 0) || (!isMin && cmp > 0) {
			st.extreme = best
		}
		return nil
	}
	return fmt.Errorf("exec: unknown aggregate %s", st.spec.fn)
}

// evalColumns evaluates the grouping keys and aggregate arguments over one
// batch as a single expression-column set — keys first, then arguments in
// spec order, which is exactly the per-row order the tuple-at-a-time
// executor evaluated them in, so evalExprColumns' row-major fallback for
// impure expressions preserves the volatile draw order. groupCols and
// argCols come back aliasing the shared column set.
func (n *aggNode) evalColumns(ctx *Ctx, rows []storage.Tuple, groupCols, argCols [][]sqltypes.Value) error {
	if n.evalList == nil {
		n.evalList = append(n.evalList, n.groups...)
		n.argPos = make([]int, len(n.specs))
		for i, s := range n.specs {
			if s.star {
				n.argPos[i] = -1
				continue
			}
			n.argPos[i] = len(n.evalList)
			n.evalList = append(n.evalList, s.arg)
		}
		n.evalCols = make([][]sqltypes.Value, len(n.evalList))
	}
	if err := evalExprColumns(ctx, n.evalList, rows, n.evalCols); err != nil {
		return err
	}
	for i := range n.groups {
		groupCols[i] = n.evalCols[i]
	}
	for i, pos := range n.argPos {
		if pos >= 0 {
			argCols[i] = n.evalCols[pos]
		}
	}
	return nil
}

func (n *aggNode) Open(ctx *Ctx) error {
	n.out = nil
	n.idx = 0
	if err := n.child.Open(ctx); err != nil {
		return err
	}
	type group struct {
		keys   storage.Tuple
		states []*aggState
		sample storage.Tuple
	}
	var order []string
	groupsByKey := map[string]*group{}
	// Drain the child batch-at-a-time, evaluating the grouping keys and
	// every aggregate argument vectorized over each batch before the
	// per-row fold into the group states. A grand aggregate (no GROUP BY)
	// skips group-key hashing entirely — one state set folds every row.
	b := NewBatch(ctx.BatchSize)
	groupCols := make([][]sqltypes.Value, len(n.groups))
	argCols := make([][]sqltypes.Value, len(n.specs))
	var grand *group
	if len(n.groups) == 0 {
		grand = &group{}
		for _, s := range n.specs {
			grand.states = append(grand.states, newAggState(s))
		}
	}
	for {
		if err := n.child.NextBatch(ctx, b); err != nil {
			return err
		}
		m := b.Len()
		if m == 0 {
			break
		}
		if grand != nil && ctx.Columnar {
			// Grand aggregates over colable arguments fold lane-at-a-time
			// without ever materializing the batch into rows.
			ok, err := n.foldGrandColumnar(ctx, b, grand.states)
			if err != nil {
				return err
			}
			if ok {
				if grand.sample == nil {
					grand.sample = storage.Tuple{} // non-nil: input was seen
				}
				continue
			}
		}
		rows := b.Rows()
		if err := n.evalColumns(ctx, rows, groupCols, argCols); err != nil {
			return err
		}
		if grand != nil {
			// Grand aggregate: fold column-major — one pass per aggregate
			// over its evaluated argument column, no per-row group lookup.
			if grand.sample == nil {
				grand.sample = rows[0]
			}
			for i, st := range grand.states {
				if st.spec.star {
					st.count += int64(m)
					continue
				}
				col := argCols[i]
				for r := 0; r < m; r++ {
					if err := st.accumulateValue(col[r]); err != nil {
						return err
					}
				}
			}
			continue
		}
		for r := 0; r < m; r++ {
			t := rows[r]
			keys := make(storage.Tuple, len(n.groups))
			for i := range n.groups {
				keys[i] = groupCols[i][r]
			}
			k := tupleKey(keys)
			grp, ok := groupsByKey[k]
			if !ok {
				grp = &group{keys: keys, sample: t}
				for _, s := range n.specs {
					grp.states = append(grp.states, newAggState(s))
				}
				groupsByKey[k] = grp
				order = append(order, k)
			}
			for i, st := range grp.states {
				if st.spec.star {
					st.count++
					continue
				}
				if err := st.accumulateValue(argCols[i][r]); err != nil {
					return err
				}
			}
		}
	}
	if grand != nil && grand.sample != nil {
		// The grand group joins the emit path below under an empty key.
		groupsByKey[""] = grand
		order = append(order, "")
	}
	if len(order) == 0 && len(n.groups) == 0 {
		// Grand aggregate over empty input: one row of defaults.
		row := make(storage.Tuple, len(n.specs))
		for i, s := range n.specs {
			st := newAggState(s)
			v, err := st.result(ctx, nil)
			if err != nil {
				return err
			}
			row[i] = v
		}
		n.out = append(n.out, row)
	}
	for _, k := range order {
		grp := groupsByKey[k]
		row := make(storage.Tuple, 0, len(n.groups)+len(n.specs))
		row = append(row, grp.keys...)
		for _, st := range grp.states {
			v, err := st.result(ctx, grp.sample)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		n.out = append(n.out, row)
	}
	return n.child.Close(ctx)
}

// Rescan recomputes with the current outer bindings; Open is re-callable
// per the Node contract.
func (n *aggNode) Rescan(ctx *Ctx) error { return n.Open(ctx) }

func (n *aggNode) Close(ctx *Ctx) error { return nil }

func (n *aggNode) NextBatch(ctx *Ctx, out *Batch) error {
	n.idx += copyChunk(out, n.out, n.idx)
	return nil
}

package exec

import (
	"fmt"
	"sort"

	"plsqlaway/internal/catalog"
	"plsqlaway/internal/plan"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// Node is an instantiated plan operator in the vectorized executor. Open
// prepares scanning from the start (re-callable), NextBatch truncates out
// and appends up to out.Cap() rows — an empty batch after NextBatch means
// end of stream, so implementations loop internally rather than returning
// empty batches mid-stream. Rescan resets cheaply for lateral re-execution,
// Close releases per-open resources.
type Node interface {
	Open(ctx *Ctx) error
	NextBatch(ctx *Ctx, out *Batch) error
	Rescan(ctx *Ctx) error
	Close(ctx *Ctx) error
}

// instantiateNodeRaw builds the runtime node for one plan operator. The
// allocations this performs are the ExecutorStart cost the paper's Table 1
// profiles.
func instantiateNodeRaw(p plan.Node, ana *Analyzer) (Node, error) {
	switch x := p.(type) {
	case *plan.Result:
		exprs, err := instantiateAll(x.Exprs...)
		if err != nil {
			return nil, err
		}
		return &resultNode{exprs: exprs}, nil
	case *plan.SeqScan:
		return &seqScanNode{table: x.Table}, nil
	case *plan.IndexScan:
		key, err := instantiateExpr(x.Key)
		if err != nil {
			return nil, err
		}
		return &indexScanNode{table: x.Table, col: x.Col, key: key}, nil
	case *plan.CTEScan:
		return &cteScanNode{index: x.Index, working: x.Working}, nil
	case *plan.Filter:
		child, err := instantiateNode(x.Child, ana)
		if err != nil {
			return nil, err
		}
		pred, err := instantiateExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		return &filterNode{child: child, pred: pred}, nil
	case *plan.Project:
		if hj, ok := x.Child.(*plan.HashJoin); ok && ana == nil {
			// Fuse the projection into the join: combined rows stay
			// pipeline-internal and recycle one arena. ANALYZE skips the
			// fusion — it's a pure optimization, and keeping the node tree
			// 1:1 with the plan tree lets every rendered line carry its own
			// actuals.
			return instantiateHashJoinProject(x, hj)
		}
		child, err := instantiateNode(x.Child, ana)
		if err != nil {
			return nil, err
		}
		exprs, err := instantiateAll(x.Exprs...)
		if err != nil {
			return nil, err
		}
		return &projectNode{child: child, exprs: exprs}, nil
	case *plan.NestLoop:
		l, err := instantiateNode(x.Left, ana)
		if err != nil {
			return nil, err
		}
		r, err := instantiateNode(x.Right, ana)
		if err != nil {
			return nil, err
		}
		n := &nestLoopNode{left: l, right: r, kind: x.Kind, rightWidth: x.Right.Width()}
		if x.On != nil {
			n.on, err = instantiateExpr(x.On)
			if err != nil {
				return nil, err
			}
		}
		return n, nil
	case *plan.HashJoin:
		return instantiateHashJoin(x, ana)
	case *plan.Apply:
		child, err := instantiateNode(x.Child, ana)
		if err != nil {
			return nil, err
		}
		sub, err := instantiateNode(x.Sub, ana)
		if err != nil {
			return nil, err
		}
		return &applyNode{child: child, sub: sub}, nil
	case *plan.Materialize:
		child, err := instantiateNode(x.Child, ana)
		if err != nil {
			return nil, err
		}
		return &materializeNode{child: child}, nil
	case *plan.Agg:
		return instantiateAgg(x, ana)
	case *plan.Window:
		return instantiateWindow(x, ana)
	case *plan.Sort:
		child, err := instantiateNode(x.Child, ana)
		if err != nil {
			return nil, err
		}
		keys, err := instantiateSortKeys(x.Keys)
		if err != nil {
			return nil, err
		}
		return &sortNode{child: child, keys: keys}, nil
	case *plan.Limit:
		child, err := instantiateNode(x.Child, ana)
		if err != nil {
			return nil, err
		}
		n := &limitNode{child: child}
		if x.Limit != nil {
			n.limit, err = instantiateExpr(x.Limit)
			if err != nil {
				return nil, err
			}
		}
		if x.Offset != nil {
			n.offset, err = instantiateExpr(x.Offset)
			if err != nil {
				return nil, err
			}
		}
		return n, nil
	case *plan.Distinct:
		child, err := instantiateNode(x.Child, ana)
		if err != nil {
			return nil, err
		}
		return &distinctNode{child: child}, nil
	case *plan.Append:
		n := &appendNode{}
		for _, c := range x.Children {
			cn, err := instantiateNode(c, ana)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, cn)
		}
		return n, nil
	case *plan.SetOp:
		l, err := instantiateNode(x.L, ana)
		if err != nil {
			return nil, err
		}
		r, err := instantiateNode(x.R, ana)
		if err != nil {
			return nil, err
		}
		return &setOpNode{op: x.Op, all: x.All, left: l, right: r}, nil
	case *plan.ValuesNode:
		n := &valuesNode{}
		for _, row := range x.Rows {
			es, err := instantiateAll(row...)
			if err != nil {
				return nil, err
			}
			n.rows = append(n.rows, es)
		}
		return n, nil
	case *plan.RecursiveUnion:
		nonRec, err := instantiateNode(x.NonRec, ana)
		if err != nil {
			return nil, err
		}
		rec, err := instantiateNode(x.Rec, ana)
		if err != nil {
			return nil, err
		}
		return &recursiveUnionNode{nonRec: nonRec, rec: rec, cteIndex: x.CTEIndex, iterate: x.Iterate, dedup: x.Dedup}, nil
	case *plan.WithNode:
		child, err := instantiateNode(x.Child, ana)
		if err != nil {
			return nil, err
		}
		return &withNode{indices: x.Indices, child: child}, nil
	default:
		return nil, fmt.Errorf("exec: cannot instantiate plan node %T", p)
	}
}

func instantiateSortKeys(keys []plan.SortKey) ([]sortKeyState, error) {
	out := make([]sortKeyState, len(keys))
	for i, k := range keys {
		es, err := instantiateExpr(k.Expr)
		if err != nil {
			return nil, err
		}
		out[i] = sortKeyState{expr: es, desc: k.Desc}
	}
	return out, nil
}

type sortKeyState struct {
	expr *ExprState
	desc bool
}

// compareKeyValues orders values with NULLS LAST ascending (PostgreSQL
// default) and NULLS FIRST descending.
func compareKeyValues(a, b sqltypes.Value, desc bool) int {
	an, bn := a.IsNull(), b.IsNull()
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			if desc {
				return -1
			}
			return 1
		default:
			if desc {
				return 1
			}
			return -1
		}
	}
	c, err := sqltypes.Compare(a, b)
	if err != nil {
		return 0
	}
	if desc {
		return -c
	}
	return c
}

// ---------------------------------------------------------------------------
// result / scans / filter / project
// ---------------------------------------------------------------------------

type resultNode struct {
	exprs []*ExprState
	done  bool
}

func (n *resultNode) Open(ctx *Ctx) error   { n.done = false; return nil }
func (n *resultNode) Rescan(ctx *Ctx) error { n.done = false; return nil }
func (n *resultNode) Close(ctx *Ctx) error  { return nil }
func (n *resultNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	if n.done {
		return nil
	}
	n.done = true
	row := make(storage.Tuple, len(n.exprs))
	for i, e := range n.exprs {
		v, err := e.Eval(ctx, nil)
		if err != nil {
			return err
		}
		row[i] = v
	}
	out.Add(row)
	return nil
}

// seqScanNode reads a base table through the heap's chunked snapshot
// scanner: each NextBatch is one bulk header copy rather than one virtual
// call per row.
type seqScanNode struct {
	table *catalog.Table
	scan  *storage.HeapScanner
}

func (n *seqScanNode) Open(ctx *Ctx) error {
	if ov := ctx.overlayFor(n.table.Heap); !ov.Empty() {
		// Inside a transaction that wrote this heap: merge the pinned
		// snapshot with the buffered writes so the scan reads its own
		// uncommitted rows.
		rows, err := n.table.Heap.RowsAtOverlay(ctx.TS, ov)
		if err != nil {
			return err
		}
		n.scan = storage.NewScanner(rows)
		return nil
	}
	scan, err := n.table.Heap.ScannerAt(ctx.TS)
	if err != nil {
		return err
	}
	n.scan = scan
	return nil
}

func (n *seqScanNode) Rescan(ctx *Ctx) error {
	if n.scan == nil {
		return n.Open(ctx)
	}
	n.scan.Reset()
	return nil
}

func (n *seqScanNode) Close(ctx *Ctx) error { return nil }
func (n *seqScanNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	if n.scan == nil {
		return nil
	}
	out.Append(n.scan.NextChunk(out.Cap()))
	return nil
}

// indexScanNode probes a declared hash index: the key expression is
// evaluated once per (re)scan against the current outer bindings.
type indexScanNode struct {
	table *catalog.Table
	col   int
	key   *ExprState
	rows  []storage.Tuple
	hits  []int
	idx   int
}

func (n *indexScanNode) Open(ctx *Ctx) error { return n.Rescan(ctx) }

func (n *indexScanNode) Rescan(ctx *Ctx) error {
	n.idx = 0
	k, err := n.key.Eval(ctx, nil)
	if err != nil {
		return err
	}
	if ov := ctx.overlayFor(n.table.Heap); !ov.Empty() {
		// The hash index is built over committed snapshots only; inside a
		// transaction that wrote this heap, fall back to a linear filter
		// over the merged rows so probes see the buffered writes.
		rows, err := n.table.Heap.RowsAtOverlay(ctx.TS, ov)
		if err != nil {
			return err
		}
		n.rows = rows
		n.hits = n.hits[:0]
		if !k.IsNull() {
			for i, r := range rows {
				if sqltypes.Identical(r[n.col], k) {
					n.hits = append(n.hits, i)
				}
			}
		}
		return nil
	}
	index, ok := n.table.IndexOn(n.col)
	if !ok {
		return fmt.Errorf("exec: no index on %s column %d", n.table.Name, n.col)
	}
	n.hits, n.rows, err = index.Probe(n.table, k, ctx.TS)
	return err
}

func (n *indexScanNode) Close(ctx *Ctx) error { return nil }
func (n *indexScanNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	for !out.Full() && n.idx < len(n.hits) {
		out.Add(n.rows[n.hits[n.idx]])
		n.idx++
	}
	return nil
}

type filterNode struct {
	child Node
	pred  *ExprState
	in    *Batch
	sel   []sqltypes.Value

	// columnar-path scratch: selection indices and gathered output columns.
	fsel  []int32
	fcols []Column
	fptrs []*Column
}

func (n *filterNode) Open(ctx *Ctx) error {
	if n.in == nil {
		n.in = NewBatch(ctx.BatchSize)
	}
	return n.child.Open(ctx)
}
func (n *filterNode) Rescan(ctx *Ctx) error { return n.child.Rescan(ctx) }
func (n *filterNode) Close(ctx *Ctx) error  { return n.child.Close(ctx) }

// NextBatch pulls input batches sized to the consumer's limit (so bounded
// consumers like LIMIT or subplan pulls never over-read) and evaluates the
// predicate over each whole batch before compacting survivors into out.
// Colable predicates evaluate through the typed kernels (EvalCol) whatever
// the input layout; survivors are gathered columnar when the input is
// columnar and emitted as zero-copy row headers otherwise.
func (n *filterNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	for {
		n.in.SetLimit(out.Cap())
		if err := n.child.NextBatch(ctx, n.in); err != nil {
			return err
		}
		if n.in.Len() == 0 {
			return nil
		}
		if ctx.Columnar && n.pred.colable {
			col, err := n.pred.EvalCol(ctx, n.in)
			if err != nil {
				return err
			}
			if col != nil {
				if err := n.filterColumnar(col, out); err != nil {
					return err
				}
				if out.Len() > 0 {
					return nil
				}
				continue
			}
		}
		rows := n.in.Rows()
		n.sel = growVals(n.sel, len(rows))
		if err := n.pred.EvalBatch(ctx, rows, n.sel); err != nil {
			return err
		}
		for i, v := range n.sel[:len(rows)] {
			if v.IsTrue() {
				out.Add(rows[i])
			}
		}
		if out.Len() > 0 {
			return nil
		}
	}
}

// filterColumnar compacts the survivors of one predicate column into out.
func (n *filterNode) filterColumnar(pred *Column, out *Batch) error {
	m := n.in.Len()
	n.fsel = n.fsel[:0]
	for i := 0; i < m; i++ {
		if pred.truth(i) {
			n.fsel = append(n.fsel, int32(i))
		}
	}
	if len(n.fsel) == 0 {
		return nil
	}
	if !n.in.HasCols() {
		rows := n.in.Rows()
		for _, i := range n.fsel {
			out.Add(rows[i])
		}
		return nil
	}
	w := n.in.NumCols()
	if cap(n.fcols) < w {
		n.fcols = make([]Column, w)
		n.fptrs = make([]*Column, w)
	}
	n.fcols = n.fcols[:w]
	n.fptrs = n.fptrs[:w]
	for c := 0; c < w; c++ {
		src, err := n.in.Col(c)
		if err != nil {
			return err
		}
		n.fcols[c].reset()
		n.fcols[c].appendFrom(src, n.fsel)
		n.fptrs[c] = &n.fcols[c]
	}
	out.SetCols(n.fptrs, len(n.fsel))
	return nil
}

type projectNode struct {
	child Node
	exprs []*ExprState
	in    *Batch
	cols  [][]sqltypes.Value
	pcols []*Column
}

func (n *projectNode) Open(ctx *Ctx) error {
	if n.in == nil {
		n.in = NewBatch(ctx.BatchSize)
		n.cols = make([][]sqltypes.Value, len(n.exprs))
		n.pcols = make([]*Column, len(n.exprs))
	}
	return n.child.Open(ctx)
}
func (n *projectNode) Rescan(ctx *Ctx) error { return n.child.Rescan(ctx) }
func (n *projectNode) Close(ctx *Ctx) error  { return n.child.Close(ctx) }

// NextBatch evaluates every projection expression over the whole input
// batch (one tree walk per expression per batch instead of per row), then
// assembles the output rows from the resulting columns. One backing array
// serves all rows of a batch, so the per-row cost is one slice header.
func (n *projectNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	n.in.SetLimit(out.Cap())
	if err := n.child.NextBatch(ctx, n.in); err != nil {
		return err
	}
	if n.in.Len() == 0 {
		return nil
	}
	if ctx.Columnar && n.in.HasCols() && allColable(n.exprs) {
		ok, err := projectColumnarBatch(ctx, n.exprs, n.in, n.pcols, out)
		if err != nil || ok {
			return err
		}
	}
	return projectColumns(ctx, n.exprs, n.in.Rows(), n.cols, out)
}

// allColable reports whether every expression has a columnar evaluation.
func allColable(exprs []*ExprState) bool {
	for _, e := range exprs {
		if !e.colable {
			return false
		}
	}
	return true
}

// projectColumnarBatch evaluates a fully-colable projection over a columnar
// input batch, emitting zero-copy column aliases (input columns pass
// through untouched; computed columns live in their expressions' scratch,
// valid until the next evaluation — the producer-owned-view lifetime).
// Returns false with out untouched when any expression bails at runtime.
func projectColumnarBatch(ctx *Ctx, exprs []*ExprState, in *Batch, ptrs []*Column, out *Batch) (bool, error) {
	for i, e := range exprs {
		c, err := e.EvalCol(ctx, in)
		if err != nil {
			return false, err
		}
		if c == nil {
			return false, nil
		}
		ptrs[i] = c
	}
	out.SetCols(ptrs, in.Len())
	return true, nil
}

// projectColumns evaluates a projection over one input batch
// (row-major when any expression is impure — see evalExprColumns) and
// emits the assembled rows into out, slicing them off one backing array
// per batch. Shared by projectNode and the fused hashJoinProjectNode.
func projectColumns(ctx *Ctx, exprs []*ExprState, rows []storage.Tuple, cols [][]sqltypes.Value, out *Batch) error {
	if err := evalExprColumns(ctx, exprs, rows, cols); err != nil {
		return err
	}
	m, w := len(rows), len(exprs)
	backing := make([]sqltypes.Value, m*w)
	for r := 0; r < m; r++ {
		t := backing[r*w : (r+1)*w : (r+1)*w]
		for c := 0; c < w; c++ {
			t[c] = cols[c][r]
		}
		out.Add(storage.Tuple(t))
	}
	return nil
}

// ---------------------------------------------------------------------------
// joins
// ---------------------------------------------------------------------------

type nestLoopNode struct {
	left, right Node
	kind        plan.JoinKind
	on          *ExprState
	rightWidth  int

	in          *Batch // left rows
	inIdx       int
	leftEOF     bool
	rin         *Batch // right rows for the current left row
	rinIdx      int
	rightEOF    bool
	curLeft     storage.Tuple
	haveCur     bool
	matched     bool
	pushed      bool
	rightOpened bool
}

func (n *nestLoopNode) Open(ctx *Ctx) error {
	if n.in == nil {
		n.in = NewBatch(ctx.BatchSize)
		n.rin = NewBatch(ctx.BatchSize)
	}
	if err := n.left.Open(ctx); err != nil {
		return err
	}
	// The right side may be correlated (LATERAL): its Open must only run
	// once a left row is on the outer stack, so it is deferred to NextBatch.
	n.rightOpened = false
	n.reset()
	return nil
}

func (n *nestLoopNode) reset() {
	n.in.begin()
	n.inIdx = 0
	n.leftEOF = false
	n.haveCur = false
}

func (n *nestLoopNode) Rescan(ctx *Ctx) error {
	if n.pushed {
		ctx.popOuter()
		n.pushed = false
	}
	if err := n.left.Rescan(ctx); err != nil {
		return err
	}
	n.reset()
	return nil
}

func (n *nestLoopNode) Close(ctx *Ctx) error {
	if n.pushed {
		ctx.popOuter()
		n.pushed = false
	}
	err1 := n.left.Close(ctx)
	err2 := n.right.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// NextBatch maintains the invariant that the left row is on the outer stack
// exactly while the right subtree (and the ON predicate) runs — it is
// popped before a batch is handed upward, so expressions evaluated by
// parent nodes see the stack depth the binder assumed.
func (n *nestLoopNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	for {
		if !n.haveCur {
			if n.inIdx >= n.in.Len() {
				if n.leftEOF {
					return nil
				}
				// Bound the pull by the consumer's cap so a LIMIT above
				// never makes the left pipeline compute past the cut; a
				// consumer bounded below the configured batch size (LIMIT,
				// subplan pulls) degrades to one left row at a time, since
				// one left row's fan-out alone may satisfy the cut.
				lim := out.Cap()
				if lim > 1 && lim < ctx.BatchSize {
					lim = 1
				}
				n.in.SetLimit(lim)
				if err := n.left.NextBatch(ctx, n.in); err != nil {
					return err
				}
				n.inIdx = 0
				if n.in.Len() == 0 {
					n.leftEOF = true
					return nil
				}
			}
			n.curLeft = n.in.Row(n.inIdx)
			n.inIdx++
			n.haveCur = true
			n.matched = false
			ctx.pushOuter(n.curLeft)
			n.pushed = true
			if !n.rightOpened {
				if err := n.right.Open(ctx); err != nil {
					return err
				}
				n.rightOpened = true
			} else if err := n.right.Rescan(ctx); err != nil {
				return err
			}
			n.rightEOF = false
			n.rin.begin()
			n.rinIdx = 0
		}
		if !n.pushed { // resuming after having handed a full batch upward
			ctx.pushOuter(n.curLeft)
			n.pushed = true
		}
		if n.rinIdx >= n.rin.Len() {
			if !n.rightEOF {
				n.rin.SetLimit(out.Cap())
				if err := n.right.NextBatch(ctx, n.rin); err != nil {
					return err
				}
				n.rinIdx = 0
				if n.rin.Len() == 0 {
					n.rightEOF = true
				}
			}
			if n.rightEOF {
				ctx.popOuter()
				n.pushed = false
				emitNull := n.kind == plan.JoinLeft && !n.matched
				n.haveCur = false
				if emitNull {
					out.Add(concatTuples(n.curLeft, nullTuple(n.rightWidth)))
					if out.Full() {
						return nil
					}
				}
				continue
			}
		}
		rt := n.rin.Row(n.rinIdx)
		n.rinIdx++
		combined := concatTuples(n.curLeft, rt)
		if n.on != nil {
			ok, err := n.on.Eval(ctx, combined)
			if err != nil {
				return err
			}
			if !ok.IsTrue() {
				continue
			}
		}
		n.matched = true
		out.Add(combined)
		if out.Full() {
			ctx.popOuter()
			n.pushed = false
			return nil
		}
	}
}

type materializeNode struct {
	child Node
	rows  []storage.Tuple
	idx   int
	built bool
}

func (n *materializeNode) Open(ctx *Ctx) error {
	n.idx = 0
	if n.built {
		return nil
	}
	if err := n.child.Open(ctx); err != nil {
		return err
	}
	b := NewBatch(ctx.BatchSize)
	err := drainNode(ctx, n.child, b, func(t storage.Tuple) error {
		n.rows = append(n.rows, t)
		return nil
	})
	if err != nil {
		return err
	}
	n.built = true
	return n.child.Close(ctx)
}

func (n *materializeNode) Rescan(ctx *Ctx) error { n.idx = 0; return nil }
func (n *materializeNode) Close(ctx *Ctx) error  { return nil }
func (n *materializeNode) NextBatch(ctx *Ctx, out *Batch) error {
	n.idx += copyChunk(out, n.rows, n.idx)
	return nil
}

// copyChunk fills out with the next chunk of rows starting at idx and
// returns how many were copied — the shared emit loop of every
// materializing operator.
func copyChunk(out *Batch, rows []storage.Tuple, idx int) int {
	out.begin()
	if idx >= len(rows) {
		return 0
	}
	end := idx + out.Cap()
	if end > len(rows) {
		end = len(rows)
	}
	out.Append(rows[idx:end])
	return end - idx
}

// ---------------------------------------------------------------------------
// sort / limit / distinct / append / set ops / values
// ---------------------------------------------------------------------------

type sortNode struct {
	child Node
	keys  []sortKeyState
	rows  []storage.Tuple
	idx   int
	kexp  []*ExprState
	kcols [][]sqltypes.Value
}

func (n *sortNode) Open(ctx *Ctx) error {
	n.rows = n.rows[:0]
	n.idx = 0
	if n.kexp == nil {
		n.kexp = make([]*ExprState, len(n.keys))
		for k := range n.keys {
			n.kexp[k] = n.keys[k].expr
		}
		n.kcols = make([][]sqltypes.Value, len(n.keys))
	}
	if err := n.child.Open(ctx); err != nil {
		return err
	}
	type keyed struct {
		row  storage.Tuple
		keys []sqltypes.Value
	}
	var rows []keyed
	b := NewBatch(ctx.BatchSize)
	for {
		if err := n.child.NextBatch(ctx, b); err != nil {
			return err
		}
		m := b.Len()
		if m == 0 {
			break
		}
		// Evaluate the sort keys over the whole batch (row-major when any
		// key is volatile), then slice the per-row key vectors out of one
		// backing array.
		if err := evalExprColumns(ctx, n.kexp, b.Rows(), n.kcols); err != nil {
			return err
		}
		backing := make([]sqltypes.Value, m*len(n.keys))
		for k := range n.keys {
			for i := 0; i < m; i++ {
				backing[i*len(n.keys)+k] = n.kcols[k][i]
			}
		}
		for i, t := range b.Rows() {
			rows = append(rows, keyed{row: t, keys: backing[i*len(n.keys) : (i+1)*len(n.keys)]})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k := range n.keys {
			c := compareKeyValues(rows[i].keys[k], rows[j].keys[k], n.keys[k].desc)
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	for _, r := range rows {
		n.rows = append(n.rows, r.row)
	}
	return n.child.Close(ctx)
}

func (n *sortNode) Rescan(ctx *Ctx) error { return n.Open(ctx) }
func (n *sortNode) Close(ctx *Ctx) error  { return nil }
func (n *sortNode) NextBatch(ctx *Ctx, out *Batch) error {
	n.idx += copyChunk(out, n.rows, n.idx)
	return nil
}

type limitNode struct {
	child         Node
	limit, offset *ExprState
	remaining     int64
	toSkip        int64
	unlimited     bool
	in            *Batch
}

func (n *limitNode) Open(ctx *Ctx) error {
	if n.in == nil {
		n.in = NewBatch(ctx.BatchSize)
	}
	if err := n.child.Open(ctx); err != nil {
		return err
	}
	return n.reset(ctx)
}

func (n *limitNode) reset(ctx *Ctx) error {
	n.unlimited = true
	n.remaining = 0
	n.toSkip = 0
	if n.limit != nil {
		v, err := n.limit.Eval(ctx, nil)
		if err != nil {
			return err
		}
		if !v.IsNull() {
			iv, err := sqltypes.Cast(v, sqltypes.TypeInt)
			if err != nil {
				return err
			}
			n.unlimited = false
			n.remaining = iv.Int()
		}
	}
	if n.offset != nil {
		v, err := n.offset.Eval(ctx, nil)
		if err != nil {
			return err
		}
		if !v.IsNull() {
			iv, err := sqltypes.Cast(v, sqltypes.TypeInt)
			if err != nil {
				return err
			}
			n.toSkip = iv.Int()
		}
	}
	return nil
}

func (n *limitNode) Rescan(ctx *Ctx) error {
	if err := n.child.Rescan(ctx); err != nil {
		return err
	}
	return n.reset(ctx)
}

func (n *limitNode) Close(ctx *Ctx) error { return n.child.Close(ctx) }

// NextBatch bounds every child pull by the rows it still needs — skip
// counts while discarding the OFFSET prefix, then the LIMIT remainder — so
// the pipeline below never computes past the cut regardless of batch size.
func (n *limitNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	for n.toSkip > 0 {
		k := out.Cap()
		if int64(k) > n.toSkip {
			k = int(n.toSkip)
		}
		n.in.SetLimit(k)
		if err := n.child.NextBatch(ctx, n.in); err != nil {
			return err
		}
		if n.in.Len() == 0 {
			return nil
		}
		n.toSkip -= int64(n.in.Len())
	}
	k := out.Cap()
	if !n.unlimited {
		if n.remaining <= 0 {
			return nil
		}
		if int64(k) > n.remaining {
			k = int(n.remaining)
		}
	}
	n.in.SetLimit(k)
	if err := n.child.NextBatch(ctx, n.in); err != nil {
		return err
	}
	if !n.unlimited {
		n.remaining -= int64(n.in.Len())
	}
	out.Append(n.in.Rows())
	return nil
}

type distinctNode struct {
	child Node
	seen  *tupleSet
	in    *Batch
}

func (n *distinctNode) Open(ctx *Ctx) error {
	n.seen = newTupleSet()
	if n.in == nil {
		n.in = NewBatch(ctx.BatchSize)
	}
	return n.child.Open(ctx)
}

func (n *distinctNode) Rescan(ctx *Ctx) error {
	n.seen = newTupleSet()
	return n.child.Rescan(ctx)
}

func (n *distinctNode) Close(ctx *Ctx) error { return n.child.Close(ctx) }

func (n *distinctNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	for {
		n.in.SetLimit(out.Cap())
		if err := n.child.NextBatch(ctx, n.in); err != nil {
			return err
		}
		if n.in.Len() == 0 {
			return nil
		}
		for _, t := range n.in.Rows() {
			if n.seen.add(t) {
				out.Add(t)
			}
		}
		if out.Len() > 0 {
			return nil
		}
	}
}

type appendNode struct {
	children []Node
	cur      int
}

func (n *appendNode) Open(ctx *Ctx) error {
	n.cur = 0
	for _, c := range n.children {
		if err := c.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (n *appendNode) Rescan(ctx *Ctx) error {
	n.cur = 0
	for _, c := range n.children {
		if err := c.Rescan(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (n *appendNode) Close(ctx *Ctx) error {
	var first error
	for _, c := range n.children {
		if err := c.Close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (n *appendNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	for n.cur < len(n.children) {
		if err := n.children[n.cur].NextBatch(ctx, out); err != nil {
			return err
		}
		if out.Len() > 0 {
			return nil
		}
		n.cur++
	}
	return nil
}

type setOpNode struct {
	op          string
	all         bool
	left, right Node

	out []storage.Tuple
	idx int
}

func (n *setOpNode) Open(ctx *Ctx) error {
	if err := n.left.Open(ctx); err != nil {
		return err
	}
	if err := n.right.Open(ctx); err != nil {
		return err
	}
	return n.build(ctx)
}

func (n *setOpNode) build(ctx *Ctx) error {
	n.out = nil
	n.idx = 0
	b := NewBatch(ctx.BatchSize)
	rightCount := map[string]int{}
	err := drainNode(ctx, n.right, b, func(t storage.Tuple) error {
		rightCount[tupleKey(t)]++
		return nil
	})
	if err != nil {
		return err
	}
	emitted := map[string]bool{}
	err = drainNode(ctx, n.left, b, func(t storage.Tuple) error {
		k := tupleKey(t)
		switch n.op {
		case "INTERSECT":
			if rightCount[k] > 0 {
				if n.all {
					rightCount[k]--
					n.out = append(n.out, t)
				} else if !emitted[k] {
					emitted[k] = true
					n.out = append(n.out, t)
				}
			}
		case "EXCEPT":
			if n.all {
				if rightCount[k] > 0 {
					rightCount[k]--
				} else {
					n.out = append(n.out, t)
				}
			} else if rightCount[k] == 0 && !emitted[k] {
				emitted[k] = true
				n.out = append(n.out, t)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	n.left.Close(ctx)
	n.right.Close(ctx)
	return nil
}

func (n *setOpNode) Rescan(ctx *Ctx) error {
	if err := n.left.Rescan(ctx); err != nil {
		return err
	}
	if err := n.right.Rescan(ctx); err != nil {
		return err
	}
	return n.build(ctx)
}

func (n *setOpNode) Close(ctx *Ctx) error { return nil }

func (n *setOpNode) NextBatch(ctx *Ctx, out *Batch) error {
	n.idx += copyChunk(out, n.out, n.idx)
	return nil
}

type valuesNode struct {
	rows [][]*ExprState
	idx  int
}

func (n *valuesNode) Open(ctx *Ctx) error   { n.idx = 0; return nil }
func (n *valuesNode) Rescan(ctx *Ctx) error { n.idx = 0; return nil }
func (n *valuesNode) Close(ctx *Ctx) error  { return nil }
func (n *valuesNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	for !out.Full() && n.idx < len(n.rows) {
		es := n.rows[n.idx]
		n.idx++
		row := make(storage.Tuple, len(es))
		for i, e := range es {
			v, err := e.Eval(ctx, nil)
			if err != nil {
				return err
			}
			row[i] = v
		}
		out.Add(row)
	}
	return nil
}

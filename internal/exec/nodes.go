package exec

import (
	"fmt"
	"sort"

	"plsqlaway/internal/catalog"
	"plsqlaway/internal/plan"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// Node is an instantiated plan operator. Open prepares scanning from the
// start (re-callable), Next streams tuples (nil at EOF), Rescan resets
// cheaply for lateral re-execution, Close releases per-open resources.
type Node interface {
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (storage.Tuple, error)
	Rescan(ctx *Ctx) error
	Close(ctx *Ctx) error
}

// instantiateNode builds the runtime tree for a plan node. The allocations
// this performs are the ExecutorStart cost the paper's Table 1 profiles.
func instantiateNode(p plan.Node) (Node, error) {
	switch x := p.(type) {
	case *plan.Result:
		exprs, err := instantiateAll(x.Exprs...)
		if err != nil {
			return nil, err
		}
		return &resultNode{exprs: exprs}, nil
	case *plan.SeqScan:
		return &seqScanNode{table: x.Table}, nil
	case *plan.IndexScan:
		key, err := instantiateExpr(x.Key)
		if err != nil {
			return nil, err
		}
		return &indexScanNode{table: x.Table, col: x.Col, key: key}, nil
	case *plan.CTEScan:
		return &cteScanNode{index: x.Index, working: x.Working}, nil
	case *plan.Filter:
		child, err := instantiateNode(x.Child)
		if err != nil {
			return nil, err
		}
		pred, err := instantiateExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		return &filterNode{child: child, pred: pred}, nil
	case *plan.Project:
		child, err := instantiateNode(x.Child)
		if err != nil {
			return nil, err
		}
		exprs, err := instantiateAll(x.Exprs...)
		if err != nil {
			return nil, err
		}
		return &projectNode{child: child, exprs: exprs}, nil
	case *plan.NestLoop:
		l, err := instantiateNode(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := instantiateNode(x.Right)
		if err != nil {
			return nil, err
		}
		n := &nestLoopNode{left: l, right: r, kind: x.Kind, rightWidth: x.Right.Width()}
		if x.On != nil {
			n.on, err = instantiateExpr(x.On)
			if err != nil {
				return nil, err
			}
		}
		return n, nil
	case *plan.Materialize:
		child, err := instantiateNode(x.Child)
		if err != nil {
			return nil, err
		}
		return &materializeNode{child: child}, nil
	case *plan.Agg:
		return instantiateAgg(x)
	case *plan.Window:
		return instantiateWindow(x)
	case *plan.Sort:
		child, err := instantiateNode(x.Child)
		if err != nil {
			return nil, err
		}
		keys, err := instantiateSortKeys(x.Keys)
		if err != nil {
			return nil, err
		}
		return &sortNode{child: child, keys: keys}, nil
	case *plan.Limit:
		child, err := instantiateNode(x.Child)
		if err != nil {
			return nil, err
		}
		n := &limitNode{child: child}
		if x.Limit != nil {
			n.limit, err = instantiateExpr(x.Limit)
			if err != nil {
				return nil, err
			}
		}
		if x.Offset != nil {
			n.offset, err = instantiateExpr(x.Offset)
			if err != nil {
				return nil, err
			}
		}
		return n, nil
	case *plan.Distinct:
		child, err := instantiateNode(x.Child)
		if err != nil {
			return nil, err
		}
		return &distinctNode{child: child}, nil
	case *plan.Append:
		n := &appendNode{}
		for _, c := range x.Children {
			cn, err := instantiateNode(c)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, cn)
		}
		return n, nil
	case *plan.SetOp:
		l, err := instantiateNode(x.L)
		if err != nil {
			return nil, err
		}
		r, err := instantiateNode(x.R)
		if err != nil {
			return nil, err
		}
		return &setOpNode{op: x.Op, all: x.All, left: l, right: r}, nil
	case *plan.ValuesNode:
		n := &valuesNode{}
		for _, row := range x.Rows {
			es, err := instantiateAll(row...)
			if err != nil {
				return nil, err
			}
			n.rows = append(n.rows, es)
		}
		return n, nil
	case *plan.RecursiveUnion:
		nonRec, err := instantiateNode(x.NonRec)
		if err != nil {
			return nil, err
		}
		rec, err := instantiateNode(x.Rec)
		if err != nil {
			return nil, err
		}
		return &recursiveUnionNode{nonRec: nonRec, rec: rec, cteIndex: x.CTEIndex, iterate: x.Iterate, dedup: x.Dedup}, nil
	case *plan.WithNode:
		child, err := instantiateNode(x.Child)
		if err != nil {
			return nil, err
		}
		return &withNode{indices: x.Indices, child: child}, nil
	default:
		return nil, fmt.Errorf("exec: cannot instantiate plan node %T", p)
	}
}

func instantiateSortKeys(keys []plan.SortKey) ([]sortKeyState, error) {
	out := make([]sortKeyState, len(keys))
	for i, k := range keys {
		es, err := instantiateExpr(k.Expr)
		if err != nil {
			return nil, err
		}
		out[i] = sortKeyState{expr: es, desc: k.Desc}
	}
	return out, nil
}

type sortKeyState struct {
	expr *ExprState
	desc bool
}

// compareKeyValues orders values with NULLS LAST ascending (PostgreSQL
// default) and NULLS FIRST descending.
func compareKeyValues(a, b sqltypes.Value, desc bool) int {
	an, bn := a.IsNull(), b.IsNull()
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			if desc {
				return -1
			}
			return 1
		default:
			if desc {
				return 1
			}
			return -1
		}
	}
	c, err := sqltypes.Compare(a, b)
	if err != nil {
		return 0
	}
	if desc {
		return -c
	}
	return c
}

// ---------------------------------------------------------------------------
// result / scans / filter / project
// ---------------------------------------------------------------------------

type resultNode struct {
	exprs []*ExprState
	done  bool
}

func (n *resultNode) Open(ctx *Ctx) error   { n.done = false; return nil }
func (n *resultNode) Rescan(ctx *Ctx) error { n.done = false; return nil }
func (n *resultNode) Close(ctx *Ctx) error  { return nil }
func (n *resultNode) Next(ctx *Ctx) (storage.Tuple, error) {
	if n.done {
		return nil, nil
	}
	n.done = true
	row := make(storage.Tuple, len(n.exprs))
	for i, e := range n.exprs {
		v, err := e.Eval(ctx, nil)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

type seqScanNode struct {
	table *catalog.Table
	rows  []storage.Tuple
	idx   int
}

func (n *seqScanNode) Open(ctx *Ctx) error {
	rows, err := n.table.Heap.Rows()
	if err != nil {
		return err
	}
	n.rows = rows
	n.idx = 0
	return nil
}

func (n *seqScanNode) Rescan(ctx *Ctx) error { n.idx = 0; return nil }
func (n *seqScanNode) Close(ctx *Ctx) error  { return nil }
func (n *seqScanNode) Next(ctx *Ctx) (storage.Tuple, error) {
	if n.idx >= len(n.rows) {
		return nil, nil
	}
	t := n.rows[n.idx]
	n.idx++
	return t, nil
}

// indexScanNode probes a declared hash index: the key expression is
// evaluated once per (re)scan against the current outer bindings.
type indexScanNode struct {
	table *catalog.Table
	col   int
	key   *ExprState
	rows  []storage.Tuple
	hits  []int
	idx   int
}

func (n *indexScanNode) Open(ctx *Ctx) error { return n.Rescan(ctx) }

func (n *indexScanNode) Rescan(ctx *Ctx) error {
	n.idx = 0
	k, err := n.key.Eval(ctx, nil)
	if err != nil {
		return err
	}
	index, ok := n.table.IndexOn(n.col)
	if !ok {
		return fmt.Errorf("exec: no index on %s column %d", n.table.Name, n.col)
	}
	n.hits, n.rows, err = index.Probe(n.table, k)
	return err
}

func (n *indexScanNode) Close(ctx *Ctx) error { return nil }
func (n *indexScanNode) Next(ctx *Ctx) (storage.Tuple, error) {
	if n.idx >= len(n.hits) {
		return nil, nil
	}
	t := n.rows[n.hits[n.idx]]
	n.idx++
	return t, nil
}

type filterNode struct {
	child Node
	pred  *ExprState
}

func (n *filterNode) Open(ctx *Ctx) error   { return n.child.Open(ctx) }
func (n *filterNode) Rescan(ctx *Ctx) error { return n.child.Rescan(ctx) }
func (n *filterNode) Close(ctx *Ctx) error  { return n.child.Close(ctx) }
func (n *filterNode) Next(ctx *Ctx) (storage.Tuple, error) {
	for {
		t, err := n.child.Next(ctx)
		if err != nil || t == nil {
			return nil, err
		}
		v, err := n.pred.Eval(ctx, t)
		if err != nil {
			return nil, err
		}
		if v.IsTrue() {
			return t, nil
		}
	}
}

type projectNode struct {
	child Node
	exprs []*ExprState
}

func (n *projectNode) Open(ctx *Ctx) error   { return n.child.Open(ctx) }
func (n *projectNode) Rescan(ctx *Ctx) error { return n.child.Rescan(ctx) }
func (n *projectNode) Close(ctx *Ctx) error  { return n.child.Close(ctx) }
func (n *projectNode) Next(ctx *Ctx) (storage.Tuple, error) {
	t, err := n.child.Next(ctx)
	if err != nil || t == nil {
		return nil, err
	}
	out := make(storage.Tuple, len(n.exprs))
	for i, e := range n.exprs {
		v, err := e.Eval(ctx, t)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// joins
// ---------------------------------------------------------------------------

type nestLoopNode struct {
	left, right Node
	kind        plan.JoinKind
	on          *ExprState
	rightWidth  int

	leftRow     storage.Tuple
	needLeft    bool
	matched     bool
	pushed      bool
	rightOpened bool
}

func (n *nestLoopNode) Open(ctx *Ctx) error {
	if err := n.left.Open(ctx); err != nil {
		return err
	}
	// The right side may be correlated (LATERAL): its Open must only run
	// once a left row is on the outer stack, so it is deferred to Next.
	n.rightOpened = false
	n.needLeft = true
	n.pushed = false
	return nil
}

func (n *nestLoopNode) Rescan(ctx *Ctx) error {
	if n.pushed {
		ctx.popOuter()
		n.pushed = false
	}
	if err := n.left.Rescan(ctx); err != nil {
		return err
	}
	n.needLeft = true
	return nil
}

func (n *nestLoopNode) Close(ctx *Ctx) error {
	if n.pushed {
		ctx.popOuter()
		n.pushed = false
	}
	err1 := n.left.Close(ctx)
	err2 := n.right.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Next maintains the invariant that the left row is on the outer stack
// exactly while the right subtree (and the ON predicate) runs — it is
// popped before a joined row is handed upward, so expressions evaluated by
// parent nodes see the stack depth the binder assumed.
func (n *nestLoopNode) Next(ctx *Ctx) (storage.Tuple, error) {
	for {
		if n.needLeft {
			if n.pushed {
				ctx.popOuter()
				n.pushed = false
			}
			lt, err := n.left.Next(ctx)
			if err != nil {
				return nil, err
			}
			if lt == nil {
				return nil, nil
			}
			n.leftRow = lt
			ctx.pushOuter(lt)
			n.pushed = true
			if !n.rightOpened {
				if err := n.right.Open(ctx); err != nil {
					return nil, err
				}
				n.rightOpened = true
			} else if err := n.right.Rescan(ctx); err != nil {
				return nil, err
			}
			n.needLeft = false
			n.matched = false
		}
		if !n.pushed { // resuming after having emitted a row
			ctx.pushOuter(n.leftRow)
			n.pushed = true
		}
		rt, err := n.right.Next(ctx)
		if err != nil {
			return nil, err
		}
		if rt == nil {
			ctx.popOuter()
			n.pushed = false
			n.needLeft = true
			if n.kind == plan.JoinLeft && !n.matched {
				return concatTuples(n.leftRow, nullTuple(n.rightWidth)), nil
			}
			continue
		}
		combined := concatTuples(n.leftRow, rt)
		if n.on != nil {
			ok, err := n.on.Eval(ctx, combined)
			if err != nil {
				return nil, err
			}
			if !ok.IsTrue() {
				continue
			}
		}
		n.matched = true
		ctx.popOuter()
		n.pushed = false
		return combined, nil
	}
}

type materializeNode struct {
	child Node
	rows  []storage.Tuple
	idx   int
	built bool
}

func (n *materializeNode) Open(ctx *Ctx) error {
	n.idx = 0
	if n.built {
		return nil
	}
	if err := n.child.Open(ctx); err != nil {
		return err
	}
	for {
		t, err := n.child.Next(ctx)
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		n.rows = append(n.rows, t)
	}
	n.built = true
	return n.child.Close(ctx)
}

func (n *materializeNode) Rescan(ctx *Ctx) error { n.idx = 0; return nil }
func (n *materializeNode) Close(ctx *Ctx) error  { return nil }
func (n *materializeNode) Next(ctx *Ctx) (storage.Tuple, error) {
	if n.idx >= len(n.rows) {
		return nil, nil
	}
	t := n.rows[n.idx]
	n.idx++
	return t, nil
}

// ---------------------------------------------------------------------------
// sort / limit / distinct / append / set ops / values
// ---------------------------------------------------------------------------

type sortNode struct {
	child Node
	keys  []sortKeyState
	rows  []storage.Tuple
	idx   int
}

func (n *sortNode) Open(ctx *Ctx) error {
	n.rows = n.rows[:0]
	n.idx = 0
	if err := n.child.Open(ctx); err != nil {
		return err
	}
	type keyed struct {
		row  storage.Tuple
		keys []sqltypes.Value
	}
	var rows []keyed
	for {
		t, err := n.child.Next(ctx)
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		ks := make([]sqltypes.Value, len(n.keys))
		for i, k := range n.keys {
			v, err := k.expr.Eval(ctx, t)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		rows = append(rows, keyed{row: t, keys: ks})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k := range n.keys {
			c := compareKeyValues(rows[i].keys[k], rows[j].keys[k], n.keys[k].desc)
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	for _, r := range rows {
		n.rows = append(n.rows, r.row)
	}
	return n.child.Close(ctx)
}

func (n *sortNode) Rescan(ctx *Ctx) error { return n.Open(ctx) }
func (n *sortNode) Close(ctx *Ctx) error  { return nil }
func (n *sortNode) Next(ctx *Ctx) (storage.Tuple, error) {
	if n.idx >= len(n.rows) {
		return nil, nil
	}
	t := n.rows[n.idx]
	n.idx++
	return t, nil
}

type limitNode struct {
	child         Node
	limit, offset *ExprState
	remaining     int64
	toSkip        int64
	unlimited     bool
}

func (n *limitNode) Open(ctx *Ctx) error {
	if err := n.child.Open(ctx); err != nil {
		return err
	}
	return n.reset(ctx)
}

func (n *limitNode) reset(ctx *Ctx) error {
	n.unlimited = true
	n.remaining = 0
	n.toSkip = 0
	if n.limit != nil {
		v, err := n.limit.Eval(ctx, nil)
		if err != nil {
			return err
		}
		if !v.IsNull() {
			iv, err := sqltypes.Cast(v, sqltypes.TypeInt)
			if err != nil {
				return err
			}
			n.unlimited = false
			n.remaining = iv.Int()
		}
	}
	if n.offset != nil {
		v, err := n.offset.Eval(ctx, nil)
		if err != nil {
			return err
		}
		if !v.IsNull() {
			iv, err := sqltypes.Cast(v, sqltypes.TypeInt)
			if err != nil {
				return err
			}
			n.toSkip = iv.Int()
		}
	}
	return nil
}

func (n *limitNode) Rescan(ctx *Ctx) error {
	if err := n.child.Rescan(ctx); err != nil {
		return err
	}
	return n.reset(ctx)
}

func (n *limitNode) Close(ctx *Ctx) error { return n.child.Close(ctx) }

func (n *limitNode) Next(ctx *Ctx) (storage.Tuple, error) {
	for n.toSkip > 0 {
		t, err := n.child.Next(ctx)
		if err != nil || t == nil {
			return nil, err
		}
		n.toSkip--
	}
	if !n.unlimited {
		if n.remaining <= 0 {
			return nil, nil
		}
		n.remaining--
	}
	return n.child.Next(ctx)
}

type distinctNode struct {
	child Node
	seen  map[string]bool
}

func (n *distinctNode) Open(ctx *Ctx) error {
	n.seen = make(map[string]bool)
	return n.child.Open(ctx)
}

func (n *distinctNode) Rescan(ctx *Ctx) error {
	n.seen = make(map[string]bool)
	return n.child.Rescan(ctx)
}

func (n *distinctNode) Close(ctx *Ctx) error { return n.child.Close(ctx) }

func (n *distinctNode) Next(ctx *Ctx) (storage.Tuple, error) {
	for {
		t, err := n.child.Next(ctx)
		if err != nil || t == nil {
			return nil, err
		}
		k := tupleKey(t)
		if !n.seen[k] {
			n.seen[k] = true
			return t, nil
		}
	}
}

type appendNode struct {
	children []Node
	cur      int
}

func (n *appendNode) Open(ctx *Ctx) error {
	n.cur = 0
	for _, c := range n.children {
		if err := c.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (n *appendNode) Rescan(ctx *Ctx) error {
	n.cur = 0
	for _, c := range n.children {
		if err := c.Rescan(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (n *appendNode) Close(ctx *Ctx) error {
	var first error
	for _, c := range n.children {
		if err := c.Close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (n *appendNode) Next(ctx *Ctx) (storage.Tuple, error) {
	for n.cur < len(n.children) {
		t, err := n.children[n.cur].Next(ctx)
		if err != nil {
			return nil, err
		}
		if t != nil {
			return t, nil
		}
		n.cur++
	}
	return nil, nil
}

type setOpNode struct {
	op          string
	all         bool
	left, right Node

	out []storage.Tuple
	idx int
}

func (n *setOpNode) Open(ctx *Ctx) error {
	n.out = nil
	n.idx = 0
	if err := n.left.Open(ctx); err != nil {
		return err
	}
	if err := n.right.Open(ctx); err != nil {
		return err
	}
	rightCount := map[string]int{}
	for {
		t, err := n.right.Next(ctx)
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		rightCount[tupleKey(t)]++
	}
	emitted := map[string]bool{}
	for {
		t, err := n.left.Next(ctx)
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		k := tupleKey(t)
		switch n.op {
		case "INTERSECT":
			if rightCount[k] > 0 {
				if n.all {
					rightCount[k]--
					n.out = append(n.out, t)
				} else if !emitted[k] {
					emitted[k] = true
					n.out = append(n.out, t)
				}
			}
		case "EXCEPT":
			if n.all {
				if rightCount[k] > 0 {
					rightCount[k]--
				} else {
					n.out = append(n.out, t)
				}
			} else if rightCount[k] == 0 && !emitted[k] {
				emitted[k] = true
				n.out = append(n.out, t)
			}
		}
	}
	n.left.Close(ctx)
	n.right.Close(ctx)
	return nil
}

func (n *setOpNode) Rescan(ctx *Ctx) error {
	if err := n.left.Rescan(ctx); err != nil {
		return err
	}
	if err := n.right.Rescan(ctx); err != nil {
		return err
	}
	return n.Open(ctx)
}

func (n *setOpNode) Close(ctx *Ctx) error { return nil }

func (n *setOpNode) Next(ctx *Ctx) (storage.Tuple, error) {
	if n.idx >= len(n.out) {
		return nil, nil
	}
	t := n.out[n.idx]
	n.idx++
	return t, nil
}

type valuesNode struct {
	rows [][]*ExprState
	idx  int
}

func (n *valuesNode) Open(ctx *Ctx) error   { n.idx = 0; return nil }
func (n *valuesNode) Rescan(ctx *Ctx) error { n.idx = 0; return nil }
func (n *valuesNode) Close(ctx *Ctx) error  { return nil }
func (n *valuesNode) Next(ctx *Ctx) (storage.Tuple, error) {
	if n.idx >= len(n.rows) {
		return nil, nil
	}
	es := n.rows[n.idx]
	n.idx++
	row := make(storage.Tuple, len(es))
	for i, e := range es {
		v, err := e.Eval(ctx, nil)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

package exec

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"plsqlaway/internal/sqltypes"
)

// The columnar expression evaluator: monomorphized per-type-kind kernels
// over unboxed Column lanes. It is strictly an accelerator — every
// expression it can evaluate is also evaluable by the boxed EvalBatch path,
// and EvalCol's (nil, nil) "not columnar" return is the escape hatch the
// integration points use to fall back. The contract that keeps the two
// paths byte-identical: kernels exist only for type combinations whose
// boxed semantics they reproduce exactly (including error text and NULL
// propagation order); any other combination bails out so the boxed path
// raises its own errors.

// errDivZero carries the exact message of sqltypes' division errors so the
// columnar and boxed paths are indistinguishable to callers.
var errDivZero = errors.New("sqltypes: division by zero")

// computeColable reports whether this subtree is evaluable by EvalCol:
// pure, and built only from the forms the columnar kernels implement.
// Type-kind mismatches are not knowable here (plans are untyped), so
// kernels still bail at runtime on unsupported lane combinations.
func (es *ExprState) computeColable() bool {
	if !es.pure {
		return false
	}
	switch es.kind {
	case kConst:
		switch es.val.Kind() {
		case sqltypes.KindNull, sqltypes.KindInt, sqltypes.KindFloat,
			sqltypes.KindBool, sqltypes.KindText:
		default:
			return false
		}
	case kInput, kOuter, kParam:
	case kBin:
		if es.bin == bcCmp {
			return false
		}
	case kUnary, kIsNull:
	default:
		return false
	}
	for _, k := range es.kids {
		if !k.colable {
			return false
		}
	}
	return true
}

// EvalCol evaluates the expression once per row of the batch, columnar: the
// result is a typed Column (usually aliasing scratch owned by this
// ExprState or the batch, valid until the next evaluation). A (nil, nil)
// return means "not evaluable columnar on this batch" — the caller falls
// back to the boxed EvalBatch/Eval path, which is always equivalent.
func (es *ExprState) EvalCol(ctx *Ctx, b *Batch) (*Column, error) {
	if !es.colable {
		return nil, nil
	}
	n := b.Len()
	if n == 0 {
		es.cres.reset()
		return &es.cres, nil
	}
	switch es.kind {
	case kConst:
		es.cres.fillConst(es.val, n)
		return &es.cres, nil
	case kInput:
		return b.Col(es.idx)
	case kOuter:
		t, err := ctx.outerAt(es.depth)
		if err != nil {
			return nil, err
		}
		if es.idx >= len(t) {
			return nil, fmt.Errorf("exec: outer column %d out of range (row width %d)", es.idx, len(t))
		}
		es.cres.fillConst(t[es.idx], n)
		return &es.cres, nil
	case kParam:
		if es.idx < 1 || es.idx > len(ctx.Params) {
			return nil, fmt.Errorf("exec: no value for parameter $%d", es.idx)
		}
		es.cres.fillConst(ctx.Params[es.idx-1], n)
		return &es.cres, nil
	case kBin:
		if es.bin == bcAnd || es.bin == bcOr {
			return es.evalColLogical(ctx, b)
		}
		l, err := es.kids[0].EvalCol(ctx, b)
		if err != nil || l == nil {
			return nil, err
		}
		r, err := es.kids[1].EvalCol(ctx, b)
		if err != nil || r == nil {
			return nil, err
		}
		ok, err := binColKernel(es.bin, l, r, n, &es.cres)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		return &es.cres, nil
	case kUnary:
		return es.evalColUnary(ctx, b, n)
	case kIsNull:
		x, err := es.kids[0].EvalCol(ctx, b)
		if err != nil || x == nil {
			return nil, err
		}
		dst := &es.cres
		dst.reset()
		dst.Kind = ColBool
		dst.Bools = growBools(dst.Bools, n)
		for i := 0; i < n; i++ {
			dst.Bools[i] = x.null(i) != es.negate
		}
		return dst, nil
	}
	return nil, nil
}

// evalColLogical vectorizes AND/OR while preserving the boxed evaluator's
// laziness: the right operand is only evaluated when no row of the batch
// short-circuits on the left (AND: a non-NULL false; OR: a non-NULL true).
// If any row would short-circuit, the whole batch falls back to
// evalLogicalBatch's selection-vector path, so guard patterns
// (`y <> 0 AND x/y > 2`) never evaluate their guarded side on the rows the
// guard excludes.
func (es *ExprState) evalColLogical(ctx *Ctx, b *Batch) (*Column, error) {
	n := b.Len()
	l, err := es.kids[0].EvalCol(ctx, b)
	if err != nil || l == nil {
		return nil, err
	}
	isAnd := es.bin == bcAnd
	switch l.Kind {
	case ColNull:
	case ColBool:
		for i := 0; i < n; i++ {
			if (l.Nulls == nil || !l.Nulls[i]) && l.Bools[i] != isAnd {
				return nil, nil
			}
		}
	default:
		return nil, nil // non-boolean operand: boxed path raises the error
	}
	r, err := es.kids[1].EvalCol(ctx, b)
	if err != nil || r == nil {
		return nil, err
	}
	if r.Kind != ColBool && r.Kind != ColNull {
		return nil, nil
	}
	dst := &es.cres
	dst.reset()
	dst.Kind = ColBool
	dst.Bools = growBools(dst.Bools, n)
	var nulls []bool
	for i := 0; i < n; i++ {
		ln, rn := l.null(i), r.null(i)
		lv := !ln && l.Kind == ColBool && l.Bools[i]
		rv := !rn && r.Kind == ColBool && r.Bools[i]
		var res, isNull bool
		if isAnd {
			switch {
			case (!ln && !lv) || (!rn && !rv):
			case ln || rn:
				isNull = true
			default:
				res = true
			}
		} else {
			switch {
			case (!ln && lv) || (!rn && rv):
				res = true
			case ln || rn:
				isNull = true
			}
		}
		if isNull {
			if nulls == nil {
				nulls = dst.setNulls(n)
			}
			nulls[i] = true
		}
		dst.Bools[i] = res
	}
	return dst, nil
}

func (es *ExprState) evalColUnary(ctx *Ctx, b *Batch, n int) (*Column, error) {
	x, err := es.kids[0].EvalCol(ctx, b)
	if err != nil || x == nil {
		return nil, err
	}
	dst := &es.cres
	if es.op == "NOT" {
		switch x.Kind {
		case ColNull:
			dst.fillConst(sqltypes.Null, n)
			return dst, nil
		case ColBool:
			dst.reset()
			dst.Kind = ColBool
			dst.Bools = growBools(dst.Bools, n)
			if x.Nulls != nil {
				nulls := dst.setNulls(n)
				copy(nulls, x.Nulls[:n])
			}
			for i := 0; i < n; i++ {
				dst.Bools[i] = !x.Bools[i] && (x.Nulls == nil || !x.Nulls[i])
			}
			return dst, nil
		}
		return nil, nil
	}
	switch x.Kind {
	case ColNull:
		dst.fillConst(sqltypes.Null, n)
		return dst, nil
	case ColInt:
		dst.reset()
		dst.Kind = ColInt
		dst.Ints = growInts(dst.Ints, n)
		if x.Nulls != nil {
			nulls := dst.setNulls(n)
			copy(nulls, x.Nulls[:n])
		}
		for i := 0; i < n; i++ {
			dst.Ints[i] = -x.Ints[i]
		}
		return dst, nil
	case ColFloat:
		dst.reset()
		dst.Kind = ColFloat
		dst.Floats = growFloats(dst.Floats, n)
		if x.Nulls != nil {
			nulls := dst.setNulls(n)
			copy(nulls, x.Nulls[:n])
		}
		for i := 0; i < n; i++ {
			dst.Floats[i] = -x.Floats[i]
		}
		return dst, nil
	}
	return nil, nil
}

// binColKernel applies one non-logical binary operator over two columns
// into dst. The boolean result reports kernel coverage: false means the
// lane combination has no kernel and the caller must fall back boxed.
func binColKernel(code binCode, l, r *Column, n int, dst *Column) (bool, error) {
	// NULL propagation first, exactly like the boxed operators: arithmetic,
	// comparison, and concat all yield NULL when either side is NULL — even
	// ahead of type errors and division-by-zero checks.
	if l.Kind == ColNull || r.Kind == ColNull {
		dst.fillConst(sqltypes.Null, n)
		return true, nil
	}
	switch code {
	case bcAdd, bcSub, bcMul, bcDiv, bcMod:
		return arithColKernel(code, l, r, n, dst)
	case bcConcat:
		if l.Kind != ColStr || r.Kind != ColStr {
			return false, nil
		}
		dst.reset()
		dst.Kind = ColStr
		dst.Strs = growStrs(dst.Strs, n)
		nulls := mergeNullVectors(l, r, n, dst)
		for i := 0; i < n; i++ {
			if nulls != nil && nulls[i] {
				dst.Strs[i] = ""
				continue
			}
			dst.Strs[i] = l.Strs[i] + r.Strs[i]
		}
		return true, nil
	case bcEq, bcNe, bcLt, bcLe, bcGt, bcGe:
		return cmpColKernel(code, l, r, n, dst)
	}
	return false, nil
}

// mergeNullVectors prepares dst's nulls vector as the union of the operand
// nulls (nil when neither operand has NULLs). dst must be freshly reset.
func mergeNullVectors(l, r *Column, n int, dst *Column) []bool {
	if l.Nulls == nil && r.Nulls == nil {
		return nil
	}
	nulls := dst.setNulls(n)
	for i := 0; i < n; i++ {
		nulls[i] = (l.Nulls != nil && l.Nulls[i]) || (r.Nulls != nil && r.Nulls[i])
	}
	return nulls
}

func arithColKernel(code binCode, l, r *Column, n int, dst *Column) (bool, error) {
	lnum := l.Kind == ColInt || l.Kind == ColFloat
	rnum := r.Kind == ColInt || r.Kind == ColFloat
	if !lnum || !rnum {
		return false, nil // boxed path raises the non-numeric operand error
	}
	dst.reset()
	if l.Kind == ColInt && r.Kind == ColInt {
		dst.Kind = ColInt
		dst.Ints = growInts(dst.Ints, n)
		out, li, ri := dst.Ints, l.Ints, r.Ints
		nulls := mergeNullVectors(l, r, n, dst)
		switch code {
		case bcAdd:
			for i := 0; i < n; i++ {
				out[i] = li[i] + ri[i]
			}
		case bcSub:
			for i := 0; i < n; i++ {
				out[i] = li[i] - ri[i]
			}
		case bcMul:
			for i := 0; i < n; i++ {
				out[i] = li[i] * ri[i]
			}
		case bcDiv:
			for i := 0; i < n; i++ {
				if nulls != nil && nulls[i] {
					out[i] = 0
					continue
				}
				if ri[i] == 0 {
					return false, errDivZero
				}
				out[i] = li[i] / ri[i]
			}
		case bcMod:
			for i := 0; i < n; i++ {
				if nulls != nil && nulls[i] {
					out[i] = 0
					continue
				}
				if ri[i] == 0 {
					return false, errDivZero
				}
				out[i] = li[i] % ri[i]
			}
		}
		return true, nil
	}
	// Mixed or float operands widen to float64, like numericBinop.
	dst.Kind = ColFloat
	dst.Floats = growFloats(dst.Floats, n)
	out := dst.Floats
	nulls := mergeNullVectors(l, r, n, dst)
	for i := 0; i < n; i++ {
		if nulls != nil && nulls[i] {
			out[i] = 0
			continue
		}
		var x, y float64
		if l.Kind == ColInt {
			x = float64(l.Ints[i])
		} else {
			x = l.Floats[i]
		}
		if r.Kind == ColInt {
			y = float64(r.Ints[i])
		} else {
			y = r.Floats[i]
		}
		switch code {
		case bcAdd:
			out[i] = x + y
		case bcSub:
			out[i] = x - y
		case bcMul:
			out[i] = x * y
		case bcDiv:
			if y == 0 {
				return false, errDivZero
			}
			out[i] = x / y
		case bcMod:
			if y == 0 {
				return false, errDivZero
			}
			out[i] = math.Mod(x, y)
		}
	}
	return true, nil
}

// cmpFloatVals reproduces sqltypes.Compare's float ordering: NaN compares
// equal to NaN and sorts after everything else, like PostgreSQL.
func cmpFloatVals(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return 1
	case !math.IsNaN(a) && math.IsNaN(b):
		return -1
	}
	return 0
}

func cmpTruth(code binCode, c int) bool {
	switch code {
	case bcEq:
		return c == 0
	case bcNe:
		return c != 0
	case bcLt:
		return c < 0
	case bcLe:
		return c <= 0
	case bcGt:
		return c > 0
	case bcGe:
		return c >= 0
	}
	return false
}

func cmpColKernel(code binCode, l, r *Column, n int, dst *Column) (bool, error) {
	lnum := l.Kind == ColInt || l.Kind == ColFloat
	rnum := r.Kind == ColInt || r.Kind == ColFloat
	sameTyped := l.Kind == r.Kind && (l.Kind == ColStr || l.Kind == ColBool)
	if !(lnum && rnum) && !sameTyped {
		return false, nil // mixed or boxed lanes: boxed path decides (and errors)
	}
	dst.reset()
	dst.Kind = ColBool
	dst.Bools = growBools(dst.Bools, n)
	out := dst.Bools
	nulls := mergeNullVectors(l, r, n, dst)
	switch {
	case l.Kind == ColInt && r.Kind == ColInt:
		li, ri := l.Ints, r.Ints
		// The int=int comparison is the hash-join/filter hot loop:
		// monomorphized per operator so the comparison compiles to a single
		// branchless setcc per row.
		switch code {
		case bcEq:
			for i := 0; i < n; i++ {
				out[i] = li[i] == ri[i]
			}
		case bcNe:
			for i := 0; i < n; i++ {
				out[i] = li[i] != ri[i]
			}
		case bcLt:
			for i := 0; i < n; i++ {
				out[i] = li[i] < ri[i]
			}
		case bcLe:
			for i := 0; i < n; i++ {
				out[i] = li[i] <= ri[i]
			}
		case bcGt:
			for i := 0; i < n; i++ {
				out[i] = li[i] > ri[i]
			}
		case bcGe:
			for i := 0; i < n; i++ {
				out[i] = li[i] >= ri[i]
			}
		}
	case lnum && rnum:
		for i := 0; i < n; i++ {
			if nulls != nil && nulls[i] {
				out[i] = false
				continue
			}
			var x, y float64
			if l.Kind == ColInt {
				x = float64(l.Ints[i])
			} else {
				x = l.Floats[i]
			}
			if r.Kind == ColInt {
				y = float64(r.Ints[i])
			} else {
				y = r.Floats[i]
			}
			out[i] = cmpTruth(code, cmpFloatVals(x, y))
		}
	case l.Kind == ColStr:
		for i := 0; i < n; i++ {
			if nulls != nil && nulls[i] {
				out[i] = false
				continue
			}
			out[i] = cmpTruth(code, strings.Compare(l.Strs[i], r.Strs[i]))
		}
	case l.Kind == ColBool:
		for i := 0; i < n; i++ {
			if nulls != nil && nulls[i] {
				out[i] = false
				continue
			}
			var c int
			switch {
			case !l.Bools[i] && r.Bools[i]:
				c = -1
			case l.Bools[i] && !r.Bools[i]:
				c = 1
			}
			out[i] = cmpTruth(code, c)
		}
	}
	if nulls != nil && l.Kind == ColInt && r.Kind == ColInt {
		// The monomorphized int loops above ignore nulls for speed; the lane
		// values under NULL slots are zeros, so just clear their results.
		for i := 0; i < n; i++ {
			if nulls[i] {
				out[i] = false
			}
		}
	}
	return true, nil
}

package exec

import (
	"math"
	"testing"
	"testing/quick"

	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRand(8)
	same := true
	a.Seed(7)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRandFloatRange(t *testing.T) {
	r := NewRand(42)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10_000}); err != nil {
		t.Error(err)
	}
}

func TestRandZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Next() == 0 {
		t.Error("zero seed must be remapped (xorshift fixpoint)")
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Error("Intn of non-positive n should be 0")
	}
}

func TestTupleKeyConsistentWithIdentical(t *testing.T) {
	pairs := [][2]storage.Tuple{
		{{sqltypes.NewInt(3)}, {sqltypes.NewFloat(3)}},
		{{sqltypes.NewFloat(0)}, {sqltypes.NewFloat(math.Copysign(0, -1))}},
		{{sqltypes.NewCoord(1, 2)}, {sqltypes.NewRow([]sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewInt(2)})}},
		{{sqltypes.Null, sqltypes.NewText("a")}, {sqltypes.Null, sqltypes.NewText("a")}},
	}
	for _, p := range pairs {
		if tupleKey(p[0]) != tupleKey(p[1]) {
			t.Errorf("tupleKey(%v) != tupleKey(%v) though Identical", p[0], p[1])
		}
	}
	if tupleKey(storage.Tuple{sqltypes.NewInt(1)}) == tupleKey(storage.Tuple{sqltypes.NewInt(2)}) {
		t.Error("distinct tuples must not collide trivially")
	}
	if tupleKey(storage.Tuple{sqltypes.Null}) == tupleKey(storage.Tuple{sqltypes.NewInt(0)}) {
		t.Error("NULL must differ from 0")
	}
}

func TestOuterStackDiscipline(t *testing.T) {
	ctx := NewCtx()
	r1 := storage.Tuple{sqltypes.NewInt(1)}
	r2 := storage.Tuple{sqltypes.NewInt(2)}
	ctx.pushOuter(r1)
	ctx.pushOuter(r2)
	top, err := ctx.outerAt(0)
	if err != nil || top[0].Int() != 2 {
		t.Errorf("depth 0 = %v (%v)", top, err)
	}
	below, err := ctx.outerAt(1)
	if err != nil || below[0].Int() != 1 {
		t.Errorf("depth 1 = %v (%v)", below, err)
	}
	if _, err := ctx.outerAt(2); err == nil {
		t.Error("depth beyond stack must error")
	}
	ctx.popOuter()
	if got, _ := ctx.outerAt(0); got[0].Int() != 1 {
		t.Error("pop broken")
	}
}

func TestConcatAndNullTuple(t *testing.T) {
	a := storage.Tuple{sqltypes.NewInt(1)}
	b := storage.Tuple{sqltypes.NewInt(2), sqltypes.NewInt(3)}
	c := concatTuples(a, b)
	if len(c) != 3 || c[2].Int() != 3 {
		t.Errorf("concat: %v", c)
	}
	// concat must not alias its inputs' backing arrays
	c[0] = sqltypes.NewInt(99)
	if a[0].Int() != 1 {
		t.Error("concat aliased input")
	}
	n := nullTuple(3)
	for _, v := range n {
		if !v.IsNull() {
			t.Errorf("nullTuple: %v", n)
		}
	}
}

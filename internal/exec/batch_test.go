package exec

import (
	"testing"

	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

func TestBatchLimitAndFill(t *testing.T) {
	b := NewBatch(3)
	if b.Cap() != 3 || b.Len() != 0 || b.Full() {
		t.Fatalf("fresh batch: cap=%d len=%d full=%v", b.Cap(), b.Len(), b.Full())
	}
	for i := 0; i < 3; i++ {
		b.Add(storage.Tuple{sqltypes.NewInt(int64(i))})
	}
	if !b.Full() || b.Len() != 3 {
		t.Fatalf("filled batch: len=%d full=%v", b.Len(), b.Full())
	}
	if b.Row(2)[0].Int() != 2 {
		t.Errorf("Row(2) = %v", b.Row(2))
	}
	b.SetLimit(1)
	if !b.Full() {
		t.Error("shrinking the limit below len must report full")
	}
	b.begin()
	if b.Len() != 0 || b.Cap() != 1 {
		t.Errorf("begin: len=%d cap=%d", b.Len(), b.Cap())
	}
	b.SetLimit(0)
	if b.Cap() != 1 {
		t.Errorf("SetLimit clamps to ≥ 1, got %d", b.Cap())
	}
}

// countingNode emits total single-int rows, recording the largest batch
// limit it was asked for.
type countingNode struct {
	total    int
	pos      int
	maxLimit int
}

func (n *countingNode) Open(ctx *Ctx) error   { n.pos = 0; return nil }
func (n *countingNode) Rescan(ctx *Ctx) error { n.pos = 0; return nil }
func (n *countingNode) Close(ctx *Ctx) error  { return nil }
func (n *countingNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	if out.Cap() > n.maxLimit {
		n.maxLimit = out.Cap()
	}
	for !out.Full() && n.pos < n.total {
		out.Add(storage.Tuple{sqltypes.NewInt(int64(n.pos))})
		n.pos++
	}
	return nil
}

func TestRowIterBoundsPulls(t *testing.T) {
	ctx := NewCtx()
	src := &countingNode{total: 5}
	it := newRowIter(src, 2)
	if err := src.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		row, err := it.next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		got = append(got, row[0].Int())
	}
	if len(got) != 5 {
		t.Fatalf("rowIter drained %d rows, want 5", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d = %d", i, v)
		}
	}
	if src.maxLimit != 2 {
		t.Errorf("rowIter pulled batches of %d, want its limit 2", src.maxLimit)
	}
	// Further pulls at EOF stay nil.
	if row, _ := it.next(ctx); row != nil {
		t.Error("post-EOF next must stay nil")
	}
}

func TestDrainNodeVisitsEveryRow(t *testing.T) {
	ctx := NewCtx()
	src := &countingNode{total: 10}
	if err := src.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(3)
	var sum int64
	if err := drainNode(ctx, src, b, func(tu storage.Tuple) error {
		sum += tu[0].Int()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Errorf("drain sum = %d, want 45", sum)
	}
}

func TestTupleSetIntFastPathMatchesEncodedPath(t *testing.T) {
	s := newTupleSet()
	if !s.add(storage.Tuple{sqltypes.NewInt(3)}) {
		t.Fatal("first insert must be new")
	}
	// Float 3.0 normalizes onto the same int — tupleKey semantics.
	if s.add(storage.Tuple{sqltypes.NewFloat(3)}) {
		t.Error("3.0 must collide with 3 (Identical semantics)")
	}
	if s.add(storage.Tuple{sqltypes.NewInt(3)}) {
		t.Error("re-insert must report duplicate")
	}
	if !s.add(storage.Tuple{sqltypes.NewFloat(3.5)}) {
		t.Error("3.5 is distinct from 3")
	}
	if !s.add(storage.Tuple{sqltypes.Null}) {
		t.Error("NULL singleton tuple is its own key")
	}
	if s.add(storage.Tuple{sqltypes.Null}) {
		t.Error("NULL must dedup against NULL (tupleKey semantics)")
	}
	// Wider tuples take the encoded path.
	two := storage.Tuple{sqltypes.NewInt(1), sqltypes.NewInt(2)}
	if !s.add(two) || s.add(two) {
		t.Error("two-column tuples must dedup through the encoded path")
	}
	// Coord and its row twin are Identical and must collide.
	if !s.add(storage.Tuple{sqltypes.NewCoord(1, 2)}) {
		t.Fatal("coord insert")
	}
	if s.add(storage.Tuple{sqltypes.NewRow([]sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewInt(2)})}) {
		t.Error("coord(1,2) and row(1,2) are Identical and must collide")
	}
}

func TestRowTableIntAndEncodedPartitionsAgree(t *testing.T) {
	r1 := storage.Tuple{sqltypes.NewText("r1")}
	r2 := storage.Tuple{sqltypes.NewText("r2")}
	mustProbe := func(rt *rowTable, keys ...sqltypes.Value) []storage.Tuple {
		t.Helper()
		got, err := rt.probe(keys)
		if err != nil {
			t.Fatalf("probe(%v): %v", keys, err)
		}
		return got
	}

	var rt rowTable
	rt.insert([]sqltypes.Value{sqltypes.NewInt(7)}, r1)
	rt.insert([]sqltypes.Value{sqltypes.NewFloat(7)}, r2)
	if got := mustProbe(&rt, sqltypes.NewFloat(7.0)); len(got) != 2 {
		t.Errorf("numeric-normalized probe found %d rows, want 2", len(got))
	}
	// Large numerics: int 2^53+1 and float 2^53 share a bucket (Compare
	// calls them equal via the float image); exactness tracking reports it.
	rt.insert([]sqltypes.Value{sqltypes.NewInt(1<<53 + 1)}, r1)
	if got := mustProbe(&rt, sqltypes.NewFloat(1<<53)); len(got) != 1 {
		t.Errorf("2^53 float probe found %d rows, want the 2^53+1 int bucket-mate", len(got))
	}
	if rt.exact() {
		t.Error("table with a >=2^53 int key must not report exact buckets")
	}
	// NULL keys neither build nor probe.
	rt.insert([]sqltypes.Value{sqltypes.Null}, r1)
	if got := mustProbe(&rt, sqltypes.Null); got != nil {
		t.Errorf("NULL probe must find nothing, got %d rows", len(got))
	}
	// Probing with a kind the build keys cannot be compared with errors,
	// exactly as the nest-loop plan errored on such a pair.
	if _, err := rt.probe([]sqltypes.Value{sqltypes.NewText("seven")}); err == nil {
		t.Error("text probe against numeric build keys must error like Compare")
	}

	// Text keys take the encoded path.
	var rs rowTable
	rs.insert([]sqltypes.Value{sqltypes.NewText("k")}, r2)
	if got := mustProbe(&rs, sqltypes.NewText("k")); len(got) != 1 {
		t.Errorf("text probe found %d rows, want 1", len(got))
	}
	if got := mustProbe(&rs, sqltypes.NewText("absent")); got != nil {
		t.Errorf("absent probe must find nothing")
	}
	if !rs.exact() {
		t.Error("pure text keys are exact buckets")
	}

	// Multi-column keys.
	var rm rowTable
	rm.insert([]sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewInt(2)}, r1)
	if got := mustProbe(&rm, sqltypes.NewInt(1), sqltypes.NewInt(2)); len(got) != 1 {
		t.Errorf("multi-column probe found %d rows, want 1", len(got))
	}
	if got := mustProbe(&rm, sqltypes.NewInt(1), sqltypes.NewInt(3)); got != nil {
		t.Errorf("multi-column mismatch must find nothing")
	}
}

func TestEvalBatchPureMatchesEval(t *testing.T) {
	// (n + 2) * 3 >= 12 over rows 0..9, batch vs per-row.
	expr := &ExprState{kind: kBin, op: ">=", bin: binCodeFor(">="), pure: true, kids: []*ExprState{
		{kind: kBin, op: "*", bin: binCodeFor("*"), pure: true, kids: []*ExprState{
			{kind: kBin, op: "+", bin: binCodeFor("+"), pure: true, kids: []*ExprState{
				{kind: kInput, idx: 0, pure: true},
				{kind: kConst, val: sqltypes.NewInt(2), pure: true},
			}},
			{kind: kConst, val: sqltypes.NewInt(3), pure: true},
		}},
		{kind: kConst, val: sqltypes.NewInt(12), pure: true},
	}}
	ctx := NewCtx()
	rows := make([]storage.Tuple, 10)
	for i := range rows {
		rows[i] = storage.Tuple{sqltypes.NewInt(int64(i))}
	}
	out := make([]sqltypes.Value, len(rows))
	if err := expr.EvalBatch(ctx, rows, out); err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		want, err := expr.Eval(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		if !sqltypes.Identical(want, out[i]) {
			t.Errorf("row %d: batch=%v row-at-a-time=%v", i, out[i], want)
		}
	}
}

// Package exec instantiates plans into runtime state and evaluates them —
// PostgreSQL's executor, in miniature. The Plan→Executor split matters for
// the reproduction: Instantiate (+Open) is the ExecutorStart work the
// PL/pgSQL interpreter pays for *every* evaluation of an embedded query,
// while the compiled WITH RECURSIVE form instantiates once and then only
// rescans.
package exec

import (
	"fmt"
	"math"

	"plsqlaway/internal/catalog"
	"plsqlaway/internal/plan"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// Rand is the engine's deterministic random source (xorshift64*), shared by
// interpreted and compiled evaluation so differential tests see identical
// robot strays.
type Rand struct{ state uint64 }

// NewRand creates a generator; seed 0 is mapped to a fixed constant.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r.state = seed
}

// Next returns the next raw 64-bit value.
func (r *Rand) Next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// CallFunc dispatches a catalog function invocation. The engine installs an
// implementation that routes PL/pgSQL functions through the interpreter
// (counting a Q→f context switch) and compiled functions through their
// inlined query.
type CallFunc func(f *catalog.Function, args []sqltypes.Value) (sqltypes.Value, error)

// Ctx is the per-execution runtime context.
type Ctx struct {
	Params []sqltypes.Value
	// Outer is the stack of enclosing rows: subplan evaluations and
	// nest-loop lateral iterations push here. OuterRef{Depth: d} reads
	// Outer[len(Outer)-1-d].
	Outer []storage.Tuple

	Rand         *Rand
	StorageStats *storage.Stats
	WorkMem      int
	MaxRecursion int
	CallFn       CallFunc

	// TS is the storage snapshot timestamp this execution reads at: heap
	// scans and index probes see exactly the row versions committed at or
	// before it. The engine pins it per statement; the default AllVisible
	// (every committed version) serves direct executor users — tests,
	// tools — that bypass the engine's commit protocol.
	TS int64

	// TxnOverlay, when set, maps a heap to the enclosing transaction's
	// buffered uncommitted writes so scans read the transaction's own
	// inserts/updates/deletes on top of the pinned snapshot (nil result =
	// no buffered writes for that heap). Nil outside explicit
	// transactions.
	TxnOverlay func(h *storage.Heap) *storage.HeapOverlay

	// BatchSize is the number of tuples moved per NextBatch call. 1 makes
	// the batch pipeline degenerate to tuple-at-a-time Volcano iteration
	// (the baseline of the BenchmarkBatchSize sweep).
	BatchSize int

	// Columnar enables the unboxed column-vector fast paths (EvalCol
	// kernels, columnar filter/join/recursion/aggregation). Off, every
	// operator runs the boxed row-major paths — the differential suites
	// compare the two end-to-end.
	Columnar bool

	// Depth guards runaway UDF recursion (PL/pgSQL calling itself).
	CallDepth    int
	MaxCallDepth int

	cteStores  []*storage.TupleStore
	cteWorking []*rowSet
	cteDefs    []Node
}

// NewCtx builds a context with engine defaults.
func NewCtx() *Ctx {
	return &Ctx{
		Rand:         NewRand(42),
		StorageStats: &storage.Stats{},
		WorkMem:      storage.DefaultWorkMem,
		MaxRecursion: 20_000_000,
		MaxCallDepth: 256,
		BatchSize:    DefaultBatchSize,
		Columnar:     true,
		TS:           storage.AllVisible,
	}
}

// overlayFor returns the enclosing transaction's buffered writes for h,
// or nil when reads should go straight to the heap snapshot.
func (c *Ctx) overlayFor(h *storage.Heap) *storage.HeapOverlay {
	if c.TxnOverlay == nil {
		return nil
	}
	return c.TxnOverlay(h)
}

func (c *Ctx) pushOuter(t storage.Tuple) { c.Outer = append(c.Outer, t) }
func (c *Ctx) popOuter()                 { c.Outer = c.Outer[:len(c.Outer)-1] }

func (c *Ctx) outerAt(depth int) (storage.Tuple, error) {
	i := len(c.Outer) - 1 - depth
	if i < 0 {
		return nil, fmt.Errorf("exec: outer reference depth %d exceeds stack size %d", depth, len(c.Outer))
	}
	return c.Outer[i], nil
}

// releaseStores closes all CTE stores (spill files) of this execution.
func (c *Ctx) releaseStores() {
	for i, s := range c.cteStores {
		if s != nil {
			s.Close()
			c.cteStores[i] = nil
		}
	}
}

// concatTuples concatenates join sides.
func concatTuples(a, b storage.Tuple) storage.Tuple {
	out := make(storage.Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// nullTuple returns a tuple of n NULLs.
func nullTuple(n int) storage.Tuple {
	t := make(storage.Tuple, n)
	for i := range t {
		t[i] = sqltypes.Null
	}
	return t
}

// tupleKey builds a hash-map key consistent with sqltypes.Identical for a
// subset of columns (nil cols = all).
func tupleKey(t storage.Tuple) string {
	return string(storage.EncodeTuple(normalizeForKey(t)))
}

// normalizeForKey maps numerically equal ints/floats (and -0.0/0.0) to one
// representation so grouping agrees with Identical.
func normalizeForKey(t storage.Tuple) storage.Tuple {
	out := make(storage.Tuple, len(t))
	for i, v := range t {
		out[i] = normalizeValueForKey(v)
	}
	return out
}

func normalizeValueForKey(v sqltypes.Value) sqltypes.Value {
	switch v.Kind() {
	case sqltypes.KindFloat:
		f := v.Float()
		if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e15 {
			return sqltypes.NewInt(int64(f))
		}
		return v
	case sqltypes.KindCoord:
		x, y := v.Coord()
		return sqltypes.NewRow([]sqltypes.Value{sqltypes.NewInt(x), sqltypes.NewInt(y)})
	case sqltypes.KindRow:
		fields := v.Row()
		norm := make([]sqltypes.Value, len(fields))
		for i, f := range fields {
			norm[i] = normalizeValueForKey(f)
		}
		return sqltypes.NewRow(norm)
	default:
		return v
	}
}

// ensure plan import is used even if future refactors drop direct uses.
var _ plan.Expr = (*plan.Const)(nil)

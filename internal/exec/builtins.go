package exec

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"plsqlaway/internal/sqltypes"
)

// builtinFn implements one scalar builtin.
type builtinFn func(ctx *Ctx, args []sqltypes.Value) (sqltypes.Value, error)

// nullOnNullArgs wraps strict functions (NULL in → NULL out).
func strict(fn builtinFn) builtinFn {
	return func(ctx *Ctx, args []sqltypes.Value) (sqltypes.Value, error) {
		for _, a := range args {
			if a.IsNull() {
				return sqltypes.Null, nil
			}
		}
		return fn(ctx, args)
	}
}

func wantNumeric(v sqltypes.Value) (float64, error) {
	if !v.IsNumeric() {
		return 0, fmt.Errorf("expected numeric argument, got %s", v.Kind())
	}
	return v.AsFloat(), nil
}

func wantInt(v sqltypes.Value) (int64, error) {
	switch v.Kind() {
	case sqltypes.KindInt:
		return v.Int(), nil
	case sqltypes.KindFloat:
		return int64(v.Float()), nil
	}
	return 0, fmt.Errorf("expected integer argument, got %s", v.Kind())
}

func wantText(v sqltypes.Value) (string, error) {
	if v.Kind() != sqltypes.KindText {
		return "", fmt.Errorf("expected text argument, got %s", v.Kind())
	}
	return v.Text(), nil
}

func numeric1(f func(float64) float64) builtinFn {
	return strict(func(_ *Ctx, args []sqltypes.Value) (sqltypes.Value, error) {
		x, err := wantNumeric(args[0])
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewFloat(f(x)), nil
	})
}

var builtins map[string]builtinFn

func init() {
	builtins = map[string]builtinFn{
		"abs": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			if a[0].Kind() == sqltypes.KindInt {
				v := a[0].Int()
				if v < 0 {
					v = -v
				}
				return sqltypes.NewInt(v), nil
			}
			x, err := wantNumeric(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewFloat(math.Abs(x)), nil
		}),
		"sign": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			x, err := wantNumeric(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			switch {
			case x > 0:
				return sqltypes.NewInt(1), nil
			case x < 0:
				return sqltypes.NewInt(-1), nil
			}
			return sqltypes.NewInt(0), nil
		}),
		"floor":   numeric1(math.Floor),
		"ceil":    numeric1(math.Ceil),
		"ceiling": numeric1(math.Ceil),
		"trunc":   numeric1(math.Trunc),
		"sqrt": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			x, err := wantNumeric(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			if x < 0 {
				return sqltypes.Null, fmt.Errorf("cannot take square root of a negative number")
			}
			return sqltypes.NewFloat(math.Sqrt(x)), nil
		}),
		"exp": numeric1(math.Exp),
		"ln": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			x, err := wantNumeric(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			if x <= 0 {
				return sqltypes.Null, fmt.Errorf("cannot take logarithm of a nonpositive number")
			}
			return sqltypes.NewFloat(math.Log(x)), nil
		}),
		"log": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			x, err := wantNumeric(a[len(a)-1])
			if err != nil {
				return sqltypes.Null, err
			}
			base := 10.0
			if len(a) == 2 {
				base, err = wantNumeric(a[0])
				if err != nil {
					return sqltypes.Null, err
				}
			}
			if x <= 0 || base <= 0 || base == 1 {
				return sqltypes.Null, fmt.Errorf("invalid logarithm arguments")
			}
			return sqltypes.NewFloat(math.Log(x) / math.Log(base)), nil
		}),
		"pi": func(_ *Ctx, _ []sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.NewFloat(math.Pi), nil
		},
		"round": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			x, err := wantNumeric(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			if len(a) == 1 {
				return sqltypes.NewFloat(math.Round(x)), nil
			}
			d, err := wantInt(a[1])
			if err != nil {
				return sqltypes.Null, err
			}
			scale := math.Pow(10, float64(d))
			return sqltypes.NewFloat(math.Round(x*scale) / scale), nil
		}),
		"power": powerFn,
		"pow":   powerFn,
		"mod": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.Mod(a[0], a[1])
		}),
		"random": func(ctx *Ctx, _ []sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.NewFloat(ctx.Rand.Float64()), nil
		},
		"setseed": strict(func(ctx *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			x, err := wantNumeric(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			ctx.Rand.Seed(math.Float64bits(x))
			return sqltypes.Null, nil
		}),

		"length":      textLen,
		"char_length": textLen,
		"lower":       text1(strings.ToLower),
		"upper":       text1(strings.ToUpper),
		"reverse": text1(func(s string) string {
			r := []rune(s)
			for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
				r[i], r[j] = r[j], r[i]
			}
			return string(r)
		}),
		"substr":    substrFn,
		"substring": substrFn,
		"left": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			s, err := wantText(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			n, err := wantInt(a[1])
			if err != nil {
				return sqltypes.Null, err
			}
			r := []rune(s)
			n = clampInt(n, 0, int64(len(r)))
			return sqltypes.NewText(string(r[:n])), nil
		}),
		"right": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			s, err := wantText(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			n, err := wantInt(a[1])
			if err != nil {
				return sqltypes.Null, err
			}
			r := []rune(s)
			n = clampInt(n, 0, int64(len(r)))
			return sqltypes.NewText(string(r[int64(len(r))-n:])), nil
		}),
		"strpos": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			s, err := wantText(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			sub, err := wantText(a[1])
			if err != nil {
				return sqltypes.Null, err
			}
			idx := strings.Index(s, sub)
			if idx < 0 {
				return sqltypes.NewInt(0), nil
			}
			return sqltypes.NewInt(int64(len([]rune(s[:idx])) + 1)), nil
		}),
		"replace": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			s, err := wantText(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			from, err := wantText(a[1])
			if err != nil {
				return sqltypes.Null, err
			}
			to, err := wantText(a[2])
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewText(strings.ReplaceAll(s, from, to)), nil
		}),
		"repeat": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			s, err := wantText(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			n, err := wantInt(a[1])
			if err != nil {
				return sqltypes.Null, err
			}
			if n < 0 {
				n = 0
			}
			return sqltypes.NewText(strings.Repeat(s, int(n))), nil
		}),
		"concat": func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			var sb strings.Builder
			for _, v := range a {
				if !v.IsNull() {
					sb.WriteString(v.String())
				}
			}
			return sqltypes.NewText(sb.String()), nil
		},
		"ascii": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			s, err := wantText(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			if s == "" {
				return sqltypes.NewInt(0), nil
			}
			return sqltypes.NewInt(int64([]rune(s)[0])), nil
		}),
		"chr": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			n, err := wantInt(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewText(string(rune(n))), nil
		}),
		"ltrim": trimFn(strings.TrimLeft),
		"rtrim": trimFn(strings.TrimRight),
		"btrim": trimFn(strings.Trim),
		"trim":  trimFn(strings.Trim),
		"md5hash": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			// A stand-in content hash (FNV-based) used by workloads that
			// need a deterministic scrambling function.
			s, err := wantText(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			h := fnv.New64a()
			h.Write([]byte(s))
			return sqltypes.NewText(fmt.Sprintf("%016x", h.Sum64())), nil
		}),

		"coalesce": func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			for _, v := range a {
				if !v.IsNull() {
					return v, nil
				}
			}
			return sqltypes.Null, nil
		},
		"nullif": func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			eq, _ := sqltypes.Equal(a[0], a[1])
			if eq {
				return sqltypes.Null, nil
			}
			return a[0], nil
		},
		"greatest": extremeFn(1),
		"least":    extremeFn(-1),

		"coord": strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
			x, err := wantInt(a[0])
			if err != nil {
				return sqltypes.Null, err
			}
			y, err := wantInt(a[1])
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewCoord(x, y), nil
		}),
		"coord_x": coordField(0),
		"coord_y": coordField(1),
	}
}

var powerFn = strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
	x, err := wantNumeric(a[0])
	if err != nil {
		return sqltypes.Null, err
	}
	y, err := wantNumeric(a[1])
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.NewFloat(math.Pow(x, y)), nil
})

var textLen = strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
	s, err := wantText(a[0])
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.NewInt(int64(len([]rune(s)))), nil
})

func text1(f func(string) string) builtinFn {
	return strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
		s, err := wantText(a[0])
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewText(f(s)), nil
	})
}

var substrFn = strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
	s, err := wantText(a[0])
	if err != nil {
		return sqltypes.Null, err
	}
	start, err := wantInt(a[1])
	if err != nil {
		return sqltypes.Null, err
	}
	r := []rune(s)
	// PostgreSQL semantics: 1-based start; negative/zero starts shift the
	// window.
	length := int64(len(r)) + 1 - start
	if len(a) == 3 {
		length, err = wantInt(a[2])
		if err != nil {
			return sqltypes.Null, err
		}
		if length < 0 {
			return sqltypes.Null, fmt.Errorf("negative substring length not allowed")
		}
	}
	end := start + length // exclusive, 1-based
	if start < 1 {
		start = 1
	}
	if end > int64(len(r))+1 {
		end = int64(len(r)) + 1
	}
	if end <= start {
		return sqltypes.NewText(""), nil
	}
	return sqltypes.NewText(string(r[start-1 : end-1])), nil
})

func trimFn(f func(string, string) string) builtinFn {
	return strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
		s, err := wantText(a[0])
		if err != nil {
			return sqltypes.Null, err
		}
		cut := " \t\n\r"
		if len(a) == 2 {
			cut, err = wantText(a[1])
			if err != nil {
				return sqltypes.Null, err
			}
		}
		return sqltypes.NewText(f(s, cut)), nil
	})
}

func extremeFn(dir int) builtinFn {
	return func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
		best := sqltypes.Null
		for _, v := range a {
			if v.IsNull() {
				continue
			}
			if best.IsNull() {
				best = v
				continue
			}
			c, err := sqltypes.Compare(v, best)
			if err != nil {
				return sqltypes.Null, err
			}
			if c*dir > 0 {
				best = v
			}
		}
		return best, nil
	}
}

func coordField(i int) builtinFn {
	return strict(func(_ *Ctx, a []sqltypes.Value) (sqltypes.Value, error) {
		if a[0].Kind() != sqltypes.KindCoord {
			return sqltypes.Null, fmt.Errorf("expected coord argument, got %s", a[0].Kind())
		}
		x, y := a[0].Coord()
		if i == 0 {
			return sqltypes.NewInt(x), nil
		}
		return sqltypes.NewInt(y), nil
	})
}

func clampInt(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package exec

import (
	"fmt"
	"sort"

	"plsqlaway/internal/plan"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// windowFnState is one instantiated window computation.
type windowFnState struct {
	fn          string
	arg         *ExprState
	star        bool
	partitionBy []*ExprState
	orderBy     []sortKeyState
	frame       *plan.FrameSpec
	startOff    *ExprState
	endOff      *ExprState
	offset      *ExprState // lag/lead
}

type windowNode struct {
	child Node
	funcs []*windowFnState
	out   []storage.Tuple
	idx   int
}

func instantiateWindow(x *plan.Window, ana *Analyzer) (Node, error) {
	child, err := instantiateNode(x.Child, ana)
	if err != nil {
		return nil, err
	}
	n := &windowNode{child: child}
	for i := range x.Funcs {
		wf := &x.Funcs[i]
		st := &windowFnState{fn: wf.Func, star: wf.Star, frame: wf.Frame}
		if wf.Arg != nil {
			st.arg, err = instantiateExpr(wf.Arg)
			if err != nil {
				return nil, err
			}
		}
		for _, p := range wf.PartitionBy {
			es, err := instantiateExpr(p)
			if err != nil {
				return nil, err
			}
			st.partitionBy = append(st.partitionBy, es)
		}
		st.orderBy, err = instantiateSortKeys(wf.OrderBy)
		if err != nil {
			return nil, err
		}
		if wf.Frame != nil {
			if wf.Frame.StartOff != nil {
				st.startOff, err = instantiateExpr(wf.Frame.StartOff)
				if err != nil {
					return nil, err
				}
			}
			if wf.Frame.EndOff != nil {
				st.endOff, err = instantiateExpr(wf.Frame.EndOff)
				if err != nil {
					return nil, err
				}
			}
		}
		if wf.Offset != nil {
			st.offset, err = instantiateExpr(wf.Offset)
			if err != nil {
				return nil, err
			}
		}
		n.funcs = append(n.funcs, st)
	}
	return n, nil
}

func (n *windowNode) Open(ctx *Ctx) error {
	n.out = nil
	n.idx = 0
	if err := n.child.Open(ctx); err != nil {
		return err
	}
	var rows []storage.Tuple
	b := NewBatch(ctx.BatchSize)
	if err := drainNode(ctx, n.child, b, func(t storage.Tuple) error {
		rows = append(rows, t)
		return nil
	}); err != nil {
		return err
	}
	if err := n.child.Close(ctx); err != nil {
		return err
	}

	// Compute each function's column, indexed by original row position.
	cols := make([][]sqltypes.Value, len(n.funcs))
	for fi, wf := range n.funcs {
		vals, err := wf.compute(ctx, rows)
		if err != nil {
			return err
		}
		cols[fi] = vals
	}
	for ri, r := range rows {
		out := make(storage.Tuple, 0, len(r)+len(n.funcs))
		out = append(out, r...)
		for fi := range n.funcs {
			out = append(out, cols[fi][ri])
		}
		n.out = append(n.out, out)
	}
	return nil
}

func (n *windowNode) Rescan(ctx *Ctx) error { return n.Open(ctx) }
func (n *windowNode) Close(ctx *Ctx) error  { return nil }
func (n *windowNode) NextBatch(ctx *Ctx, out *Batch) error {
	n.idx += copyChunk(out, n.out, n.idx)
	return nil
}

// compute evaluates the window function over all rows, returning one value
// per original row index. Partition and order keys are evaluated vectorized
// over the whole input before the per-partition passes.
func (wf *windowFnState) compute(ctx *Ctx, rows []storage.Tuple) ([]sqltypes.Value, error) {
	out := make([]sqltypes.Value, len(rows))

	// Evaluate partition and order keys as one column set so the impure
	// fallback of evalExprColumns preserves the row-major draw order
	// (partition keys before order keys, per row).
	keyExprs := make([]*ExprState, 0, len(wf.partitionBy)+len(wf.orderBy))
	keyExprs = append(keyExprs, wf.partitionBy...)
	for k := range wf.orderBy {
		keyExprs = append(keyExprs, wf.orderBy[k].expr)
	}
	keyCols := make([][]sqltypes.Value, len(keyExprs))
	if err := evalExprColumns(ctx, keyExprs, rows, keyCols); err != nil {
		return nil, err
	}
	pCols := keyCols[:len(wf.partitionBy)]
	oCols := keyCols[len(wf.partitionBy):]

	// Partition rows (keeping original indices).
	partitions := map[string][]partRow{}
	var order []string
	pkeys := make(storage.Tuple, len(wf.partitionBy))
	for i := range rows {
		for k := range wf.partitionBy {
			pkeys[k] = pCols[k][i]
		}
		key := tupleKey(pkeys)
		if _, ok := partitions[key]; !ok {
			order = append(order, key)
		}
		okeys := make([]sqltypes.Value, len(wf.orderBy))
		for k := range wf.orderBy {
			okeys[k] = oCols[k][i]
		}
		partitions[key] = append(partitions[key], partRow{idx: i, keys: okeys})
	}

	for _, pk := range order {
		part := partitions[pk]
		sort.SliceStable(part, func(a, b int) bool {
			for k := range wf.orderBy {
				c := compareKeyValues(part[a].keys[k], part[b].keys[k], wf.orderBy[k].desc)
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		if err := wf.computePartition(ctx, rows, part, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// partRow pairs a row's original index with its evaluated order keys.
type partRow struct {
	idx  int
	keys []sqltypes.Value
}

func (wf *windowFnState) computePartition(ctx *Ctx, rows []storage.Tuple, part []partRow, out []sqltypes.Value) error {
	peersEqual := func(a, b int) bool {
		for k := range wf.orderBy {
			if compareKeyValues(part[a].keys[k], part[b].keys[k], wf.orderBy[k].desc) != 0 {
				return false
			}
		}
		return true
	}

	switch wf.fn {
	case "row_number":
		for i := range part {
			out[part[i].idx] = sqltypes.NewInt(int64(i + 1))
		}
		return nil
	case "rank":
		rank := 1
		for i := range part {
			if i > 0 && !peersEqual(i, i-1) {
				rank = i + 1
			}
			out[part[i].idx] = sqltypes.NewInt(int64(rank))
		}
		return nil
	case "dense_rank":
		rank := 0
		for i := range part {
			if i == 0 || !peersEqual(i, i-1) {
				rank++
			}
			out[part[i].idx] = sqltypes.NewInt(int64(rank))
		}
		return nil
	case "lag", "lead":
		off := int64(1)
		if wf.offset != nil {
			v, err := wf.offset.Eval(ctx, nil)
			if err != nil {
				return err
			}
			if !v.IsNull() {
				off = v.Int()
			}
		}
		if wf.fn == "lag" {
			off = -off
		}
		for i := range part {
			j := int64(i) + off
			if j < 0 || j >= int64(len(part)) {
				out[part[i].idx] = sqltypes.Null
				continue
			}
			v, err := wf.arg.Eval(ctx, rows[part[j].idx])
			if err != nil {
				return err
			}
			out[part[i].idx] = v
		}
		return nil
	case "first_value", "last_value":
		for i := range part {
			lo, hi, err := wf.frameBounds(ctx, part, i, peersEqual)
			if err != nil {
				return err
			}
			if lo > hi {
				out[part[i].idx] = sqltypes.Null
				continue
			}
			j := lo
			if wf.fn == "last_value" {
				j = hi
			}
			v, err := wf.arg.Eval(ctx, rows[part[j].idx])
			if err != nil {
				return err
			}
			out[part[i].idx] = v
		}
		return nil
	}

	// Frame-based aggregate (sum/count/avg/min/max/bool_and/bool_or).
	for i := range part {
		lo, hi, err := wf.frameBounds(ctx, part, i, peersEqual)
		if err != nil {
			return err
		}
		st := newAggState(&aggSpecState{fn: wf.fn, arg: wf.arg, star: wf.star})
		for j := lo; j <= hi && j < len(part); j++ {
			if j < 0 {
				continue
			}
			if wf.frame != nil && wf.frame.ExcludeCurrent && j == i {
				continue
			}
			if err := st.accumulate(ctx, rows[part[j].idx]); err != nil {
				return err
			}
		}
		v, err := st.result(ctx, rows[part[i].idx])
		if err != nil {
			return err
		}
		out[part[i].idx] = v
	}
	return nil
}

// frameBounds resolves the frame of row i within the sorted partition as an
// inclusive index range.
func (wf *windowFnState) frameBounds(ctx *Ctx, part []partRow, i int, peersEqual func(a, b int) bool) (int, int, error) {
	last := len(part) - 1
	// Default frame: with ORDER BY, RANGE UNBOUNDED PRECEDING..CURRENT ROW
	// (including peers); without, the whole partition.
	if wf.frame == nil {
		if len(wf.orderBy) == 0 {
			return 0, last, nil
		}
		hi := i
		for hi < last && peersEqual(hi+1, i) {
			hi++
		}
		return 0, hi, nil
	}
	fr := wf.frame
	evalOff := func(es *ExprState) (int, error) {
		v, err := es.Eval(ctx, nil)
		if err != nil {
			return 0, err
		}
		iv, err := sqltypes.Cast(v, sqltypes.TypeInt)
		if err != nil {
			return 0, err
		}
		if iv.IsNull() || iv.Int() < 0 {
			return 0, fmt.Errorf("frame offset must be non-negative")
		}
		return int(iv.Int()), nil
	}
	bound := func(kind plan.FrameBoundKind, off *ExprState, isStart bool) (int, error) {
		switch kind {
		case plan.FrameUnboundedPreceding:
			return 0, nil
		case plan.FrameUnboundedFollowing:
			return last, nil
		case plan.FrameCurrentRow:
			if fr.Rows {
				return i, nil
			}
			// RANGE: current row extends over its peer group.
			if isStart {
				lo := i
				for lo > 0 && peersEqual(lo-1, i) {
					lo--
				}
				return lo, nil
			}
			hi := i
			for hi < last && peersEqual(hi+1, i) {
				hi++
			}
			return hi, nil
		case plan.FramePreceding:
			if !fr.Rows {
				return 0, fmt.Errorf("RANGE n PRECEDING is not supported")
			}
			n, err := evalOff(off)
			if err != nil {
				return 0, err
			}
			return i - n, nil
		case plan.FrameFollowing:
			if !fr.Rows {
				return 0, fmt.Errorf("RANGE n FOLLOWING is not supported")
			}
			n, err := evalOff(off)
			if err != nil {
				return 0, err
			}
			return i + n, nil
		}
		return 0, fmt.Errorf("bad frame bound")
	}
	lo, err := bound(fr.Start, wf.startOff, true)
	if err != nil {
		return 0, 0, err
	}
	hi, err := bound(fr.End, wf.endOff, false)
	if err != nil {
		return 0, 0, err
	}
	if lo < 0 {
		lo = 0
	}
	if hi > last {
		hi = last
	}
	return lo, hi, nil
}

package exec

import (
	"fmt"

	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// applyNode evaluates a correlated scalar subplan once per input row and
// appends its value as an extra column — the lowered form of a hoisted
// inlined-UDF body (plan.Apply). Semantics match a scalar subquery: zero
// rows yield NULL, two rows error. The subplan is opened once and Rescan
// between rows, so repeated probes (e.g. an IndexScan re-keyed off the
// outer row) skip per-row ExecutorStart work — the very overhead inlining
// exists to remove.
type applyNode struct {
	child Node
	sub   Node
	in    *Batch
	idx   int

	subIter   *rowIter
	subOpened bool
}

func (n *applyNode) Open(ctx *Ctx) error {
	if n.in == nil {
		n.in = NewBatch(ctx.BatchSize)
	}
	n.in.begin()
	n.idx = 0
	// Like a LATERAL right side, the sub may reference the outer row in
	// Open-time state (index probe keys), so its Open is deferred until a
	// row is on the outer stack.
	n.subOpened = false
	return n.child.Open(ctx)
}

func (n *applyNode) Rescan(ctx *Ctx) error {
	n.in.begin()
	n.idx = 0
	return n.child.Rescan(ctx)
}

func (n *applyNode) Close(ctx *Ctx) error {
	err := n.child.Close(ctx)
	if n.subOpened {
		if err2 := n.sub.Close(ctx); err == nil {
			err = err2
		}
		n.subOpened = false
	}
	return err
}

func (n *applyNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	for {
		if n.idx >= n.in.Len() {
			n.in.SetLimit(out.Cap())
			if err := n.child.NextBatch(ctx, n.in); err != nil {
				return err
			}
			n.idx = 0
			if n.in.Len() == 0 {
				return nil
			}
		}
		for n.idx < n.in.Len() {
			row := n.in.Row(n.idx)
			n.idx++
			v, err := n.evalSub(ctx, row)
			if err != nil {
				return err
			}
			out.Add(append(row[:len(row):len(row)], v))
			if out.Full() {
				return nil
			}
		}
	}
}

func (n *applyNode) evalSub(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	ctx.pushOuter(row)
	defer ctx.popOuter()
	if !n.subOpened {
		if err := n.sub.Open(ctx); err != nil {
			return sqltypes.Null, err
		}
		n.subOpened = true
		n.subIter = newRowIter(n.sub, 2)
	} else if err := n.sub.Rescan(ctx); err != nil {
		return sqltypes.Null, err
	}
	it := n.subIter
	it.reset()
	t, err := it.next(ctx)
	if err != nil {
		return sqltypes.Null, err
	}
	if t == nil {
		return sqltypes.Null, nil
	}
	extra, err := it.next(ctx)
	if err != nil {
		return sqltypes.Null, err
	}
	if extra != nil {
		return sqltypes.Null, fmt.Errorf("exec: more than one row returned by a subquery used as an expression")
	}
	return t[0], nil
}

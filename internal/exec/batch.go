package exec

import (
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// DefaultBatchSize is the number of tuples a pipeline moves per NextBatch
// call. The measured sweep (BenchmarkBatchSize, benchrunner -batchsize) is
// a flat ≈1.5× plateau from 64 to 1024 rows over tuple-at-a-time
// iteration: by 64 rows the per-call virtual dispatch and expression-tree
// walks have amortized away, and beyond ~1024 the working batches plus
// their scratch columns outgrow cache. 256 sits mid-plateau.
const DefaultBatchSize = 256

// Batch is a reusable container of tuples flowing between executor nodes.
// Its limit — distinct from the backing slice's capacity — is how consumers
// bound a producer: LIMIT sets it to the rows it still needs, subplan
// evaluation sets it to 1 or 2 so lazy semantics (EXISTS, IN, scalar
// cardinality checks) pull no more rows than the tuple-at-a-time executor
// did.
type Batch struct {
	rows  []storage.Tuple
	limit int
}

// NewBatch creates a batch bounded to limit rows per fill.
func NewBatch(limit int) *Batch {
	if limit < 1 {
		limit = 1
	}
	return &Batch{rows: make([]storage.Tuple, 0, limit), limit: limit}
}

// begin truncates the batch for refilling. Every NextBatch implementation
// calls it on entry, so producers always append into an empty batch.
func (b *Batch) begin() { b.rows = b.rows[:0] }

// Len reports the number of rows currently held.
func (b *Batch) Len() int { return len(b.rows) }

// Cap reports the fill limit.
func (b *Batch) Cap() int { return b.limit }

// Full reports whether the batch reached its fill limit.
func (b *Batch) Full() bool { return len(b.rows) >= b.limit }

// Add appends one row.
func (b *Batch) Add(t storage.Tuple) { b.rows = append(b.rows, t) }

// Append bulk-appends rows (the caller respects the limit).
func (b *Batch) Append(ts []storage.Tuple) { b.rows = append(b.rows, ts...) }

// Row returns row i.
func (b *Batch) Row(i int) storage.Tuple { return b.rows[i] }

// Rows exposes the held rows. The slice is invalidated by the next refill;
// consumers that retain rows must copy the headers out first.
func (b *Batch) Rows() []storage.Tuple { return b.rows }

// truncate keeps only the first n rows (post-compaction).
func (b *Batch) truncate(n int) { b.rows = b.rows[:n] }

// SetLimit adjusts the fill limit (clamped to ≥ 1) without reallocating.
func (b *Batch) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	b.limit = n
}

// growVals returns buf resized to hold n values, reallocating only when it
// must — the scratch-buffer idiom of the vectorized evaluator.
func growVals(buf []sqltypes.Value, n int) []sqltypes.Value {
	if cap(buf) < n {
		return make([]sqltypes.Value, n)
	}
	return buf[:n]
}

// rowIter adapts a batch-producing node back to tuple-at-a-time pulls for
// the consumers whose semantics are inherently lazy (subplan evaluation,
// the Executor facade's Next shim). The batch limit chosen at construction
// bounds over-read: a limit of 1 reproduces Volcano iteration exactly.
type rowIter struct {
	node Node
	b    *Batch
	idx  int
	eof  bool
}

func newRowIter(node Node, limit int) *rowIter {
	return &rowIter{node: node, b: NewBatch(limit)}
}

// reset rewinds the iterator for a fresh scan of its node.
func (it *rowIter) reset() {
	it.idx = 0
	it.eof = false
	it.b.begin()
}

// next returns the next row (nil at EOF), refilling from the node as
// needed.
func (it *rowIter) next(ctx *Ctx) (storage.Tuple, error) {
	for {
		if it.idx < it.b.Len() {
			t := it.b.Row(it.idx)
			it.idx++
			return t, nil
		}
		if it.eof {
			return nil, nil
		}
		if err := it.node.NextBatch(ctx, it.b); err != nil {
			return nil, err
		}
		it.idx = 0
		if it.b.Len() == 0 {
			it.eof = true
			return nil, nil
		}
	}
}

// drainNode pulls every remaining row of node through the shuttle batch b,
// handing each to fn — the batch-at-a-time replacement for the old
// `for { t := node.Next() }` drains in blocking operators.
func drainNode(ctx *Ctx, node Node, b *Batch, fn func(storage.Tuple) error) error {
	for {
		if err := node.NextBatch(ctx, b); err != nil {
			return err
		}
		if b.Len() == 0 {
			return nil
		}
		for _, t := range b.Rows() {
			if err := fn(t); err != nil {
				return err
			}
		}
	}
}

// allPure reports whether every expression is free of volatile builtins,
// subplans, and UDF calls.
func allPure(exprs []*ExprState) bool {
	for _, e := range exprs {
		if !e.pure {
			return false
		}
	}
	return true
}

// evalExprColumns evaluates exprs over rows into cols (one column per
// expression, sized here). When every expression is pure, each evaluates
// vectorized over the whole batch. Otherwise evaluation is row-major —
// every expression of row r, in plan order, before any expression of row
// r+1 — so within one operator the volatile draw order (`SELECT random(),
// random() …`) matches the tuple-at-a-time executor; column-major
// evaluation would transpose the random() stream across expressions.
// (Cross-stage draw order is handled by Instantiate, which runs volatile
// plans at batch size 1.)
func evalExprColumns(ctx *Ctx, exprs []*ExprState, rows []storage.Tuple, cols [][]sqltypes.Value) error {
	m := len(rows)
	for i := range exprs {
		cols[i] = growVals(cols[i], m)
	}
	if allPure(exprs) {
		for i, e := range exprs {
			if err := e.EvalBatch(ctx, rows, cols[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for r, row := range rows {
		for i, e := range exprs {
			v, err := e.Eval(ctx, row)
			if err != nil {
				return err
			}
			cols[i][r] = v
		}
	}
	return nil
}

// tupleSet is a NULL-aware set of tuples keyed consistently with tupleKey,
// with an allocation-free fast path for single-column integer tuples — the
// shape of the hot WITH RECURSIVE frontiers, whose per-row dedup otherwise
// pays one key-encoding allocation per tuple.
type tupleSet struct {
	ints map[int64]struct{}
	strs map[string]struct{}
}

func newTupleSet() *tupleSet { return &tupleSet{} }

// add inserts t and reports whether it was absent. The int fast path and
// the encoded path partition consistently: normalizeValueForKey maps every
// value that compares equal to an integer (floats with integral values,
// -0.0) onto the same int64, and everything else onto a distinct encoding.
func (s *tupleSet) add(t storage.Tuple) bool {
	if len(t) == 1 {
		v := normalizeValueForKey(t[0])
		if v.Kind() == sqltypes.KindInt {
			if s.ints == nil {
				s.ints = make(map[int64]struct{})
			}
			k := v.Int()
			if _, dup := s.ints[k]; dup {
				return false
			}
			s.ints[k] = struct{}{}
			return true
		}
	}
	if s.strs == nil {
		s.strs = make(map[string]struct{})
	}
	k := tupleKey(t)
	if _, dup := s.strs[k]; dup {
		return false
	}
	s.strs[k] = struct{}{}
	return true
}

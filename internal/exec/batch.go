package exec

import (
	"fmt"

	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// DefaultBatchSize is the number of tuples a pipeline moves per NextBatch
// call. The measured sweep (BenchmarkBatchSize, benchrunner -batchsize) is
// a flat ≈1.5× plateau from 64 to 1024 rows over tuple-at-a-time
// iteration: by 64 rows the per-call virtual dispatch and expression-tree
// walks have amortized away, and beyond ~1024 the working batches plus
// their scratch columns outgrow cache. 256 sits mid-plateau.
const DefaultBatchSize = 256

// Batch is a reusable container of tuples flowing between executor nodes.
// Its limit — distinct from the backing slice's capacity — is how consumers
// bound a producer: LIMIT sets it to the rows it still needs, subplan
// evaluation sets it to 1 or 2 so lazy semantics (EXISTS, IN, scalar
// cardinality checks) pull no more rows than the tuple-at-a-time executor
// did.
// A batch carries rows in one of two layouts: row-major ([]storage.Tuple,
// the layout of heap scans and every pre-columnar operator) or columnar
// (typed Column vectors set via SetCols — the layout of the hot kernels).
// Either side converts lazily: Rows() materializes a columnar batch into
// fresh row backing (so retained headers stay valid, per the contract
// below), and Col(i) transposes one column of a row-major batch into a
// cached typed lane.
type Batch struct {
	rows  []storage.Tuple
	limit int

	// columnar layout: cols are producer-owned views, valid until the
	// producer's next refill — exactly the lifetime of row-major rows.
	cols  []*Column
	colN  int
	colar bool

	// tcols/tdone cache per-column transposes of a row-major batch.
	tcols []Column
	tdone []bool

	// mrows caches the row materialization of a columnar batch. The header
	// slice is reused across refills but the value backing is freshly
	// allocated per batch: consumers are allowed to retain row headers.
	mrows []storage.Tuple
	mdone bool
}

// NewBatch creates a batch bounded to limit rows per fill.
func NewBatch(limit int) *Batch {
	if limit < 1 {
		limit = 1
	}
	return &Batch{rows: make([]storage.Tuple, 0, limit), limit: limit}
}

// begin truncates the batch for refilling. Every NextBatch implementation
// calls it on entry, so producers always append into an empty batch.
func (b *Batch) begin() {
	b.rows = b.rows[:0]
	b.colar = false
	b.cols = nil
	b.colN = 0
	b.tdone = b.tdone[:0]
	b.mrows = b.mrows[:0]
	b.mdone = false
}

// Len reports the number of rows currently held.
func (b *Batch) Len() int {
	if b.colar {
		return b.colN
	}
	return len(b.rows)
}

// Cap reports the fill limit.
func (b *Batch) Cap() int { return b.limit }

// Full reports whether the batch reached its fill limit.
func (b *Batch) Full() bool { return b.Len() >= b.limit }

// Add appends one row.
func (b *Batch) Add(t storage.Tuple) { b.rows = append(b.rows, t) }

// Append bulk-appends rows (the caller respects the limit).
func (b *Batch) Append(ts []storage.Tuple) { b.rows = append(b.rows, ts...) }

// Row returns row i.
func (b *Batch) Row(i int) storage.Tuple {
	if b.colar {
		return b.Rows()[i]
	}
	return b.rows[i]
}

// Rows exposes the held rows. The slice is invalidated by the next refill;
// consumers that retain rows must copy the headers out first (the headers
// stay valid: columnar batches materialize into fresh backing per batch).
func (b *Batch) Rows() []storage.Tuple {
	if !b.colar {
		return b.rows
	}
	if !b.mdone {
		w := len(b.cols)
		backing := make([]sqltypes.Value, b.colN*w)
		for r := 0; r < b.colN; r++ {
			t := backing[r*w : (r+1)*w : (r+1)*w]
			for c, col := range b.cols {
				t[c] = col.Value(r)
			}
			b.mrows = append(b.mrows, storage.Tuple(t))
		}
		b.mdone = true
	}
	return b.mrows
}

// SetCols switches the batch to columnar layout: n rows across cols. The
// columns are producer-owned views valid until the producer's next refill.
// Callers must have called begin() (directly or via a NextBatch entry)
// since the last fill.
func (b *Batch) SetCols(cols []*Column, n int) {
	b.colar = true
	b.cols = cols
	b.colN = n
}

// HasCols reports whether the batch currently holds columnar data.
func (b *Batch) HasCols() bool { return b.colar }

// NumCols reports the column count of a columnar batch.
func (b *Batch) NumCols() int { return len(b.cols) }

// Width reports the row width: column count when columnar, first-row width
// otherwise (0 for an empty batch).
func (b *Batch) Width() int {
	if b.colar {
		return len(b.cols)
	}
	if len(b.rows) > 0 {
		return len(b.rows[0])
	}
	return 0
}

// Col returns column i as a typed vector: a zero-copy view for columnar
// batches, a cached transpose for row-major ones. The error matches
// EvalBatch's out-of-range input error so the two paths diagnose broken
// plans identically.
func (b *Batch) Col(i int) (*Column, error) {
	if b.colar {
		if i >= len(b.cols) {
			return nil, fmt.Errorf("exec: input column %d out of range (row width %d)", i, len(b.cols))
		}
		return b.cols[i], nil
	}
	for len(b.tdone) <= i {
		b.tdone = append(b.tdone, false)
	}
	for len(b.tcols) <= i {
		b.tcols = append(b.tcols, Column{})
	}
	if !b.tdone[i] {
		for _, r := range b.rows {
			if i >= len(r) {
				return nil, fmt.Errorf("exec: input column %d out of range (row width %d)", i, len(r))
			}
		}
		transposeColumn(&b.tcols[i], b.rows, i)
		b.tdone[i] = true
	}
	return &b.tcols[i], nil
}

// truncate keeps only the first n rows (post-compaction; row-major fills
// compact their slice, columnar fills just clip the logical count).
func (b *Batch) truncate(n int) {
	if b.colar {
		b.colN = n
		if b.mdone {
			b.mrows = b.mrows[:n]
		}
		return
	}
	b.rows = b.rows[:n]
}

// SetLimit adjusts the fill limit (clamped to ≥ 1) without reallocating.
func (b *Batch) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	b.limit = n
}

// growVals returns buf resized to hold n values, reallocating only when it
// must — the scratch-buffer idiom of the vectorized evaluator.
func growVals(buf []sqltypes.Value, n int) []sqltypes.Value {
	if cap(buf) < n {
		return make([]sqltypes.Value, n)
	}
	return buf[:n]
}

// rowIter adapts a batch-producing node back to tuple-at-a-time pulls for
// the consumers whose semantics are inherently lazy (subplan evaluation,
// the Executor facade's Next shim). The batch limit chosen at construction
// bounds over-read: a limit of 1 reproduces Volcano iteration exactly.
type rowIter struct {
	node Node
	b    *Batch
	idx  int
	eof  bool
}

func newRowIter(node Node, limit int) *rowIter {
	return &rowIter{node: node, b: NewBatch(limit)}
}

// reset rewinds the iterator for a fresh scan of its node.
func (it *rowIter) reset() {
	it.idx = 0
	it.eof = false
	it.b.begin()
}

// next returns the next row (nil at EOF), refilling from the node as
// needed.
func (it *rowIter) next(ctx *Ctx) (storage.Tuple, error) {
	for {
		if it.idx < it.b.Len() {
			t := it.b.Row(it.idx)
			it.idx++
			return t, nil
		}
		if it.eof {
			return nil, nil
		}
		if err := it.node.NextBatch(ctx, it.b); err != nil {
			return nil, err
		}
		it.idx = 0
		if it.b.Len() == 0 {
			it.eof = true
			return nil, nil
		}
	}
}

// drainNode pulls every remaining row of node through the shuttle batch b,
// handing each to fn — the batch-at-a-time replacement for the old
// `for { t := node.Next() }` drains in blocking operators.
func drainNode(ctx *Ctx, node Node, b *Batch, fn func(storage.Tuple) error) error {
	for {
		if err := node.NextBatch(ctx, b); err != nil {
			return err
		}
		if b.Len() == 0 {
			return nil
		}
		for _, t := range b.Rows() {
			if err := fn(t); err != nil {
				return err
			}
		}
	}
}

// allPure reports whether every expression is free of volatile builtins,
// subplans, and UDF calls.
func allPure(exprs []*ExprState) bool {
	for _, e := range exprs {
		if !e.pure {
			return false
		}
	}
	return true
}

// evalExprColumns evaluates exprs over rows into cols (one column per
// expression, sized here). When every expression is pure, each evaluates
// vectorized over the whole batch. Otherwise evaluation is row-major —
// every expression of row r, in plan order, before any expression of row
// r+1 — so within one operator the volatile draw order (`SELECT random(),
// random() …`) matches the tuple-at-a-time executor; column-major
// evaluation would transpose the random() stream across expressions.
// (Cross-stage draw order is handled by Instantiate, which runs volatile
// plans at batch size 1.)
func evalExprColumns(ctx *Ctx, exprs []*ExprState, rows []storage.Tuple, cols [][]sqltypes.Value) error {
	m := len(rows)
	for i := range exprs {
		cols[i] = growVals(cols[i], m)
	}
	if allPure(exprs) {
		for i, e := range exprs {
			if err := e.EvalBatch(ctx, rows, cols[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for r, row := range rows {
		for i, e := range exprs {
			v, err := e.Eval(ctx, row)
			if err != nil {
				return err
			}
			cols[i][r] = v
		}
	}
	return nil
}

// tupleSet is a NULL-aware set of tuples keyed consistently with tupleKey,
// with an allocation-free fast path for single-column integer tuples — the
// shape of the hot WITH RECURSIVE frontiers, whose per-row dedup otherwise
// pays one key-encoding allocation per tuple.
type tupleSet struct {
	ints map[int64]struct{}
	strs map[string]struct{}
}

func newTupleSet() *tupleSet { return &tupleSet{} }

// add inserts t and reports whether it was absent. The int fast path and
// the encoded path partition consistently: normalizeValueForKey maps every
// value that compares equal to an integer (floats with integral values,
// -0.0) onto the same int64, and everything else onto a distinct encoding.
func (s *tupleSet) add(t storage.Tuple) bool {
	if len(t) == 1 {
		v := normalizeValueForKey(t[0])
		if v.Kind() == sqltypes.KindInt {
			if s.ints == nil {
				s.ints = make(map[int64]struct{})
			}
			k := v.Int()
			if _, dup := s.ints[k]; dup {
				return false
			}
			s.ints[k] = struct{}{}
			return true
		}
	}
	if s.strs == nil {
		s.strs = make(map[string]struct{})
	}
	k := tupleKey(t)
	if _, dup := s.strs[k]; dup {
		return false
	}
	s.strs[k] = struct{}{}
	return true
}

// addInt inserts a single-column integer row given its lane value and
// reports whether it was absent. It partitions identically to add:
// normalizeValueForKey maps every value comparing equal to an integer onto
// that int64, which is exactly the value an int lane carries.
func (s *tupleSet) addInt(v int64) bool {
	if s.ints == nil {
		s.ints = make(map[int64]struct{})
	}
	if _, dup := s.ints[v]; dup {
		return false
	}
	s.ints[v] = struct{}{}
	return true
}

package exec

import (
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// ColKind discriminates the physical layout of a Column. Typed lanes hold
// unboxed primitives — no per-value GC headers, no interface dispatch —
// which is where the columnar executor's speedup comes from: the hot
// arithmetic/comparison kernels run over []int64/[]float64 and the garbage
// collector never scans the recursion frontier.
type ColKind uint8

const (
	// ColNone marks an empty column whose kind is not yet decided (the
	// first appended value fixes it).
	ColNone ColKind = iota
	// ColAny is the boxed fallback lane: mixed-kind or composite values.
	ColAny
	ColInt
	ColFloat
	ColBool
	ColStr
	// ColNull is a column of only NULLs (a NULL constant broadcast, or an
	// all-NULL slice). It has no payload lane.
	ColNull
)

// Column is one typed vector of a columnar batch. Exactly one payload lane
// is populated, selected by Kind; Nulls (nil when the column has no NULLs)
// marks NULL rows, whose lane slots hold the zero value. ColAny columns
// carry NULL inside the boxed values themselves and keep Nulls nil.
type Column struct {
	Kind   ColKind
	Nulls  []bool
	Ints   []int64
	Floats []float64
	Bools  []bool
	Strs   []string
	Vals   []sqltypes.Value
}

// Len reports the column's row count.
func (c *Column) Len() int {
	switch c.Kind {
	case ColInt:
		return len(c.Ints)
	case ColFloat:
		return len(c.Floats)
	case ColBool:
		return len(c.Bools)
	case ColStr:
		return len(c.Strs)
	case ColAny:
		return len(c.Vals)
	case ColNull:
		return len(c.Nulls)
	}
	return 0
}

// reset empties the column for refilling, keeping lane capacity.
func (c *Column) reset() {
	c.Kind = ColNone
	c.Nulls = c.Nulls[:0]
	c.Ints = c.Ints[:0]
	c.Floats = c.Floats[:0]
	c.Bools = c.Bools[:0]
	c.Strs = c.Strs[:0]
	c.Vals = c.Vals[:0]
}

// null reports whether row i is NULL.
func (c *Column) null(i int) bool {
	if c.Kind == ColNull {
		return true
	}
	if c.Kind == ColAny {
		return c.Vals[i].IsNull()
	}
	return c.Nulls != nil && c.Nulls[i]
}

// Value boxes row i back into a sqltypes.Value — the row-major bridge.
func (c *Column) Value(i int) sqltypes.Value {
	switch c.Kind {
	case ColAny:
		return c.Vals[i]
	case ColNull:
		return sqltypes.Null
	}
	if c.Nulls != nil && c.Nulls[i] {
		return sqltypes.Null
	}
	switch c.Kind {
	case ColInt:
		return sqltypes.NewInt(c.Ints[i])
	case ColFloat:
		return sqltypes.NewFloat(c.Floats[i])
	case ColBool:
		return sqltypes.NewBool(c.Bools[i])
	case ColStr:
		return sqltypes.NewText(c.Strs[i])
	}
	return sqltypes.Null
}

// truth reports whether row i is boolean TRUE (SQL WHERE semantics: NULL
// and non-boolean values count as not true).
func (c *Column) truth(i int) bool {
	switch c.Kind {
	case ColBool:
		return (c.Nulls == nil || !c.Nulls[i]) && c.Bools[i]
	case ColAny:
		return c.Vals[i].IsTrue()
	}
	return false
}

// slice returns the [lo, hi) window of the column as a zero-copy view.
func (c *Column) slice(lo, hi int) Column {
	out := Column{Kind: c.Kind}
	if c.Nulls != nil {
		out.Nulls = c.Nulls[lo:hi]
	}
	switch c.Kind {
	case ColInt:
		out.Ints = c.Ints[lo:hi]
	case ColFloat:
		out.Floats = c.Floats[lo:hi]
	case ColBool:
		out.Bools = c.Bools[lo:hi]
	case ColStr:
		out.Strs = c.Strs[lo:hi]
	case ColAny:
		out.Vals = c.Vals[lo:hi]
	case ColNull:
		out.Nulls = c.Nulls[lo:hi]
	}
	return out
}

// setNulls ensures a nulls vector of length n exists (lazily materialized
// the first time a NULL shows up) and returns it.
func (c *Column) setNulls(n int) []bool {
	if c.Nulls == nil || len(c.Nulls) < n {
		nulls := c.Nulls
		if cap(nulls) < n {
			nulls = make([]bool, n)
		} else {
			nulls = nulls[:n]
			for i := range nulls {
				nulls[i] = false
			}
		}
		c.Nulls = nulls
	}
	return c.Nulls
}

// appendValue appends one boxed value, fixing the column kind on first
// append and demoting the whole column to ColAny on a kind mismatch.
func (c *Column) appendValue(v sqltypes.Value) {
	n := c.Len()
	if c.Kind == ColNone {
		switch v.Kind() {
		case sqltypes.KindNull:
			c.Kind = ColNull
		case sqltypes.KindInt:
			c.Kind = ColInt
		case sqltypes.KindFloat:
			c.Kind = ColFloat
		case sqltypes.KindBool:
			c.Kind = ColBool
		case sqltypes.KindText:
			c.Kind = ColStr
		default:
			c.Kind = ColAny
		}
	}
	switch c.Kind {
	case ColAny:
		c.Vals = append(c.Vals, v)
		return
	case ColNull:
		if v.IsNull() {
			c.Nulls = append(c.Nulls, true)
			return
		}
		// A typed value arrived after NULLs: promote to the value's lane,
		// keeping the accumulated NULL prefix (already marked in Nulls).
		prefix := len(c.Nulls)
		switch v.Kind() {
		case sqltypes.KindInt:
			c.Kind = ColInt
		case sqltypes.KindFloat:
			c.Kind = ColFloat
		case sqltypes.KindBool:
			c.Kind = ColBool
		case sqltypes.KindText:
			c.Kind = ColStr
		default:
			c.Kind = ColAny
			vals := c.Vals[:0]
			for i := 0; i < prefix; i++ {
				vals = append(vals, sqltypes.Null)
			}
			c.Vals = append(vals, v)
			c.Nulls = c.Nulls[:0]
			return
		}
		for i := 0; i < prefix; i++ {
			c.appendZero()
		}
		c.Nulls = append(c.Nulls, false)
		switch c.Kind {
		case ColInt:
			c.Ints = append(c.Ints, v.Int())
		case ColFloat:
			c.Floats = append(c.Floats, v.Float())
		case ColBool:
			c.Bools = append(c.Bools, v.Bool())
		case ColStr:
			c.Strs = append(c.Strs, v.Text())
		}
		return
	}
	if v.IsNull() {
		nulls := c.setNulls(n)
		c.Nulls = append(nulls, true)
		c.appendZero()
		return
	}
	ok := false
	switch c.Kind {
	case ColInt:
		if v.Kind() == sqltypes.KindInt {
			c.Ints = append(c.Ints, v.Int())
			ok = true
		}
	case ColFloat:
		if v.Kind() == sqltypes.KindFloat {
			c.Floats = append(c.Floats, v.Float())
			ok = true
		}
	case ColBool:
		if v.Kind() == sqltypes.KindBool {
			c.Bools = append(c.Bools, v.Bool())
			ok = true
		}
	case ColStr:
		if v.Kind() == sqltypes.KindText {
			c.Strs = append(c.Strs, v.Text())
			ok = true
		}
	}
	if ok {
		if c.Nulls != nil {
			c.Nulls = append(c.Nulls, false)
		}
		return
	}
	c.demoteToAny(n)
	c.Vals = append(c.Vals, v)
}

// appendZero appends the lane zero value (the slot under a NULL).
func (c *Column) appendZero() {
	switch c.Kind {
	case ColInt:
		c.Ints = append(c.Ints, 0)
	case ColFloat:
		c.Floats = append(c.Floats, 0)
	case ColBool:
		c.Bools = append(c.Bools, false)
	case ColStr:
		c.Strs = append(c.Strs, "")
	}
}

// demoteToAny reboxes the first n rows into the ColAny lane (kind-mismatch
// escape hatch; the batch keeps flowing, downstream kernels fall back).
func (c *Column) demoteToAny(n int) {
	vals := c.Vals[:0]
	for i := 0; i < n; i++ {
		vals = append(vals, c.Value(i))
	}
	c.Kind = ColAny
	c.Vals = vals
	c.Nulls = nil
	c.Ints = c.Ints[:0]
	c.Floats = c.Floats[:0]
	c.Bools = c.Bools[:0]
	c.Strs = c.Strs[:0]
}

// appendFrom appends rows sel (or all rows when sel is nil) of src —
// the columnar gather primitive shared by filters and set appends.
func (c *Column) appendFrom(src *Column, sel []int32) {
	if c.Kind == ColNone && c.Len() == 0 {
		c.Kind = src.Kind
	}
	if c.Kind != src.Kind {
		// Mixed kinds across appends: rebox everything.
		n := c.Len()
		if c.Kind != ColAny {
			c.demoteToAny(n)
		}
		if sel == nil {
			for i := 0; i < src.Len(); i++ {
				c.Vals = append(c.Vals, src.Value(i))
			}
		} else {
			for _, i := range sel {
				c.Vals = append(c.Vals, src.Value(int(i)))
			}
		}
		return
	}
	hadNulls := c.Nulls != nil
	n := c.Len()
	if sel == nil {
		switch c.Kind {
		case ColInt:
			c.Ints = append(c.Ints, src.Ints...)
		case ColFloat:
			c.Floats = append(c.Floats, src.Floats...)
		case ColBool:
			c.Bools = append(c.Bools, src.Bools...)
		case ColStr:
			c.Strs = append(c.Strs, src.Strs...)
		case ColAny:
			c.Vals = append(c.Vals, src.Vals...)
		case ColNull:
			c.Nulls = append(c.Nulls, src.Nulls...)
			return
		}
		m := src.Len()
		if src.Nulls != nil {
			nulls := c.Nulls
			if !hadNulls {
				nulls = c.setNulls(n)
			}
			c.Nulls = append(nulls, src.Nulls...)
		} else if hadNulls {
			for i := 0; i < m; i++ {
				c.Nulls = append(c.Nulls, false)
			}
		}
		return
	}
	switch c.Kind {
	case ColInt:
		for _, i := range sel {
			c.Ints = append(c.Ints, src.Ints[i])
		}
	case ColFloat:
		for _, i := range sel {
			c.Floats = append(c.Floats, src.Floats[i])
		}
	case ColBool:
		for _, i := range sel {
			c.Bools = append(c.Bools, src.Bools[i])
		}
	case ColStr:
		for _, i := range sel {
			c.Strs = append(c.Strs, src.Strs[i])
		}
	case ColAny:
		for _, i := range sel {
			c.Vals = append(c.Vals, src.Vals[i])
		}
	case ColNull:
		for range sel {
			c.Nulls = append(c.Nulls, true)
		}
		return
	}
	if src.Nulls != nil {
		nulls := c.Nulls
		if !hadNulls {
			nulls = c.setNulls(n)
		}
		for _, i := range sel {
			nulls = append(nulls, src.Nulls[i])
		}
		c.Nulls = nulls
	} else if hadNulls {
		for range sel {
			c.Nulls = append(c.Nulls, false)
		}
	}
}

// transposeColumn fills dst with column idx of rows, inferring the lane
// kind from the values: a monomorphic column lands in a typed lane, mixed
// or composite values fall back to ColAny. This is the row→column bridge at
// scan boundaries.
func transposeColumn(dst *Column, rows []storage.Tuple, idx int) {
	dst.reset()
	for _, r := range rows {
		if idx >= len(r) {
			dst.appendValue(sqltypes.Null)
			continue
		}
		dst.appendValue(r[idx])
	}
}

// fillConst broadcasts one scalar over n rows (constants and parameters in
// the columnar evaluator).
func (c *Column) fillConst(v sqltypes.Value, n int) {
	c.reset()
	switch v.Kind() {
	case sqltypes.KindNull:
		c.Kind = ColNull
		nulls := c.Nulls
		if cap(nulls) < n {
			nulls = make([]bool, n)
			for i := range nulls {
				nulls[i] = true
			}
		} else {
			nulls = nulls[:n]
			for i := range nulls {
				nulls[i] = true
			}
		}
		c.Nulls = nulls
	case sqltypes.KindInt:
		c.Kind = ColInt
		c.Ints = growInts(c.Ints, n)
		x := v.Int()
		for i := range c.Ints {
			c.Ints[i] = x
		}
	case sqltypes.KindFloat:
		c.Kind = ColFloat
		c.Floats = growFloats(c.Floats, n)
		x := v.Float()
		for i := range c.Floats {
			c.Floats[i] = x
		}
	case sqltypes.KindBool:
		c.Kind = ColBool
		c.Bools = growBools(c.Bools, n)
		x := v.Bool()
		for i := range c.Bools {
			c.Bools[i] = x
		}
	case sqltypes.KindText:
		c.Kind = ColStr
		c.Strs = growStrs(c.Strs, n)
		x := v.Text()
		for i := range c.Strs {
			c.Strs[i] = x
		}
	default:
		c.Kind = ColAny
		c.Vals = growVals(c.Vals, n)
		for i := range c.Vals {
			c.Vals[i] = v
		}
	}
}

func growInts(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func growStrs(buf []string, n int) []string {
	if cap(buf) < n {
		return make([]string, n)
	}
	return buf[:n]
}

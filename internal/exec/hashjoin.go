package exec

import (
	"fmt"
	"math"

	"plsqlaway/internal/plan"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// rowTable maps join-key values to build-side rows. Bucketing must be a
// SUPERSET of SQL equality — any pair sqltypes.Compare calls equal lands
// in the same bucket — because a missed pair is a silently lost row, while
// a spurious bucket-mate is rejected by the residual predicate (which
// always carries the original equality conjuncts). Compare treats mixed
// int/float operands as equal when their float64 images coincide and that
// relation is not transitive for |v| ≥ 2⁵³ (both 2⁵³ and 2⁵³+1 equal
// 2⁵³.0), so no exact partition exists: numeric keys hash by their
// canonical float64 image (-0 folded into +0, NaNs canonicalized), with
// single-column numeric keys taking an allocation-free map keyed by the
// raw bits. Everything else hashes its encoded form.
type rowTable struct {
	ints map[int64][]storage.Tuple
	strs map[string][]storage.Tuple
	size int

	// Exactness tracking: a bucket match can differ from Compare-equality
	// only when (a) an int component (bare or inside a coord) is |v| >=
	// 2^53, where distinct ints share one float64 image, or (b) KindRow
	// keys (whose images conflate shapes Compare errors on or
	// distinguishes; coords are always two ints, and cross-class probes
	// are rejected by colKinds before bucketing). When the build side has
	// neither, bucket-match is key equality, and a residual that consists
	// solely of the key equalities can be skipped outright.
	bigInt bool
	rowKey bool

	// colKinds tracks, per key column, the comparison classes present on
	// the build side (numerics are one class — mutually comparable — every
	// other kind its own); colRowWid tracks the widths of row-kind keys.
	// Probing with a key that sqltypes.Compare could not compare against
	// some build key raises the same error the nest-loop plan raised when
	// it reached such a pair, instead of silently reporting a non-match.
	colKinds  []uint16
	colRowWid []map[int]bool
}

func (t *rowTable) reset() {
	t.ints = nil
	t.strs = nil
	t.size = 0
	t.bigInt = false
	t.rowKey = false
	t.colKinds = nil
	t.colRowWid = nil
}

// keyClass buckets kinds into comparison classes: Compare accepts any
// numeric pair and same-kind pairs, and errors on everything else.
func keyClass(k sqltypes.Value) uint16 {
	switch k.Kind() {
	case sqltypes.KindInt, sqltypes.KindFloat:
		return 1
	case sqltypes.KindText:
		return 2
	case sqltypes.KindBool:
		return 4
	case sqltypes.KindCoord:
		return 8
	case sqltypes.KindRow:
		return 16
	}
	return 0
}

// exact reports that bucket membership implies key equality for any probe.
func (t *rowTable) exact() bool { return !t.bigInt && !t.rowKey }

const exactIntLimit = int64(1) << 53 // beyond this, int64s collide in float64

func (t *rowTable) noteKey(k sqltypes.Value) {
	switch k.Kind() {
	case sqltypes.KindInt:
		if v := k.Int(); v >= exactIntLimit || v <= -exactIntLimit {
			t.bigInt = true
		}
	case sqltypes.KindCoord:
		x, y := k.Coord()
		if x >= exactIntLimit || x <= -exactIntLimit || y >= exactIntLimit || y <= -exactIntLimit {
			t.bigInt = true
		}
	case sqltypes.KindRow:
		t.rowKey = true
	}
}

// numericHashBits returns the canonical float64 bit image of a numeric
// value — equal-per-Compare numerics always share it.
func numericHashBits(v sqltypes.Value) int64 {
	f := v.AsFloat()
	if f == 0 {
		f = 0 // fold -0.0 into +0.0 (Compare treats them as equal)
	} else if math.IsNaN(f) {
		f = math.NaN() // canonical NaN payload (Compare: NaN == NaN)
	}
	return int64(math.Float64bits(f))
}

// hashNormValue maps a key value onto its bucket representative: numerics
// collapse to their canonical float64 image, coords and rows recurse.
func hashNormValue(v sqltypes.Value) sqltypes.Value {
	switch v.Kind() {
	case sqltypes.KindInt, sqltypes.KindFloat:
		return sqltypes.NewFloat(math.Float64frombits(uint64(numericHashBits(v))))
	case sqltypes.KindCoord:
		x, y := v.Coord()
		return sqltypes.NewRow([]sqltypes.Value{hashNormValue(sqltypes.NewInt(x)), hashNormValue(sqltypes.NewInt(y))})
	case sqltypes.KindRow:
		fields := v.Row()
		norm := make([]sqltypes.Value, len(fields))
		for i, f := range fields {
			norm[i] = hashNormValue(f)
		}
		return sqltypes.NewRow(norm)
	default:
		return v
	}
}

// hashKeyString encodes a (possibly multi-column) key for the string map.
func hashKeyString(keys []sqltypes.Value) string {
	norm := make(storage.Tuple, len(keys))
	for i, k := range keys {
		norm[i] = hashNormValue(k)
	}
	return string(storage.EncodeTuple(norm))
}

// insert files row under keys. Rows with any NULL key component are
// skipped: SQL equality never matches NULL, and the residual predicate
// would reject the pair anyway, so dropping them at build time is both
// sound and cheaper.
func (t *rowTable) insert(keys []sqltypes.Value, row storage.Tuple) {
	for _, k := range keys {
		if k.IsNull() {
			return
		}
	}
	t.size++
	if t.colKinds == nil {
		t.colKinds = make([]uint16, len(keys))
		t.colRowWid = make([]map[int]bool, len(keys))
	}
	for i, k := range keys {
		t.noteKey(k)
		t.colKinds[i] |= keyClass(k)
		if k.Kind() == sqltypes.KindRow {
			if t.colRowWid[i] == nil {
				t.colRowWid[i] = map[int]bool{}
			}
			t.colRowWid[i][k.NumFields()] = true
		}
	}
	if len(keys) == 1 && keys[0].IsNumeric() {
		if t.ints == nil {
			t.ints = make(map[int64][]storage.Tuple)
		}
		k := numericHashBits(keys[0])
		t.ints[k] = append(t.ints[k], row)
		return
	}
	if t.strs == nil {
		t.strs = make(map[string][]storage.Tuple)
	}
	k := hashKeyString(keys)
	t.strs[k] = append(t.strs[k], row)
}

// probe returns the build rows filed under keys (nil for NULL keys). It
// errors when the build side holds a key this probe key could not be
// compared with — exactly the pairs the nest-loop plan errored on.
func (t *rowTable) probe(keys []sqltypes.Value) ([]storage.Tuple, error) {
	for _, k := range keys {
		if k.IsNull() {
			return nil, nil
		}
	}
	if t.colKinds != nil {
		for i, k := range keys {
			cls := keyClass(k)
			if t.colKinds[i]&^cls != 0 {
				return nil, fmt.Errorf("exec: cannot compare join key of kind %s with every build-side key", k.Kind())
			}
			if k.Kind() == sqltypes.KindRow && t.colRowWid[i] != nil {
				for w := range t.colRowWid[i] {
					if w != k.NumFields() {
						return nil, fmt.Errorf("exec: cannot compare join keys: rows of %d and %d fields", k.NumFields(), w)
					}
				}
			}
		}
	}
	if len(keys) == 1 && keys[0].IsNumeric() {
		if t.ints == nil {
			return nil, nil
		}
		return t.ints[numericHashBits(keys[0])], nil
	}
	if t.strs == nil {
		return nil, nil
	}
	return t.strs[hashKeyString(keys)], nil
}

// hashJoinNode executes an equi-join by hashing the right (build) side once
// and probing it with left batches — the batch executor's replacement for
// the O(left × right) nest-loop rescan. The headline beneficiary is the
// working-table probe inside recursiveUnionNode: with a static build side
// the hash table survives every Rescan of the recursive term, turning the
// per-iteration join from O(working × build) into O(working) probes.
//
// Hashing is purely an accelerator: the residual carries the original
// equality conjuncts, so NULL keys and cross-type comparisons behave
// exactly as the nest-loop plan did. Pure residuals on inner joins
// evaluate vectorized over gathered batches (and are skipped wholesale
// when the bucket is provably exact — see rowTable); left joins and
// impure residuals check per candidate.
type hashJoinNode struct {
	left, right Node
	kind        plan.JoinKind
	leftKeys    []*ExprState
	rightKeys   []*ExprState
	residual    *ExprState
	rightWidth  int
	rightStatic bool
	single      bool // decorrelated scalar subplan: >1 match per left row errors

	stats *NodeStats // EXPLAIN ANALYZE build-side row count; nil otherwise

	table       rowTable
	built       bool
	rightOpened bool

	in         *Batch // left rows
	inIdx      int
	leftEOF    bool
	keyCols    [][]sqltypes.Value // leftKeys evaluated over the current left batch
	keysEvaled bool               // keyCols valid for the current left batch

	keyRow []sqltypes.Value // per-row probe key scratch

	cand    []storage.Tuple // build candidates for the current left row
	candIdx int
	curLeft storage.Tuple
	haveCur bool
	matched bool

	// Columnar probe state (gatherColumnar). The columnar and boxed paths
	// share n.in/n.inIdx/n.leftEOF, so either can pick up a left batch the
	// other started — but each keeps its own mid-row resume state and only
	// hands off at row boundaries.
	keyCol     *Column   // probe-key lane of the current left batch
	leftSrc    []*Column // left columns of the current left batch
	colKeyed   bool
	colCand    []storage.Tuple
	colCandIdx int
	colLeftIdx int
	colHaveCur bool
	outCols    []Column
	outPtrs    []*Column
	selOne     [1]int32

	// slab is the output-row arena: joined rows of one batch slice off a
	// single allocation instead of paying one make per pair. A slot only
	// advances when the residual accepts the pair, so rejected candidates
	// reuse it. Slabs are never recycled — emitted rows own their slices —
	// unless reuse is set (the fused project wrapper owns the output and
	// never lets a combined row escape the current batch), in which case
	// one arena is recycled across every NextBatch call.
	slab  []sqltypes.Value
	reuse bool
	arena []sqltypes.Value

	residualAllKeys bool             // residual is exactly the key equalities
	resBuf          []sqltypes.Value // deferred-residual scratch column
}

// hashJoinProjectNode fuses a projection into the hash join below it. The
// combined rows of the join are pipeline-internal here — no consumer ever
// retains them — so they live in one recycled arena: the joined row of the
// hot WITH RECURSIVE probe loop costs zero allocations, and the projection
// evaluates vectorized straight over the arena batch.
type hashJoinProjectNode struct {
	join  *hashJoinNode
	exprs []*ExprState
	mid   *Batch
	cols  [][]sqltypes.Value
	pcols []*Column
}

func (n *hashJoinProjectNode) Open(ctx *Ctx) error {
	if n.mid == nil {
		n.mid = NewBatch(ctx.BatchSize)
		n.cols = make([][]sqltypes.Value, len(n.exprs))
		n.pcols = make([]*Column, len(n.exprs))
	}
	return n.join.Open(ctx)
}

func (n *hashJoinProjectNode) Rescan(ctx *Ctx) error { return n.join.Rescan(ctx) }
func (n *hashJoinProjectNode) Close(ctx *Ctx) error  { return n.join.Close(ctx) }

func (n *hashJoinProjectNode) NextBatch(ctx *Ctx, out *Batch) error {
	out.begin()
	n.mid.SetLimit(out.Cap())
	if err := n.join.NextBatch(ctx, n.mid); err != nil {
		return err
	}
	if n.mid.Len() == 0 {
		return nil
	}
	if ctx.Columnar && n.mid.HasCols() && allColable(n.exprs) {
		ok, err := projectColumnarBatch(ctx, n.exprs, n.mid, n.pcols, out)
		if err != nil || ok {
			return err
		}
	}
	return projectColumns(ctx, n.exprs, n.mid.Rows(), n.cols, out)
}

// instantiateHashJoinProject builds the fused Project(HashJoin) node.
func instantiateHashJoinProject(p *plan.Project, hj *plan.HashJoin) (Node, error) {
	jn, err := instantiateHashJoin(hj, nil)
	if err != nil {
		return nil, err
	}
	join := jn.(*hashJoinNode)
	join.reuse = true
	exprs, err := instantiateAll(p.Exprs...)
	if err != nil {
		return nil, err
	}
	return &hashJoinProjectNode{join: join, exprs: exprs}, nil
}

func instantiateHashJoin(x *plan.HashJoin, ana *Analyzer) (Node, error) {
	l, err := instantiateNode(x.Left, ana)
	if err != nil {
		return nil, err
	}
	r, err := instantiateNode(x.Right, ana)
	if err != nil {
		return nil, err
	}
	n := &hashJoinNode{
		left: l, right: r,
		kind:            x.Kind,
		rightWidth:      x.Right.Width(),
		rightStatic:     x.RightStatic,
		single:          x.SingleRow,
		residualAllKeys: x.ResidualAllKeys,
	}
	n.leftKeys, err = instantiateAll(x.LeftKeys...)
	if err != nil {
		return nil, err
	}
	n.rightKeys, err = instantiateAll(x.RightKeys...)
	if err != nil {
		return nil, err
	}
	if x.Residual != nil {
		n.residual, err = instantiateExpr(x.Residual)
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

func (n *hashJoinNode) Open(ctx *Ctx) error {
	if n.in == nil {
		n.in = NewBatch(ctx.BatchSize)
		n.keyCols = make([][]sqltypes.Value, len(n.leftKeys))
		n.keyRow = make([]sqltypes.Value, len(n.leftKeys))
	}
	if err := n.left.Open(ctx); err != nil {
		return err
	}
	if !n.built || !n.rightStatic {
		if !n.rightOpened {
			if err := n.right.Open(ctx); err != nil {
				return err
			}
			n.rightOpened = true
		} else if err := n.right.Rescan(ctx); err != nil {
			return err
		}
		if err := n.build(ctx); err != nil {
			return err
		}
	}
	n.resetProbe()
	return nil
}

func (n *hashJoinNode) Rescan(ctx *Ctx) error {
	if err := n.left.Rescan(ctx); err != nil {
		return err
	}
	// A build side that reads CTE state (the recursive working table, or a
	// store rematerialized by an enclosing withNode) must rebuild; a static
	// one keeps its table across every rescan of the probe loop.
	if !n.rightStatic {
		if err := n.right.Rescan(ctx); err != nil {
			return err
		}
		if err := n.build(ctx); err != nil {
			return err
		}
	}
	n.resetProbe()
	return nil
}

func (n *hashJoinNode) resetProbe() {
	n.in.begin()
	n.inIdx = 0
	n.leftEOF = false
	n.haveCur = false
	n.keysEvaled = false
	n.colKeyed = false
	n.colHaveCur = false
}

func (n *hashJoinNode) Close(ctx *Ctx) error {
	err1 := n.left.Close(ctx)
	var err2 error
	if n.rightOpened {
		err2 = n.right.Close(ctx)
	}
	if err1 != nil {
		return err1
	}
	return err2
}

// build drains the right side and hashes every row on its key columns,
// evaluating the key expressions vectorized per batch.
func (n *hashJoinNode) build(ctx *Ctx) error {
	n.table.reset()
	n.built = false
	b := NewBatch(ctx.BatchSize)
	cols := make([][]sqltypes.Value, len(n.rightKeys))
	keyRow := make([]sqltypes.Value, len(n.rightKeys))
	for {
		if err := n.right.NextBatch(ctx, b); err != nil {
			return err
		}
		m := b.Len()
		if m == 0 {
			break
		}
		rows := b.Rows()
		for k, ke := range n.rightKeys {
			cols[k] = growVals(cols[k], m)
			if err := ke.EvalBatch(ctx, rows, cols[k]); err != nil {
				return err
			}
		}
		for i := 0; i < m; i++ {
			for k := range n.rightKeys {
				keyRow[k] = cols[k][i]
			}
			n.table.insert(keyRow, rows[i])
		}
		if n.stats != nil {
			n.stats.BuildRows += int64(m)
		}
	}
	n.built = true
	return nil
}

// combine writes left ++ right into the next slab slot without advancing
// it; commit (slab advance) happens only once the residual accepts.
func (n *hashJoinNode) combine(out *Batch, left, right storage.Tuple) storage.Tuple {
	w := len(left) + len(right)
	if len(n.slab) < w {
		need := (out.Cap() - out.Len()) * w
		if need < w {
			need = w
		}
		n.slab = make([]sqltypes.Value, need)
		if n.reuse {
			n.arena = n.slab
		}
	}
	t := n.slab[:w:w]
	copy(t, left)
	copy(t[len(left):], right)
	return storage.Tuple(t)
}

// NextBatch defers a pure residual on inner joins: hash-matched rows
// gather unfiltered into the batch, then the residual evaluates vectorized
// over the whole batch and survivors compact in place — the equality
// re-check costs one batched comparison column instead of one expression
// tree walk per candidate. Left joins (matched bookkeeping drives null
// extension) and impure residuals keep the per-candidate path.
func (n *hashJoinNode) NextBatch(ctx *Ctx, out *Batch) error {
	if n.canGatherColumnar(ctx) {
		handled, err := n.gatherColumnar(ctx, out)
		if err != nil {
			return err
		}
		if handled {
			return nil
		}
		// Not columnar-probeable right now (row-major left batch, non-lane
		// key, or the boxed path is mid-row): fall through — the boxed path
		// resumes from the shared batch cursor.
	}
	if n.residualAllKeys && n.table.exact() {
		// Bucket membership already decides the key equalities — for any
		// join kind: match, left-join null-extension, and the single-row
		// error all follow from the bucket alone.
		return n.gatherBatch(ctx, out, false)
	}
	if n.kind == plan.JoinInner && n.residual != nil && n.residual.pure {
		for {
			if err := n.gatherBatch(ctx, out, false); err != nil {
				return err
			}
			if out.Len() == 0 {
				return nil
			}
			if err := n.compactResidual(ctx, out); err != nil {
				return err
			}
			if out.Len() > 0 {
				return nil
			}
		}
	}
	return n.gatherBatch(ctx, out, true)
}

// compactResidual keeps only the rows of out whose residual holds.
func (n *hashJoinNode) compactResidual(ctx *Ctx, out *Batch) error {
	rows := out.Rows()
	n.resBuf = growVals(n.resBuf, len(rows))
	if err := n.residual.EvalBatch(ctx, rows, n.resBuf); err != nil {
		return err
	}
	kept := 0
	for i, v := range n.resBuf[:len(rows)] {
		if v.IsTrue() {
			rows[kept] = rows[i]
			kept++
		}
	}
	out.truncate(kept)
	return nil
}

func (n *hashJoinNode) gatherBatch(ctx *Ctx, out *Batch, applyResidual bool) error {
	out.begin()
	if n.reuse {
		n.slab = n.arena
	}
	for {
		// Emit pending candidates of the current left row.
		if n.haveCur {
			for n.candIdx < len(n.cand) {
				if out.Full() {
					return nil
				}
				rt := n.cand[n.candIdx]
				n.candIdx++
				combined := n.combine(out, n.curLeft, rt)
				if applyResidual && n.residual != nil {
					ok, err := n.residual.Eval(ctx, combined)
					if err != nil {
						return err
					}
					if !ok.IsTrue() {
						continue
					}
				}
				if n.single && n.matched {
					// Decorrelated scalar subplan: the subquery it replaced
					// would have raised this on its second row.
					return fmt.Errorf("exec: more than one row returned by a subquery used as an expression")
				}
				n.matched = true
				n.slab = n.slab[len(combined):]
				out.Add(combined)
			}
			if n.kind == plan.JoinLeft && !n.matched {
				if out.Full() {
					return nil
				}
				n.matched = true
				combined := n.combine(out, n.curLeft, nullTuple(n.rightWidth))
				n.slab = n.slab[len(combined):]
				out.Add(combined)
			}
			n.haveCur = false
			if out.Full() {
				// The last candidate filled the batch: stop before pulling
				// (and computing) more left rows — a LIMIT above may never
				// ask for them.
				return nil
			}
		}
		// Advance to the next left row, refilling (and batch-evaluating the
		// probe keys over) the left batch as needed.
		if n.inIdx >= n.in.Len() {
			if n.leftEOF {
				return nil
			}
			// Bound the pull by the consumer's cap so a LIMIT above never
			// makes the probe pipeline compute past the cut; under a
			// consumer bounded below the configured batch size (LIMIT,
			// subplan pulls) degrade to one left row at a time — one left
			// row can fan out to many matches, so even a cap-bounded batch
			// could compute left rows the cut never needs.
			lim := out.Cap()
			if lim > 1 && lim < ctx.BatchSize {
				lim = 1
			}
			n.in.SetLimit(lim)
			if err := n.left.NextBatch(ctx, n.in); err != nil {
				return err
			}
			n.inIdx = 0
			n.keysEvaled = false
			n.colKeyed = false
			if n.in.Len() == 0 {
				n.leftEOF = true
				return nil
			}
		}
		// Probe keys evaluate lazily per left batch: a batch the columnar
		// path started (and handed off mid-way) has its keys evaluated here,
		// once, on first boxed consumption.
		if !n.keysEvaled {
			rows := n.in.Rows()
			for k, ke := range n.leftKeys {
				n.keyCols[k] = growVals(n.keyCols[k], len(rows))
				if err := ke.EvalBatch(ctx, rows, n.keyCols[k]); err != nil {
					return err
				}
			}
			n.keysEvaled = true
		}
		i := n.inIdx
		n.inIdx++
		n.curLeft = n.in.Row(i)
		for k := range n.leftKeys {
			n.keyRow[k] = n.keyCols[k][i]
		}
		cand, err := n.table.probe(n.keyRow)
		if err != nil {
			return err
		}
		n.cand = cand
		n.candIdx = 0
		n.matched = false
		n.haveCur = true
	}
}

// canGatherColumnar reports the plan-shape half of the columnar probe's
// eligibility: an inner join on one key lane with no residual work left
// after the bucket match — either no residual at all, or a pure residual
// that is exactly the key equalities over a provably exact table. (Valid
// only after build; NextBatch runs post-Open.)
func (n *hashJoinNode) canGatherColumnar(ctx *Ctx) bool {
	if !ctx.Columnar || n.kind != plan.JoinInner || len(n.leftKeys) != 1 || !n.leftKeys[0].colable {
		return false
	}
	if n.residual == nil {
		return true
	}
	return n.residual.pure && n.residualAllKeys && n.table.exact()
}

// gatherColumnar probes the int map with unboxed key lanes and gathers
// matches into typed output columns: left columns gather per-pair from the
// (columnar) left batch, build-side values append from the stored tuples.
// The joined batch is emitted columnar — no combined row is ever
// materialized. Returns handled=false (out untouched) when the current left
// batch is not columnar-probeable; the boxed path picks the cursor up at
// the exact row this path stopped at.
func (n *hashJoinNode) gatherColumnar(ctx *Ctx, out *Batch) (bool, error) {
	if n.haveCur {
		return false, nil // boxed path is mid-row; let it finish
	}
	out.begin()
	emitted := 0
	prepared := false
	var leftW, w int
	prep := func() {
		leftW = n.in.NumCols()
		w = leftW + n.rightWidth
		if cap(n.outCols) < w {
			n.outCols = make([]Column, w)
			n.outPtrs = make([]*Column, w)
		}
		n.outCols = n.outCols[:w]
		n.outPtrs = n.outPtrs[:w]
		for c := 0; c < w; c++ {
			n.outCols[c].reset()
			n.outPtrs[c] = &n.outCols[c]
		}
		prepared = true
	}
	for {
		// Emit pending candidates of the current left row.
		if n.colHaveCur {
			if !prepared {
				prep()
			}
			for n.colCandIdx < len(n.colCand) {
				if emitted >= out.Cap() {
					out.SetCols(n.outPtrs, emitted)
					return true, nil
				}
				rt := n.colCand[n.colCandIdx]
				n.colCandIdx++
				n.selOne[0] = int32(n.colLeftIdx)
				for c := 0; c < leftW; c++ {
					n.outCols[c].appendFrom(n.leftSrc[c], n.selOne[:])
				}
				for c := 0; c < n.rightWidth; c++ {
					n.outCols[leftW+c].appendValue(rt[c])
				}
				emitted++
			}
			n.colHaveCur = false
			if emitted >= out.Cap() {
				// Stop before pulling (and computing) more left rows — a
				// LIMIT above may never ask for them.
				out.SetCols(n.outPtrs, emitted)
				return true, nil
			}
		}
		// Advance to the next left row, refilling as needed.
		if n.inIdx >= n.in.Len() {
			if n.leftEOF {
				if emitted > 0 {
					out.SetCols(n.outPtrs, emitted)
				}
				return true, nil
			}
			lim := out.Cap()
			if lim > 1 && lim < ctx.BatchSize {
				lim = 1
			}
			n.in.SetLimit(lim)
			if err := n.left.NextBatch(ctx, n.in); err != nil {
				return true, err
			}
			n.inIdx = 0
			n.keysEvaled = false
			n.colKeyed = false
			if n.in.Len() == 0 {
				n.leftEOF = true
				if emitted > 0 {
					out.SetCols(n.outPtrs, emitted)
				}
				return true, nil
			}
		}
		if !n.in.HasCols() {
			// Row-major left batch: hand it to the boxed path whole (or
			// flush what this path already gathered first).
			if emitted > 0 {
				out.SetCols(n.outPtrs, emitted)
				return true, nil
			}
			return false, nil
		}
		if !n.colKeyed {
			col, err := n.leftKeys[0].EvalCol(ctx, n.in)
			if err != nil {
				return true, err
			}
			if col == nil || (col.Kind != ColInt && col.Kind != ColFloat && col.Kind != ColNull) {
				if emitted > 0 {
					out.SetCols(n.outPtrs, emitted)
					return true, nil
				}
				return false, nil
			}
			n.keyCol = col
			n.leftSrc = n.leftSrc[:0]
			for c := 0; c < n.in.NumCols(); c++ {
				src, cerr := n.in.Col(c)
				if cerr != nil {
					return true, cerr
				}
				n.leftSrc = append(n.leftSrc, src)
			}
			n.colKeyed = true
		}
		// A numeric probe lane against any non-numeric build key raises the
		// same error rowTable.probe raises, on the first non-NULL probe row.
		mismatch := n.table.colKinds != nil && n.table.colKinds[0]&^1 != 0
		for n.inIdx < n.in.Len() {
			i := n.inIdx
			if n.keyCol.null(i) {
				n.inIdx++
				continue
			}
			if mismatch {
				kind := sqltypes.KindInt
				if n.keyCol.Kind == ColFloat {
					kind = sqltypes.KindFloat
				}
				return true, fmt.Errorf("exec: cannot compare join key of kind %s with every build-side key", kind)
			}
			var bits int64
			if n.keyCol.Kind == ColInt {
				bits = int64(math.Float64bits(float64(n.keyCol.Ints[i])))
			} else {
				f := n.keyCol.Floats[i]
				if f == 0 {
					f = 0
				} else if math.IsNaN(f) {
					f = math.NaN()
				}
				bits = int64(math.Float64bits(f))
			}
			n.inIdx++
			if n.table.ints == nil {
				continue
			}
			cand := n.table.ints[bits]
			if len(cand) == 0 {
				continue
			}
			n.colCand = cand
			n.colCandIdx = 0
			n.colLeftIdx = i
			n.colHaveCur = true
			break
		}
	}
}

package exec

import (
	"fmt"

	"plsqlaway/internal/catalog"
	"plsqlaway/internal/plan"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// exprKind discriminates instantiated expression nodes.
type exprKind uint8

const (
	kConst exprKind = iota
	kInput
	kOuter
	kParam
	kBin
	kUnary
	kIsNull
	kBetween
	kInList
	kCase
	kFunc
	kCast
	kRow
	kField
	kSubplan
	kUDF
)

// ExprState is an instantiated expression: the runtime twin of plan.Expr.
// Building this tree is part of ExecutorStart — exactly the per-call
// allocation work the paper's compilation removes from the hot loop.
type ExprState struct {
	kind exprKind

	val     sqltypes.Value // kConst
	idx     int            // kInput, kOuter, kField (positional), kParam (ordinal)
	depth   int            // kOuter
	op      string         // kBin, kUnary, kField (named field)
	kids    []*ExprState   // operands / args / CASE [operand?, cond1, res1, cond2, res2, …]
	elseK   *ExprState     // kCase
	hasOp   bool           // kCase has operand
	negate  bool           // kIsNull, kBetween, kInList, kSubplan
	builtin builtinFn      // kFunc
	name    string         // kFunc (diagnostics)
	typ     sqltypes.Type  // kCast

	sub     Node // kSubplan: instantiated subplan
	subMode plan.SubplanMode
	subCmp  *ExprState // kSubplan IN: left-hand value

	fn *catalog.Function // kUDF
}

// InstantiateExpr builds the runtime tree for a standalone compiled
// expression (the interpreter's fast path uses it directly).
func InstantiateExpr(e plan.Expr) (*ExprState, error) { return instantiateExpr(e) }

// instantiateExpr builds the runtime tree for e.
func instantiateExpr(e plan.Expr) (*ExprState, error) {
	switch x := e.(type) {
	case *plan.Const:
		return &ExprState{kind: kConst, val: x.Val}, nil
	case *plan.InputRef:
		return &ExprState{kind: kInput, idx: x.Idx}, nil
	case *plan.OuterRef:
		return &ExprState{kind: kOuter, idx: x.Idx, depth: x.Depth}, nil
	case *plan.ParamRef:
		return &ExprState{kind: kParam, idx: x.Ordinal}, nil
	case *plan.BinOp:
		l, err := instantiateExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := instantiateExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kBin, op: x.Op, kids: []*ExprState{l, r}}, nil
	case *plan.UnaryOp:
		k, err := instantiateExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kUnary, op: x.Op, kids: []*ExprState{k}}, nil
	case *plan.IsNullExpr:
		k, err := instantiateExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kIsNull, negate: x.Negate, kids: []*ExprState{k}}, nil
	case *plan.BetweenExpr:
		ks, err := instantiateAll(x.X, x.Lo, x.Hi)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kBetween, negate: x.Negate, kids: ks}, nil
	case *plan.InListExpr:
		ks, err := instantiateAll(append([]plan.Expr{x.X}, x.List...)...)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kInList, negate: x.Negate, kids: ks}, nil
	case *plan.CaseExpr:
		st := &ExprState{kind: kCase}
		if x.Operand != nil {
			op, err := instantiateExpr(x.Operand)
			if err != nil {
				return nil, err
			}
			st.kids = append(st.kids, op)
			st.hasOp = true
		}
		for _, w := range x.Whens {
			c, err := instantiateExpr(w.Cond)
			if err != nil {
				return nil, err
			}
			r, err := instantiateExpr(w.Result)
			if err != nil {
				return nil, err
			}
			st.kids = append(st.kids, c, r)
		}
		if x.Else != nil {
			e, err := instantiateExpr(x.Else)
			if err != nil {
				return nil, err
			}
			st.elseK = e
		}
		return st, nil
	case *plan.FuncExpr:
		ks, err := instantiateAll(x.Args...)
		if err != nil {
			return nil, err
		}
		fn, ok := builtins[x.Name]
		if !ok {
			return nil, fmt.Errorf("exec: builtin %q not implemented", x.Name)
		}
		return &ExprState{kind: kFunc, name: x.Name, builtin: fn, kids: ks}, nil
	case *plan.CastExpr:
		k, err := instantiateExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kCast, typ: x.Type, kids: []*ExprState{k}}, nil
	case *plan.RowCtor:
		ks, err := instantiateAll(x.Fields...)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kRow, kids: ks}, nil
	case *plan.FieldSel:
		k, err := instantiateExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kField, idx: x.Index, op: x.Name, kids: []*ExprState{k}}, nil
	case *plan.SubplanExpr:
		sub, err := instantiateNode(x.Plan)
		if err != nil {
			return nil, err
		}
		st := &ExprState{kind: kSubplan, sub: sub, subMode: x.Mode, negate: x.Negate}
		if x.CompareX != nil {
			cmp, err := instantiateExpr(x.CompareX)
			if err != nil {
				return nil, err
			}
			st.subCmp = cmp
		}
		return st, nil
	case *plan.UDFCallExpr:
		ks, err := instantiateAll(x.Args...)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kUDF, fn: x.Func, kids: ks}, nil
	default:
		return nil, fmt.Errorf("exec: cannot instantiate expression %T", e)
	}
}

func instantiateAll(es ...plan.Expr) ([]*ExprState, error) {
	out := make([]*ExprState, len(es))
	for i, e := range es {
		var err error
		out[i], err = instantiateExpr(e)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Eval evaluates the expression for the given input row.
func (es *ExprState) Eval(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	switch es.kind {
	case kConst:
		return es.val, nil
	case kInput:
		if es.idx >= len(row) {
			return sqltypes.Null, fmt.Errorf("exec: input column %d out of range (row width %d)", es.idx, len(row))
		}
		return row[es.idx], nil
	case kOuter:
		t, err := ctx.outerAt(es.depth)
		if err != nil {
			return sqltypes.Null, err
		}
		if es.idx >= len(t) {
			return sqltypes.Null, fmt.Errorf("exec: outer column %d out of range (row width %d)", es.idx, len(t))
		}
		return t[es.idx], nil
	case kParam:
		if es.idx < 1 || es.idx > len(ctx.Params) {
			return sqltypes.Null, fmt.Errorf("exec: no value for parameter $%d", es.idx)
		}
		return ctx.Params[es.idx-1], nil
	case kBin:
		return es.evalBinary(ctx, row)
	case kUnary:
		x, err := es.kids[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		if es.op == "NOT" {
			return sqltypes.Not(x)
		}
		return sqltypes.Neg(x)
	case kIsNull:
		x, err := es.kids[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(x.IsNull() != es.negate), nil
	case kBetween:
		x, err := es.kids[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		lo, err := es.kids[1].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		hi, err := es.kids[2].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		ge, err := sqltypes.CompareOp(">=", x, lo)
		if err != nil {
			return sqltypes.Null, err
		}
		le, err := sqltypes.CompareOp("<=", x, hi)
		if err != nil {
			return sqltypes.Null, err
		}
		res, err := sqltypes.And(ge, le)
		if err != nil || !es.negate {
			return res, err
		}
		return sqltypes.Not(res)
	case kInList:
		return es.evalInList(ctx, row)
	case kCase:
		return es.evalCase(ctx, row)
	case kFunc:
		args := make([]sqltypes.Value, len(es.kids))
		for i, k := range es.kids {
			var err error
			args[i], err = k.Eval(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
		}
		v, err := es.builtin(ctx, args)
		if err != nil {
			return sqltypes.Null, fmt.Errorf("%s: %w", es.name, err)
		}
		return v, nil
	case kCast:
		x, err := es.kids[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.Cast(x, es.typ)
	case kRow:
		fields := make([]sqltypes.Value, len(es.kids))
		for i, k := range es.kids {
			var err error
			fields[i], err = k.Eval(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
		}
		return sqltypes.NewRow(fields), nil
	case kField:
		x, err := es.kids[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		return fieldOf(x, es.idx, es.op)
	case kSubplan:
		return es.evalSubplan(ctx, row)
	case kUDF:
		args := make([]sqltypes.Value, len(es.kids))
		for i, k := range es.kids {
			var err error
			args[i], err = k.Eval(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
		}
		if ctx.CallFn == nil {
			return sqltypes.Null, fmt.Errorf("exec: no function-call hook installed for %s", es.fn.Name)
		}
		if ctx.CallDepth >= ctx.MaxCallDepth {
			return sqltypes.Null, fmt.Errorf("exec: call stack depth limit (%d) exceeded in %s", ctx.MaxCallDepth, es.fn.Name)
		}
		ctx.CallDepth++
		v, err := ctx.CallFn(es.fn, args)
		ctx.CallDepth--
		return v, err
	default:
		return sqltypes.Null, fmt.Errorf("exec: bad expression kind %d", es.kind)
	}
}

func (es *ExprState) evalBinary(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	// AND/OR could short-circuit; full evaluation keeps SQL's symmetric
	// semantics simple and our workloads cheap. Arithmetic and comparisons
	// evaluate both sides anyway.
	l, err := es.kids[0].Eval(ctx, row)
	if err != nil {
		return sqltypes.Null, err
	}
	// Short-circuit AND/OR on the left operand where three-valued logic
	// allows it (avoids needless subplan evaluation).
	switch es.op {
	case "AND":
		if l.Kind() == sqltypes.KindBool && !l.Bool() {
			return sqltypes.NewBool(false), nil
		}
	case "OR":
		if l.Kind() == sqltypes.KindBool && l.Bool() {
			return sqltypes.NewBool(true), nil
		}
	}
	r, err := es.kids[1].Eval(ctx, row)
	if err != nil {
		return sqltypes.Null, err
	}
	switch es.op {
	case "+":
		return sqltypes.Add(l, r)
	case "-":
		return sqltypes.Sub(l, r)
	case "*":
		return sqltypes.Mul(l, r)
	case "/":
		return sqltypes.Div(l, r)
	case "%":
		return sqltypes.Mod(l, r)
	case "||":
		return sqltypes.Concat(l, r)
	case "AND":
		return sqltypes.And(l, r)
	case "OR":
		return sqltypes.Or(l, r)
	default:
		return sqltypes.CompareOp(es.op, l, r)
	}
}

func (es *ExprState) evalInList(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	x, err := es.kids[0].Eval(ctx, row)
	if err != nil {
		return sqltypes.Null, err
	}
	anyNull := false
	for _, k := range es.kids[1:] {
		v, err := k.Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		eq, null := sqltypes.Equal(x, v)
		if null {
			anyNull = true
			continue
		}
		if eq {
			return sqltypes.NewBool(!es.negate), nil
		}
	}
	if anyNull {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(es.negate), nil
}

func (es *ExprState) evalCase(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	arms := es.kids
	var operand sqltypes.Value
	if es.hasOp {
		var err error
		operand, err = arms[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		arms = arms[1:]
	}
	for i := 0; i+1 < len(arms); i += 2 {
		cond, err := arms[i].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		var hit bool
		if es.hasOp {
			eq, _ := sqltypes.Equal(operand, cond)
			hit = eq
		} else {
			hit = cond.IsTrue()
		}
		if hit {
			return arms[i+1].Eval(ctx, row)
		}
	}
	if es.elseK != nil {
		return es.elseK.Eval(ctx, row)
	}
	return sqltypes.Null, nil
}

func (es *ExprState) evalSubplan(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	var cmp sqltypes.Value
	if es.subCmp != nil {
		var err error
		cmp, err = es.subCmp.Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
	}
	ctx.pushOuter(row)
	defer ctx.popOuter()
	if err := es.sub.Open(ctx); err != nil {
		return sqltypes.Null, err
	}
	defer es.sub.Close(ctx)

	switch es.subMode {
	case plan.SubplanScalar:
		t, err := es.sub.Next(ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		if t == nil {
			return sqltypes.Null, nil
		}
		extra, err := es.sub.Next(ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		if extra != nil {
			return sqltypes.Null, fmt.Errorf("exec: more than one row returned by a subquery used as an expression")
		}
		return t[0], nil
	case plan.SubplanExists:
		t, err := es.sub.Next(ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool((t != nil) != es.negate), nil
	case plan.SubplanIn:
		anyNull := false
		for {
			t, err := es.sub.Next(ctx)
			if err != nil {
				return sqltypes.Null, err
			}
			if t == nil {
				break
			}
			eq, null := sqltypes.Equal(cmp, t[0])
			if null {
				anyNull = true
				continue
			}
			if eq {
				return sqltypes.NewBool(!es.negate), nil
			}
		}
		if anyNull {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(es.negate), nil
	}
	return sqltypes.Null, fmt.Errorf("exec: bad subplan mode %d", es.subMode)
}

func fieldOf(x sqltypes.Value, idx int, name string) (sqltypes.Value, error) {
	if x.IsNull() {
		return sqltypes.Null, nil
	}
	if idx >= 0 {
		if x.NumFields() == 0 {
			return sqltypes.Null, fmt.Errorf("exec: field access on non-row value %s", x.Kind())
		}
		if idx >= x.NumFields() {
			return sqltypes.Null, fmt.Errorf("exec: field f%d out of range for %d-field row", idx+1, x.NumFields())
		}
		return x.Field(idx), nil
	}
	if x.Kind() != sqltypes.KindCoord {
		return sqltypes.Null, fmt.Errorf("exec: named field %q requires a coord value, got %s", name, x.Kind())
	}
	cx, cy := x.Coord()
	if name == "x" {
		return sqltypes.NewInt(cx), nil
	}
	return sqltypes.NewInt(cy), nil
}

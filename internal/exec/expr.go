package exec

import (
	"fmt"

	"plsqlaway/internal/catalog"
	"plsqlaway/internal/plan"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// exprKind discriminates instantiated expression nodes.
type exprKind uint8

const (
	kConst exprKind = iota
	kInput
	kOuter
	kParam
	kBin
	kUnary
	kIsNull
	kBetween
	kInList
	kCase
	kFunc
	kCast
	kRow
	kField
	kSubplan
	kUDF
)

// ExprState is an instantiated expression: the runtime twin of plan.Expr.
// Building this tree is part of ExecutorStart — exactly the per-call
// allocation work the paper's compilation removes from the hot loop.
type ExprState struct {
	kind exprKind

	val     sqltypes.Value // kConst
	idx     int            // kInput, kOuter, kField (positional), kParam (ordinal)
	depth   int            // kOuter
	op      string         // kBin, kUnary, kField (named field)
	bin     binCode        // kBin: precomputed operator dispatch code
	kids    []*ExprState   // operands / args / CASE [operand?, cond1, res1, cond2, res2, …]
	elseK   *ExprState     // kCase
	hasOp   bool           // kCase has operand
	negate  bool           // kIsNull, kBetween, kInList, kSubplan
	builtin builtinFn      // kFunc
	name    string         // kFunc (diagnostics)
	typ     sqltypes.Type  // kCast

	sub     Node // kSubplan: instantiated subplan
	subMode plan.SubplanMode
	subCmp  *ExprState // kSubplan IN: left-hand value
	subIter *rowIter   // kSubplan: reused pull adapter over sub

	fn *catalog.Function // kUDF

	// pure marks subtrees free of subplans, UDF calls, and volatile
	// builtins (random, setseed): exactly the expressions EvalBatch may
	// evaluate operator-at-a-time over a whole batch without changing
	// evaluation counts or the deterministic random() stream.
	pure bool

	// colable marks subtrees the columnar evaluator covers (EvalCol);
	// cres is its per-node result scratch column.
	colable bool
	cres    Column

	// bufs are per-operand scratch columns for batch evaluation, reused
	// across calls (an ExprState belongs to one executor instantiation and
	// is never evaluated reentrantly when pure).
	bufs [][]sqltypes.Value
	args []sqltypes.Value // kFunc: per-row argument scratch

	// selRows/selIdx are the selection-vector scratch of vectorized AND/OR:
	// the subset of rows whose right operand must actually be evaluated.
	selRows []storage.Tuple
	selIdx  []int
}

// InstantiateExpr builds the runtime tree for a standalone compiled
// expression (the interpreter's fast path uses it directly).
func InstantiateExpr(e plan.Expr) (*ExprState, error) { return instantiateExpr(e) }

// instantiateExpr builds the runtime tree for e and finalizes its purity
// flag (children are finalized first — construction is bottom-up).
func instantiateExpr(e plan.Expr) (*ExprState, error) {
	es, err := buildExpr(e)
	if err != nil {
		return nil, err
	}
	es.pure = es.computePure()
	es.colable = es.computeColable()
	return es, nil
}

func (es *ExprState) computePure() bool {
	switch es.kind {
	case kSubplan, kUDF:
		return false
	case kFunc:
		if es.name == "random" || es.name == "setseed" {
			return false
		}
	}
	for _, k := range es.kids {
		if !k.pure {
			return false
		}
	}
	if es.elseK != nil && !es.elseK.pure {
		return false
	}
	return true
}

// buildExpr constructs the runtime tree for e.
func buildExpr(e plan.Expr) (*ExprState, error) {
	switch x := e.(type) {
	case *plan.Const:
		return &ExprState{kind: kConst, val: x.Val}, nil
	case *plan.InputRef:
		return &ExprState{kind: kInput, idx: x.Idx}, nil
	case *plan.OuterRef:
		return &ExprState{kind: kOuter, idx: x.Idx, depth: x.Depth}, nil
	case *plan.ParamRef:
		return &ExprState{kind: kParam, idx: x.Ordinal}, nil
	case *plan.BinOp:
		l, err := instantiateExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := instantiateExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kBin, op: x.Op, bin: binCodeFor(x.Op), kids: []*ExprState{l, r}}, nil
	case *plan.UnaryOp:
		k, err := instantiateExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kUnary, op: x.Op, kids: []*ExprState{k}}, nil
	case *plan.IsNullExpr:
		k, err := instantiateExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kIsNull, negate: x.Negate, kids: []*ExprState{k}}, nil
	case *plan.BetweenExpr:
		ks, err := instantiateAll(x.X, x.Lo, x.Hi)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kBetween, negate: x.Negate, kids: ks}, nil
	case *plan.InListExpr:
		ks, err := instantiateAll(append([]plan.Expr{x.X}, x.List...)...)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kInList, negate: x.Negate, kids: ks}, nil
	case *plan.CaseExpr:
		st := &ExprState{kind: kCase}
		if x.Operand != nil {
			op, err := instantiateExpr(x.Operand)
			if err != nil {
				return nil, err
			}
			st.kids = append(st.kids, op)
			st.hasOp = true
		}
		for _, w := range x.Whens {
			c, err := instantiateExpr(w.Cond)
			if err != nil {
				return nil, err
			}
			r, err := instantiateExpr(w.Result)
			if err != nil {
				return nil, err
			}
			st.kids = append(st.kids, c, r)
		}
		if x.Else != nil {
			e, err := instantiateExpr(x.Else)
			if err != nil {
				return nil, err
			}
			st.elseK = e
		}
		return st, nil
	case *plan.FuncExpr:
		ks, err := instantiateAll(x.Args...)
		if err != nil {
			return nil, err
		}
		fn, ok := builtins[x.Name]
		if !ok {
			return nil, fmt.Errorf("exec: builtin %q not implemented", x.Name)
		}
		return &ExprState{kind: kFunc, name: x.Name, builtin: fn, kids: ks}, nil
	case *plan.CastExpr:
		k, err := instantiateExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kCast, typ: x.Type, kids: []*ExprState{k}}, nil
	case *plan.RowCtor:
		ks, err := instantiateAll(x.Fields...)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kRow, kids: ks}, nil
	case *plan.FieldSel:
		k, err := instantiateExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kField, idx: x.Index, op: x.Name, kids: []*ExprState{k}}, nil
	case *plan.SubplanExpr:
		sub, err := instantiateNode(x.Plan, nil)
		if err != nil {
			return nil, err
		}
		st := &ExprState{kind: kSubplan, sub: sub, subMode: x.Mode, negate: x.Negate}
		if x.CompareX != nil {
			cmp, err := instantiateExpr(x.CompareX)
			if err != nil {
				return nil, err
			}
			st.subCmp = cmp
		}
		return st, nil
	case *plan.UDFCallExpr:
		ks, err := instantiateAll(x.Args...)
		if err != nil {
			return nil, err
		}
		return &ExprState{kind: kUDF, fn: x.Func, kids: ks}, nil
	default:
		return nil, fmt.Errorf("exec: cannot instantiate expression %T", e)
	}
}

func instantiateAll(es ...plan.Expr) ([]*ExprState, error) {
	out := make([]*ExprState, len(es))
	for i, e := range es {
		var err error
		out[i], err = instantiateExpr(e)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Eval evaluates the expression for the given input row.
func (es *ExprState) Eval(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	switch es.kind {
	case kConst:
		return es.val, nil
	case kInput:
		if es.idx >= len(row) {
			return sqltypes.Null, fmt.Errorf("exec: input column %d out of range (row width %d)", es.idx, len(row))
		}
		return row[es.idx], nil
	case kOuter:
		t, err := ctx.outerAt(es.depth)
		if err != nil {
			return sqltypes.Null, err
		}
		if es.idx >= len(t) {
			return sqltypes.Null, fmt.Errorf("exec: outer column %d out of range (row width %d)", es.idx, len(t))
		}
		return t[es.idx], nil
	case kParam:
		if es.idx < 1 || es.idx > len(ctx.Params) {
			return sqltypes.Null, fmt.Errorf("exec: no value for parameter $%d", es.idx)
		}
		return ctx.Params[es.idx-1], nil
	case kBin:
		return es.evalBinary(ctx, row)
	case kUnary:
		x, err := es.kids[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		if es.op == "NOT" {
			return sqltypes.Not(x)
		}
		return sqltypes.Neg(x)
	case kIsNull:
		x, err := es.kids[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(x.IsNull() != es.negate), nil
	case kBetween:
		x, err := es.kids[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		lo, err := es.kids[1].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		hi, err := es.kids[2].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		ge, err := sqltypes.CompareOp(">=", x, lo)
		if err != nil {
			return sqltypes.Null, err
		}
		le, err := sqltypes.CompareOp("<=", x, hi)
		if err != nil {
			return sqltypes.Null, err
		}
		res, err := sqltypes.And(ge, le)
		if err != nil || !es.negate {
			return res, err
		}
		return sqltypes.Not(res)
	case kInList:
		return es.evalInList(ctx, row)
	case kCase:
		return es.evalCase(ctx, row)
	case kFunc:
		args := make([]sqltypes.Value, len(es.kids))
		for i, k := range es.kids {
			var err error
			args[i], err = k.Eval(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
		}
		v, err := es.builtin(ctx, args)
		if err != nil {
			return sqltypes.Null, fmt.Errorf("%s: %w", es.name, err)
		}
		return v, nil
	case kCast:
		x, err := es.kids[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.Cast(x, es.typ)
	case kRow:
		fields := make([]sqltypes.Value, len(es.kids))
		for i, k := range es.kids {
			var err error
			fields[i], err = k.Eval(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
		}
		return sqltypes.NewRow(fields), nil
	case kField:
		x, err := es.kids[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		return fieldOf(x, es.idx, es.op)
	case kSubplan:
		return es.evalSubplan(ctx, row)
	case kUDF:
		args := make([]sqltypes.Value, len(es.kids))
		for i, k := range es.kids {
			var err error
			args[i], err = k.Eval(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
		}
		if ctx.CallFn == nil {
			return sqltypes.Null, fmt.Errorf("exec: no function-call hook installed for %s", es.fn.Name)
		}
		if ctx.CallDepth >= ctx.MaxCallDepth {
			return sqltypes.Null, fmt.Errorf("exec: call stack depth limit (%d) exceeded in %s", ctx.MaxCallDepth, es.fn.Name)
		}
		ctx.CallDepth++
		v, err := ctx.CallFn(es.fn, args)
		ctx.CallDepth--
		return v, err
	default:
		return sqltypes.Null, fmt.Errorf("exec: bad expression kind %d", es.kind)
	}
}

func (es *ExprState) evalBinary(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	// AND/OR could short-circuit; full evaluation keeps SQL's symmetric
	// semantics simple and our workloads cheap. Arithmetic and comparisons
	// evaluate both sides anyway.
	l, err := es.kids[0].Eval(ctx, row)
	if err != nil {
		return sqltypes.Null, err
	}
	// Short-circuit AND/OR on the left operand where three-valued logic
	// allows it (avoids needless subplan evaluation).
	switch es.op {
	case "AND":
		if l.Kind() == sqltypes.KindBool && !l.Bool() {
			return sqltypes.NewBool(false), nil
		}
	case "OR":
		if l.Kind() == sqltypes.KindBool && l.Bool() {
			return sqltypes.NewBool(true), nil
		}
	}
	r, err := es.kids[1].Eval(ctx, row)
	if err != nil {
		return sqltypes.Null, err
	}
	return applyBin(es.bin, es.op, l, r)
}

// binCode is a binary operator's precomputed dispatch code: the per-call
// instantiation resolves the operator string once so the hot loop pays a
// jump table instead of string switches (applyBin used to re-parse the
// operator per row, and CompareOp a second time).
type binCode uint8

const (
	bcCmp binCode = iota // comparisons: =, <>, <, <=, >, >= (sub-coded by cmpLo/cmpHi)
	bcAdd
	bcSub
	bcMul
	bcDiv
	bcMod
	bcConcat
	bcAnd
	bcOr
	bcEq
	bcNe
	bcLt
	bcLe
	bcGt
	bcGe
)

func binCodeFor(op string) binCode {
	switch op {
	case "+":
		return bcAdd
	case "-":
		return bcSub
	case "*":
		return bcMul
	case "/":
		return bcDiv
	case "%":
		return bcMod
	case "||":
		return bcConcat
	case "AND":
		return bcAnd
	case "OR":
		return bcOr
	case "=":
		return bcEq
	case "<>", "!=":
		return bcNe
	case "<":
		return bcLt
	case "<=":
		return bcLe
	case ">":
		return bcGt
	case ">=":
		return bcGe
	}
	return bcCmp
}

// applyBin dispatches one binary operator application (shared by the
// row-at-a-time and batch evaluators). op is only consulted for the
// unknown-operator error path.
func applyBin(code binCode, op string, l, r sqltypes.Value) (sqltypes.Value, error) {
	switch code {
	case bcAdd:
		return sqltypes.Add(l, r)
	case bcSub:
		return sqltypes.Sub(l, r)
	case bcMul:
		return sqltypes.Mul(l, r)
	case bcDiv:
		return sqltypes.Div(l, r)
	case bcMod:
		return sqltypes.Mod(l, r)
	case bcConcat:
		return sqltypes.Concat(l, r)
	case bcAnd:
		return sqltypes.And(l, r)
	case bcOr:
		return sqltypes.Or(l, r)
	}
	if l.IsNull() || r.IsNull() {
		return sqltypes.Null, nil
	}
	c, err := sqltypes.Compare(l, r)
	if err != nil {
		return sqltypes.Null, err
	}
	switch code {
	case bcEq:
		return sqltypes.NewBool(c == 0), nil
	case bcNe:
		return sqltypes.NewBool(c != 0), nil
	case bcLt:
		return sqltypes.NewBool(c < 0), nil
	case bcLe:
		return sqltypes.NewBool(c <= 0), nil
	case bcGt:
		return sqltypes.NewBool(c > 0), nil
	case bcGe:
		return sqltypes.NewBool(c >= 0), nil
	}
	return sqltypes.CompareOp(op, l, r)
}

// evalLogicalBatch vectorizes AND/OR with a selection vector: the left
// operand evaluates over the whole batch, then the right operand evaluates
// only over the rows the row-at-a-time evaluator would have reached —
// exactly the rows evalBinary's short-circuit does not skip. Guard
// patterns (`y <> 0 AND x/y > 2`) therefore keep their protective laziness
// row for row while both operands still evaluate batch-at-a-time.
func (es *ExprState) evalLogicalBatch(ctx *Ctx, rows []storage.Tuple, out []sqltypes.Value) error {
	n := len(rows)
	l := es.buf(0, n)
	if err := es.kids[0].EvalBatch(ctx, rows, l); err != nil {
		return err
	}
	isAnd := es.op == "AND"
	es.selRows = es.selRows[:0]
	es.selIdx = es.selIdx[:0]
	for i := 0; i < n; i++ {
		v := l[i]
		// AND short-circuits on a false left, OR on a true left — the
		// short-circuit result is the left value itself.
		if v.Kind() == sqltypes.KindBool && v.Bool() != isAnd {
			out[i] = v
			continue
		}
		es.selRows = append(es.selRows, rows[i])
		es.selIdx = append(es.selIdx, i)
	}
	if len(es.selRows) == 0 {
		return nil
	}
	r := es.buf(1, len(es.selRows))
	if err := es.kids[1].EvalBatch(ctx, es.selRows, r); err != nil {
		return err
	}
	for j, i := range es.selIdx {
		var v sqltypes.Value
		var err error
		if isAnd {
			v, err = sqltypes.And(l[i], r[j])
		} else {
			v, err = sqltypes.Or(l[i], r[j])
		}
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// buf returns the i-th scratch column sized to n values.
func (es *ExprState) buf(i, n int) []sqltypes.Value {
	for len(es.bufs) <= i {
		es.bufs = append(es.bufs, nil)
	}
	es.bufs[i] = growVals(es.bufs[i], n)
	return es.bufs[i]
}

// evalRows is the row-at-a-time fallback of EvalBatch.
func (es *ExprState) evalRows(ctx *Ctx, rows []storage.Tuple, out []sqltypes.Value) error {
	for i, r := range rows {
		v, err := es.Eval(ctx, r)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// EvalBatch evaluates the expression once per row of the batch, writing
// into out (len(out) == len(rows)). Pure expressions evaluate
// operator-at-a-time: the tree dispatch, outer-row lookup, and parameter
// checks hoist out of the per-row loop, leaving only the value operations
// — the interpretation-overhead removal that makes batching pay. Impure or
// lazily evaluated forms (AND/OR short-circuits, CASE arms, IN lists,
// subplans, UDF calls) fall back to row-at-a-time Eval so evaluation
// counts and error behaviour match the tuple-at-a-time executor. (The
// deterministic random() stream is guaranteed one level up: Instantiate
// forces batch size 1 for any plan containing volatile expressions, since
// batching would otherwise interleave draws across pipeline stages
// differently than Volcano iteration.)
func (es *ExprState) EvalBatch(ctx *Ctx, rows []storage.Tuple, out []sqltypes.Value) error {
	if !es.pure {
		return es.evalRows(ctx, rows, out)
	}
	n := len(rows)
	switch es.kind {
	case kConst:
		for i := range out {
			out[i] = es.val
		}
	case kInput:
		for i, r := range rows {
			if es.idx >= len(r) {
				return fmt.Errorf("exec: input column %d out of range (row width %d)", es.idx, len(r))
			}
			out[i] = r[es.idx]
		}
	case kOuter:
		t, err := ctx.outerAt(es.depth)
		if err != nil {
			return err
		}
		if es.idx >= len(t) {
			return fmt.Errorf("exec: outer column %d out of range (row width %d)", es.idx, len(t))
		}
		v := t[es.idx]
		for i := range out {
			out[i] = v
		}
	case kParam:
		if es.idx < 1 || es.idx > len(ctx.Params) {
			return fmt.Errorf("exec: no value for parameter $%d", es.idx)
		}
		v := ctx.Params[es.idx-1]
		for i := range out {
			out[i] = v
		}
	case kBin:
		if es.op == "AND" || es.op == "OR" {
			return es.evalLogicalBatch(ctx, rows, out)
		}
		l, r := es.buf(0, n), es.buf(1, n)
		if err := es.kids[0].EvalBatch(ctx, rows, l); err != nil {
			return err
		}
		if err := es.kids[1].EvalBatch(ctx, rows, r); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			v, err := applyBin(es.bin, es.op, l[i], r[i])
			if err != nil {
				return err
			}
			out[i] = v
		}
	case kUnary:
		x := es.buf(0, n)
		if err := es.kids[0].EvalBatch(ctx, rows, x); err != nil {
			return err
		}
		neg := es.op != "NOT"
		for i := 0; i < n; i++ {
			var v sqltypes.Value
			var err error
			if neg {
				v, err = sqltypes.Neg(x[i])
			} else {
				v, err = sqltypes.Not(x[i])
			}
			if err != nil {
				return err
			}
			out[i] = v
		}
	case kIsNull:
		x := es.buf(0, n)
		if err := es.kids[0].EvalBatch(ctx, rows, x); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			out[i] = sqltypes.NewBool(x[i].IsNull() != es.negate)
		}
	case kBetween:
		x, lo, hi := es.buf(0, n), es.buf(1, n), es.buf(2, n)
		if err := es.kids[0].EvalBatch(ctx, rows, x); err != nil {
			return err
		}
		if err := es.kids[1].EvalBatch(ctx, rows, lo); err != nil {
			return err
		}
		if err := es.kids[2].EvalBatch(ctx, rows, hi); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			ge, err := sqltypes.CompareOp(">=", x[i], lo[i])
			if err != nil {
				return err
			}
			le, err := sqltypes.CompareOp("<=", x[i], hi[i])
			if err != nil {
				return err
			}
			res, err := sqltypes.And(ge, le)
			if err != nil {
				return err
			}
			if es.negate {
				res, err = sqltypes.Not(res)
				if err != nil {
					return err
				}
			}
			out[i] = res
		}
	case kCast:
		x := es.buf(0, n)
		if err := es.kids[0].EvalBatch(ctx, rows, x); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			v, err := sqltypes.Cast(x[i], es.typ)
			if err != nil {
				return err
			}
			out[i] = v
		}
	case kField:
		x := es.buf(0, n)
		if err := es.kids[0].EvalBatch(ctx, rows, x); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			v, err := fieldOf(x[i], es.idx, es.op)
			if err != nil {
				return err
			}
			out[i] = v
		}
	case kFunc:
		// Builtins take their arguments eagerly, so batch the operands and
		// assemble per-row argument vectors from the scratch columns.
		for k := range es.kids {
			if err := es.kids[k].EvalBatch(ctx, rows, es.buf(k, n)); err != nil {
				return err
			}
		}
		es.args = growVals(es.args, len(es.kids))
		for i := 0; i < n; i++ {
			for k := range es.kids {
				es.args[k] = es.bufs[k][i]
			}
			v, err := es.builtin(ctx, es.args)
			if err != nil {
				return fmt.Errorf("%s: %w", es.name, err)
			}
			out[i] = v
		}
	case kRow:
		for k := range es.kids {
			if err := es.kids[k].EvalBatch(ctx, rows, es.buf(k, n)); err != nil {
				return err
			}
		}
		for i := 0; i < n; i++ {
			fields := make([]sqltypes.Value, len(es.kids))
			for k := range es.kids {
				fields[k] = es.bufs[k][i]
			}
			out[i] = sqltypes.NewRow(fields)
		}
	default:
		// kCase and kInList evaluate their branches lazily; preserve that
		// row by row. (kSubplan/kUDF are impure and never reach here.)
		return es.evalRows(ctx, rows, out)
	}
	return nil
}

func (es *ExprState) evalInList(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	x, err := es.kids[0].Eval(ctx, row)
	if err != nil {
		return sqltypes.Null, err
	}
	anyNull := false
	for _, k := range es.kids[1:] {
		v, err := k.Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		eq, null := sqltypes.Equal(x, v)
		if null {
			anyNull = true
			continue
		}
		if eq {
			return sqltypes.NewBool(!es.negate), nil
		}
	}
	if anyNull {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(es.negate), nil
}

func (es *ExprState) evalCase(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	arms := es.kids
	var operand sqltypes.Value
	if es.hasOp {
		var err error
		operand, err = arms[0].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		arms = arms[1:]
	}
	for i := 0; i+1 < len(arms); i += 2 {
		cond, err := arms[i].Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		var hit bool
		if es.hasOp {
			eq, _ := sqltypes.Equal(operand, cond)
			hit = eq
		} else {
			hit = cond.IsTrue()
		}
		if hit {
			return arms[i+1].Eval(ctx, row)
		}
	}
	if es.elseK != nil {
		return es.elseK.Eval(ctx, row)
	}
	return sqltypes.Null, nil
}

func (es *ExprState) evalSubplan(ctx *Ctx, row storage.Tuple) (sqltypes.Value, error) {
	var cmp sqltypes.Value
	if es.subCmp != nil {
		var err error
		cmp, err = es.subCmp.Eval(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
	}
	ctx.pushOuter(row)
	defer ctx.popOuter()
	if err := es.sub.Open(ctx); err != nil {
		return sqltypes.Null, err
	}
	defer es.sub.Close(ctx)

	// The pull adapter's batch limit preserves lazy cardinality semantics:
	// scalar subqueries need at most two rows (value + "more than one"
	// check), EXISTS and IN pull one row at a time so a match stops the
	// subplan exactly where the tuple-at-a-time executor did.
	if es.subIter == nil {
		lim := 1
		if es.subMode == plan.SubplanScalar {
			lim = 2
		}
		es.subIter = newRowIter(es.sub, lim)
	}
	it := es.subIter
	it.reset()

	switch es.subMode {
	case plan.SubplanScalar:
		t, err := it.next(ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		if t == nil {
			return sqltypes.Null, nil
		}
		extra, err := it.next(ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		if extra != nil {
			return sqltypes.Null, fmt.Errorf("exec: more than one row returned by a subquery used as an expression")
		}
		return t[0], nil
	case plan.SubplanExists:
		t, err := it.next(ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool((t != nil) != es.negate), nil
	case plan.SubplanIn:
		anyNull := false
		for {
			t, err := it.next(ctx)
			if err != nil {
				return sqltypes.Null, err
			}
			if t == nil {
				break
			}
			eq, null := sqltypes.Equal(cmp, t[0])
			if null {
				anyNull = true
				continue
			}
			if eq {
				return sqltypes.NewBool(!es.negate), nil
			}
		}
		if anyNull {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(es.negate), nil
	}
	return sqltypes.Null, fmt.Errorf("exec: bad subplan mode %d", es.subMode)
}

func fieldOf(x sqltypes.Value, idx int, name string) (sqltypes.Value, error) {
	if x.IsNull() {
		return sqltypes.Null, nil
	}
	if idx >= 0 {
		if x.NumFields() == 0 {
			return sqltypes.Null, fmt.Errorf("exec: field access on non-row value %s", x.Kind())
		}
		if idx >= x.NumFields() {
			return sqltypes.Null, fmt.Errorf("exec: field f%d out of range for %d-field row", idx+1, x.NumFields())
		}
		return x.Field(idx), nil
	}
	if x.Kind() != sqltypes.KindCoord {
		return sqltypes.Null, fmt.Errorf("exec: named field %q requires a coord value, got %s", name, x.Kind())
	}
	cx, cy := x.Coord()
	if name == "x" {
		return sqltypes.NewInt(cx), nil
	}
	return sqltypes.NewInt(cy), nil
}

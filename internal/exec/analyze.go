package exec

import (
	"fmt"
	"time"

	"plsqlaway/internal/plan"
)

// NodeStats accumulates the per-operator actuals EXPLAIN ANALYZE renders.
// One instance per plan node, written single-threaded by the executor's
// pull loop — no atomics needed.
type NodeStats struct {
	Calls     int64         // NextBatch invocations, the EOF pull included
	Batches   int64         // batches that carried rows (EOF pulls excluded)
	Rows      int64         // rows emitted across all batches
	BuildRows int64         // hash-join build-side rows hashed (0 elsewhere)
	Time      time.Duration // cumulative wall time inside NextBatch, children included
}

// Analyzer correlates an instantiated node tree back to the plan tree it
// came from. Instantiation clones the plan before building nodes, so the
// cloned nodes' identities are stable keys for the whole execution; after
// the run, Lines renders the clone through plan.ExplainAnnotated with each
// node's actuals appended.
type Analyzer struct {
	plan  *plan.Plan
	stats map[plan.Node]*NodeStats
}

func newAnalyzer(pc *plan.Plan) *Analyzer {
	return &Analyzer{plan: pc, stats: make(map[plan.Node]*NodeStats)}
}

func (a *Analyzer) statsFor(p plan.Node) *NodeStats {
	st := a.stats[p]
	if st == nil {
		st = &NodeStats{}
		a.stats[p] = st
	}
	return st
}

// wrap interposes the timing shim over a freshly built node. Hash joins
// additionally get the stats handle pushed down so build() can report the
// rows it hashed (build happens inside the first NextBatch, invisible to
// the wrapper's own counters).
func (a *Analyzer) wrap(p plan.Node, n Node) Node {
	st := a.statsFor(p)
	if hj, ok := n.(*hashJoinNode); ok {
		hj.stats = st
	}
	return &analyzedNode{inner: n, st: st}
}

// Lines renders the executed plan tree with actuals. Call after the
// executor finished (or was shut down); stats survive Shutdown.
func (a *Analyzer) Lines() []string {
	return a.plan.ExplainAnnotated(a.annotate)
}

// annotate renders one node's suffix: rows out, batch count, build-side
// rows for hash joins, input rows for filters (survival rate = rows/in),
// and inclusive wall time last so goldens can regex it away.
func (a *Analyzer) annotate(p plan.Node) string {
	st := a.stats[p]
	if st == nil {
		return ""
	}
	if st.Calls == 0 {
		return "  (never executed)"
	}
	s := fmt.Sprintf("  (actual rows=%d batches=%d", st.Rows, st.Batches)
	if st.BuildRows > 0 {
		s += fmt.Sprintf(" build=%d", st.BuildRows)
	}
	if f, ok := p.(*plan.Filter); ok {
		if cst := a.stats[f.Child]; cst != nil {
			s += fmt.Sprintf(" in=%d", cst.Rows)
		}
	}
	return s + fmt.Sprintf(" time=%s)", st.Time.Round(time.Microsecond))
}

// analyzedNode is the per-node instrumentation shim: it times NextBatch
// inclusively (children pull inside the call, PostgreSQL-style) and counts
// batches and rows. It exists only under EXPLAIN ANALYZE — plain
// instantiation never allocates one, so the normal path pays nothing.
type analyzedNode struct {
	inner Node
	st    *NodeStats
}

func (n *analyzedNode) Open(ctx *Ctx) error   { return n.inner.Open(ctx) }
func (n *analyzedNode) Rescan(ctx *Ctx) error { return n.inner.Rescan(ctx) }
func (n *analyzedNode) Close(ctx *Ctx) error  { return n.inner.Close(ctx) }

func (n *analyzedNode) NextBatch(ctx *Ctx, out *Batch) error {
	start := time.Now()
	err := n.inner.NextBatch(ctx, out)
	n.st.Time += time.Since(start)
	n.st.Calls++
	if m := out.Len(); m > 0 {
		n.st.Batches++
		n.st.Rows += int64(m)
	}
	return err
}

// instantiateNode builds the runtime tree for a plan node, interposing the
// ANALYZE shim when an analyzer rides along (nil on the normal path).
func instantiateNode(p plan.Node, ana *Analyzer) (Node, error) {
	n, err := instantiateNodeRaw(p, ana)
	if err != nil || ana == nil {
		return n, err
	}
	return ana.wrap(p, n), nil
}

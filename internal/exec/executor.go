package exec

import (
	"plsqlaway/internal/plan"
	"plsqlaway/internal/storage"
)

// Executor is the instantiated runtime state of one plan — PostgreSQL's
// QueryDesc/EState. Creating it (Instantiate) plus Open is the engine's
// ExecutorStart; pulling rows is ExecutorRun; Shutdown is ExecutorEnd.
//
// The node tree underneath is batch-at-a-time (NextBatch); the facade
// offers both that interface (NextBatch/Run) and a tuple-at-a-time Next
// shim over an internal batch, so callers written against the Volcano
// contract — the interpreter, the engine's row loops, tests — need no
// changes.
type Executor struct {
	Plan *plan.Plan
	root Node
	ctx  *Ctx

	shim *rowIter // Next()'s pull adapter over the root
	buf  *Batch   // Run()'s shuttle batch
}

// Instantiate builds executor state from a (cached) plan. Like
// PostgreSQL's plan cache + ExecutorStart, it first deep-copies the plan
// tree (the cached original must stay pristine) and then allocates the
// executor-node tree — the per-call work the paper's Figure 3 profiles as
// f→Qi context-switch overhead.
func Instantiate(p *plan.Plan, ctx *Ctx) (*Executor, error) {
	e, _, err := instantiate(p, ctx, false)
	return e, err
}

// InstantiateAnalyzed is Instantiate with per-node instrumentation: every
// runtime node is wrapped in a timing/counting shim keyed back to the plan
// tree, and the returned Analyzer renders EXPLAIN ANALYZE lines after the
// run. Execution semantics are identical — same volatile clamp, same draw
// order — except the Project-over-HashJoin fusion is skipped so the node
// tree stays 1:1 with the rendered plan.
func InstantiateAnalyzed(p *plan.Plan, ctx *Ctx) (*Executor, *Analyzer, error) {
	return instantiate(p, ctx, true)
}

func instantiate(p *plan.Plan, ctx *Ctx, analyze bool) (*Executor, *Analyzer, error) {
	// Volatile plans (random(), setseed(), UDF calls) run tuple-at-a-time:
	// batch pipelines evaluate one stage over a whole batch before the next
	// stage runs, which would interleave volatile draws across stages
	// differently than Volcano iteration. Forcing batch size 1 makes the
	// deterministic random() stream exactly match the tuple-at-a-time
	// executor by construction; pure plans keep the configured batch size.
	if ctx.BatchSize > 1 && p.HasVolatile() {
		ctx.BatchSize = 1
	}
	pc := p.Clone()
	var ana *Analyzer
	if analyze {
		ana = newAnalyzer(pc)
	}
	root, err := instantiateNode(pc.Root, ana)
	if err != nil {
		return nil, nil, err
	}
	defs := make([]Node, len(pc.CTEs))
	for i, cte := range pc.CTEs {
		if cte.Plan == nil {
			continue
		}
		defs[i], err = instantiateNode(cte.Plan, ana)
		if err != nil {
			return nil, nil, err
		}
	}
	ctx.cteDefs = defs
	if len(ctx.cteStores) < len(p.CTEs) {
		ctx.cteStores = make([]*storage.TupleStore, len(p.CTEs))
		ctx.cteWorking = make([]*rowSet, len(p.CTEs))
	}
	return &Executor{
		Plan: p, root: root, ctx: ctx,
		shim: newRowIter(root, ctx.BatchSize),
		buf:  NewBatch(ctx.BatchSize),
	}, ana, nil
}

// Ctx exposes the execution context (the engine wires hooks through it).
func (e *Executor) Ctx() *Ctx { return e.ctx }

// Open prepares the plan for scanning.
func (e *Executor) Open() error {
	e.shim.reset()
	return e.root.Open(e.ctx)
}

// NextBatch fills out with the plan's next rows (empty at EOF).
func (e *Executor) NextBatch(out *Batch) error { return e.root.NextBatch(e.ctx, out) }

// Next pulls one row (nil at EOF) — the tuple-at-a-time shim over the
// batch pipeline.
func (e *Executor) Next() (storage.Tuple, error) { return e.shim.next(e.ctx) }

// Rescan resets the plan for re-execution with the same instantiation.
func (e *Executor) Rescan() error {
	e.shim.reset()
	return e.root.Rescan(e.ctx)
}

// Run opens the plan and pulls every row batch-at-a-time.
func (e *Executor) Run() ([]storage.Tuple, error) {
	if err := e.Open(); err != nil {
		return nil, err
	}
	var out []storage.Tuple
	for {
		if err := e.root.NextBatch(e.ctx, e.buf); err != nil {
			return out, err
		}
		if e.buf.Len() == 0 {
			return out, nil
		}
		out = append(out, e.buf.Rows()...)
	}
}

// Stream opens the plan and hands each non-empty batch to fn — the
// streaming twin of Run. The batch is valid only for the duration of the
// call (the next pull reuses it); fn copies out whatever it keeps. Rows
// never accumulate executor-side, so a wide scan's peak memory is one
// batch, not the result set.
func (e *Executor) Stream(fn func(*Batch) error) error {
	if err := e.Open(); err != nil {
		return err
	}
	for {
		if err := e.root.NextBatch(e.ctx, e.buf); err != nil {
			return err
		}
		if e.buf.Len() == 0 {
			return nil
		}
		if err := fn(e.buf); err != nil {
			return err
		}
	}
}

// Shutdown closes the node tree, releases CTE spill files, and tears down
// the executor state tree (ExecutorEnd: PostgreSQL frees the per-query
// memory context here — we walk the tree releasing references so the
// garbage collector can reclaim it immediately).
func (e *Executor) Shutdown() {
	e.root.Close(e.ctx)
	e.ctx.releaseStores()
	teardown(e.root)
	for _, d := range e.ctx.cteDefs {
		if d != nil {
			teardown(d)
		}
	}
	e.root = nil
	e.shim = nil
	e.buf = nil
	e.ctx.cteDefs = nil
}

// teardown recursively clears node state.
func teardown(n Node) {
	switch x := n.(type) {
	case *analyzedNode:
		teardown(x.inner)
		x.inner = nil
	case *filterNode:
		teardown(x.child)
		x.child, x.pred, x.in, x.sel = nil, nil, nil, nil
		x.fsel, x.fcols, x.fptrs = nil, nil, nil
	case *projectNode:
		teardown(x.child)
		x.child, x.exprs, x.in, x.cols = nil, nil, nil, nil
		x.pcols = nil
	case *nestLoopNode:
		teardown(x.left)
		teardown(x.right)
		x.left, x.right, x.on, x.curLeft, x.in, x.rin = nil, nil, nil, nil, nil, nil
	case *hashJoinNode:
		teardown(x.left)
		teardown(x.right)
		x.table.reset()
		x.left, x.right, x.residual, x.leftKeys, x.rightKeys = nil, nil, nil, nil, nil
		x.in, x.keyCols, x.keyRow, x.cand, x.curLeft = nil, nil, nil, nil, nil
		x.slab, x.arena = nil, nil
		x.keyCol, x.leftSrc, x.colCand, x.outCols, x.outPtrs = nil, nil, nil, nil, nil
	case *hashJoinProjectNode:
		teardown(x.join)
		x.join, x.exprs, x.mid, x.cols = nil, nil, nil, nil
		x.pcols = nil
	case *applyNode:
		teardown(x.child)
		teardown(x.sub)
		x.child, x.sub, x.in, x.subIter = nil, nil, nil, nil
	case *materializeNode:
		teardown(x.child)
		x.child, x.rows = nil, nil
	case *aggNode:
		teardown(x.child)
		x.child, x.out, x.groups, x.specs = nil, nil, nil, nil
		x.evalList, x.argPos, x.evalCols, x.argCols = nil, nil, nil, nil
	case *windowNode:
		teardown(x.child)
		x.child, x.out, x.funcs = nil, nil, nil
	case *sortNode:
		teardown(x.child)
		x.child, x.rows, x.keys, x.kexp, x.kcols = nil, nil, nil, nil, nil
	case *limitNode:
		teardown(x.child)
		x.child, x.limit, x.offset, x.in = nil, nil, nil, nil
	case *distinctNode:
		teardown(x.child)
		x.child, x.seen, x.in = nil, nil, nil
	case *appendNode:
		for i, c := range x.children {
			teardown(c)
			x.children[i] = nil
		}
	case *setOpNode:
		teardown(x.left)
		teardown(x.right)
		x.left, x.right, x.out = nil, nil, nil
	case *valuesNode:
		x.rows = nil
	case *recursiveUnionNode:
		teardown(x.nonRec)
		teardown(x.rec)
		x.nonRec, x.rec, x.batch, x.working, x.seen, x.shuttle = nil, nil, nil, nil, nil, nil
	case *withNode:
		teardown(x.child)
		x.child = nil
	case *seqScanNode:
		x.scan = nil
	case *indexScanNode:
		x.rows, x.hits, x.key = nil, nil, nil
	case *cteScanNode:
		x.iter, x.set, x.buf = nil, nil, nil
	case *resultNode:
		x.exprs = nil
	}
}

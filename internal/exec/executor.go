package exec

import (
	"plsqlaway/internal/plan"
	"plsqlaway/internal/storage"
)

// Executor is the instantiated runtime state of one plan — PostgreSQL's
// QueryDesc/EState. Creating it (Instantiate) plus Open is the engine's
// ExecutorStart; pulling rows is ExecutorRun; Shutdown is ExecutorEnd.
type Executor struct {
	Plan *plan.Plan
	root Node
	ctx  *Ctx
}

// Instantiate builds executor state from a (cached) plan. Like
// PostgreSQL's plan cache + ExecutorStart, it first deep-copies the plan
// tree (the cached original must stay pristine) and then allocates the
// executor-node tree — the per-call work the paper's Figure 3 profiles as
// f→Qi context-switch overhead.
func Instantiate(p *plan.Plan, ctx *Ctx) (*Executor, error) {
	pc := p.Clone()
	root, err := instantiateNode(pc.Root)
	if err != nil {
		return nil, err
	}
	defs := make([]Node, len(pc.CTEs))
	for i, cte := range pc.CTEs {
		if cte.Plan == nil {
			continue
		}
		defs[i], err = instantiateNode(cte.Plan)
		if err != nil {
			return nil, err
		}
	}
	ctx.cteDefs = defs
	if len(ctx.cteStores) < len(p.CTEs) {
		ctx.cteStores = make([]*storage.TupleStore, len(p.CTEs))
		ctx.cteWorking = make([][]storage.Tuple, len(p.CTEs))
	}
	return &Executor{Plan: p, root: root, ctx: ctx}, nil
}

// Ctx exposes the execution context (the engine wires hooks through it).
func (e *Executor) Ctx() *Ctx { return e.ctx }

// Open prepares the plan for scanning.
func (e *Executor) Open() error { return e.root.Open(e.ctx) }

// Next pulls one row (nil at EOF).
func (e *Executor) Next() (storage.Tuple, error) { return e.root.Next(e.ctx) }

// Rescan resets the plan for re-execution with the same instantiation.
func (e *Executor) Rescan() error { return e.root.Rescan(e.ctx) }

// Run opens the plan and pulls every row.
func (e *Executor) Run() ([]storage.Tuple, error) {
	if err := e.Open(); err != nil {
		return nil, err
	}
	var out []storage.Tuple
	for {
		t, err := e.Next()
		if err != nil {
			return out, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// Shutdown closes the node tree, releases CTE spill files, and tears down
// the executor state tree (ExecutorEnd: PostgreSQL frees the per-query
// memory context here — we walk the tree releasing references so the
// garbage collector can reclaim it immediately).
func (e *Executor) Shutdown() {
	e.root.Close(e.ctx)
	e.ctx.releaseStores()
	teardown(e.root)
	for _, d := range e.ctx.cteDefs {
		if d != nil {
			teardown(d)
		}
	}
	e.root = nil
	e.ctx.cteDefs = nil
}

// teardown recursively clears node state.
func teardown(n Node) {
	switch x := n.(type) {
	case *filterNode:
		teardown(x.child)
		x.child, x.pred = nil, nil
	case *projectNode:
		teardown(x.child)
		x.child, x.exprs = nil, nil
	case *nestLoopNode:
		teardown(x.left)
		teardown(x.right)
		x.left, x.right, x.on, x.leftRow = nil, nil, nil, nil
	case *materializeNode:
		teardown(x.child)
		x.child, x.rows = nil, nil
	case *aggNode:
		teardown(x.child)
		x.child, x.out, x.groups, x.specs = nil, nil, nil, nil
	case *windowNode:
		teardown(x.child)
		x.child, x.out, x.funcs = nil, nil, nil
	case *sortNode:
		teardown(x.child)
		x.child, x.rows, x.keys = nil, nil, nil
	case *limitNode:
		teardown(x.child)
		x.child, x.limit, x.offset = nil, nil, nil
	case *distinctNode:
		teardown(x.child)
		x.child, x.seen = nil, nil
	case *appendNode:
		for i, c := range x.children {
			teardown(c)
			x.children[i] = nil
		}
	case *setOpNode:
		teardown(x.left)
		teardown(x.right)
		x.left, x.right, x.out = nil, nil, nil
	case *valuesNode:
		x.rows = nil
	case *recursiveUnionNode:
		teardown(x.nonRec)
		teardown(x.rec)
		x.nonRec, x.rec, x.batch, x.working, x.seen = nil, nil, nil, nil, nil
	case *withNode:
		teardown(x.child)
		x.child = nil
	case *seqScanNode:
		x.rows = nil
	case *indexScanNode:
		x.rows, x.hits, x.key = nil, nil, nil
	case *cteScanNode:
		x.iter, x.rows = nil, nil
	case *resultNode:
		x.exprs = nil
	}
}

package udf

import (
	"strings"
	"testing"

	"plsqlaway/internal/anf"
	"plsqlaway/internal/cfg"
	"plsqlaway/internal/plparser"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqlparser"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/ssa"
)

const loopSrc = `CREATE FUNCTION f(n int, bias float) RETURNS int AS $$
DECLARE acc int = 0;
BEGIN
  WHILE n > 0 LOOP
    acc = acc + n;
    n = n - 1;
  END LOOP;
  RETURN acc;
END;
$$ LANGUAGE plpgsql`

func defFor(t *testing.T, src string, d Dialect) *Definition {
	t.Helper()
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := plparser.ParseFunction(stmt.(*sqlast.CreateFunction))
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ssa.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssa.Optimize(s); err != nil {
		t.Fatal(err)
	}
	p, err := anf.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Build(p, d)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

func TestUnionParamsHaveTypes(t *testing.T) {
	d := defFor(t, loopSrc, DialectPostgres)
	if len(d.UnionParams) == 0 {
		t.Fatal("no union params")
	}
	for _, p := range d.UnionParams {
		if p.Type.Kind == sqltypes.KindNull {
			t.Errorf("param %s has no type", p.Name)
		}
	}
	if d.StarName != "f_star" {
		t.Errorf("star name: %s", d.StarName)
	}
}

func TestLabelIndexCoversAllFuns(t *testing.T) {
	d := defFor(t, loopSrc, DialectPostgres)
	if len(d.Labels) != len(d.Prog.Funs) {
		t.Errorf("labels %d vs funs %d", len(d.Labels), len(d.Prog.Funs))
	}
	for i, l := range d.Labels {
		if d.LabelIndex[l] != i {
			t.Errorf("label %s index %d != %d", l, d.LabelIndex[l], i)
		}
	}
}

func TestIsRecursive(t *testing.T) {
	if !defFor(t, loopSrc, DialectPostgres).IsRecursive() {
		t.Error("loop function must be recursive")
	}
	straight := `CREATE FUNCTION g(x int) RETURNS int AS $$
BEGIN RETURN x * 2; END;
$$ LANGUAGE plpgsql`
	if defFor(t, straight, DialectPostgres).IsRecursive() {
		t.Error("straight-line function must not be recursive")
	}
}

func TestCreateStatementsParseAndShape(t *testing.T) {
	d := defFor(t, loopSrc, DialectPostgres)
	sql, err := d.SQL()
	if err != nil {
		t.Fatal(err)
	}
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		t.Fatalf("UDF SQL does not reparse: %v\n%s", err, sql)
	}
	if len(stmts) != 2 {
		t.Fatalf("want star + wrapper, got %d statements", len(stmts))
	}
	star := stmts[0].(*sqlast.CreateFunction)
	if star.Name != "f_star" || star.Params[0].Name != "fn" {
		t.Errorf("star: %+v", star)
	}
	wrapper := stmts[1].(*sqlast.CreateFunction)
	if wrapper.Name != "f" || len(wrapper.Params) != 2 {
		t.Errorf("wrapper: %+v", wrapper)
	}
	if !strings.Contains(star.Body, "f_star(") {
		t.Errorf("star body should contain recursive call:\n%s", star.Body)
	}
	if !strings.Contains(sql, "LEFT JOIN LATERAL") {
		t.Errorf("postgres dialect should chain lets with LATERAL:\n%s", sql)
	}
}

func TestSQLiteDialectLetChains(t *testing.T) {
	d := defFor(t, loopSrc, DialectSQLite)
	sql, err := d.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "LATERAL") {
		t.Errorf("sqlite dialect must not use LATERAL:\n%s", sql)
	}
	if _, err := sqlparser.ParseScript(sql); err != nil {
		t.Fatalf("sqlite UDF SQL does not reparse: %v", err)
	}
}

func TestUnionArgsPadWithNull(t *testing.T) {
	d := defFor(t, loopSrc, DialectPostgres)
	// Find a call whose target has fewer params than the union.
	for i := range d.Prog.Funs {
		var call *anf.Call
		walk(d.Prog.Funs[i].Body, func(tm anf.Term) {
			if c, ok := tm.(*anf.Call); ok && call == nil {
				call = c
			}
		})
		if call == nil {
			continue
		}
		args, err := d.UnionArgs(call)
		if err != nil {
			t.Fatal(err)
		}
		if len(args) != len(d.UnionParams) {
			t.Errorf("args %d != union %d", len(args), len(d.UnionParams))
		}
	}
}

func TestDialectString(t *testing.T) {
	if DialectPostgres.String() != "postgres" || DialectSQLite.String() != "sqlite" {
		t.Error("dialect names")
	}
}

// Package udf flattens an ANF program into a single tail-recursive SQL UDF
// — the paper's UDF step (Figure 7). Mutual recursion between the label
// functions is defunctionalized through an extra dispatch parameter fn
// (Reynolds-style), let·in chains become SELECTs chained with LEFT JOIN
// LATERAL (or nested derived tables in the SQLite dialect), and if·then·else
// becomes CASE WHEN.
package udf

import (
	"fmt"
	"strings"

	"plsqlaway/internal/anf"
	"plsqlaway/internal/plast"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqltypes"
)

// Dialect selects the SQL surface of emitted queries.
type Dialect uint8

// Dialects.
const (
	// DialectPostgres chains let bindings with LEFT JOIN LATERAL
	// (SQL:1999), as in the paper's Figure 7.
	DialectPostgres Dialect = iota
	// DialectSQLite avoids LATERAL entirely — the "simple syntactic
	// rewrite" of §3 that made the compiled functions run on a system with
	// no PL/SQL support at all: each binding becomes a nested derived
	// table projecting its predecessor.
	DialectSQLite
)

func (d Dialect) String() string {
	if d == DialectSQLite {
		return "sqlite"
	}
	return "postgres"
}

// Param is one UDF parameter.
type Param struct {
	Name string
	Type sqltypes.Type
}

// Definition is the defunctionalized UDF. The ANF program stays attached:
// both the printable UDF (Figure 7) and the WITH RECURSIVE body adaptation
// (Figure 9) are derived from it by re-encoding tail positions.
type Definition struct {
	Prog       *anf.Program
	FnName     string // original function name
	StarName   string // the recursive UDF's name (f_star)
	OrigParams []plast.Param
	ReturnType sqltypes.Type
	// UnionParams is the union of all label-function parameters (the
	// versions carried through recursion), in first-appearance order.
	UnionParams []Param
	// LabelIndex numbers the label functions for the fn dispatch.
	LabelIndex map[string]int
	Labels     []string
	Dialect    Dialect
	Warnings   []string

	aliasSeq int
}

// Build computes the defunctionalized layout for an ANF program.
func Build(p *anf.Program, dialect Dialect) (*Definition, error) {
	d := &Definition{
		Prog:       p,
		FnName:     p.FnName,
		StarName:   p.FnName + "_star",
		OrigParams: p.OrigParams,
		ReturnType: p.ReturnType,
		LabelIndex: make(map[string]int),
		Dialect:    dialect,
		Warnings:   p.Warnings,
	}
	seen := map[string]bool{}
	for i := range p.Funs {
		f := &p.Funs[i]
		d.LabelIndex[f.Name] = len(d.Labels)
		d.Labels = append(d.Labels, f.Name)
		for _, prm := range f.Params {
			if seen[prm] {
				continue
			}
			seen[prm] = true
			t, ok := p.Types[prm]
			if !ok {
				return nil, fmt.Errorf("udf: no type for carried variable %q", prm)
			}
			d.UnionParams = append(d.UnionParams, Param{Name: prm, Type: t})
		}
	}
	return d, nil
}

// IsRecursive reports whether any label function performs a (tail) call —
// loop-less functions compile to a plain Froid-style expression instead of
// a recursive CTE.
func (d *Definition) IsRecursive() bool {
	for i := range d.Prog.Funs {
		calls := false
		walk(d.Prog.Funs[i].Body, func(t anf.Term) {
			if _, ok := t.(*anf.Call); ok {
				calls = true
			}
		})
		if calls {
			return true
		}
	}
	return false
}

func walk(t anf.Term, fn func(anf.Term)) {
	fn(t)
	switch x := t.(type) {
	case *anf.Let:
		walk(x.Body, fn)
	case *anf.If:
		walk(x.Then, fn)
		walk(x.Else, fn)
	}
}

// TailEncoder decides how tail positions are rendered: the plain UDF uses
// recursive calls and bare values; the WITH RECURSIVE adaptation encodes
// them as rows in the run table.
type TailEncoder interface {
	Call(label int, unionArgs []sqlast.Expr) sqlast.Expr
	Value(v sqlast.Expr) sqlast.Expr
}

// udfEncoder renders Figure 7: calls stay calls.
type udfEncoder struct{ d *Definition }

func (e udfEncoder) Call(label int, unionArgs []sqlast.Expr) sqlast.Expr {
	args := append([]sqlast.Expr{sqlast.IntLit(int64(label))}, unionArgs...)
	return &sqlast.FuncCall{Name: e.d.StarName, Args: args}
}

func (e udfEncoder) Value(v sqlast.Expr) sqlast.Expr { return v }

// UnionArgs maps a call's positional arguments onto the union layout,
// padding missing slots with NULL.
func (d *Definition) UnionArgs(c *anf.Call) ([]sqlast.Expr, error) {
	fn := d.Prog.Fun(c.Fn)
	if fn == nil {
		return nil, fmt.Errorf("udf: call to unknown label %s", c.Fn)
	}
	byName := map[string]sqlast.Expr{}
	for i, prm := range fn.Params {
		byName[prm] = c.Args[i]
	}
	out := make([]sqlast.Expr, len(d.UnionParams))
	for i, up := range d.UnionParams {
		if a, ok := byName[up.Name]; ok {
			out[i] = a
		} else {
			out[i] = sqlast.NullLit()
		}
	}
	return out, nil
}

// EmitTerm renders an ANF term as a SQL expression using enc for tail
// positions. Let chains become derived-table chains wrapped in a scalar
// subquery (LATERAL or nested, by dialect).
func (d *Definition) EmitTerm(t anf.Term, enc TailEncoder) (sqlast.Expr, error) {
	switch x := t.(type) {
	case *anf.Ret:
		return enc.Value(x.Val), nil
	case *anf.Call:
		args, err := d.UnionArgs(x)
		if err != nil {
			return nil, err
		}
		return enc.Call(d.LabelIndex[x.Fn], args), nil
	case *anf.If:
		thenE, err := d.EmitTerm(x.Then, enc)
		if err != nil {
			return nil, err
		}
		elseE, err := d.EmitTerm(x.Else, enc)
		if err != nil {
			return nil, err
		}
		return &sqlast.Case{
			Whens: []sqlast.WhenClause{{Cond: x.Cond, Result: thenE}},
			Else:  elseE,
		}, nil
	case *anf.Let:
		// Collect the whole chain.
		var binds []*anf.Let
		cur := t
		for {
			l, ok := cur.(*anf.Let)
			if !ok {
				break
			}
			binds = append(binds, l)
			cur = l.Body
		}
		inner, err := d.EmitTerm(cur, enc)
		if err != nil {
			return nil, err
		}
		return d.emitLetChain(binds, inner)
	default:
		return nil, fmt.Errorf("udf: unknown ANF term %T", t)
	}
}

// emitLetChain wraps an inner expression with its bindings:
//
//	Jlet v = e1 in e2K = SELECT Je2K FROM (SELECT Je1K) AS _(v)
//	                     LEFT JOIN LATERAL … ON true          (Postgres)
//	or nested derived tables projecting prev.* plus the new binding (SQLite).
func (d *Definition) emitLetChain(binds []*anf.Let, inner sqlast.Expr) (sqlast.Expr, error) {
	switch d.Dialect {
	case DialectPostgres:
		var from sqlast.FromItem
		for _, l := range binds {
			ref := &sqlast.SubqueryRef{
				Query:      sqlast.WrapQuery(sqlast.SimpleSelect([]sqlast.Expr{l.Rhs}, nil)),
				Alias:      d.freshAlias(),
				ColAliases: []string{l.Var},
			}
			if from == nil {
				from = ref
			} else {
				ref.Lateral = true
				from = &sqlast.Join{Type: sqlast.JoinLeft, L: from, R: ref, On: sqlast.BoolLit(true)}
			}
		}
		sel := &sqlast.Select{
			Items: []sqlast.SelectItem{{Expr: inner}},
			From:  []sqlast.FromItem{from},
		}
		return &sqlast.ScalarSubquery{Sub: sqlast.WrapQuery(sel)}, nil

	case DialectSQLite:
		// innermost level: SELECT e1 AS v1
		var q *sqlast.Query
		for i, l := range binds {
			if i == 0 {
				q = sqlast.WrapQuery(&sqlast.Select{
					Items: []sqlast.SelectItem{{Expr: l.Rhs, Alias: l.Var}},
				})
				continue
			}
			alias := d.freshAlias()
			q = sqlast.WrapQuery(&sqlast.Select{
				Items: []sqlast.SelectItem{
					{TableStar: alias},
					{Expr: l.Rhs, Alias: l.Var},
				},
				From: []sqlast.FromItem{&sqlast.SubqueryRef{Query: q, Alias: alias}},
			})
		}
		outer := &sqlast.Select{
			Items: []sqlast.SelectItem{{Expr: inner}},
			From:  []sqlast.FromItem{&sqlast.SubqueryRef{Query: q, Alias: d.freshAlias()}},
		}
		return &sqlast.ScalarSubquery{Sub: sqlast.WrapQuery(outer)}, nil
	}
	return nil, fmt.Errorf("udf: unknown dialect %d", d.Dialect)
}

func (d *Definition) freshAlias() string {
	d.aliasSeq++
	return fmt.Sprintf("_%d", d.aliasSeq)
}

// BodyExpr renders the full dispatch body of f_star (Figure 7): one CASE
// over the fn parameter.
func (d *Definition) BodyExpr() (sqlast.Expr, error) {
	d.aliasSeq = 0
	enc := udfEncoder{d: d}
	if len(d.Prog.Funs) == 1 {
		return d.EmitTerm(d.Prog.Funs[0].Body, enc)
	}
	c := &sqlast.Case{}
	for i := range d.Prog.Funs {
		f := &d.Prog.Funs[i]
		body, err := d.EmitTerm(f.Body, enc)
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.WhenClause{
			Cond:   sqlast.Eq(sqlast.Col("fn"), sqlast.IntLit(int64(d.LabelIndex[f.Name]))),
			Result: body,
		})
	}
	return c, nil
}

// EntryCall renders the wrapper's call to f_star.
func (d *Definition) EntryCall() (sqlast.Expr, error) {
	args, err := d.UnionArgs(d.Prog.Entry)
	if err != nil {
		return nil, err
	}
	return udfEncoder{d: d}.Call(d.LabelIndex[d.Prog.Entry.Fn], args), nil
}

// CreateStatements renders the two CREATE FUNCTION statements of Figure 7:
// the wrapper f and the tail-recursive f_star.
func (d *Definition) CreateStatements() ([]sqlast.Statement, error) {
	body, err := d.BodyExpr()
	if err != nil {
		return nil, err
	}
	entry, err := d.EntryCall()
	if err != nil {
		return nil, err
	}

	starParams := []sqlast.ParamDef{{Name: "fn", TypeName: "int"}}
	for _, up := range d.UnionParams {
		starParams = append(starParams, sqlast.ParamDef{Name: up.Name, TypeName: up.Type.String()})
	}
	star := &sqlast.CreateFunction{
		OrReplace:  true,
		Name:       d.StarName,
		Params:     starParams,
		ReturnType: d.ReturnType.String(),
		Language:   "sql",
		Body:       " " + sqlast.DeparseQuery(sqlast.WrapQuery(sqlast.SimpleSelect([]sqlast.Expr{body}, nil))) + " ",
	}

	var wrapParams []sqlast.ParamDef
	for _, p := range d.OrigParams {
		wrapParams = append(wrapParams, sqlast.ParamDef{Name: p.Name, TypeName: p.Type.String()})
	}
	wrapper := &sqlast.CreateFunction{
		OrReplace:  true,
		Name:       d.FnName,
		Params:     wrapParams,
		ReturnType: d.ReturnType.String(),
		Language:   "sql",
		Body:       " " + sqlast.DeparseQuery(sqlast.WrapQuery(sqlast.SimpleSelect([]sqlast.Expr{entry}, nil))) + " ",
	}
	return []sqlast.Statement{star, wrapper}, nil
}

// SQL renders both statements as text (plsqlc --emit=udf).
func (d *Definition) SQL() (string, error) {
	stmts, err := d.CreateStatements()
	if err != nil {
		return "", err
	}
	var parts []string
	for _, s := range stmts {
		parts = append(parts, sqlast.Deparse(s)+";")
	}
	return strings.Join(parts, "\n\n"), nil
}

// Package server serves an embedded engine over TCP using the wire
// protocol: one engine.Session per connection, pipelined request
// processing (a reader goroutine reads ahead while the session executes,
// responses stream back in request order), and graceful shutdown that
// drains in-flight statements.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/wire"
)

// Options tunes a Server. The zero value is production-ready.
type Options struct {
	// Banner is the server string sent in the Ready frame.
	Banner string
	// QueueDepth bounds how many decoded requests a connection's reader
	// may buffer ahead of execution — the pipelining window. Beyond it
	// the reader stops reading, applying TCP backpressure. Default 128.
	QueueDepth int
	// RowBatch is the number of rows per RowBatch response frame.
	// Default wire.DefaultRowBatch.
	RowBatch int
	// DrainGrace is how long a draining connection keeps reading requests
	// that were already on the wire when shutdown began; everything read
	// within the window is executed and answered. Default 100ms.
	DrainGrace time.Duration
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.Banner == "" {
		o.Banner = "plsqlaway"
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 128
	}
	if o.RowBatch <= 0 {
		o.RowBatch = wire.DefaultRowBatch
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = 100 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Server accepts wire-protocol connections onto one shared engine.
type Server struct {
	eng     *engine.Engine
	opts    Options
	metrics *srvMetrics  // nil unless the engine carries a registry
	nconns  atomic.Int64 // live connections, for StatsReply.ActiveConns

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining atomic.Bool
	wg       sync.WaitGroup // one per live connection
}

// New builds a server over e. When e was built with a metrics registry,
// the server publishes its connection and wire-traffic series into it.
func New(e *engine.Engine, opts Options) *Server {
	opts.defaults()
	s := &Server{eng: e, opts: opts, conns: map[*conn]struct{}{}}
	if reg := e.Metrics(); reg != nil {
		s.metrics = newSrvMetrics(reg)
	}
	return s
}

// ConnCount reports the number of currently open connections.
func (s *Server) ConnCount() int64 { return s.nconns.Load() }

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until it is closed (usually via
// Shutdown). Each connection runs its own session goroutines.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.nconns.Add(1)
		s.metrics.noteConnOpen()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				s.nconns.Add(-1)
				s.metrics.noteConnClose()
				s.wg.Done()
			}()
			c.serve()
		}()
	}
}

// Shutdown stops accepting connections and drains the live ones: each
// connection stops reading new requests, finishes executing everything
// already read (responses included), then closes. If ctx expires first,
// remaining connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.beginDrain()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("server: shutdown forced after %v: %w", timeoutOf(ctx), ctx.Err())
	}
}

func timeoutOf(ctx context.Context) time.Duration {
	if dl, ok := ctx.Deadline(); ok {
		return time.Until(dl)
	}
	return 0
}

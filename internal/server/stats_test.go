package server

// Wire-level observability tests: the StatsReply version negotiation
// (v5 extended tail vs the legacy shape pre-v5 clients expect) and the
// server's traffic metrics.

import (
	"bufio"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/obs"
	"plsqlaway/internal/wire"
)

// startEngine serves the given engine, returning the server and address.
func startEngine(t *testing.T, e *engine.Engine) (*Server, string) {
	t.Helper()
	srv := New(e, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return srv, ln.Addr().String()
}

// rawConnAt dials and completes the handshake at a chosen protocol
// version.
func rawConnAt(t *testing.T, addr string, version uint32) (*bufio.Reader, *bufio.Writer) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	br, bw := bufio.NewReader(nc), bufio.NewWriter(nc)
	if err := wire.WriteMessage(bw, &wire.Startup{Version: version, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	msg, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*wire.Ready); !ok {
		t.Fatalf("handshake answered %T", msg)
	}
	return br, bw
}

func statsRoundTrip(t *testing.T, br *bufio.Reader, bw *bufio.Writer) *wire.StatsReply {
	t.Helper()
	if err := wire.WriteMessage(bw, &wire.StatsRequest{}); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	msg, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := msg.(*wire.StatsReply)
	if !ok {
		t.Fatalf("stats request answered %T", msg)
	}
	return st
}

// TestStatsReplyVersionNegotiation pins both directions of the v5 frame
// growth: a v4 session gets the legacy 14-field shape (and its decoder
// reports Legacy), a v5 session gets the extended tail with the live
// connection count.
func TestStatsReplyVersionNegotiation(t *testing.T) {
	_, addr := startEngine(t, engine.New(engine.WithSeed(42)))

	br4, bw4 := rawConnAt(t, addr, 4)
	st := statsRoundTrip(t, br4, bw4)
	if !st.Legacy {
		t.Error("v4 session should receive the legacy StatsReply shape")
	}
	if st.ActiveConns != 0 || st.Plans.CacheHits != 0 {
		t.Errorf("legacy reply must not carry v5 fields: %+v", st)
	}

	br5, bw5 := rawConnAt(t, addr, 5)
	st = statsRoundTrip(t, br5, bw5)
	if st.Legacy {
		t.Error("v5 session should receive the extended StatsReply shape")
	}
	if st.ActiveConns < 2 {
		t.Errorf("ActiveConns = %d, want ≥ 2 (both test connections open)", st.ActiveConns)
	}
}

// TestServerTrafficMetrics runs a query through an instrumented server
// and asserts the connection gauge and per-frame traffic counters moved,
// and that the registry's text render stays Prometheus-parseable with
// the server families included.
func TestServerTrafficMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e := engine.New(engine.WithSeed(42), engine.WithMetricsRegistry(reg))
	if err := e.Exec("CREATE TABLE t (n int); INSERT INTO t VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	srv, addr := startEngine(t, e)

	br, bw := rawConnAt(t, addr, wire.ProtocolVersion)
	if err := wire.WriteMessage(bw, &wire.Query{SQL: "SELECT n FROM t ORDER BY n"}); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	for {
		msg, err := wire.ReadMessage(br)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := msg.(*wire.Done); ok {
			break
		}
		if em, ok := msg.(*wire.Error); ok {
			t.Fatalf("query failed: %s", em.Message)
		}
	}

	if n := srv.ConnCount(); n != 1 {
		t.Errorf("ConnCount = %d, want 1", n)
	}
	series := map[string]map[string]float64{}
	gauges := map[string]float64{}
	for _, m := range reg.Gather() {
		bylabel := map[string]float64{}
		for _, s := range m.Samples {
			if s.Value != nil {
				bylabel[s.Label] = *s.Value
				gauges[m.Name] = *s.Value
			}
		}
		series[m.Name] = bylabel
	}
	if v := series["plsql_server_frames_in_total"]["query"]; v < 1 {
		t.Errorf("frames_in{frame=query} = %v, want ≥ 1", v)
	}
	if v := series["plsql_server_frames_out_total"]["done"]; v < 1 {
		t.Errorf("frames_out{frame=done} = %v, want ≥ 1", v)
	}
	if v := series["plsql_server_bytes_out_total"]["row_desc"]; v < 6 {
		t.Errorf("bytes_out{frame=row_desc} = %v, want ≥ 6 (header + payload)", v)
	}
	if v := gauges["plsql_server_active_connections"]; v != 1 {
		t.Errorf("active_connections = %v, want 1", v)
	}
	if v := gauges["plsql_server_connections_total"]; v < 1 {
		t.Errorf("connections_total = %v, want ≥ 1", v)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`plsql_server_frames_in_total{frame="query"}`,
		`plsql_server_active_connections`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("text render missing %s:\n%s", want, sb.String())
		}
	}
}

package server

import (
	"bufio"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/wire"
)

// start returns a served listener plus a cleanup-registered shutdown.
func start(t *testing.T) string {
	t.Helper()
	e := engine.New(engine.WithSeed(42))
	srv := New(e, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return ln.Addr().String()
}

// rawConn dials and completes the handshake, returning buffered ends.
func rawConn(t *testing.T, addr string) (net.Conn, *bufio.Reader, *bufio.Writer) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	br, bw := bufio.NewReader(nc), bufio.NewWriter(nc)
	if err := wire.WriteMessage(bw, &wire.Startup{Version: wire.ProtocolVersion, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	msg, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*wire.Ready); !ok {
		t.Fatalf("handshake answered %T", msg)
	}
	return nc, br, bw
}

func TestVersionMismatchRejected(t *testing.T) {
	addr := start(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	bw := bufio.NewWriter(nc)
	wire.WriteMessage(bw, &wire.Startup{Version: wire.ProtocolVersion + 7, Seed: 1})
	bw.Flush()
	msg, err := wire.ReadMessage(bufio.NewReader(nc))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := msg.(*wire.Error)
	if !ok || !strings.Contains(e.Message, "version") {
		t.Fatalf("got %#v", msg)
	}
}

func TestMalformedPayloadAnsweredInOrder(t *testing.T) {
	addr := start(t)
	_, br, bw := rawConn(t, addr)

	// Pipeline: good query, malformed execute payload, good query. The
	// malformed frame must get an Error response in position 2 and the
	// connection must keep serving.
	wire.WriteMessage(bw, &wire.Query{SQL: "SELECT 1"})
	wire.WriteFrame(bw, wire.TypeExecute, []byte{0xFF, 0xFF}) // lying length
	wire.WriteMessage(bw, &wire.Query{SQL: "SELECT 2"})
	bw.Flush()

	read := func() wire.Message {
		t.Helper()
		m, err := wire.ReadMessage(br)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Response 1: RowDesc, RowBatch, Done.
	if _, ok := read().(*wire.RowDesc); !ok {
		t.Fatal("want row desc")
	}
	rb, ok := read().(*wire.RowBatch)
	if !ok || rb.Rows[0][0].Int() != 1 {
		t.Fatalf("want SELECT 1 rows, got %#v", rb)
	}
	if _, ok := read().(*wire.Done); !ok {
		t.Fatal("want done")
	}
	// Response 2: the malformed frame's error.
	em, ok := read().(*wire.Error)
	if !ok || !strings.Contains(em.Message, "malformed") {
		t.Fatalf("want malformed-frame error, got %#v", em)
	}
	// Response 3: still served.
	if _, ok := read().(*wire.RowDesc); !ok {
		t.Fatal("connection died after malformed frame")
	}
	rb, ok = read().(*wire.RowBatch)
	if !ok || rb.Rows[0][0].Int() != 2 {
		t.Fatalf("want SELECT 2 rows, got %#v", rb)
	}
	if _, ok := read().(*wire.Done); !ok {
		t.Fatal("want done")
	}
}

func TestServerRejectsServerFrames(t *testing.T) {
	addr := start(t)
	_, br, bw := rawConn(t, addr)
	wire.WriteMessage(bw, &wire.Done{Tag: "OK"}) // a server→client frame
	bw.Flush()
	msg, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*wire.Error); !ok || !strings.Contains(e.Message, "unexpected frame") {
		t.Fatalf("got %#v", msg)
	}
}

func TestUnknownStatementName(t *testing.T) {
	addr := start(t)
	_, br, bw := rawConn(t, addr)
	wire.WriteMessage(bw, &wire.Execute{Name: "nope"})
	bw.Flush()
	msg, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*wire.Error); !ok || !strings.Contains(e.Message, "unknown prepared statement") {
		t.Fatalf("got %#v", msg)
	}
}

func TestScriptVsQueryDispatch(t *testing.T) {
	addr := start(t)
	_, br, bw := rawConn(t, addr)

	// A multi-statement script answers plain Done.
	wire.WriteMessage(bw, &wire.Query{SQL: "CREATE TABLE t (x int); INSERT INTO t VALUES (1); INSERT INTO t VALUES (2)"})
	bw.Flush()
	msg, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*wire.Done); !ok {
		t.Fatalf("script answered %#v", msg)
	}
	// A failing script reports its error once.
	wire.WriteMessage(bw, &wire.Query{SQL: "INSERT INTO t VALUES (3); INSERT INTO missing VALUES (4)"})
	bw.Flush()
	msg, err = wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*wire.Error); !ok || !strings.Contains(e.Message, "does not exist") {
		t.Fatalf("got %#v", msg)
	}
	// The first statement of the failing script committed (scripts are
	// per-statement, like the embedded Session.Exec).
	wire.WriteMessage(bw, &wire.Query{SQL: "SELECT count(*) FROM t"})
	bw.Flush()
	desc, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := desc.(*wire.RowDesc); !ok {
		t.Fatalf("want row desc, got %#v", desc)
	}
	rb, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if got := rb.(*wire.RowBatch).Rows[0][0].Int(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
}

func TestLargeResultChunking(t *testing.T) {
	e := engine.New(engine.WithSeed(42))
	srv := New(e, Options{RowBatch: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}()

	_, br, bw := rawConn(t, ln.Addr().String())
	wire.WriteMessage(bw, &wire.Query{SQL: "WITH RECURSIVE g(i) AS (SELECT 1 UNION ALL SELECT i + 1 FROM g WHERE i < 100) SELECT i FROM g"})
	bw.Flush()
	desc, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := desc.(*wire.RowDesc); !ok {
		t.Fatalf("want row desc, got %#v", desc)
	}
	batches, rows := 0, 0
	for {
		msg, err := wire.ReadMessage(br)
		if err != nil {
			t.Fatal(err)
		}
		if _, okDone := msg.(*wire.Done); okDone {
			break
		}
		rb, ok := msg.(*wire.RowBatch)
		if !ok {
			t.Fatalf("got %#v", msg)
		}
		if len(rb.Rows) > 16 {
			t.Fatalf("batch of %d rows exceeds configured chunk 16", len(rb.Rows))
		}
		batches++
		rows += len(rb.Rows)
	}
	if rows != 100 || batches < 7 {
		t.Fatalf("rows=%d batches=%d, want 100 rows in ≥7 chunks", rows, batches)
	}
}

package server

import (
	"bufio"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/wire"
)

// msgRows extracts the rows of a result frame in either encoding: v4
// sessions stream columnar ColBatch frames, v3 (and the buffered
// prepared-statement path) row-major RowBatch frames.
func msgRows(t *testing.T, msg wire.Message) [][]sqltypes.Value {
	t.Helper()
	switch m := msg.(type) {
	case *wire.RowBatch:
		return m.Rows
	case *wire.ColBatch:
		return m.Rows()
	}
	t.Fatalf("want a result frame, got %#v", msg)
	return nil
}

// start returns a served listener plus a cleanup-registered shutdown.
func start(t *testing.T) string {
	t.Helper()
	e := engine.New(engine.WithSeed(42))
	srv := New(e, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return ln.Addr().String()
}

// rawConn dials and completes the handshake, returning buffered ends.
func rawConn(t *testing.T, addr string) (net.Conn, *bufio.Reader, *bufio.Writer) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	br, bw := bufio.NewReader(nc), bufio.NewWriter(nc)
	if err := wire.WriteMessage(bw, &wire.Startup{Version: wire.ProtocolVersion, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	msg, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*wire.Ready); !ok {
		t.Fatalf("handshake answered %T", msg)
	}
	return nc, br, bw
}

// TestV3ClientGetsRowMajorResults pins the downgrade path: a session
// negotiated at the previous protocol version must never see a ColBatch
// frame — results arrive as row-major RowBatch chunks, still streamed
// batch by batch.
func TestV3ClientGetsRowMajorResults(t *testing.T) {
	addr := start(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	br, bw := bufio.NewReader(nc), bufio.NewWriter(nc)
	wire.WriteMessage(bw, &wire.Startup{Version: wire.MinProtocolVersion, Seed: 42})
	bw.Flush()
	if msg, err := wire.ReadMessage(br); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.Ready); !ok {
		t.Fatalf("v%d handshake answered %#v", wire.MinProtocolVersion, msg)
	}

	wire.WriteMessage(bw, &wire.Query{SQL: "WITH RECURSIVE g(i) AS (SELECT 1 UNION ALL SELECT i + 1 FROM g WHERE i < 50) SELECT i, i * 2 FROM g"})
	bw.Flush()
	if msg, err := wire.ReadMessage(br); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.RowDesc); !ok {
		t.Fatalf("want row desc, got %#v", msg)
	}
	rows := 0
	for {
		msg, err := wire.ReadMessage(br)
		if err != nil {
			t.Fatal(err)
		}
		if _, done := msg.(*wire.Done); done {
			break
		}
		rb, ok := msg.(*wire.RowBatch)
		if !ok {
			t.Fatalf("v3 session got %#v", msg)
		}
		for _, r := range rb.Rows {
			if r[1].Int() != 2*r[0].Int() {
				t.Fatalf("bad row %v", r)
			}
		}
		rows += len(rb.Rows)
	}
	if rows != 50 {
		t.Fatalf("rows = %d, want 50", rows)
	}
}

// TestStreamedErrorTerminates pins mid-stream failure framing: when a
// query dies after batches already went out, the response must end with
// an Error frame (not Done), and the connection must keep serving.
func TestStreamedErrorTerminates(t *testing.T) {
	addr := start(t)
	_, br, bw := rawConn(t, addr)
	// Division by zero on the last row only: earlier batches stream out
	// before the error surfaces.
	wire.WriteMessage(bw, &wire.Query{SQL: "WITH RECURSIVE g(i) AS (SELECT 1 UNION ALL SELECT i + 1 FROM g WHERE i < 3000) SELECT i / (3000 - i) FROM g"})
	bw.Flush()
	if msg, err := wire.ReadMessage(br); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.RowDesc); !ok {
		t.Fatalf("want row desc, got %#v", msg)
	}
	sawError := false
	for !sawError {
		msg, err := wire.ReadMessage(br)
		if err != nil {
			t.Fatal(err)
		}
		switch m := msg.(type) {
		case *wire.ColBatch, *wire.RowBatch:
		case *wire.Error:
			if !strings.Contains(m.Message, "division by zero") {
				t.Fatalf("got error %q", m.Message)
			}
			sawError = true
		default:
			t.Fatalf("got %#v", msg)
		}
	}
	// The connection keeps serving after the failed stream.
	wire.WriteMessage(bw, &wire.Query{SQL: "SELECT 7"})
	bw.Flush()
	if msg, err := wire.ReadMessage(br); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.RowDesc); !ok {
		t.Fatalf("want row desc, got %#v", msg)
	}
	if rows := msgRows(t, mustRead(t, br)); rows[0][0].Int() != 7 {
		t.Fatalf("want 7, got %v", rows)
	}
	if _, ok := mustRead(t, br).(*wire.Done); !ok {
		t.Fatal("want done")
	}
}

func mustRead(t *testing.T, br *bufio.Reader) wire.Message {
	t.Helper()
	m, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVersionMismatchRejected(t *testing.T) {
	addr := start(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	bw := bufio.NewWriter(nc)
	wire.WriteMessage(bw, &wire.Startup{Version: wire.ProtocolVersion + 7, Seed: 1})
	bw.Flush()
	msg, err := wire.ReadMessage(bufio.NewReader(nc))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := msg.(*wire.Error)
	if !ok || !strings.Contains(e.Message, "version") {
		t.Fatalf("got %#v", msg)
	}
}

func TestMalformedPayloadAnsweredInOrder(t *testing.T) {
	addr := start(t)
	_, br, bw := rawConn(t, addr)

	// Pipeline: good query, malformed execute payload, good query. The
	// malformed frame must get an Error response in position 2 and the
	// connection must keep serving.
	wire.WriteMessage(bw, &wire.Query{SQL: "SELECT 1"})
	wire.WriteFrame(bw, wire.TypeExecute, []byte{0xFF, 0xFF}) // lying length
	wire.WriteMessage(bw, &wire.Query{SQL: "SELECT 2"})
	bw.Flush()

	read := func() wire.Message {
		t.Helper()
		m, err := wire.ReadMessage(br)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Response 1: RowDesc, RowBatch, Done.
	if _, ok := read().(*wire.RowDesc); !ok {
		t.Fatal("want row desc")
	}
	if rows := msgRows(t, read()); rows[0][0].Int() != 1 {
		t.Fatalf("want SELECT 1 rows, got %v", rows)
	}
	if _, ok := read().(*wire.Done); !ok {
		t.Fatal("want done")
	}
	// Response 2: the malformed frame's error.
	em, ok := read().(*wire.Error)
	if !ok || !strings.Contains(em.Message, "malformed") {
		t.Fatalf("want malformed-frame error, got %#v", em)
	}
	// Response 3: still served.
	if _, ok := read().(*wire.RowDesc); !ok {
		t.Fatal("connection died after malformed frame")
	}
	if rows := msgRows(t, read()); rows[0][0].Int() != 2 {
		t.Fatalf("want SELECT 2 rows, got %v", rows)
	}
	if _, ok := read().(*wire.Done); !ok {
		t.Fatal("want done")
	}
}

func TestServerRejectsServerFrames(t *testing.T) {
	addr := start(t)
	_, br, bw := rawConn(t, addr)
	wire.WriteMessage(bw, &wire.Done{Tag: "OK"}) // a server→client frame
	bw.Flush()
	msg, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*wire.Error); !ok || !strings.Contains(e.Message, "unexpected frame") {
		t.Fatalf("got %#v", msg)
	}
}

func TestUnknownStatementName(t *testing.T) {
	addr := start(t)
	_, br, bw := rawConn(t, addr)
	wire.WriteMessage(bw, &wire.Execute{Name: "nope"})
	bw.Flush()
	msg, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*wire.Error); !ok || !strings.Contains(e.Message, "unknown prepared statement") {
		t.Fatalf("got %#v", msg)
	}
}

func TestScriptVsQueryDispatch(t *testing.T) {
	addr := start(t)
	_, br, bw := rawConn(t, addr)

	// A multi-statement script answers plain Done.
	wire.WriteMessage(bw, &wire.Query{SQL: "CREATE TABLE t (x int); INSERT INTO t VALUES (1); INSERT INTO t VALUES (2)"})
	bw.Flush()
	msg, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*wire.Done); !ok {
		t.Fatalf("script answered %#v", msg)
	}
	// A failing script reports its error once.
	wire.WriteMessage(bw, &wire.Query{SQL: "INSERT INTO t VALUES (3); INSERT INTO missing VALUES (4)"})
	bw.Flush()
	msg, err = wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*wire.Error); !ok || !strings.Contains(e.Message, "does not exist") {
		t.Fatalf("got %#v", msg)
	}
	// The first statement of the failing script committed (scripts are
	// per-statement, like the embedded Session.Exec).
	wire.WriteMessage(bw, &wire.Query{SQL: "SELECT count(*) FROM t"})
	bw.Flush()
	desc, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := desc.(*wire.RowDesc); !ok {
		t.Fatalf("want row desc, got %#v", desc)
	}
	rb, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if got := msgRows(t, rb)[0][0].Int(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
}

func TestLargeResultChunking(t *testing.T) {
	// Batch size 16 bounds the streamed path's frame granularity (simple
	// queries ship one frame per executor batch); RowBatch 16 bounds the
	// buffered prepared-statement path the same way.
	e := engine.New(engine.WithSeed(42), engine.WithBatchSize(16))
	srv := New(e, Options{RowBatch: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}()

	const gen = "WITH RECURSIVE g(i) AS (SELECT 1 UNION ALL SELECT i + 1 FROM g WHERE i < 100) SELECT i FROM g"
	_, br, bw := rawConn(t, ln.Addr().String())
	drain := func(wantColumnar bool) (batches, rows int) {
		t.Helper()
		desc, err := wire.ReadMessage(br)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := desc.(*wire.RowDesc); !ok {
			t.Fatalf("want row desc, got %#v", desc)
		}
		for {
			msg, err := wire.ReadMessage(br)
			if err != nil {
				t.Fatal(err)
			}
			if _, okDone := msg.(*wire.Done); okDone {
				return batches, rows
			}
			if _, ok := msg.(*wire.ColBatch); ok != wantColumnar {
				t.Fatalf("columnar=%v frame on a wantColumnar=%v path", ok, wantColumnar)
			}
			chunk := msgRows(t, msg)
			if len(chunk) > 16 {
				t.Fatalf("batch of %d rows exceeds configured chunk 16", len(chunk))
			}
			batches++
			rows += len(chunk)
		}
	}

	// Streamed simple query: columnar frames, one per executor batch.
	wire.WriteMessage(bw, &wire.Query{SQL: gen})
	bw.Flush()
	if batches, rows := drain(true); rows != 100 || batches < 7 {
		t.Fatalf("rows=%d batches=%d, want 100 rows in ≥7 chunks", rows, batches)
	}

	// Buffered prepared-statement path: row-major frames of Options.RowBatch.
	wire.WriteMessage(bw, &wire.Parse{Name: "g", SQL: gen})
	wire.WriteMessage(bw, &wire.Execute{Name: "g"})
	bw.Flush()
	if msg, err := wire.ReadMessage(br); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.ParseOK); !ok {
		t.Fatalf("parse answered %#v", msg)
	}
	if batches, rows := drain(false); rows != 100 || batches < 7 {
		t.Fatalf("prepared: rows=%d batches=%d, want 100 rows in ≥7 chunks", rows, batches)
	}
}

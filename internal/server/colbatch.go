package server

import (
	"errors"
	"fmt"

	"plsqlaway/internal/exec"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/wire"
)

// writeBatch emits one executor batch as result frames: a single columnar
// ColBatch for v4+ sessions (typed lanes aliased straight into the
// encoder), a row-major RowBatch for v3 sessions. A frame whose encoding
// exceeds the limit degrades to row-by-row RowBatch frames (v4 clients
// decode both); a single over-limit row fails the whole response, which
// handleQuery terminates with an Error frame.
func (c *conn) writeBatch(b *exec.Batch) error {
	if c.version >= wire.ColBatchVersion && b.Width() > 0 && b.Len() <= wire.MaxColBatchRows {
		if err := colBatch(b, &c.cb); err == nil {
			err = c.write(&c.cb)
			if err == nil {
				return nil
			}
			if !errors.Is(err, wire.ErrFrameTooLarge) {
				return err
			}
		}
	}
	// storage.Tuple aliases []sqltypes.Value, so the materialized rows
	// frame directly — no per-batch copy.
	rows := b.Rows()
	err := c.write(&wire.RowBatch{Rows: rows})
	if err == nil {
		return nil
	}
	if !errors.Is(err, wire.ErrFrameTooLarge) {
		return err
	}
	for _, row := range rows {
		if err := c.write(&wire.RowBatch{Rows: [][]sqltypes.Value{row}}); err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				return fmt.Errorf("result row exceeds the %d-byte frame limit", wire.MaxFrameLen)
			}
			return err
		}
	}
	return nil
}

// colBatch re-frames one executor batch as a wire ColBatch, aliasing the
// executor's typed column lanes — zero copies for int, float, bool, and
// text columns. The message is valid only until the executor's next pull
// (the lanes are producer-owned), which is fine: the caller encodes and
// writes it before pulling again.
func colBatch(b *exec.Batch, m *wire.ColBatch) error {
	n, w := b.Len(), b.Width()
	if cap(m.Cols) < w {
		m.Cols = make([]wire.ColData, w)
	}
	m.Cols = m.Cols[:w]
	m.NumRows = n
	for i := 0; i < w; i++ {
		col, err := b.Col(i)
		if err != nil {
			return err
		}
		cd := &m.Cols[i]
		*cd = wire.ColData{}
		switch col.Kind {
		case exec.ColInt:
			cd.Tag = wire.ColTagInt
			cd.Ints = col.Ints[:n]
		case exec.ColFloat:
			cd.Tag = wire.ColTagFloat
			cd.Floats = col.Floats[:n]
		case exec.ColBool:
			cd.Tag = wire.ColTagBool
			cd.Bools = col.Bools[:n]
		case exec.ColStr:
			cd.Tag = wire.ColTagText
			cd.Texts = col.Strs[:n]
		case exec.ColNull:
			cd.Tag = wire.ColTagNull
			continue // the bitmap is implied all-true; no value lane
		default: // ColAny and anything future: kind-tagged values
			cd.Tag = wire.ColTagAny
			cd.Anys = col.Vals[:n]
			continue // NULLs travel inside the boxed values
		}
		if col.Nulls != nil {
			cd.Nulls = col.Nulls[:n]
		}
	}
	return nil
}

// Server-side observability: connection gauges and per-frame-type wire
// traffic counters. Handles are pre-resolved into flat arrays indexed by
// the frame type byte, so the read and write loops bump two atomics per
// frame and never touch the registry's map. All of it is dormant (nil
// receiver, one branch) unless the engine was built with a metrics
// registry.

package server

import (
	"plsqlaway/internal/obs"
	"plsqlaway/internal/wire"
)

// frameTypes enumerates every frame type byte the protocol defines —
// the label space for the per-frame traffic counters.
var frameTypes = []byte{
	wire.TypeStartup, wire.TypeQuery, wire.TypeParse, wire.TypeExecute,
	wire.TypeCloseStmt, wire.TypeSeed, wire.TypeStatsReq, wire.TypeTerminate,
	wire.TypeReady, wire.TypeRowDesc, wire.TypeRowBatch, wire.TypeColBatch,
	wire.TypeDone, wire.TypeError, wire.TypeParseOK, wire.TypeStatsReply,
	wire.TypeNotice,
}

// srvMetrics holds the server's pre-resolved metric handles.
type srvMetrics struct {
	connsTotal  *obs.Counter
	activeConns *obs.Gauge

	framesIn  [256]*obs.Counter
	bytesIn   [256]*obs.Counter
	framesOut [256]*obs.Counter
	bytesOut  [256]*obs.Counter
}

func newSrvMetrics(reg *obs.Registry) *srvMetrics {
	m := &srvMetrics{
		connsTotal:  reg.Counter("plsql_server_connections_total", "Wire connections accepted."),
		activeConns: reg.Gauge("plsql_server_active_connections", "Wire connections currently open."),
	}
	fi := reg.CounterVec("plsql_server_frames_in_total", "Frames received, by frame type.", "frame")
	bi := reg.CounterVec("plsql_server_bytes_in_total", "Bytes received (header included), by frame type.", "frame")
	fo := reg.CounterVec("plsql_server_frames_out_total", "Frames sent, by frame type.", "frame")
	bo := reg.CounterVec("plsql_server_bytes_out_total", "Bytes sent (header included), by frame type.", "frame")
	for _, t := range frameTypes {
		name := wire.TypeName(t)
		m.framesIn[t] = fi.With(name)
		m.bytesIn[t] = bi.With(name)
		m.framesOut[t] = fo.With(name)
		m.bytesOut[t] = bo.With(name)
	}
	return m
}

// noteIn counts one received frame; payloadLen excludes the 5-byte
// header, which the byte counter adds back. Unknown type bytes (possible
// only on malformed input) land nowhere.
func (m *srvMetrics) noteIn(typ byte, payloadLen int) {
	if m == nil {
		return
	}
	if c := m.framesIn[typ]; c != nil {
		c.Inc()
		m.bytesIn[typ].Add(int64(payloadLen) + 5)
	}
}

// noteOut counts one sent frame, header included.
func (m *srvMetrics) noteOut(typ byte, payloadLen int) {
	if m == nil {
		return
	}
	if c := m.framesOut[typ]; c != nil {
		c.Inc()
		m.bytesOut[typ].Add(int64(payloadLen) + 5)
	}
}

// noteConnOpen / noteConnClose track the live-connection gauge.
func (m *srvMetrics) noteConnOpen() {
	if m == nil {
		return
	}
	m.connsTotal.Inc()
	m.activeConns.Add(1)
}

func (m *srvMetrics) noteConnClose() {
	if m == nil {
		return
	}
	m.activeConns.Add(-1)
}

package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/exec"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/wire"
)

// request is one decoded client frame queued for execution. A payload
// that failed to decode travels as err, so the executor reports it in
// request order like any other response.
type request struct {
	msg wire.Message
	err error
}

// conn is one client connection: a session, a prepared-statement
// namespace, and the read-ahead queue that implements pipelining.
type conn struct {
	srv  *Server
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	sess *engine.Session

	stmts map[string]*engine.Prepared
	reqs  chan request
	// enc is the executor goroutine's scratch payload buffer, reused
	// across response frames.
	enc wire.Encoder
	// version is the protocol version negotiated at startup; v3 sessions
	// get row-major RowBatch results, v4+ get columnar ColBatch frames.
	version uint32
	// cb is the scratch ColBatch reused across streamed result frames —
	// its lanes alias the executor batch, so it is valid only until the
	// next pull.
	cb wire.ColBatch

	// draining tells the reader to stop pulling new requests; the
	// executor finishes what is queued and closes the connection.
	draining atomic.Bool
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:   s,
		nc:    nc,
		br:    bufio.NewReaderSize(nc, 64<<10),
		bw:    bufio.NewWriterSize(nc, 64<<10),
		sess:  s.eng.NewSession(),
		stmts: map[string]*engine.Prepared{},
		reqs:  make(chan request, s.opts.QueueDepth),
	}
}

// beginDrain caps the connection's reads at one absolute deadline: the
// reader keeps accepting requests that were already submitted (in the
// socket or read buffer) until the grace window closes, the executor
// answers everything read, then the connection closes. The flag prevents
// deadline errors from being logged as failures.
func (c *conn) beginDrain() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now().Add(c.srv.opts.DrainGrace))
}

// serve runs the connection to completion: handshake, then a reader
// goroutine feeding the executor loop.
func (c *conn) serve() {
	defer c.nc.Close()
	// Whatever ends the connection — client disconnect, Terminate, or a
	// server drain — an open transaction block must not outlive it: the
	// rollback releases the commit lock and the snapshot pin the session
	// may be holding.
	defer c.sess.Reset()
	if err := c.handshake(); err != nil {
		c.srv.opts.Logf("server: %s handshake: %v", c.nc.RemoteAddr(), err)
		return
	}

	go c.readLoop()

	for req := range c.reqs {
		c.respond(req)
		// Flush when no request is waiting: under pipelining pressure the
		// responses batch up in the buffered writer; a lone synchronous
		// caller gets its reply immediately.
		if len(c.reqs) == 0 {
			if err := c.bw.Flush(); err != nil {
				c.discard()
				return
			}
		}
	}
	c.bw.Flush()
}

// discard drains the queue after a dead write side so the reader can
// finish and close the channel.
func (c *conn) discard() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now())
	for range c.reqs {
	}
}

// handshake expects Startup and answers Ready.
func (c *conn) handshake() error {
	msg, err := wire.ReadMessage(c.br)
	if err != nil {
		return err
	}
	st, ok := msg.(*wire.Startup)
	if !ok {
		wire.WriteMessage(c.bw, &wire.Error{Message: "expected startup frame"})
		c.bw.Flush()
		return fmt.Errorf("first frame %c, want startup", msg.Type())
	}
	if st.Version < wire.MinProtocolVersion || st.Version > wire.ProtocolVersion {
		msg := fmt.Sprintf("protocol version %d not supported (server speaks %d..%d)", st.Version, wire.MinProtocolVersion, wire.ProtocolVersion)
		wire.WriteMessage(c.bw, &wire.Error{Message: msg})
		c.bw.Flush()
		return fmt.Errorf("version mismatch: client %d", st.Version)
	}
	c.version = st.Version
	c.sess.Seed(st.Seed)
	if err := wire.WriteMessage(c.bw, &wire.Ready{Server: c.srv.opts.Banner}); err != nil {
		return err
	}
	return c.bw.Flush()
}

// readLoop decodes frames ahead of execution. It closes the request
// channel when the client disconnects, sends Terminate, or the server
// drains — the executor loop then finishes the queued tail.
func (c *conn) readLoop() {
	defer close(c.reqs)
	for {
		typ, payload, err := wire.ReadFrame(c.br)
		if err != nil {
			if !isExpectedClose(err) && !c.draining.Load() {
				c.srv.opts.Logf("server: %s read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		c.srv.metrics.noteIn(typ, len(payload))
		msg, err := wire.Decode(typ, payload)
		if err != nil {
			// The frame boundary is intact — report the malformed payload
			// in order and keep serving.
			c.reqs <- request{err: err}
			continue
		}
		if _, ok := msg.(*wire.Terminate); ok {
			return
		}
		c.reqs <- request{msg: msg}
	}
}

func isExpectedClose(err error) bool {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true // drain deadline
	}
	return false
}

// respond executes one request and writes its response frames.
func (c *conn) respond(req request) {
	if req.err != nil {
		c.writeError(fmt.Errorf("malformed frame: %w", req.err))
		return
	}
	switch m := req.msg.(type) {
	case *wire.Query:
		c.handleQuery(m.SQL)
	case *wire.Parse:
		c.handleParse(m)
	case *wire.Execute:
		c.handleExecute(m)
	case *wire.CloseStmt:
		delete(c.stmts, m.Name)
		c.writeDone()
	case *wire.Seed:
		c.sess.Seed(m.Seed)
		c.writeDone()
	case *wire.StatsRequest:
		inlined, specialized, evicted := c.sess.PlanStats()
		hits, misses := c.sess.PlanCacheStats()
		c.write(&wire.StatsReply{
			Stats: c.sess.StorageStats().Snapshot(),
			Plans: wire.PlanStats{
				PlansInlined: inlined, SpecializedPlans: specialized, CacheEvictions: evicted,
				CacheHits: hits, CacheMisses: misses,
			},
			ActiveConns: c.srv.ConnCount(),
			// Pre-v5 clients expect the 14-field frame; the tail would be
			// trailing garbage to them.
			Legacy: c.version < wire.ExtendedStatsVersion,
		})
	default:
		c.writeError(fmt.Errorf("unexpected frame %c from client", req.msg.Type()))
	}
}

// handleQuery runs one statement or a semicolon-separated script.
// Session.RunStream parses once and dispatches by shape, so a statement
// that fails during execution is never re-executed by a fallback path. A
// single row-returning query streams: the server pulls executor batches
// and writes each as a frame the moment it is produced, so a wide scan's
// peak server memory is one batch — never the whole result — and a slow
// client throttles the executor through TCP backpressure. Everything
// else (DDL, DML, scripts) returns its buffered result as before. An
// execution error mid-stream terminates the response with an Error frame
// after whatever batches already went out; the client discards partials.
func (c *conn) handleQuery(sql string) {
	res, streamed, err := c.sess.RunStream(sql,
		func(cols []string) error { return c.write(&wire.RowDesc{Cols: cols}) },
		func(b *exec.Batch) error { return c.writeBatch(b) },
	)
	c.writeNotices()
	if err != nil {
		c.writeError(err)
		return
	}
	if streamed {
		c.writeDone()
		return
	}
	c.writeResult(res)
}

// writeNotices streams the session's pending NOTICE messages (RAISE
// NOTICE output, transaction-control warnings) ahead of the response
// terminator, Postgres NoticeResponse style.
func (c *conn) writeNotices() {
	for _, n := range c.sess.DrainNotices() {
		c.write(&wire.Notice{Message: n})
	}
}

func (c *conn) handleParse(m *wire.Parse) {
	p, err := c.sess.Prepare(m.SQL)
	if err != nil {
		c.writeError(err)
		return
	}
	c.stmts[m.Name] = p
	c.write(&wire.ParseOK{Name: m.Name, NumParams: uint32(p.NumParams()), IsQuery: p.IsQuery()})
}

func (c *conn) handleExecute(m *wire.Execute) {
	p, ok := c.stmts[m.Name]
	if !ok {
		c.writeError(fmt.Errorf("unknown prepared statement %q", m.Name))
		return
	}
	res, err := p.Query(m.Params...)
	c.writeNotices()
	if err != nil {
		c.writeError(err)
		return
	}
	c.writeResult(res)
}

// writeResult streams a result: RowDesc, RowBatch chunks of at most
// Options.RowBatch rows (the executor's batch framing carried onto the
// wire), then Done. A nil result (DDL/DML) is just Done. A chunk whose
// encoding exceeds the frame limit retries row by row (WriteFrame
// checks the size before emitting any bytes, so the stream stays
// intact); a single over-limit row terminates the response with an
// Error frame rather than a silently truncated result.
func (c *conn) writeResult(res *engine.Result) {
	if res == nil {
		c.writeDone()
		return
	}
	c.write(&wire.RowDesc{Cols: res.Cols})
	size := c.srv.opts.RowBatch
	for off := 0; off < len(res.Rows); off += size {
		end := off + size
		if end > len(res.Rows) {
			end = len(res.Rows)
		}
		// storage.Tuple aliases []sqltypes.Value, so the result rows
		// chunk straight into frames — no per-batch copy.
		if err := c.write(&wire.RowBatch{Rows: res.Rows[off:end]}); err != nil {
			if !errors.Is(err, wire.ErrFrameTooLarge) {
				return // I/O failure: the connection is gone, stop writing
			}
			for _, row := range res.Rows[off:end] {
				if err := c.write(&wire.RowBatch{Rows: [][]sqltypes.Value{row}}); err != nil {
					if errors.Is(err, wire.ErrFrameTooLarge) {
						c.writeError(fmt.Errorf("result row exceeds the %d-byte frame limit", wire.MaxFrameLen))
					}
					return
				}
			}
		}
	}
	c.writeDone()
}

// write emits one frame; failures are logged and returned so response
// writers can terminate with an Error frame instead of dropping frames
// silently.
func (c *conn) write(m wire.Message) error {
	if err := wire.WriteMessageBuf(c.bw, m, &c.enc); err != nil {
		c.srv.opts.Logf("server: %s write: %v", c.nc.RemoteAddr(), err)
		return err
	}
	// c.enc still holds the frame's payload after the buffered write.
	c.srv.metrics.noteOut(m.Type(), len(c.enc.Bytes()))
	return nil
}

func (c *conn) writeDone() { c.write(&wire.Done{Tag: "OK"}) }

// writeError terminates a response with an Error frame, classifying the
// engine's retryable sentinels so remote callers can errors.Is them
// (the client package re-wraps the code back onto the sentinel).
func (c *conn) writeError(err error) {
	code := wire.CodeGeneric
	switch {
	case errors.Is(err, engine.ErrSerialization):
		code = wire.CodeSerialization
	case errors.Is(err, engine.ErrTxnAborted):
		code = wire.CodeTxnAborted
	}
	c.write(&wire.Error{Code: code, Message: err.Error()})
}

package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test", "quantile fixture", []float64{1, 2, 4, 8})

	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("empty histogram should report NaN, got %v", h.Quantile(0.5))
	}

	// 100 observations spread uniformly over (0,1]: every one lands in the
	// first bucket, so the interpolated median is mid-bucket.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i+1) / 100)
	}
	if got := h.Quantile(0.50); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 of uniform (0,1] = %v, want 0.5", got)
	}
	if got := h.Quantile(1.0); got != 1 {
		t.Errorf("p100 should clamp to the bucket bound, got %v", got)
	}

	// Push 100 more into the (2,4] bucket: the median rank now falls
	// exactly at the boundary between the two populated buckets.
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p25 = %v, want 0.5", got)
	}
	if got := h.Quantile(0.75); math.Abs(got-3) > 1e-9 {
		t.Errorf("p75 = %v, want 3 (midpoint of (2,4])", got)
	}

	// Overflow: everything above the last finite bound clamps there.
	over := r.Histogram("q_over", "overflow fixture", []float64{1, 2})
	for i := 0; i < 10; i++ {
		over.Observe(100)
	}
	if got := over.Quantile(0.99); got != 2 {
		t.Errorf("overflow p99 = %v, want clamp to 2", got)
	}
}

func TestGatherQuantiles(t *testing.T) {
	r := NewRegistry()
	empty := r.Histogram("g_empty", "no observations", DurationBuckets)
	_ = empty
	h := r.Histogram("g_full", "with observations", DurationBuckets)
	for i := 0; i < 50; i++ {
		h.Observe(0.003)
	}

	for _, m := range r.Gather() {
		s := m.Samples[0]
		switch m.Name {
		case "g_empty":
			if s.P50 != nil || s.P95 != nil || s.P99 != nil {
				t.Errorf("empty histogram should omit quantiles, got p50=%v", s.P50)
			}
		case "g_full":
			if s.P50 == nil || s.P95 == nil || s.P99 == nil {
				t.Fatalf("populated histogram missing quantiles: %+v", s)
			}
			// 0.003 lands in the (0.0025, 0.005] bucket.
			if *s.P50 <= 0.0025 || *s.P50 > 0.005 {
				t.Errorf("p50 = %v, want inside (0.0025, 0.005]", *s.P50)
			}
			if *s.P99 < *s.P50 {
				t.Errorf("p99 %v < p50 %v", *s.P99, *s.P50)
			}
		}
	}
}

func TestJSONHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_requests_total", "requests").Add(7)
	h := r.Histogram("j_latency_seconds", "latency", DurationBuckets)
	h.Observe(0.01)
	h.Observe(0.02)

	rec := httptest.NewRecorder()
	JSONHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var metrics []Metric
	if err := json.Unmarshal(rec.Body.Bytes(), &metrics); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	byName := map[string]Metric{}
	for _, m := range metrics {
		byName[m.Name] = m
	}
	if c, ok := byName["j_requests_total"]; !ok || c.Samples[0].Value == nil || *c.Samples[0].Value != 7 {
		t.Errorf("counter sample wrong: %+v", c)
	}
	lat, ok := byName["j_latency_seconds"]
	if !ok || len(lat.Samples) != 1 {
		t.Fatalf("latency family missing: %+v", lat)
	}
	s := lat.Samples[0]
	if s.Count == nil || *s.Count != 2 || s.P50 == nil || s.P95 == nil {
		t.Errorf("latency sample missing count/quantiles: %+v", s)
	}

	// The mux must serve it at /metrics.json alongside /metrics.
	rec2 := httptest.NewRecorder()
	NewMux(r).ServeHTTP(rec2, httptest.NewRequest("GET", "/metrics.json", nil))
	if rec2.Code != 200 || !strings.Contains(rec2.Body.String(), "j_latency_seconds") {
		t.Errorf("mux /metrics.json: code=%d body=%q", rec2.Code, rec2.Body.String())
	}
}

func TestProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)

	vals := map[string]float64{}
	for _, m := range r.Gather() {
		if len(m.Samples) == 1 && m.Samples[0].Value != nil {
			vals[m.Name] = *m.Samples[0].Value
		}
	}
	if vals["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", vals["go_goroutines"])
	}
	if vals["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v, want > 0", vals["go_heap_alloc_bytes"])
	}
	if _, ok := vals["go_gc_pause_total_ns"]; !ok {
		t.Errorf("go_gc_pause_total_ns not gathered")
	}
	// RSS is Linux-procfs-backed; on platforms without /proc it reports 0,
	// so only assert positivity where the file exists.
	if rss, ok := vals["process_resident_memory_bytes"]; !ok {
		t.Errorf("process_resident_memory_bytes not gathered")
	} else if rss == 0 {
		t.Logf("RSS reported 0 (no procfs?); skipping positivity check")
	} else if rss < 1<<20 {
		t.Errorf("RSS = %v bytes, implausibly small", rss)
	}

	// Re-registering must replace callbacks, not panic (benchmark harness
	// registers per-run over a shared registry).
	RegisterProcessMetrics(r)
}

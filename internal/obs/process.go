package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// RegisterProcessMetrics publishes process-level health series into r as
// render-time gauges — nothing is sampled until a scrape reads them, so
// registering costs nothing on the hot path:
//
//	process_resident_memory_bytes  RSS from /proc/self/statm (0 where absent)
//	go_goroutines                  runtime.NumGoroutine
//	go_gc_pause_total_ns           cumulative stop-the-world pause time
//	go_heap_alloc_bytes            live heap (runtime.MemStats.HeapAlloc)
//
// The MemStats-backed gauges each pay a ReadMemStats at scrape time —
// microseconds on modern runtimes, and only when something scrapes.
func RegisterProcessMetrics(r *Registry) {
	pageSize := int64(os.Getpagesize())
	r.GaugeFunc("process_resident_memory_bytes",
		"Resident set size in bytes, read from /proc/self/statm.",
		func() int64 { return residentBytes(pageSize) })
	r.GaugeFunc("go_goroutines",
		"Number of live goroutines.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_gc_pause_total_ns",
		"Cumulative garbage-collection stop-the-world pause time in nanoseconds.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.PauseTotalNs)
		})
	r.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of live heap objects (runtime.MemStats.HeapAlloc).",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.HeapAlloc)
		})
}

// residentBytes reads the RSS page count (second field) from
// /proc/self/statm. Platforms without procfs report 0 — a visible
// "unsupported" marker rather than an error the scrape would choke on.
func residentBytes(pageSize int64) int64 {
	raw, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(raw))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * pageSize
}

package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// JSONHandler serves the registry as a Gather() snapshot — the same
// structure BENCH_*.json embeds, with p50/p95/p99 summaries on every
// histogram so dashboards don't have to re-derive quantiles from the
// bucket counts.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Gather())
	})
}

// NewMux builds the observability endpoint plsqld serves on
// -metrics-addr: /metrics (Prometheus text), /metrics.json (Gather
// snapshot with quantile summaries), plus the standard net/http/pprof
// handlers under /debug/pprof/. The pprof routes are registered
// explicitly on a private mux — importing net/http/pprof for its
// DefaultServeMux side effect would leak the profiler onto any other
// default-mux listener the process opens.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

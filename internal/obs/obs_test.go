package obs

import (
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Upsert: same name returns the same handle.
	if c2 := r.Counter("test_total", "a counter"); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("test_active", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_frames_total", "frames", "type")
	v.With("query").Add(3)
	v.With("done").Inc()
	if v.With("query").Value() != 3 || v.With("done").Value() != 1 {
		t.Fatal("labeled counters diverged")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket 0
	h.Observe(0.05)  // bucket 1
	h.Observe(0.05)  // bucket 1
	h.Observe(5)     // +Inf overflow
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-5.105) > 1e-9 {
		t.Fatalf("sum = %v, want 5.105", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		`test_seconds_count 4`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestFuncMetricsReplace(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("test_commits_total", "commits", func() int64 { return 10 })
	r.CounterFunc("test_commits_total", "commits", func() int64 { return 42 })
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "test_commits_total 42") {
		t.Fatalf("func counter did not replace: %s", b.String())
	}
}

// sampleLine matches one Prometheus text sample: name, optional label
// set, and a float value.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

// parsePromText is a strict parser for the exposition format subset the
// registry emits. It returns the sample values keyed by "name{labels}"
// and fails the test on any malformed line — this is the
// "/metrics output verified Prometheus-text-parseable" acceptance check.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil && m[3] != "NaN" && !strings.HasSuffix(m[3], "Inf") {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		// Every sample must belong to a declared family (histograms emit
		// under name_bucket/_sum/_count).
		base := m[1]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(base, suf); fam != base && typed[fam] == "histogram" {
				base = fam
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

func TestWriteTextParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(3)
	r.Gauge("b_active", "b").Set(-1)
	r.CounterVec("c_total", "c", "phase").With("plan").Add(2)
	r.Histogram("d_seconds", "d", DurationBuckets).ObserveDuration(3 * time.Millisecond)
	r.GaugeFunc("e_size", "e", func() int64 { return 9 })
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, b.String())
	if samples["a_total"] != 3 {
		t.Fatalf("a_total = %v", samples["a_total"])
	}
	if samples[`c_total{phase="plan"}`] != 2 {
		t.Fatalf("labeled sample missing: %v", samples)
	}
	if samples["d_seconds_count"] != 1 {
		t.Fatalf("histogram count = %v", samples["d_seconds_count"])
	}
	if samples[`d_seconds_bucket{le="+Inf"}`] != 1 {
		t.Fatalf("+Inf bucket = %v", samples[`d_seconds_bucket{le="+Inf"}`])
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	parsePromText(t, strings.TrimRight(body, "\n"))
	if !strings.Contains(body, "hits_total 1") {
		t.Fatalf("metrics body missing counter: %s", body)
	}
	// pprof index answers too.
	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("pprof index status %d", pp.StatusCode)
	}
}

func TestGather(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Add(2)
	h := r.Histogram("y_seconds", "y", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100)
	ms := r.Gather()
	if len(ms) != 2 {
		t.Fatalf("gathered %d families, want 2", len(ms))
	}
	if ms[0].Name != "x_total" || *ms[0].Samples[0].Value != 2 {
		t.Fatalf("counter snapshot wrong: %+v", ms[0])
	}
	y := ms[1]
	if y.Type != "histogram" || *y.Samples[0].Count != 2 || len(y.Samples[0].Buckets) != 2 {
		t.Fatalf("histogram snapshot wrong: %+v", y)
	}
	if y.Samples[0].Buckets[0].Count != 1 {
		t.Fatalf("bucket cum count = %d, want 1", y.Samples[0].Buckets[0].Count)
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines —
// increments, vec lookups, histogram observes, and renders racing — and
// then checks the totals. Run with -race this is the registry's
// thread-safety proof.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("conc_total", "x")
			v := r.CounterVec("conc_vec_total", "x", "who")
			h := r.Histogram("conc_seconds", "x", DurationBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.With([]string{"a", "b", "c"}[i%3]).Inc()
				h.Observe(float64(i%100) / 1000)
				if i%500 == 0 {
					var b strings.Builder
					r.WriteText(&b)
					r.Gather()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "x").Value(); got != workers*perWorker {
		t.Fatalf("lost updates: %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("conc_seconds", "x", DurationBuckets)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram lost observations: %d", h.Count())
	}
	var b strings.Builder
	r.WriteText(&b)
	parsePromText(t, b.String())
}

// Package obs is the engine's metrics substrate: a dependency-free,
// lock-light registry of counters, gauges, and fixed-bucket histograms
// that renders in the Prometheus text exposition format.
//
// Design constraints, in order:
//
//   - the hot path pays atomics only. A metric handle (*Counter, *Gauge,
//     *Histogram) is grabbed once at wiring time; Inc/Add/Observe are
//     lock-free atomic operations, so publishing from the commit path or
//     a per-frame server loop costs nanoseconds;
//   - registration is idempotent ("upsert"): asking for an existing name
//     returns the existing metric, so several engines may share one
//     registry (the benchmark harness does) and the series accumulate.
//     Func-backed metrics instead replace their callback — last engine
//     wins, which is what a sequential benchmark wants;
//   - rendering is deterministic: families sort by name, labeled children
//     by label value, so golden tests and scrape diffs are stable.
//
// The package imports only the standard library and sits at the bottom of
// the repo's import graph — storage, wal, plan, exec, engine, and server
// all publish into it without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; they render as-is).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 (active sessions, queue depths).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (use negative deltas on release paths).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: cumulative-on-render bucket
// counts, a float64 sum, and a total count, all maintained with atomics.
// Observe scans the (small, fixed) upper-bound list — no allocation, no
// locks.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, per-bucket (non-cumulative)
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds (the Prometheus base unit).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reports how many observations the histogram has absorbed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts,
// linearly interpolating inside the bucket the rank lands in — the same
// estimate Prometheus's histogram_quantile computes server-side. The
// overflow (+Inf) bucket clamps to the largest finite bound, and an
// empty histogram reports NaN. The estimate is only as fine as the
// bucket grid; use it for operator-facing summaries, not assertions.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, bound := range h.bounds {
		n := h.counts[i].Load()
		if float64(cum)+float64(n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if n == 0 {
				return bound
			}
			return lo + (bound-lo)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// DurationBuckets are the latency bounds (seconds) every latency
// histogram in the engine uses: 5µs .. 10s, roughly ×2.5 per step —
// wide enough to hold both a plan-cache hit and a cold WAL fsync.
var DurationBuckets = []float64{
	0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// CountBuckets suit small cardinalities (group-commit batch sizes,
// rows per batch): 1 .. 4096, ×2 per step.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// metricKind tags a family for TYPE lines and snapshots.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one registered metric name: either a single unlabeled child
// or a set of children keyed by one label's values.
type family struct {
	name  string
	help  string
	kind  metricKind
	label string // "" = unlabeled

	mu       sync.Mutex
	children map[string]*child // label value → child ("" for unlabeled)
	bounds   []float64         // histogram families only
}

// child is one concrete series: exactly one of the handles is non-nil.
// fn-backed series are read at render time (cheap snapshots over state
// that already maintains its own atomics — storage stats, cache sizes).
type child struct {
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64
}

func (c *child) value() int64 {
	switch {
	case c.fn != nil:
		return c.fn()
	case c.counter != nil:
		return c.counter.Value()
	case c.gauge != nil:
		return c.gauge.Value()
	}
	return 0
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. Registration takes a mutex (wiring time only); the
// returned handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating if needed) the family for name, enforcing
// kind/label agreement. Registration conflicts panic: they are wiring
// bugs, never data-dependent.
func (r *Registry) lookup(name, help string, kind metricKind, label string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/label=%q (was %s/label=%q)",
				name, kind, label, f.kind, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label,
		children: make(map[string]*child), bounds: bounds}
	r.families[name] = f
	return f
}

// ensure returns the child for label value lv, creating it with mk.
func (f *family) ensure(lv string, mk func() *child) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[lv]; ok {
		return c
	}
	c := mk()
	f.children[lv] = c
	return c
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, "", nil)
	c := f.ensure("", func() *child { return &child{counter: &Counter{}} })
	return c.counter
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, "", nil)
	c := f.ensure("", func() *child { return &child{gauge: &Gauge{}} })
	return c.gauge
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// ascending upper bounds (+Inf implied).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, kindHistogram, "", bounds)
	c := f.ensure("", func() *child {
		return &child{hist: &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}}
	})
	return c.hist
}

// CounterFunc registers a counter whose value is read from fn at render
// time — the bridge for subsystems that already keep their own atomic
// counters (storage.Stats, the plan cache). Re-registration replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.lookup(name, help, kindCounter, "", nil)
	f.mu.Lock()
	f.children[""] = &child{fn: fn}
	f.mu.Unlock()
}

// GaugeFunc registers a render-time gauge. Re-registration replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	f := r.lookup(name, help, kindGauge, "", nil)
	f.mu.Lock()
	f.children[""] = &child{fn: fn}
	f.mu.Unlock()
}

// CounterVec registers a counter family keyed by one label. Grab child
// handles with With at wiring time; With takes the family mutex.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, kindCounter, label, nil)}
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	c := v.f.ensure(value, func() *child { return &child{counter: &Counter{}} })
	return c.counter
}

// ---------------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------------

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, samples sorted by family
// name then label value, histograms as cumulative _bucket/_sum/_count.
func (r *Registry) WriteText(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, lv := range f.sortedValues() {
			f.mu.Lock()
			c := f.children[lv]
			f.mu.Unlock()
			if c.hist != nil {
				writeHistogram(&b, f, lv, c.hist)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelSuffix(f.label, lv), formatFloat(float64(c.value())))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, f *family, lv string, h *Histogram) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketSuffix(f.label, lv, formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketSuffix(f.label, lv, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelSuffix(f.label, lv), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelSuffix(f.label, lv), h.Count())
}

func labelSuffix(label, value string) string {
	if label == "" {
		return ""
	}
	return "{" + label + "=" + strconv.Quote(value) + "}"
}

func bucketSuffix(label, value, le string) string {
	if label == "" {
		return `{le="` + le + `"}`
	}
	return "{" + label + "=" + strconv.Quote(value) + `,le="` + le + `"}`
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedValues() []string {
	f.mu.Lock()
	vals := make([]string, 0, len(f.children))
	for lv := range f.children {
		vals = append(vals, lv)
	}
	f.mu.Unlock()
	sort.Strings(vals)
	return vals
}

// ---------------------------------------------------------------------------
// structured snapshots (benchrunner -metrics)
// ---------------------------------------------------------------------------

// Bucket is one histogram bucket in a snapshot (cumulative count).
type Bucket struct {
	LE    float64 `json:"le"` // +Inf encodes as math.Inf(1) → JSON omits; see Snapshot
	Count int64   `json:"count"`
}

// Sample is one concrete series in a snapshot.
type Sample struct {
	Label   string   `json:"label,omitempty"`
	Value   *float64 `json:"value,omitempty"` // counters and gauges
	Count   *int64   `json:"count,omitempty"` // histograms
	Sum     *float64 `json:"sum,omitempty"`
	P50     *float64 `json:"p50,omitempty"` // interpolated quantiles (see Histogram.Quantile)
	P95     *float64 `json:"p95,omitempty"`
	P99     *float64 `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"` // finite bounds only; Count is the +Inf total
}

// Metric is one family in a snapshot.
type Metric struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"`
	Label   string   `json:"label,omitempty"`
	Samples []Sample `json:"samples"`
}

// Gather snapshots every family into a JSON-encodable form, sorted like
// WriteText. Benchmark reports embed it so BENCH_*.json carries the
// fsync-latency and plan-cache series alongside throughput numbers.
func (r *Registry) Gather() []Metric {
	var out []Metric
	for _, f := range r.sortedFamilies() {
		m := Metric{Name: f.name, Type: f.kind.String(), Label: f.label}
		for _, lv := range f.sortedValues() {
			f.mu.Lock()
			c := f.children[lv]
			f.mu.Unlock()
			s := Sample{Label: lv}
			if c.hist != nil {
				cum := int64(0)
				for i, bound := range c.hist.bounds {
					cum += c.hist.counts[i].Load()
					s.Buckets = append(s.Buckets, Bucket{LE: bound, Count: cum})
				}
				n, sum := c.hist.Count(), c.hist.Sum()
				s.Count, s.Sum = &n, &sum
				// NaN (empty or bucketless histogram) is not JSON-encodable;
				// leave the quantile fields off instead.
				if p50 := c.hist.Quantile(0.50); !math.IsNaN(p50) {
					p95, p99 := c.hist.Quantile(0.95), c.hist.Quantile(0.99)
					s.P50, s.P95, s.P99 = &p50, &p95, &p99
				}
			} else {
				v := float64(c.value())
				s.Value = &v
			}
			m.Samples = append(m.Samples, s)
		}
		out = append(out, m)
	}
	return out
}

package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Arithmetic and logical operators with SQL NULL propagation. These are the
// primitives both the interpreter's fast path and the executor's compiled
// expressions bottom out in, so interpreted and compiled evaluation cannot
// drift apart.

// Add returns a + b (numeric) with NULL propagation.
func Add(a, b Value) (Value, error) { return numericBinop("+", a, b) }

// Sub returns a - b.
func Sub(a, b Value) (Value, error) { return numericBinop("-", a, b) }

// Mul returns a * b.
func Mul(a, b Value) (Value, error) { return numericBinop("*", a, b) }

// Div returns a / b. Integer division truncates toward zero, like
// PostgreSQL's int4div.
func Div(a, b Value) (Value, error) { return numericBinop("/", a, b) }

// Mod returns a % b for integers.
func Mod(a, b Value) (Value, error) { return numericBinop("%", a, b) }

func numericBinop(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("sqltypes: operator %s expects numeric operands, got %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		x, y := a.i, b.i
		switch op {
		case "+":
			return NewInt(x + y), nil
		case "-":
			return NewInt(x - y), nil
		case "*":
			return NewInt(x * y), nil
		case "/":
			if y == 0 {
				return Null, fmt.Errorf("sqltypes: division by zero")
			}
			return NewInt(x / y), nil
		case "%":
			if y == 0 {
				return Null, fmt.Errorf("sqltypes: division by zero")
			}
			return NewInt(x % y), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return NewFloat(x + y), nil
	case "-":
		return NewFloat(x - y), nil
	case "*":
		return NewFloat(x * y), nil
	case "/":
		if y == 0 {
			return Null, fmt.Errorf("sqltypes: division by zero")
		}
		return NewFloat(x / y), nil
	case "%":
		if y == 0 {
			return Null, fmt.Errorf("sqltypes: division by zero")
		}
		return NewFloat(math.Mod(x, y)), nil
	}
	return Null, fmt.Errorf("sqltypes: unknown operator %s", op)
}

// Neg returns -a.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-a.i), nil
	case KindFloat:
		return NewFloat(-a.f), nil
	}
	return Null, fmt.Errorf("sqltypes: unary - expects numeric operand, got %s", a.kind)
}

// Concat returns a || b. Non-text operands are rendered with String, as
// PostgreSQL's text || anynonarray does.
func Concat(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	return NewText(a.String() + b.String()), nil
}

// CompareOp evaluates a comparison operator (=, <>, <, <=, >, >=) under
// three-valued logic: NULL operands yield NULL.
func CompareOp(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	c, err := Compare(a, b)
	if err != nil {
		return Null, err
	}
	switch op {
	case "=":
		return NewBool(c == 0), nil
	case "<>", "!=":
		return NewBool(c != 0), nil
	case "<":
		return NewBool(c < 0), nil
	case "<=":
		return NewBool(c <= 0), nil
	case ">":
		return NewBool(c > 0), nil
	case ">=":
		return NewBool(c >= 0), nil
	}
	return Null, fmt.Errorf("sqltypes: unknown comparison %s", op)
}

// And implements SQL three-valued AND.
func And(a, b Value) (Value, error) {
	if err := wantBoolOrNull("AND", a, b); err != nil {
		return Null, err
	}
	// false AND x = false, even for NULL x.
	if (a.kind == KindBool && !a.b) || (b.kind == KindBool && !b.b) {
		return NewBool(false), nil
	}
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	return NewBool(a.b && b.b), nil
}

// Or implements SQL three-valued OR.
func Or(a, b Value) (Value, error) {
	if err := wantBoolOrNull("OR", a, b); err != nil {
		return Null, err
	}
	if (a.kind == KindBool && a.b) || (b.kind == KindBool && b.b) {
		return NewBool(true), nil
	}
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	return NewBool(a.b || b.b), nil
}

// Not implements SQL three-valued NOT.
func Not(a Value) (Value, error) {
	if a.IsNull() {
		return Null, nil
	}
	if a.kind != KindBool {
		return Null, fmt.Errorf("sqltypes: NOT expects boolean, got %s", a.kind)
	}
	return NewBool(!a.b), nil
}

func wantBoolOrNull(op string, vs ...Value) error {
	for _, v := range vs {
		if !v.IsNull() && v.kind != KindBool {
			return fmt.Errorf("sqltypes: %s expects boolean operands, got %s", op, v.kind)
		}
	}
	return nil
}

// Type is a static type descriptor used by catalogs, function signatures,
// and the compiler (which needs declared types for CAST(NULL AS τ) and the
// run-table schema).
type Type struct {
	Kind Kind
}

// Predeclared types.
var (
	TypeBool  = Type{Kind: KindBool}
	TypeInt   = Type{Kind: KindInt}
	TypeFloat = Type{Kind: KindFloat}
	TypeText  = Type{Kind: KindText}
	TypeCoord = Type{Kind: KindCoord}
	TypeRow   = Type{Kind: KindRow}
)

// String returns the canonical SQL name of the type.
func (t Type) String() string {
	switch t.Kind {
	case KindBool:
		return "boolean"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindText:
		return "text"
	case KindCoord:
		return "coord"
	case KindRow:
		return "record"
	default:
		return "unknown"
	}
}

// ParseType resolves a SQL type name (with the usual PostgreSQL aliases) to
// a Type.
func ParseType(name string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "bool", "boolean":
		return TypeBool, nil
	case "int", "integer", "int4", "int8", "bigint", "smallint":
		return TypeInt, nil
	case "float", "float4", "float8", "real", "double precision", "numeric", "decimal":
		return TypeFloat, nil
	case "text", "varchar", "char", "character varying", "string":
		return TypeText, nil
	case "coord":
		return TypeCoord, nil
	case "record", "row":
		return TypeRow, nil
	default:
		return Type{}, fmt.Errorf("sqltypes: unknown type %q", name)
	}
}

// Cast converts v to type t following PostgreSQL's cast rules for the kinds
// we support. NULL casts to NULL of any type.
func Cast(v Value, t Type) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	if v.kind == t.Kind {
		return v, nil
	}
	switch t.Kind {
	case KindBool:
		switch v.kind {
		case KindText:
			switch strings.ToLower(strings.TrimSpace(v.s)) {
			case "t", "true", "yes", "on", "1":
				return NewBool(true), nil
			case "f", "false", "no", "off", "0":
				return NewBool(false), nil
			}
			return Null, fmt.Errorf("sqltypes: invalid input for boolean: %q", v.s)
		case KindInt:
			return NewBool(v.i != 0), nil
		}
	case KindInt:
		switch v.kind {
		case KindFloat:
			if math.IsNaN(v.f) || math.IsInf(v.f, 0) {
				return Null, fmt.Errorf("sqltypes: cannot cast %s to int", formatFloat(v.f))
			}
			return NewInt(int64(math.RoundToEven(v.f))), nil
		case KindBool:
			if v.b {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		case KindText:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("sqltypes: invalid input for int: %q", v.s)
			}
			return NewInt(i), nil
		}
	case KindFloat:
		switch v.kind {
		case KindInt:
			return NewFloat(float64(v.i)), nil
		case KindText:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Null, fmt.Errorf("sqltypes: invalid input for float: %q", v.s)
			}
			return NewFloat(f), nil
		}
	case KindText:
		return NewText(v.String()), nil
	case KindCoord:
		if v.kind == KindRow && len(v.row) == 2 {
			x, err := Cast(v.row[0], TypeInt)
			if err != nil {
				return Null, err
			}
			y, err := Cast(v.row[1], TypeInt)
			if err != nil {
				return Null, err
			}
			if x.IsNull() || y.IsNull() {
				return Null, fmt.Errorf("sqltypes: coord fields must be non-null")
			}
			return NewCoord(x.i, y.i), nil
		}
		if v.kind == KindText {
			return parseCoordText(v.s)
		}
	case KindRow:
		if v.kind == KindCoord {
			return NewRow([]Value{v.row[0], v.row[1]}), nil
		}
	}
	return Null, fmt.Errorf("sqltypes: cannot cast %s to %s", v.kind, t)
}

func parseCoordText(s string) (Value, error) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, "(") || !strings.HasSuffix(t, ")") {
		return Null, fmt.Errorf("sqltypes: invalid coord literal %q", s)
	}
	parts := strings.Split(t[1:len(t)-1], ",")
	if len(parts) != 2 {
		return Null, fmt.Errorf("sqltypes: invalid coord literal %q", s)
	}
	x, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return Null, fmt.Errorf("sqltypes: invalid coord literal %q", s)
	}
	y, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return Null, fmt.Errorf("sqltypes: invalid coord literal %q", s)
	}
	return NewCoord(x, y), nil
}

// SizeBytes returns the on-page payload size of the value, used by the
// storage layer's buffer accounting (Table 2). It mirrors PostgreSQL's
// datum widths: 1 byte for bool, 8 for int/float, length for text (short
// varlena header folded into the tuple header constant), 16 for coord.
func SizeBytes(v Value) int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 8
	case KindText:
		return len(v.s)
	case KindCoord:
		return 16
	case KindRow:
		n := 4 // field count word
		for _, f := range v.row {
			n += 1 + SizeBytes(f) // per-field kind tag
		}
		return n
	default:
		return 0
	}
}

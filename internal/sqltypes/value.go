// Package sqltypes implements the dynamic value system shared by the SQL
// engine, the PL/SQL interpreter, and the compiler.
//
// Values are dynamically typed, mirroring the way PostgreSQL Datums flow
// through the executor. The supported kinds cover everything the paper's
// workloads need: NULL, booleans, 64-bit integers, 64-bit floats, text,
// the composite type coord (the robot's grid position), and anonymous row
// values (used by the WITH RECURSIVE template to carry encoded calls).
package sqltypes

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The value kinds, ordered so that NULL sorts first (PostgreSQL's NULLS
// LAST/FIRST handling is done by the sort node, but cross-kind comparisons
// need a deterministic total order for hashing and testing).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindText
	KindCoord
	KindRow
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindText:
		return "text"
	case KindCoord:
		return "coord"
	case KindRow:
		return "row"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value. The zero Value is SQL NULL.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	row  []Value // fields for KindRow; [x, y] ints for KindCoord
}

// Null is the SQL NULL value.
var Null = Value{kind: KindNull}

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{kind: KindBool, b: b} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewText returns a text value.
func NewText(s string) Value { return Value{kind: KindText, s: s} }

// NewCoord returns a coord value (the paper's composite grid-cell type).
func NewCoord(x, y int64) Value {
	return Value{kind: KindCoord, row: []Value{NewInt(x), NewInt(y)}}
}

// NewRow returns an anonymous row value with the given fields. The slice is
// not copied; callers must not alias it afterwards.
func NewRow(fields []Value) Value { return Value{kind: KindRow, row: fields} }

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; valid only for KindBool.
func (v Value) Bool() bool { return v.b }

// Int returns the integer payload; valid only for KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload; valid only for KindFloat.
func (v Value) Float() float64 { return v.f }

// Text returns the text payload; valid only for KindText.
func (v Value) Text() string { return v.s }

// Coord returns the (x, y) payload; valid only for KindCoord.
func (v Value) Coord() (x, y int64) { return v.row[0].i, v.row[1].i }

// Row returns the field slice of a row value; valid only for KindRow.
// Callers must not mutate the result.
func (v Value) Row() []Value { return v.row }

// NumFields returns the number of fields of a row or coord value and 0
// otherwise.
func (v Value) NumFields() int {
	if v.kind == KindRow || v.kind == KindCoord {
		return len(v.row)
	}
	return 0
}

// Field returns field i (0-based) of a row or coord value.
func (v Value) Field(i int) Value { return v.row[i] }

// AsFloat widens ints to floats; valid for KindInt and KindFloat.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// IsTrue reports whether v is the boolean TRUE (NULL counts as not true,
// following SQL's three-valued WHERE semantics).
func (v Value) IsTrue() bool { return v.kind == KindBool && v.b }

// String renders the value the way our shell and test goldens print it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return formatFloat(v.f)
	case KindText:
		return v.s
	case KindCoord:
		return fmt.Sprintf("(%d,%d)", v.row[0].i, v.row[1].i)
	case KindRow:
		var sb strings.Builder
		sb.WriteByte('(')
		for i, f := range v.row {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(f.String())
		}
		sb.WriteByte(')')
		return sb.String()
	default:
		return fmt.Sprintf("<bad value kind %d>", v.kind)
	}
}

// SQLLiteral renders the value as a SQL literal that parses back to an
// equal value (used by the compiler when folding constants into emitted
// queries and by golden tests).
func (v Value) SQLLiteral() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		s := formatFloat(v.f)
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
			s += ".0"
		}
		return s
	case KindText:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindCoord:
		return fmt.Sprintf("coord(%d,%d)", v.row[0].i, v.row[1].i)
	case KindRow:
		var sb strings.Builder
		sb.WriteString("ROW(")
		for i, f := range v.row {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.SQLLiteral())
		}
		sb.WriteByte(')')
		return sb.String()
	default:
		return "NULL"
	}
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if math.IsNaN(f) {
		return "NaN"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Equal reports SQL equality treating NULL = NULL as false. Use Identical
// for NULL-aware grouping semantics.
func Equal(a, b Value) (eq bool, null bool) {
	if a.IsNull() || b.IsNull() {
		return false, true
	}
	c, err := Compare(a, b)
	if err != nil {
		return false, false
	}
	return c == 0, false
}

// Identical reports whether two values are indistinguishable, with
// NULL identical to NULL (the semantics GROUP BY, DISTINCT and set
// operations use).
func Identical(a, b Value) bool {
	if a.IsNull() && b.IsNull() {
		return true
	}
	if a.IsNull() != b.IsNull() {
		return false
	}
	if (a.kind == KindRow || a.kind == KindCoord) && (b.kind == KindRow || b.kind == KindCoord) {
		if len(a.row) != len(b.row) {
			return false
		}
		for i := range a.row {
			if !Identical(a.row[i], b.row[i]) {
				return false
			}
		}
		return true
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Compare imposes a total order on non-NULL values of comparable kinds:
// -1, 0, +1. Numeric kinds compare numerically across int/float. Mixed
// incomparable kinds yield an error. NULL input is an error; callers decide
// NULL placement.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("sqltypes: cannot compare NULL")
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, nil
			case a.i > b.i:
				return 1, nil
			}
			return 0, nil
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		case math.IsNaN(af) && !math.IsNaN(bf):
			return 1, nil // NaN sorts last, like PostgreSQL
		case !math.IsNaN(af) && math.IsNaN(bf):
			return -1, nil
		}
		return 0, nil
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("sqltypes: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1, nil
		case a.b && !b.b:
			return 1, nil
		}
		return 0, nil
	case KindText:
		return strings.Compare(a.s, b.s), nil
	case KindCoord, KindRow:
		if len(a.row) != len(b.row) {
			return 0, fmt.Errorf("sqltypes: cannot compare rows of %d and %d fields", len(a.row), len(b.row))
		}
		for i := range a.row {
			c, err := Compare(a.row[i], b.row[i])
			if err != nil {
				return 0, err
			}
			if c != 0 {
				return c, nil
			}
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("sqltypes: kind %s is not comparable", a.kind)
	}
}

// Hash returns a hash consistent with Identical: Identical values hash
// equally. Ints that equal a float hash like the float so that numeric
// join keys of mixed kinds meet in the same bucket.
func Hash(v Value) uint64 {
	h := fnv.New64a()
	hashInto(h, v)
	return h.Sum64()
}

type hasher interface {
	Write(p []byte) (int, error)
}

func hashInto(h hasher, v Value) {
	var tag [1]byte
	switch v.kind {
	case KindNull:
		tag[0] = 0
		h.Write(tag[:])
	case KindBool:
		tag[0] = 1
		if v.b {
			tag[0] = 2
		}
		h.Write(tag[:])
	case KindInt, KindFloat:
		tag[0] = 3
		h.Write(tag[:])
		bits := math.Float64bits(v.AsFloat() + 0) // +0 normalizes -0.0
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	case KindText:
		tag[0] = 4
		h.Write(tag[:])
		h.Write([]byte(v.s))
	case KindCoord, KindRow:
		tag[0] = 5
		h.Write(tag[:])
		for _, f := range v.row {
			hashInto(h, f)
		}
	}
}

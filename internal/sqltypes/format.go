package sqltypes

import (
	"fmt"
	"strings"
)

// FormatTable renders column names and value rows as the aligned text
// table the shell and test goldens print. It is shared by the embedded
// engine's Result and the remote client's Result so local and remote
// sessions render identically.
func FormatTable(cols []string, rows [][]Value) string {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len([]rune(c))
	}
	cells := make([][]string, len(rows))
	for ri, row := range rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len([]rune(s)) > widths[ci] {
				widths[ci] = len([]rune(s))
			}
		}
	}
	var sb strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v)
			for p := len([]rune(v)); p < widths[i] && i < len(vals)-1; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(cols)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&sb, "(%d rows)\n", len(rows))
	return sb.String()
}

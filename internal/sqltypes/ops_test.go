package sqltypes

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestArithmeticInts(t *testing.T) {
	cases := []struct {
		op   func(a, b Value) (Value, error)
		a, b int64
		want int64
	}{
		{Add, 2, 3, 5},
		{Sub, 2, 3, -1},
		{Mul, 4, -3, -12},
		{Div, 7, 2, 3},
		{Div, -7, 2, -3}, // truncation toward zero, like int4div
		{Mod, 7, 3, 1},
		{Mod, -7, 3, -1},
	}
	for _, c := range cases {
		got, err := c.op(NewInt(c.a), NewInt(c.b))
		if err != nil {
			t.Fatalf("op(%d,%d): %v", c.a, c.b, err)
		}
		if got.Kind() != KindInt || got.Int() != c.want {
			t.Errorf("op(%d,%d) = %v, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestArithmeticMixedWidensToFloat(t *testing.T) {
	got, err := Add(NewInt(1), NewFloat(0.5))
	if err != nil || got.Kind() != KindFloat || got.Float() != 1.5 {
		t.Errorf("1 + 0.5 = %v (%v), want 1.5 float", got, err)
	}
	got, err = Div(NewFloat(1), NewInt(4))
	if err != nil || got.Float() != 0.25 {
		t.Errorf("1.0/4 = %v (%v), want 0.25", got, err)
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	for _, op := range []func(a, b Value) (Value, error){Add, Sub, Mul, Div, Mod, Concat} {
		got, err := op(Null, NewInt(1))
		if err != nil || !got.IsNull() {
			t.Errorf("op(NULL, 1) = %v (%v), want NULL", got, err)
		}
		got, err = op(NewInt(1), Null)
		if err != nil || !got.IsNull() {
			t.Errorf("op(1, NULL) = %v (%v), want NULL", got, err)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("1/0 should error")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("1%0 should error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("1.0/0.0 should error")
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	if _, err := Add(NewText("a"), NewInt(1)); err == nil {
		t.Error("'a' + 1 should error")
	}
	if _, err := Neg(NewText("a")); err == nil {
		t.Error("-'a' should error")
	}
}

func TestNeg(t *testing.T) {
	if v, _ := Neg(NewInt(3)); v.Int() != -3 {
		t.Errorf("-3 = %v", v)
	}
	if v, _ := Neg(NewFloat(2.5)); v.Float() != -2.5 {
		t.Errorf("-2.5 = %v", v)
	}
	if v, _ := Neg(Null); !v.IsNull() {
		t.Error("-NULL must be NULL")
	}
}

func TestConcat(t *testing.T) {
	got, _ := Concat(NewText("ab"), NewText("cd"))
	if got.Text() != "abcd" {
		t.Errorf("'ab'||'cd' = %v", got)
	}
	got, _ = Concat(NewText("n="), NewInt(4))
	if got.Text() != "n=4" {
		t.Errorf("'n='||4 = %v", got)
	}
}

func TestCompareOpThreeValued(t *testing.T) {
	v, err := CompareOp("<", NewInt(1), NewInt(2))
	if err != nil || !v.IsTrue() {
		t.Errorf("1<2 = %v (%v)", v, err)
	}
	v, _ = CompareOp("=", Null, NewInt(2))
	if !v.IsNull() {
		t.Error("NULL = 2 must be NULL")
	}
	v, _ = CompareOp("<>", NewText("a"), NewText("b"))
	if !v.IsTrue() {
		t.Error("'a' <> 'b' must be true")
	}
	if _, err := CompareOp("~", NewInt(1), NewInt(1)); err == nil {
		t.Error("unknown operator should error")
	}
}

func TestThreeValuedAndOr(t *testing.T) {
	T, F, N := NewBool(true), NewBool(false), Null
	and := [][3]Value{
		{T, T, T}, {T, F, F}, {F, F, F}, {T, N, N}, {N, T, N}, {F, N, F}, {N, F, F}, {N, N, N},
	}
	for _, c := range and {
		got, err := And(c[0], c[1])
		if err != nil || !Identical(got, c[2]) {
			t.Errorf("AND(%v,%v) = %v (%v), want %v", c[0], c[1], got, err, c[2])
		}
	}
	or := [][3]Value{
		{T, T, T}, {T, F, T}, {F, F, F}, {T, N, T}, {N, T, T}, {F, N, N}, {N, F, N}, {N, N, N},
	}
	for _, c := range or {
		got, err := Or(c[0], c[1])
		if err != nil || !Identical(got, c[2]) {
			t.Errorf("OR(%v,%v) = %v (%v), want %v", c[0], c[1], got, err, c[2])
		}
	}
	if v, _ := Not(T); v.IsTrue() {
		t.Error("NOT true must be false")
	}
	if v, _ := Not(N); !v.IsNull() {
		t.Error("NOT NULL must be NULL")
	}
	if _, err := And(NewInt(1), T); err == nil {
		t.Error("AND on int should error")
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"int": TypeInt, "INTEGER": TypeInt, "bigint": TypeInt,
		"float8": TypeFloat, "double precision": TypeFloat, "numeric": TypeFloat,
		"text": TypeText, "varchar": TypeText,
		"boolean": TypeBool, "coord": TypeCoord, "record": TypeRow,
	}
	for name, want := range cases {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v (%v), want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("unknown type should error")
	}
}

func TestCasts(t *testing.T) {
	cases := []struct {
		v    Value
		t    Type
		want Value
	}{
		{Null, TypeInt, Null},
		{NewInt(1), TypeBool, NewBool(true)},
		{NewInt(0), TypeBool, NewBool(false)},
		{NewText(" true "), TypeBool, NewBool(true)},
		{NewText("f"), TypeBool, NewBool(false)},
		{NewFloat(2.5), TypeInt, NewInt(2)}, // banker's rounding
		{NewFloat(3.5), TypeInt, NewInt(4)},
		{NewBool(true), TypeInt, NewInt(1)},
		{NewText("42"), TypeInt, NewInt(42)},
		{NewInt(2), TypeFloat, NewFloat(2)},
		{NewText("0.5"), TypeFloat, NewFloat(0.5)},
		{NewInt(9), TypeText, NewText("9")},
		{NewCoord(1, 2), TypeText, NewText("(1,2)")},
		{NewRow([]Value{NewInt(1), NewInt(2)}), TypeCoord, NewCoord(1, 2)},
		{NewText("(3, 4)"), TypeCoord, NewCoord(3, 4)},
		{NewCoord(5, 6), TypeRow, NewRow([]Value{NewInt(5), NewInt(6)})},
	}
	for _, c := range cases {
		got, err := Cast(c.v, c.t)
		if err != nil {
			t.Errorf("Cast(%v, %v): %v", c.v, c.t, err)
			continue
		}
		if !Identical(got, c.want) {
			t.Errorf("Cast(%v, %v) = %v, want %v", c.v, c.t, got, c.want)
		}
	}
}

func TestCastErrors(t *testing.T) {
	bad := []struct {
		v Value
		t Type
	}{
		{NewText("abc"), TypeInt},
		{NewText("abc"), TypeFloat},
		{NewText("maybe"), TypeBool},
		{NewFloat(math.NaN()), TypeInt},
		{NewText("1,2"), TypeCoord},
		{NewText("(1;2)"), TypeCoord},
		{NewRow([]Value{NewInt(1)}), TypeCoord},
		{NewBool(true), TypeCoord},
	}
	for _, c := range bad {
		if _, err := Cast(c.v, c.t); err == nil {
			t.Errorf("Cast(%v, %v) should error", c.v, c.t)
		}
	}
}

func TestCastTextRoundTripProperty(t *testing.T) {
	f := func(i int64) bool {
		txt, err := Cast(NewInt(i), TypeText)
		if err != nil {
			return false
		}
		back, err := Cast(txt, TypeInt)
		return err == nil && back.Int() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCommutesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := NewInt(int64(r.Intn(1000))), NewFloat(r.Float64()*100)
		x, err1 := Add(a, b)
		y, err2 := Add(b, a)
		return err1 == nil && err2 == nil && Identical(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytes(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{Null, 0},
		{NewBool(true), 1},
		{NewInt(1), 8},
		{NewFloat(1), 8},
		{NewText("abcd"), 4},
		{NewCoord(1, 2), 16},
	}
	for _, c := range cases {
		if got := SizeBytes(c.v); got != c.want {
			t.Errorf("SizeBytes(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Row size grows with contents — that is what makes Table 2 quadratic.
	small := SizeBytes(NewRow([]Value{NewText(strings.Repeat("x", 10))}))
	big := SizeBytes(NewRow([]Value{NewText(strings.Repeat("x", 100))}))
	if big-small != 90 {
		t.Errorf("row size should grow by payload: small=%d big=%d", small, big)
	}
}

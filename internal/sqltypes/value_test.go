package sqltypes

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "boolean", KindInt: "int",
		KindFloat: "float", KindText: "text", KindCoord: "coord", KindRow: "row",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be NULL")
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v := NewBool(true); !v.Bool() || v.Kind() != KindBool {
		t.Errorf("NewBool broken: %v", v)
	}
	if v := NewInt(-7); v.Int() != -7 {
		t.Errorf("NewInt broken: %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 {
		t.Errorf("NewFloat broken: %v", v)
	}
	if v := NewText("abc"); v.Text() != "abc" {
		t.Errorf("NewText broken: %v", v)
	}
	v := NewCoord(3, 2)
	if x, y := v.Coord(); x != 3 || y != 2 {
		t.Errorf("NewCoord broken: %v", v)
	}
	r := NewRow([]Value{NewInt(1), NewText("x")})
	if r.NumFields() != 2 || r.Field(1).Text() != "x" {
		t.Errorf("NewRow broken: %v", r)
	}
	if NewInt(1).NumFields() != 0 {
		t.Error("scalar NumFields should be 0")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(42), "42"},
		{NewFloat(1.5), "1.5"},
		{NewFloat(math.Inf(1)), "Infinity"},
		{NewFloat(math.Inf(-1)), "-Infinity"},
		{NewText("hi"), "hi"},
		{NewCoord(3, 2), "(3,2)"},
		{NewRow([]Value{NewInt(1), Null}), "(1,NULL)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewInt(-3), "-3"},
		{NewFloat(2), "2.0"},
		{NewFloat(0.25), "0.25"},
		{NewText("o'clock"), "'o''clock'"},
		{NewCoord(1, 2), "coord(1,2)"},
		{NewRow([]Value{NewInt(1), NewText("a")}), "ROW(1, 'a')"},
	}
	for _, c := range cases {
		if got := c.v.SQLLiteral(); got != c.want {
			t.Errorf("SQLLiteral(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	c, err := Compare(NewInt(2), NewFloat(2.5))
	if err != nil || c != -1 {
		t.Errorf("Compare(2, 2.5) = %d, %v; want -1", c, err)
	}
	c, err = Compare(NewFloat(3), NewInt(3))
	if err != nil || c != 0 {
		t.Errorf("Compare(3.0, 3) = %d, %v; want 0", c, err)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Null, NewInt(1)); err == nil {
		t.Error("Compare with NULL should error")
	}
	if _, err := Compare(NewInt(1), NewText("a")); err == nil {
		t.Error("Compare int vs text should error")
	}
	if _, err := Compare(NewRow([]Value{NewInt(1)}), NewRow([]Value{NewInt(1), NewInt(2)})); err == nil {
		t.Error("Compare rows of different arity should error")
	}
}

func TestCompareRowsAndCoords(t *testing.T) {
	a, b := NewCoord(1, 2), NewCoord(1, 3)
	if c, _ := Compare(a, b); c != -1 {
		t.Errorf("coord compare broken: got %d", c)
	}
	if c, _ := Compare(b, a); c != 1 {
		t.Errorf("coord compare broken: got %d", c)
	}
	if c, _ := Compare(a, a); c != 0 {
		t.Errorf("coord compare broken: got %d", c)
	}
}

func TestEqualNullSemantics(t *testing.T) {
	eq, null := Equal(Null, NewInt(1))
	if eq || !null {
		t.Error("NULL = 1 must be NULL")
	}
	eq, null = Equal(NewInt(1), NewInt(1))
	if !eq || null {
		t.Error("1 = 1 must be true")
	}
}

func TestIdentical(t *testing.T) {
	if !Identical(Null, Null) {
		t.Error("NULL must be identical to NULL")
	}
	if Identical(Null, NewInt(0)) {
		t.Error("NULL must not be identical to 0")
	}
	if !Identical(NewCoord(1, 2), NewRow([]Value{NewInt(1), NewInt(2)})) {
		t.Error("coord should be identical to an equal 2-field row")
	}
	if Identical(NewRow([]Value{Null}), NewRow([]Value{NewInt(0)})) {
		t.Error("row(NULL) must differ from row(0)")
	}
	if !Identical(NewRow([]Value{Null, NewInt(2)}), NewRow([]Value{Null, NewInt(2)})) {
		t.Error("rows with equal NULL pattern must be identical")
	}
}

func TestHashConsistentWithIdentical(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(3), NewFloat(3)},
		{NewCoord(4, 5), NewRow([]Value{NewInt(4), NewInt(5)})},
		{Null, Null},
		{NewText("x"), NewText("x")},
		{NewFloat(0), NewFloat(math.Copysign(0, -1))},
	}
	for _, p := range pairs {
		if !Identical(p[0], p[1]) {
			t.Errorf("expected Identical(%v, %v)", p[0], p[1])
			continue
		}
		if Hash(p[0]) != Hash(p[1]) {
			t.Errorf("Hash(%v) != Hash(%v) although identical", p[0], p[1])
		}
	}
	if Hash(NewText("a")) == Hash(NewText("b")) {
		t.Error("suspicious hash collision for 'a' vs 'b'")
	}
}

// randValue generates a random scalar value for property tests.
func randValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return NewInt(int64(r.Intn(200) - 100))
	case 1:
		return NewFloat(float64(r.Intn(400)-200) / 4)
	case 2:
		return NewText(string(rune('a' + r.Intn(26))))
	case 3:
		return NewBool(r.Intn(2) == 0)
	default:
		return NewCoord(int64(r.Intn(10)), int64(r.Intn(10)))
	}
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	// Antisymmetry and transitivity on same-kind triples.
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		kind := r.Intn(5)
		gen := func() Value {
			rr := rand.New(rand.NewSource(r.Int63()))
			for {
				v := randValue(rr)
				if int(v.Kind())-1 == kind || (kind <= 1 && v.IsNumeric()) {
					return v
				}
			}
		}
		a, b, c := gen(), gen(), gen()
		ab, err1 := Compare(a, b)
		ba, err2 := Compare(b, a)
		if err1 != nil || err2 != nil {
			return true // mixed numeric kinds etc. — skip
		}
		if ab != -ba {
			return false
		}
		bc, err3 := Compare(b, c)
		ac, err4 := Compare(a, c)
		if err3 != nil || err4 != nil {
			return true
		}
		if ab <= 0 && bc <= 0 && ac > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIdenticalImpliesEqualHashProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randValue(r)
		w := v
		return Identical(v, w) && Hash(v) == Hash(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRowAccessorsReflect(t *testing.T) {
	fields := []Value{NewInt(1), NewText("a"), Null}
	r := NewRow(fields)
	if !reflect.DeepEqual(r.Row(), fields) {
		t.Error("Row() should expose the field slice")
	}
}

package bench

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/sqltypes"
)

// ContentionConfig sizes the write-contention experiment: one shared
// engine, N concurrent sessions each running explicit transaction blocks
// (BEGIN; k point UPDATEs; COMMIT) and retrying on serialization
// failure. Two key distributions bracket the optimistic write path:
//
//   - "disjoint": each session updates only its own key partition, so
//     first-updater-wins validation never fires and throughput should
//     scale with sessions — the case the old single writer lock
//     serialized anyway;
//   - "overlap": every session draws from the same small hot set, so
//     conflicts are the norm and the experiment measures the cost of
//     validate-abort-retry instead.
type ContentionConfig struct {
	Workers    []int    // session counts to sweep; default {1, 2, 4, …, max}
	MaxWorkers int      // upper end of the default sweep; default 8
	Txns       int      // total transactions per measurement; default 512
	RowsPerTxn int      // point UPDATEs inside each block; default 4
	TableRows  int      // rows in the shared table; default 1024
	HotKeys    int      // size of the overlap mode's hot set; default 8
	Modes      []string // default {"disjoint", "overlap"}
}

func (c *ContentionConfig) defaults() {
	if c.MaxWorkers < 1 {
		c.MaxWorkers = 8
	}
	if len(c.Workers) == 0 {
		for n := 1; n < c.MaxWorkers; n *= 2 {
			c.Workers = append(c.Workers, n)
		}
		c.Workers = append(c.Workers, c.MaxWorkers)
	}
	if c.Txns == 0 {
		c.Txns = 512
	}
	if c.RowsPerTxn == 0 {
		c.RowsPerTxn = 4
	}
	if c.TableRows == 0 {
		c.TableRows = 1024
	}
	if c.HotKeys == 0 {
		c.HotKeys = 8
	}
	if len(c.Modes) == 0 {
		c.Modes = []string{"disjoint", "overlap"}
	}
}

// ContentionRow is one (mode, session-count) point of the sweep.
type ContentionRow struct {
	Mode       string
	Workers    int
	Txns       int // committed transactions (every scheduled txn retries to success)
	Conflicts  int64
	WallMs     float64
	TxnsPerSec float64
	// Speedup compares against the same mode at the sweep's first point —
	// the "disjoint writers no longer serialize" claim, measured.
	Speedup float64
	// ConflictRate is conflicts per scheduled transaction; overlap mode
	// should sit well above zero, disjoint mode at exactly zero.
	ConflictRate float64
}

// ContentionSweep measures explicit-transaction write throughput across
// growing numbers of concurrent sessions under both key distributions.
// After every measurement the table checksum is verified: each committed
// block added exactly RowsPerTxn to the table's sum, so lost or doubled
// updates cannot masquerade as throughput.
func ContentionSweep(cfg ContentionConfig) ([]ContentionRow, error) {
	cfg.defaults()
	var rows []ContentionRow
	for _, mode := range cfg.Modes {
		if mode != "disjoint" && mode != "overlap" {
			return nil, fmt.Errorf("bench: contention mode %q (want disjoint or overlap)", mode)
		}
		e := engine.New(engineOpts(engine.WithSeed(42))...)
		if err := e.Exec("CREATE TABLE cont_kv (k int, v int)"); err != nil {
			return nil, err
		}
		var sb strings.Builder
		for base := 0; base < cfg.TableRows; {
			sb.Reset()
			sb.WriteString("INSERT INTO cont_kv VALUES ")
			for i := 0; i < 512 && base < cfg.TableRows; i++ {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, 0)", base)
				base++
			}
			if err := e.Exec(sb.String()); err != nil {
				return nil, err
			}
		}

		applied := int64(0)
		var baseline float64
		for _, n := range cfg.Workers {
			wall, conflicts, err := runContention(e, cfg, mode, n)
			if err != nil {
				return nil, fmt.Errorf("bench: contention %s ×%d sessions: %w", mode, n, err)
			}
			applied += int64(cfg.Txns) * int64(cfg.RowsPerTxn)
			got, err := e.QueryValue("SELECT sum(v) FROM cont_kv")
			if err != nil {
				return nil, err
			}
			if got.Int() != applied {
				return nil, fmt.Errorf("bench: contention %s ×%d sessions: checksum %d, want %d (lost or duplicated writes)",
					mode, n, got.Int(), applied)
			}
			row := ContentionRow{
				Mode:         mode,
				Workers:      n,
				Txns:         cfg.Txns,
				Conflicts:    conflicts,
				WallMs:       float64(wall.Nanoseconds()) / 1e6,
				TxnsPerSec:   float64(cfg.Txns) / wall.Seconds(),
				ConflictRate: float64(conflicts) / float64(cfg.Txns),
			}
			if baseline == 0 {
				baseline = row.TxnsPerSec
			}
			row.Speedup = row.TxnsPerSec / baseline
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runContention executes cfg.Txns explicit blocks spread over n sessions
// and returns the wall clock plus the total ErrSerialization retries.
// Key schedules are deterministic per (mode, session): disjoint sessions
// walk their own partition; overlapping sessions walk the shared hot set
// from staggered offsets.
func runContention(e *engine.Engine, cfg ContentionConfig, mode string, n int) (time.Duration, int64, error) {
	type sessionState struct {
		s     *engine.Session
		upd   *engine.Prepared
		keys  [][]int64 // keys[txn][r]; retries replay the same txn's keys
		retry int64
	}
	states := make([]*sessionState, n)
	for i := range states {
		s := e.NewSession()
		upd, err := s.Prepare("UPDATE cont_kv SET v = v + 1 WHERE k = $1")
		if err != nil {
			return 0, 0, err
		}
		states[i] = &sessionState{s: s, upd: upd}
	}
	// Pre-schedule every block's keys from one iterated stream (a single
	// xorshift step from structured seeds barely mixes its low bits, which
	// would hand each session one constant key).
	rng := &mixRand{state: 0x9E3779B97F4A7C15 ^ uint64(n)<<32}
	for i := 0; i < 8; i++ {
		rng.next()
	}
	part := cfg.TableRows / n
	for i := 0; i < cfg.Txns; i++ {
		idx := i % n
		block := make([]int64, cfg.RowsPerTxn)
		for r := range block {
			if mode == "disjoint" {
				block[r] = int64(idx*part + rng.intn(part))
			} else {
				block[r] = int64(rng.intn(cfg.HotKeys))
			}
		}
		states[idx].keys = append(states[idx].keys, block)
	}
	// Warm the shared plan cache outside the measurement.
	if err := e.Exec("UPDATE cont_kv SET v = v WHERE k = -1"); err != nil {
		return 0, 0, err
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	t0 := time.Now()
	for idx, st := range states {
		wg.Add(1)
		go func(idx int, st *sessionState) {
			defer wg.Done()
			for _, block := range st.keys {
				for {
					if err := st.s.Exec("BEGIN"); err != nil {
						errs[idx] = err
						return
					}
					for _, k := range block {
						if err := st.upd.Exec(sqltypes.NewInt(k)); err != nil {
							errs[idx] = err
							return
						}
					}
					// Yield between buffering and commit so blocks from
					// different sessions genuinely overlap in time. On a
					// single-core scheduler a short block would otherwise run
					// BEGIN→COMMIT without ever being descheduled and the
					// conflict path would never execute; both modes pay the
					// same yield, so the disjoint/overlap comparison stays
					// apples-to-apples.
					runtime.Gosched()
					err := st.s.Exec("COMMIT")
					if err == nil {
						break
					}
					if !errors.Is(err, engine.ErrSerialization) {
						errs[idx] = err
						return
					}
					// First-updater-wins sent this block back; the block is
					// already over, so just run it again.
					st.retry++
				}
			}
		}(idx, st)
	}
	wg.Wait()
	wall := time.Since(t0)
	var conflicts int64
	for i, st := range states {
		if errs[i] != nil {
			return 0, 0, errs[i]
		}
		conflicts += st.retry
	}
	return wall, conflicts, nil
}

// FormatContention renders the contention sweep.
func FormatContention(rows []ContentionRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Write contention: explicit transaction blocks on one shared engine (GOMAXPROCS=%d).\n", runtime.GOMAXPROCS(0))
	sb.WriteString("Fixed transaction count per measurement, divided among N sessions; losers retry.\n\n")
	fmt.Fprintf(&sb, "%-10s %9s %7s %10s %10s %12s %9s %9s\n",
		"mode", "sessions", "txns", "conflicts", "wall[ms]", "txns/sec", "speedup", "conf/txn")
	sb.WriteString(strings.Repeat("-", 84) + "\n")
	last := ""
	for _, r := range rows {
		if last != "" && r.Mode != last {
			sb.WriteString("\n")
		}
		last = r.Mode
		fmt.Fprintf(&sb, "%-10s %9d %7d %10d %10.1f %12.1f %8.2fx %9.3f\n",
			r.Mode, r.Workers, r.Txns, r.Conflicts, r.WallMs, r.TxnsPerSec, r.Speedup, r.ConflictRate)
	}
	return sb.String()
}

package bench

import (
	"testing"

	"plsqlaway/internal/profile"
)

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(Table1Config{WalkSteps: 400, ParseLen: 400, TraverseHops: 200, FibN: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		total := r.Start + r.Run + r.End + r.Interp
		if total < 99 || total > 101 {
			t.Errorf("%s: breakdown sums to %.1f%%", r.Name, total)
		}
	}
	// Query-bearing functions pay double-digit context-switch overhead…
	for _, name := range []string{"walk", "parse", "traverse"} {
		r := byName[name]
		if r.Start+r.End < 5 {
			t.Errorf("%s: Exec·Start+End = %.1f%%, expected visible f→Qi overhead", name, r.Start+r.End)
		}
		if r.FtoQSwitches == 0 {
			t.Errorf("%s: no f→Qi switches recorded", name)
		}
	}
	// …while fibonacci's fast path avoids executor starts entirely.
	fib := byName["fibonacci"]
	if fib.Start+fib.End > 1 {
		t.Errorf("fibonacci: Exec·Start+End = %.1f%%, want ≈0 (fast path)", fib.Start+fib.End)
	}
	if fib.FtoQSwitches != 0 {
		t.Errorf("fibonacci: %d f→Qi switches, want 0", fib.FtoQSwitches)
	}
	t.Logf("\n%s", FormatTable1(rows))
}

func TestFigure10Shape(t *testing.T) {
	pts, err := Figure10(Fig10Config{Steps: []int64{500, 1500}, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		// Compare minima: robust against scheduler contention when the
		// suite runs alongside other load (the claim is about the best
		// case each regime can achieve on identical work).
		if p.RecMinMs >= p.PLMinMs {
			t.Errorf("steps=%d: recursive (min %.1fms) should beat interpreted (min %.1fms)",
				p.Iterations, p.RecMinMs, p.PLMinMs)
		}
		if p.PLMinMs > p.PLMs || p.PLMaxMs < p.PLMs {
			t.Errorf("steps=%d: envelope broken", p.Iterations)
		}
	}
	// Both sides scale roughly linearly in steps.
	if len(pts) == 2 && pts[1].PLMinMs < pts[0].PLMinMs {
		t.Errorf("interpreted time should grow with steps: %v", pts)
	}
	t.Logf("\n%s", FormatFigure10(pts))
}

func TestFigure11Shape(t *testing.T) {
	hm, err := Figure11(Fig11Config{
		Fn:          "walk",
		Invocations: []int64{2, 64},
		Iterations:  []int64{2, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The well-amortized corner must clearly favour SQL. (Loose bound:
	// this is a timing test that must survive noisy CI machines.)
	big := hm.Cells[1][1] // 64 × 64
	if big <= 0 || big >= 100 {
		t.Errorf("64×64 cell = %.0f%%, expected < 100 (SQL wins)", big)
	}
	t.Logf("\n%s", FormatHeatMap(hm))
}

func TestFigure11ParseOracleQuantization(t *testing.T) {
	// With the Oracle profile's 10ms timer, tiny cells fall below
	// resolution and are omitted (the paper's blank lower-left corner).
	hm, err := Figure11(Fig11Config{
		Fn:          "parse",
		Profile:     profile.Oracle,
		Invocations: []int64{2},
		Iterations:  []int64{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hm.Cells[0][0] >= 0 {
		t.Logf("2×2 parse cell resolved to %.0f%% (fast machine) — acceptable", hm.Cells[0][0])
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2([]int{2_000, 4_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.IterateWrites != 0 {
			t.Errorf("n=%d: WITH ITERATE wrote %d pages, want 0", r.Iterations, r.IterateWrites)
		}
		if r.RecursiveWrites == 0 {
			t.Errorf("n=%d: WITH RECURSIVE wrote no pages, expected a quadratic trace", r.Iterations)
		}
	}
	// Quadratic growth: doubling the input should roughly quadruple writes.
	if len(rows) == 2 {
		ratio := float64(rows[1].RecursiveWrites) / float64(rows[0].RecursiveWrites)
		if ratio < 3 || ratio > 5.5 {
			t.Errorf("write growth %0.1fx for 2x input, want ≈4x (quadratic)", ratio)
		}
	}
	t.Logf("\n%s", FormatTable2(rows))
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are timing runs")
	}
	for _, a := range []struct {
		name string
		fn   func(int64) ([]AblationRow, error)
	}{
		{"A1 dialect", AblationDialect},
		{"A2 ssa-opt", AblationSSAOpt},
		{"A3 fast-path", AblationFastPath},
		{"A4 plan-cache", AblationPlanCache},
		{"A5 iterate", AblationIterate},
	} {
		rows, err := a.fn(600)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if len(rows) != 2 || rows[0].Ms <= 0 || rows[1].Ms <= 0 {
			t.Errorf("%s: rows %+v", a.name, rows)
		}
		t.Logf("\n%s", FormatAblation(a.name, rows))
	}
}

// TestUDFCallSweep runs the compiled-UDF call sweep at a small size. The
// sweep's warm-up pass is a differential — every regime of each workload
// must return the identical value, so this test fails if the inlined,
// opaque, or hand-written plans ever disagree on the corpus lookups.
func TestUDFCallSweep(t *testing.T) {
	rep, err := UDFCall(UDFCallConfig{Probes: 1_000, Rounds: 1, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Calls) != 6 {
		t.Fatalf("calls: %d rows, want 2 workloads × 3 regimes", len(rep.Calls))
	}
	if rep.PlansInlined < 2 {
		t.Errorf("PlansInlined = %d, want >= 2 (both lookups must inline)", rep.PlansInlined)
	}
	for _, r := range rep.Calls {
		if r.Regime == "inlined" && r.SpeedupVsOpaque < 1 {
			t.Errorf("%s: inlined slower than opaque (%.2fx)", r.Workload, r.SpeedupVsOpaque)
		}
	}
	if len(rep.BatchClamp) != 4 {
		t.Errorf("batch clamp rows: %d, want 4", len(rep.BatchClamp))
	}
}

func TestContentionSweepShape(t *testing.T) {
	rows, err := ContentionSweep(ContentionConfig{
		Workers: []int{1, 4}, Txns: 64, TableRows: 256, RowsPerTxn: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 modes × 2 worker counts
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Txns != 64 || r.TxnsPerSec <= 0 {
			t.Errorf("%s ×%d: implausible row %+v", r.Mode, r.Workers, r)
		}
		if r.Mode == "disjoint" && r.Conflicts != 0 {
			t.Errorf("disjoint ×%d: %d conflicts, want 0 (partitioned writers must never collide)", r.Workers, r.Conflicts)
		}
	}
	// The checksum inside ContentionSweep already failed the run if any
	// retry lost or duplicated an update; reaching here means it held.
}

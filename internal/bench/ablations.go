package bench

import (
	"fmt"
	"strings"
	"time"

	"plsqlaway/internal/core"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/udf"
	"plsqlaway/internal/workload"
)

// AblationRow is one variant measurement.
type AblationRow struct {
	Variant string
	Ms      float64
	Note    string
}

// msOf times fn once after a warm-up run.
func msOf(fn func() error) (float64, error) {
	if err := fn(); err != nil {
		return 0, err
	}
	t0 := time.Now()
	if err := fn(); err != nil {
		return 0, err
	}
	return float64(time.Since(t0).Nanoseconds()) / 1e6, nil
}

// AblationDialect (A1): LATERAL chains vs. the SQLite nested-derived-table
// rewrite — same results, comparable cost.
func AblationDialect(steps int64) ([]AblationRow, error) {
	if steps == 0 {
		steps = 20_000
	}
	env, err := NewEnv(profile.PostgreSQL, "walk")
	if err != nil {
		return nil, err
	}
	e := env.E
	resLite, err := core.Compile(workload.WalkSrc, core.Options{Dialect: udf.DialectSQLite})
	if err != nil {
		return nil, err
	}
	if err := e.InstallCompiled("walk_lite", resLite.Params, resLite.ReturnType, resLite.Query); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, v := range []struct{ name, fn string }{
		{"LATERAL chain (postgres dialect)", "walk_c"},
		{"nested derived tables (sqlite dialect)", "walk_lite"},
	} {
		fn := v.fn
		ms, err := msOf(func() error {
			e.Seed(42)
			_, err := e.Query(fmt.Sprintf("SELECT %s(coord(2, 2), $1, $2, $3)", fn),
				sqltypes.NewInt(winHuge), sqltypes.NewInt(looseHuge), sqltypes.NewInt(steps))
			return err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: v.name, Ms: ms})
	}
	return rows, nil
}

// AblationSSAOpt (A2): SSA optimization passes on/off — effect on emitted
// query size and run time.
func AblationSSAOpt(steps int64) ([]AblationRow, error) {
	if steps == 0 {
		steps = 20_000
	}
	env, err := NewEnv(profile.PostgreSQL, "walk")
	if err != nil {
		return nil, err
	}
	e := env.E
	resRaw, err := core.Compile(workload.WalkSrc, core.Options{NoOptimize: true})
	if err != nil {
		return nil, err
	}
	if err := e.InstallCompiled("walk_raw", resRaw.Params, resRaw.ReturnType, resRaw.Query); err != nil {
		return nil, err
	}
	resOpt := env.Compiled["walk"]
	var rows []AblationRow
	for _, v := range []struct {
		name, fn string
		res      *core.Result
	}{
		{"SSA optimizations on", "walk_c", resOpt},
		{"SSA optimizations off", "walk_raw", resRaw},
	} {
		fn := v.fn
		ms, err := msOf(func() error {
			e.Seed(42)
			_, err := e.Query(fmt.Sprintf("SELECT %s(coord(2, 2), $1, $2, $3)", fn),
				sqltypes.NewInt(winHuge), sqltypes.NewInt(looseHuge), sqltypes.NewInt(steps))
			return err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: v.name, Ms: ms,
			Note: fmt.Sprintf("%d label fns, %d chars of SQL", len(v.res.ANF.Funs), len(v.res.SQL))})
	}
	return rows, nil
}

// AblationFastPath (A3): the interpreter's simple-expression fast path
// on/off — explains the fibonacci row of Table 1.
func AblationFastPath(n int64) ([]AblationRow, error) {
	if n == 0 {
		n = 50_000
	}
	var rows []AblationRow
	for _, on := range []bool{true, false} {
		env, err := NewEnv(profile.PostgreSQL, "fibonacci")
		if err != nil {
			return nil, err
		}
		e := env.E
		e.Interp().FastPath = on
		ms, err := msOf(func() error {
			_, err := e.Query("SELECT fibonacci($1)", sqltypes.NewInt(n))
			return err
		})
		if err != nil {
			return nil, err
		}
		e.Counters().Reset()
		if _, err := e.Query("SELECT fibonacci($1)", sqltypes.NewInt(n)); err != nil {
			return nil, err
		}
		s, _, en, _ := e.Counters().Breakdown()
		name := "fast path on"
		if !on {
			name = "fast path off"
		}
		rows = append(rows, AblationRow{Variant: name, Ms: ms,
			Note: fmt.Sprintf("Exec·Start %.1f%%, Exec·End %.1f%%", s, en)})
	}
	return rows, nil
}

// AblationPlanCache (A4): the SPI plan cache on/off — isolates plan
// generation from plan instantiation cost on the interpreted path.
func AblationPlanCache(steps int64) ([]AblationRow, error) {
	if steps == 0 {
		steps = 5_000
	}
	var rows []AblationRow
	for _, on := range []bool{true, false} {
		env, err := NewEnv(profile.PostgreSQL, "walk")
		if err != nil {
			return nil, err
		}
		e := env.E
		e.PlanCache().SetEnabled(on)
		ms, err := msOf(func() error {
			e.Seed(42)
			_, err := e.Query("SELECT walk(coord(2, 2), $1, $2, $3)",
				sqltypes.NewInt(winHuge), sqltypes.NewInt(looseHuge), sqltypes.NewInt(steps))
			return err
		})
		if err != nil {
			return nil, err
		}
		name := "plan cache on"
		if !on {
			name = "plan cache off (replan per f→Qi)"
		}
		rows = append(rows, AblationRow{Variant: name, Ms: ms})
	}
	return rows, nil
}

// AblationIterate (A5): WITH RECURSIVE vs WITH ITERATE run time (Table 2
// covers space; this covers time).
func AblationIterate(steps int64) ([]AblationRow, error) {
	if steps == 0 {
		steps = 50_000
	}
	env, err := NewEnv(profile.PostgreSQL, "walk")
	if err != nil {
		return nil, err
	}
	e := env.E
	var rows []AblationRow
	for _, v := range []struct{ name, fn string }{
		{"WITH RECURSIVE (trace kept)", "walk_c"},
		{"WITH ITERATE (latest row only)", "walk_ci"},
	} {
		fn := v.fn
		ms, err := msOf(func() error {
			e.Seed(42)
			_, err := e.Query(fmt.Sprintf("SELECT %s(coord(2, 2), $1, $2, $3)", fn),
				sqltypes.NewInt(winHuge), sqltypes.NewInt(looseHuge), sqltypes.NewInt(steps))
			return err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: v.name, Ms: ms})
	}
	return rows, nil
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	sb.WriteString(strings.Repeat("-", len(title)) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-42s %10.1f ms", r.Variant, r.Ms)
		if r.Note != "" {
			fmt.Fprintf(&sb, "   (%s)", r.Note)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/workload"
)

// ParallelConfig sizes the session-scaling experiment: one shared engine,
// N concurrent sessions, fixed total work per measurement so wall-clock
// shrinks as sessions absorb the calls in parallel.
type ParallelConfig struct {
	Workers      []int    // session counts to sweep; default {1, 2, 4, …, max}
	MaxWorkers   int      // upper end of the default sweep; default 4
	Calls        int      // total calls per measurement; default 64
	Workloads    []string // default {"walk", "parse", "traverse"}
	WalkSteps    int64    // per-call intra-function iterations; default 1_000
	ParseLen     int      // default 1_000
	TraverseHops int64    // default 500
	Interpreted  bool     // also measure the interpreted originals
}

func (c *ParallelConfig) defaults() {
	if c.MaxWorkers < 1 {
		c.MaxWorkers = 4
	}
	if len(c.Workers) == 0 {
		for n := 1; n < c.MaxWorkers; n *= 2 {
			c.Workers = append(c.Workers, n)
		}
		c.Workers = append(c.Workers, c.MaxWorkers)
	}
	kept := make([]int, 0, len(c.Workers))
	for _, n := range c.Workers {
		if n >= 1 {
			kept = append(kept, n)
		}
	}
	c.Workers = kept
	if c.Calls == 0 {
		c.Calls = 64
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"walk", "parse", "traverse"}
	}
	if c.WalkSteps == 0 {
		c.WalkSteps = 1_000
	}
	if c.ParseLen == 0 {
		c.ParseLen = 1_000
	}
	if c.TraverseHops == 0 {
		c.TraverseHops = 500
	}
}

// ParallelRow is one (workload, mode, session-count) throughput point.
type ParallelRow struct {
	Workload    string
	Mode        string // "compiled" or "interpreted"
	Workers     int
	Calls       int
	WallMs      float64
	CallsPerSec float64
	Speedup     float64 // vs the same workload+mode at the sweep's first point
}

// parallelCall returns a per-session call closure for one workload+mode.
// Each session prepares its statement once (the per-session prepared
// statement cache) and reseeds deterministically per call so every session
// sees the same random stream the single-session benchmarks do.
func parallelCall(s *engine.Session, fn string, cfg *ParallelConfig, parseInput string) (func() error, error) {
	switch fn {
	case "walk", "walk_c":
		p, err := s.Prepare(fmt.Sprintf("SELECT %s(coord(2, 2), $1, $2, $3)", fn))
		if err != nil {
			return nil, err
		}
		return func() error {
			s.Seed(42)
			return p.Exec(sqltypes.NewInt(winHuge), sqltypes.NewInt(looseHuge), sqltypes.NewInt(cfg.WalkSteps))
		}, nil
	case "parse", "parse_c":
		p, err := s.Prepare(fmt.Sprintf("SELECT %s($1)", fn))
		if err != nil {
			return nil, err
		}
		input := sqltypes.NewText(parseInput)
		return func() error { return p.Exec(input) }, nil
	case "traverse", "traverse_c":
		p, err := s.Prepare(fmt.Sprintf("SELECT %s($1, $2)", fn))
		if err != nil {
			return nil, err
		}
		return func() error {
			return p.Exec(sqltypes.NewInt(0), sqltypes.NewInt(cfg.TraverseHops))
		}, nil
	default:
		return nil, fmt.Errorf("bench: parallel driver does not know workload %q", fn)
	}
}

// ParallelScaling measures aggregate throughput of the corpus workloads
// across growing numbers of concurrent sessions on ONE shared engine —
// the scaling claim of the session layer, measured rather than asserted.
// The total number of calls is fixed per measurement and divided among the
// sessions, so perfect scaling halves wall-clock per doubling.
func ParallelScaling(cfg ParallelConfig) ([]ParallelRow, error) {
	cfg.defaults()
	env, err := NewEnv(profile.PostgreSQL, cfg.Workloads...)
	if err != nil {
		return nil, err
	}
	e := env.E
	parseInput := workload.MakeParseInput(cfg.ParseLen, 11)

	var rows []ParallelRow
	for _, wl := range cfg.Workloads {
		modes := []struct{ mode, fn string }{{"compiled", wl + "_c"}}
		if cfg.Interpreted {
			modes = append(modes, struct{ mode, fn string }{"interpreted", wl})
		}
		for _, m := range modes {
			var baseline float64
			for _, n := range cfg.Workers {
				wall, err := runParallel(e, m.fn, n, &cfg, parseInput)
				if err != nil {
					return nil, fmt.Errorf("bench: %s ×%d sessions: %w", m.fn, n, err)
				}
				row := ParallelRow{
					Workload:    wl,
					Mode:        m.mode,
					Workers:     n,
					Calls:       cfg.Calls,
					WallMs:      float64(wall.Nanoseconds()) / 1e6,
					CallsPerSec: float64(cfg.Calls) / wall.Seconds(),
				}
				if baseline == 0 {
					baseline = row.CallsPerSec
				}
				row.Speedup = row.CallsPerSec / baseline
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// runParallel executes cfg.Calls invocations of fn spread over n sessions
// and returns the wall-clock time for the whole batch. Each measurement
// warms the shared plan cache first so it captures steady-state serving,
// not cold-start planning.
func runParallel(e *engine.Engine, fn string, n int, cfg *ParallelConfig, parseInput string) (time.Duration, error) {
	sessions := make([]*engine.Session, n)
	calls := make([]func() error, n)
	for i := range sessions {
		sessions[i] = e.NewSession()
		call, err := parallelCall(sessions[i], fn, cfg, parseInput)
		if err != nil {
			return 0, err
		}
		calls[i] = call
	}
	// Warm-up: one call on session 0 populates the shared plan cache.
	if err := calls[0](); err != nil {
		return 0, err
	}

	// Distribute the fixed total across sessions.
	per := make([]int, n)
	for i := 0; i < cfg.Calls; i++ {
		per[i%n]++
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < per[i]; k++ {
				if err := calls[i](); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return wall, nil
}

// FormatParallel renders the scaling sweep, flagging the hardware's
// parallelism so single-core results read correctly.
func FormatParallel(rows []ParallelRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Concurrent sessions: aggregate throughput on one shared engine (GOMAXPROCS=%d).\n", runtime.GOMAXPROCS(0))
	sb.WriteString("Fixed total calls per measurement, divided among N sessions.\n\n")
	fmt.Fprintf(&sb, "%-10s %-12s %9s %8s %10s %12s %9s\n",
		"workload", "mode", "sessions", "calls", "wall[ms]", "calls/sec", "speedup")
	sb.WriteString(strings.Repeat("-", 76) + "\n")
	last := ""
	for _, r := range rows {
		key := r.Workload + "/" + r.Mode
		if last != "" && key != last {
			sb.WriteString("\n")
		}
		last = key
		fmt.Fprintf(&sb, "%-10s %-12s %9d %8d %10.1f %12.1f %8.2fx\n",
			r.Workload, r.Mode, r.Workers, r.Calls, r.WallMs, r.CallsPerSec, r.Speedup)
	}
	return sb.String()
}

package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"plsqlaway/internal/core"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/workload"
)

// The udfcall sweep measures what planner inlining buys on per-row UDF
// calls — the paper's "compiling away" completed. Two compiled (PL/SQL→
// SQL) lookup functions over the corpus schemas are called once per row
// of a probe table, under three regimes:
//
//   - inlined: the planner splices the body into the calling query; the
//     correlated lookup decorrelates into a static-build hash join and
//     the batch-1 UDF clamp lifts;
//   - opaque: planner inlining disabled (-inline off) — every call is a
//     per-row executor dispatch through the SQL-body call path;
//   - handinlined: the join a programmer would write instead of the UDF,
//     the throughput ceiling the inlined plan is judged against.
//
// A second sweep pins the batch-size interaction: the inlined plan obeys
// the executor batch-size knob (no UDFCallExpr left, so no clamp), while
// the opaque plan stays at batch 1 regardless of the setting.

// udfActionOf is the robotwalk-flavored scalar lookup, compiled from
// PL/pgSQL so the sweep measures the compiler's output, not hand-written
// LANGUAGE sql.
const udfActionOf = `
CREATE FUNCTION action_of(l coord) RETURNS text AS $$
BEGIN
  RETURN (SELECT p.action FROM policy AS p WHERE p.loc = l);
END
$$ LANGUAGE plpgsql;`

// udfFSMNext is the fsmparse-flavored transition lookup (two equi-keys).
const udfFSMNext = `
CREATE FUNCTION fsm_next(s int, c int) RETURNS int AS $$
BEGIN
  RETURN (SELECT f.next FROM fsm AS f WHERE f.state = s AND f.class = c);
END
$$ LANGUAGE plpgsql;`

// UDFCallConfig sizes the sweep.
type UDFCallConfig struct {
	Probes int  // probe-table rows; default 40_000
	Rounds int  // timed repetitions per regime (best-of); default 7
	Inline bool // planner inlining for the "inlined" regime (the -inline ablation axis)
}

func (c *UDFCallConfig) defaults() {
	if c.Probes == 0 {
		c.Probes = 40_000
	}
	if c.Rounds == 0 {
		c.Rounds = 7
	}
}

// UDFCallRow is one workload × regime measurement.
type UDFCallRow struct {
	Workload        string  `json:"workload"` // robotwalk-lookup | fsmparse-step
	Regime          string  `json:"regime"`   // inlined | opaque | handinlined
	Rows            int64   `json:"rows"`     // probe rows per run
	WallMs          float64 `json:"wall_ms"`  // best-of-rounds
	RowsPerSec      float64 `json:"rows_per_sec"`
	SpeedupVsOpaque float64 `json:"speedup_vs_opaque"`
}

// UDFBatchRow is one batch-size × regime point of the clamp sweep.
type UDFBatchRow struct {
	BatchSize  int     `json:"batch_size"`
	Regime     string  `json:"regime"` // inlined | opaque
	RowsPerSec float64 `json:"rows_per_sec"`
	Speedup    float64 `json:"speedup_vs_batch1"`
}

// UDFCallReport bundles the sweep's outputs.
type UDFCallReport struct {
	Inline           bool          `json:"inline"` // ablation axis state
	Calls            []UDFCallRow  `json:"calls"`
	BatchClamp       []UDFBatchRow `json:"batch_clamp"`
	PlansInlined     int64         `json:"plans_inlined"`
	SpecializedPlans int64         `json:"specialized_plans"`
}

// udfCallCase is one workload: the UDF-calling query and its hand-inlined
// join form, which must agree on the result.
type udfCallCase struct {
	name string
	udf  string // query calling the compiled function per probe row
	hand string // the join a programmer would write instead
}

// UDFCall builds the probe workload, compiles and installs the lookup
// functions, and measures the three regimes per workload (plus the
// batch-clamp sweep on the robotwalk lookup). Every regime of a workload
// must produce the identical value — the sweep doubles as a differential.
func UDFCall(cfg UDFCallConfig) (*UDFCallReport, error) {
	cfg.defaults()
	e := engine.New(engineOpts(engine.WithSeed(42))...)
	world := workload.NewRobotWorld(5, 5, 7)
	if err := world.Install(e); err != nil {
		return nil, err
	}
	if err := workload.InstallFSM(e); err != nil {
		return nil, err
	}
	for _, src := range []string{udfActionOf, udfFSMNext} {
		res, err := core.Compile(src, core.Options{})
		if err != nil {
			return nil, err
		}
		if err := e.InstallCompiled(res.Function.Name, res.Params, res.ReturnType, res.Query); err != nil {
			return nil, err
		}
	}
	if err := e.Exec("CREATE TABLE probes (loc coord, st int, cls int)"); err != nil {
		return nil, err
	}
	var rows []string
	for i := 0; i < cfg.Probes; i++ {
		rows = append(rows, fmt.Sprintf("(coord(%d, %d), %d, %d)", i%5, (i/5)%5, i%3, i%3+1))
	}
	for lo := 0; lo < len(rows); lo += 500 {
		hi := lo + 500
		if hi > len(rows) {
			hi = len(rows)
		}
		if err := e.Exec("INSERT INTO probes VALUES " + strings.Join(rows[lo:hi], ", ")); err != nil {
			return nil, err
		}
	}

	cases := []udfCallCase{
		{
			name: "robotwalk-lookup",
			udf:  "SELECT count(action_of(pr.loc)) FROM probes AS pr",
			hand: "SELECT count(p.action) FROM probes AS pr, policy AS p WHERE pr.loc = p.loc",
		},
		{
			name: "fsmparse-step",
			udf:  "SELECT sum(fsm_next(pr.st, pr.cls)) FROM probes AS pr",
			hand: "SELECT sum(f.next) FROM probes AS pr, fsm AS f WHERE f.state = pr.st AND f.class = pr.cls",
		},
	}

	// regime returns the query text and the inlining setting to run it under.
	type regime struct {
		name   string
		inline bool
		sql    func(c udfCallCase) string
	}
	regimes := []regime{
		{"inlined", cfg.Inline, func(c udfCallCase) string { return c.udf }},
		{"opaque", false, func(c udfCallCase) string { return c.udf }},
		{"handinlined", cfg.Inline, func(c udfCallCase) string { return c.hand }},
	}

	run := func(sql string, inline bool) (sqltypes.Value, time.Duration, error) {
		e.SetInlining(inline)
		defer e.SetInlining(true)
		t0 := time.Now()
		r, err := e.Query(sql)
		if err != nil {
			return sqltypes.Null, 0, err
		}
		return r.Rows[0][0], time.Since(t0), nil
	}

	rep := &UDFCallReport{Inline: cfg.Inline}
	for _, c := range cases {
		// Warm every regime once (plan cache, heap residency) and check the
		// three agree before timing anything.
		var ref sqltypes.Value
		for i, rg := range regimes {
			v, _, err := run(rg.sql(c), rg.inline)
			if err != nil {
				return nil, fmt.Errorf("bench: udfcall %s/%s: %w", c.name, rg.name, err)
			}
			if i == 0 {
				ref = v
			} else if !sqltypes.Identical(ref, v) {
				return nil, fmt.Errorf("bench: udfcall %s: regime %s returned %v, %s returned %v",
					c.name, rg.name, v, regimes[0].name, ref)
			}
		}
		// Timed passes: round-robin over regimes, best-of-rounds each.
		samples := make([]time.Duration, len(regimes))
		for i := range samples {
			samples[i] = time.Duration(1<<62 - 1)
		}
		for round := 0; round < cfg.Rounds; round++ {
			runtime.GC()
			for i, rg := range regimes {
				_, d, err := run(rg.sql(c), rg.inline)
				if err != nil {
					return nil, err
				}
				if d < samples[i] {
					samples[i] = d
				}
			}
		}
		var opaquePerSec float64
		for i, rg := range regimes {
			if rg.name == "opaque" {
				opaquePerSec = float64(cfg.Probes) / samples[i].Seconds()
			}
		}
		for i, rg := range regimes {
			perSec := float64(cfg.Probes) / samples[i].Seconds()
			rep.Calls = append(rep.Calls, UDFCallRow{
				Workload: c.name, Regime: rg.name, Rows: int64(cfg.Probes),
				WallMs:     float64(samples[i].Nanoseconds()) / 1e6,
				RowsPerSec: perSec, SpeedupVsOpaque: perSec / opaquePerSec,
			})
		}
	}

	// Batch-clamp sweep: the same robotwalk lookup at executor batch sizes
	// 1 and 1024, inlined vs opaque. The inlined plan carries no UDF call,
	// so the batch-size knob takes effect; the opaque plan clamps to 1
	// whatever the setting says.
	clampQ := cases[0].udf
	for _, rg := range []struct {
		name   string
		inline bool
	}{{"inlined", cfg.Inline}, {"opaque", false}} {
		var base float64
		for _, size := range []int{1, 1024} {
			e.SetBatchSize(size)
			best := time.Duration(1<<62 - 1)
			for round := 0; round < cfg.Rounds; round++ {
				_, d, err := run(clampQ, rg.inline)
				if err != nil {
					e.SetBatchSize(0)
					return nil, err
				}
				if d < best {
					best = d
				}
			}
			perSec := float64(cfg.Probes) / best.Seconds()
			if size == 1 {
				base = perSec
			}
			rep.BatchClamp = append(rep.BatchClamp, UDFBatchRow{
				BatchSize: size, Regime: rg.name,
				RowsPerSec: perSec, Speedup: perSec / base,
			})
		}
		e.SetBatchSize(0)
	}

	rep.PlansInlined, rep.SpecializedPlans, _ = e.PlanStats()
	return rep, nil
}

// FormatUDFCall renders the sweep.
func FormatUDFCall(rep *UDFCallReport) string {
	var sb strings.Builder
	sb.WriteString("UDF-call sweep: compiled lookup functions called once per probe row\n")
	fmt.Fprintf(&sb, "(planner inlining for the inlined regime: %v; speedup is vs the opaque per-row call path)\n\n", rep.Inline)
	fmt.Fprintf(&sb, "%-18s %-12s %9s %10s %14s %9s\n", "workload", "regime", "rows", "wall[ms]", "rows/sec", "speedup")
	sb.WriteString(strings.Repeat("-", 78) + "\n")
	for _, r := range rep.Calls {
		fmt.Fprintf(&sb, "%-18s %-12s %9d %10.2f %14.0f %8.2fx\n",
			r.Workload, r.Regime, r.Rows, r.WallMs, r.RowsPerSec, r.SpeedupVsOpaque)
	}
	sb.WriteString("\nBatch-clamp: executor batch size honored only when the UDF inlines away\n\n")
	fmt.Fprintf(&sb, "%-12s %10s %14s %10s\n", "regime", "batchsize", "rows/sec", "vs batch1")
	sb.WriteString(strings.Repeat("-", 50) + "\n")
	for _, r := range rep.BatchClamp {
		fmt.Fprintf(&sb, "%-12s %10d %14.0f %9.2fx\n", r.Regime, r.BatchSize, r.RowsPerSec, r.Speedup)
	}
	fmt.Fprintf(&sb, "\nplan cache: %d calls inlined, %d constant-specialized\n",
		rep.PlansInlined, rep.SpecializedPlans)
	return sb.String()
}

package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/workload"
)

// BatchSweepConfig sizes the batch-size sweep over the set-oriented
// graphtraverse workload: a WITH RECURSIVE frontier expansion over the
// successor graph of InstallGraph. Unlike the scalar traverse() corpus
// entry (whose working table is a single activation row), the frontier
// query carries hundreds to thousands of rows per recursive step, which is
// exactly the shape the batch pipeline and the static-build hash join are
// for.
type BatchSweepConfig struct {
	Sizes     []int // batch sizes to sweep; default {1, 64, 256, 1024, 4096}
	Nodes     int   // graph size; default 4096
	SourceMod int   // every SourceMod-th node seeds the frontier; default 16
	MaxHops   int64 // frontier depth; default 9
	Rounds    int   // timed repetitions per size; default 9 (best-of)
}

func (c *BatchSweepConfig) defaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1, 64, 256, 1024, 4096}
	}
	if c.Nodes == 0 {
		c.Nodes = 4096
	}
	if c.SourceMod == 0 {
		c.SourceMod = 16
	}
	if c.MaxHops == 0 {
		c.MaxHops = 9
	}
	if c.Rounds == 0 {
		c.Rounds = 9
	}
}

// BatchSweepRow is one batch size's measurement.
type BatchSweepRow struct {
	BatchSize  int     `json:"batch_size"`
	Rows       int64   `json:"rows"`         // tuples produced by the recursion per run
	WallMs     float64 `json:"wall_ms"`      // best-of-rounds wall clock per run
	RowsPerSec float64 `json:"rows_per_sec"` // throughput
	Speedup    float64 `json:"speedup"`      // vs batch size 1 (or the sweep's first size)
	PageWrites int64   `json:"page_writes"`  // buffer pages written by the run-table trace
}

// GraphTraverseQuery is the swept workload: seed the frontier with every
// SourceMod-th edge source, then follow successor edges MaxHops deep
// (UNION ALL — every path counts, so per-step working tables grow into the
// thousands). The equi-join `w.node = e.src` inside the recursive term is
// planned as a hash join whose edges-side build table is static across all
// iterations.
func GraphTraverseQuery(sourceMod int, maxHops int64) string {
	return fmt.Sprintf(`WITH RECURSIVE walks(node, hops) AS (
  SELECT DISTINCT e.src, 0 FROM edges AS e WHERE e.src %% %d = 0
  UNION ALL
  SELECT e.dst, w.hops + 1 FROM walks AS w, edges AS e
  WHERE w.node = e.src AND w.hops < %d
) SELECT count(*) FROM walks`, sourceMod, maxHops)
}

// BatchSweep measures the vectorized executor's batch-size knob on the
// graphtraverse WITH RECURSIVE workload (ISSUE 2's acceptance experiment:
// default batch size vs batch size 1). Every size must produce the same
// row count — the sweep doubles as a differential check.
func BatchSweep(cfg BatchSweepConfig) ([]BatchSweepRow, error) {
	cfg.defaults()
	// The sweep isolates executor dispatch cost, so two identical-across-
	// sizes costs are kept out of the measurement: 256 MiB work_mem keeps
	// the recursion trace in memory (no temp-file encode/decode; page
	// writes are still reported and stay zero until the trace spills), and
	// a relaxed GC target stops the pacer from rescanning the retained
	// trace several times per query — on one core that scanning otherwise
	// dominates wall clock and its timing jitter swamps the sweep.
	prevGC := debug.SetGCPercent(400)
	defer debug.SetGCPercent(prevGC)
	e := engine.New(engineOpts(engine.WithSeed(42), engine.WithWorkMem(256<<20))...)
	if err := workload.InstallGraph(e, cfg.Nodes, 3); err != nil {
		return nil, err
	}
	q := GraphTraverseQuery(cfg.SourceMod, cfg.MaxHops)

	run := func() (int64, error) {
		res, err := e.Query(q)
		if err != nil {
			return 0, err
		}
		return res.Rows[0][0].Int(), nil
	}

	var rows []BatchSweepRow
	var refCount int64
	var baseline float64
	samples := make([][]time.Duration, len(cfg.Sizes))
	for i, size := range cfg.Sizes {
		e.SetBatchSize(size)
		count, err := run() // warm plan cache + differential check
		if err != nil {
			return nil, fmt.Errorf("bench: batch sweep size %d: %w", size, err)
		}
		if i == 0 {
			refCount = count
		} else if count != refCount {
			return nil, fmt.Errorf("bench: batch size %d produced %d rows, batch size %d produced %d — batch pipeline diverged",
				size, count, cfg.Sizes[0], refCount)
		}
		e.StorageStats().Reset()
		if _, err := run(); err != nil {
			return nil, err
		}
		rows = append(rows, BatchSweepRow{
			BatchSize:  size,
			Rows:       count,
			PageWrites: e.StorageStats().PageWrites,
		})
	}
	// Timed passes: round-robin over the sizes (a slow phase of the host
	// hits every size equally) and best-of-rounds per size, like fig11Cell —
	// the sweep wants the executor's capability, not the scheduler's mood
	// or the moment a background GC cycle happens to land. One GC per round
	// keeps heap state comparable across sizes.
	for round := 0; round < cfg.Rounds; round++ {
		runtime.GC()
		for i, size := range cfg.Sizes {
			e.SetBatchSize(size)
			t0 := time.Now()
			if _, err := run(); err != nil {
				return nil, err
			}
			samples[i] = append(samples[i], time.Since(t0))
		}
	}
	for i := range rows {
		best := minDuration(samples[i])
		rows[i].WallMs = float64(best.Nanoseconds()) / 1e6
		rows[i].RowsPerSec = float64(rows[i].Rows) / best.Seconds()
	}
	for _, r := range rows {
		if r.BatchSize == 1 {
			baseline = r.RowsPerSec
			break
		}
	}
	if baseline == 0 && len(rows) > 0 {
		baseline = rows[0].RowsPerSec
	}
	for i := range rows {
		rows[i].Speedup = rows[i].RowsPerSec / baseline
	}
	return rows, nil
}

// minDuration returns the smallest of ds.
func minDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	best := ds[0]
	for _, d := range ds[1:] {
		if d < best {
			best = d
		}
	}
	return best
}

// FormatBatchSweep renders the sweep.
func FormatBatchSweep(rows []BatchSweepRow) string {
	var sb strings.Builder
	sb.WriteString("Batch-size sweep: WITH RECURSIVE graphtraverse frontier expansion\n")
	sb.WriteString("(vectorized executor; speedup is vs batch size 1 — tuple-at-a-time).\n\n")
	fmt.Fprintf(&sb, "%10s %10s %10s %14s %9s %12s\n",
		"batchsize", "rows", "wall[ms]", "rows/sec", "speedup", "page writes")
	sb.WriteString(strings.Repeat("-", 70) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10d %10d %10.2f %14.0f %8.2fx %12d\n",
			r.BatchSize, r.Rows, r.WallMs, r.RowsPerSec, r.Speedup, r.PageWrites)
	}
	return sb.String()
}

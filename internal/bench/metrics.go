package bench

import (
	"plsqlaway/internal/engine"
	"plsqlaway/internal/obs"
)

// MetricsRegistry, when set before the experiments run (benchrunner
// -metrics), is handed to every engine the harness builds. Registration
// is upsert, so engines spun up across experiments accumulate into one
// shared set of families; pull-style collectors rebind to the most
// recent engine. Snapshot it with Gather after the run.
var MetricsRegistry *obs.Registry

// engineOpts appends the shared-registry option when -metrics is on —
// the one construction funnel every experiment's engine goes through.
func engineOpts(opts ...engine.Option) []engine.Option {
	if MetricsRegistry != nil {
		opts = append(opts, engine.WithMetricsRegistry(MetricsRegistry))
	}
	return opts
}

package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"plsqlaway/client"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/server"
	"plsqlaway/internal/sqltypes"
)

// WideScanConfig sizes the streaming-vs-buffered wide-scan memory
// experiment: a loopback plsqld serves SELECTs of growing result sizes
// while a sampler records peak heap. The buffered path (client.Query over
// the prepared-statement protocol, which materializes engine.Result.Rows
// server-side and Result.Rows client-side) grows with the result; the
// streamed path (client.QueryStream over the simple-query protocol,
// where the server writes each executor batch as it is pulled and the
// client discards each chunk as it arrives) must stay flat — its peak is
// one batch on each side, regardless of how many rows flow.
type WideScanConfig struct {
	Rows []int // result sizes to sweep; default {20_000, 80_000, 320_000}
}

func (c *WideScanConfig) defaults() {
	if len(c.Rows) == 0 {
		c.Rows = []int{20_000, 80_000, 320_000}
	}
}

// WideScanRow is one (mode, result size) measurement.
type WideScanRow struct {
	Mode       string  `json:"mode"` // "buffered" | "streamed"
	Rows       int     `json:"rows"`
	Chunks     int     `json:"chunks"`       // result frames observed (streamed mode)
	PeakHeapMB float64 `json:"peak_heap_mb"` // peak live heap above the pre-query baseline
	WallMs     float64 `json:"wall_ms"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// heapSampler polls runtime.ReadMemStats and tracks peak HeapAlloc.
// Server and client share this process's heap (the server is in-proc on
// a loopback socket), so the peak covers both sides — which is the
// point: if EITHER side materializes the result, the peak grows with it.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			for {
				old := s.peak.Load()
				if ms.HeapAlloc <= old || s.peak.CompareAndSwap(old, ms.HeapAlloc) {
					break
				}
			}
			select {
			case <-s.stop:
				return
			case <-time.After(500 * time.Microsecond):
			}
		}
	}()
	return s
}

func (s *heapSampler) finish() uint64 {
	close(s.stop)
	<-s.done
	return s.peak.Load()
}

// WideScan runs the experiment: it installs a 3-column table at the
// largest swept size, serves it over a loopback listener, and measures
// peak heap while a client consumes `SELECT k, v, s FROM wide WHERE k <
// n` at each size, buffered vs streamed. It returns an error if the
// streamed path's peak grows with the result instead of staying flat —
// the acceptance criterion that the streaming path is actually engaged
// end to end.
func WideScan(cfg WideScanConfig) ([]WideScanRow, error) {
	cfg.defaults()
	maxRows := 0
	for _, n := range cfg.Rows {
		if n > maxRows {
			maxRows = n
		}
	}

	eng := engine.New(engineOpts(engine.WithSeed(42), engine.WithWorkMem(256<<20))...)
	sess := eng.NewSession()
	if err := sess.Exec("CREATE TABLE wide (k int, v float, s text)"); err != nil {
		return nil, err
	}
	ins, err := sess.Prepare("INSERT INTO wide VALUES ($1, $2, $3)")
	if err != nil {
		return nil, err
	}
	for i := 0; i < maxRows; i++ {
		if err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			sqltypes.NewFloat(float64(i)*1.25),
			sqltypes.NewText(fmt.Sprintf("tag-%08d", i%4096)),
		); err != nil {
			return nil, err
		}
	}

	srv := server.New(eng, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		wg.Wait()
	}()

	conn, err := client.Dial(ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	// Stabilize the baseline: the table itself lives in this heap, so
	// measurements report peak-above-baseline after a full collection.
	gcBaseline := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	// Keep GC responsive so "peak live heap" tracks the real working set
	// rather than collector laziness: the streamed path's only growth is
	// short-lived per-chunk garbage, which a lazy collector would let pile
	// up until it looks like materialization.
	defer debug.SetGCPercent(debug.SetGCPercent(20))

	var out []WideScanRow
	for _, mode := range []string{"buffered", "streamed"} {
		for _, n := range cfg.Rows {
			q := fmt.Sprintf("SELECT k, v, s FROM wide WHERE k < %d", n)
			base := gcBaseline()
			sampler := startHeapSampler()
			start := time.Now()
			rows, chunks := 0, 0
			switch mode {
			case "buffered":
				// The prepared-statement protocol is the control: it
				// buffers server-side (engine.Result) and client-side
				// (Result.Rows), so its peak tracks the result size.
				st, err := conn.Prepare(q)
				if err != nil {
					return nil, err
				}
				res, err := st.Query()
				if err != nil {
					return nil, err
				}
				rows = len(res.Rows)
				st.Close()
			case "streamed":
				err := conn.QueryStream(q, func(cols []string, chunk [][]client.Value) error {
					rows += len(chunk)
					if len(chunk) > 0 {
						chunks++
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			wall := time.Since(start)
			peak := sampler.finish()
			if rows != n {
				return nil, fmt.Errorf("widescan %s@%d: got %d rows", mode, n, rows)
			}
			headroomMB := float64(peak-base) / (1 << 20)
			if peak < base {
				headroomMB = 0
			}
			out = append(out, WideScanRow{
				Mode:       mode,
				Rows:       n,
				Chunks:     chunks,
				PeakHeapMB: headroomMB,
				WallMs:     float64(wall.Nanoseconds()) / 1e6,
				RowsPerSec: float64(n) / wall.Seconds(),
			})
		}
	}

	if err := checkWideScanFlat(cfg, out); err != nil {
		return out, err
	}
	return out, nil
}

// FormatWideScan renders the experiment in the paper-style text layout.
func FormatWideScan(rows []WideScanRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s  %8s  %7s  %13s  %9s  %12s\n",
		"mode", "rows", "chunks", "peak heap MB", "wall ms", "rows/s")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s  %8d  %7d  %13.1f  %9.1f  %12.0f\n",
			r.Mode, r.Rows, r.Chunks, r.PeakHeapMB, r.WallMs, r.RowsPerSec)
	}
	return sb.String()
}

// checkWideScanFlat asserts the streaming property: the streamed path's
// peak at the largest result must stay well under the buffered path's
// (which holds the whole result at least twice), and must not scale
// linearly from the smallest streamed measurement.
func checkWideScanFlat(cfg WideScanConfig, rows []WideScanRow) error {
	peak := func(mode string, n int) float64 {
		for _, r := range rows {
			if r.Mode == mode && r.Rows == n {
				return r.PeakHeapMB
			}
		}
		return -1
	}
	largest := 0
	for _, n := range cfg.Rows {
		if n > largest {
			largest = n
		}
	}
	buf, str := peak("buffered", largest), peak("streamed", largest)
	if buf < 0 || str < 0 {
		return fmt.Errorf("widescan: missing measurements")
	}
	// The buffered path holds ~largest×3 values in memory; streaming
	// should sit an integer factor under it. 2× is a deliberately loose
	// bound — a regression that re-materializes the result lands at ≥1×.
	if str*2 > buf {
		return fmt.Errorf("widescan: streamed peak %.1f MB is not well under buffered peak %.1f MB — result is being materialized somewhere", str, buf)
	}
	return nil
}

package bench

import (
	"fmt"
	"strings"
)

// FormatTable1 renders the Table 1 breakdown in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Run time spent (in %) during PL/SQL evaluation.\n")
	sb.WriteString("Exec·Start and Exec·End are f→Qi context switch overhead.\n\n")
	fmt.Fprintf(&sb, "%-12s %11s %10s %10s %8s %8s\n",
		"Function", "Exec·Start", "Exec·Run", "Exec·End", "Interp", "f→Qi")
	sb.WriteString(strings.Repeat("-", 66) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %10.2f%% %9.2f%% %9.2f%% %7.2f%% %8d\n",
			r.Name, r.Start, r.Run, r.End, r.Interp, r.FtoQSwitches)
	}
	return sb.String()
}

// FormatFigure10 renders the Figure 10 series as a table plus the headline
// saving.
func FormatFigure10(points []Fig10Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: Iterative vs. recursive — wall clock time for walk()\n")
	sb.WriteString("across varying intra-function iterations (avg of N runs, min/max envelope).\n\n")
	fmt.Fprintf(&sb, "%12s %28s %28s %9s\n", "#iterations", "PL/SQL [ms] (min..max)", "WITH RECURSIVE [ms]", "saving")
	sb.WriteString(strings.Repeat("-", 82) + "\n")
	var sumSaving float64
	for _, p := range points {
		fmt.Fprintf(&sb, "%12d %12.1f (%7.1f..%7.1f) %12.1f (%6.1f..%7.1f) %8.1f%%\n",
			p.Iterations, p.PLMs, p.PLMinMs, p.PLMaxMs, p.RecMs, p.RecMinMs, p.RecMaxMs, p.SavingPct)
		sumSaving += p.SavingPct
	}
	if len(points) > 0 {
		fmt.Fprintf(&sb, "\naverage run time saving: %.1f%% (paper: ≈43%%)\n", sumSaving/float64(len(points)))
	}
	return sb.String()
}

// FormatHeatMap renders Figure 11 in the paper's grid layout: relative run
// time (%) of recursive SQL vs iterative PL/SQL; values < 100 favour SQL,
// blank cells fell below the engine profile's timer resolution.
func FormatHeatMap(hm *HeatMap) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11 (%s on %s): relative run time (%%) of recursive SQL vs. iterative PL/SQL.\n", hm.Fn, hm.Profile)
	sb.WriteString("Rows: #invocations (Q→f); columns: #iterations (f→Qi). <100 favours SQL.\n\n")
	fmt.Fprintf(&sb, "%11s |", "inv \\ iter")
	for _, it := range hm.Iterations {
		fmt.Fprintf(&sb, "%6d", it)
	}
	sb.WriteString("\n" + strings.Repeat("-", 13+6*len(hm.Iterations)) + "\n")
	for i := len(hm.Invocations) - 1; i >= 0; i-- { // paper draws large counts on top
		fmt.Fprintf(&sb, "%11d |", hm.Invocations[i])
		for j := range hm.Iterations {
			v := hm.Cells[i][j]
			if v < 0 {
				fmt.Fprintf(&sb, "%6s", "·")
			} else {
				fmt.Fprintf(&sb, "%6.0f", v)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatTable2 renders the buffer-page-write comparison.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Eliminating buffering effort via WITH ITERATE.\n\n")
	fmt.Fprintf(&sb, "%16s | %s\n", "#Iterations", "#Buffer Page Writes")
	fmt.Fprintf(&sb, "%16s | %14s %16s\n", "(= input length)", "WITH ITERATE", "WITH RECURSIVE")
	sb.WriteString(strings.Repeat("-", 52) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%16d | %14d %16d\n", r.Iterations, r.IterateWrites, r.RecursiveWrites)
	}
	return sb.String()
}

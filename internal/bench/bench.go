// Package bench regenerates every table and figure of the paper's
// evaluation (§3): Table 1 (run-time breakdown of PL/pgSQL evaluation),
// Figure 10 (iterative vs. recursive wall-clock for walk), Figures 11a/11b
// (relative run-time heat maps across invocation × iteration counts),
// Table 2 (buffer page writes, WITH ITERATE vs WITH RECURSIVE), plus the
// ablations DESIGN.md calls out.
package bench

import (
	"fmt"
	"time"

	"plsqlaway/internal/core"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqlparser"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/workload"
)

// Env bundles an engine with the compiled variants of the corpus functions
// the experiments call.
type Env struct {
	E        *engine.Engine
	Compiled map[string]*core.Result // by function name
}

// Big bounds that keep walk() running for all of its steps.
const (
	winHuge   = int64(1_000_000_000)
	looseHuge = int64(-1_000_000_000)
)

// NewEnv builds an engine with the workload schemas, the interpreted corpus
// functions, and — for each requested function — the compiled variant
// installed as <name>_c (and <name>_ci for the WITH ITERATE form).
func NewEnv(prof profile.Profile, fns ...string) (*Env, error) {
	e := engine.New(engineOpts(engine.WithProfile(prof), engine.WithSeed(42))...)
	world := workload.NewRobotWorld(5, 5, 7)
	if err := world.Install(e); err != nil {
		return nil, err
	}
	if err := workload.InstallFSM(e); err != nil {
		return nil, err
	}
	if err := workload.InstallGraph(e, 4096, 3); err != nil {
		return nil, err
	}
	if err := workload.InstallFees(e); err != nil {
		return nil, err
	}
	env := &Env{E: e, Compiled: map[string]*core.Result{}}
	for _, name := range fns {
		src, ok := workload.Corpus[name]
		if !ok {
			return nil, fmt.Errorf("bench: unknown corpus function %q", name)
		}
		if prof.AllowPLpgSQL {
			if err := e.Exec(src); err != nil {
				return nil, err
			}
		}
		res, err := core.Compile(src, core.Options{})
		if err != nil {
			return nil, err
		}
		if err := e.InstallCompiled(name+"_c", res.Params, res.ReturnType, res.Query); err != nil {
			return nil, err
		}
		resIter, err := core.Compile(src, core.Options{Iterate: true})
		if err != nil {
			return nil, err
		}
		if err := e.InstallCompiled(name+"_ci", resIter.Params, resIter.ReturnType, resIter.Query); err != nil {
			return nil, err
		}
		env.Compiled[name] = res
	}
	return env, nil
}

// timeIt measures fn over rounds runs, returning avg/min/max durations.
func timeIt(rounds int, fn func() error) (avg, min, max time.Duration, err error) {
	if rounds < 1 {
		rounds = 1
	}
	var total time.Duration
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		if err = fn(); err != nil {
			return 0, 0, 0, err
		}
		d := time.Since(t0)
		total += d
		if i == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return total / time.Duration(rounds), min, max, nil
}

// ---------------------------------------------------------------------------
// Table 1 — run time spent during PL/SQL evaluation
// ---------------------------------------------------------------------------

// Table1Row is one function's phase breakdown in percent.
type Table1Row struct {
	Name                    string
	Start, Run, End, Interp float64
	FtoQSwitches            int64
}

// Table1Config sizes the workloads.
type Table1Config struct {
	WalkSteps    int64 // default 10_000
	ParseLen     int   // default 10_000
	TraverseHops int64 // default 2_000
	FibN         int64 // default 100_000
}

func (c *Table1Config) defaults() {
	if c.WalkSteps == 0 {
		c.WalkSteps = 10_000
	}
	if c.ParseLen == 0 {
		c.ParseLen = 10_000
	}
	if c.TraverseHops == 0 {
		c.TraverseHops = 2_000
	}
	if c.FibN == 0 {
		c.FibN = 100_000
	}
}

// Table1 interprets walk, parse, traverse, and fibonacci and reports the
// share of time in Exec·Start / Exec·Run / Exec·End / Interp. Bold-in-paper
// columns Start+End are the f→Qi context-switch overhead.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	cfg.defaults()
	env, err := NewEnv(profile.PostgreSQL, "walk", "parse", "traverse", "fibonacci")
	if err != nil {
		return nil, err
	}
	e := env.E
	input := workload.MakeParseInput(cfg.ParseLen, 11)

	runs := []struct {
		name string
		call func() error
	}{
		{"walk", func() error {
			_, err := e.Query("SELECT walk(coord(2, 2), $1, $2, $3)",
				sqltypes.NewInt(winHuge), sqltypes.NewInt(looseHuge), sqltypes.NewInt(cfg.WalkSteps))
			return err
		}},
		{"parse", func() error {
			_, err := e.Query("SELECT parse($1)", sqltypes.NewText(input))
			return err
		}},
		{"traverse", func() error {
			_, err := e.Query("SELECT traverse($1, $2)", sqltypes.NewInt(0), sqltypes.NewInt(cfg.TraverseHops))
			return err
		}},
		{"fibonacci", func() error {
			_, err := e.Query("SELECT fibonacci($1)", sqltypes.NewInt(cfg.FibN))
			return err
		}},
	}
	var rows []Table1Row
	for _, r := range runs {
		e.Seed(42)
		if err := r.call(); err != nil { // warm plan caches
			return nil, fmt.Errorf("bench: %s: %w", r.name, err)
		}
		e.Counters().Reset()
		e.Seed(42)
		if err := r.call(); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", r.name, err)
		}
		s, ru, en, in := e.Counters().Breakdown()
		rows = append(rows, Table1Row{Name: r.name, Start: s, Run: ru, End: en, Interp: in,
			FtoQSwitches: e.Counters().CtxSwitchFQ})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 10 — iterative vs recursive wall clock for walk()
// ---------------------------------------------------------------------------

// Fig10Point is one x-position of Figure 10.
type Fig10Point struct {
	Iterations                int64
	PLMs, PLMinMs, PLMaxMs    float64
	RecMs, RecMinMs, RecMaxMs float64
	SavingPct                 float64 // 100·(1 − rec/pl)
}

// Fig10Config sizes the sweep.
type Fig10Config struct {
	Steps  []int64 // default {10k, 25k, 50k, 75k, 100k}
	Rounds int     // default 10 (the paper averages ten runs)
}

// Figure10 measures one invocation of walk() interpreted vs compiled
// (WITH RECURSIVE) across growing intra-function iteration counts.
func Figure10(cfg Fig10Config) ([]Fig10Point, error) {
	if len(cfg.Steps) == 0 {
		cfg.Steps = []int64{10_000, 25_000, 50_000, 75_000, 100_000}
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 10
	}
	env, err := NewEnv(profile.PostgreSQL, "walk")
	if err != nil {
		return nil, err
	}
	e := env.E
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

	var out []Fig10Point
	for _, steps := range cfg.Steps {
		callPL := func() error {
			e.Seed(42)
			_, err := e.Query("SELECT walk(coord(2, 2), $1, $2, $3)",
				sqltypes.NewInt(winHuge), sqltypes.NewInt(looseHuge), sqltypes.NewInt(steps))
			return err
		}
		callRec := func() error {
			e.Seed(42)
			_, err := e.Query("SELECT walk_c(coord(2, 2), $1, $2, $3)",
				sqltypes.NewInt(winHuge), sqltypes.NewInt(looseHuge), sqltypes.NewInt(steps))
			return err
		}
		// warm up both paths once
		if err := callPL(); err != nil {
			return nil, err
		}
		if err := callRec(); err != nil {
			return nil, err
		}
		plAvg, plMin, plMax, err := timeIt(cfg.Rounds, callPL)
		if err != nil {
			return nil, err
		}
		recAvg, recMin, recMax, err := timeIt(cfg.Rounds, callRec)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig10Point{
			Iterations: steps,
			PLMs:       ms(plAvg), PLMinMs: ms(plMin), PLMaxMs: ms(plMax),
			RecMs: ms(recAvg), RecMinMs: ms(recMin), RecMaxMs: ms(recMax),
			SavingPct: 100 * (1 - float64(recAvg)/float64(plAvg)),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 11 — heat maps of relative run time
// ---------------------------------------------------------------------------

// HeatMap is the Figure 11 grid: Cells[i][j] is the relative run time (%)
// of the recursive form at Invocations[i] × Iterations[j]; NaN-like
// negative values mark cells below the engine's timer resolution (Oracle).
type HeatMap struct {
	Fn          string
	Profile     string
	Invocations []int64
	Iterations  []int64
	Cells       [][]float64 // -1 = below timer resolution
}

// Fig11Config selects function, profile, and grid ticks.
type Fig11Config struct {
	Fn          string // "walk" or "parse"
	Profile     profile.Profile
	Invocations []int64
	Iterations  []int64
}

// Figure11 measures, per grid cell, a query invoking the function N times
// with M intra-function iterations: interpreted versus compiled-and-inlined
// (the inlined query re-optimized per measurement — the one-time cost that
// dominates the lower-left corner).
func Figure11(cfg Fig11Config) (*HeatMap, error) {
	if cfg.Fn == "" {
		cfg.Fn = "walk"
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = profile.PostgreSQL
	}
	if len(cfg.Invocations) == 0 {
		cfg.Invocations = []int64{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	}
	if len(cfg.Iterations) == 0 {
		cfg.Iterations = []int64{2, 4, 8, 16, 32, 64, 256, 1024}
	}
	env, err := NewEnv(cfg.Profile, cfg.Fn)
	if err != nil {
		return nil, err
	}
	e := env.E
	res := env.Compiled[cfg.Fn]

	// A pool of call sites for Q→f invocations.
	if err := e.Exec("CREATE TABLE starts (o coord, s int)"); err != nil {
		return nil, err
	}
	{
		var rows []string
		for i := int64(0); i < 1024; i++ {
			rows = append(rows, fmt.Sprintf("(coord(%d, %d), %d)", i%5, (i/5)%5, i))
		}
		for lo := 0; lo < len(rows); lo += 256 {
			hi := lo + 256
			if hi > len(rows) {
				hi = len(rows)
			}
			stmt := "INSERT INTO starts VALUES " + join(rows[lo:hi], ", ")
			if err := e.Exec(stmt); err != nil {
				return nil, err
			}
		}
	}

	parseInput := workload.MakeParseInput(1100, 11)

	// Warm both paths once so the first cell does not absorb cold-start
	// costs (statement compilation, interpreter caches).
	if _, err := fig11Cell(e, res, cfg, 1, 1, parseInput); err != nil {
		return nil, err
	}

	hm := &HeatMap{Fn: cfg.Fn, Profile: cfg.Profile.Name,
		Invocations: cfg.Invocations, Iterations: cfg.Iterations}
	for _, inv := range cfg.Invocations {
		var row []float64
		for _, iter := range cfg.Iterations {
			cell, err := fig11Cell(e, res, cfg, inv, iter, parseInput)
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
		}
		hm.Cells = append(hm.Cells, row)
	}
	return hm, nil
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// fig11Cell measures one (invocations, iterations) grid point and returns
// 100·rec/interp, or -1 when the profile's timer cannot resolve it.
func fig11Cell(e *engine.Engine, res *core.Result, cfg Fig11Config, inv, iter int64, parseInput string) (float64, error) {
	var callSQL string
	switch cfg.Fn {
	case "walk":
		callSQL = fmt.Sprintf(
			"SELECT sum(walk(s.o, %d, %d, %d)) FROM (SELECT o FROM starts LIMIT %d) AS s",
			winHuge, looseHuge, iter, inv)
	case "parse":
		callSQL = fmt.Sprintf(
			"SELECT sum(parse(substr($1, s.s %% 17 + 1, %d))) FROM (SELECT s FROM starts LIMIT %d) AS s",
			iter, inv)
	default:
		return 0, fmt.Errorf("bench: figure 11 supports walk and parse, not %q", cfg.Fn)
	}
	q, err := sqlparser.ParseQuery(callSQL)
	if err != nil {
		return 0, err
	}
	inlined := res.Inline(q)

	var params []sqltypes.Value
	if cfg.Fn == "parse" {
		params = []sqltypes.Value{sqltypes.NewText(parseInput)}
	}

	// Best of two runs per side: keeps the per-measurement one-time
	// planning cost (QueryFresh replans) while damping scheduler noise.
	measure := func(target *sqlast.Query) (time.Duration, sqltypes.Value, error) {
		var best time.Duration
		var val sqltypes.Value
		for i := 0; i < 2; i++ {
			e.Seed(1234)
			t0 := time.Now()
			r, err := e.QueryFresh(target, params...)
			d := time.Since(t0)
			if err != nil {
				return 0, sqltypes.Null, err
			}
			val = r.Rows[0][0]
			if i == 0 || d < best {
				best = d
			}
		}
		return best, val, nil
	}
	dPL, vPL, err := measure(q)
	if err != nil {
		return 0, fmt.Errorf("interpreted cell (%d×%d): %w", inv, iter, err)
	}
	dRec, vRec, err := measure(inlined)
	if err != nil {
		return 0, fmt.Errorf("compiled cell (%d×%d): %w", inv, iter, err)
	}
	if !sqltypes.Identical(vPL, vRec) {
		return 0, fmt.Errorf("cell (%d×%d): interpreted %v != compiled %v", inv, iter, vPL, vRec)
	}
	qPL := cfg.Profile.Quantize(dPL)
	qRec := cfg.Profile.Quantize(dRec)
	if qPL == 0 || qRec == 0 {
		return -1, nil // below timer resolution — omitted, as in Figure 11b
	}
	return 100 * float64(qRec) / float64(qPL), nil
}

// ---------------------------------------------------------------------------
// Table 2 — buffer page writes: WITH ITERATE vs WITH RECURSIVE
// ---------------------------------------------------------------------------

// Table2Row is one input length's page-write counts.
type Table2Row struct {
	Iterations      int
	IterateWrites   int64
	RecursiveWrites int64
}

// Table2 runs compiled parse() on growing inputs and counts buffer page
// writes of the run-table accumulation. Vanilla WITH RECURSIVE keeps the
// whole tail-recursion trace (quadratic bytes → quadratic page writes);
// WITH ITERATE keeps one row and writes nothing.
func Table2(lengths []int) ([]Table2Row, error) {
	if len(lengths) == 0 {
		lengths = []int{10_000, 20_000, 30_000, 40_000, 50_000}
	}
	env, err := NewEnv(profile.PostgreSQL, "parse")
	if err != nil {
		return nil, err
	}
	e := env.E
	var rows []Table2Row
	for _, n := range lengths {
		input := sqltypes.NewText(workload.MakeParseInput(n, 11))

		e.StorageStats().Reset()
		if _, err := e.Query("SELECT parse_ci($1)", input); err != nil {
			return nil, err
		}
		iterWrites := e.StorageStats().PageWrites

		e.StorageStats().Reset()
		if _, err := e.Query("SELECT parse_c($1)", input); err != nil {
			return nil, err
		}
		recWrites := e.StorageStats().PageWrites

		rows = append(rows, Table2Row{Iterations: n, IterateWrites: iterWrites, RecursiveWrites: recWrites})
	}
	return rows, nil
}

package bench

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/wal"
)

// MixedConfig sizes the mixed read/write scaling experiment: one shared
// engine, one table, N concurrent sessions each issuing a deterministic
// stream of point UPDATEs and range-aggregate SELECTs. The write ratio is
// the knob that exposed the old global DML lock: with any writers in the
// mix, reader throughput collapsed to the writer's pace. Under snapshot
// isolation readers keep scaling because they never wait for the commit
// lock.
type MixedConfig struct {
	Workers    []int   // session counts to sweep; default {1, 2, 4, …, max}
	MaxWorkers int     // upper end of the default sweep; default 4
	Ops        int     // total operations per measurement; default 4096
	TableRows  int     // rows in the shared table; default 8192
	Span       int     // keys per range-aggregate read; default 256
	WriteRatio float64 // fraction of ops that are single-row UPDATEs
	// Durability lists the durability modes to sweep: "volatile" (no
	// WAL, the historical behaviour and the default) or a wal.SyncMode
	// name ("off", "batched", "commit") — each runs the whole worker
	// sweep on a fresh engine logging to a temporary data directory.
	// The axis shows what the group-commit protocol buys: "commit"
	// pays one fsync per UPDATE, "batched" coalesces concurrent
	// committers and recovers most of "off"'s throughput.
	Durability []string
}

func (c *MixedConfig) defaults() {
	if c.MaxWorkers < 1 {
		c.MaxWorkers = 4
	}
	if len(c.Workers) == 0 {
		for n := 1; n < c.MaxWorkers; n *= 2 {
			c.Workers = append(c.Workers, n)
		}
		c.Workers = append(c.Workers, c.MaxWorkers)
	}
	if c.Ops == 0 {
		c.Ops = 4096
	}
	if c.TableRows == 0 {
		c.TableRows = 8192
	}
	if c.Span == 0 {
		c.Span = 256
	}
	if c.WriteRatio < 0 {
		c.WriteRatio = 0
	}
	if c.WriteRatio > 1 {
		c.WriteRatio = 1
	}
	if len(c.Durability) == 0 {
		c.Durability = []string{"volatile"}
	}
}

// MixedRow is one (session-count) throughput point of the mixed sweep.
type MixedRow struct {
	Workers      int
	Durability   string // "volatile", or the WAL sync mode
	WriteRatio   float64
	Ops          int
	Reads        int
	Writes       int
	WallMs       float64
	OpsPerSec    float64
	ReadsPerSec  float64
	WritesPerSec float64
	// ReadSpeedup compares reader throughput against the sweep's first
	// point — the "readers no longer serialized behind writers" claim.
	ReadSpeedup float64
	// Read latency percentiles (milliseconds). Under a global DML lock a
	// reader stalls for a writer's whole statement, so the read tail
	// tracks write duration; under snapshot isolation it does not.
	ReadP50Ms float64
	ReadP99Ms float64
	ReadMaxMs float64
	// Write latency (milliseconds): the old full-table-rewrite UPDATE vs
	// the MVCC single-version commit.
	WriteP50Ms float64
	WriteMaxMs float64
}

// percentile returns the p-quantile (0..1) of sorted durations in ms.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e6
}

// mixRand is a tiny deterministic xorshift64* stream, local so the op
// schedule is identical on every engine the sweep compares.
type mixRand struct{ state uint64 }

func (r *mixRand) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

func (r *mixRand) float64() float64 { return float64(r.next()>>11) / float64(1<<53) }
func (r *mixRand) intn(n int) int   { return int(r.next() % uint64(n)) }

// mixedOp is one pre-scheduled operation: a point UPDATE (write=true) or a
// range-aggregate SELECT. The schedule is fixed up front so every sweep
// point executes the same multiset of operations regardless of how they
// are divided among sessions.
type mixedOp struct {
	write bool
	key   int64
}

// MixedSweep measures aggregate throughput of a mixed read/write workload
// across growing numbers of concurrent sessions on ONE shared engine. The
// total operation count is fixed per measurement and divided among the
// sessions; after each measurement the table's checksum is verified
// against the number of writes applied, so a scheduling bug cannot
// masquerade as a speedup.
func MixedSweep(cfg MixedConfig) ([]MixedRow, error) {
	cfg.defaults()
	var rows []MixedRow
	for _, mode := range cfg.Durability {
		modeRows, err := mixedSweepMode(cfg, mode)
		if err != nil {
			return nil, err
		}
		rows = append(rows, modeRows...)
	}
	return rows, nil
}

// mixedSweepMode runs the worker sweep on one fresh engine in the given
// durability mode ("volatile" = no WAL; otherwise a WAL sync mode
// logging to a throwaway data directory).
func mixedSweepMode(cfg MixedConfig, mode string) (rows []MixedRow, err error) {
	var e *engine.Engine
	if mode == "volatile" {
		e = engine.New(engineOpts(engine.WithSeed(42))...)
	} else {
		sync, perr := wal.ParseSyncMode(mode)
		if perr != nil {
			return nil, fmt.Errorf("bench: durability mode: %w", perr)
		}
		dir, derr := os.MkdirTemp("", "plsqlaway-mixed-*")
		if derr != nil {
			return nil, derr
		}
		defer os.RemoveAll(dir)
		e, err = engine.Open(dir, engineOpts(engine.WithSeed(42), engine.WithSyncMode(sync))...)
		if err != nil {
			return nil, err
		}
		defer e.Close()
	}
	if err := e.Exec("CREATE TABLE mix_kv (k int, v int)"); err != nil {
		return nil, err
	}
	var sum0 int64
	var sb strings.Builder
	for base := 0; base < cfg.TableRows; {
		sb.Reset()
		sb.WriteString("INSERT INTO mix_kv VALUES ")
		for i := 0; i < 512 && base < cfg.TableRows; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d)", base, base)
			sum0 += int64(base)
			base++
		}
		if err := e.Exec(sb.String()); err != nil {
			return nil, err
		}
	}

	// Pre-schedule the op stream once: identical work at every sweep point.
	rng := &mixRand{state: 0x9E3779B97F4A7C15}
	ops := make([]mixedOp, cfg.Ops)
	writes := 0
	for i := range ops {
		w := rng.float64() < cfg.WriteRatio
		if w {
			writes++
		}
		ops[i] = mixedOp{write: w, key: int64(rng.intn(cfg.TableRows))}
	}
	reads := cfg.Ops - writes

	applied := int64(0) // cumulative writes across sweep points
	var baseline float64
	for _, n := range cfg.Workers {
		wall, readLat, writeLat, err := runMixed(e, ops, n, cfg.Span)
		if err != nil {
			return nil, fmt.Errorf("bench: mixed ×%d sessions (%s): %w", n, mode, err)
		}
		applied += int64(writes)
		// Each UPDATE adds exactly 1 to one row's v: the checksum pins the
		// sweep to "every write committed exactly once".
		got, err := e.QueryValue("SELECT sum(v) FROM mix_kv")
		if err != nil {
			return nil, err
		}
		if got.Int() != sum0+applied {
			return nil, fmt.Errorf("bench: mixed ×%d sessions (%s): checksum %d, want %d (lost or duplicated writes)", n, mode, got.Int(), sum0+applied)
		}
		row := MixedRow{
			Workers:      n,
			Durability:   mode,
			WriteRatio:   cfg.WriteRatio,
			Ops:          cfg.Ops,
			Reads:        reads,
			Writes:       writes,
			WallMs:       float64(wall.Nanoseconds()) / 1e6,
			OpsPerSec:    float64(cfg.Ops) / wall.Seconds(),
			ReadsPerSec:  float64(reads) / wall.Seconds(),
			WritesPerSec: float64(writes) / wall.Seconds(),
		}
		sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
		sort.Slice(writeLat, func(i, j int) bool { return writeLat[i] < writeLat[j] })
		row.ReadP50Ms = percentile(readLat, 0.50)
		row.ReadP99Ms = percentile(readLat, 0.99)
		row.ReadMaxMs = percentile(readLat, 1)
		row.WriteP50Ms = percentile(writeLat, 0.50)
		row.WriteMaxMs = percentile(writeLat, 1)
		if baseline == 0 {
			baseline = row.ReadsPerSec
		}
		if baseline > 0 {
			row.ReadSpeedup = row.ReadsPerSec / baseline
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runMixed executes the fixed op schedule spread round-robin over n
// sessions and returns the wall-clock time for the whole batch plus the
// per-op read and write latencies.
func runMixed(e *engine.Engine, ops []mixedOp, n, span int) (time.Duration, []time.Duration, []time.Duration, error) {
	type sessionState struct {
		read     *engine.Prepared
		write    *engine.Prepared
		ops      []mixedOp
		readLat  []time.Duration
		writeLat []time.Duration
	}
	states := make([]*sessionState, n)
	for i := range states {
		s := e.NewSession()
		read, err := s.Prepare("SELECT sum(v) FROM mix_kv WHERE k >= $1 AND k < $2")
		if err != nil {
			return 0, nil, nil, err
		}
		write, err := s.Prepare("UPDATE mix_kv SET v = v + 1 WHERE k = $1")
		if err != nil {
			return 0, nil, nil, err
		}
		states[i] = &sessionState{read: read, write: write}
	}
	for i, op := range ops {
		st := states[i%n]
		st.ops = append(st.ops, op)
	}
	// Warm the shared plan cache outside the measurement.
	if err := states[0].read.Exec(sqltypes.NewInt(0), sqltypes.NewInt(int64(span))); err != nil {
		return 0, nil, nil, err
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *sessionState) {
			defer wg.Done()
			for _, op := range st.ops {
				var err error
				opT0 := time.Now()
				if op.write {
					err = st.write.Exec(sqltypes.NewInt(op.key))
					st.writeLat = append(st.writeLat, time.Since(opT0))
				} else {
					err = st.read.Exec(sqltypes.NewInt(op.key), sqltypes.NewInt(op.key+int64(span)))
					st.readLat = append(st.readLat, time.Since(opT0))
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i, st)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return 0, nil, nil, err
		}
	}
	var readLat, writeLat []time.Duration
	for _, st := range states {
		readLat = append(readLat, st.readLat...)
		writeLat = append(writeLat, st.writeLat...)
	}
	return wall, readLat, writeLat, nil
}

// FormatMixed renders the mixed read/write sweep.
func FormatMixed(rows []MixedRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Mixed read/write workload: aggregate throughput on one shared engine (GOMAXPROCS=%d).\n", runtime.GOMAXPROCS(0))
	sb.WriteString("Fixed op schedule per measurement, divided among N sessions.\n\n")
	fmt.Fprintf(&sb, "%9s %10s %11s %7s %7s %10s %12s %12s %13s %9s %9s %9s\n",
		"sessions", "durability", "writeratio", "reads", "writes", "wall[ms]", "ops/sec", "reads/sec", "read-speedup",
		"rd-p99", "rd-max", "wr-max")
	sb.WriteString(strings.Repeat("-", 130) + "\n")
	for _, r := range rows {
		durability := r.Durability
		if durability == "" {
			durability = "volatile"
		}
		fmt.Fprintf(&sb, "%9d %10s %11.2f %7d %7d %10.1f %12.1f %12.1f %12.2fx %7.2fms %7.2fms %7.2fms\n",
			r.Workers, durability, r.WriteRatio, r.Reads, r.Writes, r.WallMs, r.OpsPerSec, r.ReadsPerSec, r.ReadSpeedup,
			r.ReadP99Ms, r.ReadMaxMs, r.WriteMaxMs)
	}
	return sb.String()
}

package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"plsqlaway/client"
	"plsqlaway/internal/core"
	"plsqlaway/internal/engine"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/workload"
)

// RemoteConfig sizes the multi-process scaling experiment: an external
// plsqld at Addr, the workload installed over the wire, and the corpus
// calls issued through the client package — synchronously (one request
// in flight per connection) and pipelined (Window requests in flight).
// An in-process baseline of the same calls quantifies the wire tax.
type RemoteConfig struct {
	Addr      string // host:port of a running plsqld (required)
	Conns     []int  // connection counts to sweep; default {1, 2, 4, …, max}
	MaxConns  int    // upper end of the default sweep; default 8
	Window    int    // pipelined requests in flight per connection; default 32
	Calls     int    // total calls per measurement; default 512
	Workloads []string
	Seed      uint64

	// Per-call sizes. The defaults keep individual calls cheap, which is
	// the regime where process-boundary round trips dominate — exactly
	// the tax the paper ascribes to PL/SQL↔SQL context switches, ported
	// to the application↔database boundary.
	TraverseHops int64 // default 50
	WalkSteps    int64 // default 100
	ParseLen     int   // default 100
	ClampArg     int64 // default 5
}

func (c *RemoteConfig) defaults() error {
	if c.Addr == "" {
		return fmt.Errorf("bench: remote sweep needs -addr host:port of a running plsqld")
	}
	if c.MaxConns < 1 {
		c.MaxConns = 8
	}
	if len(c.Conns) == 0 {
		for n := 1; n < c.MaxConns; n *= 2 {
			c.Conns = append(c.Conns, n)
		}
		c.Conns = append(c.Conns, c.MaxConns)
	}
	if c.Window < 1 {
		c.Window = 32
	}
	if c.Calls == 0 {
		c.Calls = 512
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"clamp", "traverse"}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.TraverseHops == 0 {
		c.TraverseHops = 50
	}
	if c.WalkSteps == 0 {
		c.WalkSteps = 100
	}
	if c.ParseLen == 0 {
		c.ParseLen = 100
	}
	if c.ClampArg == 0 {
		c.ClampArg = 5
	}
	return nil
}

// RemoteRow is one (workload, mode, connection-count) throughput point.
type RemoteRow struct {
	Workload    string
	Mode        string // "inproc", "remote-sync", or "remote-pipelined"
	Conns       int
	Window      int // requests in flight per connection (1 for sync)
	Calls       int
	WallMs      float64
	CallsPerSec float64
	// Speedup is against the same workload's remote-sync 1-connection
	// point — the protocol's own baseline.
	Speedup float64
}

// remoteCall describes how one corpus workload is invoked remotely: the
// prepared-statement text, its arguments, and whether each call must be
// preceded by a deterministic reseed (the stochastic robot walk).
type remoteCall struct {
	sql    string
	args   []sqltypes.Value
	reseed bool
}

func (cfg *RemoteConfig) call(name string) (remoteCall, error) {
	switch name {
	case "clamp":
		return remoteCall{
			sql:  "SELECT clamp_c($1, $2, $3)",
			args: []sqltypes.Value{sqltypes.NewInt(cfg.ClampArg), sqltypes.NewInt(1), sqltypes.NewInt(10)},
		}, nil
	case "traverse":
		return remoteCall{
			sql:  "SELECT traverse_c($1, $2)",
			args: []sqltypes.Value{sqltypes.NewInt(0), sqltypes.NewInt(cfg.TraverseHops)},
		}, nil
	case "parse":
		return remoteCall{
			sql:  "SELECT parse_c($1)",
			args: []sqltypes.Value{sqltypes.NewText(workload.MakeParseInput(cfg.ParseLen, 11))},
		}, nil
	case "walk":
		return remoteCall{
			sql: "SELECT walk_c(coord(2, 2), $1, $2, $3)",
			args: []sqltypes.Value{
				sqltypes.NewInt(winHuge), sqltypes.NewInt(looseHuge), sqltypes.NewInt(cfg.WalkSteps),
			},
			reseed: true,
		}, nil
	default:
		return remoteCall{}, fmt.Errorf("bench: remote driver does not know workload %q", name)
	}
}

// CreateFunctionSQL renders a compiled function as the CREATE FUNCTION …
// LANGUAGE sql statement that installs it over the wire — the textual
// twin of plsqlaway.Install.
func CreateFunctionSQL(name string, res *core.Result) string {
	var params []string
	for _, p := range res.Params {
		params = append(params, fmt.Sprintf("%s %s", p.Name, p.Type))
	}
	return fmt.Sprintf("CREATE FUNCTION %s(%s) RETURNS %s AS $$ %s $$ LANGUAGE sql",
		name, strings.Join(params, ", "), res.ReturnType, sqlast.DeparseQuery(res.Query))
}

// InstallRemoteWorkloads resets and installs the workload schemas plus
// the interpreted and compiled corpus functions on x — entirely through
// SQL, so the same call works on an engine, a session, or a remote
// connection.
func InstallRemoteWorkloads(x workload.Execer, names ...string) error {
	drops := []string{
		"DROP TABLE IF EXISTS cells", "DROP TABLE IF EXISTS policy", "DROP TABLE IF EXISTS actions",
		"DROP TABLE IF EXISTS fsm", "DROP TABLE IF EXISTS edges", "DROP TABLE IF EXISTS fees",
	}
	for _, name := range names {
		drops = append(drops,
			"DROP FUNCTION IF EXISTS "+name,
			"DROP FUNCTION IF EXISTS "+name+"_c")
	}
	for _, d := range drops {
		if err := x.Exec(d); err != nil {
			return fmt.Errorf("bench: reset: %w", err)
		}
	}
	world := workload.NewRobotWorld(5, 5, 7)
	if err := world.Install(x); err != nil {
		return err
	}
	if err := workload.InstallFSM(x); err != nil {
		return err
	}
	if err := workload.InstallGraph(x, 4096, 3); err != nil {
		return err
	}
	if err := workload.InstallFees(x); err != nil {
		return err
	}
	for _, name := range names {
		src, ok := workload.Corpus[name]
		if !ok {
			return fmt.Errorf("bench: unknown corpus function %q", name)
		}
		if err := x.Exec(src); err != nil {
			return fmt.Errorf("bench: install interpreted %s: %w", name, err)
		}
		res, err := core.Compile(src, core.Options{})
		if err != nil {
			return err
		}
		if err := x.Exec(CreateFunctionSQL(name+"_c", res)); err != nil {
			return fmt.Errorf("bench: install compiled %s: %w", name, err)
		}
	}
	return nil
}

// RemoteScaling measures corpus-call throughput through the wire
// protocol against an external plsqld: synchronous and pipelined modes
// across growing connection counts, next to an in-process single-session
// baseline of the identical calls. The total call count is fixed per
// measurement.
func RemoteScaling(cfg RemoteConfig) ([]RemoteRow, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}

	// Install everything over the wire through an admin connection.
	admin, err := client.Dial(cfg.Addr, client.WithSeed(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("bench: dial %s: %w", cfg.Addr, err)
	}
	defer admin.Close()
	if err := InstallRemoteWorkloads(admin, cfg.Workloads...); err != nil {
		return nil, err
	}

	// In-process twin: same schemas, same functions, for the baseline
	// rows and for validating remote answers.
	local := engine.New(engineOpts(engine.WithProfile(profile.PostgreSQL), engine.WithSeed(cfg.Seed))...)
	if err := InstallRemoteWorkloads(local, cfg.Workloads...); err != nil {
		return nil, err
	}

	var rows []RemoteRow
	for _, wl := range cfg.Workloads {
		call, err := cfg.call(wl)
		if err != nil {
			return nil, err
		}

		// Expected answer, computed in process (reseeded, so the
		// stochastic walk agrees too).
		ls := local.NewSession()
		ls.Seed(cfg.Seed)
		want, err := ls.QueryValue(call.sql, call.args...)
		if err != nil {
			return nil, fmt.Errorf("bench: %s in-process: %w", wl, err)
		}

		// In-process baseline: one session, sequential calls.
		inWall, err := runInproc(local, call, cfg.Calls, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RemoteRow{
			Workload: wl, Mode: "inproc", Conns: 1, Window: 1, Calls: cfg.Calls,
			WallMs:      float64(inWall.Nanoseconds()) / 1e6,
			CallsPerSec: float64(cfg.Calls) / inWall.Seconds(),
		})

		var baseline float64
		for _, mode := range []string{"remote-sync", "remote-pipelined"} {
			window := 1
			if mode == "remote-pipelined" {
				window = cfg.Window
			}
			for _, n := range cfg.Conns {
				wall, err := runRemote(cfg.Addr, call, cfg.Calls, n, window, cfg.Seed, want)
				if err != nil {
					return nil, fmt.Errorf("bench: %s %s ×%d conns: %w", wl, mode, n, err)
				}
				row := RemoteRow{
					Workload: wl, Mode: mode, Conns: n, Window: window, Calls: cfg.Calls,
					WallMs:      float64(wall.Nanoseconds()) / 1e6,
					CallsPerSec: float64(cfg.Calls) / wall.Seconds(),
				}
				if baseline == 0 {
					baseline = row.CallsPerSec
				}
				row.Speedup = row.CallsPerSec / baseline
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// runInproc executes calls sequentially on one embedded session.
func runInproc(e *engine.Engine, call remoteCall, calls int, seed uint64) (time.Duration, error) {
	s := e.NewSession()
	p, err := s.Prepare(call.sql)
	if err != nil {
		return 0, err
	}
	// Warm-up (plan cache).
	s.Seed(seed)
	if err := p.Exec(call.args...); err != nil {
		return 0, err
	}
	t0 := time.Now()
	for i := 0; i < calls; i++ {
		if call.reseed {
			s.Seed(seed)
		}
		if err := p.Exec(call.args...); err != nil {
			return 0, err
		}
	}
	return time.Since(t0), nil
}

// runRemote executes the fixed call total spread over n connections with
// the given per-connection pipeline window, checking every answer
// against want.
func runRemote(addr string, call remoteCall, calls, n, window int, seed uint64, want sqltypes.Value) (time.Duration, error) {
	pool, err := client.NewPool(addr, n, client.WithSeed(seed), client.WithWindow(window+2))
	if err != nil {
		return 0, err
	}
	defer pool.Close()

	stmts := make([]*client.Stmt, n)
	for i := 0; i < n; i++ {
		st, err := pool.At(i).Prepare(call.sql)
		if err != nil {
			return 0, err
		}
		stmts[i] = st
	}
	// Warm-up: one call on connection 0 populates the shared plan cache.
	if call.reseed {
		if err := pool.At(0).Seed(seed); err != nil {
			return 0, err
		}
	}
	if _, err := stmts[0].Query(call.args...); err != nil {
		return 0, err
	}

	per := make([]int, n)
	for i := 0; i < calls; i++ {
		per[i%n]++
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runConn(pool.At(i), stmts[i], call, per[i], window, seed, want)
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return wall, nil
}

// runConn drives one connection: window=1 is call-and-wait; larger
// windows keep that many calls in flight, waiting for the oldest before
// sending the next.
func runConn(c *client.Conn, st *client.Stmt, call remoteCall, calls, window int, seed uint64, want sqltypes.Value) error {
	check := func(res *client.Result) error {
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 || !sqltypes.Identical(res.Rows[0][0], want) {
			return fmt.Errorf("bench: remote answer %v, in-process answer %v", res.Rows, want)
		}
		return nil
	}
	if window <= 1 {
		for k := 0; k < calls; k++ {
			if call.reseed {
				if err := c.Seed(seed); err != nil {
					return err
				}
			}
			res, err := st.Query(call.args...)
			if err != nil {
				return err
			}
			if err := check(res); err != nil {
				return err
			}
		}
		return nil
	}
	inflight := make([]*client.Pending, 0, window)
	wait := func(p *client.Pending) error {
		res, err := p.Wait()
		if err != nil {
			return err
		}
		return check(res)
	}
	for k := 0; k < calls; k++ {
		if call.reseed {
			if _, err := c.SeedAsync(seed); err != nil {
				return err
			}
		}
		p, err := st.Send(call.args...)
		if err != nil {
			return err
		}
		inflight = append(inflight, p)
		if len(inflight) >= window {
			if err := wait(inflight[0]); err != nil {
				return err
			}
			inflight = inflight[1:]
		}
	}
	for _, p := range inflight {
		if err := wait(p); err != nil {
			return err
		}
	}
	return nil
}

// FormatRemote renders the multi-process sweep.
func FormatRemote(rows []RemoteRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Wire protocol: corpus calls through plsqld (GOMAXPROCS=%d client-side).\n", runtime.GOMAXPROCS(0))
	sb.WriteString("Fixed total calls per measurement; speedup is vs remote-sync ×1 conn.\n\n")
	fmt.Fprintf(&sb, "%-10s %-17s %6s %7s %7s %10s %12s %9s\n",
		"workload", "mode", "conns", "window", "calls", "wall[ms]", "calls/sec", "speedup")
	sb.WriteString(strings.Repeat("-", 84) + "\n")
	last := ""
	for _, r := range rows {
		if last != "" && r.Workload != last {
			sb.WriteString("\n")
		}
		last = r.Workload
		speed := "     -"
		if r.Speedup > 0 {
			speed = fmt.Sprintf("%8.2fx", r.Speedup)
		}
		fmt.Fprintf(&sb, "%-10s %-17s %6d %7d %7d %10.1f %12.1f %s\n",
			r.Workload, r.Mode, r.Conns, r.Window, r.Calls, r.WallMs, r.CallsPerSec, speed)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Remote mixed read/write sweep
// ---------------------------------------------------------------------------

// RemoteMixedConfig sizes the remote mixed read/write experiment — the
// MixedSweep schedule issued through wire connections against an
// external plsqld, with the write checksum verified remotely and the
// commit counters asserted through the stats frame.
type RemoteMixedConfig struct {
	Addr       string
	Conns      []int
	MaxConns   int
	Ops        int     // default 2048
	TableRows  int     // default 4096
	Span       int     // default 256
	WriteRatio float64 // default 0.1
	Seed       uint64
}

func (c *RemoteMixedConfig) defaults() error {
	if c.Addr == "" {
		return fmt.Errorf("bench: remote mixed sweep needs -addr host:port of a running plsqld")
	}
	if c.MaxConns < 1 {
		c.MaxConns = 8
	}
	if len(c.Conns) == 0 {
		for n := 1; n < c.MaxConns; n *= 2 {
			c.Conns = append(c.Conns, n)
		}
		c.Conns = append(c.Conns, c.MaxConns)
	}
	if c.Ops == 0 {
		c.Ops = 2048
	}
	if c.TableRows == 0 {
		c.TableRows = 4096
	}
	if c.Span == 0 {
		c.Span = 256
	}
	if c.WriteRatio < 0 {
		c.WriteRatio = 0
	}
	if c.WriteRatio > 1 {
		c.WriteRatio = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return nil
}

// RemoteMixed runs the mixed read/write schedule through wire
// connections. Rows reuse MixedRow, so the text/JSON shapes match the
// in-process sweep.
func RemoteMixed(cfg RemoteMixedConfig) ([]MixedRow, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	admin, err := client.Dial(cfg.Addr, client.WithSeed(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("bench: dial %s: %w", cfg.Addr, err)
	}
	defer admin.Close()

	if err := admin.Exec("DROP TABLE IF EXISTS mix_kv"); err != nil {
		return nil, err
	}
	if err := admin.Exec("CREATE TABLE mix_kv (k int, v int)"); err != nil {
		return nil, err
	}
	var sum0 int64
	var sb strings.Builder
	for base := 0; base < cfg.TableRows; {
		sb.Reset()
		sb.WriteString("INSERT INTO mix_kv VALUES ")
		for i := 0; i < 512 && base < cfg.TableRows; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d)", base, base)
			sum0 += int64(base)
			base++
		}
		if err := admin.Exec(sb.String()); err != nil {
			return nil, err
		}
	}

	// The same deterministic schedule the in-process sweep uses.
	rng := &mixRand{state: 0x9E3779B97F4A7C15}
	ops := make([]mixedOp, cfg.Ops)
	writes := 0
	for i := range ops {
		w := rng.float64() < cfg.WriteRatio
		if w {
			writes++
		}
		ops[i] = mixedOp{write: w, key: int64(rng.intn(cfg.TableRows))}
	}
	reads := cfg.Ops - writes

	var rows []MixedRow
	applied := int64(0)
	var baseline float64
	for _, n := range cfg.Conns {
		before, err := admin.Stats()
		if err != nil {
			return nil, err
		}
		wall, readLat, writeLat, err := runRemoteMixed(cfg.Addr, ops, n, cfg.Span, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: remote mixed ×%d conns: %w", n, err)
		}
		applied += int64(writes)
		got, err := admin.QueryValue("SELECT sum(v) FROM mix_kv")
		if err != nil {
			return nil, err
		}
		if got.Int() != sum0+applied {
			return nil, fmt.Errorf("bench: remote mixed ×%d conns: checksum %d, want %d (lost or duplicated writes)", n, got.Int(), sum0+applied)
		}
		// The stats frame must account for every write as exactly one
		// heap commit — storage behaviour asserted with no process access.
		after, err := admin.Stats()
		if err != nil {
			return nil, err
		}
		if delta := after.Commits - before.Commits; delta != int64(writes) {
			return nil, fmt.Errorf("bench: remote mixed ×%d conns: %d commits for %d writes", n, delta, writes)
		}
		row := MixedRow{
			Workers:      n,
			WriteRatio:   cfg.WriteRatio,
			Ops:          cfg.Ops,
			Reads:        reads,
			Writes:       writes,
			WallMs:       float64(wall.Nanoseconds()) / 1e6,
			OpsPerSec:    float64(cfg.Ops) / wall.Seconds(),
			ReadsPerSec:  float64(reads) / wall.Seconds(),
			WritesPerSec: float64(writes) / wall.Seconds(),
		}
		sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
		sort.Slice(writeLat, func(i, j int) bool { return writeLat[i] < writeLat[j] })
		row.ReadP50Ms = percentile(readLat, 0.50)
		row.ReadP99Ms = percentile(readLat, 0.99)
		row.ReadMaxMs = percentile(readLat, 1)
		row.WriteP50Ms = percentile(writeLat, 0.50)
		row.WriteMaxMs = percentile(writeLat, 1)
		if baseline == 0 {
			baseline = row.ReadsPerSec
		}
		if baseline > 0 {
			row.ReadSpeedup = row.ReadsPerSec / baseline
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runRemoteMixed spreads the op schedule round-robin over n connections
// (synchronous per connection: latency percentiles stay meaningful).
func runRemoteMixed(addr string, ops []mixedOp, n, span int, seed uint64) (time.Duration, []time.Duration, []time.Duration, error) {
	pool, err := client.NewPool(addr, n, client.WithSeed(seed))
	if err != nil {
		return 0, nil, nil, err
	}
	defer pool.Close()

	type connState struct {
		read     *client.Stmt
		write    *client.Stmt
		ops      []mixedOp
		readLat  []time.Duration
		writeLat []time.Duration
	}
	states := make([]*connState, n)
	for i := range states {
		c := pool.At(i)
		read, err := c.Prepare("SELECT sum(v) FROM mix_kv WHERE k >= $1 AND k < $2")
		if err != nil {
			return 0, nil, nil, err
		}
		write, err := c.Prepare("UPDATE mix_kv SET v = v + 1 WHERE k = $1")
		if err != nil {
			return 0, nil, nil, err
		}
		states[i] = &connState{read: read, write: write}
	}
	for i, op := range ops {
		states[i%n].ops = append(states[i%n].ops, op)
	}
	// Warm the shared plan cache outside the measurement.
	if err := states[0].read.Exec(sqltypes.NewInt(0), sqltypes.NewInt(int64(span))); err != nil {
		return 0, nil, nil, err
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *connState) {
			defer wg.Done()
			for _, op := range st.ops {
				var err error
				opT0 := time.Now()
				if op.write {
					err = st.write.Exec(sqltypes.NewInt(op.key))
					st.writeLat = append(st.writeLat, time.Since(opT0))
				} else {
					err = st.read.Exec(sqltypes.NewInt(op.key), sqltypes.NewInt(op.key+int64(span)))
					st.readLat = append(st.readLat, time.Since(opT0))
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i, st)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return 0, nil, nil, err
		}
	}
	var readLat, writeLat []time.Duration
	for _, st := range states {
		readLat = append(readLat, st.readLat...)
		writeLat = append(writeLat, st.writeLat...)
	}
	return wall, readLat, writeLat, nil
}

package catalog

import (
	"testing"

	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

func newCat() *Catalog { return New(&storage.Stats{}) }

func TestCreateDropTable(t *testing.T) {
	c := newCat()
	cols := []Column{{Name: "a", Type: sqltypes.TypeInt}}
	tbl, err := c.CreateTable("T1", cols, false)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name != "t1" {
		t.Errorf("name not lowered: %q", tbl.Name)
	}
	if _, ok := c.Table("t1"); !ok {
		t.Error("lookup by lower name failed")
	}
	if _, ok := c.Table("T1"); !ok {
		t.Error("lookup is case-insensitive")
	}
	if _, err := c.CreateTable("t1", cols, false); err == nil {
		t.Error("duplicate create should fail")
	}
	if _, err := c.CreateTable("t1", cols, true); err != nil {
		t.Error("IF NOT EXISTS should succeed")
	}
	if err := c.DropTable("t1", false); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t1", false); err == nil {
		t.Error("double drop should fail")
	}
	if err := c.DropTable("t1", true); err != nil {
		t.Error("IF EXISTS drop should succeed")
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	c := newCat()
	_, err := c.CreateTable("t", []Column{
		{Name: "a", Type: sqltypes.TypeInt}, {Name: "a", Type: sqltypes.TypeText},
	}, false)
	if err == nil {
		t.Error("duplicate column should fail")
	}
}

func TestVersionBumpsOnDDL(t *testing.T) {
	c := newCat()
	v0 := c.Version
	c.CreateTable("t", []Column{{Name: "a", Type: sqltypes.TypeInt}}, false)
	if c.Version == v0 {
		t.Error("version should bump on create")
	}
	v1 := c.Version
	c.DeclareIndex("t", "a")
	if c.Version == v1 {
		t.Error("version should bump on index declare")
	}
}

func TestFunctions(t *testing.T) {
	c := newCat()
	f := &Function{Name: "f", ReturnType: sqltypes.TypeInt, Kind: FuncSQL}
	if err := c.CreateFunction(f, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateFunction(f, false); err == nil {
		t.Error("duplicate function should fail without OR REPLACE")
	}
	if err := c.CreateFunction(f, true); err != nil {
		t.Error("OR REPLACE should succeed")
	}
	got, ok := c.Function("F")
	if !ok || got.Kind != FuncSQL {
		t.Error("case-insensitive function lookup failed")
	}
	if err := c.DropFunction("f", false); err != nil {
		t.Fatal(err)
	}
	if err := c.DropFunction("f", false); err == nil {
		t.Error("double drop should fail")
	}
}

func TestIndexProbe(t *testing.T) {
	c := newCat()
	tbl, _ := c.CreateTable("t", []Column{
		{Name: "k", Type: sqltypes.TypeInt}, {Name: "v", Type: sqltypes.TypeText},
	}, false)
	for i := int64(0); i < 100; i++ {
		tbl.Heap.Insert(storage.Tuple{sqltypes.NewInt(i % 10), sqltypes.NewText("x")})
	}
	if err := c.DeclareIndex("t", "k"); err != nil {
		t.Fatal(err)
	}
	// DeclareIndex is copy-on-write: it installs a fresh *Table.
	tbl, _ = c.Table("t")
	idx, ok := tbl.IndexOn(0)
	if !ok {
		t.Fatal("index not found")
	}
	hits, rows, err := idx.Probe(tbl, sqltypes.NewInt(3), storage.AllVisible)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 10 {
		t.Errorf("hits: %d, want 10", len(hits))
	}
	for _, h := range hits {
		if rows[h][0].Int() != 3 {
			t.Errorf("false positive: %v", rows[h])
		}
	}
	// NULL key matches nothing.
	hits, _, _ = idx.Probe(tbl, sqltypes.Null, storage.AllVisible)
	if len(hits) != 0 {
		t.Error("NULL probe must be empty")
	}
	// Index refreshes after mutation.
	tbl.Heap.Insert(storage.Tuple{sqltypes.NewInt(3), sqltypes.NewText("new")})
	hits, _, _ = idx.Probe(tbl, sqltypes.NewInt(3), storage.AllVisible)
	if len(hits) != 11 {
		t.Errorf("stale index after insert: %d hits", len(hits))
	}
	// Numeric cross-kind probe (float key hits int column).
	hits, _, _ = idx.Probe(tbl, sqltypes.NewFloat(3), storage.AllVisible)
	if len(hits) != 11 {
		t.Errorf("float probe of int column: %d hits, want 11", len(hits))
	}
}

func TestDeclareIndexErrors(t *testing.T) {
	c := newCat()
	if err := c.DeclareIndex("nosuch", "a"); err == nil {
		t.Error("missing table should fail")
	}
	c.CreateTable("t", []Column{{Name: "a", Type: sqltypes.TypeInt}}, false)
	if err := c.DeclareIndex("t", "nosuch"); err == nil {
		t.Error("missing column should fail")
	}
	if err := c.DeclareIndex("t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareIndex("t", "a"); err != nil {
		t.Error("re-declare should be idempotent")
	}
}

// Package catalog tracks the schema objects of one engine instance: base
// tables (backed by heap storage) and functions (interpreted PL/pgSQL,
// single-expression SQL UDFs, and compiled functions installed by the
// PL/SQL-away compiler).
package catalog

import (
	"fmt"
	"maps"
	"sort"
	"strings"
	"sync/atomic"

	"plsqlaway/internal/plast"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// Column describes one table column.
type Column struct {
	Name string
	Type sqltypes.Type
}

// Table is a base table.
type Table struct {
	Name string
	Cols []Column
	Heap *storage.Heap

	indexes *tableIndexes
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// FuncKind distinguishes how a function body is evaluated.
type FuncKind uint8

// Function kinds.
const (
	// FuncPLpgSQL is interpreted statement by statement (context switches!).
	FuncPLpgSQL FuncKind = iota
	// FuncSQL is a LANGUAGE SQL function: a single query over its params.
	FuncSQL
	// FuncCompiled is a function compiled away: calls are answered by
	// evaluating an inlined pure-SQL query (no interpreter involvement).
	FuncCompiled
)

func (k FuncKind) String() string {
	switch k {
	case FuncPLpgSQL:
		return "plpgsql"
	case FuncSQL:
		return "sql"
	case FuncCompiled:
		return "compiled"
	default:
		return "unknown"
	}
}

// Function is a callable registered in the catalog.
type Function struct {
	Name       string
	Params     []plast.Param
	ReturnType sqltypes.Type
	Kind       FuncKind

	PL      *plast.Function // FuncPLpgSQL
	SQLBody *sqlast.Query   // FuncSQL and FuncCompiled: body query; params are $1..$n

	// Volatile marks functions whose evaluation may draw from the session
	// random stream or otherwise not be a pure function of its arguments.
	// PL/pgSQL bodies are conservatively volatile (statement-by-statement
	// control flow, exception handling); SQL-bodied functions are volatile
	// iff their body calls random()/setseed() or another volatile function.
	// The planner refuses to inline volatile functions: they stay opaque
	// per-row calls so the deterministic draw order is preserved.
	Volatile bool
}

// QueryVolatile reports whether q contains a call to a volatile builtin
// (random, setseed) or to a catalog function classified volatile — the
// body-walk behind Function.Volatile for SQL-bodied functions. Unknown
// names are treated as pure: they are either pure builtins or will fail at
// bind time anyway.
func (c *Catalog) QueryVolatile(q *sqlast.Query) bool {
	vol := false
	sqlast.WalkQuery(q, func(e sqlast.Expr) bool {
		fc, ok := e.(*sqlast.FuncCall)
		if !ok {
			return true
		}
		switch strings.ToLower(fc.Name) {
		case "random", "setseed":
			vol = true
			return false
		}
		if f, ok := c.Function(fc.Name); ok && f.Volatile {
			vol = true
			return false
		}
		return !vol
	})
	return vol
}

// Catalog is the schema registry. It is copy-on-write: the engine
// publishes immutable catalog snapshots behind an atomic pointer, and DDL
// mutates a Clone (under the writers-only commit lock) before swapping it
// in. Any number of sessions read a published snapshot (Table/Function
// lookups, planning) with no synchronization at all — there is nothing to
// synchronize against, because a published snapshot never changes.
// Mutation methods are therefore not internally synchronized; they are
// only ever called on an unpublished clone (or a single-owner catalog in
// tests and tools).
type Catalog struct {
	tables map[string]*Table
	funcs  map[string]*Function
	stats  *storage.Stats
	// Version changes on every DDL change; the plan cache uses it to
	// invalidate stale plans. DML does not change it: row changes are
	// versioned by the storage layer's commit timestamps, not the schema.
	// Versions are globally unique (one atomic counter hands them out),
	// never reused: a plan built against a transaction's private clone
	// that later rolls back can never masquerade as valid for a published
	// catalog that happens to have mutated the same number of times.
	Version int64
}

// versionCounter hands out globally unique catalog versions.
var versionCounter atomic.Int64

func nextVersion() int64 { return versionCounter.Add(1) }

// Clone returns a shallow copy for copy-on-write DDL: the table and
// function maps are copied, the objects themselves are shared. DDL on the
// clone must therefore replace objects, never mutate them in place —
// DeclareIndex, for example, installs a fresh *Table.
func (c *Catalog) Clone() *Catalog {
	return &Catalog{
		tables:  maps.Clone(c.tables),
		funcs:   maps.Clone(c.funcs),
		stats:   c.stats,
		Version: c.Version,
	}
}

// New creates an empty catalog charging storage to stats.
func New(stats *storage.Stats) *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		funcs:  make(map[string]*Function),
		stats:  stats,
	}
}

// CreateTable registers a new table.
func (c *Catalog) CreateTable(name string, cols []Column, ifNotExists bool) (*Table, error) {
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; ok {
		if ifNotExists {
			return c.tables[key], nil
		}
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		if seen[col.Name] {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, name)
		}
		seen[col.Name] = true
	}
	t := &Table{Name: key, Cols: cols, Heap: storage.NewHeap(c.stats)}
	c.tables[key] = t
	c.Version = nextVersion()
	return t, nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string, ifExists bool) error {
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key)
	c.Version = nextVersion()
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames lists tables in sorted order.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateFunction registers (or replaces) a function.
func (c *Catalog) CreateFunction(f *Function, orReplace bool) error {
	key := strings.ToLower(f.Name)
	if _, ok := c.funcs[key]; ok && !orReplace {
		return fmt.Errorf("catalog: function %q already exists", f.Name)
	}
	c.funcs[key] = f
	c.Version = nextVersion()
	return nil
}

// DropFunction removes a function.
func (c *Catalog) DropFunction(name string, ifExists bool) error {
	key := strings.ToLower(name)
	if _, ok := c.funcs[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("catalog: function %q does not exist", name)
	}
	delete(c.funcs, key)
	c.Version = nextVersion()
	return nil
}

// Function looks up a function by name.
func (c *Catalog) Function(name string) (*Function, bool) {
	f, ok := c.funcs[strings.ToLower(name)]
	return f, ok
}

// FunctionNames lists functions in sorted order.
func (c *Catalog) FunctionNames() []string {
	names := make([]string, 0, len(c.funcs))
	for n := range c.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package catalog

import (
	"fmt"
	"strings"
	"sync"

	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// Index is a hash index over one column, rebuilt lazily when the heap's
// generation moves (adequate for workload-scale tables; a production system
// would maintain it incrementally). Probes from concurrent sessions share
// the read lock; the lazy rebuild after a heap mutation takes the write
// lock with a double-check, so only one prober rebuilds.
type Index struct {
	Col     int
	gen     int64
	buckets map[uint64][]int // value hash → row positions
	mu      sync.RWMutex
}

// ensureIndexes is the per-table registry of *declared* indexes: the
// planner only considers columns the user indexed with CREATE INDEX, like a
// real optimizer.
type tableIndexes struct {
	byCol map[int]*Index
}

// DeclareIndex registers an index on the named column.
func (c *Catalog) DeclareIndex(table, col string) error {
	t, ok := c.Table(table)
	if !ok {
		return fmt.Errorf("catalog: relation %q does not exist", table)
	}
	ci := t.ColIndex(strings.ToLower(col))
	if ci < 0 {
		return fmt.Errorf("catalog: column %q of relation %q does not exist", col, table)
	}
	if t.indexes == nil {
		t.indexes = &tableIndexes{byCol: map[int]*Index{}}
	}
	if _, dup := t.indexes.byCol[ci]; dup {
		return nil // idempotent
	}
	t.indexes.byCol[ci] = &Index{Col: ci, gen: -1}
	c.Version++
	return nil
}

// IndexOn returns the declared index for a column, if any.
func (t *Table) IndexOn(col int) (*Index, bool) {
	if t.indexes == nil {
		return nil, false
	}
	idx, ok := t.indexes.byCol[col]
	return idx, ok
}

// Probe returns the row positions whose indexed column is Identical to key,
// rebuilding the hash table first if the heap changed. NULL keys match
// nothing (SQL equality).
func (idx *Index) Probe(t *Table, key sqltypes.Value) ([]int, []storage.Tuple, error) {
	if key.IsNull() {
		return nil, nil, nil
	}
	rows, err := t.Heap.Rows()
	if err != nil {
		return nil, nil, err
	}
	gen := t.Heap.Gen()
	idx.mu.RLock()
	fresh := idx.gen == gen
	var candidates []int
	if fresh {
		candidates = idx.buckets[sqltypes.Hash(key)]
	}
	idx.mu.RUnlock()
	if !fresh {
		idx.mu.Lock()
		if idx.gen != gen { // double-check: lost the rebuild race?
			idx.buckets = make(map[uint64][]int, len(rows))
			for i, r := range rows {
				h := sqltypes.Hash(r[idx.Col])
				idx.buckets[h] = append(idx.buckets[h], i)
			}
			idx.gen = gen
		}
		candidates = idx.buckets[sqltypes.Hash(key)]
		idx.mu.Unlock()
	}

	var hits []int
	for _, i := range candidates {
		if sqltypes.Identical(rows[i][idx.Col], key) {
			hits = append(hits, i)
		}
	}
	return hits, rows, nil
}

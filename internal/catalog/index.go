package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// Index is a hash index over one column, rebuilt lazily per heap snapshot
// (adequate for workload-scale tables; a production system would maintain
// it incrementally). The bucket table is keyed by the heap's snapshot
// cache key, so all sessions reading the same snapshot share one build,
// and a commit only invalidates builds for snapshots that can see it.
// Probes from concurrent sessions share the read lock; a rebuild takes
// the write lock with a double-check, so only one prober rebuilds.
type Index struct {
	Col int

	mu     sync.RWMutex
	builds []indexBuild
}

// indexBuild is the bucket table for one heap snapshot window.
type indexBuild struct {
	key     int64
	buckets map[uint64][]int // value hash → row positions
}

// maxIndexBuilds bounds how many snapshot windows keep their buckets.
const maxIndexBuilds = 2

// tableIndexes is the per-table registry of *declared* indexes: the
// planner only considers columns the user indexed with CREATE INDEX, like
// a real optimizer.
type tableIndexes struct {
	byCol map[int]*Index
}

// DeclareIndex registers an index on the named column. The catalog is
// copy-on-write, so the table is replaced by a copy carrying the new
// index registry rather than mutated in place — older published catalog
// snapshots keep the index-free table.
func (c *Catalog) DeclareIndex(table, col string) error {
	t, ok := c.Table(table)
	if !ok {
		return fmt.Errorf("catalog: relation %q does not exist", table)
	}
	ci := t.ColIndex(strings.ToLower(col))
	if ci < 0 {
		return fmt.Errorf("catalog: column %q of relation %q does not exist", col, table)
	}
	if t.indexes != nil {
		if _, dup := t.indexes.byCol[ci]; dup {
			return nil // idempotent
		}
	}
	nt := &Table{Name: t.Name, Cols: t.Cols, Heap: t.Heap}
	nt.indexes = &tableIndexes{byCol: map[int]*Index{}}
	if t.indexes != nil {
		for k, v := range t.indexes.byCol {
			nt.indexes.byCol[k] = v
		}
	}
	nt.indexes.byCol[ci] = &Index{Col: ci}
	c.tables[t.Name] = nt
	c.Version = nextVersion()
	return nil
}

// IndexedCols lists the column positions with declared indexes, sorted —
// the serialization order checkpoints persist index declarations in.
func (t *Table) IndexedCols() []int {
	if t.indexes == nil {
		return nil
	}
	cols := make([]int, 0, len(t.indexes.byCol))
	for ci := range t.indexes.byCol {
		cols = append(cols, ci)
	}
	sort.Ints(cols)
	return cols
}

// IndexOn returns the declared index for a column, if any.
func (t *Table) IndexOn(col int) (*Index, bool) {
	if t.indexes == nil {
		return nil, false
	}
	idx, ok := t.indexes.byCol[col]
	return idx, ok
}

// Probe returns the row positions whose indexed column is Identical to
// key among the rows visible at snapshot ts, rebuilding the hash table
// first if no build covers that snapshot. NULL keys match nothing (SQL
// equality). The returned positions index into the returned rows slice.
func (idx *Index) Probe(t *Table, key sqltypes.Value, ts int64) ([]int, []storage.Tuple, error) {
	if key.IsNull() {
		return nil, nil, nil
	}
	rows, snapKey, err := t.Heap.RowsKeyed(ts)
	if err != nil {
		return nil, nil, err
	}
	h := sqltypes.Hash(key)

	idx.mu.RLock()
	var candidates []int
	fresh := false
	for i := range idx.builds {
		if idx.builds[i].key == snapKey {
			candidates = idx.builds[i].buckets[h]
			fresh = true
			break
		}
	}
	idx.mu.RUnlock()

	if !fresh {
		idx.mu.Lock()
		var buckets map[uint64][]int
		for i := range idx.builds {
			if idx.builds[i].key == snapKey { // lost the rebuild race
				buckets = idx.builds[i].buckets
				break
			}
		}
		if buckets == nil {
			buckets = make(map[uint64][]int, len(rows))
			for i, r := range rows {
				bh := sqltypes.Hash(r[idx.Col])
				buckets[bh] = append(buckets[bh], i)
			}
			if len(idx.builds) >= maxIndexBuilds {
				idx.builds = idx.builds[1:]
			}
			idx.builds = append(idx.builds, indexBuild{key: snapKey, buckets: buckets})
		}
		candidates = buckets[h]
		idx.mu.Unlock()
	}

	var hits []int
	for _, i := range candidates {
		if sqltypes.Identical(rows[i][idx.Col], key) {
			hits = append(hits, i)
		}
	}
	return hits, rows, nil
}

package plinterp

import (
	"strings"
	"testing"

	"plsqlaway/internal/catalog"
	"plsqlaway/internal/exec"
	"plsqlaway/internal/plan"
	"plsqlaway/internal/plparser"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqlparser"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// harness builds a bare interpreter over an empty (or seeded) catalog.
func harness(t *testing.T) (*Interpreter, *catalog.Catalog) {
	t.Helper()
	stats := &storage.Stats{}
	cat := catalog.New(stats)
	counters := &profile.Counters{}
	cache := plan.NewCache()
	var ip *Interpreter
	mkCtx := func() *exec.Ctx {
		ctx := exec.NewCtx()
		ctx.StorageStats = stats
		return ctx
	}
	ip = New(cat, cache, counters, mkCtx)
	return ip, cat
}

func parseFn(t *testing.T, src string) *catalog.Function {
	t.Helper()
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := plparser.ParseFunction(stmt.(*sqlast.CreateFunction))
	if err != nil {
		t.Fatal(err)
	}
	return &catalog.Function{Name: f.Name, Params: f.Params, ReturnType: f.ReturnType, Kind: catalog.FuncPLpgSQL, PL: f}
}

func callInt(t *testing.T, ip *Interpreter, fn *catalog.Function, args ...int64) int64 {
	t.Helper()
	vals := make([]sqltypes.Value, len(args))
	for i, a := range args {
		vals[i] = sqltypes.NewInt(a)
	}
	v, err := ip.Call(fn.PL, vals)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	return v.Int()
}

func TestDirectCallArithmetic(t *testing.T) {
	ip, _ := harness(t)
	fn := parseFn(t, `CREATE FUNCTION tri(n int) RETURNS int AS $$
DECLARE s int = 0;
BEGIN
  FOR i IN 1..n LOOP s = s + i; END LOOP;
  RETURN s;
END;
$$ LANGUAGE plpgsql`)
	if got := callInt(t, ip, fn, 10); got != 55 {
		t.Errorf("tri(10) = %d", got)
	}
	if got := callInt(t, ip, fn, 0); got != 0 {
		t.Errorf("tri(0) = %d", got)
	}
}

func TestAssignmentCoercesToDeclaredType(t *testing.T) {
	ip, _ := harness(t)
	fn := parseFn(t, `CREATE FUNCTION f() RETURNS int AS $$
DECLARE x int;
BEGIN
  x = 2.6;  -- float assigned to int: rounds
  RETURN x;
END;
$$ LANGUAGE plpgsql`)
	if got := callInt(t, ip, fn); got != 3 {
		t.Errorf("x = %d, want 3 (banker's rounding of 2.6)", got)
	}
}

func TestForLoopVarAssignmentDoesNotAffectIteration(t *testing.T) {
	ip, _ := harness(t)
	fn := parseFn(t, `CREATE FUNCTION f() RETURNS int AS $$
DECLARE n int = 0;
BEGIN
  FOR i IN 1..4 LOOP
    i = 100;       -- PL/pgSQL: iteration sequence unaffected
    n = n + 1;
  END LOOP;
  RETURN n;
END;
$$ LANGUAGE plpgsql`)
	if got := callInt(t, ip, fn); got != 4 {
		t.Errorf("loop ran %d times, want 4", got)
	}
}

func TestMissingReturnErrors(t *testing.T) {
	ip, _ := harness(t)
	fn := parseFn(t, `CREATE FUNCTION f(n int) RETURNS int AS $$
BEGIN
  IF n > 0 THEN RETURN 1; END IF;
END;
$$ LANGUAGE plpgsql`)
	if _, err := ip.Call(fn.PL, []sqltypes.Value{sqltypes.NewInt(-1)}); err == nil ||
		!strings.Contains(err.Error(), "without RETURN") {
		t.Errorf("want missing-RETURN error, got %v", err)
	}
}

func TestWrongArgCount(t *testing.T) {
	ip, _ := harness(t)
	fn := parseFn(t, `CREATE FUNCTION f(n int) RETURNS int AS $$ BEGIN RETURN n; END; $$ LANGUAGE plpgsql`)
	if _, err := ip.Call(fn.PL, nil); err == nil {
		t.Error("want arity error")
	}
}

func TestEmbeddedQueryCounters(t *testing.T) {
	ip, cat := harness(t)
	tbl, err := cat.CreateTable("kv", []catalog.Column{
		{Name: "k", Type: sqltypes.TypeInt}, {Name: "v", Type: sqltypes.TypeInt}}, false)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Heap.Insert(storage.Tuple{sqltypes.NewInt(1), sqltypes.NewInt(10)})
	tbl.Heap.Insert(storage.Tuple{sqltypes.NewInt(2), sqltypes.NewInt(20)})

	fn := parseFn(t, `CREATE FUNCTION lookup2() RETURNS int AS $$
DECLARE a int; b int;
BEGIN
  a = (SELECT t.v FROM kv AS t WHERE t.k = 1);
  b = (SELECT t.v FROM kv AS t WHERE t.k = 2);
  RETURN a + b;
END;
$$ LANGUAGE plpgsql`)
	if got := callInt(t, ip, fn); got != 30 {
		t.Errorf("lookup2 = %d", got)
	}
	if ip.Counters.CtxSwitchFQ != 2 {
		t.Errorf("f→Qi switches = %d, want 2", ip.Counters.CtxSwitchFQ)
	}
	if ip.Counters.ExecutorStarts != 2 {
		t.Errorf("executor starts = %d, want 2", ip.Counters.ExecutorStarts)
	}
	// Second call: plans cached, but starts still paid per evaluation.
	callInt(t, ip, fn)
	if ip.Counters.ExecutorStarts != 4 {
		t.Errorf("executor starts after 2nd call = %d, want 4", ip.Counters.ExecutorStarts)
	}
	hits, misses := ip.Cache.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("plan cache hits=%d misses=%d, want 2/2", hits, misses)
	}
}

func TestFastPathDisabledRoutesThroughExecutor(t *testing.T) {
	ip, _ := harness(t)
	ip.FastPath = false
	fn := parseFn(t, `CREATE FUNCTION f() RETURNS int AS $$
BEGIN
  RETURN 1 + 2;
END;
$$ LANGUAGE plpgsql`)
	if got := callInt(t, ip, fn); got != 3 {
		t.Errorf("f = %d", got)
	}
	if ip.Counters.ExecutorStarts == 0 {
		t.Error("fast path off must pay ExecutorStart")
	}
	if ip.Counters.FastPathEvals != 0 {
		t.Error("fast path evals should be 0 when disabled")
	}
}

func TestInterpPenaltyProfile(t *testing.T) {
	ip, _ := harness(t)
	ip.Profile = profile.Oracle
	fn := parseFn(t, `CREATE FUNCTION f(n int) RETURNS int AS $$
DECLARE s int = 0;
BEGIN
  FOR i IN 1..n LOOP s = s + i; END LOOP;
  RETURN s;
END;
$$ LANGUAGE plpgsql`)
	if got := callInt(t, ip, fn, 100); got != 5050 {
		t.Errorf("f(100) = %d", got)
	}
}

func TestNullBoundsError(t *testing.T) {
	ip, _ := harness(t)
	fn := parseFn(t, `CREATE FUNCTION f() RETURNS int AS $$
DECLARE z int;
BEGIN
  FOR i IN 1..z LOOP z = 1; END LOOP;
  RETURN 0;
END;
$$ LANGUAGE plpgsql`)
	if _, err := ip.Call(fn.PL, nil); err == nil || !strings.Contains(err.Error(), "NULL") {
		t.Errorf("want NULL-bounds error, got %v", err)
	}
}

func TestDuplicateVariableRejected(t *testing.T) {
	ip, _ := harness(t)
	fn := parseFn(t, `CREATE FUNCTION f(x int) RETURNS int AS $$
DECLARE x int = 1;
BEGIN
  RETURN x;
END;
$$ LANGUAGE plpgsql`)
	if _, err := ip.Call(fn.PL, []sqltypes.Value{sqltypes.NewInt(1)}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate-variable error, got %v", err)
	}
}

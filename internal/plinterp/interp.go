// Package plinterp is the PL/pgSQL interpreter: it executes plast function
// bodies statement by statement, exactly the evaluation regime the paper
// compiles away. Embedded queries run through the shared plan cache and pay
// ExecutorStart / ExecutorRun / ExecutorEnd on every evaluation; FROM-less,
// subquery-free expressions take the simple-expression fast path (compiled
// once, evaluated directly — the reason the paper's fibonacci row shows no
// Exec·Start/End time). All phases are charged to profile.Counters so the
// benchmark harness can regenerate Table 1.
package plinterp

import (
	"fmt"
	"strings"
	"time"

	"plsqlaway/internal/catalog"
	"plsqlaway/internal/exec"
	"plsqlaway/internal/plan"
	"plsqlaway/internal/plast"
	"plsqlaway/internal/profile"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// Interpreter executes PL/pgSQL functions. One interpreter serves one
// engine session.
type Interpreter struct {
	// Cat is the catalog snapshot embedded queries bind against. The
	// catalog is copy-on-write, so the engine re-points this at the
	// statement's pinned snapshot when a statement begins.
	Cat      *catalog.Catalog
	Cache    *plan.Cache
	Counters *profile.Counters
	Profile  profile.Profile
	// MkCtx builds a fresh execution context wired to the engine (RNG,
	// storage stats, function-call hook).
	MkCtx func() *exec.Ctx
	// FastPath enables the simple-expression fast path (ablation A3 turns
	// it off, forcing every expression through the full executor).
	FastPath bool
	// NoInline disables planner UDF inlining inside embedded queries,
	// mirroring the owning session's setting.
	NoInline bool

	fns map[*plast.Function]*fnState
}

// New builds an interpreter.
func New(cat *catalog.Catalog, cache *plan.Cache, counters *profile.Counters, mkCtx func() *exec.Ctx) *Interpreter {
	return &Interpreter{
		Cat:      cat,
		Cache:    cache,
		Counters: counters,
		Profile:  profile.PostgreSQL,
		MkCtx:    mkCtx,
		FastPath: true,
		fns:      make(map[*plast.Function]*fnState),
	}
}

// fnState is the per-function compilation state: the variable frame layout
// and per-statement compiled expressions/plans, built lazily and reused
// across calls (PL/pgSQL does the same with its cast/plan caches).
type fnState struct {
	f        *plast.Function
	varNames []string
	varTypes []sqltypes.Type
	varIdx   map[string]int
	comp     map[any]*stmtComp
}

// cacheKey builds the shared-plan-cache key for one embedded query. It
// must be identical across sessions compiling the same statement (the
// cache is engine-wide, while this fnState is per-session and fills
// lazily in call order), so it is content-addressed: function identity —
// the shared catalog AST pointer, which pins the variable-binding hook —
// plus the statement's canonical text. A per-session site counter here
// would collide across sessions whose calls compile sites in different
// orders, silently serving one session's plan for another's statement.
func (st *fnState) cacheKey(q *sqlast.Query) string {
	return fmt.Sprintf("plpgsql:%s:%p:%s", st.f.Name, st.f, sqlast.DeparseQuery(q))
}

// stmtComp is one compiled expression site.
type stmtComp struct {
	simple *exec.ExprState // fast path (nil if expression needs a query)
	query  *sqlast.Query   // full path: SELECT <expr>
	key    string          // plan cache key
}

type frame struct {
	st     *fnState
	values []sqltypes.Value
}

// control is a statement outcome.
type control struct {
	kind  ctlKind
	label string
	value sqltypes.Value
}

type ctlKind uint8

const (
	ctlNext ctlKind = iota
	ctlExit
	ctlContinue
	ctlReturn
)

// Call invokes a PL/pgSQL function with the given arguments and returns its
// result. This is the engine's Q→f context-switch target.
func (ip *Interpreter) Call(f *plast.Function, args []sqltypes.Value) (sqltypes.Value, error) {
	t0 := time.Now()
	accounted := int64(0)

	st, err := ip.fnStateFor(f)
	if err != nil {
		return sqltypes.Null, err
	}
	if len(args) != len(f.Params) {
		return sqltypes.Null, fmt.Errorf("plinterp: %s expects %d arguments, got %d", f.Name, len(f.Params), len(args))
	}
	fr := &frame{st: st, values: make([]sqltypes.Value, len(st.varNames))}
	for i := range fr.values {
		fr.values[i] = sqltypes.Null
	}
	for i, a := range args {
		v, err := sqltypes.Cast(a, f.Params[i].Type)
		if err != nil {
			return sqltypes.Null, fmt.Errorf("plinterp: %s argument %s: %w", f.Name, f.Params[i].Name, err)
		}
		fr.values[i] = v
	}
	// Declarations initialize in order.
	for _, d := range f.Decls {
		if d.Init == nil {
			continue
		}
		v, err := ip.evalExpr(fr, d, d.Init, &accounted)
		if err != nil {
			return sqltypes.Null, err
		}
		if err := ip.assign(fr, d.Name, v); err != nil {
			return sqltypes.Null, err
		}
	}

	ctl, err := ip.execStmts(fr, f.Body, &accounted)
	if err != nil {
		return sqltypes.Null, fmt.Errorf("plinterp: in %s: %w", f.Name, err)
	}
	ip.Counters.InterpNS += time.Since(t0).Nanoseconds() - accounted
	ip.Counters.FuncCalls++

	if ctl.kind != ctlReturn {
		return sqltypes.Null, fmt.Errorf("plinterp: control reached end of function %s without RETURN", f.Name)
	}
	return sqltypes.Cast(ctl.value, f.ReturnType)
}

func (ip *Interpreter) fnStateFor(f *plast.Function) (*fnState, error) {
	if st, ok := ip.fns[f]; ok {
		return st, nil
	}
	st := &fnState{f: f, varIdx: make(map[string]int), comp: make(map[any]*stmtComp)}
	addVar := func(name string, t sqltypes.Type) error {
		if _, dup := st.varIdx[name]; dup {
			return fmt.Errorf("plinterp: duplicate variable %q in %s", name, f.Name)
		}
		st.varIdx[name] = len(st.varNames)
		st.varNames = append(st.varNames, name)
		st.varTypes = append(st.varTypes, t)
		return nil
	}
	for _, p := range f.Params {
		if err := addVar(p.Name, p.Type); err != nil {
			return nil, err
		}
	}
	for _, d := range f.Decls {
		if err := addVar(d.Name, d.Type); err != nil {
			return nil, err
		}
	}
	// FOR loop variables get slots too (shadowing reuses the slot).
	var scanLoops func(stmts []plast.Stmt)
	scanLoops = func(stmts []plast.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *plast.ForRange:
				if _, ok := st.varIdx[s.Var]; !ok {
					addVar(s.Var, sqltypes.TypeInt)
				}
				scanLoops(s.Body)
			case *plast.If:
				scanLoops(s.Then)
				for _, ei := range s.ElseIfs {
					scanLoops(ei.Body)
				}
				scanLoops(s.Else)
			case *plast.Loop:
				scanLoops(s.Body)
			case *plast.While:
				scanLoops(s.Body)
			}
		}
	}
	scanLoops(f.Body)
	ip.fns[f] = st
	return st, nil
}

func (ip *Interpreter) assign(fr *frame, name string, v sqltypes.Value) error {
	idx, ok := fr.st.varIdx[name]
	if !ok {
		return fmt.Errorf("plinterp: %q is not a variable", name)
	}
	cast, err := sqltypes.Cast(v, fr.st.varTypes[idx])
	if err != nil {
		return fmt.Errorf("plinterp: assigning %q: %w", name, err)
	}
	fr.values[idx] = cast
	return nil
}

// hook resolves variable names to parameter ordinals (slot+1) during
// binding of embedded expressions.
func (st *fnState) hook(name string) (int, bool) {
	if idx, ok := st.varIdx[name]; ok {
		return idx + 1, true
	}
	return 0, false
}

// compileSite prepares the compiled form of one expression site.
func (ip *Interpreter) compileSite(fr *frame, site any, e sqlast.Expr) (*stmtComp, error) {
	if sc, ok := fr.st.comp[site]; ok {
		return sc, nil
	}
	t0 := time.Now()
	defer func() { ip.Counters.PlanNS += time.Since(t0).Nanoseconds() }()

	sc := &stmtComp{}
	opts := plan.Options{Hook: fr.st.hook, DisableLateral: ip.Profile.DisableLateral, NoInline: ip.NoInline}
	if ip.FastPath && !plan.HasSubquery(e) {
		simple, _, err := plan.BuildScalarExpr(ip.Cat, e, opts)
		if err != nil {
			return nil, err
		}
		sc.simple, err = exec.InstantiateExpr(simple)
		if err != nil {
			return nil, err
		}
	}
	if sc.simple == nil {
		// Full path: SELECT <expr> through the plan cache.
		sc.query = sqlast.WrapQuery(sqlast.SimpleSelect([]sqlast.Expr{e}, nil))
		sc.key = fr.st.cacheKey(sc.query)
	}
	fr.st.comp[site] = sc
	return sc, nil
}

// evalExpr evaluates one expression site, charging the proper buckets.
func (ip *Interpreter) evalExpr(fr *frame, site any, e sqlast.Expr, accounted *int64) (sqltypes.Value, error) {
	sc, err := ip.compileSite(fr, site, e)
	if err != nil {
		return sqltypes.Null, err
	}
	if sc.simple != nil {
		// Fast path: evaluated via the expression executor; PostgreSQL
		// charges this to Exec·Run (exec_eval_simple_expr).
		t0 := time.Now()
		ctx := ip.MkCtx()
		ctx.Params = fr.values
		v, err := sc.simple.Eval(ctx, nil)
		d := time.Since(t0).Nanoseconds()
		ip.Counters.ExecRunNS += d
		*accounted += d
		ip.Counters.FastPathEvals++
		return v, err
	}
	rows, err := ip.runEmbedded(fr, sc, accounted)
	if err != nil {
		return sqltypes.Null, err
	}
	if len(rows) == 0 {
		return sqltypes.Null, nil
	}
	if len(rows) > 1 {
		return sqltypes.Null, fmt.Errorf("query returned %d rows where one was expected", len(rows))
	}
	return rows[0][0], nil
}

// runEmbedded evaluates an embedded query: plan-cache lookup, then the
// f→Qi context switch (ExecutorStart / Run / End).
func (ip *Interpreter) runEmbedded(fr *frame, sc *stmtComp, accounted *int64) ([]storage.Tuple, error) {
	ip.Counters.CtxSwitchFQ++

	tPlan := time.Now()
	p, err := ip.Cache.GetByText(ip.Cat, sc.key, sc.query, plan.Options{Hook: fr.st.hook, DisableLateral: ip.Profile.DisableLateral, NoInline: ip.NoInline})
	dPlan := time.Since(tPlan).Nanoseconds()
	ip.Counters.PlanNS += dPlan
	*accounted += dPlan
	if err != nil {
		return nil, err
	}

	// ExecutorStart: fresh context + instantiated node tree + param binding.
	tStart := time.Now()
	ctx := ip.MkCtx()
	ctx.Params = fr.values
	ex, err := exec.Instantiate(p, ctx)
	if ip.Profile.StartPenalty > 0 {
		profile.Spin(ip.Profile.StartPenalty * p.NodeCount)
	}
	dStart := time.Since(tStart).Nanoseconds()
	ip.Counters.ExecStartNS += dStart
	ip.Counters.ExecutorStarts++
	*accounted += dStart
	if err != nil {
		return nil, err
	}

	// ExecutorRun.
	tRun := time.Now()
	rows, runErr := ex.Run()
	dRun := time.Since(tRun).Nanoseconds()
	ip.Counters.ExecRunNS += dRun
	ip.Counters.QueriesRun++
	*accounted += dRun

	// ExecutorEnd.
	tEnd := time.Now()
	ex.Shutdown()
	dEnd := time.Since(tEnd).Nanoseconds()
	ip.Counters.ExecEndNS += dEnd
	*accounted += dEnd

	return rows, runErr
}

// RunQuery executes an embedded query statement (PERFORM) and discards the
// result.
func (ip *Interpreter) runPerform(fr *frame, site any, q *sqlast.Query, accounted *int64) error {
	sc, ok := fr.st.comp[site]
	if !ok {
		t0 := time.Now()
		sc = &stmtComp{query: q}
		sc.key = fr.st.cacheKey(q)
		fr.st.comp[site] = sc
		ip.Counters.PlanNS += time.Since(t0).Nanoseconds()
	}
	_, err := ip.runEmbedded(fr, sc, accounted)
	return err
}

func (ip *Interpreter) execStmts(fr *frame, stmts []plast.Stmt, accounted *int64) (control, error) {
	for _, s := range stmts {
		if ip.Profile.InterpPenalty > 0 {
			profile.Spin(ip.Profile.InterpPenalty)
		}
		ctl, err := ip.execStmt(fr, s, accounted)
		if err != nil {
			return control{}, err
		}
		if ctl.kind != ctlNext {
			return ctl, nil
		}
	}
	return control{kind: ctlNext}, nil
}

func (ip *Interpreter) execStmt(fr *frame, s plast.Stmt, accounted *int64) (control, error) {
	switch s := s.(type) {
	case *plast.Assign:
		v, err := ip.evalExpr(fr, s, s.Expr, accounted)
		if err != nil {
			return control{}, err
		}
		return control{kind: ctlNext}, ip.assign(fr, s.Name, v)

	case *plast.If:
		v, err := ip.evalExpr(fr, s, s.Cond, accounted)
		if err != nil {
			return control{}, err
		}
		if v.IsTrue() {
			return ip.execStmts(fr, s.Then, accounted)
		}
		for i := range s.ElseIfs {
			ei := &s.ElseIfs[i]
			v, err := ip.evalExpr(fr, ei, ei.Cond, accounted)
			if err != nil {
				return control{}, err
			}
			if v.IsTrue() {
				return ip.execStmts(fr, ei.Body, accounted)
			}
		}
		return ip.execStmts(fr, s.Else, accounted)

	case *plast.Loop:
		for {
			ctl, err := ip.execStmts(fr, s.Body, accounted)
			if err != nil {
				return control{}, err
			}
			if done, out := loopControl(ctl, s.Label); done {
				return out, nil
			}
		}

	case *plast.While:
		for {
			v, err := ip.evalExpr(fr, s, s.Cond, accounted)
			if err != nil {
				return control{}, err
			}
			if !v.IsTrue() {
				return control{kind: ctlNext}, nil
			}
			ctl, err := ip.execStmts(fr, s.Body, accounted)
			if err != nil {
				return control{}, err
			}
			if done, out := loopControl(ctl, s.Label); done {
				return out, nil
			}
		}

	case *plast.ForRange:
		return ip.execForRange(fr, s, accounted)

	case *plast.Exit:
		take := true
		if s.When != nil {
			v, err := ip.evalExpr(fr, s, s.When, accounted)
			if err != nil {
				return control{}, err
			}
			take = v.IsTrue()
		}
		if take {
			return control{kind: ctlExit, label: s.Label}, nil
		}
		return control{kind: ctlNext}, nil

	case *plast.Continue:
		take := true
		if s.When != nil {
			v, err := ip.evalExpr(fr, s, s.When, accounted)
			if err != nil {
				return control{}, err
			}
			take = v.IsTrue()
		}
		if take {
			return control{kind: ctlContinue, label: s.Label}, nil
		}
		return control{kind: ctlNext}, nil

	case *plast.Return:
		v, err := ip.evalExpr(fr, s, s.Expr, accounted)
		if err != nil {
			return control{}, err
		}
		return control{kind: ctlReturn, value: v}, nil

	case *plast.Perform:
		return control{kind: ctlNext}, ip.runPerform(fr, s, s.Query, accounted)

	case *plast.Raise:
		msg, err := ip.formatRaise(fr, s, accounted)
		if err != nil {
			return control{}, err
		}
		if s.Level == "EXCEPTION" {
			return control{}, fmt.Errorf("%s", msg)
		}
		ip.Counters.Notices = append(ip.Counters.Notices, msg)
		return control{kind: ctlNext}, nil

	case *plast.NullStmt:
		return control{kind: ctlNext}, nil

	default:
		return control{}, fmt.Errorf("plinterp: unsupported statement %T", s)
	}
}

// loopControl folds a body outcome into loop behaviour: (true, out) means
// the loop terminates and forwards out.
func loopControl(ctl control, label string) (bool, control) {
	switch ctl.kind {
	case ctlReturn:
		return true, ctl
	case ctlExit:
		if ctl.label == "" || ctl.label == label {
			return true, control{kind: ctlNext}
		}
		return true, ctl // exit an outer loop
	case ctlContinue:
		if ctl.label == "" || ctl.label == label {
			return false, control{}
		}
		return true, ctl // continue an outer loop
	}
	return false, control{}
}

func (ip *Interpreter) execForRange(fr *frame, s *plast.ForRange, accounted *int64) (control, error) {
	fromV, err := ip.evalExpr(fr, &s.From, s.From, accounted)
	if err != nil {
		return control{}, err
	}
	toV, err := ip.evalExpr(fr, &s.To, s.To, accounted)
	if err != nil {
		return control{}, err
	}
	step := int64(1)
	if s.Step != nil {
		stepV, err := ip.evalExpr(fr, &s.Step, s.Step, accounted)
		if err != nil {
			return control{}, err
		}
		sv, err := sqltypes.Cast(stepV, sqltypes.TypeInt)
		if err != nil {
			return control{}, err
		}
		step = sv.Int()
		if step <= 0 {
			return control{}, fmt.Errorf("plinterp: BY value of FOR loop must be greater than zero")
		}
	}
	fi, err := sqltypes.Cast(fromV, sqltypes.TypeInt)
	if err != nil {
		return control{}, err
	}
	ti, err := sqltypes.Cast(toV, sqltypes.TypeInt)
	if err != nil {
		return control{}, err
	}
	if fi.IsNull() || ti.IsNull() {
		return control{}, fmt.Errorf("plinterp: FOR loop bounds must not be NULL")
	}
	idx := fr.st.varIdx[s.Var]
	saved := fr.values[idx]
	defer func() { fr.values[idx] = saved }()

	from, to := fi.Int(), ti.Int()
	if s.Reverse {
		for i := from; i >= to; i -= step {
			fr.values[idx] = sqltypes.NewInt(i)
			ctl, err := ip.execStmts(fr, s.Body, accounted)
			if err != nil {
				return control{}, err
			}
			if done, out := loopControl(ctl, s.Label); done {
				return out, nil
			}
		}
		return control{kind: ctlNext}, nil
	}
	for i := from; i <= to; i += step {
		fr.values[idx] = sqltypes.NewInt(i)
		ctl, err := ip.execStmts(fr, s.Body, accounted)
		if err != nil {
			return control{}, err
		}
		if done, out := loopControl(ctl, s.Label); done {
			return out, nil
		}
	}
	return control{kind: ctlNext}, nil
}

func (ip *Interpreter) formatRaise(fr *frame, s *plast.Raise, accounted *int64) (string, error) {
	var sb strings.Builder
	argIdx := 0
	for i := 0; i < len(s.Format); i++ {
		if s.Format[i] == '%' && argIdx < len(s.Args) {
			v, err := ip.evalExpr(fr, &s.Args[argIdx], s.Args[argIdx], accounted)
			if err != nil {
				return "", err
			}
			sb.WriteString(v.String())
			argIdx++
			continue
		}
		sb.WriteByte(s.Format[i])
	}
	return sb.String(), nil
}

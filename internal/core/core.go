// Package core drives the paper's full compilation pipeline (Figure 4):
//
//	PL/SQL f ─SSA→ goto/φ form ─ANF→ letrec ─UDF→ tail-recursive SQL UDF
//	         ─SQL→ WITH RECURSIVE query Qf
//
// Compile takes the text of a CREATE FUNCTION … LANGUAGE plpgsql statement
// and yields every intermediate form plus the final pure-SQL query, ready
// to be installed as a compiled function or inlined into a calling query.
package core

import (
	"fmt"

	"plsqlaway/internal/anf"
	"plsqlaway/internal/cfg"
	"plsqlaway/internal/plast"
	"plsqlaway/internal/plparser"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqlgen"
	"plsqlaway/internal/sqlparser"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/ssa"
	"plsqlaway/internal/udf"
)

// Options configures a compilation.
type Options struct {
	// Dialect selects the emitted SQL surface (Postgres uses LATERAL
	// chains; SQLite the nested-derived-table rewrite).
	Dialect udf.Dialect
	// Iterate emits WITH ITERATE instead of WITH RECURSIVE.
	Iterate bool
	// Optimize runs the SSA cleanup passes (on by default via Compile;
	// ablation A2 switches it off with NoOptimize).
	NoOptimize bool
	// ForceCTE keeps the recursive template even for loop-less functions.
	ForceCTE bool
}

// Result carries every intermediate form of one compilation.
type Result struct {
	Function   *plast.Function
	CFG        *cfg.Graph
	SSA        *ssa.Func
	ANF        *anf.Program
	UDF        *udf.Definition
	Query      *sqlast.Query // the final Qf
	SQL        string        // Deparse(Query)
	Params     []plast.Param
	ParamNames []string
	ReturnType sqltypes.Type
	Warnings   []string
}

// Compile parses and compiles a CREATE FUNCTION … LANGUAGE plpgsql
// statement.
func Compile(src string, opt Options) (*Result, error) {
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cf, ok := stmt.(*sqlast.CreateFunction)
	if !ok {
		return nil, fmt.Errorf("core: expected CREATE FUNCTION, got %T", stmt)
	}
	if cf.Language != "plpgsql" {
		return nil, fmt.Errorf("core: can only compile LANGUAGE plpgsql functions, got %q", cf.Language)
	}
	f, err := plparser.ParseFunction(cf)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return CompileFunction(f, opt)
}

// CompileFunction compiles an already-parsed PL/pgSQL function.
func CompileFunction(f *plast.Function, opt Options) (*Result, error) {
	res := &Result{
		Function:   f,
		Params:     f.Params,
		ReturnType: f.ReturnType,
	}
	for _, p := range f.Params {
		res.ParamNames = append(res.ParamNames, p.Name)
	}

	g, err := cfg.Build(f)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", f.Name, err)
	}
	res.CFG = g

	s, err := ssa.Build(g)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", f.Name, err)
	}
	if !opt.NoOptimize {
		if err := ssa.Optimize(s); err != nil {
			return nil, fmt.Errorf("core: %s: optimizer broke SSA: %w", f.Name, err)
		}
	}
	res.SSA = s

	a, err := anf.Build(s)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", f.Name, err)
	}
	res.ANF = a

	d, err := udf.Build(a, opt.Dialect)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", f.Name, err)
	}
	res.UDF = d

	q, err := sqlgen.Emit(d, sqlgen.Options{Iterate: opt.Iterate, ForceCTE: opt.ForceCTE})
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", f.Name, err)
	}
	res.Query = q
	res.SQL = sqlast.DeparseQuery(q)
	res.Warnings = d.Warnings
	return res, nil
}

// Inline splices this compilation's query into every call site of the
// function inside q (the paper's "inlined at f's call sites in the
// embracing query Q").
func (r *Result) Inline(q *sqlast.Query) *sqlast.Query {
	return sqlgen.InlineCall(q, r.Function.Name, r.ParamNames, r.Query)
}

package core

import (
	"fmt"
	"strings"
	"testing"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqlparser"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/udf"
	"plsqlaway/internal/workload"
)

func sqlparserParse(sql string) (*sqlast.Query, error) { return sqlparser.ParseQuery(sql) }

// newWorldEngine builds an engine with every workload schema installed.
func newWorldEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.WithSeed(42))
	world := workload.NewRobotWorld(5, 5, 7)
	if err := world.Install(e); err != nil {
		t.Fatal(err)
	}
	if err := workload.InstallFSM(e); err != nil {
		t.Fatal(err)
	}
	if err := workload.InstallGraph(e, 512, 3); err != nil {
		t.Fatal(err)
	}
	if err := workload.InstallFees(e); err != nil {
		t.Fatal(err)
	}
	return e
}

// install registers the interpreted original and the compiled variant under
// <name>_c.
func install(t *testing.T, e *engine.Engine, src string, opt Options) *Result {
	t.Helper()
	if err := e.Exec(src); err != nil {
		t.Fatalf("install interpreted: %v", err)
	}
	res, err := Compile(src, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := e.InstallCompiled(res.Function.Name+"_c", res.Params, res.ReturnType, res.Query); err != nil {
		t.Fatalf("install compiled: %v", err)
	}
	return res
}

// differential runs both variants with identical seeds and compares.
func differential(t *testing.T, e *engine.Engine, name, call string, args ...sqltypes.Value) {
	t.Helper()
	e.Seed(99)
	want, err := e.QueryValue(fmt.Sprintf(call, name), args...)
	if err != nil {
		t.Fatalf("%s interpreted: %v", name, err)
	}
	e.Seed(99)
	got, err := e.QueryValue(fmt.Sprintf(call, name+"_c"), args...)
	if err != nil {
		t.Fatalf("%s compiled: %v", name, err)
	}
	if !sqltypes.Identical(want, got) {
		t.Errorf("%s: interpreted=%v compiled=%v (call %q)", name, want, got, call)
	}
}

func TestCompileFibDifferential(t *testing.T) {
	e := engine.New()
	install(t, e, workload.FibSrc, Options{})
	for _, n := range []int64{0, 1, 2, 3, 10, 20, 40} {
		differential(t, e, "fibonacci", "SELECT %s($1)", sqltypes.NewInt(n))
	}
}

func TestCompileCorpusDifferential(t *testing.T) {
	cases := []struct {
		src   string
		name  string
		calls [][]sqltypes.Value
		tmpl  string
	}{
		{workload.GcdSrc, "gcd", [][]sqltypes.Value{
			{sqltypes.NewInt(48), sqltypes.NewInt(36)},
			{sqltypes.NewInt(7), sqltypes.NewInt(13)},
			{sqltypes.NewInt(0), sqltypes.NewInt(5)},
			{sqltypes.NewInt(270), sqltypes.NewInt(192)},
		}, "SELECT %s($1, $2)"},
		{workload.CollatzSrc, "collatz", [][]sqltypes.Value{
			{sqltypes.NewInt(1)}, {sqltypes.NewInt(6)}, {sqltypes.NewInt(27)}, {sqltypes.NewInt(97)},
		}, "SELECT %s($1)"},
		{workload.SumSkipSrc, "sumskip", [][]sqltypes.Value{
			{sqltypes.NewInt(0)}, {sqltypes.NewInt(1)}, {sqltypes.NewInt(10)}, {sqltypes.NewInt(100)},
		}, "SELECT %s($1)"},
		{workload.NestedLoopSrc, "nestedloop", [][]sqltypes.Value{
			{sqltypes.NewInt(3)}, {sqltypes.NewInt(40)},
		}, "SELECT %s($1)"},
		{workload.ClampSrc, "clamp", [][]sqltypes.Value{
			{sqltypes.NewInt(5), sqltypes.NewInt(1), sqltypes.NewInt(10)},
			{sqltypes.NewInt(-5), sqltypes.NewInt(1), sqltypes.NewInt(10)},
			{sqltypes.NewInt(50), sqltypes.NewInt(1), sqltypes.NewInt(10)},
		}, "SELECT %s($1, $2, $3)"},
		{workload.PowSrc, "ipow", [][]sqltypes.Value{
			{sqltypes.NewInt(2), sqltypes.NewInt(10)},
			{sqltypes.NewInt(3), sqltypes.NewInt(0)},
			{sqltypes.NewInt(-2), sqltypes.NewInt(5)},
		}, "SELECT %s($1, $2)"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := engine.New()
			install(t, e, c.src, Options{})
			for _, args := range c.calls {
				differential(t, e, c.name, c.tmpl, args...)
			}
		})
	}
}

func TestCompileQueryBearingCorpus(t *testing.T) {
	e := newWorldEngine(t)
	install(t, e, workload.ParseSrc, Options{})
	install(t, e, workload.TraverseSrc, Options{})
	install(t, e, workload.AccountSrc, Options{})

	for _, input := range []string{"", "abc", "a1 22 bcd", workload.MakeParseInput(200, 5)} {
		differential(t, e, "parse", "SELECT %s($1)", sqltypes.NewText(input))
	}
	for _, start := range []int64{0, 3, 42} {
		differential(t, e, "traverse", "SELECT %s($1, $2)", sqltypes.NewInt(start), sqltypes.NewInt(300))
	}
	differential(t, e, "balance", "SELECT %s($1, $2)", sqltypes.NewFloat(500), sqltypes.NewInt(24))
	differential(t, e, "balance", "SELECT %s($1, $2)", sqltypes.NewFloat(5000), sqltypes.NewInt(60))
}

func TestCompileWalkDifferential(t *testing.T) {
	e := newWorldEngine(t)
	res := install(t, e, workload.WalkSrc, Options{})
	if len(res.ANF.Funs) > 3 {
		t.Errorf("walk should collapse to ~2 label functions (paper's L1/L2), got %d:\n%s",
			len(res.ANF.Funs), res.ANF.Dump())
	}
	for _, c := range []struct{ x, y, win, loose, steps int64 }{
		{0, 0, 5, -5, 10},
		{2, 2, 3, -3, 50},
		{4, 4, 10, -10, 200},
		{1, 3, 2, -8, 500},
	} {
		differential(t, e, "walk", "SELECT %s($1, $2, $3, $4)",
			sqltypes.NewCoord(c.x, c.y), sqltypes.NewInt(c.win), sqltypes.NewInt(c.loose), sqltypes.NewInt(c.steps))
	}
}

func TestCompileWalkIterateAndSQLiteDialects(t *testing.T) {
	for _, mode := range []struct {
		name string
		opt  Options
	}{
		{"iterate", Options{Iterate: true}},
		{"sqlite", Options{Dialect: udf.DialectSQLite}},
		{"sqlite-iterate", Options{Dialect: udf.DialectSQLite, Iterate: true}},
		{"unoptimized", Options{NoOptimize: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			e := newWorldEngine(t)
			if err := e.Exec(workload.WalkSrc); err != nil {
				t.Fatal(err)
			}
			res, err := Compile(workload.WalkSrc, mode.opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.InstallCompiled("walk_c", res.Params, res.ReturnType, res.Query); err != nil {
				t.Fatal(err)
			}
			if mode.opt.Dialect == udf.DialectSQLite && strings.Contains(res.SQL, "LATERAL") {
				t.Errorf("sqlite dialect must not emit LATERAL:\n%s", res.SQL)
			}
			differential(t, e, "walk", "SELECT %s($1, $2, $3, $4)",
				sqltypes.NewCoord(2, 2), sqltypes.NewInt(4), sqltypes.NewInt(-4), sqltypes.NewInt(100))
		})
	}
}

func TestLoopLessCompilesWithoutCTE(t *testing.T) {
	res, err := Compile(workload.ClampSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.SQL, "WITH RECURSIVE") {
		t.Errorf("loop-less function should compile Froid-style:\n%s", res.SQL)
	}
	// ForceCTE still must give correct results.
	e := engine.New()
	install(t, e, workload.ClampSrc, Options{ForceCTE: true})
	differential(t, e, "clamp", "SELECT %s($1, $2, $3)",
		sqltypes.NewInt(7), sqltypes.NewInt(0), sqltypes.NewInt(5))
}

func TestCompiledSQLReparses(t *testing.T) {
	for name, src := range workload.Corpus {
		res, err := Compile(src, Options{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if _, err := enginedParse(res.SQL); err != nil {
			t.Errorf("%s: emitted SQL does not reparse: %v\n%s", name, err, res.SQL)
		}
	}
}

func enginedParse(sql string) (*sqlast.Query, error) {
	return parseQueryHelper(sql)
}

func TestInlineCall(t *testing.T) {
	e := engine.New()
	res := install(t, e, workload.GcdSrc, Options{})
	if err := e.Exec(`CREATE TABLE pairs (x int, y int);
		INSERT INTO pairs VALUES (48, 36), (7, 13), (100, 75)`); err != nil {
		t.Fatal(err)
	}
	outer, err := parseQueryHelper("SELECT gcd(p.x, p.y) FROM pairs AS p ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	inlined := res.Inline(outer)
	if strings.Contains(sqlast.DeparseQuery(inlined), "gcd(") {
		t.Fatalf("call site not inlined:\n%s", sqlast.DeparseQuery(inlined))
	}
	got, err := e.QueryPlanned(inlined)
	if err != nil {
		t.Fatalf("inlined query: %v", err)
	}
	want, err := e.Query("SELECT gcd(p.x, p.y) FROM pairs AS p ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if !sqltypes.Identical(got.Rows[i][0], want.Rows[i][0]) {
			t.Errorf("row %d: inlined=%v interpreted=%v", i, got.Rows[i][0], want.Rows[i][0])
		}
	}
}

func TestUDFStatementsInstallAndRun(t *testing.T) {
	// The Figure 7 route: install wrapper + tail-recursive f_star as
	// LANGUAGE sql functions and evaluate directly (works, but the paper
	// notes stack limits and poor performance — we check the small case).
	e := engine.New()
	res, err := Compile(workload.GcdSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sql, err := res.UDF.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(sql); err != nil {
		t.Fatalf("installing UDFs: %v\n%s", err, sql)
	}
	v, err := e.QueryValue("SELECT gcd($1, $2)", sqltypes.NewInt(48), sqltypes.NewInt(36))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 12 {
		t.Errorf("gcd via recursive UDF = %v, want 12", v)
	}
	// Deep recursion must hit the engine's call-depth guard, mirroring the
	// paper's "we quickly hit default stack depth limits".
	resF, err := Compile(workload.FibSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sqlF, err := resF.UDF.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(sqlF); err != nil {
		t.Fatalf("installing fib UDFs: %v", err)
	}
	_, err = e.QueryValue("SELECT fibonacci($1)", sqltypes.NewInt(10000))
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("expected stack depth error from recursive UDF, got %v", err)
	}
}

func TestCompileRejectsRaiseException(t *testing.T) {
	_, err := Compile(`CREATE FUNCTION boom(n int) RETURNS int AS $$
BEGIN
  IF n < 0 THEN RAISE EXCEPTION 'no'; END IF;
  RETURN n;
END;
$$ LANGUAGE plpgsql`, Options{})
	if err == nil || !strings.Contains(err.Error(), "RAISE EXCEPTION") {
		t.Errorf("expected RAISE EXCEPTION rejection, got %v", err)
	}
}

func TestCompileWarnsOnRaiseNotice(t *testing.T) {
	res, err := Compile(`CREATE FUNCTION chatty(n int) RETURNS int AS $$
BEGIN
  RAISE NOTICE 'hello %', n;
  RETURN n + 1;
END;
$$ LANGUAGE plpgsql`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Error("expected a warning about the dropped RAISE NOTICE")
	}
}

func TestStageDumpsRender(t *testing.T) {
	res, err := Compile(workload.WalkSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.CFG.Dump(); !strings.Contains(d, "goto") {
		t.Errorf("CFG dump: %s", d)
	}
	if d := res.SSA.Dump(); !strings.Contains(d, "phi(") {
		t.Errorf("SSA dump: %s", d)
	}
	if d := res.ANF.Dump(); !strings.Contains(d, "letrec") {
		t.Errorf("ANF dump: %s", d)
	}
	usql, err := res.UDF.SQL()
	if err != nil || !strings.Contains(usql, "walk_star") {
		t.Errorf("UDF SQL: %v\n%s", err, usql)
	}
	for _, needle := range []string{"WITH RECURSIVE", `"call?"`, "UNION ALL", "NOT r"} {
		if !strings.Contains(res.SQL, needle) {
			t.Errorf("final SQL missing %q:\n%s", needle, res.SQL)
		}
	}
}

// parseQueryHelper avoids importing sqlparser at top level twice.
func parseQueryHelper(sql string) (*sqlast.Query, error) {
	return sqlparserParse(sql)
}

package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"plsqlaway/internal/engine"
	"plsqlaway/internal/sqltypes"
)

// progGen generates random PL/pgSQL programs over integer arithmetic with
// nested IF / WHILE / FOR control flow. Every generated program terminates
// (loops are bounded) and uses only deterministic expressions, so the
// interpreter and the compiled WITH RECURSIVE form must agree exactly.
type progGen struct {
	r       *rand.Rand
	vars    []string
	depth   int
	buf     strings.Builder
	ind     string
	loopSeq int
}

func (g *progGen) w(format string, args ...any) {
	g.buf.WriteString(g.ind)
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteString("\n")
}

// expr yields a small integer expression over the declared variables.
// Division/modulo guard against zero via abs(x)+1 denominators.
func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return fmt.Sprintf("%d", g.r.Intn(19)-9)
		}
		return g.vars[g.r.Intn(len(g.vars))]
	}
	a, b := g.expr(depth-1), g.expr(depth-1)
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / (abs(%s) + 1))", a, b)
	case 4:
		return fmt.Sprintf("(%s %% (abs(%s) + 1))", a, b)
	default:
		return fmt.Sprintf("least(%s, %s)", a, b)
	}
}

func (g *progGen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	c := fmt.Sprintf("%s %s %s", g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
	if g.r.Intn(4) == 0 {
		c += fmt.Sprintf(" AND %s %s %s", g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
	}
	return c
}

func (g *progGen) stmts(n int) {
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

func (g *progGen) stmt() {
	v := g.vars[g.r.Intn(len(g.vars))]
	choice := g.r.Intn(10)
	if g.depth >= 2 && choice >= 6 {
		choice = g.r.Intn(6) // cap nesting
	}
	switch {
	case choice < 5: // assignment
		g.w("%s = %s;", v, g.expr(2))
	case choice < 7: // IF
		g.w("IF %s THEN", g.cond())
		g.nest(func() { g.stmts(1 + g.r.Intn(2)) })
		if g.r.Intn(2) == 0 {
			g.w("ELSE")
			g.nest(func() { g.stmts(1 + g.r.Intn(2)) })
		}
		g.w("END IF;")
	case choice < 9: // bounded FOR (fresh variable per loop, as PL/pgSQL scopes them)
		lo, hi := g.r.Intn(4), 2+g.r.Intn(6)
		g.loopSeq++
		iv := fmt.Sprintf("it%d", g.loopSeq)
		g.w("FOR %s IN %d..%d LOOP", iv, lo, hi)
		g.vars = append(g.vars, iv)
		g.nest(func() { g.stmts(1 + g.r.Intn(2)) })
		g.vars = g.vars[:len(g.vars)-1]
		g.w("END LOOP;")
	default: // bounded WHILE with a dedicated counter
		cv := g.vars[0] // w0 is reserved as a loop fuel counter
		g.w("%s = %d;", cv, 3+g.r.Intn(5))
		g.w("WHILE %s > 0 LOOP", cv)
		g.nest(func() {
			g.stmts(1)
			g.w("%s = %s - 1;", cv, cv)
		})
		g.w("END LOOP;")
	}
}

func (g *progGen) nest(fn func()) {
	saved := g.ind
	g.ind += "  "
	g.depth++
	fn()
	g.depth--
	g.ind = saved
}

// generate builds a full CREATE FUNCTION source with parameters p1, p2.
func generateProgram(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	g.vars = []string{"w0", "v1", "v2", "v3", "p1", "p2"}
	g.ind = "  "
	g.stmts(3 + g.r.Intn(4))
	body := g.buf.String()
	return fmt.Sprintf(`CREATE FUNCTION prog(p1 int, p2 int) RETURNS int AS $$
DECLARE
  w0 int = 0;
  v1 int = 1;
  v2 int = %d;
  v3 int = -2;
BEGIN
%s  RETURN v1 + 10 * v2 + 100 * v3 + 1000 * w0;
END;
$$ LANGUAGE plpgsql`, g.r.Intn(7), body)
}

// TestRandomProgramsDifferential is the central property test: for many
// random programs, the interpreter and the compiled pure-SQL form must
// produce identical results on several inputs, in both CTE modes.
func TestRandomProgramsDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := generateProgram(seed)
		e := engine.New()
		if err := e.Exec(src); err != nil {
			t.Fatalf("seed %d: install: %v\n%s", seed, err, src)
		}
		res, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		if err := e.InstallCompiled("prog_c", res.Params, res.ReturnType, res.Query); err != nil {
			t.Fatalf("seed %d: install compiled: %v", seed, err)
		}
		resIter, err := Compile(src, Options{Iterate: true})
		if err != nil {
			t.Fatalf("seed %d: compile iterate: %v", seed, err)
		}
		if err := e.InstallCompiled("prog_i", resIter.Params, resIter.ReturnType, resIter.Query); err != nil {
			t.Fatalf("seed %d: install iterate: %v", seed, err)
		}
		for _, args := range [][2]int64{{0, 0}, {1, -1}, {5, 3}, {-7, 11}} {
			p1, p2 := sqltypes.NewInt(args[0]), sqltypes.NewInt(args[1])
			want, err := e.QueryValue("SELECT prog($1, $2)", p1, p2)
			if err != nil {
				t.Fatalf("seed %d args %v: interpreted: %v\n%s", seed, args, err, src)
			}
			got, err := e.QueryValue("SELECT prog_c($1, $2)", p1, p2)
			if err != nil {
				t.Fatalf("seed %d args %v: compiled: %v\n%s\n%s", seed, args, err, src, res.SQL)
			}
			if !sqltypes.Identical(want, got) {
				t.Fatalf("seed %d args %v: interpreted=%v compiled=%v\n%s\n%s",
					seed, args, want, got, src, res.SQL)
			}
			gotIter, err := e.QueryValue("SELECT prog_i($1, $2)", p1, p2)
			if err != nil {
				t.Fatalf("seed %d args %v: iterate: %v", seed, args, err)
			}
			if !sqltypes.Identical(want, gotIter) {
				t.Fatalf("seed %d args %v: interpreted=%v iterate=%v\n%s",
					seed, args, want, gotIter, src)
			}
		}
	}
}

// TestRandomProgramsSSAValid checks the optimizer preserves SSA validity on
// the same corpus (Validate runs inside Optimize; this just compiles).
func TestRandomProgramsSSAValid(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		src := generateProgram(seed)
		if _, err := Compile(src, Options{}); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if _, err := Compile(src, Options{NoOptimize: true}); err != nil {
			t.Fatalf("seed %d (no-opt): %v\n%s", seed, err, src)
		}
	}
}

package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary byte streams to the frame reader and message
// decoders. The invariants: no panic, no runaway allocation (lengths are
// validated against real bytes before allocating), and any frame that
// decodes successfully re-encodes to a frame that decodes to the same
// message type (decode/encode/decode stability).
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Hand-made malformed seeds: bad type, lying lengths, truncations.
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{'Q', 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{'E', 0x00, 0x00, 0x00, 0x02, 0x01, 's'})
	f.Add([]byte{'d', 0x00, 0x00, 0x00, 0x03, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				// Includes io.EOF at a clean frame boundary and
				// io.ErrUnexpectedEOF mid-frame — both fine; the invariant
				// is no panic. (Allocation bounds are structural: ReadFrame
				// rejects over-limit lengths before allocating and the
				// decoders clamp capacity hints via capHint.)
				return
			}
			m, err := Decode(typ, payload)
			if err != nil {
				continue
			}
			// Re-encode and decode again: must succeed and keep the type.
			var buf bytes.Buffer
			if err := WriteMessage(&buf, m); err != nil {
				t.Fatalf("re-encode of decoded %T failed: %v", m, err)
			}
			m2, err := ReadMessage(&buf)
			if err != nil {
				t.Fatalf("re-decode of %T failed: %v", m, err)
			}
			if m2.Type() != m.Type() {
				t.Fatalf("re-decode changed type %c → %c", m.Type(), m2.Type())
			}
		}
	})
}

package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary byte streams to the frame reader and message
// decoders. The invariants: no panic, no runaway allocation (lengths are
// validated against real bytes before allocating), and any frame that
// decodes successfully re-encodes to a frame that decodes to the same
// message type (decode/encode/decode stability).
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Hand-made malformed seeds: bad type, lying lengths, truncations.
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{'Q', 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{'E', 0x00, 0x00, 0x00, 0x02, 0x01, 's'})
	f.Add([]byte{'d', 0x00, 0x00, 0x00, 0x03, 0xFF, 0xFF, 0x7F})
	// Columnar frames: lying row count, rows with no columns to bound
	// them, truncated typed lane, null column missing its bitmap.
	f.Add([]byte{'b', 0x00, 0x00, 0x00, 0x06, 0xFF, 0xFF, 0xFF, 0x7F, 0x01, 0x01})
	f.Add([]byte{'b', 0x00, 0x00, 0x00, 0x03, 0xE8, 0x07, 0x00})
	f.Add([]byte{'b', 0x00, 0x00, 0x00, 0x07, 0x10, 0x01, 0x01, 0x00, 0x00, 0x01, 0x02})
	f.Add([]byte{'b', 0x00, 0x00, 0x00, 0x04, 0x04, 0x01, 0x05, 0x00})
	// v5 additions: an EXPLAIN ANALYZE query text, and StatsReply payloads
	// around the legacy/extended boundary — exactly legacy-length (must
	// decode with Legacy set), and legacy plus a partial tail (must error,
	// not mis-frame).
	{
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &Query{SQL: "EXPLAIN ANALYZE SELECT dist(src, dst) FROM hops"}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	legacyStats := append([]byte{'s', 0x00, 0x00, 0x00, 14 * 8}, make([]byte, 14*8)...)
	f.Add(legacyStats)
	partialStats := append([]byte{'s', 0x00, 0x00, 0x00, 14*8 + 8}, make([]byte, 14*8+8)...)
	f.Add(partialStats)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				// Includes io.EOF at a clean frame boundary and
				// io.ErrUnexpectedEOF mid-frame — both fine; the invariant
				// is no panic. (Allocation bounds are structural: ReadFrame
				// rejects over-limit lengths before allocating and the
				// decoders clamp capacity hints via capHint.)
				return
			}
			m, err := Decode(typ, payload)
			if err != nil {
				continue
			}
			// Re-encode and decode again: must succeed and keep the type.
			var buf bytes.Buffer
			if err := WriteMessage(&buf, m); err != nil {
				t.Fatalf("re-encode of decoded %T failed: %v", m, err)
			}
			m2, err := ReadMessage(&buf)
			if err != nil {
				t.Fatalf("re-decode of %T failed: %v", m, err)
			}
			if m2.Type() != m.Type() {
				t.Fatalf("re-decode changed type %c → %c", m.Type(), m2.Type())
			}
			// The canonical form must be a fixed point: encoding the
			// re-decoded message reproduces the first re-encoding byte for
			// byte. (The raw input may be non-canonical — padded varints,
			// garbage bitmap padding — so generation 1 vs 2 is the
			// comparison, not 0 vs 1.)
			_, gen1, err := EncodeMessage(m)
			if err != nil {
				t.Fatalf("encode %T: %v", m, err)
			}
			_, gen2, err := EncodeMessage(m2)
			if err != nil {
				t.Fatalf("encode re-decoded %T: %v", m2, err)
			}
			if !bytes.Equal(gen1, gen2) {
				t.Fatalf("%T re-encode unstable:\ngen1 %x\ngen2 %x", m, gen1, gen2)
			}
		}
	})
}

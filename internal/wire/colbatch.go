package wire

import (
	"encoding/binary"
	"math"

	"plsqlaway/internal/sqltypes"
)

// ColBatch is the protocol-v4 result chunk: one executor batch shipped
// column-at-a-time as unboxed typed arrays instead of kind-tagged values.
// A homogeneous column costs 8 bytes per int/float (1 bit per bool) with
// no per-value tag byte, and the server can alias the executor's column
// lanes directly into the encoder — no row materialization on the hot
// path. Columns that stay mixed-type fall back to the tagged Value
// encoding inside the same frame (ColTagAny), so any result shape fits.
//
// Layout: uvarint row count, uvarint column count, then per column a tag
// byte, a has-nulls flag byte, an optional null bitmap (ceil(n/8) bytes,
// LSB-first), and the tag's payload lane. NULL slots in typed lanes carry
// zero values; the bitmap is authoritative. ColTagNull columns (every
// value NULL, e.g. SELECT NULL) always carry the bitmap so that every
// column of every tag costs at least ceil(n/8) payload bytes — that keeps
// the decoder's allocations proportional to bytes actually received even
// for hostile row counts.
type ColBatch struct {
	NumRows int
	Cols    []ColData
}

// ColData is one encoded column. Exactly the lane matching Tag is
// populated; Nulls is nil when no value in the column is NULL.
type ColData struct {
	Tag    byte
	Nulls  []bool
	Ints   []int64
	Floats []float64
	Bools  []bool
	Texts  []string
	Anys   []sqltypes.Value
}

// Column tags: which lane a ColData ships.
const (
	ColTagAny   byte = 0 // kind-tagged Values (mixed-type or rare kinds)
	ColTagInt   byte = 1
	ColTagFloat byte = 2
	ColTagBool  byte = 3
	ColTagText  byte = 4
	ColTagNull  byte = 5 // all-NULL column: bitmap only, no value lane
)

// MaxColBatchRows bounds the row count a single ColBatch frame may claim.
// Servers chunk larger batches; the decoder rejects anything above it
// before allocating.
const MaxColBatchRows = 1 << 20

func (m *ColBatch) Type() byte { return TypeColBatch }

func (m *ColBatch) encode(e *Encoder) {
	n := m.NumRows
	e.Uvarint(uint64(n))
	e.Uvarint(uint64(len(m.Cols)))
	for i := range m.Cols {
		c := &m.Cols[i]
		e.Byte(c.Tag)
		hasNulls := c.Nulls != nil || c.Tag == ColTagNull
		e.Bool(hasNulls)
		if hasNulls {
			e.bitmap(c.Nulls, n, c.Tag == ColTagNull)
		}
		switch c.Tag {
		case ColTagInt:
			for i := 0; i < n; i++ {
				e.Int64(laneAt(c.Ints, i))
			}
		case ColTagFloat:
			for i := 0; i < n; i++ {
				e.Uint64(math.Float64bits(laneAt(c.Floats, i)))
			}
		case ColTagBool:
			e.bitmap(c.Bools, n, false)
		case ColTagText:
			for i := 0; i < n; i++ {
				e.String(laneAt(c.Texts, i))
			}
		case ColTagAny:
			for i := 0; i < n; i++ {
				v := sqltypes.Null
				if i < len(c.Anys) {
					v = c.Anys[i]
				}
				e.Value(v)
			}
		case ColTagNull:
			// bitmap only
		}
	}
}

// laneAt reads lane[i], tolerating short lanes (zero value) so that a
// hand-built message can never make encode panic.
func laneAt[T any](lane []T, i int) T {
	if i < len(lane) {
		return lane[i]
	}
	var zero T
	return zero
}

// bitmap appends ceil(n/8) bytes, bit i set when bits[i] (LSB-first
// within each byte). allOnes substitutes an all-true bitmap (the
// canonical ColTagNull form when Nulls was left nil). Padding bits in the
// final byte are always zero, so decode→re-encode is byte-stable.
func (e *Encoder) bitmap(bits []bool, n int, allOnes bool) {
	var cur byte
	for i := 0; i < n; i++ {
		if allOnes || laneAt(bits, i) {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			e.Byte(cur)
			cur = 0
		}
	}
	if n%8 != 0 {
		e.Byte(cur)
	}
}

func (m *ColBatch) decode(d *Decoder) {
	rows := d.Uvarint()
	if d.err == nil && rows > MaxColBatchRows {
		d.fail("column batch claims %d rows (max %d)", rows, MaxColBatchRows)
	}
	n := int(rows)
	ncols := d.Uvarint()
	// Every column costs at least 2 header bytes, so the claimed count is
	// bounded by the remaining payload before anything is allocated.
	if d.err == nil && ncols > uint64(d.Remaining())/2 {
		d.fail("column batch claims %d columns, only %d payload bytes remain", ncols, d.Remaining())
	}
	// With zero columns there are no per-row payload bytes to bound n, so
	// an empty-width batch must be empty.
	if d.err == nil && n > 0 && ncols == 0 {
		d.fail("column batch claims %d rows with no columns", n)
	}
	if d.err != nil {
		return
	}
	cols := make([]ColData, 0, capHint(int(ncols)))
	for i := 0; i < int(ncols); i++ {
		var c ColData
		c.Tag = d.Byte()
		hasNulls := d.Bool()
		if hasNulls {
			c.Nulls = d.bitmap(n)
		}
		switch c.Tag {
		case ColTagInt:
			c.Ints = d.intLane(n)
		case ColTagFloat:
			c.Floats = d.floatLane(n)
		case ColTagBool:
			c.Bools = d.bitmap(n)
		case ColTagText:
			c.Texts = d.textLane(n)
		case ColTagAny:
			c.Anys = d.anyLane(n)
		case ColTagNull:
			if d.err == nil && !hasNulls {
				d.fail("all-NULL column without its null bitmap")
			}
		default:
			d.fail("unknown column tag %d", c.Tag)
		}
		if d.err != nil {
			return
		}
		cols = append(cols, c)
	}
	m.NumRows = n
	m.Cols = cols
}

// bitmap reads ceil(n/8) LSB-first bytes into n bools. Padding bits are
// ignored so re-encoding (which zeroes them) stays stable.
func (d *Decoder) bitmap(n int) []bool {
	raw := d.take((n + 7) / 8)
	if raw == nil {
		return nil
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return bits
}

func (d *Decoder) intLane(n int) []int64 {
	raw := d.take(n * 8)
	if raw == nil {
		return nil
	}
	lane := make([]int64, n)
	for i := range lane {
		lane[i] = int64(binary.BigEndian.Uint64(raw[i*8:]))
	}
	return lane
}

func (d *Decoder) floatLane(n int) []float64 {
	raw := d.take(n * 8)
	if raw == nil {
		return nil
	}
	lane := make([]float64, n)
	for i := range lane {
		lane[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[i*8:]))
	}
	return lane
}

func (d *Decoder) textLane(n int) []string {
	lane := make([]string, 0, capHint(n))
	for i := 0; i < n; i++ {
		s := d.String()
		if d.err != nil {
			return nil
		}
		lane = append(lane, s)
	}
	return lane
}

func (d *Decoder) anyLane(n int) []sqltypes.Value {
	lane := make([]sqltypes.Value, 0, capHint(n))
	for i := 0; i < n; i++ {
		v := d.Value()
		if d.err != nil {
			return nil
		}
		lane = append(lane, v)
	}
	return lane
}

// Rows boxes the batch back into row-major tuples — the client-side
// bridge that keeps materialized Query results identical in value terms
// to the row-major encoding. One backing allocation serves all rows.
func (m *ColBatch) Rows() [][]sqltypes.Value {
	n, w := m.NumRows, len(m.Cols)
	if n == 0 {
		return nil
	}
	backing := make([]sqltypes.Value, n*w)
	rows := make([][]sqltypes.Value, n)
	for r := range rows {
		rows[r] = backing[r*w : (r+1)*w : (r+1)*w]
	}
	for c := range m.Cols {
		col := &m.Cols[c]
		for r := 0; r < n; r++ {
			rows[r][c] = col.valueAt(r)
		}
	}
	return rows
}

// valueAt boxes row r of the column.
func (c *ColData) valueAt(r int) sqltypes.Value {
	if c.Tag == ColTagNull || (r < len(c.Nulls) && c.Nulls[r]) {
		return sqltypes.Null
	}
	switch c.Tag {
	case ColTagInt:
		return sqltypes.NewInt(laneAt(c.Ints, r))
	case ColTagFloat:
		return sqltypes.NewFloat(laneAt(c.Floats, r))
	case ColTagBool:
		return sqltypes.NewBool(laneAt(c.Bools, r))
	case ColTagText:
		return sqltypes.NewText(laneAt(c.Texts, r))
	default:
		if r < len(c.Anys) {
			return c.Anys[r]
		}
		return sqltypes.Null
	}
}

// Package wire defines the length-prefixed binary protocol plsqld serves
// and the client package speaks: a small PostgreSQL-inspired frame set
// covering startup, simple queries, parse/bind/execute for prepared
// statements, chunked row-batch responses (reusing the executor's
// batch-at-a-time framing), storage-stats polling, and error reporting.
//
// Framing. Every message is one frame:
//
//	+------+----------------+-----------------+
//	| type | length (u32BE) | payload (length)|
//	+------+----------------+-----------------+
//
// The length counts payload bytes only. Frames above MaxFrameLen are
// rejected before any allocation, and decoded element counts are
// validated against the bytes actually present with clamped capacity
// hints, so a hostile peer's allocations stay proportional to what it
// ships. Payload decoding is bounds-checked throughout: malformed,
// truncated, or trailing-garbage payloads yield errors, never panics
// (FuzzDecode pins this).
//
// Conversation. The client opens with Startup and the server answers
// Ready. After that, every client request produces an ordered response
// sequence finished by exactly one terminator frame (Done, Error,
// ParseOK, StatsReply). Requests are independent, so a client may
// pipeline: send N requests before reading the first response; the
// server reads ahead and answers strictly in request order.
//
//	Query        → [RowDesc RowBatch*] Done | Error
//	Parse        → ParseOK | Error
//	Execute      → [RowDesc RowBatch*] Done | Error
//	CloseStmt    → Done | Error
//	Seed         → Done
//	StatsRequest → StatsReply
//	Terminate    → (connection closes)
//
// Row values use a compact kind-tagged encoding mirroring
// sqltypes.Value: NULL, bool, int64, float64 bits, length-prefixed text,
// coord, and recursively encoded row values (depth-limited).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrFrameTooLarge marks a frame rejected by the MaxFrameLen size check
// — before any bytes hit the stream, so the connection's framing stays
// intact and callers can degrade (smaller batches) or report a
// per-request error instead of tearing the connection down.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameLen")

// ProtocolVersion is bumped on incompatible frame-set changes; the server
// rejects startups outside [MinProtocolVersion, ProtocolVersion]. Version
// 2 added the Notice frame (RAISE NOTICE and transaction-control warnings
// streamed ahead of a response's terminator). Version 3 added the Error
// code field (retryable-failure classification) and the durability stats
// fields. Version 4 added the columnar ColBatch result frame and the
// streaming result path. Version 5 appended observability fields to
// StatsReply (plan-cache hit/miss counters, active connection count) —
// the frame grew at its tail, so v3/v4 peers keep exchanging the old
// shape (see StatsReply.Legacy).
const ProtocolVersion uint32 = 5

// MinProtocolVersion is the oldest startup version the server still
// accepts: v3 clients negotiate row-major RowBatch results and never see
// a ColBatch frame.
const MinProtocolVersion uint32 = 3

// ColBatchVersion is the first protocol version whose clients decode
// ColBatch frames; the server only sends them on sessions negotiated at
// this version or later.
const ColBatchVersion uint32 = 4

// ExtendedStatsVersion is the first protocol version whose StatsReply
// carries the observability tail (cache hits/misses, active connections);
// servers answer older sessions with the legacy shape.
const ExtendedStatsVersion uint32 = 5

// Error codes classify server-reported failures so clients can react
// without string-matching: a CodeSerialization error means the whole
// transaction should be retried, a CodeTxnAborted error means the block
// must be rolled back first. The client package maps them back onto the
// engine's sentinel errors for errors.Is.
const (
	CodeGeneric       uint32 = 0 // no particular classification
	CodeSerialization uint32 = 1 // engine.ErrSerialization: rollback and retry
	CodeTxnAborted    uint32 = 2 // engine.ErrTxnAborted: block poisoned until ROLLBACK
)

// MaxFrameLen bounds one frame's payload: larger announcements are a
// protocol error and are rejected before allocation.
const MaxFrameLen = 16 << 20

// DefaultRowBatch is how many rows a server packs into one RowBatch frame
// — the wire-level analogue of the executor's tuples-per-batch default.
const DefaultRowBatch = 256

// maxValueDepth bounds row-value nesting during decode.
const maxValueDepth = 32

// Frame type bytes. Client→server frames are uppercase, server→client
// lowercase (except Ready/RowDesc, kept mnemonic).
const (
	// client → server
	TypeStartup   byte = 'S'
	TypeQuery     byte = 'Q'
	TypeParse     byte = 'P'
	TypeExecute   byte = 'E'
	TypeCloseStmt byte = 'C'
	TypeSeed      byte = 'V'
	TypeStatsReq  byte = 'T'
	TypeTerminate byte = 'X'

	// server → client
	TypeReady      byte = 'r'
	TypeRowDesc    byte = 'c'
	TypeRowBatch   byte = 'd'
	TypeColBatch   byte = 'b'
	TypeDone       byte = 'z'
	TypeError      byte = 'e'
	TypeParseOK    byte = 'p'
	TypeStatsReply byte = 's'
	TypeNotice     byte = 'n'
)

// TypeName returns a stable lowercase name for a frame type byte —
// metric label material (per-frame traffic counters) and log text.
// Unknown bytes map to "unknown".
func TypeName(typ byte) string {
	switch typ {
	case TypeStartup:
		return "startup"
	case TypeQuery:
		return "query"
	case TypeParse:
		return "parse"
	case TypeExecute:
		return "execute"
	case TypeCloseStmt:
		return "close_stmt"
	case TypeSeed:
		return "seed"
	case TypeStatsReq:
		return "stats_request"
	case TypeTerminate:
		return "terminate"
	case TypeReady:
		return "ready"
	case TypeRowDesc:
		return "row_desc"
	case TypeRowBatch:
		return "row_batch"
	case TypeColBatch:
		return "col_batch"
	case TypeDone:
		return "done"
	case TypeError:
		return "error"
	case TypeParseOK:
		return "parse_ok"
	case TypeStatsReply:
		return "stats_reply"
	case TypeNotice:
		return "notice"
	}
	return "unknown"
}

// WriteFrame writes one frame (header + payload) to w. Oversized
// payloads fail with ErrFrameTooLarge before any bytes are written.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrameLen {
		return fmt.Errorf("frame %c payload %d bytes exceeds limit %d: %w", typ, len(payload), MaxFrameLen, ErrFrameTooLarge)
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r, enforcing MaxFrameLen before
// allocating the payload.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameLen {
		return 0, nil, fmt.Errorf("wire: frame %c announces %d bytes, limit is %d", hdr[0], n, MaxFrameLen)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame %c: %w", hdr[0], err)
	}
	return hdr[0], payload, nil
}

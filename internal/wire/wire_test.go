package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"

	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// sampleMessages covers every frame type with representative payloads.
func sampleMessages() []Message {
	return []Message{
		&Startup{Version: ProtocolVersion, Seed: 42},
		&Query{SQL: "SELECT 1"},
		&Query{SQL: ""},
		&Parse{Name: "s1", SQL: "SELECT $1 + $2"},
		&Execute{Name: "s1", Params: []sqltypes.Value{
			sqltypes.NewInt(7),
			sqltypes.NewFloat(math.Inf(-1)),
			sqltypes.NewText("hello 'world'"),
			sqltypes.NewBool(true),
			sqltypes.Null,
			sqltypes.NewCoord(-3, 9),
			sqltypes.NewRow([]sqltypes.Value{
				sqltypes.NewInt(1),
				sqltypes.NewRow([]sqltypes.Value{sqltypes.NewText("nested")}),
			}),
		}},
		&Execute{Name: "s2", Params: nil},
		&CloseStmt{Name: "s1"},
		&Seed{Seed: 99},
		&StatsRequest{},
		&Terminate{},
		&Ready{Server: "plsqlaway test"},
		&RowDesc{Cols: []string{"a", "b", "?column?"}},
		&RowBatch{Rows: [][]sqltypes.Value{
			{sqltypes.NewInt(1), sqltypes.NewText("x")},
			{sqltypes.Null, sqltypes.NewFloat(math.NaN())},
			{},
		}},
		&ColBatch{NumRows: 5, Cols: []ColData{
			{Tag: ColTagInt, Ints: []int64{1, -2, 0, math.MaxInt64, math.MinInt64},
				Nulls: []bool{false, false, true, false, false}},
			{Tag: ColTagFloat, Floats: []float64{0, 1.5, math.Inf(1), -0.0, 2.25}},
			{Tag: ColTagBool, Bools: []bool{true, false, true, true, false}},
			{Tag: ColTagText, Texts: []string{"a", "", "héllo", "d", "e"},
				Nulls: []bool{false, true, false, false, false}},
			{Tag: ColTagNull, Nulls: []bool{true, true, true, true, true}},
			{Tag: ColTagAny, Anys: []sqltypes.Value{
				sqltypes.NewCoord(1, 2), sqltypes.Null, sqltypes.NewInt(3),
				sqltypes.NewRow([]sqltypes.Value{sqltypes.NewText("r")}), sqltypes.NewBool(false),
			}},
		}},
		&ColBatch{NumRows: 0, Cols: nil},
		&ColBatch{NumRows: 9, Cols: []ColData{
			{Tag: ColTagBool, Bools: []bool{true, false, true, false, true, false, true, false, true}},
		}},
		&Done{Tag: "OK"},
		&Error{Message: "engine: relation \"nope\" does not exist"},
		&ParseOK{Name: "s1", NumParams: 2, IsQuery: true},
		&StatsReply{Stats: storage.StatsSnapshot{
			PageWrites: 1, PagesAlloc: 2, TuplesWritten: 3, BytesWritten: 4,
			Commits: 5, Vacuums: 6, VersionsReclaimed: 7,
		}, Plans: PlanStats{
			PlansInlined: 8, SpecializedPlans: 9, CacheEvictions: 10,
			CacheHits: 11, CacheMisses: 12,
		}, ActiveConns: 3},
		&StatsReply{Stats: storage.StatsSnapshot{PageWrites: 1},
			Plans: PlanStats{PlansInlined: 2}, Legacy: true},
	}
}

// valuesIdentical compares decoded values NaN-safely.
func valuesIdentical(a, b sqltypes.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == sqltypes.KindFloat && math.IsNaN(a.Float()) && math.IsNaN(b.Float()) {
		return true
	}
	return sqltypes.Identical(a, b) || (a.IsNull() && b.IsNull())
}

func messagesEqual(t *testing.T, want, got Message) bool {
	t.Helper()
	switch w := want.(type) {
	case *Execute:
		g := got.(*Execute)
		if w.Name != g.Name || len(w.Params) != len(g.Params) {
			return false
		}
		for i := range w.Params {
			if !valuesIdentical(w.Params[i], g.Params[i]) {
				return false
			}
		}
		return true
	case *RowBatch:
		g := got.(*RowBatch)
		if len(w.Rows) != len(g.Rows) {
			return false
		}
		for i := range w.Rows {
			if len(w.Rows[i]) != len(g.Rows[i]) {
				return false
			}
			for j := range w.Rows[i] {
				if !valuesIdentical(w.Rows[i][j], g.Rows[i][j]) {
					return false
				}
			}
		}
		return true
	case *ColBatch:
		g := got.(*ColBatch)
		if w.NumRows != g.NumRows || len(w.Cols) != len(g.Cols) {
			return false
		}
		for c := range w.Cols {
			if w.Cols[c].Tag != g.Cols[c].Tag {
				return false
			}
			for r := 0; r < w.NumRows; r++ {
				if !valuesIdentical(w.Cols[c].valueAt(r), g.Cols[c].valueAt(r)) {
					return false
				}
			}
		}
		return true
	default:
		return reflect.DeepEqual(want, got)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("%T: write: %v", m, err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("%T: read: %v", m, err)
		}
		if got.Type() != m.Type() {
			t.Fatalf("%T: type %c → %c", m, m.Type(), got.Type())
		}
		if !messagesEqual(t, m, got) {
			t.Errorf("%T: round trip mismatch:\nwant %#v\ngot  %#v", m, m, got)
		}
		if buf.Len() != 0 {
			t.Errorf("%T: %d undrained bytes after read", m, buf.Len())
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var hdr [5]byte
	hdr[0] = TypeQuery
	binary.BigEndian.PutUint32(hdr[1:], MaxFrameLen+1)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Query{SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadMessage(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	var e Encoder
	(&Seed{Seed: 1}).encode(&e)
	payload := append(e.Bytes(), 0xFF)
	if _, err := Decode(TypeSeed, payload); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestLengthLieRejected(t *testing.T) {
	// A string that claims more bytes than the payload holds must error,
	// not allocate or panic.
	var e Encoder
	e.Uvarint(1 << 40)
	if _, err := Decode(TypeQuery, e.Bytes()); err == nil {
		t.Fatal("huge claimed string length accepted")
	}
}

func TestDeepRowRejected(t *testing.T) {
	// Nest rows past maxValueDepth: each level is kind-byte + count 1.
	var e Encoder
	e.String("s")
	// Execute params: count 1, then nested rows.
	e.Uvarint(1)
	for i := 0; i < maxValueDepth+4; i++ {
		e.Byte(byte(sqltypes.KindRow))
		e.Uvarint(1)
	}
	e.Byte(byte(sqltypes.KindNull))
	if _, err := Decode(TypeExecute, e.Bytes()); err == nil {
		t.Fatal("over-deep row nesting accepted")
	}
}

// TestColBatchMalformedRejected drives the columnar decoder with frames
// whose claimed shapes disagree with their payloads: none may panic,
// allocate proportionally to the lie, or decode successfully.
func TestColBatchMalformedRejected(t *testing.T) {
	cases := map[string]func(e *Encoder){
		"rows beyond cap": func(e *Encoder) {
			e.Uvarint(MaxColBatchRows + 1)
			e.Uvarint(1)
		},
		"rows without columns": func(e *Encoder) {
			e.Uvarint(1000)
			e.Uvarint(0)
		},
		"columns beyond payload": func(e *Encoder) {
			e.Uvarint(0)
			e.Uvarint(1 << 30)
		},
		"truncated int lane": func(e *Encoder) {
			e.Uvarint(100)
			e.Uvarint(1)
			e.Byte(ColTagInt)
			e.Bool(false)
			e.Uint64(7) // 1 of the 100 claimed values
		},
		"truncated null bitmap": func(e *Encoder) {
			e.Uvarint(64)
			e.Uvarint(1)
			e.Byte(ColTagText)
			e.Bool(true)
			e.Byte(0xFF) // 1 of the 8 bitmap bytes
		},
		"null column without bitmap": func(e *Encoder) {
			e.Uvarint(4)
			e.Uvarint(1)
			e.Byte(ColTagNull)
			e.Bool(false)
		},
		"unknown tag": func(e *Encoder) {
			e.Uvarint(1)
			e.Uvarint(1)
			e.Byte(200)
			e.Bool(false)
			e.Uint64(1)
		},
		"lying text length": func(e *Encoder) {
			e.Uvarint(1)
			e.Uvarint(1)
			e.Byte(ColTagText)
			e.Bool(false)
			e.Uvarint(1 << 40)
		},
	}
	for name, build := range cases {
		var e Encoder
		build(&e)
		if _, err := Decode(TypeColBatch, e.Bytes()); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestColBatchReencodeStable pins canonical re-encoding: a decoded frame
// re-encodes to identical bytes even when the original carried garbage
// in its bitmap padding bits (decode ignores them, encode zeroes them).
func TestColBatchReencodeStable(t *testing.T) {
	var e Encoder
	e.Uvarint(3)
	e.Uvarint(1)
	e.Byte(ColTagBool)
	e.Bool(true)
	e.Byte(0b1110_0101) // null bitmap: rows 0,2 + garbage in bits 5..7
	e.Byte(0b1111_1010) // bool lane: rows 1 + garbage past row 2
	m, err := Decode(TypeColBatch, e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	_, first, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(TypeColBatch, first)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	_, second, err := EncodeMessage(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encode unstable:\nfirst  %x\nsecond %x", first, second)
	}
	cb := m.(*ColBatch)
	rows := cb.Rows()
	if len(rows) != 3 || !rows[0][0].IsNull() || rows[1][0].Bool() != true || !rows[2][0].IsNull() {
		t.Fatalf("decoded rows %v", rows)
	}
}

func TestWriteOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, TypeRowBatch, make([]byte, MaxFrameLen+1))
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized write not rejected: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes written despite size rejection — stream corrupted", buf.Len())
	}
}

package wire

import (
	"fmt"
	"io"

	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/storage"
)

// Message is one protocol frame in decoded form.
type Message interface {
	// Type returns the frame type byte the message travels as.
	Type() byte
	encode(*Encoder)
	decode(*Decoder)
}

// WriteMessage encodes m into one frame on w.
func WriteMessage(w io.Writer, m Message) error {
	var e Encoder
	return WriteMessageBuf(w, m, &e)
}

// WriteMessageBuf is WriteMessage with a caller-owned scratch encoder:
// single-threaded hot paths (the server's response writer) reuse one
// payload buffer across frames instead of allocating per frame.
func WriteMessageBuf(w io.Writer, m Message, e *Encoder) error {
	e.Reset()
	m.encode(e)
	return WriteFrame(w, m.Type(), e.Bytes())
}

// EncodeMessage renders m as a standalone (type, payload) frame,
// size-checked — callers that must know a frame is writable before
// committing protocol state (the client's pipelined send) encode first.
func EncodeMessage(m Message) (byte, []byte, error) {
	var e Encoder
	m.encode(&e)
	if len(e.Bytes()) > MaxFrameLen {
		return 0, nil, fmt.Errorf("frame %c payload %d bytes exceeds limit %d: %w", m.Type(), len(e.Bytes()), MaxFrameLen, ErrFrameTooLarge)
	}
	return m.Type(), e.Bytes(), nil
}

// ReadMessage reads and decodes the next frame from r.
func ReadMessage(r io.Reader) (Message, error) {
	typ, payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return Decode(typ, payload)
}

// Decode parses one frame payload into its typed message. The payload
// must be consumed exactly; trailing bytes are a protocol error.
func Decode(typ byte, payload []byte) (Message, error) {
	var m Message
	switch typ {
	case TypeStartup:
		m = &Startup{}
	case TypeQuery:
		m = &Query{}
	case TypeParse:
		m = &Parse{}
	case TypeExecute:
		m = &Execute{}
	case TypeCloseStmt:
		m = &CloseStmt{}
	case TypeSeed:
		m = &Seed{}
	case TypeStatsReq:
		m = &StatsRequest{}
	case TypeTerminate:
		m = &Terminate{}
	case TypeReady:
		m = &Ready{}
	case TypeRowDesc:
		m = &RowDesc{}
	case TypeRowBatch:
		m = &RowBatch{}
	case TypeColBatch:
		m = &ColBatch{}
	case TypeDone:
		m = &Done{}
	case TypeError:
		m = &Error{}
	case TypeParseOK:
		m = &ParseOK{}
	case TypeStatsReply:
		m = &StatsReply{}
	case TypeNotice:
		m = &Notice{}
	default:
		return nil, fmt.Errorf("wire: unknown frame type %#x", typ)
	}
	d := NewDecoder(payload)
	m.decode(d)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("frame %c: %w", typ, err)
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// client → server
// ---------------------------------------------------------------------------

// Startup opens a connection: protocol version plus the deterministic
// random() seed the connection's session starts from.
type Startup struct {
	Version uint32
	Seed    uint64
}

func (*Startup) Type() byte { return TypeStartup }
func (m *Startup) encode(e *Encoder) {
	e.Uint32(m.Version)
	e.Uint64(m.Seed)
}
func (m *Startup) decode(d *Decoder) {
	m.Version = d.Uint32()
	m.Seed = d.Uint64()
}

// Query runs a SQL text — a single query (rows come back) or a
// semicolon-separated script (only Done comes back).
type Query struct {
	SQL string
}

func (*Query) Type() byte          { return TypeQuery }
func (m *Query) encode(e *Encoder) { e.String(m.SQL) }
func (m *Query) decode(d *Decoder) { m.SQL = d.String() }

// Parse prepares a statement under a client-chosen name.
type Parse struct {
	Name string
	SQL  string
}

func (*Parse) Type() byte { return TypeParse }
func (m *Parse) encode(e *Encoder) {
	e.String(m.Name)
	e.String(m.SQL)
}
func (m *Parse) decode(d *Decoder) {
	m.Name = d.String()
	m.SQL = d.String()
}

// Execute binds parameter values to a prepared statement and runs it —
// the protocol's bind+execute, merged into one frame.
type Execute struct {
	Name   string
	Params []sqltypes.Value
}

func (*Execute) Type() byte { return TypeExecute }
func (m *Execute) encode(e *Encoder) {
	e.String(m.Name)
	e.Row(m.Params)
}
func (m *Execute) decode(d *Decoder) {
	m.Name = d.String()
	m.Params = d.RowSlice()
}

// CloseStmt discards a prepared statement.
type CloseStmt struct {
	Name string
}

func (*CloseStmt) Type() byte          { return TypeCloseStmt }
func (m *CloseStmt) encode(e *Encoder) { e.String(m.Name) }
func (m *CloseStmt) decode(d *Decoder) { m.Name = d.String() }

// Seed reseeds the connection's deterministic random() stream (the remote
// analogue of Session.Seed, which the differential suites rely on).
type Seed struct {
	Seed uint64
}

func (*Seed) Type() byte          { return TypeSeed }
func (m *Seed) encode(e *Encoder) { e.Uint64(m.Seed) }
func (m *Seed) decode(d *Decoder) { m.Seed = d.Uint64() }

// StatsRequest asks for the engine's storage counters.
type StatsRequest struct{}

func (*StatsRequest) Type() byte      { return TypeStatsReq }
func (*StatsRequest) encode(*Encoder) {}
func (*StatsRequest) decode(*Decoder) {}

// Terminate announces an orderly client disconnect.
type Terminate struct{}

func (*Terminate) Type() byte      { return TypeTerminate }
func (*Terminate) encode(*Encoder) {}
func (*Terminate) decode(*Decoder) {}

// ---------------------------------------------------------------------------
// server → client
// ---------------------------------------------------------------------------

// Ready acknowledges a Startup.
type Ready struct {
	Server string // human-readable server banner
}

func (*Ready) Type() byte          { return TypeReady }
func (m *Ready) encode(e *Encoder) { e.String(m.Server) }
func (m *Ready) decode(d *Decoder) { m.Server = d.String() }

// RowDesc announces a result's column names; RowBatch frames follow.
type RowDesc struct {
	Cols []string
}

func (*RowDesc) Type() byte { return TypeRowDesc }
func (m *RowDesc) encode(e *Encoder) {
	e.Uvarint(uint64(len(m.Cols)))
	for _, c := range m.Cols {
		e.String(c)
	}
}
func (m *RowDesc) decode(d *Decoder) {
	n := d.Len() // ≥1 byte per column name, bounded by payload
	cols := make([]string, 0, capHint(n))
	for i := 0; i < n; i++ {
		cols = append(cols, d.String())
		if d.Err() != nil {
			return
		}
	}
	m.Cols = cols
}

// RowBatch carries one chunk of result rows — the wire continuation of
// the executor's batch framing: a server slices a result into batches of
// at most DefaultRowBatch rows and streams them.
type RowBatch struct {
	Rows [][]sqltypes.Value
}

func (*RowBatch) Type() byte { return TypeRowBatch }
func (m *RowBatch) encode(e *Encoder) {
	e.Uvarint(uint64(len(m.Rows)))
	for _, r := range m.Rows {
		e.Row(r)
	}
}
func (m *RowBatch) decode(d *Decoder) {
	n := d.Len() // ≥1 byte per row, bounded by payload
	rows := make([][]sqltypes.Value, 0, capHint(n))
	for i := 0; i < n; i++ {
		rows = append(rows, d.RowSlice())
		if d.Err() != nil {
			return
		}
	}
	m.Rows = rows
}

// Notice carries one asynchronous diagnostic message (RAISE NOTICE
// output, transaction-control warnings). Zero or more Notice frames
// stream inside a response, before its Done/Error terminator — the wire
// analogue of Postgres's NoticeResponse.
type Notice struct {
	Message string
}

func (*Notice) Type() byte          { return TypeNotice }
func (m *Notice) encode(e *Encoder) { e.String(m.Message) }
func (m *Notice) decode(d *Decoder) { m.Message = d.String() }

// Done terminates a successful response.
type Done struct {
	Tag string // e.g. "OK"
}

func (*Done) Type() byte          { return TypeDone }
func (m *Done) encode(e *Encoder) { e.String(m.Tag) }
func (m *Done) decode(d *Decoder) { m.Tag = d.String() }

// Error terminates a failed response. The connection stays usable; later
// pipelined requests still get their own responses. Code classifies
// retryable failures (CodeSerialization, CodeTxnAborted) so clients can
// dispatch without string-matching the message.
type Error struct {
	Code    uint32
	Message string
}

func (*Error) Type() byte { return TypeError }
func (m *Error) encode(e *Encoder) {
	e.Uint32(m.Code)
	e.String(m.Message)
}
func (m *Error) decode(d *Decoder) {
	m.Code = d.Uint32()
	m.Message = d.String()
}

// ParseOK acknowledges a Parse with the statement's metadata.
type ParseOK struct {
	Name      string
	NumParams uint32
	IsQuery   bool
}

func (*ParseOK) Type() byte { return TypeParseOK }
func (m *ParseOK) encode(e *Encoder) {
	e.String(m.Name)
	e.Uint32(m.NumParams)
	e.Bool(m.IsQuery)
}
func (m *ParseOK) decode(d *Decoder) {
	m.Name = d.String()
	m.NumParams = d.Uint32()
	m.IsQuery = d.Bool()
}

// PlanStats carries the shared plan cache's counters: calls inlined into
// plans, constant-specialized call sites, entries evicted (cap pressure
// or DDL invalidation), and — since protocol v5 — cache hits and misses.
type PlanStats struct {
	PlansInlined     int64
	SpecializedPlans int64
	CacheEvictions   int64
	CacheHits        int64 // v5+; zero on legacy frames
	CacheMisses      int64 // v5+; zero on legacy frames
}

// StatsReply carries the engine's storage counters (Table 2 page writes
// plus the MVCC commit/vacuum counters), the plan cache's counters, and
// — since protocol v5 — the server's live connection count.
//
// The v5 fields grew at the frame's tail: a server answering a v3/v4
// client sets Legacy and omits them, and a decoder facing a short (v4)
// payload leaves them zero and reports Legacy — both directions of a
// mixed-version conversation keep framing intact.
type StatsReply struct {
	Stats       storage.StatsSnapshot
	Plans       PlanStats
	ActiveConns int64 // v5+; open wire connections on the serving plsqld

	// Legacy marks the pre-v5 frame shape: set it before encoding for an
	// old peer; set by decode when the payload lacks the v5 tail.
	Legacy bool
}

func (*StatsReply) Type() byte { return TypeStatsReply }
func (m *StatsReply) encode(e *Encoder) {
	e.Int64(m.Stats.PageWrites)
	e.Int64(m.Stats.PagesAlloc)
	e.Int64(m.Stats.TuplesWritten)
	e.Int64(m.Stats.BytesWritten)
	e.Int64(m.Stats.Commits)
	e.Int64(m.Stats.Vacuums)
	e.Int64(m.Stats.VersionsReclaimed)
	e.Int64(m.Stats.WALRecords)
	e.Int64(m.Stats.WALBytes)
	e.Int64(m.Stats.WALFsyncs)
	e.Int64(m.Stats.Checkpoints)
	e.Int64(m.Plans.PlansInlined)
	e.Int64(m.Plans.SpecializedPlans)
	e.Int64(m.Plans.CacheEvictions)
	if m.Legacy {
		return
	}
	e.Int64(m.Plans.CacheHits)
	e.Int64(m.Plans.CacheMisses)
	e.Int64(m.ActiveConns)
}
func (m *StatsReply) decode(d *Decoder) {
	m.Stats.PageWrites = d.Int64()
	m.Stats.PagesAlloc = d.Int64()
	m.Stats.TuplesWritten = d.Int64()
	m.Stats.BytesWritten = d.Int64()
	m.Stats.Commits = d.Int64()
	m.Stats.Vacuums = d.Int64()
	m.Stats.VersionsReclaimed = d.Int64()
	m.Stats.WALRecords = d.Int64()
	m.Stats.WALBytes = d.Int64()
	m.Stats.WALFsyncs = d.Int64()
	m.Stats.Checkpoints = d.Int64()
	m.Plans.PlansInlined = d.Int64()
	m.Plans.SpecializedPlans = d.Int64()
	m.Plans.CacheEvictions = d.Int64()
	if d.Err() == nil && d.Remaining() == 0 {
		m.Legacy = true
		return
	}
	m.Plans.CacheHits = d.Int64()
	m.Plans.CacheMisses = d.Int64()
	m.ActiveConns = d.Int64()
}

package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"plsqlaway/internal/sqltypes"
)

// Encoder builds a frame payload. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset clears the payload, keeping capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) Byte(b byte)     { e.buf = append(e.buf, b) }
func (e *Encoder) Bool(b bool)     { e.buf = append(e.buf, boolByte(b)) }
func (e *Encoder) Uint32(u uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, u) }
func (e *Encoder) Uint64(u uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, u) }
func (e *Encoder) Int64(i int64)   { e.Uint64(uint64(i)) }
func (e *Encoder) Uvarint(u uint64) {
	e.buf = binary.AppendUvarint(e.buf, u)
}
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Value appends one kind-tagged value.
func (e *Encoder) Value(v sqltypes.Value) {
	e.Byte(byte(v.Kind()))
	switch v.Kind() {
	case sqltypes.KindNull:
	case sqltypes.KindBool:
		e.Bool(v.Bool())
	case sqltypes.KindInt:
		e.Int64(v.Int())
	case sqltypes.KindFloat:
		e.Uint64(math.Float64bits(v.Float()))
	case sqltypes.KindText:
		e.String(v.Text())
	case sqltypes.KindCoord:
		x, y := v.Coord()
		e.Int64(x)
		e.Int64(y)
	case sqltypes.KindRow:
		fields := v.Row()
		e.Uvarint(uint64(len(fields)))
		for _, f := range fields {
			e.Value(f)
		}
	}
}

// Row appends one value row (column count + values).
func (e *Encoder) Row(row []sqltypes.Value) {
	e.Uvarint(uint64(len(row)))
	for _, v := range row {
		e.Value(v)
	}
}

// Decoder consumes a frame payload with a sticky error: after the first
// malformed read every subsequent read returns zero values, and Err()
// reports what went wrong. Nothing here panics or allocates based on
// unchecked attacker-controlled sizes.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder decodes the given payload.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err reports the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports undecoded payload bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish errors unless the payload was consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail("truncated payload: need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Decoder) Bool() bool { return d.Byte() != 0 }

func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return u
}

// Len decodes a uvarint length and validates it against the remaining
// payload, so subsequent allocations are bounded by real bytes.
func (d *Decoder) Len() int {
	u := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if u > uint64(d.Remaining()) {
		d.fail("length %d exceeds remaining payload %d", u, d.Remaining())
		return 0
	}
	return int(u)
}

// capHint bounds the initial capacity of count-prefixed element slices.
// The count itself is validated against remaining payload bytes, but
// decoded elements are much larger than their one-byte wire minimum, so
// trusting a huge claimed count as a capacity would let a short lying
// frame allocate far more memory than it ships. Growth beyond the hint
// is paid only as elements actually decode.
func capHint(n int) int {
	const max = 1024
	if n > max {
		return max
	}
	return n
}

func (d *Decoder) String() string {
	n := d.Len()
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Value decodes one kind-tagged value.
func (d *Decoder) Value() sqltypes.Value { return d.value(0) }

func (d *Decoder) value(depth int) sqltypes.Value {
	if depth > maxValueDepth {
		d.fail("value nesting exceeds depth %d", maxValueDepth)
		return sqltypes.Null
	}
	kind := sqltypes.Kind(d.Byte())
	if d.err != nil {
		return sqltypes.Null
	}
	switch kind {
	case sqltypes.KindNull:
		return sqltypes.Null
	case sqltypes.KindBool:
		return sqltypes.NewBool(d.Bool())
	case sqltypes.KindInt:
		return sqltypes.NewInt(d.Int64())
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(math.Float64frombits(d.Uint64()))
	case sqltypes.KindText:
		return sqltypes.NewText(d.String())
	case sqltypes.KindCoord:
		x := d.Int64()
		y := d.Int64()
		return sqltypes.NewCoord(x, y)
	case sqltypes.KindRow:
		// Each field needs at least its kind byte, so the field count is
		// bounded by the remaining payload.
		n := d.Len()
		fields := make([]sqltypes.Value, 0, capHint(n))
		for i := 0; i < n; i++ {
			fields = append(fields, d.value(depth+1))
			if d.err != nil {
				return sqltypes.Null
			}
		}
		return sqltypes.NewRow(fields)
	default:
		d.fail("unknown value kind %d", kind)
		return sqltypes.Null
	}
}

// RowSlice decodes one value row.
func (d *Decoder) RowSlice() []sqltypes.Value {
	n := d.Len() // ≥1 byte per value, so bounded by remaining payload
	row := make([]sqltypes.Value, 0, capHint(n))
	for i := 0; i < n; i++ {
		row = append(row, d.Value())
		if d.err != nil {
			return nil
		}
	}
	return row
}

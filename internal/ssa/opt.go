package ssa

import (
	"plsqlaway/internal/cfg"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqltypes"
)

// Optimize runs the classic SSA cleanups to a fixpoint: constant folding
// and propagation, copy propagation, φ simplification, branch folding,
// unreachable-code removal, straight-line block merging, and dead-code
// elimination. The paper notes "PL/SQL code is subject to the same
// optimizations as any imperative programming language" — these passes also
// shrink the emitted SQL substantially (ablation A2 measures it).
func Optimize(f *Func) error {
	for round := 0; round < 50; round++ {
		changed := false
		changed = propagateCopiesAndConstants(f) || changed
		changed = foldConstants(f) || changed
		changed = simplifyPhis(f) || changed
		changed = foldBranches(f) || changed
		changed = removeUnreachable(f) || changed
		changed = mergeBlocks(f) || changed
		changed = deadCodeElim(f) || changed
		if !changed {
			break
		}
	}
	return Validate(f)
}

// substitute rewrites every expression and φ argument in f using repl.
func substitute(f *Func, repl map[string]sqlast.Expr) {
	if len(repl) == 0 {
		return
	}
	rw := func(e sqlast.Expr) sqlast.Expr {
		if e == nil {
			return nil
		}
		return sqlast.RewriteExpr(e, func(x sqlast.Expr) sqlast.Expr {
			if cr, ok := x.(*sqlast.ColumnRef); ok && cr.Table == "" {
				if r, ok := repl[cr.Column]; ok {
					return r
				}
			}
			return x
		})
	}
	for _, b := range f.ReachableBlocks() {
		for i := range b.Instrs {
			b.Instrs[i].Expr = rw(b.Instrs[i].Expr)
		}
		b.Term.Cond = rw(b.Term.Cond)
		b.Term.Ret = rw(b.Term.Ret)
		for pi := range b.Phis {
			for ai := range b.Phis[pi].Args {
				val := b.Phis[pi].Args[ai].Val
				if r, ok := repl[val]; ok {
					// φ arguments must stay names or literals; only
					// propagate those.
					switch rr := r.(type) {
					case *sqlast.ColumnRef:
						b.Phis[pi].Args[ai].Val = rr.Column
					case *sqlast.Literal:
						// Encode literal as a synthetic version is not
						// possible — keep the name; DCE keeps its def.
						_ = rr
					}
				}
			}
		}
	}
}

// propagateCopiesAndConstants replaces uses of versions defined as bare
// copies (v = w) or literals (v = c) with their definition.
func propagateCopiesAndConstants(f *Func) bool {
	repl := map[string]sqlast.Expr{}
	for _, b := range f.ReachableBlocks() {
		for _, in := range b.Instrs {
			if in.Effectful {
				continue
			}
			switch e := in.Expr.(type) {
			case *sqlast.ColumnRef:
				if e.Table == "" && f.IsVersion(e.Column) {
					repl[in.Var] = e
				}
			case *sqlast.Literal:
				repl[in.Var] = e
			}
		}
	}
	// Resolve chains (v2 = v1, v3 = v2) to roots.
	changedChain := true
	for changedChain {
		changedChain = false
		for v, e := range repl {
			if cr, ok := e.(*sqlast.ColumnRef); ok {
				if r2, ok := repl[cr.Column]; ok {
					repl[v] = r2
					changedChain = true
				}
			}
		}
	}
	if len(repl) == 0 {
		return false
	}
	before := dumpLen(f)
	substitute(f, repl)
	return dumpLen(f) != before
}

// dumpLen is a cheap change detector for substitution passes.
func dumpLen(f *Func) int {
	n := 0
	for _, b := range f.ReachableBlocks() {
		for _, in := range b.Instrs {
			n += len(sqlast.DeparseExpr(in.Expr))
		}
		if b.Term.Cond != nil {
			n += len(sqlast.DeparseExpr(b.Term.Cond))
		}
		if b.Term.Ret != nil {
			n += len(sqlast.DeparseExpr(b.Term.Ret))
		}
		for _, p := range b.Phis {
			for _, a := range p.Args {
				n += len(a.Val)
			}
		}
	}
	return n
}

// foldConstants evaluates pure constant subexpressions.
func foldConstants(f *Func) bool {
	changed := false
	fold := func(e sqlast.Expr) sqlast.Expr {
		if e == nil {
			return nil
		}
		return sqlast.RewriteExpr(e, func(x sqlast.Expr) sqlast.Expr {
			out := foldOne(x)
			if out != x {
				changed = true
			}
			return out
		})
	}
	for _, b := range f.ReachableBlocks() {
		for i := range b.Instrs {
			b.Instrs[i].Expr = fold(b.Instrs[i].Expr)
		}
		b.Term.Cond = fold(b.Term.Cond)
		b.Term.Ret = fold(b.Term.Ret)
	}
	return changed
}

// foldOne folds a single node whose children are literals. Errors (division
// by zero, bad casts) are left for run time, as SQL requires.
func foldOne(x sqlast.Expr) sqlast.Expr {
	switch e := x.(type) {
	case *sqlast.Binary:
		l, lok := e.L.(*sqlast.Literal)
		r, rok := e.R.(*sqlast.Literal)
		if !lok || !rok {
			return x
		}
		var v sqltypes.Value
		var err error
		switch e.Op {
		case "+":
			v, err = sqltypes.Add(l.Val, r.Val)
		case "-":
			v, err = sqltypes.Sub(l.Val, r.Val)
		case "*":
			v, err = sqltypes.Mul(l.Val, r.Val)
		case "/":
			v, err = sqltypes.Div(l.Val, r.Val)
		case "%":
			v, err = sqltypes.Mod(l.Val, r.Val)
		case "||":
			v, err = sqltypes.Concat(l.Val, r.Val)
		case "AND":
			v, err = sqltypes.And(l.Val, r.Val)
		case "OR":
			v, err = sqltypes.Or(l.Val, r.Val)
		default:
			v, err = sqltypes.CompareOp(e.Op, l.Val, r.Val)
		}
		if err != nil {
			return x
		}
		return sqlast.Lit(v)
	case *sqlast.Unary:
		l, ok := e.X.(*sqlast.Literal)
		if !ok {
			return x
		}
		var v sqltypes.Value
		var err error
		if e.Op == "NOT" {
			v, err = sqltypes.Not(l.Val)
		} else {
			v, err = sqltypes.Neg(l.Val)
		}
		if err != nil {
			return x
		}
		return sqlast.Lit(v)
	case *sqlast.Case:
		// Prune WHEN false arms; collapse WHEN true.
		if e.Operand != nil {
			return x
		}
		var kept []sqlast.WhenClause
		for _, w := range e.Whens {
			if lit, ok := w.Cond.(*sqlast.Literal); ok {
				if lit.Val.IsTrue() {
					if len(kept) == 0 {
						return w.Result
					}
					c := *e
					c.Whens = kept
					c.Else = w.Result
					return &c
				}
				continue // false/NULL arm: drop
			}
			kept = append(kept, w)
		}
		if len(kept) == len(e.Whens) {
			return x
		}
		if len(kept) == 0 {
			if e.Else != nil {
				return e.Else
			}
			return sqlast.NullLit()
		}
		c := *e
		c.Whens = kept
		return &c
	}
	return x
}

// simplifyPhis turns φ(a, a, …) — ignoring self references — into a copy.
func simplifyPhis(f *Func) bool {
	changed := false
	for _, b := range f.ReachableBlocks() {
		var kept []Phi
		for _, phi := range b.Phis {
			unique := ""
			trivial := true
			for _, a := range phi.Args {
				if a.Val == phi.Var {
					continue
				}
				if unique == "" {
					unique = a.Val
				} else if unique != a.Val {
					trivial = false
					break
				}
			}
			if trivial && unique != "" {
				// Insert a copy at block head; propagation will erase it.
				b.Instrs = append([]cfg.Instr{{Var: phi.Var, Expr: sqlast.Col(unique)}}, b.Instrs...)
				changed = true
				continue
			}
			kept = append(kept, phi)
		}
		b.Phis = kept
	}
	return changed
}

// foldBranches replaces conditional jumps on literals by plain jumps.
func foldBranches(f *Func) bool {
	changed := false
	for _, b := range f.ReachableBlocks() {
		if b.Term.Kind != cfg.TermCondJump {
			continue
		}
		lit, ok := b.Term.Cond.(*sqlast.Literal)
		if !ok {
			continue
		}
		target := b.Term.Else
		lost := b.Term.Then
		if lit.Val.IsTrue() {
			target, lost = b.Term.Then, b.Term.Else
		}
		b.Term = cfg.Terminator{Kind: cfg.TermJump, Then: target}
		removePhiEdge(f, lost, b.ID)
		changed = true
	}
	return changed
}

// removePhiEdge drops φ arguments for the edge pred→block (after an edge
// disappears); unreachable-block removal fixes the rest.
func removePhiEdge(f *Func, block, pred cfg.BlockID) {
	if int(block) >= len(f.Blocks) || f.Blocks[block] == nil {
		return
	}
	// Only drop if the edge is really gone (the pred may still reach the
	// block through its other successor).
	for _, s := range f.Succs(pred) {
		if s == block {
			return
		}
	}
	b := f.Blocks[block]
	for pi := range b.Phis {
		args := b.Phis[pi].Args[:0]
		for _, a := range b.Phis[pi].Args {
			if a.Pred != pred {
				args = append(args, a)
			}
		}
		b.Phis[pi].Args = args
	}
}

// removeUnreachable prunes blocks no longer reachable from entry and drops
// φ arguments from removed predecessors.
func removeUnreachable(f *Func) bool {
	seen := map[cfg.BlockID]bool{}
	var visit func(id cfg.BlockID)
	visit = func(id cfg.BlockID) {
		if seen[id] || f.Blocks[id] == nil {
			return
		}
		seen[id] = true
		for _, s := range f.Succs(id) {
			visit(s)
		}
	}
	visit(f.Entry)
	changed := false
	for i, b := range f.Blocks {
		if b != nil && !seen[b.ID] {
			f.Blocks[i] = nil
			changed = true
		}
	}
	if changed {
		// Drop φ args whose pred vanished.
		for _, b := range f.ReachableBlocks() {
			for pi := range b.Phis {
				args := b.Phis[pi].Args[:0]
				for _, a := range b.Phis[pi].Args {
					if f.Blocks[a.Pred] != nil {
						args = append(args, a)
					}
				}
				b.Phis[pi].Args = args
			}
		}
	}
	return changed
}

// mergeBlocks appends single-predecessor φ-less successors into their
// unconditional predecessor — the pass that collapses our if/loop scaffold
// into the paper's compact L1/L2 shape.
func mergeBlocks(f *Func) bool {
	preds := f.Preds()
	changed := false
	for _, b := range f.ReachableBlocks() {
		for {
			if b.Term.Kind != cfg.TermJump {
				break
			}
			c := f.Blocks[b.Term.Then]
			if c == nil || c.ID == b.ID || len(preds[c.ID]) != 1 || len(c.Phis) != 0 || c.ID == f.Entry {
				break
			}
			b.Instrs = append(b.Instrs, c.Instrs...)
			b.Term = c.Term
			// successors' φ args: edges from c now come from b
			for _, s := range f.Succs(b.ID) {
				sb := f.Blocks[s]
				for pi := range sb.Phis {
					for ai := range sb.Phis[pi].Args {
						if sb.Phis[pi].Args[ai].Pred == c.ID {
							sb.Phis[pi].Args[ai].Pred = b.ID
						}
					}
				}
			}
			f.Blocks[c.ID] = nil
			preds = f.Preds()
			changed = true
		}
	}
	return changed
}

// deadCodeElim removes non-effectful definitions whose version is never
// used (iterating, since removals expose more dead code).
func deadCodeElim(f *Func) bool {
	changedAny := false
	for {
		uses := map[string]int{}
		countExpr := func(e sqlast.Expr) {
			if e == nil {
				return
			}
			sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
				if cr, ok := x.(*sqlast.ColumnRef); ok && cr.Table == "" && f.IsVersion(cr.Column) {
					uses[cr.Column]++
				}
				return true
			})
		}
		for _, b := range f.ReachableBlocks() {
			for _, in := range b.Instrs {
				countExpr(in.Expr)
			}
			countExpr(b.Term.Cond)
			countExpr(b.Term.Ret)
			for _, p := range b.Phis {
				for _, a := range p.Args {
					uses[a.Val]++
				}
			}
		}
		changed := false
		for _, b := range f.ReachableBlocks() {
			instrs := b.Instrs[:0]
			for _, in := range b.Instrs {
				if !in.Effectful && uses[in.Var] == 0 {
					changed = true
					continue
				}
				instrs = append(instrs, in)
			}
			b.Instrs = instrs
			phis := b.Phis[:0]
			for _, p := range b.Phis {
				selfOnly := uses[p.Var]
				for _, a := range p.Args {
					if a.Val == p.Var {
						selfOnly--
					}
				}
				if selfOnly <= 0 {
					changed = true
					continue
				}
				phis = append(phis, p)
			}
			b.Phis = phis
		}
		if !changed {
			return changedAny
		}
		changedAny = true
	}
}

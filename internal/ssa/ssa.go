// Package ssa converts a goto-form CFG into static single assignment form —
// the paper's SSA step (Figure 5): every variable is assigned exactly once,
// assignments reached via several control-flow paths merge through φ
// functions, and the result is ready for "a wide range of code
// simplifications" (opt.go) and the translation to ANF.
package ssa

import (
	"fmt"
	"sort"
	"strings"

	"plsqlaway/internal/cfg"
	"plsqlaway/internal/plast"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqltypes"
)

// PhiArg is one φ operand: the version flowing in from Pred.
type PhiArg struct {
	Pred cfg.BlockID
	Val  string
}

// Phi merges versions of one variable at a join point.
type Phi struct {
	Var  string // defined version
	Args []PhiArg
}

// Block is a basic block in SSA form.
type Block struct {
	ID     cfg.BlockID
	Phis   []Phi
	Instrs []cfg.Instr
	Term   cfg.Terminator
}

// Func is a function in SSA form. Blocks are indexed by ID; pruned entries
// are nil.
type Func struct {
	Name       string
	Params     []plast.Param
	ReturnType sqltypes.Type
	Entry      cfg.BlockID
	Blocks     []*Block
	// VarBase maps a version to its base variable; BaseTypes maps base
	// variables to declared types (the compiler needs types for the
	// run-table schema and CAST(NULL AS τ)).
	VarBase   map[string]string
	BaseTypes map[string]sqltypes.Type
	Warnings  []string
}

// TypeOf returns the declared type of a version.
func (f *Func) TypeOf(version string) (sqltypes.Type, bool) {
	base, ok := f.VarBase[version]
	if !ok {
		return sqltypes.Type{}, false
	}
	t, ok := f.BaseTypes[base]
	return t, ok
}

// IsVersion reports whether name is an SSA version of this function.
func (f *Func) IsVersion(name string) bool {
	_, ok := f.VarBase[name]
	return ok
}

// ReachableBlocks returns non-nil blocks in ID order.
func (f *Func) ReachableBlocks() []*Block {
	var out []*Block
	for _, b := range f.Blocks {
		if b != nil {
			out = append(out, b)
		}
	}
	return out
}

// Preds computes predecessor lists over live blocks.
func (f *Func) Preds() map[cfg.BlockID][]cfg.BlockID {
	preds := make(map[cfg.BlockID][]cfg.BlockID)
	for _, b := range f.ReachableBlocks() {
		for _, s := range f.Succs(b.ID) {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// Succs returns the successors of a live block.
func (f *Func) Succs(id cfg.BlockID) []cfg.BlockID {
	t := f.Blocks[id].Term
	switch t.Kind {
	case cfg.TermJump:
		return []cfg.BlockID{t.Then}
	case cfg.TermCondJump:
		if t.Then == t.Else {
			return []cfg.BlockID{t.Then}
		}
		return []cfg.BlockID{t.Then, t.Else}
	default:
		return nil
	}
}

// Dump renders the function in the paper's Figure 5 style.
func (f *Func) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "function %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Name)
	}
	sb.WriteString(")\n{\n")
	for _, b := range f.ReachableBlocks() {
		fmt.Fprintf(&sb, "L%d:\n", b.ID)
		for _, phi := range b.Phis {
			fmt.Fprintf(&sb, "  %s <- phi(", phi.Var)
			for i, a := range phi.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "L%d:%s", a.Pred, a.Val)
			}
			sb.WriteString(")\n")
		}
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s <- %s\n", in.Var, sqlast.DeparseExpr(in.Expr))
		}
		switch b.Term.Kind {
		case cfg.TermJump:
			fmt.Fprintf(&sb, "  goto L%d\n", b.Term.Then)
		case cfg.TermCondJump:
			fmt.Fprintf(&sb, "  if %s then goto L%d else goto L%d\n",
				sqlast.DeparseExpr(b.Term.Cond), b.Term.Then, b.Term.Else)
		case cfg.TermReturn:
			fmt.Fprintf(&sb, "  return %s\n", sqlast.DeparseExpr(b.Term.Ret))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// ---------------------------------------------------------------------------
// construction
// ---------------------------------------------------------------------------

// Build converts a CFG into pruned SSA.
func Build(g *cfg.Graph) (*Func, error) {
	f := &Func{
		Name:       g.Name,
		Params:     g.Params,
		ReturnType: g.ReturnType,
		Entry:      g.Entry,
		VarBase:    make(map[string]string),
		BaseTypes:  g.VarTypes,
		Warnings:   g.Warnings,
	}

	reachable := reachableFrom(g)
	f.Blocks = make([]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		if !reachable[b.ID] {
			continue
		}
		f.Blocks[b.ID] = &Block{ID: b.ID, Instrs: append([]cfg.Instr(nil), b.Instrs...), Term: b.Term}
	}

	preds := f.Preds()
	rpo := reversePostorder(f)
	idom := dominators(f, rpo, preds)
	df := dominanceFrontiers(f, idom, preds)
	liveIn := liveness(f, g, preds)

	insertPhis(f, g, df, liveIn)
	if err := rename(f, g, idom, rpo); err != nil {
		return nil, err
	}
	if err := Validate(f); err != nil {
		return nil, fmt.Errorf("ssa: post-construction validation: %w", err)
	}
	return f, nil
}

func reachableFrom(g *cfg.Graph) map[cfg.BlockID]bool {
	seen := map[cfg.BlockID]bool{}
	var visit func(id cfg.BlockID)
	visit = func(id cfg.BlockID) {
		if seen[id] {
			return
		}
		seen[id] = true
		for _, s := range g.Succs(id) {
			visit(s)
		}
	}
	visit(g.Entry)
	return seen
}

// reversePostorder over live blocks starting at entry.
func reversePostorder(f *Func) []cfg.BlockID {
	var order []cfg.BlockID
	seen := map[cfg.BlockID]bool{}
	var visit func(id cfg.BlockID)
	visit = func(id cfg.BlockID) {
		if seen[id] || f.Blocks[id] == nil {
			return
		}
		seen[id] = true
		for _, s := range f.Succs(id) {
			visit(s)
		}
		order = append(order, id)
	}
	visit(f.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// dominators computes immediate dominators (Cooper–Harvey–Kennedy).
func dominators(f *Func, rpo []cfg.BlockID, preds map[cfg.BlockID][]cfg.BlockID) map[cfg.BlockID]cfg.BlockID {
	rpoIdx := map[cfg.BlockID]int{}
	for i, id := range rpo {
		rpoIdx[id] = i
	}
	idom := map[cfg.BlockID]cfg.BlockID{f.Entry: f.Entry}
	intersect := func(a, b cfg.BlockID) cfg.BlockID {
		for a != b {
			for rpoIdx[a] > rpoIdx[b] {
				a = idom[a]
			}
			for rpoIdx[b] > rpoIdx[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, id := range rpo {
			if id == f.Entry {
				continue
			}
			var newIdom cfg.BlockID = -1
			for _, p := range preds[id] {
				if _, ok := idom[p]; !ok {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom < 0 {
				continue
			}
			if cur, ok := idom[id]; !ok || cur != newIdom {
				idom[id] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// dominanceFrontiers computes DF per Cytron et al.
func dominanceFrontiers(f *Func, idom map[cfg.BlockID]cfg.BlockID, preds map[cfg.BlockID][]cfg.BlockID) map[cfg.BlockID]map[cfg.BlockID]bool {
	df := map[cfg.BlockID]map[cfg.BlockID]bool{}
	for _, b := range f.ReachableBlocks() {
		if len(preds[b.ID]) < 2 {
			continue
		}
		for _, p := range preds[b.ID] {
			runner := p
			for runner != idom[b.ID] {
				if df[runner] == nil {
					df[runner] = map[cfg.BlockID]bool{}
				}
				df[runner][b.ID] = true
				next, ok := idom[runner]
				if !ok || next == runner {
					break
				}
				runner = next
			}
		}
	}
	return df
}

// varsUsed collects function variables read by an expression (descending
// into subqueries; only unqualified references can be variables).
func varsUsed(g *cfg.Graph, e sqlast.Expr, out map[string]bool) {
	if e == nil {
		return
	}
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		if cr, ok := x.(*sqlast.ColumnRef); ok && cr.Table == "" && g.IsVar(cr.Column) {
			out[cr.Column] = true
		}
		return true
	})
}

// liveness computes live-in variable sets per block (for pruned SSA).
func liveness(f *Func, g *cfg.Graph, preds map[cfg.BlockID][]cfg.BlockID) map[cfg.BlockID]map[string]bool {
	type uses struct {
		upward map[string]bool // used before any def in block
		defs   map[string]bool
	}
	info := map[cfg.BlockID]*uses{}
	for _, b := range f.ReachableBlocks() {
		u := &uses{upward: map[string]bool{}, defs: map[string]bool{}}
		add := func(e sqlast.Expr) {
			tmp := map[string]bool{}
			varsUsed(g, e, tmp)
			for v := range tmp {
				if !u.defs[v] {
					u.upward[v] = true
				}
			}
		}
		for _, in := range b.Instrs {
			add(in.Expr)
			u.defs[in.Var] = true
		}
		add(b.Term.Cond)
		add(b.Term.Ret)
		info[b.ID] = u
	}
	liveIn := map[cfg.BlockID]map[string]bool{}
	liveOut := map[cfg.BlockID]map[string]bool{}
	for _, b := range f.ReachableBlocks() {
		liveIn[b.ID] = map[string]bool{}
		liveOut[b.ID] = map[string]bool{}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range f.ReachableBlocks() {
			out := liveOut[b.ID]
			for _, s := range f.Succs(b.ID) {
				for v := range liveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[b.ID]
			u := info[b.ID]
			for v := range u.upward {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !u.defs[v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return liveIn
}

// insertPhis places pruned φ functions: at each dominance-frontier block of
// a definition, if the variable is live-in there.
func insertPhis(f *Func, g *cfg.Graph, df map[cfg.BlockID]map[cfg.BlockID]bool, liveIn map[cfg.BlockID]map[string]bool) {
	defSites := map[string][]cfg.BlockID{}
	for _, b := range f.ReachableBlocks() {
		seen := map[string]bool{}
		for _, in := range b.Instrs {
			if !seen[in.Var] {
				seen[in.Var] = true
				defSites[in.Var] = append(defSites[in.Var], b.ID)
			}
		}
	}
	// Parameters are defined at entry.
	for _, p := range g.Params {
		defSites[p.Name] = append(defSites[p.Name], f.Entry)
	}

	vars := make([]string, 0, len(defSites))
	for v := range defSites {
		vars = append(vars, v)
	}
	sort.Strings(vars) // deterministic φ order

	for _, v := range vars {
		hasPhi := map[cfg.BlockID]bool{}
		work := append([]cfg.BlockID(nil), defSites[v]...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for dfb := range df[b] {
				if hasPhi[dfb] || !liveIn[dfb][v] {
					continue
				}
				hasPhi[dfb] = true
				blk := f.Blocks[dfb]
				blk.Phis = append(blk.Phis, Phi{Var: v}) // renamed later
				work = append(work, dfb)
			}
		}
		// Keep φ order deterministic within a block.
		for _, b := range f.ReachableBlocks() {
			sort.SliceStable(b.Phis, func(i, j int) bool { return b.Phis[i].Var < b.Phis[j].Var })
		}
	}
}

// rename walks the dominator tree giving every assignment a fresh version
// and rewriting uses to the reaching version.
func rename(f *Func, g *cfg.Graph, idom map[cfg.BlockID]cfg.BlockID, rpo []cfg.BlockID) error {
	children := map[cfg.BlockID][]cfg.BlockID{}
	for _, id := range rpo {
		if id == f.Entry {
			continue
		}
		children[idom[id]] = append(children[idom[id]], id)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	}
	preds := f.Preds()

	counter := map[string]int{}
	stacks := map[string][]string{}
	var renameErr error

	newVersion := func(base string) string {
		counter[base]++
		v := fmt.Sprintf("%s_%d", base, counter[base])
		f.VarBase[v] = base
		stacks[base] = append(stacks[base], v)
		return v
	}
	current := func(base string) string {
		s := stacks[base]
		if len(s) == 0 {
			if renameErr == nil {
				renameErr = fmt.Errorf("ssa: variable %q used before any definition", base)
			}
			return base
		}
		return s[len(s)-1]
	}

	// Parameters: the raw name is version 0.
	for _, p := range g.Params {
		f.VarBase[p.Name] = p.Name
		stacks[p.Name] = append(stacks[p.Name], p.Name)
	}

	rewrite := func(e sqlast.Expr) sqlast.Expr {
		if e == nil {
			return nil
		}
		return sqlast.RewriteExpr(e, func(x sqlast.Expr) sqlast.Expr {
			if cr, ok := x.(*sqlast.ColumnRef); ok && cr.Table == "" && g.IsVar(cr.Column) {
				return sqlast.Col(current(cr.Column))
			}
			return x
		})
	}

	var walk func(id cfg.BlockID)
	walk = func(id cfg.BlockID) {
		b := f.Blocks[id]
		var pushed []string

		for i := range b.Phis {
			base := b.Phis[i].Var
			b.Phis[i].Var = newVersion(base)
			pushed = append(pushed, base)
		}
		for i := range b.Instrs {
			b.Instrs[i].Expr = rewrite(b.Instrs[i].Expr)
			base := b.Instrs[i].Var
			b.Instrs[i].Var = newVersion(base)
			pushed = append(pushed, base)
		}
		b.Term.Cond = rewrite(b.Term.Cond)
		b.Term.Ret = rewrite(b.Term.Ret)

		// Fill φ arguments of successors for the edge from this block. A
		// successor later in dominator-tree order still carries the base
		// name; an already-renamed one resolves through VarBase.
		for _, s := range f.Succs(id) {
			sb := f.Blocks[s]
			for i := range sb.Phis {
				base := sb.Phis[i].Var
				if mapped, ok := f.VarBase[base]; ok {
					base = mapped
				}
				sb.Phis[i].Args = append(sb.Phis[i].Args, PhiArg{Pred: id, Val: current(base)})
			}
		}
		_ = preds

		for _, kid := range children[id] {
			walk(kid)
		}
		for _, base := range pushed {
			stacks[base] = stacks[base][:len(stacks[base])-1]
		}
	}
	walk(f.Entry)
	return renameErr
}

package ssa

import (
	"strings"
	"testing"

	"plsqlaway/internal/cfg"
	"plsqlaway/internal/plparser"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqlparser"
)

func buildSSA(t *testing.T, src string, optimize bool) *Func {
	t.Helper()
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatalf("sql parse: %v", err)
	}
	f, err := plparser.ParseFunction(stmt.(*sqlast.CreateFunction))
	if err != nil {
		t.Fatalf("pl parse: %v", err)
	}
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	s, err := Build(g)
	if err != nil {
		t.Fatalf("ssa: %v", err)
	}
	if optimize {
		if err := Optimize(s); err != nil {
			t.Fatalf("optimize: %v", err)
		}
	}
	return s
}

const loopFn = `CREATE FUNCTION f(n int) RETURNS int AS $$
DECLARE
  acc int = 1;
  i int = 1;
BEGIN
  WHILE i <= n LOOP
    acc = acc * i;
    i = i + 1;
  END LOOP;
  RETURN acc;
END;
$$ LANGUAGE plpgsql`

func TestLoopGetsPhis(t *testing.T) {
	s := buildSSA(t, loopFn, false)
	// The while header joins entry and the back edge: both acc and i need φs.
	phis := 0
	for _, b := range s.ReachableBlocks() {
		phis += len(b.Phis)
		for _, p := range b.Phis {
			if len(p.Args) != 2 {
				t.Errorf("φ %s has %d args, want 2 (entry + back edge)", p.Var, len(p.Args))
			}
		}
	}
	if phis != 2 {
		t.Errorf("expected 2 φs (acc, i), got %d\n%s", phis, s.Dump())
	}
}

func TestSingleAssignmentInvariant(t *testing.T) {
	s := buildSSA(t, loopFn, false)
	seen := map[string]bool{}
	for _, b := range s.ReachableBlocks() {
		for _, p := range b.Phis {
			if seen[p.Var] {
				t.Fatalf("version %s assigned twice", p.Var)
			}
			seen[p.Var] = true
		}
		for _, in := range b.Instrs {
			if seen[in.Var] {
				t.Fatalf("version %s assigned twice", in.Var)
			}
			seen[in.Var] = true
		}
	}
}

func TestIfJoinPhi(t *testing.T) {
	s := buildSSA(t, `CREATE FUNCTION g(x int) RETURNS int AS $$
DECLARE r int = 0;
BEGIN
  IF x > 0 THEN r = 1; ELSE r = 2; END IF;
  RETURN r;
END;
$$ LANGUAGE plpgsql`, false)
	found := false
	for _, b := range s.ReachableBlocks() {
		for _, p := range b.Phis {
			if strings.HasPrefix(p.Var, "r_") && len(p.Args) == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("expected a 2-way φ for r:\n%s", s.Dump())
	}
}

func TestOptimizeFoldsConstants(t *testing.T) {
	s := buildSSA(t, `CREATE FUNCTION h() RETURNS int AS $$
DECLARE a int = 2 + 3;
         b int = 0;
BEGIN
  IF 1 < 2 THEN b = a * 10; ELSE b = -1; END IF;
  RETURN b + 0 * 100;
END;
$$ LANGUAGE plpgsql`, true)
	d := s.Dump()
	// The branch folds, -1 arm disappears, and constants propagate: the
	// whole function should reduce to return 50.
	if strings.Contains(d, "-1") {
		t.Errorf("dead branch survived:\n%s", d)
	}
	if !strings.Contains(d, "return 50") {
		t.Errorf("constants not fully folded:\n%s", d)
	}
	if n := len(s.ReachableBlocks()); n != 1 {
		t.Errorf("expected a single block after optimization, got %d:\n%s", n, d)
	}
}

func TestDeadCodeKeepsVolatile(t *testing.T) {
	s := buildSSA(t, `CREATE FUNCTION v() RETURNS int AS $$
DECLARE unused float;
         dead int = 7;
BEGIN
  unused = random();
  RETURN 1;
END;
$$ LANGUAGE plpgsql`, true)
	d := s.Dump()
	if !strings.Contains(d, "random()") {
		t.Errorf("volatile assignment must survive DCE:\n%s", d)
	}
	if strings.Contains(d, "<- 7") {
		t.Errorf("dead pure assignment must be eliminated:\n%s", d)
	}
}

func TestLoopOptimizedShapeMatchesPaper(t *testing.T) {
	// After optimization walk-like loops should keep exactly the loop
	// header (with φs) + body + exit structure of Figure 5.
	s := buildSSA(t, loopFn, true)
	if err := Validate(s); err != nil {
		t.Fatalf("validate: %v", err)
	}
	var header *Block
	for _, b := range s.ReachableBlocks() {
		if len(b.Phis) > 0 {
			if header != nil {
				t.Fatalf("more than one φ block:\n%s", s.Dump())
			}
			header = b
		}
	}
	if header == nil {
		t.Fatalf("no loop header:\n%s", s.Dump())
	}
	if header.Term.Kind != cfg.TermCondJump {
		t.Errorf("loop header should end in a conditional jump:\n%s", s.Dump())
	}
}

func TestEmbeddedQueryVariableRenaming(t *testing.T) {
	s := buildSSA(t, `CREATE FUNCTION q(loc coord) RETURNS int AS $$
DECLARE r int = 0;
BEGIN
  r = (SELECT c.reward FROM cells AS c WHERE loc = c.loc);
  RETURN r;
END;
$$ LANGUAGE plpgsql`, false)
	d := s.Dump()
	// The PL/SQL variable `loc` is renamed inside the embedded query, but
	// the qualified table column c.loc is untouched.
	if !strings.Contains(d, "c.loc") {
		t.Errorf("qualified column renamed:\n%s", d)
	}
	if !strings.Contains(d, "WHERE loc = c.loc") {
		// param version 0 keeps its name
		t.Errorf("parameter reference lost:\n%s", d)
	}
}

func TestValidateCatchesBrokenSSA(t *testing.T) {
	s := buildSSA(t, loopFn, false)
	// Corrupt: duplicate definition.
	b := s.ReachableBlocks()[0]
	b.Instrs = append(b.Instrs, b.Instrs[0])
	if err := Validate(s); err == nil {
		t.Error("duplicate assignment must fail validation")
	}
}

func TestWalkBuildsAndValidates(t *testing.T) {
	s := buildSSA(t, walkSrc, true)
	if err := Validate(s); err != nil {
		t.Fatalf("walk SSA invalid: %v\n%s", err, s.Dump())
	}
	d := s.Dump()
	// Both loop-carried variables of Figure 5 merge through φs.
	if !strings.Contains(d, "phi(") {
		t.Errorf("walk must contain φs:\n%s", d)
	}
	for _, needle := range []string{"random()", "policy", "actions", "cells", "sign("} {
		if !strings.Contains(d, needle) {
			t.Errorf("walk SSA lost %q:\n%s", needle, d)
		}
	}
}

// walkSrc is the paper's Figure 3 function.
const walkSrc = `
CREATE FUNCTION walk(origin coord, win int, loose int, steps int)
RETURNS int AS $$
DECLARE
  reward int = 0;
  location coord = origin;
  movement text = '';
  roll float;
BEGIN
  FOR step IN 1..steps LOOP
    movement = (SELECT p.action FROM policy AS p WHERE location = p.loc);
    roll = random();
    location =
      (SELECT move.loc
       FROM (SELECT a.there AS loc,
                    COALESCE(SUM(a.prob) OVER lt, 0.0) AS lo,
                    SUM(a.prob) OVER leq AS hi
             FROM actions AS a
             WHERE location = a.here AND movement = a.action
             WINDOW leq AS (ORDER BY a.there),
                    lt  AS (leq ROWS UNBOUNDED PRECEDING EXCLUDE CURRENT ROW)
            ) AS move(loc, lo, hi)
       WHERE roll BETWEEN move.lo AND move.hi);
    reward = reward + (SELECT c.reward FROM cells AS c WHERE location = c.loc);
    IF reward >= win OR reward <= loose THEN
      RETURN step * sign(reward);
    END IF;
  END LOOP;
  RETURN 0;
END;
$$ LANGUAGE PLPGSQL`

package ssa

import (
	"fmt"

	"plsqlaway/internal/cfg"
	"plsqlaway/internal/sqlast"
)

// Validate checks the SSA invariants: single assignment per version, φ
// arity matching predecessor counts, and every use reached by its (unique)
// definition — defined in the same block earlier, in a dominating block, or
// (for φ arguments) at the end of the corresponding predecessor.
func Validate(f *Func) error {
	preds := f.Preds()
	defs := map[string]cfg.BlockID{}
	defIdx := map[string]int{} // position within block; φs are -1

	for _, b := range f.ReachableBlocks() {
		for _, phi := range b.Phis {
			if _, dup := defs[phi.Var]; dup {
				return fmt.Errorf("version %s assigned more than once", phi.Var)
			}
			defs[phi.Var] = b.ID
			defIdx[phi.Var] = -1
		}
		for i, in := range b.Instrs {
			if _, dup := defs[in.Var]; dup {
				return fmt.Errorf("version %s assigned more than once", in.Var)
			}
			defs[in.Var] = b.ID
			defIdx[in.Var] = i
		}
	}
	// Parameters count as defined at entry before everything.
	for _, p := range f.Params {
		if _, dup := defs[p.Name]; !dup {
			defs[p.Name] = f.Entry
			defIdx[p.Name] = -2
		}
	}

	// Dominator relation for the use-check.
	rpo := reversePostorder(f)
	idom := dominators(f, rpo, preds)
	dominates := func(a, b cfg.BlockID) bool {
		for {
			if a == b {
				return true
			}
			next, ok := idom[b]
			if !ok || next == b {
				return false
			}
			b = next
		}
	}

	checkUse := func(name string, useBlock cfg.BlockID, useIdx int) error {
		if !f.IsVersion(name) {
			return nil // table column or parameter of an embedded query
		}
		db, ok := defs[name]
		if !ok {
			return fmt.Errorf("version %s used but never defined", name)
		}
		if db == useBlock {
			if defIdx[name] < useIdx {
				return nil
			}
			return fmt.Errorf("version %s used at instruction %d of L%d before its definition", name, useIdx, useBlock)
		}
		if !dominates(db, useBlock) {
			return fmt.Errorf("version %s (defined in L%d) used in L%d which it does not dominate", name, db, useBlock)
		}
		return nil
	}

	usesIn := func(e sqlast.Expr) []string {
		var out []string
		if e == nil {
			return nil
		}
		sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
			if cr, ok := x.(*sqlast.ColumnRef); ok && cr.Table == "" {
				out = append(out, cr.Column)
			}
			return true
		})
		return out
	}

	for _, b := range f.ReachableBlocks() {
		if len(preds[b.ID]) > 0 || b.ID == f.Entry {
			for _, phi := range b.Phis {
				if len(phi.Args) != len(preds[b.ID]) {
					return fmt.Errorf("φ %s in L%d has %d args for %d predecessors", phi.Var, b.ID, len(phi.Args), len(preds[b.ID]))
				}
				for _, a := range phi.Args {
					if err := checkUse(a.Val, a.Pred, len(f.Blocks[a.Pred].Instrs)); err != nil {
						return fmt.Errorf("φ %s: %w", phi.Var, err)
					}
				}
			}
		}
		for i, in := range b.Instrs {
			for _, u := range usesIn(in.Expr) {
				if err := checkUse(u, b.ID, i); err != nil {
					return err
				}
			}
		}
		n := len(b.Instrs)
		for _, u := range usesIn(b.Term.Cond) {
			if err := checkUse(u, b.ID, n); err != nil {
				return err
			}
		}
		for _, u := range usesIn(b.Term.Ret) {
			if err := checkUse(u, b.ID, n); err != nil {
				return err
			}
		}
		// Terminator targets must be live blocks.
		for _, s := range f.Succs(b.ID) {
			if int(s) >= len(f.Blocks) || f.Blocks[s] == nil {
				return fmt.Errorf("L%d jumps to pruned block L%d", b.ID, s)
			}
		}
	}
	return nil
}

package storage

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"plsqlaway/internal/sqltypes"
)

func sampleTuple() Tuple {
	return Tuple{
		sqltypes.Null,
		sqltypes.NewBool(true),
		sqltypes.NewInt(-42),
		sqltypes.NewFloat(2.5),
		sqltypes.NewText("héllo"),
		sqltypes.NewCoord(3, 2),
		sqltypes.NewRow([]sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewText("x"), sqltypes.Null}),
	}
}

func TestTupleRoundTrip(t *testing.T) {
	in := sampleTuple()
	enc := EncodeTuple(in)
	out, err := DecodeTuple(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d != %d", len(out), len(in))
	}
	for i := range in {
		if !sqltypes.Identical(in[i], out[i]) {
			t.Errorf("field %d: %v != %v", i, in[i], out[i])
		}
	}
}

func randTupleFor(r *rand.Rand) Tuple {
	n := r.Intn(6)
	t := make(Tuple, n)
	for i := range t {
		switch r.Intn(7) {
		case 0:
			t[i] = sqltypes.Null
		case 1:
			t[i] = sqltypes.NewBool(r.Intn(2) == 0)
		case 2:
			t[i] = sqltypes.NewInt(r.Int63() - math.MaxInt64/2)
		case 3:
			t[i] = sqltypes.NewFloat(r.NormFloat64())
		case 4:
			t[i] = sqltypes.NewText(strings.Repeat("ab", r.Intn(20)))
		case 5:
			t[i] = sqltypes.NewCoord(int64(r.Intn(100)), int64(r.Intn(100)))
		default:
			t[i] = sqltypes.NewRow([]sqltypes.Value{sqltypes.NewInt(int64(r.Intn(10))), sqltypes.NewText("q")})
		}
	}
	return t
}

func TestTupleRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randTupleFor(r)
		out, err := DecodeTuple(EncodeTuple(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if !sqltypes.Identical(in[i], out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good := EncodeTuple(sampleTuple())
	for cut := 0; cut < len(good)-1; cut += 3 {
		if _, err := DecodeTuple(good[:cut+1]); err == nil && cut+1 < len(good) {
			// Some prefixes may decode fewer fields validly only if the
			// count survived; a truncated count must error.
			if cut == 0 {
				t.Errorf("truncated tuple at %d should error", cut)
			}
		}
	}
	if _, err := DecodeTuple([]byte{1, 0, 99}); err == nil {
		t.Error("bad kind tag should error")
	}
}

func TestPageFillAndOverflow(t *testing.T) {
	p := NewPage()
	row := Tuple{sqltypes.NewInt(1), sqltypes.NewText(strings.Repeat("x", 100))}
	enc := EncodeTuple(row)
	n := 0
	for p.TryAdd(enc) {
		n++
		if n > 1000 {
			t.Fatal("page never fills")
		}
	}
	// Each tuple occupies line pointer + aligned header+payload.
	per := LinePointerSize + ((TupleHeaderSize+len(enc))+MaxAlign-1)&^(MaxAlign-1)
	want := (PageSize - PageHeaderSize) / per
	if n != want {
		t.Errorf("page holds %d tuples, want %d", n, want)
	}
	if got, err := p.Tuple(0); err != nil || !sqltypes.Identical(got[1], row[1]) {
		t.Errorf("page tuple decode: %v %v", got, err)
	}
}

func TestOversizedTupleStillStored(t *testing.T) {
	p := NewPage()
	huge := Tuple{sqltypes.NewText(strings.Repeat("x", PageSize*2))}
	if !p.TryAdd(EncodeTuple(huge)) {
		t.Fatal("oversized tuple on empty page must be accepted")
	}
}

func TestTupleStoreInMemory(t *testing.T) {
	var st Stats
	ts := NewTupleStore(&st, 1<<20)
	for i := 0; i < 100; i++ {
		ts.Append(Tuple{sqltypes.NewInt(int64(i))})
	}
	ts.Finish()
	if ts.Spilled() {
		t.Fatal("small store should not spill")
	}
	if st.PageWrites != 0 {
		t.Errorf("page writes: %d, want 0", st.PageWrites)
	}
	rows, err := ts.Rows()
	if err != nil || len(rows) != 100 {
		t.Fatalf("rows: %d %v", len(rows), err)
	}
	if rows[42][0].Int() != 42 {
		t.Error("row order broken")
	}
}

func TestTupleStoreSpill(t *testing.T) {
	var st Stats
	ts := NewTupleStore(&st, 4096) // tiny budget forces spill
	const rows = 500
	for i := 0; i < rows; i++ {
		ts.Append(Tuple{sqltypes.NewInt(int64(i)), sqltypes.NewText(strings.Repeat("p", 64))})
	}
	ts.Finish()
	if !ts.Spilled() {
		t.Fatal("store should spill")
	}
	if st.PageWrites == 0 {
		t.Error("spilled store must count page writes")
	}
	got, err := ts.Rows()
	if err != nil || len(got) != rows {
		t.Fatalf("rows after spill: %d %v", len(got), err)
	}
	for i, r := range got {
		if r[0].Int() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, r[0])
		}
	}
	// ForEach must agree with Rows.
	n := 0
	if err := ts.ForEach(func(Tuple) error { n++; return nil }); err != nil || n != rows {
		t.Errorf("ForEach: %d %v", n, err)
	}
}

func TestTupleStorePageWriteAccounting(t *testing.T) {
	// Total bytes ≈ rows × TupleDiskSize ⇒ page writes ≈ bytes / PageSize.
	var st Stats
	ts := NewTupleStore(&st, 1) // spill immediately
	row := Tuple{sqltypes.NewInt(7), sqltypes.NewText(strings.Repeat("z", 57))}
	const rows = 2000
	for i := 0; i < rows; i++ {
		ts.Append(row)
	}
	ts.Finish()
	per := TupleDiskSize(row)
	perPage := (PageSize - PageHeaderSize) / per
	wantPages := (rows + perPage - 1) / perPage
	if int(st.PageWrites) != wantPages {
		t.Errorf("page writes %d, want %d (per=%d perPage=%d)", st.PageWrites, wantPages, per, perPage)
	}
}

func TestFinishIdempotent(t *testing.T) {
	var st Stats
	ts := NewTupleStore(&st, 1)
	ts.Append(Tuple{sqltypes.NewInt(1)})
	ts.Finish()
	w := st.PageWrites
	ts.Finish()
	if st.PageWrites != w {
		t.Error("Finish must be idempotent")
	}
}

func TestHeapInsertAndScan(t *testing.T) {
	var st Stats
	h := NewHeap(&st)
	for i := 0; i < 1000; i++ {
		h.Insert(Tuple{sqltypes.NewInt(int64(i)), sqltypes.NewText("row")})
	}
	if h.Len() != 1000 {
		t.Fatalf("len: %d", h.Len())
	}
	if h.NumPages() < 2 {
		t.Errorf("expected multiple pages, got %d", h.NumPages())
	}
	rows, err := h.Rows()
	if err != nil || len(rows) != 1000 {
		t.Fatalf("rows: %d %v", len(rows), err)
	}
	if rows[999][0].Int() != 999 {
		t.Error("scan order broken")
	}
	// Cache must serve second scan and invalidate on insert.
	again, _ := h.Rows()
	if &again[0] != &rows[0] {
		t.Error("expected cached scan")
	}
	h.Insert(Tuple{sqltypes.NewInt(1000), sqltypes.NewText("row")})
	rows2, _ := h.Rows()
	if len(rows2) != 1001 {
		t.Errorf("after insert: %d", len(rows2))
	}
}

func TestHeapMVCCVisibility(t *testing.T) {
	h := NewHeap(nil)
	h.Insert(Tuple{sqltypes.NewInt(1)})
	h.Insert(Tuple{sqltypes.NewInt(2)})

	// Commit at ts=1: replace row 1 with 9 (mark dead + append), like an
	// UPDATE would.
	vidx, rows, err := h.VersionsAt(AllVisible)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	h.Commit([]int{vidx[0]}, []Tuple{{sqltypes.NewInt(9)}}, 1)

	// A snapshot at ts=0 (before the commit) still sees the old contents.
	old, err := h.RowsAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 2 || old[0][0].Int() != 1 || old[1][0].Int() != 2 {
		t.Errorf("snapshot 0: %v", old)
	}
	// A snapshot at ts=1 sees the new version and not the dead one.
	now, err := h.RowsAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(now) != 2 || now[0][0].Int() != 2 || now[1][0].Int() != 9 {
		t.Errorf("snapshot 1: %v", now)
	}
	if h.Len() != 2 || h.DeadCount() != 1 {
		t.Errorf("live=%d dead=%d, want 2/1", h.Len(), h.DeadCount())
	}
}

// TestHeapSingleTipWindow is the regression test for a dual-tip cache
// bug: two readers at different timestamps, both at or past the heap's
// last commit, must share ONE open-ended cache window — otherwise a
// later commit seals only one of them and the stale tip serves
// pre-commit rows to every subsequent snapshot.
func TestHeapSingleTipWindow(t *testing.T) {
	h := NewHeap(nil)
	h.Insert(Tuple{sqltypes.NewInt(1)})
	h.Commit(nil, []Tuple{{sqltypes.NewInt(2)}}, 1)

	// Out-of-order snapshot builds, both ≥ lastTS=1: a late reader first,
	// then an older still-pinned one.
	if rows, _ := h.RowsAt(10); len(rows) != 2 {
		t.Fatalf("rows@10: %d", len(rows))
	}
	if rows, _ := h.RowsAt(5); len(rows) != 2 {
		t.Fatalf("rows@5: %d", len(rows))
	}

	// Commit at ts=11; every snapshot at or past it must see the new row.
	h.Commit(nil, []Tuple{{sqltypes.NewInt(3)}}, 11)
	for _, ts := range []int64{11, 12, AllVisible} {
		rows, err := h.RowsAt(ts)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("rows@%d after commit: %d, want 3 (stale tip window survived)", ts, len(rows))
		}
	}
	// Pre-commit snapshots still see the old set.
	if rows, _ := h.RowsAt(5); len(rows) != 2 {
		t.Errorf("rows@5 after commit: want 2")
	}
}

func TestHeapVacuum(t *testing.T) {
	h := NewHeap(nil)
	for i := int64(0); i < 100; i++ {
		h.Insert(Tuple{sqltypes.NewInt(i)})
	}
	// Delete the even rows at ts=1, then update the first ten odd rows at
	// ts=2.
	vidx, rows, _ := h.VersionsAt(AllVisible)
	var dead []int
	for i, r := range rows {
		if r[0].Int()%2 == 0 {
			dead = append(dead, vidx[i])
		}
	}
	h.Commit(dead, nil, 1)
	vidx, rows, _ = h.VersionsAt(2)
	dead = dead[:0]
	var added []Tuple
	for i, r := range rows[:10] {
		dead = append(dead, vidx[i])
		added = append(added, Tuple{sqltypes.NewInt(r[0].Int() + 1000)})
	}
	h.Commit(dead, added, 2)

	before, _ := h.RowsAt(2)
	if got := h.DeadCount(); got != 60 {
		t.Fatalf("dead=%d, want 60", got)
	}
	// Vacuum with the oldest live snapshot at 1: the ts=1 deletions are
	// reclaimable (xmax <= 1), the ts=2 updates are not.
	if got := h.Vacuum(1); got != 50 {
		t.Fatalf("reclaimed %d, want 50", got)
	}
	after, _ := h.RowsAt(2)
	if len(after) != len(before) {
		t.Fatalf("visible rows changed across vacuum: %d vs %d", len(after), len(before))
	}
	for i := range after {
		if !sqltypes.Identical(after[i][0], before[i][0]) {
			t.Fatalf("row %d changed across vacuum: %v vs %v", i, after[i], before[i])
		}
	}
	// A snapshot at ts=1 must still be intact (it was the vacuum horizon).
	at1, _ := h.RowsAt(1)
	if len(at1) != 50 {
		t.Errorf("snapshot 1 after vacuum: %d rows, want 50", len(at1))
	}
	// Vacuum with no old snapshots reclaims the rest.
	if got := h.Vacuum(AllVisible); got != 10 {
		t.Errorf("second vacuum reclaimed %d, want 10", got)
	}
	if h.DeadCount() != 0 {
		t.Errorf("dead=%d after full vacuum", h.DeadCount())
	}
}

func TestQuadraticGrowthShape(t *testing.T) {
	// The Table 2 mechanism in miniature: rows whose text payload shrinks
	// linearly produce total bytes Θ(n²), so doubling n must roughly
	// quadruple page writes.
	writesFor := func(n int) int64 {
		var st Stats
		ts := NewTupleStore(&st, 1)
		input := strings.Repeat("c", n)
		for i := 0; i < n; i++ {
			ts.Append(Tuple{sqltypes.NewInt(int64(i)), sqltypes.NewText(input[i:])})
		}
		ts.Finish()
		return st.PageWrites
	}
	w1, w2 := writesFor(1000), writesFor(2000)
	ratio := float64(w2) / float64(w1)
	if ratio < 3.2 || ratio > 4.8 {
		t.Errorf("expected ~4x growth, got %d -> %d (%.2fx)", w1, w2, ratio)
	}
}

package storage

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"plsqlaway/internal/sqltypes"
)

func sampleTuple() Tuple {
	return Tuple{
		sqltypes.Null,
		sqltypes.NewBool(true),
		sqltypes.NewInt(-42),
		sqltypes.NewFloat(2.5),
		sqltypes.NewText("héllo"),
		sqltypes.NewCoord(3, 2),
		sqltypes.NewRow([]sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewText("x"), sqltypes.Null}),
	}
}

func TestTupleRoundTrip(t *testing.T) {
	in := sampleTuple()
	enc := EncodeTuple(in)
	out, err := DecodeTuple(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d != %d", len(out), len(in))
	}
	for i := range in {
		if !sqltypes.Identical(in[i], out[i]) {
			t.Errorf("field %d: %v != %v", i, in[i], out[i])
		}
	}
}

func randTupleFor(r *rand.Rand) Tuple {
	n := r.Intn(6)
	t := make(Tuple, n)
	for i := range t {
		switch r.Intn(7) {
		case 0:
			t[i] = sqltypes.Null
		case 1:
			t[i] = sqltypes.NewBool(r.Intn(2) == 0)
		case 2:
			t[i] = sqltypes.NewInt(r.Int63() - math.MaxInt64/2)
		case 3:
			t[i] = sqltypes.NewFloat(r.NormFloat64())
		case 4:
			t[i] = sqltypes.NewText(strings.Repeat("ab", r.Intn(20)))
		case 5:
			t[i] = sqltypes.NewCoord(int64(r.Intn(100)), int64(r.Intn(100)))
		default:
			t[i] = sqltypes.NewRow([]sqltypes.Value{sqltypes.NewInt(int64(r.Intn(10))), sqltypes.NewText("q")})
		}
	}
	return t
}

func TestTupleRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randTupleFor(r)
		out, err := DecodeTuple(EncodeTuple(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if !sqltypes.Identical(in[i], out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good := EncodeTuple(sampleTuple())
	for cut := 0; cut < len(good)-1; cut += 3 {
		if _, err := DecodeTuple(good[:cut+1]); err == nil && cut+1 < len(good) {
			// Some prefixes may decode fewer fields validly only if the
			// count survived; a truncated count must error.
			if cut == 0 {
				t.Errorf("truncated tuple at %d should error", cut)
			}
		}
	}
	if _, err := DecodeTuple([]byte{1, 0, 99}); err == nil {
		t.Error("bad kind tag should error")
	}
}

func TestPageFillAndOverflow(t *testing.T) {
	p := NewPage()
	row := Tuple{sqltypes.NewInt(1), sqltypes.NewText(strings.Repeat("x", 100))}
	enc := EncodeTuple(row)
	n := 0
	for p.TryAdd(enc) {
		n++
		if n > 1000 {
			t.Fatal("page never fills")
		}
	}
	// Each tuple occupies line pointer + aligned header+payload.
	per := LinePointerSize + ((TupleHeaderSize+len(enc))+MaxAlign-1)&^(MaxAlign-1)
	want := (PageSize - PageHeaderSize) / per
	if n != want {
		t.Errorf("page holds %d tuples, want %d", n, want)
	}
	if got, err := p.Tuple(0); err != nil || !sqltypes.Identical(got[1], row[1]) {
		t.Errorf("page tuple decode: %v %v", got, err)
	}
}

func TestOversizedTupleStillStored(t *testing.T) {
	p := NewPage()
	huge := Tuple{sqltypes.NewText(strings.Repeat("x", PageSize*2))}
	if !p.TryAdd(EncodeTuple(huge)) {
		t.Fatal("oversized tuple on empty page must be accepted")
	}
}

func TestTupleStoreInMemory(t *testing.T) {
	var st Stats
	ts := NewTupleStore(&st, 1<<20)
	for i := 0; i < 100; i++ {
		ts.Append(Tuple{sqltypes.NewInt(int64(i))})
	}
	ts.Finish()
	if ts.Spilled() {
		t.Fatal("small store should not spill")
	}
	if st.PageWrites != 0 {
		t.Errorf("page writes: %d, want 0", st.PageWrites)
	}
	rows, err := ts.Rows()
	if err != nil || len(rows) != 100 {
		t.Fatalf("rows: %d %v", len(rows), err)
	}
	if rows[42][0].Int() != 42 {
		t.Error("row order broken")
	}
}

func TestTupleStoreSpill(t *testing.T) {
	var st Stats
	ts := NewTupleStore(&st, 4096) // tiny budget forces spill
	const rows = 500
	for i := 0; i < rows; i++ {
		ts.Append(Tuple{sqltypes.NewInt(int64(i)), sqltypes.NewText(strings.Repeat("p", 64))})
	}
	ts.Finish()
	if !ts.Spilled() {
		t.Fatal("store should spill")
	}
	if st.PageWrites == 0 {
		t.Error("spilled store must count page writes")
	}
	got, err := ts.Rows()
	if err != nil || len(got) != rows {
		t.Fatalf("rows after spill: %d %v", len(got), err)
	}
	for i, r := range got {
		if r[0].Int() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, r[0])
		}
	}
	// ForEach must agree with Rows.
	n := 0
	if err := ts.ForEach(func(Tuple) error { n++; return nil }); err != nil || n != rows {
		t.Errorf("ForEach: %d %v", n, err)
	}
}

func TestTupleStorePageWriteAccounting(t *testing.T) {
	// Total bytes ≈ rows × TupleDiskSize ⇒ page writes ≈ bytes / PageSize.
	var st Stats
	ts := NewTupleStore(&st, 1) // spill immediately
	row := Tuple{sqltypes.NewInt(7), sqltypes.NewText(strings.Repeat("z", 57))}
	const rows = 2000
	for i := 0; i < rows; i++ {
		ts.Append(row)
	}
	ts.Finish()
	per := TupleDiskSize(row)
	perPage := (PageSize - PageHeaderSize) / per
	wantPages := (rows + perPage - 1) / perPage
	if int(st.PageWrites) != wantPages {
		t.Errorf("page writes %d, want %d (per=%d perPage=%d)", st.PageWrites, wantPages, per, perPage)
	}
}

func TestFinishIdempotent(t *testing.T) {
	var st Stats
	ts := NewTupleStore(&st, 1)
	ts.Append(Tuple{sqltypes.NewInt(1)})
	ts.Finish()
	w := st.PageWrites
	ts.Finish()
	if st.PageWrites != w {
		t.Error("Finish must be idempotent")
	}
}

func TestHeapInsertAndScan(t *testing.T) {
	var st Stats
	h := NewHeap(&st)
	for i := 0; i < 1000; i++ {
		h.Insert(Tuple{sqltypes.NewInt(int64(i)), sqltypes.NewText("row")})
	}
	if h.Len() != 1000 {
		t.Fatalf("len: %d", h.Len())
	}
	if h.NumPages() < 2 {
		t.Errorf("expected multiple pages, got %d", h.NumPages())
	}
	rows, err := h.Rows()
	if err != nil || len(rows) != 1000 {
		t.Fatalf("rows: %d %v", len(rows), err)
	}
	if rows[999][0].Int() != 999 {
		t.Error("scan order broken")
	}
	// Cache must serve second scan and invalidate on insert.
	again, _ := h.Rows()
	if &again[0] != &rows[0] {
		t.Error("expected cached scan")
	}
	h.Insert(Tuple{sqltypes.NewInt(1000), sqltypes.NewText("row")})
	rows2, _ := h.Rows()
	if len(rows2) != 1001 {
		t.Errorf("after insert: %d", len(rows2))
	}
}

func TestHeapReplace(t *testing.T) {
	h := NewHeap(nil)
	h.Insert(Tuple{sqltypes.NewInt(1)})
	h.Insert(Tuple{sqltypes.NewInt(2)})
	h.Replace([]Tuple{{sqltypes.NewInt(9)}})
	rows, _ := h.Rows()
	if len(rows) != 1 || rows[0][0].Int() != 9 {
		t.Errorf("replace: %v", rows)
	}
}

func TestQuadraticGrowthShape(t *testing.T) {
	// The Table 2 mechanism in miniature: rows whose text payload shrinks
	// linearly produce total bytes Θ(n²), so doubling n must roughly
	// quadruple page writes.
	writesFor := func(n int) int64 {
		var st Stats
		ts := NewTupleStore(&st, 1)
		input := strings.Repeat("c", n)
		for i := 0; i < n; i++ {
			ts.Append(Tuple{sqltypes.NewInt(int64(i)), sqltypes.NewText(input[i:])})
		}
		ts.Finish()
		return st.PageWrites
	}
	w1, w2 := writesFor(1000), writesFor(2000)
	ratio := float64(w2) / float64(w1)
	if ratio < 3.2 || ratio > 4.8 {
		t.Errorf("expected ~4x growth, got %d -> %d (%.2fx)", w1, w2, ratio)
	}
}

package storage

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Stats accumulates storage-level counters. The benchmark harness reads
// PageWrites to regenerate Table 2: a vanilla WITH RECURSIVE accumulates the
// whole tail-recursion trace through a TupleStore and pays quadratic page
// writes, while WITH ITERATE keeps one row and pays none.
//
// One Stats instance is shared by every session of an engine, so all
// increments go through atomic adds. Plain field reads are fine once
// concurrent work has quiesced (which is when the harness reads them).
type Stats struct {
	PageWrites    int64 // pages flushed once a store exceeds its memory budget
	PagesAlloc    int64
	TuplesWritten int64
	BytesWritten  int64

	// MVCC commit/vacuum counters (Heap.Commit / Heap.Vacuum). Remote
	// benchmarks read these over the wire to assert storage behaviour
	// without process access.
	Commits           int64 // heap transactions applied via Commit
	Vacuums           int64 // vacuum passes that reclaimed at least one version
	VersionsReclaimed int64 // dead row versions reclaimed by vacuum

	// Durability counters (internal/wal). WALFsyncs vs WALRecords is the
	// group-commit coalescing ratio the durability benchmarks assert.
	WALRecords  int64 // records appended to the write-ahead log
	WALBytes    int64 // framed bytes appended to the write-ahead log
	WALFsyncs   int64 // fsyncs issued against the log
	Checkpoints int64 // checkpoint snapshots written
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	atomic.StoreInt64(&s.PageWrites, 0)
	atomic.StoreInt64(&s.PagesAlloc, 0)
	atomic.StoreInt64(&s.TuplesWritten, 0)
	atomic.StoreInt64(&s.BytesWritten, 0)
	atomic.StoreInt64(&s.Commits, 0)
	atomic.StoreInt64(&s.Vacuums, 0)
	atomic.StoreInt64(&s.VersionsReclaimed, 0)
	atomic.StoreInt64(&s.WALRecords, 0)
	atomic.StoreInt64(&s.WALBytes, 0)
	atomic.StoreInt64(&s.WALFsyncs, 0)
	atomic.StoreInt64(&s.Checkpoints, 0)
}

// StatsSnapshot is a plain copy of the counters, read atomically — the
// form the wire protocol's stats frame carries.
type StatsSnapshot struct {
	PageWrites        int64
	PagesAlloc        int64
	TuplesWritten     int64
	BytesWritten      int64
	Commits           int64
	Vacuums           int64
	VersionsReclaimed int64
	WALRecords        int64
	WALBytes          int64
	WALFsyncs         int64
	Checkpoints       int64
}

// Snapshot reads every counter atomically (individually consistent; the
// set is as consistent as a concurrent workload allows).
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		PageWrites:        atomic.LoadInt64(&s.PageWrites),
		PagesAlloc:        atomic.LoadInt64(&s.PagesAlloc),
		TuplesWritten:     atomic.LoadInt64(&s.TuplesWritten),
		BytesWritten:      atomic.LoadInt64(&s.BytesWritten),
		Commits:           atomic.LoadInt64(&s.Commits),
		Vacuums:           atomic.LoadInt64(&s.Vacuums),
		VersionsReclaimed: atomic.LoadInt64(&s.VersionsReclaimed),
		WALRecords:        atomic.LoadInt64(&s.WALRecords),
		WALBytes:          atomic.LoadInt64(&s.WALBytes),
		WALFsyncs:         atomic.LoadInt64(&s.WALFsyncs),
		Checkpoints:       atomic.LoadInt64(&s.Checkpoints),
	}
}

// DefaultWorkMem mirrors PostgreSQL's default work_mem (4 MiB): tuple
// stores stay in memory below it and spill to pages above it.
const DefaultWorkMem = 4 * 1024 * 1024

// TupleStore is an append-only row container with PostgreSQL-tuplestore
// spill semantics: rows accumulate in memory until the budget is exceeded,
// at which point the store converts to page-backed form in a temp file —
// each full 8 KiB page written counts as one buffer page write. If no temp
// file can be created the pages are kept in memory (accounting unchanged).
type TupleStore struct {
	stats    *Stats
	workMem  int
	memRows  []Tuple
	memBytes int
	spilled  bool

	file     *os.File
	memPages [][]byte // fallback when no temp file is available
	curPage  []byte   // byte buffer of the page being filled
	curUsed  int      // simulated used bytes (header + line ptrs + aligned tuples)
	curCount int      // tuples on current page
	rowCount int
	finished bool
}

// NewTupleStore builds a store charging page writes to stats (which may be
// nil). workMem <= 0 selects DefaultWorkMem.
func NewTupleStore(stats *Stats, workMem int) *TupleStore {
	if workMem <= 0 {
		workMem = DefaultWorkMem
	}
	if stats == nil {
		stats = &Stats{}
	}
	return &TupleStore{stats: stats, workMem: workMem}
}

// Append adds a row to the store.
func (ts *TupleStore) Append(t Tuple) {
	ts.rowCount++
	if !ts.spilled {
		ts.memRows = append(ts.memRows, t)
		ts.memBytes += TupleDiskSize(t)
		if ts.memBytes > ts.workMem {
			ts.spill()
		}
		return
	}
	ts.appendEncoded(EncodeTuple(t))
}

// AppendBatch adds a batch of rows to the store.
func (ts *TupleStore) AppendBatch(rows []Tuple) {
	for _, t := range rows {
		ts.Append(t)
	}
}

func (ts *TupleStore) spill() {
	ts.spilled = true
	if f, err := os.CreateTemp("", "plsqlaway-tuplestore-*.tmp"); err == nil {
		ts.file = f
		// The file is unlinked immediately so it cannot leak even if Close
		// is missed; the open descriptor keeps it readable.
		os.Remove(f.Name())
	}
	rows := ts.memRows
	ts.memRows = nil
	for _, r := range rows {
		ts.appendEncoded(EncodeTuple(r))
	}
}

func (ts *TupleStore) appendEncoded(enc []byte) {
	atomic.AddInt64(&ts.stats.TuplesWritten, 1)
	atomic.AddInt64(&ts.stats.BytesWritten, int64(len(enc)))
	need := LinePointerSize + align(TupleHeaderSize+len(enc))
	if ts.curPage == nil {
		ts.newPage()
	}
	if ts.curUsed+need > PageSize && ts.curCount > 0 {
		ts.flushCurrent()
		ts.newPage()
	}
	// Record the tuple on the page buffer: 4-byte length prefix + payload.
	var hdr [4]byte
	putU32(hdr[:], uint32(len(enc)))
	ts.curPage = append(ts.curPage, hdr[:]...)
	ts.curPage = append(ts.curPage, enc...)
	ts.curUsed += need
	ts.curCount++
}

func (ts *TupleStore) newPage() {
	ts.curPage = make([]byte, 0, PageSize)
	ts.curUsed = PageHeaderSize
	ts.curCount = 0
	atomic.AddInt64(&ts.stats.PagesAlloc, 1)
}

func (ts *TupleStore) flushCurrent() {
	if ts.curPage == nil || ts.curCount == 0 {
		return
	}
	// An oversized tuple (longer residual strings than a page holds — our
	// stand-in for TOAST) produces a multi-page image: count every 8 KiB
	// block actually written.
	pages := int64((len(ts.curPage) + PageSize - 1) / PageSize)
	if pages < 1 {
		pages = 1
	}
	atomic.AddInt64(&ts.stats.PageWrites, pages)
	if ts.file != nil {
		// Length-prefixed page image: real disk I/O for spilled stores.
		var hdr [4]byte
		putU32(hdr[:], uint32(len(ts.curPage)))
		ts.file.Write(hdr[:])
		ts.file.Write(ts.curPage)
	} else {
		ts.memPages = append(ts.memPages, ts.curPage)
	}
	ts.curPage = nil
	ts.curUsed = 0
	ts.curCount = 0
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Finish flushes the trailing partial page (if the store spilled). Call it
// once appending is complete and before scanning; it is idempotent.
func (ts *TupleStore) Finish() {
	if ts.finished {
		return
	}
	ts.finished = true
	if ts.spilled {
		ts.flushCurrent()
	}
}

// Close releases the spill file (if any).
func (ts *TupleStore) Close() {
	if ts.file != nil {
		ts.file.Close()
		ts.file = nil
	}
	ts.memPages = nil
	ts.memRows = nil
}

// Len reports the number of rows appended.
func (ts *TupleStore) Len() int { return ts.rowCount }

// Spilled reports whether the store exceeded its memory budget.
func (ts *TupleStore) Spilled() bool { return ts.spilled }

// Iterator streams the store's rows in insertion order. Finish is called
// implicitly. Multiple iterators may be open sequentially; interleaving
// iteration with appends is not supported.
func (ts *TupleStore) Iterator() *TupleIterator {
	ts.Finish()
	return &TupleIterator{ts: ts, fileOff: 0}
}

// TupleIterator walks a TupleStore.
type TupleIterator struct {
	ts          *TupleIterSource
	memIdx      int
	pageIdx     int
	page        []byte
	pageOff     int
	fileOff     int64
	done        bool
	doneCurrent bool
}

// TupleIterSource is the store being iterated (alias keeps the exported
// surface small).
type TupleIterSource = TupleStore

// Next returns the next row, or nil at the end.
func (it *TupleIterator) Next() (Tuple, error) {
	ts := it.ts
	if it.done {
		return nil, nil
	}
	if !ts.spilled {
		if it.memIdx >= len(ts.memRows) {
			it.done = true
			return nil, nil
		}
		t := ts.memRows[it.memIdx]
		it.memIdx++
		return t, nil
	}
	for {
		if it.page == nil {
			page, err := it.nextPage()
			if err != nil {
				return nil, err
			}
			if page == nil {
				it.done = true
				return nil, nil
			}
			it.page = page
			it.pageOff = 0
		}
		if it.pageOff+4 > len(it.page) {
			it.page = nil
			continue
		}
		n := int(getU32(it.page[it.pageOff:]))
		it.pageOff += 4
		if it.pageOff+n > len(it.page) {
			return nil, fmt.Errorf("storage: corrupt spill page")
		}
		enc := it.page[it.pageOff : it.pageOff+n]
		it.pageOff += n
		return DecodeTuple(enc)
	}
}

// NextChunk fills dst with the next rows of the store, returning how many
// were written (0 at the end). In-memory stores are served by a single bulk
// copy of the row headers; spilled stores decode tuple by tuple.
func (it *TupleIterator) NextChunk(dst []Tuple) (int, error) {
	ts := it.ts
	if it.done || len(dst) == 0 {
		return 0, nil
	}
	if !ts.spilled {
		n := copy(dst, ts.memRows[it.memIdx:])
		it.memIdx += n
		if n == 0 {
			it.done = true
		}
		return n, nil
	}
	n := 0
	for n < len(dst) {
		t, err := it.Next()
		if err != nil {
			return n, err
		}
		if t == nil {
			break
		}
		dst[n] = t
		n++
	}
	return n, nil
}

func (it *TupleIterator) nextPage() ([]byte, error) {
	ts := it.ts
	if ts.file != nil {
		var hdr [4]byte
		n, err := ts.file.ReadAt(hdr[:], it.fileOff)
		if n == 0 {
			// end of flushed pages: serve the unflushed current page
			return it.takeCurrent(), nil
		}
		if err != nil && n < 4 {
			return it.takeCurrent(), nil
		}
		size := int(getU32(hdr[:]))
		page := make([]byte, size)
		if _, err := ts.file.ReadAt(page, it.fileOff+4); err != nil {
			return nil, fmt.Errorf("storage: reading spill page: %w", err)
		}
		it.fileOff += int64(4 + size)
		return page, nil
	}
	if it.pageIdx < len(ts.memPages) {
		p := ts.memPages[it.pageIdx]
		it.pageIdx++
		return p, nil
	}
	return it.takeCurrent(), nil
}

// takeCurrent serves the in-progress page exactly once (when Finish was a
// no-op because nothing spilled after the last flush).
func (it *TupleIterator) takeCurrent() []byte {
	if it.ts.curPage != nil && it.ts.curCount > 0 && !it.doneCurrent {
		it.doneCurrent = true
		return it.ts.curPage
	}
	return nil
}

// Rows materializes all rows (small stores and tests).
func (ts *TupleStore) Rows() ([]Tuple, error) {
	out := make([]Tuple, 0, ts.rowCount)
	it := ts.Iterator()
	for {
		t, err := it.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// ForEach streams rows without materializing the whole store.
func (ts *TupleStore) ForEach(fn func(Tuple) error) error {
	it := ts.Iterator()
	for {
		t, err := it.Next()
		if err != nil {
			return err
		}
		if t == nil {
			return nil
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}

package storage

// Heap is a page-backed base table. Rows are kept encoded on pages (the
// durable representation) with a decoded cache for scans; the cache is
// invalidated by mutation.
type Heap struct {
	stats *Stats
	pages []*Page
	cache []Tuple
	dirty bool
	n     int
	gen   int64
}

// NewHeap builds an empty heap charging page allocations to stats.
func NewHeap(stats *Stats) *Heap {
	if stats == nil {
		stats = &Stats{}
	}
	return &Heap{stats: stats}
}

// Insert appends a row.
func (h *Heap) Insert(t Tuple) {
	enc := EncodeTuple(t)
	if len(h.pages) == 0 || !h.pages[len(h.pages)-1].TryAdd(enc) {
		p := NewPage()
		h.stats.PagesAlloc++
		p.TryAdd(enc)
		h.pages = append(h.pages, p)
	}
	h.n++
	h.dirty = true
	h.gen++
}

// Gen reports a generation counter that advances on every mutation —
// secondary structures (hash indexes) use it to detect staleness.
func (h *Heap) Gen() int64 { return h.gen }

// Len reports the number of rows.
func (h *Heap) Len() int { return h.n }

// NumPages reports the number of heap pages.
func (h *Heap) NumPages() int { return len(h.pages) }

// Rows returns all rows (decoded, cached until the next mutation). Callers
// must not mutate the result.
func (h *Heap) Rows() ([]Tuple, error) {
	if !h.dirty && h.cache != nil {
		return h.cache, nil
	}
	out := make([]Tuple, 0, h.n)
	for _, p := range h.pages {
		for i := 0; i < p.NumTuples(); i++ {
			t, err := p.Tuple(i)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
	}
	h.cache = out
	h.dirty = false
	return out, nil
}

// Replace substitutes the heap's entire contents (used by UPDATE/DELETE,
// which rewrite the table — adequate for workload-sized tables).
func (h *Heap) Replace(rows []Tuple) {
	h.pages = nil
	h.cache = nil
	h.n = 0
	h.dirty = true
	h.gen++
	for _, r := range rows {
		h.Insert(r)
	}
}

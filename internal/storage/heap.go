package storage

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// AllVisible is the snapshot timestamp that sees every committed row
// version: the compatibility default for callers (tests, tools) that do
// not run under the engine's commit protocol.
const AllVisible int64 = math.MaxInt64

// rowVersion is the MVCC header of one stored tuple: where its encoded
// payload lives and the commit-timestamp window in which it is visible.
// A version is visible to snapshot ts iff xmin <= ts and (xmax == 0 or
// xmax > ts); xmax == 0 marks the live (not yet superseded) version.
type rowVersion struct {
	page, slot int
	xmin, xmax int64
}

// visible reports whether the version belongs to snapshot ts.
func (v *rowVersion) visible(ts int64) bool {
	return v.xmin <= ts && (v.xmax == 0 || v.xmax > ts)
}

// snapEntry caches the decoded visible-row set of one snapshot window.
// The entry serves every snapshot timestamp in [lo, hi]: commits seal the
// tip entry (hi becomes commitTS-1) and derive the next tip from it
// without re-decoding pages. rows and vidx are immutable once published;
// vacuum may remap vidx in place, but only under the heap lock while no
// writer holds buffered version indices (the engine's vacuum gate keeps
// vacuum out of every open writer window).
type snapEntry struct {
	lo, hi int64
	id     int64   // unique per entry: the cache key secondary structures rebuild by
	rows   []Tuple // immutable once published
	vidx   []int   // version index of each row, parallel to rows
}

// maxSnapEntries bounds the per-heap snapshot cache: the tip plus a few
// recently pinned older snapshots.
const maxSnapEntries = 4

// Heap is a page-backed, multi-versioned base table. Encoded payloads
// live on pages (the durable representation, append-only between
// vacuums); each payload has a rowVersion header stamped with the commit
// timestamps that created (xmin) and superseded (xmax) it. Readers pin a
// snapshot timestamp and see exactly the versions visible at it, so
// scans never block behind writers; writers append new versions and mark
// old ones dead in one Commit call, and Vacuum reclaims versions no live
// snapshot can reach.
//
// Concurrency: the engine's commit lock serializes committers (Commit,
// Vacuum) while writer statements buffer changes optimistically outside
// it — ValidateDead under the lock detects per-row conflicts; any number
// of readers call RowsAt/ScannerAt/VersionsAt concurrently. The internal mutex guards the version headers and the
// snapshot cache. Returned row slices are immutable snapshots and stay
// valid for the reader that obtained them across any later mutation.
type Heap struct {
	mu       sync.RWMutex
	stats    *Stats
	pages    []*Page
	versions []rowVersion
	live     int   // versions with xmax == 0
	lastTS   int64 // commit timestamp of the most recent mutation
	gen      int64 // mutation counter (advances on every mutation incl. vacuum)
	seq      int64 // snapshot-entry id source
	cache    []snapEntry
}

// NewHeap builds an empty heap charging page allocations to stats.
func NewHeap(stats *Stats) *Heap {
	if stats == nil {
		stats = &Stats{}
	}
	return &Heap{stats: stats}
}

// Insert appends a row visible to every snapshot (xmin 0) — the bootstrap
// and direct-test path. Engine transactions go through Commit instead, so
// their rows stay invisible until the commit timestamp is published.
func (h *Heap) Insert(t Tuple) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.insertVersionLocked(t, 0)
	h.cache = nil // retroactively visible: every cached window is stale
	h.gen++
}

// insertVersionLocked appends one version with the given xmin, charging
// page allocations to stats.
func (h *Heap) insertVersionLocked(t Tuple, xmin int64) int {
	enc := EncodeTuple(t)
	if len(h.pages) == 0 || !h.pages[len(h.pages)-1].TryAdd(enc) {
		p := NewPage()
		atomic.AddInt64(&h.stats.PagesAlloc, 1)
		p.TryAdd(enc)
		h.pages = append(h.pages, p)
	}
	pi := len(h.pages) - 1
	h.versions = append(h.versions, rowVersion{
		page: pi,
		slot: h.pages[pi].NumTuples() - 1,
		xmin: xmin,
	})
	h.live++
	return len(h.versions) - 1
}

// ValidateDead is the first-updater-wins check an optimistic committer
// runs under the engine's commit lock just before Commit: it reports
// whether every version index in dead is still unstamped (xmax == 0).
// A false answer means a concurrent commit already superseded one of the
// rows this transaction wants to delete or update — the caller must fail
// with a serialization error instead of applying, because its buffered
// changes were derived from a row that no longer exists at the tip.
// Stamping only ever happens under the commit lock, so a validate-then-
// Commit sequence under that lock is atomic with respect to other
// committers.
func (h *Heap) ValidateDead(dead []int) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, vi := range dead {
		if vi < 0 || vi >= len(h.versions) || h.versions[vi].xmax != 0 {
			return false
		}
	}
	return true
}

// Commit atomically applies one transaction's changes to this heap: the
// versions listed in dead (indices previously obtained from VersionsAt)
// get xmax = ts, and each tuple in added becomes a new version with
// xmin = ts. Callers hold the engine's commit lock (commits are buffered
// optimistically and applied one at a time after ValidateDead passes);
// readers at snapshots < ts keep seeing the dead versions and never see
// the added ones, so the heap change may safely precede the global
// publication of ts.
//
// The tip cache entry, if present, is sealed at ts-1 and the next tip is
// derived from it incrementally — no page re-decode — so readers landing
// on the new snapshot stay on the fast path.
func (h *Heap) Commit(dead []int, added []Tuple, ts int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	atomic.AddInt64(&h.stats.Commits, 1)

	var tip *snapEntry
	for i := range h.cache {
		if h.cache[i].hi == AllVisible {
			tip = &h.cache[i]
			break
		}
	}

	deadSet := make(map[int]bool, len(dead))
	for _, vi := range dead {
		h.versions[vi].xmax = ts
		h.live--
		deadSet[vi] = true
	}
	addedIdx := make([]int, 0, len(added))
	for _, t := range added {
		addedIdx = append(addedIdx, h.insertVersionLocked(t, ts))
	}
	if ts > h.lastTS {
		h.lastTS = ts
	}
	h.gen++

	if tip == nil {
		return // no cached window to maintain; readers rebuild lazily
	}
	next := snapEntry{
		lo:   ts,
		hi:   AllVisible,
		rows: make([]Tuple, 0, len(tip.rows)-len(dead)+len(added)),
		vidx: make([]int, 0, len(tip.rows)-len(dead)+len(added)),
	}
	for i, vi := range tip.vidx {
		if !deadSet[vi] {
			next.rows = append(next.rows, tip.rows[i])
			next.vidx = append(next.vidx, vi)
		}
	}
	for i, vi := range addedIdx {
		next.rows = append(next.rows, added[i])
		next.vidx = append(next.vidx, vi)
	}
	tip.hi = ts - 1
	h.storeEntryLocked(next)
}

// storeEntryLocked adds a cache entry, evicting the oldest window when
// the cache is full (the tip is never evicted).
func (h *Heap) storeEntryLocked(e snapEntry) {
	if len(h.cache) >= maxSnapEntries {
		victim := -1
		for i := range h.cache {
			if h.cache[i].hi == AllVisible {
				continue
			}
			if victim < 0 || h.cache[i].lo < h.cache[victim].lo {
				victim = i
			}
		}
		if victim >= 0 {
			h.cache = append(h.cache[:victim], h.cache[victim+1:]...)
		}
	}
	h.seq++
	e.id = h.seq
	h.cache = append(h.cache, e)
}

// lookupLocked finds a cache entry covering ts.
func (h *Heap) lookupLocked(ts int64) *snapEntry {
	for i := range h.cache {
		if h.cache[i].lo <= ts && ts <= h.cache[i].hi {
			return &h.cache[i]
		}
	}
	return nil
}

// snapshotLocked returns (building if needed) the cache entry for ts.
// Callers must hold the write lock on a miss; buildEntry reports whether
// the caller holds only the read lock and a rebuild is needed.
func (h *Heap) buildEntryLocked(ts int64) (*snapEntry, error) {
	e := snapEntry{lo: ts, hi: ts}
	if ts >= h.lastTS {
		// Nothing committed after ts: the visible set is the same for
		// every timestamp from the last commit onward, so the window is
		// [lastTS, ∞) and becomes the tip. Anchoring lo at lastTS (not at
		// the requested ts) keeps the tip unique: any other ts ≥ lastTS
		// hits this entry instead of building a second open-ended one,
		// which Commit would fail to seal.
		e.lo, e.hi = h.lastTS, AllVisible
	}
	for vi := range h.versions {
		v := &h.versions[vi]
		if !v.visible(ts) {
			continue
		}
		t, err := h.pages[v.page].Tuple(v.slot)
		if err != nil {
			return nil, err
		}
		e.rows = append(e.rows, t)
		e.vidx = append(e.vidx, vi)
	}
	h.storeEntryLocked(e)
	return &h.cache[len(h.cache)-1], nil
}

// snapshot returns the visible rows, version indices, and entry id at ts,
// serving from the snapshot cache when possible.
func (h *Heap) snapshot(ts int64) ([]Tuple, []int, int64, error) {
	h.mu.RLock()
	if e := h.lookupLocked(ts); e != nil {
		rows, vidx, id := e.rows, e.vidx, e.id
		h.mu.RUnlock()
		return rows, vidx, id, nil
	}
	h.mu.RUnlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if e := h.lookupLocked(ts); e != nil { // raced with another rebuilder
		return e.rows, e.vidx, e.id, nil
	}
	e, err := h.buildEntryLocked(ts)
	if err != nil {
		return nil, nil, 0, err
	}
	return e.rows, e.vidx, e.id, nil
}

// RowsAt returns the rows visible at snapshot ts. Callers must not mutate
// the result; the slice stays valid across later commits and vacuums.
func (h *Heap) RowsAt(ts int64) ([]Tuple, error) {
	rows, _, _, err := h.snapshot(ts)
	return rows, err
}

// HeapOverlay is one transaction's buffered, not-yet-committed changes to
// a heap: version indices the transaction deleted and tuples it added.
// Nothing in the heap itself changes until the transaction's COMMIT calls
// Commit with the flattened sets, so a rolled-back transaction leaves the
// heap byte-identical. Reads inside the transaction overlay these sets on
// the pinned snapshot (RowsAtOverlay) to see their own writes.
type HeapOverlay struct {
	// Dead marks base version indices (from VersionsAt at the pinned
	// snapshot) this transaction deleted or superseded.
	Dead map[int]bool
	// Added holds tuples this transaction inserted. A nil entry is a
	// tombstone: the transaction added the row and later deleted it.
	Added []Tuple
}

// Empty reports whether the overlay carries no changes.
func (ov *HeapOverlay) Empty() bool {
	if ov == nil {
		return true
	}
	return len(ov.Dead) == 0 && len(ov.Added) == 0
}

// Flatten renders the overlay as the (dead, added) arguments of one
// Commit call: the dead version indices and the surviving added tuples
// (tombstones dropped).
func (ov *HeapOverlay) Flatten() ([]int, []Tuple) {
	dead := make([]int, 0, len(ov.Dead))
	for vi := range ov.Dead {
		dead = append(dead, vi)
	}
	sort.Ints(dead) // deterministic commit order for tests and debugging
	added := make([]Tuple, 0, len(ov.Added))
	for _, t := range ov.Added {
		if t != nil {
			added = append(added, t)
		}
	}
	return dead, added
}

// RowsAtOverlay returns the rows visible at snapshot ts with a
// transaction's overlay applied: base rows whose versions the overlay
// killed disappear, the overlay's added tuples append. With a nil or
// empty overlay it is RowsAt (including its snapshot-cache fast path);
// otherwise the merged slice is rebuilt per call — transactions pay the
// merge only on heaps they actually wrote.
func (h *Heap) RowsAtOverlay(ts int64, ov *HeapOverlay) ([]Tuple, error) {
	rows, vidx, _, err := h.snapshot(ts)
	if err != nil || ov.Empty() {
		return rows, err
	}
	out := make([]Tuple, 0, len(rows)+len(ov.Added)-len(ov.Dead))
	for i, vi := range vidx {
		if !ov.Dead[vi] {
			out = append(out, rows[i])
		}
	}
	for _, t := range ov.Added {
		if t != nil {
			out = append(out, t)
		}
	}
	return out, nil
}

// Rows returns all committed rows (compatibility: the AllVisible
// snapshot).
func (h *Heap) Rows() ([]Tuple, error) { return h.RowsAt(AllVisible) }

// RowsKeyed returns the visible rows at ts together with a cache key:
// two calls returning the same key return the identical rows slice, so
// secondary structures (hash indexes) that key their rebuilds by it can
// cache row positions safely.
func (h *Heap) RowsKeyed(ts int64) ([]Tuple, int64, error) {
	rows, _, id, err := h.snapshot(ts)
	return rows, id, err
}

// VersionsAt returns the version indices and rows visible at ts — the
// writer-side scan: UPDATE/DELETE evaluate predicates over the rows and
// pass the matching version indices to Commit as the dead set.
func (h *Heap) VersionsAt(ts int64) ([]int, []Tuple, error) {
	rows, vidx, _, err := h.snapshot(ts)
	return vidx, rows, err
}

// Gen reports a generation counter that advances on every mutation
// (commit, bootstrap insert, vacuum). Tests use it to assert that a
// code path did — or, for the no-match DML fast path, did not — touch
// the heap.
func (h *Heap) Gen() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.gen
}

// Len reports the number of live rows (visible to new snapshots).
func (h *Heap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.live
}

// DeadCount reports how many superseded versions are awaiting vacuum.
func (h *Heap) DeadCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.versions) - h.live
}

// NumPages reports the number of heap pages.
func (h *Heap) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// DumpVersions streams every stored version in heap order — dead ones
// included — as (xmin, xmax, encoded payload) triples: the checkpoint
// serialization. Preserving the full array in order matters because a
// version's identity is its index; restoring the dump reproduces the
// exact numbering that logged dead sets and vacuum replays reference.
// The enc slice aliases page storage and must not be retained across
// mutations; copy it if it outlives the callback.
func (h *Heap) DumpVersions(fn func(xmin, xmax int64, enc []byte) error) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for vi := range h.versions {
		v := &h.versions[vi]
		if err := fn(v.xmin, v.xmax, h.pages[v.page].tuples[v.slot]); err != nil {
			return err
		}
	}
	return nil
}

// RestoreVersion appends one version from its checkpoint serialization:
// the already-encoded payload with its MVCC window, bypassing re-encode.
// Recovery calls it in dump order on a fresh heap before any reader
// exists, rebuilding the identical version array.
func (h *Heap) RestoreVersion(enc []byte, xmin, xmax int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.pages) == 0 || !h.pages[len(h.pages)-1].TryAdd(enc) {
		p := NewPage()
		atomic.AddInt64(&h.stats.PagesAlloc, 1)
		p.TryAdd(enc)
		h.pages = append(h.pages, p)
	}
	pi := len(h.pages) - 1
	h.versions = append(h.versions, rowVersion{
		page: pi,
		slot: h.pages[pi].NumTuples() - 1,
		xmin: xmin,
		xmax: xmax,
	})
	if xmax == 0 {
		h.live++
	}
	if xmin > h.lastTS {
		h.lastTS = xmin
	}
	if xmax > h.lastTS {
		h.lastTS = xmax
	}
	h.cache = nil
	h.gen++
}

// Vacuum reclaims versions no snapshot at or after oldest can see (dead
// with xmax <= oldest), rebuilding the pages from the surviving encoded
// payloads — no re-encode, and no page-write charge to stats: vacuum
// recycles storage rather than writing new tuples. Returns the number of
// versions reclaimed. Callers hold the engine's commit lock AND its
// vacuum gate (renumbering must never race a writer statement's buffered
// version indices); cached snapshot windows older than oldest are
// dropped and surviving windows are remapped in place.
func (h *Heap) Vacuum(oldest int64) int {
	h.mu.Lock()
	defer h.mu.Unlock()

	reclaim := 0
	for vi := range h.versions {
		v := &h.versions[vi]
		if v.xmax != 0 && v.xmax <= oldest {
			reclaim++
		}
	}
	if reclaim == 0 {
		return 0
	}
	atomic.AddInt64(&h.stats.Vacuums, 1)
	atomic.AddInt64(&h.stats.VersionsReclaimed, int64(reclaim))

	remap := make([]int, len(h.versions))
	kept := make([]rowVersion, 0, len(h.versions)-reclaim)
	pages := make([]*Page, 0, len(h.pages))
	for vi := range h.versions {
		v := h.versions[vi]
		if v.xmax != 0 && v.xmax <= oldest {
			remap[vi] = -1
			continue
		}
		enc := h.pages[v.page].tuples[v.slot]
		if len(pages) == 0 || !pages[len(pages)-1].TryAdd(enc) {
			p := NewPage()
			p.TryAdd(enc)
			pages = append(pages, p)
		}
		v.page = len(pages) - 1
		v.slot = pages[v.page].NumTuples() - 1
		remap[vi] = len(kept)
		kept = append(kept, v)
	}
	h.pages = pages
	h.versions = kept
	h.gen++

	cache := h.cache[:0]
	for i := range h.cache {
		e := h.cache[i]
		if e.hi < oldest {
			continue // window unreachable by any live snapshot
		}
		for j, vi := range e.vidx {
			e.vidx[j] = remap[vi] // visible versions survive by construction
		}
		cache = append(cache, e)
	}
	h.cache = cache
	return reclaim
}

// HeapScanner streams a stable snapshot of the heap in caller-sized chunks
// — the batch scan API of the vectorized executor. The snapshot is pinned
// when the scanner is created, so concurrent commits never disturb an open
// scan and chunking is zero-copy: each chunk is a subslice of the pinned
// snapshot.
type HeapScanner struct {
	rows []Tuple
	off  int
}

// ScannerAt pins the rows visible at snapshot ts and returns a chunked
// scanner over them.
func (h *Heap) ScannerAt(ts int64) (*HeapScanner, error) {
	rows, err := h.RowsAt(ts)
	if err != nil {
		return nil, err
	}
	return &HeapScanner{rows: rows}, nil
}

// NewScanner wraps an already-materialized row slice in the chunked
// scanner interface — the overlay read path hands merged
// (snapshot + transaction writes) rows to the executor through this.
func NewScanner(rows []Tuple) *HeapScanner { return &HeapScanner{rows: rows} }

// Scanner pins the heap's full committed contents (compatibility: the
// AllVisible snapshot).
func (h *Heap) Scanner() (*HeapScanner, error) { return h.ScannerAt(AllVisible) }

// Reset rewinds the scanner to the start of its pinned snapshot.
func (s *HeapScanner) Reset() { s.off = 0 }

// Len reports the number of rows in the pinned snapshot.
func (s *HeapScanner) Len() int { return len(s.rows) }

// NextChunk returns the next up-to-max rows of the snapshot, or nil at the
// end of the scan. The returned slice aliases the snapshot and must not be
// mutated.
func (s *HeapScanner) NextChunk(max int) []Tuple {
	if max < 1 || s.off >= len(s.rows) {
		return nil
	}
	end := s.off + max
	if end > len(s.rows) {
		end = len(s.rows)
	}
	chunk := s.rows[s.off:end]
	s.off = end
	return chunk
}

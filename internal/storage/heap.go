package storage

import (
	"sync"
	"sync/atomic"
)

// Heap is a page-backed base table. Rows are kept encoded on pages (the
// durable representation) with a decoded cache for scans; the cache is
// invalidated by mutation.
//
// Mutations (Insert, Replace) are serialized by the engine's DDL/DML lock,
// but many sessions scan concurrently under the read side of that lock, so
// the lazily built decode cache is guarded by an internal mutex. Returned
// row slices are snapshots: Replace installs fresh slices and Insert only
// invalidates the cache flag, so a slice handed out earlier stays valid
// for the reader that obtained it.
type Heap struct {
	mu    sync.RWMutex
	stats *Stats
	pages []*Page
	cache []Tuple
	dirty bool
	n     int
	gen   int64
}

// NewHeap builds an empty heap charging page allocations to stats.
func NewHeap(stats *Stats) *Heap {
	if stats == nil {
		stats = &Stats{}
	}
	return &Heap{stats: stats}
}

// Insert appends a row.
func (h *Heap) Insert(t Tuple) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.insertLocked(t)
}

func (h *Heap) insertLocked(t Tuple) {
	enc := EncodeTuple(t)
	if len(h.pages) == 0 || !h.pages[len(h.pages)-1].TryAdd(enc) {
		p := NewPage()
		atomic.AddInt64(&h.stats.PagesAlloc, 1)
		p.TryAdd(enc)
		h.pages = append(h.pages, p)
	}
	h.n++
	h.dirty = true
	h.gen++
}

// Gen reports a generation counter that advances on every mutation —
// secondary structures (hash indexes) use it to detect staleness.
func (h *Heap) Gen() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.gen
}

// Len reports the number of rows.
func (h *Heap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.n
}

// NumPages reports the number of heap pages.
func (h *Heap) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// Rows returns all rows (decoded, cached until the next mutation). Callers
// must not mutate the result. Safe for concurrent readers: the common case
// (clean cache) takes only the read lock, so parallel scans of the same
// table do not serialize; the first scan after a mutation rebuilds the
// cache under the write lock.
func (h *Heap) Rows() ([]Tuple, error) {
	h.mu.RLock()
	if !h.dirty && h.cache != nil {
		rows := h.cache
		h.mu.RUnlock()
		return rows, nil
	}
	h.mu.RUnlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.dirty && h.cache != nil { // raced with another rebuilder
		return h.cache, nil
	}
	out := make([]Tuple, 0, h.n)
	for _, p := range h.pages {
		for i := 0; i < p.NumTuples(); i++ {
			t, err := p.Tuple(i)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
	}
	h.cache = out
	h.dirty = false
	return out, nil
}

// HeapScanner streams a stable snapshot of the heap in caller-sized chunks
// — the batch scan API of the vectorized executor. The snapshot is pinned
// when the scanner is created (Rows hands out immutable slices), so
// concurrent mutations never disturb an open scan and chunking is
// zero-copy: each chunk is a subslice of the pinned snapshot.
type HeapScanner struct {
	rows []Tuple
	off  int
}

// Scanner pins the heap's current contents and returns a chunked scanner
// over them.
func (h *Heap) Scanner() (*HeapScanner, error) {
	rows, err := h.Rows()
	if err != nil {
		return nil, err
	}
	return &HeapScanner{rows: rows}, nil
}

// Reset rewinds the scanner to the start of its pinned snapshot.
func (s *HeapScanner) Reset() { s.off = 0 }

// Len reports the number of rows in the pinned snapshot.
func (s *HeapScanner) Len() int { return len(s.rows) }

// NextChunk returns the next up-to-max rows of the snapshot, or nil at the
// end of the scan. The returned slice aliases the snapshot and must not be
// mutated.
func (s *HeapScanner) NextChunk(max int) []Tuple {
	if max < 1 || s.off >= len(s.rows) {
		return nil
	}
	end := s.off + max
	if end > len(s.rows) {
		end = len(s.rows)
	}
	chunk := s.rows[s.off:end]
	s.off = end
	return chunk
}

// Replace substitutes the heap's entire contents (used by UPDATE/DELETE,
// which rewrite the table — adequate for workload-sized tables).
func (h *Heap) Replace(rows []Tuple) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pages = nil
	h.cache = nil
	h.n = 0
	h.dirty = true
	h.gen++
	for _, r := range rows {
		h.insertLocked(r)
	}
}

// Package storage implements the on-page representation used by base
// tables and by spilling tuple stores. The layout constants follow
// PostgreSQL (8 KiB pages, 24-byte page header, 4-byte line pointers,
// 23-byte tuple headers, 8-byte MAXALIGN) so that the buffer-page-write
// counts of Table 2 land in the same regime as the paper's measurements.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"plsqlaway/internal/sqltypes"
)

// Layout constants (PostgreSQL-compatible).
const (
	PageSize        = 8192
	PageHeaderSize  = 24
	LinePointerSize = 4
	TupleHeaderSize = 23
	MaxAlign        = 8
)

// Tuple is one row of values.
type Tuple = []sqltypes.Value

// align rounds n up to the next MaxAlign boundary.
func align(n int) int { return (n + MaxAlign - 1) &^ (MaxAlign - 1) }

// TupleDiskSize returns the number of page bytes the tuple occupies: line
// pointer + aligned (header + payload).
func TupleDiskSize(t Tuple) int {
	return LinePointerSize + align(TupleHeaderSize+payloadSize(t))
}

func payloadSize(t Tuple) int {
	n := 2 // field count
	for _, v := range t {
		n += 1 + sqltypes.SizeBytes(v) // kind tag + payload
		if v.Kind() == sqltypes.KindText {
			n += 4 // varlena length word
		}
	}
	return n
}

// EncodeTuple serializes a tuple. The encoding is self-delimiting so pages
// can be decoded without a schema; kinds are tagged per field. This is
// also the database's on-disk tuple format: WAL commit records and
// checkpoint snapshots (internal/wal) carry tuples as EncodeTuple bytes,
// so the in-memory page layout and the durable log/snapshot layout never
// drift apart.
func EncodeTuple(t Tuple) []byte {
	buf := make([]byte, 0, payloadSize(t))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t)))
	for _, v := range t {
		buf = encodeValue(buf, v)
	}
	return buf
}

func encodeValue(buf []byte, v sqltypes.Value) []byte {
	buf = append(buf, byte(v.Kind()))
	switch v.Kind() {
	case sqltypes.KindNull:
	case sqltypes.KindBool:
		if v.Bool() {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case sqltypes.KindInt:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
	case sqltypes.KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	case sqltypes.KindText:
		s := v.Text()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	case sqltypes.KindCoord:
		x, y := v.Coord()
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(y))
	case sqltypes.KindRow:
		fields := v.Row()
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(fields)))
		for _, f := range fields {
			buf = encodeValue(buf, f)
		}
	}
	return buf
}

// DecodeTuple deserializes a tuple encoded by EncodeTuple.
func DecodeTuple(buf []byte) (Tuple, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("storage: truncated tuple")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	t := make(Tuple, n)
	var err error
	for i := 0; i < n; i++ {
		t[i], buf, err = decodeValue(buf)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

func decodeValue(buf []byte) (sqltypes.Value, []byte, error) {
	if len(buf) < 1 {
		return sqltypes.Null, nil, fmt.Errorf("storage: truncated value")
	}
	kind := sqltypes.Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case sqltypes.KindNull:
		return sqltypes.Null, buf, nil
	case sqltypes.KindBool:
		if len(buf) < 1 {
			return sqltypes.Null, nil, fmt.Errorf("storage: truncated bool")
		}
		return sqltypes.NewBool(buf[0] != 0), buf[1:], nil
	case sqltypes.KindInt:
		if len(buf) < 8 {
			return sqltypes.Null, nil, fmt.Errorf("storage: truncated int")
		}
		return sqltypes.NewInt(int64(binary.LittleEndian.Uint64(buf))), buf[8:], nil
	case sqltypes.KindFloat:
		if len(buf) < 8 {
			return sqltypes.Null, nil, fmt.Errorf("storage: truncated float")
		}
		return sqltypes.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf))), buf[8:], nil
	case sqltypes.KindText:
		if len(buf) < 4 {
			return sqltypes.Null, nil, fmt.Errorf("storage: truncated text length")
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < n {
			return sqltypes.Null, nil, fmt.Errorf("storage: truncated text payload")
		}
		return sqltypes.NewText(string(buf[:n])), buf[n:], nil
	case sqltypes.KindCoord:
		if len(buf) < 16 {
			return sqltypes.Null, nil, fmt.Errorf("storage: truncated coord")
		}
		x := int64(binary.LittleEndian.Uint64(buf))
		y := int64(binary.LittleEndian.Uint64(buf[8:]))
		return sqltypes.NewCoord(x, y), buf[16:], nil
	case sqltypes.KindRow:
		if len(buf) < 2 {
			return sqltypes.Null, nil, fmt.Errorf("storage: truncated row")
		}
		n := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		fields := make([]sqltypes.Value, n)
		var err error
		for i := 0; i < n; i++ {
			fields[i], buf, err = decodeValue(buf)
			if err != nil {
				return sqltypes.Null, nil, err
			}
		}
		return sqltypes.NewRow(fields), buf, nil
	default:
		return sqltypes.Null, nil, fmt.Errorf("storage: bad kind tag %d", kind)
	}
}

// Page is an 8 KiB heap page holding encoded tuples. freeSpace tracks the
// bytes still available after the header, line pointers, and tuple data.
type Page struct {
	tuples    [][]byte
	usedBytes int
}

// NewPage returns an empty page.
func NewPage() *Page { return &Page{usedBytes: PageHeaderSize} }

// FreeSpace reports the remaining bytes.
func (p *Page) FreeSpace() int { return PageSize - p.usedBytes }

// TryAdd appends the encoded tuple if it fits and reports success. Tuples
// larger than an empty page are stored anyway on an empty page (our stand-in
// for TOAST) so oversized text arguments cannot wedge the store.
func (p *Page) TryAdd(enc []byte) bool {
	need := LinePointerSize + align(TupleHeaderSize+len(enc))
	if need > p.FreeSpace() && len(p.tuples) > 0 {
		return false
	}
	p.tuples = append(p.tuples, enc)
	p.usedBytes += need
	return true
}

// NumTuples reports how many tuples the page holds.
func (p *Page) NumTuples() int { return len(p.tuples) }

// Tuple decodes tuple i.
func (p *Page) Tuple(i int) (Tuple, error) { return DecodeTuple(p.tuples[i]) }

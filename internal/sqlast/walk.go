package sqlast

// RewriteExpr applies fn bottom-up to every expression node reachable from
// e, including expressions nested in subqueries, and returns the (possibly
// new) root. fn receives a node whose children were already rewritten; it
// returns the replacement. The compiler uses this to substitute recursive
// call sites with ROW constructors (paper Figure 9), the binder uses it for
// parameter substitution, and the dialect rewriters for LATERAL removal.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Literal, *ColumnRef, *Param:
		// leaves
	case *Unary:
		c := *x
		c.X = RewriteExpr(x.X, fn)
		e = &c
	case *Binary:
		c := *x
		c.L = RewriteExpr(x.L, fn)
		c.R = RewriteExpr(x.R, fn)
		e = &c
	case *IsNull:
		c := *x
		c.X = RewriteExpr(x.X, fn)
		e = &c
	case *Between:
		c := *x
		c.X = RewriteExpr(x.X, fn)
		c.Lo = RewriteExpr(x.Lo, fn)
		c.Hi = RewriteExpr(x.Hi, fn)
		e = &c
	case *InList:
		c := *x
		c.List = rewriteExprs(x.List, fn)
		c.X = RewriteExpr(x.X, fn)
		e = &c
	case *InSubquery:
		c := *x
		c.X = RewriteExpr(x.X, fn)
		c.Sub = RewriteQuery(x.Sub, fn)
		e = &c
	case *Exists:
		c := *x
		c.Sub = RewriteQuery(x.Sub, fn)
		e = &c
	case *ScalarSubquery:
		c := *x
		c.Sub = RewriteQuery(x.Sub, fn)
		e = &c
	case *Case:
		c := *x
		c.Operand = RewriteExpr(x.Operand, fn)
		c.Whens = make([]WhenClause, len(x.Whens))
		for i, w := range x.Whens {
			c.Whens[i] = WhenClause{Cond: RewriteExpr(w.Cond, fn), Result: RewriteExpr(w.Result, fn)}
		}
		c.Else = RewriteExpr(x.Else, fn)
		e = &c
	case *FuncCall:
		c := *x
		c.Args = rewriteExprs(x.Args, fn)
		if x.Over != nil {
			c.Over = rewriteWindowSpec(x.Over, fn)
		}
		e = &c
	case *Cast:
		c := *x
		c.X = RewriteExpr(x.X, fn)
		e = &c
	case *RowExpr:
		c := *x
		c.Fields = rewriteExprs(x.Fields, fn)
		e = &c
	case *FieldAccess:
		c := *x
		c.X = RewriteExpr(x.X, fn)
		e = &c
	}
	return fn(e)
}

func rewriteExprs(es []Expr, fn func(Expr) Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = RewriteExpr(e, fn)
	}
	return out
}

func rewriteWindowSpec(w *WindowSpec, fn func(Expr) Expr) *WindowSpec {
	c := *w
	c.PartitionBy = rewriteExprs(w.PartitionBy, fn)
	c.OrderBy = rewriteOrderItems(w.OrderBy, fn)
	if w.Frame != nil {
		fr := *w.Frame
		fr.Start.Offset = RewriteExpr(w.Frame.Start.Offset, fn)
		fr.End.Offset = RewriteExpr(w.Frame.End.Offset, fn)
		c.Frame = &fr
	}
	return &c
}

func rewriteOrderItems(items []OrderItem, fn func(Expr) Expr) []OrderItem {
	if items == nil {
		return nil
	}
	out := make([]OrderItem, len(items))
	for i, o := range items {
		out[i] = OrderItem{Expr: RewriteExpr(o.Expr, fn), Desc: o.Desc}
	}
	return out
}

// RewriteQuery applies fn to every expression in q (deeply) and returns the
// rewritten query. The query structure itself is preserved.
func RewriteQuery(q *Query, fn func(Expr) Expr) *Query {
	if q == nil {
		return nil
	}
	c := *q
	if q.With != nil {
		w := *q.With
		w.CTEs = make([]CTE, len(q.With.CTEs))
		for i, cte := range q.With.CTEs {
			w.CTEs[i] = CTE{Name: cte.Name, ColNames: cte.ColNames, Query: RewriteQuery(cte.Query, fn)}
		}
		c.With = &w
	}
	c.Body = rewriteQueryExpr(q.Body, fn)
	c.OrderBy = rewriteOrderItems(q.OrderBy, fn)
	c.Limit = RewriteExpr(q.Limit, fn)
	c.Offset = RewriteExpr(q.Offset, fn)
	return &c
}

func rewriteQueryExpr(qe QueryExpr, fn func(Expr) Expr) QueryExpr {
	switch x := qe.(type) {
	case *Select:
		c := *x
		c.Items = make([]SelectItem, len(x.Items))
		for i, it := range x.Items {
			c.Items[i] = it
			if it.Expr != nil {
				c.Items[i].Expr = RewriteExpr(it.Expr, fn)
			}
		}
		c.From = make([]FromItem, len(x.From))
		for i, f := range x.From {
			c.From[i] = rewriteFromItem(f, fn)
		}
		c.Where = RewriteExpr(x.Where, fn)
		c.GroupBy = rewriteExprs(x.GroupBy, fn)
		c.Having = RewriteExpr(x.Having, fn)
		c.Windows = make([]NamedWindow, len(x.Windows))
		for i, w := range x.Windows {
			c.Windows[i] = NamedWindow{Name: w.Name, Spec: rewriteWindowSpec(w.Spec, fn)}
		}
		return &c
	case *SetOp:
		c := *x
		c.L = rewriteQueryExpr(x.L, fn)
		c.R = rewriteQueryExpr(x.R, fn)
		return &c
	case *Values:
		c := *x
		c.Rows = make([][]Expr, len(x.Rows))
		for i, row := range x.Rows {
			c.Rows[i] = rewriteExprs(row, fn)
		}
		return &c
	default:
		return qe
	}
}

func rewriteFromItem(f FromItem, fn func(Expr) Expr) FromItem {
	switch x := f.(type) {
	case *TableRef:
		return x
	case *SubqueryRef:
		c := *x
		c.Query = RewriteQuery(x.Query, fn)
		return &c
	case *Join:
		c := *x
		c.L = rewriteFromItem(x.L, fn)
		c.R = rewriteFromItem(x.R, fn)
		c.On = RewriteExpr(x.On, fn)
		return &c
	default:
		return f
	}
}

// WalkExpr calls fn for every expression node reachable from e (pre-order),
// descending into subqueries. fn returning false prunes the subtree.
func WalkExpr(e Expr, fn func(Expr) bool) {
	walkExpr(e, fn)
}

func walkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Unary:
		walkExpr(x.X, fn)
	case *Binary:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *IsNull:
		walkExpr(x.X, fn)
	case *Between:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *InList:
		walkExpr(x.X, fn)
		for _, i := range x.List {
			walkExpr(i, fn)
		}
	case *InSubquery:
		walkExpr(x.X, fn)
		WalkQuery(x.Sub, fn)
	case *Exists:
		WalkQuery(x.Sub, fn)
	case *ScalarSubquery:
		WalkQuery(x.Sub, fn)
	case *Case:
		walkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Result, fn)
		}
		walkExpr(x.Else, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
		if x.Over != nil {
			for _, pb := range x.Over.PartitionBy {
				walkExpr(pb, fn)
			}
			for _, ob := range x.Over.OrderBy {
				walkExpr(ob.Expr, fn)
			}
		}
	case *Cast:
		walkExpr(x.X, fn)
	case *RowExpr:
		for _, fld := range x.Fields {
			walkExpr(fld, fn)
		}
	case *FieldAccess:
		walkExpr(x.X, fn)
	}
}

// WalkQuery calls fn for every expression in q, descending into CTEs,
// subqueries, and FROM items.
func WalkQuery(q *Query, fn func(Expr) bool) {
	if q == nil {
		return
	}
	if q.With != nil {
		for _, cte := range q.With.CTEs {
			WalkQuery(cte.Query, fn)
		}
	}
	walkQueryExpr(q.Body, fn)
	for _, o := range q.OrderBy {
		walkExpr(o.Expr, fn)
	}
	walkExpr(q.Limit, fn)
	walkExpr(q.Offset, fn)
}

func walkQueryExpr(qe QueryExpr, fn func(Expr) bool) {
	switch x := qe.(type) {
	case *Select:
		for _, it := range x.Items {
			walkExpr(it.Expr, fn)
		}
		for _, f := range x.From {
			walkFromItem(f, fn)
		}
		walkExpr(x.Where, fn)
		for _, g := range x.GroupBy {
			walkExpr(g, fn)
		}
		walkExpr(x.Having, fn)
		for _, w := range x.Windows {
			for _, pb := range w.Spec.PartitionBy {
				walkExpr(pb, fn)
			}
			for _, ob := range w.Spec.OrderBy {
				walkExpr(ob.Expr, fn)
			}
		}
	case *SetOp:
		walkQueryExpr(x.L, fn)
		walkQueryExpr(x.R, fn)
	case *Values:
		for _, row := range x.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
	}
}

func walkFromItem(f FromItem, fn func(Expr) bool) {
	switch x := f.(type) {
	case *SubqueryRef:
		WalkQuery(x.Query, fn)
	case *Join:
		walkFromItem(x.L, fn)
		walkFromItem(x.R, fn)
		walkExpr(x.On, fn)
	}
}

// WalkStatement calls fn for every expression reachable from any statement
// kind — queries descend as WalkQuery does; DML statements additionally
// cover their WHERE predicates and SET expressions. DDL statements carry
// no expressions.
func WalkStatement(stmt Statement, fn func(Expr) bool) {
	switch x := stmt.(type) {
	case *SelectStatement:
		WalkQuery(x.Query, fn)
	case *Explain:
		if x.Stmt != nil {
			WalkStatement(x.Stmt, fn)
		} else {
			WalkQuery(x.Query, fn)
		}
	case *Insert:
		WalkQuery(x.Query, fn)
	case *Update:
		for _, sc := range x.Sets {
			walkExpr(sc.Expr, fn)
		}
		walkExpr(x.Where, fn)
	case *Delete:
		walkExpr(x.Where, fn)
	}
}

// StatementMaxParam returns the highest $n parameter ordinal referenced
// anywhere in stmt (0 when the statement takes no parameters) — the
// prepared-statement metadata the wire protocol reports to remote clients.
func StatementMaxParam(stmt Statement) int {
	max := 0
	WalkStatement(stmt, func(e Expr) bool {
		if p, ok := e.(*Param); ok && p.Ordinal > max {
			max = p.Ordinal
		}
		return true
	})
	return max
}

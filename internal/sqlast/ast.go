// Package sqlast defines the SQL abstract syntax tree shared by the parser,
// the planner, the pretty printer, and the PL/SQL compiler (which builds
// these nodes directly when it emits the WITH RECURSIVE form of a function).
package sqlast

import (
	"plsqlaway/internal/sqltypes"
)

// Node is implemented by every AST node.
type Node interface{ isNode() }

// Expr is a SQL scalar expression.
type Expr interface {
	Node
	isExpr()
}

// Statement is a top-level SQL statement.
type Statement interface {
	Node
	isStatement()
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Literal is a constant value.
type Literal struct {
	Val sqltypes.Value
}

// ColumnRef references a column, optionally qualified: [Table.]Column.
// Unresolvable names may be turned into parameters by the binder's variable
// hook — that is how PL/SQL variables inside embedded queries work.
type ColumnRef struct {
	Table  string
	Column string
}

// Param is a positional parameter $Ordinal (1-based).
type Param struct {
	Ordinal int
}

// Unary is a prefix operator: -x, NOT x.
type Unary struct {
	Op string // "-", "NOT"
	X  Expr
}

// Binary is an infix operator: arithmetic, comparison, AND/OR, ||.
type Binary struct {
	Op   string
	L, R Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

// InList is x [NOT] IN (e1, e2, …).
type InList struct {
	X      Expr
	List   []Expr
	Negate bool
}

// InSubquery is x [NOT] IN (SELECT …).
type InSubquery struct {
	X      Expr
	Sub    *Query
	Negate bool
}

// Exists is [NOT] EXISTS (SELECT …).
type Exists struct {
	Sub    *Query
	Negate bool
}

// ScalarSubquery is (SELECT …) used as a scalar value.
type ScalarSubquery struct {
	Sub *Query
}

// WhenClause is one WHEN … THEN … arm of a CASE.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

// Case is CASE [operand] WHEN … THEN … [ELSE …] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr // nil means ELSE NULL
}

// FuncCall is a function invocation, possibly aggregate or window
// (Over != nil or OverName != "").
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
	Over     *WindowSpec
	OverName string // OVER name (reference to a named WINDOW)
}

// Cast is CAST(x AS type) or x::type.
type Cast struct {
	X        Expr
	TypeName string
}

// RowExpr is ROW(e1, …, en).
type RowExpr struct {
	Fields []Expr
}

// FieldAccess extracts a field from a row-typed expression: (e).name.
// Positional access uses names f1, f2, … like PostgreSQL's record fields.
type FieldAccess struct {
	X     Expr
	Field string
}

func (*Literal) isNode()        {}
func (*ColumnRef) isNode()      {}
func (*Param) isNode()          {}
func (*Unary) isNode()          {}
func (*Binary) isNode()         {}
func (*IsNull) isNode()         {}
func (*Between) isNode()        {}
func (*InList) isNode()         {}
func (*InSubquery) isNode()     {}
func (*Exists) isNode()         {}
func (*ScalarSubquery) isNode() {}
func (*Case) isNode()           {}
func (*FuncCall) isNode()       {}
func (*Cast) isNode()           {}
func (*RowExpr) isNode()        {}
func (*FieldAccess) isNode()    {}

func (*Literal) isExpr()        {}
func (*ColumnRef) isExpr()      {}
func (*Param) isExpr()          {}
func (*Unary) isExpr()          {}
func (*Binary) isExpr()         {}
func (*IsNull) isExpr()         {}
func (*Between) isExpr()        {}
func (*InList) isExpr()         {}
func (*InSubquery) isExpr()     {}
func (*Exists) isExpr()         {}
func (*ScalarSubquery) isExpr() {}
func (*Case) isExpr()           {}
func (*FuncCall) isExpr()       {}
func (*Cast) isExpr()           {}
func (*RowExpr) isExpr()        {}
func (*FieldAccess) isExpr()    {}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

// Query is a full query: optional WITH, a body (select / set operation /
// VALUES), and outer ORDER BY / LIMIT.
type Query struct {
	With    *WithClause
	Body    QueryExpr
	OrderBy []OrderItem
	Limit   Expr
	Offset  Expr
}

// QueryExpr is the body of a query.
type QueryExpr interface {
	Node
	isQueryExpr()
}

// Select is a SELECT … FROM … block.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem // comma list; empty means table-less SELECT
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	Windows  []NamedWindow
}

// SetOp combines two query bodies with UNION/INTERSECT/EXCEPT.
type SetOp struct {
	Op   string // "UNION", "INTERSECT", "EXCEPT"
	All  bool
	L, R QueryExpr
}

// Values is a VALUES (…), (…) list.
type Values struct {
	Rows [][]Expr
}

func (*Select) isNode()      {}
func (*SetOp) isNode()       {}
func (*Values) isNode()      {}
func (*Select) isQueryExpr() {}
func (*SetOp) isQueryExpr()  {}
func (*Values) isQueryExpr() {}

// SelectItem is one output column of a Select.
type SelectItem struct {
	Star      bool   // bare *
	TableStar string // t.*
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// NamedWindow is WINDOW name AS (spec).
type NamedWindow struct {
	Name string
	Spec *WindowSpec
}

// WithClause is WITH [RECURSIVE|ITERATE] cte1 AS (…), ….
// Iterate marks the paper's proposed WITH ITERATE extension: the working
// table is *replaced* each round instead of accumulated.
type WithClause struct {
	Recursive bool
	Iterate   bool
	CTEs      []CTE
}

// CTE is one common table expression.
type CTE struct {
	Name     string
	ColNames []string
	Query    *Query
}

// ---------------------------------------------------------------------------
// FROM items
// ---------------------------------------------------------------------------

// FromItem is an element of the FROM list.
type FromItem interface {
	Node
	isFromItem()
}

// TableRef is a base table or CTE reference.
type TableRef struct {
	Name  string
	Alias string
}

// SubqueryRef is a derived table: [LATERAL] (query) AS alias(col, …).
type SubqueryRef struct {
	Query      *Query
	Alias      string
	ColAliases []string
	Lateral    bool
}

// JoinType enumerates join kinds.
type JoinType uint8

// Join kinds.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinCross
)

func (jt JoinType) String() string {
	switch jt {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// Join is an explicit join: L <type> [LATERAL] R ON cond. The Lateral flag
// lives on the right-hand SubqueryRef.
type Join struct {
	Type JoinType
	L, R FromItem
	On   Expr // nil for CROSS JOIN
}

func (*TableRef) isNode()        {}
func (*SubqueryRef) isNode()     {}
func (*Join) isNode()            {}
func (*TableRef) isFromItem()    {}
func (*SubqueryRef) isFromItem() {}
func (*Join) isFromItem()        {}

// ---------------------------------------------------------------------------
// Window specifications
// ---------------------------------------------------------------------------

// WindowSpec is (name? PARTITION BY … ORDER BY … frame). Name references a
// named window whose clauses this spec inherits (the walk() query uses
// `lt AS (leq ROWS UNBOUNDED PRECEDING EXCLUDE CURRENT ROW)`).
type WindowSpec struct {
	Name        string // inherited base window, "" if none
	PartitionBy []Expr
	OrderBy     []OrderItem
	Frame       *Frame
}

// FrameMode distinguishes ROWS from RANGE frames.
type FrameMode uint8

// Frame modes.
const (
	FrameRange FrameMode = iota // default: RANGE UNBOUNDED PRECEDING … CURRENT ROW (peers)
	FrameRows
)

// BoundType enumerates frame bound kinds.
type BoundType uint8

// Frame bound kinds.
const (
	BoundUnboundedPreceding BoundType = iota
	BoundPreceding                    // <n> PRECEDING
	BoundCurrentRow
	BoundFollowing // <n> FOLLOWING
	BoundUnboundedFollowing
)

// FrameBound is one end of a frame.
type FrameBound struct {
	Type   BoundType
	Offset Expr // for BoundPreceding/BoundFollowing
}

// Frame is a window frame clause.
type Frame struct {
	Mode           FrameMode
	Start, End     FrameBound
	ExcludeCurrent bool // EXCLUDE CURRENT ROW
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// SelectStatement wraps a Query as an executable statement.
type SelectStatement struct {
	Query *Query
}

// ColDef is a column definition in CREATE TABLE.
type ColDef struct {
	Name     string
	TypeName string
}

// CreateTable is CREATE TABLE name (col type, …).
type CreateTable struct {
	Name        string
	IfNotExists bool
	Cols        []ColDef
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// CreateIndex is CREATE INDEX [name] ON table (col) — declared hash
// indexes the planner may use for equality lookups.
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

// ParamDef is one function parameter.
type ParamDef struct {
	Name     string
	TypeName string
}

// CreateFunction is CREATE [OR REPLACE] FUNCTION name(params) RETURNS type
// AS $$ body $$ LANGUAGE lang. The body stays raw text here; the PL/SQL or
// SQL sub-parser processes it when the function is installed.
type CreateFunction struct {
	OrReplace  bool
	Name       string
	Params     []ParamDef
	ReturnType string
	Language   string // "plpgsql" or "sql" (lower-cased)
	Body       string
}

// DropFunction is DROP FUNCTION [IF EXISTS] name.
type DropFunction struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO table [(cols)] query.
type Insert struct {
	Table string
	Cols  []string
	Query *Query
}

// SetClause is one col = expr assignment in UPDATE.
type SetClause struct {
	Col  string
	Expr Expr
}

// Update is UPDATE table SET … [WHERE …].
type Update struct {
	Table string
	Alias string
	Sets  []SetClause
	Where Expr
}

// Delete is DELETE FROM table [WHERE …].
type Delete struct {
	Table string
	Alias string
	Where Expr
}

// TxnKind distinguishes the transaction-control statements.
type TxnKind int

const (
	TxnBegin    TxnKind = iota // BEGIN [WORK|TRANSACTION]
	TxnCommit                  // COMMIT [WORK|TRANSACTION]
	TxnRollback                // ROLLBACK [WORK|TRANSACTION]
)

func (k TxnKind) String() string {
	switch k {
	case TxnBegin:
		return "BEGIN"
	case TxnCommit:
		return "COMMIT"
	case TxnRollback:
		return "ROLLBACK"
	}
	return "TXN?"
}

// Transaction is one of BEGIN / COMMIT / ROLLBACK — the transaction
// block delimiters the engine's session-level transaction mode consumes.
type Transaction struct {
	Kind TxnKind
}

// Savepoint is SAVEPOINT <name>: a nested rollback point inside a
// transaction block.
type Savepoint struct {
	Name string
}

// RollbackTo is ROLLBACK [WORK|TRANSACTION] TO [SAVEPOINT] <name>:
// unwind the block's buffered writes (and in-block DDL) to the named
// savepoint without ending the block.
type RollbackTo struct {
	Name string
}

// ReleaseSavepoint is RELEASE [SAVEPOINT] <name>: destroy the named
// savepoint (and any established after it), keeping its effects.
type ReleaseSavepoint struct {
	Name string
}

// Explain is EXPLAIN [ANALYZE] <query>: the query is planned (through the
// same cache and options as execution, so UDF inlining and specialization
// show) and the plan tree renders as one text column. With Analyze the
// query also runs to completion under per-node instrumentation and each
// line carries its actuals (rows, batches, wall time).
//
// Exactly one of Query and Stmt is set: Stmt carries an UPDATE or DELETE
// target instead of a query, so index-assisted DML plans render too.
// EXPLAIN ANALYZE of a Stmt really executes the write.
type Explain struct {
	Query   *Query
	Stmt    Statement // UPDATE or DELETE when explaining DML; nil otherwise
	Analyze bool
}

func (*SelectStatement) isNode()  {}
func (*CreateIndex) isNode()      {}
func (*CreateTable) isNode()      {}
func (*DropTable) isNode()        {}
func (*CreateFunction) isNode()   {}
func (*DropFunction) isNode()     {}
func (*Insert) isNode()           {}
func (*Update) isNode()           {}
func (*Delete) isNode()           {}
func (*Transaction) isNode()      {}
func (*Savepoint) isNode()        {}
func (*RollbackTo) isNode()       {}
func (*ReleaseSavepoint) isNode() {}
func (*Explain) isNode()          {}
func (*Query) isNode()            {}

func (*SelectStatement) isStatement()  {}
func (*CreateIndex) isStatement()      {}
func (*CreateTable) isStatement()      {}
func (*DropTable) isStatement()        {}
func (*CreateFunction) isStatement()   {}
func (*DropFunction) isStatement()     {}
func (*Insert) isStatement()           {}
func (*Update) isStatement()           {}
func (*Delete) isStatement()           {}
func (*Transaction) isStatement()      {}
func (*Savepoint) isStatement()        {}
func (*RollbackTo) isStatement()       {}
func (*ReleaseSavepoint) isStatement() {}
func (*Explain) isStatement()          {}

// ---------------------------------------------------------------------------
// Construction helpers (heavily used by the compiler back end)
// ---------------------------------------------------------------------------

// Lit builds a literal expression.
func Lit(v sqltypes.Value) *Literal { return &Literal{Val: v} }

// IntLit builds an integer literal.
func IntLit(i int64) *Literal { return Lit(sqltypes.NewInt(i)) }

// BoolLit builds a boolean literal.
func BoolLit(b bool) *Literal { return Lit(sqltypes.NewBool(b)) }

// TextLit builds a text literal.
func TextLit(s string) *Literal { return Lit(sqltypes.NewText(s)) }

// NullLit builds a NULL literal.
func NullLit() *Literal { return Lit(sqltypes.Null) }

// Col builds an unqualified column reference.
func Col(name string) *ColumnRef { return &ColumnRef{Column: name} }

// QCol builds a qualified column reference.
func QCol(table, name string) *ColumnRef { return &ColumnRef{Table: table, Column: name} }

// Eq builds l = r.
func Eq(l, r Expr) *Binary { return &Binary{Op: "=", L: l, R: r} }

// SimpleSelect builds SELECT exprs… with optional aliases (parallel slices;
// aliases may be nil).
func SimpleSelect(exprs []Expr, aliases []string) *Select {
	items := make([]SelectItem, len(exprs))
	for i, e := range exprs {
		items[i] = SelectItem{Expr: e}
		if aliases != nil {
			items[i].Alias = aliases[i]
		}
	}
	return &Select{Items: items}
}

// WrapQuery wraps a bare Select (or other body) into a Query.
func WrapQuery(body QueryExpr) *Query { return &Query{Body: body} }

package sqlast

import (
	"fmt"
	"strings"

	"plsqlaway/internal/lexer"
)

// Deparse renders a statement back to SQL text. The output reparses to an
// identical AST (checked by property tests); the compiler relies on this to
// hand emitted queries to any engine session, and the plan cache uses it as
// a canonical key.
func Deparse(s Statement) string {
	var p printer
	p.statement(s)
	return p.sb.String()
}

// DeparseQuery renders a query.
func DeparseQuery(q *Query) string {
	var p printer
	p.query(q)
	return p.sb.String()
}

// DeparseExpr renders an expression.
func DeparseExpr(e Expr) string {
	var p printer
	p.expr(e, 0)
	return p.sb.String()
}

type printer struct {
	sb strings.Builder
}

func (p *printer) ws(s string)              { p.sb.WriteString(s) }
func (p *printer) wf(f string, args ...any) { fmt.Fprintf(&p.sb, f, args...) }
func (p *printer) ident(name string)        { p.ws(lexer.QuoteIdent(name)) }

func (p *printer) statement(s Statement) {
	switch s := s.(type) {
	case *SelectStatement:
		p.query(s.Query)
	case *CreateTable:
		p.ws("CREATE TABLE ")
		if s.IfNotExists {
			p.ws("IF NOT EXISTS ")
		}
		p.ident(s.Name)
		p.ws(" (")
		for i, c := range s.Cols {
			if i > 0 {
				p.ws(", ")
			}
			p.ident(c.Name)
			p.ws(" ")
			p.ws(c.TypeName)
		}
		p.ws(")")
	case *CreateIndex:
		p.ws("CREATE INDEX ")
		if s.Name != "" {
			p.ident(s.Name)
			p.ws(" ")
		}
		p.ws("ON ")
		p.ident(s.Table)
		p.ws(" (")
		p.ident(s.Column)
		p.ws(")")
	case *DropTable:
		p.ws("DROP TABLE ")
		if s.IfExists {
			p.ws("IF EXISTS ")
		}
		p.ident(s.Name)
	case *CreateFunction:
		p.ws("CREATE ")
		if s.OrReplace {
			p.ws("OR REPLACE ")
		}
		p.ws("FUNCTION ")
		p.ident(s.Name)
		p.ws("(")
		for i, prm := range s.Params {
			if i > 0 {
				p.ws(", ")
			}
			p.ident(prm.Name)
			p.ws(" ")
			p.ws(prm.TypeName)
		}
		p.ws(") RETURNS ")
		p.ws(s.ReturnType)
		p.ws(" AS $body$")
		p.ws(s.Body)
		p.ws("$body$ LANGUAGE ")
		p.ws(s.Language)
	case *DropFunction:
		p.ws("DROP FUNCTION ")
		if s.IfExists {
			p.ws("IF EXISTS ")
		}
		p.ident(s.Name)
	case *Insert:
		p.ws("INSERT INTO ")
		p.ident(s.Table)
		if len(s.Cols) > 0 {
			p.ws(" (")
			for i, c := range s.Cols {
				if i > 0 {
					p.ws(", ")
				}
				p.ident(c)
			}
			p.ws(")")
		}
		p.ws(" ")
		p.query(s.Query)
	case *Update:
		p.ws("UPDATE ")
		p.ident(s.Table)
		if s.Alias != "" {
			p.ws(" AS ")
			p.ident(s.Alias)
		}
		p.ws(" SET ")
		for i, sc := range s.Sets {
			if i > 0 {
				p.ws(", ")
			}
			p.ident(sc.Col)
			p.ws(" = ")
			p.expr(sc.Expr, 0)
		}
		if s.Where != nil {
			p.ws(" WHERE ")
			p.expr(s.Where, 0)
		}
	case *Delete:
		p.ws("DELETE FROM ")
		p.ident(s.Table)
		if s.Alias != "" {
			p.ws(" AS ")
			p.ident(s.Alias)
		}
		if s.Where != nil {
			p.ws(" WHERE ")
			p.expr(s.Where, 0)
		}
	case *Transaction:
		p.ws(s.Kind.String())
	case *Savepoint:
		p.ws("SAVEPOINT ")
		p.ident(s.Name)
	case *RollbackTo:
		p.ws("ROLLBACK TO SAVEPOINT ")
		p.ident(s.Name)
	case *ReleaseSavepoint:
		p.ws("RELEASE SAVEPOINT ")
		p.ident(s.Name)
	case *Explain:
		p.ws("EXPLAIN ")
		if s.Analyze {
			p.ws("ANALYZE ")
		}
		if s.Stmt != nil {
			p.statement(s.Stmt)
		} else {
			p.query(s.Query)
		}
	default:
		p.wf("/* unknown statement %T */", s)
	}
}

func (p *printer) query(q *Query) {
	if q.With != nil {
		p.ws("WITH ")
		if q.With.Iterate {
			p.ws("ITERATE ")
		} else if q.With.Recursive {
			p.ws("RECURSIVE ")
		}
		for i, cte := range q.With.CTEs {
			if i > 0 {
				p.ws(", ")
			}
			p.ident(cte.Name)
			if len(cte.ColNames) > 0 {
				p.ws("(")
				for j, c := range cte.ColNames {
					if j > 0 {
						p.ws(", ")
					}
					p.ident(c)
				}
				p.ws(")")
			}
			p.ws(" AS (")
			p.query(cte.Query)
			p.ws(")")
		}
		p.ws(" ")
	}
	p.queryExpr(q.Body, false)
	if len(q.OrderBy) > 0 {
		p.ws(" ORDER BY ")
		p.orderItems(q.OrderBy)
	}
	if q.Limit != nil {
		p.ws(" LIMIT ")
		p.expr(q.Limit, 0)
	}
	if q.Offset != nil {
		p.ws(" OFFSET ")
		p.expr(q.Offset, 0)
	}
}

func (p *printer) queryExpr(qe QueryExpr, parenthesize bool) {
	if parenthesize {
		p.ws("(")
		defer p.ws(")")
	}
	switch qe := qe.(type) {
	case *Select:
		p.selectBlock(qe)
	case *SetOp:
		// Left-associative chains print flat; nested right operands get
		// parens so parsing stays unambiguous.
		p.queryExpr(qe.L, isSetOp(qe.L) && setOpNeedsParens(qe.Op, qe.L))
		p.wf(" %s ", qe.Op)
		if qe.All {
			p.ws("ALL ")
		}
		p.queryExpr(qe.R, isSetOp(qe.R))
	case *Values:
		p.ws("VALUES ")
		for i, row := range qe.Rows {
			if i > 0 {
				p.ws(", ")
			}
			p.ws("(")
			for j, e := range row {
				if j > 0 {
					p.ws(", ")
				}
				p.expr(e, 0)
			}
			p.ws(")")
		}
	}
}

func isSetOp(qe QueryExpr) bool { _, ok := qe.(*SetOp); return ok }

func setOpNeedsParens(outer string, inner QueryExpr) bool {
	in, ok := inner.(*SetOp)
	if !ok {
		return false
	}
	// INTERSECT binds tighter than UNION/EXCEPT; parenthesize when the
	// nesting disagrees with that.
	return outer == "INTERSECT" && in.Op != "INTERSECT"
}

func (p *printer) selectBlock(s *Select) {
	p.ws("SELECT ")
	if s.Distinct {
		p.ws("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			p.ws(", ")
		}
		switch {
		case it.Star:
			p.ws("*")
		case it.TableStar != "":
			p.ident(it.TableStar)
			p.ws(".*")
		default:
			p.expr(it.Expr, 0)
			if it.Alias != "" {
				p.ws(" AS ")
				p.ident(it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		p.ws(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				p.ws(", ")
			}
			p.fromItem(f)
		}
	}
	if s.Where != nil {
		p.ws(" WHERE ")
		p.expr(s.Where, 0)
	}
	if len(s.GroupBy) > 0 {
		p.ws(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(e, 0)
		}
	}
	if s.Having != nil {
		p.ws(" HAVING ")
		p.expr(s.Having, 0)
	}
	if len(s.Windows) > 0 {
		p.ws(" WINDOW ")
		for i, w := range s.Windows {
			if i > 0 {
				p.ws(", ")
			}
			p.ident(w.Name)
			p.ws(" AS (")
			p.windowSpec(w.Spec)
			p.ws(")")
		}
	}
}

func (p *printer) fromItem(f FromItem) {
	switch f := f.(type) {
	case *TableRef:
		p.ident(f.Name)
		if f.Alias != "" {
			p.ws(" AS ")
			p.ident(f.Alias)
		}
	case *SubqueryRef:
		if f.Lateral {
			p.ws("LATERAL ")
		}
		p.ws("(")
		p.query(f.Query)
		p.ws(")")
		if f.Alias != "" {
			p.ws(" AS ")
			p.ident(f.Alias)
		}
		if len(f.ColAliases) > 0 {
			p.ws("(")
			for i, c := range f.ColAliases {
				if i > 0 {
					p.ws(", ")
				}
				p.ident(c)
			}
			p.ws(")")
		}
	case *Join:
		p.fromItem(f.L)
		p.wf(" %s ", f.Type)
		if j, ok := f.R.(*Join); ok {
			p.ws("(")
			p.fromItem(j)
			p.ws(")")
		} else {
			p.fromItem(f.R)
		}
		if f.On != nil {
			p.ws(" ON ")
			p.expr(f.On, 0)
		}
	}
}

func (p *printer) orderItems(items []OrderItem) {
	for i, o := range items {
		if i > 0 {
			p.ws(", ")
		}
		p.expr(o.Expr, 0)
		if o.Desc {
			p.ws(" DESC")
		}
	}
}

func (p *printer) windowSpec(w *WindowSpec) {
	first := true
	sep := func() {
		if !first {
			p.ws(" ")
		}
		first = false
	}
	if w.Name != "" {
		sep()
		p.ident(w.Name)
	}
	if len(w.PartitionBy) > 0 {
		sep()
		p.ws("PARTITION BY ")
		for i, e := range w.PartitionBy {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(e, 0)
		}
	}
	if len(w.OrderBy) > 0 {
		sep()
		p.ws("ORDER BY ")
		p.orderItems(w.OrderBy)
	}
	if w.Frame != nil {
		sep()
		fr := w.Frame
		if fr.Mode == FrameRows {
			p.ws("ROWS ")
		} else {
			p.ws("RANGE ")
		}
		if fr.End.Type == BoundCurrentRow && fr.Start.Type == BoundUnboundedPreceding && !frameHasExplicitEnd(fr) {
			p.frameBound(fr.Start)
		} else {
			p.ws("BETWEEN ")
			p.frameBound(fr.Start)
			p.ws(" AND ")
			p.frameBound(fr.End)
		}
		if fr.ExcludeCurrent {
			p.ws(" EXCLUDE CURRENT ROW")
		}
	}
}

// frameHasExplicitEnd: we always print the short form `ROWS <start>` when the
// end is CURRENT ROW, matching how the paper's queries are written.
func frameHasExplicitEnd(*Frame) bool { return false }

func (p *printer) frameBound(b FrameBound) {
	switch b.Type {
	case BoundUnboundedPreceding:
		p.ws("UNBOUNDED PRECEDING")
	case BoundPreceding:
		p.expr(b.Offset, 0)
		p.ws(" PRECEDING")
	case BoundCurrentRow:
		p.ws("CURRENT ROW")
	case BoundFollowing:
		p.expr(b.Offset, 0)
		p.ws(" FOLLOWING")
	case BoundUnboundedFollowing:
		p.ws("UNBOUNDED FOLLOWING")
	}
}

// Expression precedence levels; must mirror the parser.
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precUnary
	precPostfix
)

func binaryPrec(op string) int {
	switch op {
	case "OR":
		return precOr
	case "AND":
		return precAnd
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return precCmp
	case "+", "-", "||":
		return precAdd
	case "*", "/", "%":
		return precMul
	default:
		return precPostfix
	}
}

func (p *printer) expr(e Expr, minPrec int) {
	prec := exprPrec(e)
	if prec < minPrec {
		p.ws("(")
		defer p.ws(")")
	}
	switch e := e.(type) {
	case *Literal:
		p.ws(e.Val.SQLLiteral())
	case *ColumnRef:
		if e.Table != "" {
			p.ident(e.Table)
			p.ws(".")
		}
		p.ident(e.Column)
	case *Param:
		p.wf("$%d", e.Ordinal)
	case *Unary:
		if e.Op == "NOT" {
			p.ws("NOT ")
			p.expr(e.X, precNot)
		} else {
			p.ws(e.Op)
			p.expr(e.X, precUnary)
		}
	case *Binary:
		bp := binaryPrec(e.Op)
		p.expr(e.L, bp)
		p.wf(" %s ", e.Op)
		p.expr(e.R, bp+1)
	case *IsNull:
		p.expr(e.X, precCmp+1)
		if e.Negate {
			p.ws(" IS NOT NULL")
		} else {
			p.ws(" IS NULL")
		}
	case *Between:
		p.expr(e.X, precCmp+1)
		if e.Negate {
			p.ws(" NOT")
		}
		p.ws(" BETWEEN ")
		p.expr(e.Lo, precAdd)
		p.ws(" AND ")
		p.expr(e.Hi, precAdd)
	case *InList:
		p.expr(e.X, precCmp+1)
		if e.Negate {
			p.ws(" NOT")
		}
		p.ws(" IN (")
		for i, x := range e.List {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(x, 0)
		}
		p.ws(")")
	case *InSubquery:
		p.expr(e.X, precCmp+1)
		if e.Negate {
			p.ws(" NOT")
		}
		p.ws(" IN (")
		p.query(e.Sub)
		p.ws(")")
	case *Exists:
		if e.Negate {
			p.ws("NOT ")
		}
		p.ws("EXISTS (")
		p.query(e.Sub)
		p.ws(")")
	case *ScalarSubquery:
		p.ws("(")
		p.query(e.Sub)
		p.ws(")")
	case *Case:
		p.ws("CASE")
		if e.Operand != nil {
			p.ws(" ")
			p.expr(e.Operand, 0)
		}
		for _, w := range e.Whens {
			p.ws(" WHEN ")
			p.expr(w.Cond, 0)
			p.ws(" THEN ")
			p.expr(w.Result, 0)
		}
		if e.Else != nil {
			p.ws(" ELSE ")
			p.expr(e.Else, 0)
		}
		p.ws(" END")
	case *FuncCall:
		p.ident(e.Name)
		p.ws("(")
		if e.Star {
			p.ws("*")
		} else {
			if e.Distinct {
				p.ws("DISTINCT ")
			}
			for i, a := range e.Args {
				if i > 0 {
					p.ws(", ")
				}
				p.expr(a, 0)
			}
		}
		p.ws(")")
		if e.OverName != "" {
			p.ws(" OVER ")
			p.ident(e.OverName)
		} else if e.Over != nil {
			p.ws(" OVER (")
			p.windowSpec(e.Over)
			p.ws(")")
		}
	case *Cast:
		p.ws("CAST(")
		p.expr(e.X, 0)
		p.ws(" AS ")
		p.ws(e.TypeName)
		p.ws(")")
	case *RowExpr:
		p.ws("ROW(")
		for i, f := range e.Fields {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(f, 0)
		}
		p.ws(")")
	case *FieldAccess:
		p.ws("(")
		p.expr(e.X, 0)
		p.ws(").")
		p.ident(e.Field)
	default:
		p.wf("/* unknown expr %T */", e)
	}
}

func exprPrec(e Expr) int {
	switch e := e.(type) {
	case *Binary:
		return binaryPrec(e.Op)
	case *Unary:
		if e.Op == "NOT" {
			return precNot
		}
		return precUnary
	case *IsNull, *Between, *InList, *InSubquery:
		return precCmp
	default:
		return precPostfix
	}
}

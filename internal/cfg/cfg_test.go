package cfg

import (
	"strings"
	"testing"

	"plsqlaway/internal/plparser"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqlparser"
)

func build(t *testing.T, src string) (*Graph, error) {
	t.Helper()
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatalf("sql parse: %v", err)
	}
	f, err := plparser.ParseFunction(stmt.(*sqlast.CreateFunction))
	if err != nil {
		t.Fatalf("pl parse: %v", err)
	}
	return Build(f)
}

func mustBuild(t *testing.T, src string) *Graph {
	t.Helper()
	g, err := build(t, src)
	if err != nil {
		t.Fatalf("cfg build: %v", err)
	}
	return g
}

const whileSrc = `CREATE FUNCTION f(n int) RETURNS int AS $$
DECLARE acc int = 1;
BEGIN
  WHILE n > 0 LOOP
    acc = acc * n;
    n = n - 1;
  END LOOP;
  RETURN acc;
END;
$$ LANGUAGE plpgsql`

func TestWhileLowering(t *testing.T) {
	g := mustBuild(t, whileSrc)
	// entry, head, body, exit
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks: %d\n%s", len(g.Blocks), g.Dump())
	}
	head := g.Blocks[1]
	if head.Term.Kind != TermCondJump {
		t.Errorf("loop head should cond-jump:\n%s", g.Dump())
	}
	body := g.Blocks[head.Term.Then]
	if body.Term.Kind != TermJump || body.Term.Then != head.ID {
		t.Errorf("body should jump back to head:\n%s", g.Dump())
	}
	exit := g.Blocks[head.Term.Else]
	if exit.Term.Kind != TermReturn {
		t.Errorf("exit should return:\n%s", g.Dump())
	}
}

func TestDeclInitializationOrder(t *testing.T) {
	g := mustBuild(t, `CREATE FUNCTION f() RETURNS int AS $$
DECLARE a int = 1; b int; c int = 2;
BEGIN RETURN a; END;
$$ LANGUAGE plpgsql`)
	entry := g.Blocks[g.Entry]
	if len(entry.Instrs) != 3 {
		t.Fatalf("entry instrs: %d", len(entry.Instrs))
	}
	if entry.Instrs[0].Var != "a" || entry.Instrs[1].Var != "b" || entry.Instrs[2].Var != "c" {
		t.Errorf("decl order: %v", entry.Instrs)
	}
	if sqlast.DeparseExpr(entry.Instrs[1].Expr) != "NULL" {
		t.Errorf("uninitialized decl should be NULL, got %s", sqlast.DeparseExpr(entry.Instrs[1].Expr))
	}
}

func TestForLoweringEvaluatesBoundsOnce(t *testing.T) {
	g := mustBuild(t, `CREATE FUNCTION f(n int) RETURNS int AS $$
DECLARE s int = 0;
BEGIN
  FOR i IN 1..n * 2 LOOP
    s = s + i;
  END LOOP;
  RETURN s;
END;
$$ LANGUAGE plpgsql`)
	d := g.Dump()
	// The bound lands in a temp assigned once, before the loop.
	if !strings.Contains(d, "to$1 <- n * 2") {
		t.Errorf("bound temp missing:\n%s", d)
	}
	if strings.Count(d, "n * 2") != 1 {
		t.Errorf("bound should be evaluated once:\n%s", d)
	}
}

func TestExitContinueTargets(t *testing.T) {
	g := mustBuild(t, `CREATE FUNCTION f() RETURNS int AS $$
DECLARE i int = 0;
BEGIN
  LOOP
    i = i + 1;
    CONTINUE WHEN i % 2 = 0;
    EXIT WHEN i > 10;
  END LOOP;
  RETURN i;
END;
$$ LANGUAGE plpgsql`)
	// must terminate in a RETURN-reachable graph (no dangling blocks)
	reach := 0
	for range g.Blocks {
		reach++
	}
	if reach == 0 {
		t.Fatal("no blocks")
	}
	d := g.Dump()
	if !strings.Contains(d, "if i % 2 = 0 then goto") {
		t.Errorf("CONTINUE WHEN lowering missing:\n%s", d)
	}
}

func TestLabeledExitCrossesLoops(t *testing.T) {
	g := mustBuild(t, `CREATE FUNCTION f() RETURNS int AS $$
DECLARE i int = 0;
BEGIN
  <<outer>>
  LOOP
    LOOP
      i = i + 1;
      EXIT outer WHEN i > 3;
    END LOOP;
  END LOOP;
  RETURN i;
END;
$$ LANGUAGE plpgsql`)
	if g == nil {
		t.Fatal("nil graph")
	}
}

func TestMissingReturnRejected(t *testing.T) {
	_, err := build(t, `CREATE FUNCTION f(n int) RETURNS int AS $$
BEGIN
  IF n > 0 THEN RETURN 1; END IF;
END;
$$ LANGUAGE plpgsql`)
	if err == nil || !strings.Contains(err.Error(), "without RETURN") {
		t.Errorf("want missing-RETURN error, got %v", err)
	}
}

func TestAllPathsReturnAccepted(t *testing.T) {
	g := mustBuild(t, `CREATE FUNCTION f(n int) RETURNS int AS $$
BEGIN
  IF n > 0 THEN RETURN 1; ELSE RETURN 2; END IF;
END;
$$ LANGUAGE plpgsql`)
	if g == nil {
		t.Fatal("nil graph")
	}
}

func TestRaiseExceptionRejected(t *testing.T) {
	_, err := build(t, `CREATE FUNCTION f() RETURNS int AS $$
BEGIN
  RAISE EXCEPTION 'no';
  RETURN 1;
END;
$$ LANGUAGE plpgsql`)
	if err == nil || !strings.Contains(err.Error(), "RAISE EXCEPTION") {
		t.Errorf("want rejection, got %v", err)
	}
}

func TestRaiseNoticeWarned(t *testing.T) {
	g := mustBuild(t, `CREATE FUNCTION f() RETURNS int AS $$
BEGIN
  RAISE NOTICE 'hi';
  RETURN 1;
END;
$$ LANGUAGE plpgsql`)
	if len(g.Warnings) != 1 {
		t.Errorf("warnings: %v", g.Warnings)
	}
}

func TestPerformBecomesEffectfulInstr(t *testing.T) {
	g := mustBuild(t, `CREATE FUNCTION f() RETURNS int AS $$
BEGIN
  PERFORM SELECT 1;
  RETURN 0;
END;
$$ LANGUAGE plpgsql`)
	found := false
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if strings.HasPrefix(in.Var, "perform$") {
				found = true
				if !in.Effectful {
					t.Error("PERFORM instr must be effectful")
				}
			}
		}
	}
	if !found {
		t.Errorf("no perform instr:\n%s", g.Dump())
	}
}

func TestEffectfulDetection(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"1 + 2", false},
		{"abs(x)", false},
		{"random()", true},
		{"1 + random() * 2", true},
		{"(SELECT random())", true},
		{"(SELECT a FROM t)", false},
		{"myudf(3)", true}, // unknown function: conservative
	}
	for _, c := range cases {
		e, err := sqlparser.ParseExpr(c.expr)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		if got := isEffectful(e); got != c.want {
			t.Errorf("isEffectful(%s) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestUnreachableCodeAfterReturnDropped(t *testing.T) {
	g := mustBuild(t, `CREATE FUNCTION f() RETURNS int AS $$
BEGIN
  RETURN 1;
  RETURN 2;
END;
$$ LANGUAGE plpgsql`)
	if strings.Contains(g.Dump(), "return 2") {
		t.Errorf("unreachable RETURN survived:\n%s", g.Dump())
	}
}

func TestAssignToUndeclaredRejected(t *testing.T) {
	_, err := build(t, `CREATE FUNCTION f() RETURNS int AS $$
BEGIN
  nosuch = 1;
  RETURN 0;
END;
$$ LANGUAGE plpgsql`)
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("want undeclared-variable error, got %v", err)
	}
}

func TestPredsSuccs(t *testing.T) {
	g := mustBuild(t, whileSrc)
	preds := g.Preds()
	head := g.Blocks[1]
	if len(preds[head.ID]) != 2 {
		t.Errorf("loop head should have 2 preds (entry + back edge), got %d", len(preds[head.ID]))
	}
	if n := len(g.Succs(head.ID)); n != 2 {
		t.Errorf("cond block should have 2 succs, got %d", n)
	}
}

// Package cfg lowers a PL/pgSQL function body into a control-flow graph of
// basic blocks whose only control constructs are goto, conditional goto,
// and return — the first half of the paper's SSA step: "the zoo of PL/SQL
// control flow constructs … are now exclusively expressed in terms of goto
// and jump labels Lx" (Figure 5).
package cfg

import (
	"fmt"
	"strings"

	"plsqlaway/internal/plast"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqltypes"
)

// BlockID identifies a basic block.
type BlockID int

// Instr is one assignment: Var = Expr. Effectful instructions (volatile
// calls, PERFORM wrappers) survive dead-code elimination even when unused.
type Instr struct {
	Var       string
	Expr      sqlast.Expr
	Effectful bool
}

// TermKind classifies block terminators.
type TermKind uint8

// Terminator kinds.
const (
	TermJump TermKind = iota
	TermCondJump
	TermReturn
)

// Terminator ends a block.
type Terminator struct {
	Kind TermKind
	Cond sqlast.Expr // TermCondJump
	Then BlockID     // TermJump target / TermCondJump true target
	Else BlockID     // TermCondJump false target
	Ret  sqlast.Expr // TermReturn
}

// Block is one basic block.
type Block struct {
	ID     BlockID
	Instrs []Instr
	Term   Terminator
}

// Graph is the CFG of one function.
type Graph struct {
	Name       string
	Params     []plast.Param
	ReturnType sqltypes.Type
	// VarTypes maps every function variable (parameters, declarations,
	// loop variables, compiler temporaries) to its declared type.
	VarTypes map[string]sqltypes.Type
	// VarOrder lists variables in declaration order (deterministic output).
	VarOrder []string
	Blocks   []*Block
	Entry    BlockID
	// Warnings collects constructs dropped with a note (RAISE NOTICE).
	Warnings []string
}

// Block returns the block with the given id.
func (g *Graph) Block(id BlockID) *Block { return g.Blocks[id] }

// Preds computes the predecessor lists.
func (g *Graph) Preds() [][]BlockID {
	preds := make([][]BlockID, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range g.Succs(b.ID) {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// Succs returns the successor blocks of id.
func (g *Graph) Succs(id BlockID) []BlockID {
	t := g.Blocks[id].Term
	switch t.Kind {
	case TermJump:
		return []BlockID{t.Then}
	case TermCondJump:
		if t.Then == t.Else {
			return []BlockID{t.Then}
		}
		return []BlockID{t.Then, t.Else}
	default:
		return nil
	}
}

// IsVar reports whether name is a function variable.
func (g *Graph) IsVar(name string) bool {
	_, ok := g.VarTypes[name]
	return ok
}

// Dump renders the graph in the paper's Figure 5 style.
func (g *Graph) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "function %s(", g.Name)
	for i, p := range g.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Name)
	}
	sb.WriteString(")\n{\n")
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "L%d:\n", b.ID)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s <- %s\n", in.Var, sqlast.DeparseExpr(in.Expr))
		}
		switch b.Term.Kind {
		case TermJump:
			fmt.Fprintf(&sb, "  goto L%d\n", b.Term.Then)
		case TermCondJump:
			fmt.Fprintf(&sb, "  if %s then goto L%d else goto L%d\n",
				sqlast.DeparseExpr(b.Term.Cond), b.Term.Then, b.Term.Else)
		case TermReturn:
			fmt.Fprintf(&sb, "  return %s\n", sqlast.DeparseExpr(b.Term.Ret))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// loopCtx tracks EXIT/CONTINUE targets.
type loopCtx struct {
	label       string
	breakTarget BlockID
	continueTgt BlockID
}

type builder struct {
	g      *Graph
	cur    BlockID
	closed bool // current block already has a terminator
	loops  []loopCtx
	temp   int
}

// Build lowers a parsed PL/pgSQL function to a CFG. Functions containing
// RAISE EXCEPTION cannot be compiled away (aborts are side effects);
// RAISE NOTICE is dropped with a warning, PERFORM becomes an effectful
// assignment to a discard temporary.
func Build(f *plast.Function) (*Graph, error) {
	g := &Graph{
		Name:       f.Name,
		Params:     f.Params,
		ReturnType: f.ReturnType,
		VarTypes:   make(map[string]sqltypes.Type),
	}
	addVar := func(name string, t sqltypes.Type) error {
		if _, dup := g.VarTypes[name]; dup {
			return fmt.Errorf("cfg: duplicate variable %q", name)
		}
		g.VarTypes[name] = t
		g.VarOrder = append(g.VarOrder, name)
		return nil
	}
	for _, p := range f.Params {
		if err := addVar(p.Name, p.Type); err != nil {
			return nil, err
		}
	}
	for _, d := range f.Decls {
		if err := addVar(d.Name, d.Type); err != nil {
			return nil, err
		}
	}

	b := &builder{g: g}
	entry := b.newBlock()
	g.Entry = entry
	b.cur = entry

	// Declarations initialize in order; uninitialized ones start NULL so
	// every variable has a definition before any use (SSA needs this).
	for _, d := range f.Decls {
		init := d.Init
		if init == nil {
			init = sqlast.NullLit()
		}
		b.emit(Instr{Var: d.Name, Expr: init, Effectful: isEffectful(init)})
	}

	if err := b.stmts(f.Body); err != nil {
		return nil, err
	}
	if !b.closed {
		// PL/pgSQL raises "control reached end of function without RETURN"
		// at run time; we reject at compile time for scalar functions.
		return nil, fmt.Errorf("cfg: control can reach end of function %s without RETURN", f.Name)
	}
	return g, nil
}

func (b *builder) newBlock() BlockID {
	id := BlockID(len(b.g.Blocks))
	b.g.Blocks = append(b.g.Blocks, &Block{ID: id})
	return id
}

func (b *builder) emit(in Instr) {
	if b.closed {
		return // unreachable code after RETURN/EXIT — dropped
	}
	blk := b.g.Blocks[b.cur]
	blk.Instrs = append(blk.Instrs, in)
}

func (b *builder) terminate(t Terminator) {
	if b.closed {
		return
	}
	b.g.Blocks[b.cur].Term = t
	b.closed = true
}

func (b *builder) startBlock(id BlockID) {
	b.cur = id
	b.closed = false
}

func (b *builder) freshTemp(prefix string, t sqltypes.Type) string {
	b.temp++
	name := fmt.Sprintf("%s$%d", prefix, b.temp)
	b.g.VarTypes[name] = t
	b.g.VarOrder = append(b.g.VarOrder, name)
	return name
}

func (b *builder) stmts(list []plast.Stmt) error {
	for _, s := range list {
		if err := b.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) stmt(s plast.Stmt) error {
	switch s := s.(type) {
	case *plast.Assign:
		if !b.g.IsVar(s.Name) {
			return fmt.Errorf("cfg: assignment to undeclared variable %q", s.Name)
		}
		b.emit(Instr{Var: s.Name, Expr: s.Expr, Effectful: isEffectful(s.Expr)})
		return nil

	case *plast.If:
		return b.ifStmt(s)

	case *plast.Loop:
		head := b.newBlock()
		exit := b.newBlock()
		b.terminate(Terminator{Kind: TermJump, Then: head})
		b.startBlock(head)
		b.loops = append(b.loops, loopCtx{label: s.Label, breakTarget: exit, continueTgt: head})
		if err := b.stmts(s.Body); err != nil {
			return err
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.terminate(Terminator{Kind: TermJump, Then: head})
		b.startBlock(exit)
		return nil

	case *plast.While:
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.terminate(Terminator{Kind: TermJump, Then: head})
		b.startBlock(head)
		b.terminate(Terminator{Kind: TermCondJump, Cond: s.Cond, Then: body, Else: exit})
		b.startBlock(body)
		b.loops = append(b.loops, loopCtx{label: s.Label, breakTarget: exit, continueTgt: head})
		if err := b.stmts(s.Body); err != nil {
			return err
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.terminate(Terminator{Kind: TermJump, Then: head})
		b.startBlock(exit)
		return nil

	case *plast.ForRange:
		return b.forRange(s)

	case *plast.Exit:
		return b.exitOrContinue(s.Label, s.When, true)

	case *plast.Continue:
		return b.exitOrContinue(s.Label, s.When, false)

	case *plast.Return:
		b.terminate(Terminator{Kind: TermReturn, Ret: s.Expr})
		return nil

	case *plast.Perform:
		// PERFORM evaluates and discards; keep the evaluation via a
		// count(*) wrapper into an (effectful) discard temporary.
		tmp := b.freshTemp("perform", sqltypes.TypeInt)
		wrapped := &sqlast.ScalarSubquery{Sub: sqlast.WrapQuery(&sqlast.Select{
			Items: []sqlast.SelectItem{{Expr: &sqlast.FuncCall{Name: "count", Star: true}}},
			From: []sqlast.FromItem{&sqlast.SubqueryRef{
				Query: s.Query, Alias: "perform$q",
			}},
		})}
		b.emit(Instr{Var: tmp, Expr: wrapped, Effectful: true})
		return nil

	case *plast.Raise:
		if s.Level == "EXCEPTION" {
			return fmt.Errorf("cfg: RAISE EXCEPTION cannot be compiled away (aborting is a side effect); keep this function interpreted")
		}
		b.g.Warnings = append(b.g.Warnings, fmt.Sprintf("RAISE %s %q dropped during compilation", s.Level, s.Format))
		return nil

	case *plast.NullStmt:
		return nil

	default:
		return fmt.Errorf("cfg: unsupported statement %T", s)
	}
}

func (b *builder) ifStmt(s *plast.If) error {
	join := b.newBlock()
	joinUsed := false

	// Chain of arms: IF/ELSIF* / ELSE.
	arms := []plast.ElseIf{{Cond: s.Cond, Body: s.Then}}
	arms = append(arms, s.ElseIfs...)

	for _, arm := range arms {
		thenBlk := b.newBlock()
		elseBlk := b.newBlock()
		b.terminate(Terminator{Kind: TermCondJump, Cond: arm.Cond, Then: thenBlk, Else: elseBlk})
		b.startBlock(thenBlk)
		if err := b.stmts(arm.Body); err != nil {
			return err
		}
		if !b.closed {
			joinUsed = true
			b.terminate(Terminator{Kind: TermJump, Then: join})
		}
		b.startBlock(elseBlk)
	}
	if err := b.stmts(s.Else); err != nil {
		return err
	}
	if !b.closed {
		joinUsed = true
		b.terminate(Terminator{Kind: TermJump, Then: join})
	}
	b.startBlock(join)
	if !joinUsed {
		// All paths returned/jumped elsewhere: join block is unreachable;
		// mark it closed with a self-loop-free return of NULL — it will be
		// pruned as unreachable by the SSA cleanup.
		b.terminate(Terminator{Kind: TermReturn, Ret: sqlast.NullLit()})
		b.closed = true
	}
	return nil
}

func (b *builder) forRange(s *plast.ForRange) error {
	if _, known := b.g.VarTypes[s.Var]; !known {
		b.g.VarTypes[s.Var] = sqltypes.TypeInt
		b.g.VarOrder = append(b.g.VarOrder, s.Var)
	}
	// Bounds and step evaluate once, before the loop (PL/pgSQL semantics).
	toTmp := b.freshTemp("to", sqltypes.TypeInt)
	b.emit(Instr{Var: toTmp, Expr: s.To, Effectful: isEffectful(s.To)})
	stepExpr := s.Step
	if stepExpr == nil {
		stepExpr = sqlast.IntLit(1)
	}
	stepTmp := b.freshTemp("step", sqltypes.TypeInt)
	b.emit(Instr{Var: stepTmp, Expr: stepExpr, Effectful: isEffectful(stepExpr)})
	// Iteration is driven by a hidden counter, exactly like PL/pgSQL's
	// internal loop state: assigning to the loop variable inside the body
	// must not affect the iteration sequence.
	cnt := b.freshTemp("cnt", sqltypes.TypeInt)
	b.emit(Instr{Var: cnt, Expr: s.From, Effectful: isEffectful(s.From)})

	head := b.newBlock()
	body := b.newBlock()
	cont := b.newBlock()
	exit := b.newBlock()

	cmp := "<="
	if s.Reverse {
		cmp = ">="
	}
	b.terminate(Terminator{Kind: TermJump, Then: head})
	b.startBlock(head)
	b.terminate(Terminator{
		Kind: TermCondJump,
		Cond: &sqlast.Binary{Op: cmp, L: sqlast.Col(cnt), R: sqlast.Col(toTmp)},
		Then: body, Else: exit,
	})
	b.startBlock(body)
	b.emit(Instr{Var: s.Var, Expr: sqlast.Col(cnt)})
	b.loops = append(b.loops, loopCtx{label: s.Label, breakTarget: exit, continueTgt: cont})
	if err := b.stmts(s.Body); err != nil {
		return err
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.terminate(Terminator{Kind: TermJump, Then: cont})
	b.startBlock(cont)
	op := "+"
	if s.Reverse {
		op = "-"
	}
	b.emit(Instr{Var: cnt, Expr: &sqlast.Binary{Op: op, L: sqlast.Col(cnt), R: sqlast.Col(stepTmp)}})
	b.terminate(Terminator{Kind: TermJump, Then: head})
	b.startBlock(exit)
	return nil
}

func (b *builder) exitOrContinue(label string, when sqlast.Expr, isExit bool) error {
	var target BlockID = -1
	for i := len(b.loops) - 1; i >= 0; i-- {
		if label == "" || b.loops[i].label == label {
			if isExit {
				target = b.loops[i].breakTarget
			} else {
				target = b.loops[i].continueTgt
			}
			break
		}
	}
	if target < 0 {
		kw := "EXIT"
		if !isExit {
			kw = "CONTINUE"
		}
		return fmt.Errorf("cfg: %s with no matching loop%s", kw, labelNote(label))
	}
	if when == nil {
		b.terminate(Terminator{Kind: TermJump, Then: target})
		return nil
	}
	rest := b.newBlock()
	b.terminate(Terminator{Kind: TermCondJump, Cond: when, Then: target, Else: rest})
	b.startBlock(rest)
	return nil
}

func labelNote(l string) string {
	if l == "" {
		return ""
	}
	return fmt.Sprintf(" labeled %q", l)
}

// pureFuncs lists builtins known to be side-effect free; anything else
// (volatile builtins, user functions of unknown volatility) makes the
// containing instruction effectful so dead-code elimination keeps it.
var pureFuncs = map[string]bool{
	"abs": true, "sign": true, "floor": true, "ceil": true, "ceiling": true,
	"round": true, "trunc": true, "sqrt": true, "power": true, "pow": true,
	"mod": true, "exp": true, "ln": true, "log": true, "pi": true,
	"length": true, "char_length": true, "lower": true, "upper": true,
	"substr": true, "substring": true, "left": true, "right": true,
	"strpos": true, "replace": true, "concat": true, "ascii": true,
	"chr": true, "repeat": true, "ltrim": true, "rtrim": true, "btrim": true,
	"trim": true, "reverse": true, "md5hash": true, "coalesce": true,
	"nullif": true, "greatest": true, "least": true, "coord": true,
	"coord_x": true, "coord_y": true, "count": true, "sum": true,
	"avg": true, "min": true, "max": true, "bool_and": true, "bool_or": true,
	"string_agg": true, "row_number": true, "rank": true, "dense_rank": true,
	"lag": true, "lead": true, "first_value": true, "last_value": true,
}

// isEffectful reports whether an expression must be preserved even if its
// result is unused. sqlast.WalkExpr descends into subqueries, so volatile
// calls buried in embedded queries are found too.
func isEffectful(e sqlast.Expr) bool {
	found := false
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		if fc, ok := x.(*sqlast.FuncCall); ok && !pureFuncs[strings.ToLower(fc.Name)] {
			found = true
		}
		return !found
	})
	return found
}

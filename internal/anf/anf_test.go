package anf

import (
	"strings"
	"testing"

	"plsqlaway/internal/cfg"
	"plsqlaway/internal/plparser"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqlparser"
	"plsqlaway/internal/ssa"
)

func buildANF(t *testing.T, src string) *Program {
	t.Helper()
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatalf("sql parse: %v", err)
	}
	f, err := plparser.ParseFunction(stmt.(*sqlast.CreateFunction))
	if err != nil {
		t.Fatalf("pl parse: %v", err)
	}
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	s, err := ssa.Build(g)
	if err != nil {
		t.Fatalf("ssa: %v", err)
	}
	if err := ssa.Optimize(s); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	p, err := Build(s)
	if err != nil {
		t.Fatalf("anf: %v", err)
	}
	return p
}

const factSrc = `CREATE FUNCTION fact(n int) RETURNS int AS $$
DECLARE acc int = 1;
BEGIN
  WHILE n > 1 LOOP
    acc = acc * n;
    n = n - 1;
  END LOOP;
  RETURN acc;
END;
$$ LANGUAGE plpgsql`

func TestLoopBecomesTailRecursion(t *testing.T) {
	p := buildANF(t, factSrc)
	// One label function: the loop header, calling itself in tail position.
	var header *Fun
	for i := range p.Funs {
		if callsSelf(p.Funs[i].Body, p.Funs[i].Name) {
			header = &p.Funs[i]
		}
	}
	if header == nil {
		t.Fatalf("no self-recursive function:\n%s", p.Dump())
	}
	// φ variables become parameters.
	if len(header.Params) < 2 {
		t.Errorf("loop header should carry acc and n: %v", header.Params)
	}
}

func TestCallsOnlyInTailPosition(t *testing.T) {
	p := buildANF(t, factSrc)
	// By construction Lets never contain Calls in Rhs — verify.
	var check func(tm Term) bool
	check = func(tm Term) bool {
		switch x := tm.(type) {
		case *Let:
			// RHS is a SQL expression, never a Call term.
			return check(x.Body)
		case *If:
			return check(x.Then) && check(x.Else)
		case *Call, *Ret:
			return true
		}
		return false
	}
	for _, f := range p.Funs {
		if !check(f.Body) {
			t.Errorf("%s has a call outside tail position:\n%s", f.Name, p.Dump())
		}
	}
}

func TestInlineCollapsesStraightLine(t *testing.T) {
	// IF with returns in both arms: all the join/exit blocks inline away.
	p := buildANF(t, `CREATE FUNCTION f(n int) RETURNS int AS $$
BEGIN
  IF n > 0 THEN
    RETURN 1;
  ELSE
    RETURN -1;
  END IF;
END;
$$ LANGUAGE plpgsql`)
	if len(p.Funs) != 1 {
		t.Errorf("loop-less function should collapse to the entry function, got %d:\n%s", len(p.Funs), p.Dump())
	}
}

func TestEntryStaysACall(t *testing.T) {
	p := buildANF(t, factSrc)
	if p.Entry == nil {
		t.Fatal("entry must be a call")
	}
	if p.Fun(p.Entry.Fn) == nil {
		t.Fatalf("entry call target %s missing", p.Entry.Fn)
	}
}

func TestValidateCatchesArityMismatch(t *testing.T) {
	p := buildANF(t, factSrc)
	// Break a call arity.
	broken := false
	for i := range p.Funs {
		p.Funs[i].Body = rewriteCalls(p.Funs[i].Body, func(c *Call) Term {
			if len(c.Args) > 0 && !broken {
				broken = true
				return &Call{Fn: c.Fn, Args: c.Args[1:]}
			}
			return c
		})
	}
	if !broken {
		t.Skip("no call to break")
	}
	if err := Validate(p); err == nil {
		t.Error("arity mismatch must fail validation")
	}
}

func TestValidateCatchesUnboundVersion(t *testing.T) {
	p := buildANF(t, factSrc)
	p.Funs[0].Body = &Ret{Val: sqlast.Col("acc_99")}
	p.Types["acc_99"] = p.Types[p.Funs[0].Params[0]]
	if err := Validate(p); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("want unbound error, got %v", err)
	}
}

func TestDumpShape(t *testing.T) {
	p := buildANF(t, factSrc)
	d := p.Dump()
	for _, needle := range []string{"function fact(n)", "letrec", "let ", "if ", "in"} {
		if !strings.Contains(d, needle) {
			t.Errorf("dump missing %q:\n%s", needle, d)
		}
	}
}

func TestTypesCoverAllVersions(t *testing.T) {
	p := buildANF(t, factSrc)
	for _, f := range p.Funs {
		for _, prm := range f.Params {
			if _, ok := p.Types[prm]; !ok {
				t.Errorf("no type for parameter %s", prm)
			}
		}
	}
}

// Package anf translates SSA into administrative normal form — the paper's
// ANF step (Figure 6), following Chakravarty et al.'s functional perspective
// on SSA: every jump label Lx becomes a function Lx(), goto Lx becomes a
// call, φ-bound variables become call parameters, and free variables are
// lambda-lifted into explicit parameters. Loops turn into tail recursion;
// every call is in tail position, which is what makes the final WITH
// RECURSIVE translation possible.
package anf

import (
	"fmt"
	"sort"
	"strings"

	"plsqlaway/internal/cfg"
	"plsqlaway/internal/plast"
	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqltypes"
	"plsqlaway/internal/ssa"
)

// Term is an ANF term: let·in, if·then·else, tail call, or return value.
type Term interface{ isTerm() }

// Let binds Var to the SQL expression Rhs in Body.
type Let struct {
	Var       string
	Rhs       sqlast.Expr
	Body      Term
	Effectful bool
}

// If selects between two tail terms.
type If struct {
	Cond       sqlast.Expr
	Then, Else Term
}

// Call is a tail call to a label function.
type Call struct {
	Fn   string
	Args []sqlast.Expr
}

// Ret returns a value.
type Ret struct {
	Val sqlast.Expr
}

func (*Let) isTerm()  {}
func (*If) isTerm()   {}
func (*Call) isTerm() {}
func (*Ret) isTerm()  {}

// Fun is one letrec-bound label function.
type Fun struct {
	Name   string
	Params []string
	Body   Term
}

// Program is the ANF form of one PL/SQL function.
type Program struct {
	FnName     string
	OrigParams []plast.Param
	ReturnType sqltypes.Type
	Funs       []Fun
	Entry      *Call
	// Types maps every version name to its declared type (needed by the
	// UDF step for parameter declarations and NULL casts).
	Types    map[string]sqltypes.Type
	Warnings []string
}

// Fun returns the named function.
func (p *Program) Fun(name string) *Fun {
	for i := range p.Funs {
		if p.Funs[i].Name == name {
			return &p.Funs[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// translation
// ---------------------------------------------------------------------------

// Build translates SSA to ANF and simplifies by inlining label functions
// with a single call site (the paper's walk collapses to L1/L2 this way).
func Build(f *ssa.Func) (*Program, error) {
	p := &Program{
		FnName:     f.Name,
		OrigParams: f.Params,
		ReturnType: f.ReturnType,
		Types:      make(map[string]sqltypes.Type),
		Warnings:   f.Warnings,
	}
	for v, base := range f.VarBase {
		if t, ok := f.BaseTypes[base]; ok {
			p.Types[v] = t
		}
	}
	for _, prm := range f.Params {
		p.Types[prm.Name] = prm.Type
	}

	liveIn := versionLiveness(f)
	blocks := f.ReachableBlocks()

	if len(f.Blocks[f.Entry].Phis) != 0 {
		return nil, fmt.Errorf("anf: entry block unexpectedly has φ functions")
	}

	// Parameter layout per label function: φ vars first, then lifted
	// live-ins (sorted for determinism).
	paramsOf := map[cfg.BlockID][]string{}
	for _, b := range blocks {
		var params []string
		isPhi := map[string]bool{}
		for _, phi := range b.Phis {
			params = append(params, phi.Var)
			isPhi[phi.Var] = true
		}
		var lifted []string
		for v := range liveIn[b.ID] {
			if !isPhi[v] {
				lifted = append(lifted, v)
			}
		}
		sort.Strings(lifted)
		paramsOf[b.ID] = append(params, lifted...)
	}

	fname := func(id cfg.BlockID) string { return fmt.Sprintf("L%d", id) }

	mkCall := func(target cfg.BlockID, pred cfg.BlockID) (*Call, error) {
		tb := f.Blocks[target]
		call := &Call{Fn: fname(target)}
		phiOf := map[string]*ssa.Phi{}
		for i := range tb.Phis {
			phiOf[tb.Phis[i].Var] = &tb.Phis[i]
		}
		for _, prm := range paramsOf[target] {
			if phi, ok := phiOf[prm]; ok {
				val := ""
				for _, a := range phi.Args {
					if a.Pred == pred {
						val = a.Val
						break
					}
				}
				if val == "" {
					return nil, fmt.Errorf("anf: φ %s in %s has no argument for predecessor L%d", prm, fname(target), pred)
				}
				call.Args = append(call.Args, sqlast.Col(val))
				continue
			}
			// lambda-lifted live-in: same version visible at the call site
			call.Args = append(call.Args, sqlast.Col(prm))
		}
		return call, nil
	}

	for _, b := range blocks {
		var body Term
		switch b.Term.Kind {
		case cfg.TermReturn:
			body = &Ret{Val: b.Term.Ret}
		case cfg.TermJump:
			c, err := mkCall(b.Term.Then, b.ID)
			if err != nil {
				return nil, err
			}
			body = c
		case cfg.TermCondJump:
			thenC, err := mkCall(b.Term.Then, b.ID)
			if err != nil {
				return nil, err
			}
			elseC, err := mkCall(b.Term.Else, b.ID)
			if err != nil {
				return nil, err
			}
			body = &If{Cond: b.Term.Cond, Then: thenC, Else: elseC}
		}
		// Wrap instructions as nested lets, innermost last.
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			body = &Let{Var: in.Var, Rhs: in.Expr, Body: body, Effectful: in.Effectful}
		}
		p.Funs = append(p.Funs, Fun{Name: fname(b.ID), Params: paramsOf[b.ID], Body: body})
	}

	entry, err := mkCall(f.Entry, -1)
	if err != nil {
		return nil, err
	}
	p.Entry = entry

	inlineSingleUse(p)
	if err := Validate(p); err != nil {
		return nil, fmt.Errorf("anf: %w", err)
	}
	return p, nil
}

// versionLiveness computes live-in version sets per block (φ defs excluded;
// φ args count as uses at the end of the predecessor).
func versionLiveness(f *ssa.Func) map[cfg.BlockID]map[string]bool {
	blocks := f.ReachableBlocks()
	uses := func(e sqlast.Expr, out map[string]bool) {
		if e == nil {
			return
		}
		sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
			if cr, ok := x.(*sqlast.ColumnRef); ok && cr.Table == "" && f.IsVersion(cr.Column) {
				out[cr.Column] = true
			}
			return true
		})
	}

	type flow struct {
		gen  map[string]bool // upward-exposed uses
		kill map[string]bool // definitions (φ + instrs)
	}
	info := map[cfg.BlockID]*flow{}
	for _, b := range blocks {
		fl := &flow{gen: map[string]bool{}, kill: map[string]bool{}}
		for _, phi := range b.Phis {
			fl.kill[phi.Var] = true
		}
		add := func(e sqlast.Expr) {
			tmp := map[string]bool{}
			uses(e, tmp)
			for v := range tmp {
				if !fl.kill[v] {
					fl.gen[v] = true
				}
			}
		}
		for _, in := range b.Instrs {
			add(in.Expr)
			fl.kill[in.Var] = true
		}
		add(b.Term.Cond)
		add(b.Term.Ret)
		info[b.ID] = fl
	}

	liveIn := map[cfg.BlockID]map[string]bool{}
	for _, b := range blocks {
		liveIn[b.ID] = map[string]bool{}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range blocks {
			out := map[string]bool{}
			for _, s := range f.Succs(b.ID) {
				sb := f.Blocks[s]
				phiDef := map[string]bool{}
				for _, phi := range sb.Phis {
					phiDef[phi.Var] = true
					for _, a := range phi.Args {
						if a.Pred == b.ID && f.IsVersion(a.Val) {
							out[a.Val] = true
						}
					}
				}
				for v := range liveIn[s] {
					if !phiDef[v] {
						out[v] = true
					}
				}
			}
			fl := info[b.ID]
			in := liveIn[b.ID]
			for v := range fl.gen {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !fl.kill[v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return liveIn
}

// inlineSingleUse substitutes label functions called from exactly one site
// (and not self-recursive) into their caller, collapsing straight-line
// block scaffolding into the paper's compact letrec shape.
func inlineSingleUse(p *Program) {
	for rounds := 0; rounds < 50; rounds++ {
		counts := map[string]int{}
		countTerm(p.Entry, counts)
		for i := range p.Funs {
			countTerm(p.Funs[i].Body, counts)
		}
		// The entry call's target is never inlined — Program.Entry must
		// stay a call (loop-less functions are unfolded by the direct
		// emitter instead).
		counts[p.Entry.Fn] += 2
		target := ""
		for _, fn := range p.Funs {
			if counts[fn.Name] == 1 && !callsSelf(fn.Body, fn.Name) {
				target = fn.Name
				break
			}
		}
		if target == "" {
			return
		}
		fn := p.Fun(target)
		body := fn.Body
		params := fn.Params
		replace := func(t Term) Term {
			return rewriteCalls(t, func(c *Call) Term {
				if c.Fn != target {
					return c
				}
				sub := map[string]sqlast.Expr{}
				for i, prm := range params {
					sub[prm] = c.Args[i]
				}
				return substituteTerm(body, sub)
			})
		}
		var kept []Fun
		for _, f2 := range p.Funs {
			if f2.Name == target {
				continue
			}
			f2.Body = replace(f2.Body)
			kept = append(kept, f2)
		}
		p.Funs = kept
	}
}

func countTerm(t Term, counts map[string]int) {
	switch x := t.(type) {
	case *Let:
		countTerm(x.Body, counts)
	case *If:
		countTerm(x.Then, counts)
		countTerm(x.Else, counts)
	case *Call:
		counts[x.Fn]++
	}
}

func callsSelf(t Term, name string) bool {
	found := false
	walkTerm(t, func(tt Term) {
		if c, ok := tt.(*Call); ok && c.Fn == name {
			found = true
		}
	})
	return found
}

func walkTerm(t Term, fn func(Term)) {
	fn(t)
	switch x := t.(type) {
	case *Let:
		walkTerm(x.Body, fn)
	case *If:
		walkTerm(x.Then, fn)
		walkTerm(x.Else, fn)
	}
}

// rewriteCalls rebuilds t, replacing Call nodes via fn (which may return a
// whole substituted body).
func rewriteCalls(t Term, fn func(*Call) Term) Term {
	switch x := t.(type) {
	case *Let:
		c := *x
		c.Body = rewriteCalls(x.Body, fn)
		return &c
	case *If:
		c := *x
		c.Then = rewriteCalls(x.Then, fn)
		c.Else = rewriteCalls(x.Else, fn)
		return &c
	case *Call:
		return fn(x)
	default:
		return t
	}
}

// substituteTerm replaces parameter references with argument expressions,
// respecting let shadowing (SSA versions are unique per definition, but a
// let-bound version may coincide with a carried parameter name elsewhere).
func substituteTerm(t Term, sub map[string]sqlast.Expr) Term {
	if len(sub) == 0 {
		return t
	}
	rwExpr := func(e sqlast.Expr) sqlast.Expr {
		if e == nil {
			return nil
		}
		return sqlast.RewriteExpr(e, func(x sqlast.Expr) sqlast.Expr {
			if cr, ok := x.(*sqlast.ColumnRef); ok && cr.Table == "" {
				if r, ok := sub[cr.Column]; ok {
					return r
				}
			}
			return x
		})
	}
	switch x := t.(type) {
	case *Let:
		c := *x
		c.Rhs = rwExpr(x.Rhs)
		inner := sub
		if _, shadowed := sub[x.Var]; shadowed {
			inner = make(map[string]sqlast.Expr, len(sub)-1)
			for k, v := range sub {
				if k != x.Var {
					inner[k] = v
				}
			}
		}
		c.Body = substituteTerm(x.Body, inner)
		return &c
	case *If:
		c := *x
		c.Cond = rwExpr(x.Cond)
		c.Then = substituteTerm(x.Then, sub)
		c.Else = substituteTerm(x.Else, sub)
		return &c
	case *Call:
		c := &Call{Fn: x.Fn, Args: make([]sqlast.Expr, len(x.Args))}
		for i, a := range x.Args {
			c.Args[i] = rwExpr(a)
		}
		return c
	case *Ret:
		return &Ret{Val: rwExpr(x.Val)}
	default:
		return t
	}
}

// ---------------------------------------------------------------------------
// validation + printing
// ---------------------------------------------------------------------------

// Validate checks that calls reference existing functions with matching
// arity, and that every version used is bound (parameter or let).
func Validate(p *Program) error {
	arity := map[string]int{}
	for _, f := range p.Funs {
		arity[f.Name] = len(f.Params)
	}
	checkCall := func(c *Call) error {
		n, ok := arity[c.Fn]
		if !ok {
			return fmt.Errorf("call to undefined label function %s", c.Fn)
		}
		if len(c.Args) != n {
			return fmt.Errorf("call to %s has %d args, wants %d", c.Fn, len(c.Args), n)
		}
		return nil
	}
	isVersion := func(name string) bool {
		_, ok := p.Types[name]
		return ok
	}
	var checkTerm func(t Term, bound map[string]bool) error
	checkExpr := func(e sqlast.Expr, bound map[string]bool) error {
		var err error
		if e == nil {
			return nil
		}
		sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
			if cr, ok := x.(*sqlast.ColumnRef); ok && cr.Table == "" && isVersion(cr.Column) && !bound[cr.Column] {
				err = fmt.Errorf("version %s used unbound", cr.Column)
				return false
			}
			return true
		})
		return err
	}
	checkTerm = func(t Term, bound map[string]bool) error {
		switch x := t.(type) {
		case *Let:
			if err := checkExpr(x.Rhs, bound); err != nil {
				return err
			}
			b2 := map[string]bool{}
			for k := range bound {
				b2[k] = true
			}
			b2[x.Var] = true
			return checkTerm(x.Body, b2)
		case *If:
			if err := checkExpr(x.Cond, bound); err != nil {
				return err
			}
			if err := checkTerm(x.Then, bound); err != nil {
				return err
			}
			return checkTerm(x.Else, bound)
		case *Call:
			if err := checkCall(x); err != nil {
				return err
			}
			for _, a := range x.Args {
				if err := checkExpr(a, bound); err != nil {
					return err
				}
			}
			return nil
		case *Ret:
			return checkExpr(x.Val, bound)
		}
		return fmt.Errorf("unknown term %T", t)
	}
	for _, f := range p.Funs {
		bound := map[string]bool{}
		for _, prm := range f.Params {
			bound[prm] = true
		}
		if err := checkTerm(f.Body, bound); err != nil {
			return fmt.Errorf("in %s: %w", f.Name, err)
		}
	}
	entryBound := map[string]bool{}
	for _, prm := range p.OrigParams {
		entryBound[prm.Name] = true
	}
	if err := checkCall(p.Entry); err != nil {
		return err
	}
	for _, a := range p.Entry.Args {
		if err := checkExpr(a, entryBound); err != nil {
			return fmt.Errorf("in entry call: %w", err)
		}
	}
	return nil
}

// Dump renders the program in the paper's Figure 6 letrec style.
func (p *Program) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "function %s(", p.FnName)
	for i, prm := range p.OrigParams {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(prm.Name)
	}
	sb.WriteString(") =\n")
	for _, f := range p.Funs {
		fmt.Fprintf(&sb, "  letrec %s(%s) =\n", f.Name, strings.Join(f.Params, ", "))
		dumpTerm(&sb, f.Body, 2)
		sb.WriteString("  in\n")
	}
	fmt.Fprintf(&sb, "  %s\n", callString(p.Entry))
	return sb.String()
}

func callString(c *Call) string {
	var args []string
	for _, a := range c.Args {
		args = append(args, sqlast.DeparseExpr(a))
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(args, ", "))
}

func dumpTerm(sb *strings.Builder, t Term, depth int) {
	ind := strings.Repeat("  ", depth)
	switch x := t.(type) {
	case *Let:
		fmt.Fprintf(sb, "%slet %s = %s in\n", ind, x.Var, sqlast.DeparseExpr(x.Rhs))
		dumpTerm(sb, x.Body, depth)
	case *If:
		fmt.Fprintf(sb, "%sif %s then\n", ind, sqlast.DeparseExpr(x.Cond))
		dumpTerm(sb, x.Then, depth+1)
		fmt.Fprintf(sb, "%selse\n", ind)
		dumpTerm(sb, x.Else, depth+1)
	case *Call:
		fmt.Fprintf(sb, "%s%s\n", ind, callString(x))
	case *Ret:
		fmt.Fprintf(sb, "%s%s\n", ind, sqlast.DeparseExpr(x.Val))
	}
}

// Package plast defines the abstract syntax tree for PL/pgSQL function
// bodies: declarations, assignments, control flow (IF / LOOP / WHILE / FOR
// with EXIT and CONTINUE, optionally labeled), RETURN, PERFORM, and RAISE.
// Expressions inside statements are regular SQL expressions (sqlast.Expr),
// exactly as in PostgreSQL where the main parser is invoked for every
// PL/pgSQL expression.
package plast

import (
	"fmt"
	"strings"

	"plsqlaway/internal/sqlast"
	"plsqlaway/internal/sqltypes"
)

// Param is a function parameter with its declared type.
type Param struct {
	Name string
	Type sqltypes.Type
}

// Decl is one DECLARE entry: name type [= expr].
type Decl struct {
	Name string
	Type sqltypes.Type
	Init sqlast.Expr // nil means NULL-initialized
}

// Function is a parsed PL/pgSQL function.
type Function struct {
	Name       string
	Params     []Param
	ReturnType sqltypes.Type
	Decls      []Decl
	Body       []Stmt
	Source     string // original CREATE FUNCTION text (for diagnostics)
}

// Stmt is a PL/pgSQL statement.
type Stmt interface{ isStmt() }

// Assign is `name = expr;` (or `:=`).
type Assign struct {
	Name string
	Expr sqlast.Expr
}

// ElseIf is one ELSIF arm.
type ElseIf struct {
	Cond sqlast.Expr
	Body []Stmt
}

// If is IF … THEN … [ELSIF …]* [ELSE …] END IF.
type If struct {
	Cond    sqlast.Expr
	Then    []Stmt
	ElseIfs []ElseIf
	Else    []Stmt
}

// Loop is an unconditional LOOP … END LOOP, exited via EXIT.
type Loop struct {
	Label string
	Body  []Stmt
}

// While is WHILE cond LOOP … END LOOP.
type While struct {
	Label string
	Cond  sqlast.Expr
	Body  []Stmt
}

// ForRange is FOR var IN [REVERSE] from..to [BY step] LOOP … END LOOP.
type ForRange struct {
	Label   string
	Var     string
	From    sqlast.Expr
	To      sqlast.Expr
	Step    sqlast.Expr // nil means 1
	Reverse bool
	Body    []Stmt
}

// Exit is EXIT [label] [WHEN cond].
type Exit struct {
	Label string
	When  sqlast.Expr
}

// Continue is CONTINUE [label] [WHEN cond].
type Continue struct {
	Label string
	When  sqlast.Expr
}

// Return is RETURN expr.
type Return struct {
	Expr sqlast.Expr
}

// Perform is PERFORM query — evaluate and discard.
type Perform struct {
	Query *sqlast.Query
}

// Raise is RAISE [NOTICE|EXCEPTION] 'format' [, args].
// The interpreter renders % placeholders; EXCEPTION aborts execution.
// The compiler rejects functions containing RAISE EXCEPTION (side effects
// cannot be compiled away) but drops RAISE NOTICE with a warning.
type Raise struct {
	Level  string // "NOTICE" or "EXCEPTION"
	Format string
	Args   []sqlast.Expr
}

// NullStmt is the no-op statement NULL;.
type NullStmt struct{}

func (*Assign) isStmt()   {}
func (*If) isStmt()       {}
func (*Loop) isStmt()     {}
func (*While) isStmt()    {}
func (*ForRange) isStmt() {}
func (*Exit) isStmt()     {}
func (*Continue) isStmt() {}
func (*Return) isStmt()   {}
func (*Perform) isStmt()  {}
func (*Raise) isStmt()    {}
func (*NullStmt) isStmt() {}

// Dump renders the function in a compact, readable form used by golden
// tests and the plsqlc --emit=ast mode.
func (f *Function) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "function %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", p.Name, p.Type)
	}
	fmt.Fprintf(&sb, ") returns %s\n", f.ReturnType)
	for _, d := range f.Decls {
		fmt.Fprintf(&sb, "  declare %s %s", d.Name, d.Type)
		if d.Init != nil {
			fmt.Fprintf(&sb, " = %s", sqlast.DeparseExpr(d.Init))
		}
		sb.WriteString("\n")
	}
	dumpStmts(&sb, f.Body, 1)
	return sb.String()
}

func dumpStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *Assign:
			fmt.Fprintf(sb, "%s%s = %s\n", ind, s.Name, sqlast.DeparseExpr(s.Expr))
		case *If:
			fmt.Fprintf(sb, "%sif %s then\n", ind, sqlast.DeparseExpr(s.Cond))
			dumpStmts(sb, s.Then, depth+1)
			for _, ei := range s.ElseIfs {
				fmt.Fprintf(sb, "%selsif %s then\n", ind, sqlast.DeparseExpr(ei.Cond))
				dumpStmts(sb, ei.Body, depth+1)
			}
			if len(s.Else) > 0 {
				fmt.Fprintf(sb, "%selse\n", ind)
				dumpStmts(sb, s.Else, depth+1)
			}
			fmt.Fprintf(sb, "%send if\n", ind)
		case *Loop:
			fmt.Fprintf(sb, "%s%sloop\n", ind, labelPrefix(s.Label))
			dumpStmts(sb, s.Body, depth+1)
			fmt.Fprintf(sb, "%send loop\n", ind)
		case *While:
			fmt.Fprintf(sb, "%s%swhile %s loop\n", ind, labelPrefix(s.Label), sqlast.DeparseExpr(s.Cond))
			dumpStmts(sb, s.Body, depth+1)
			fmt.Fprintf(sb, "%send loop\n", ind)
		case *ForRange:
			rev := ""
			if s.Reverse {
				rev = "reverse "
			}
			fmt.Fprintf(sb, "%s%sfor %s in %s%s..%s", ind, labelPrefix(s.Label), s.Var, rev,
				sqlast.DeparseExpr(s.From), sqlast.DeparseExpr(s.To))
			if s.Step != nil {
				fmt.Fprintf(sb, " by %s", sqlast.DeparseExpr(s.Step))
			}
			sb.WriteString(" loop\n")
			dumpStmts(sb, s.Body, depth+1)
			fmt.Fprintf(sb, "%send loop\n", ind)
		case *Exit:
			fmt.Fprintf(sb, "%sexit%s%s\n", ind, labelSuffix(s.Label), whenSuffix(s.When))
		case *Continue:
			fmt.Fprintf(sb, "%scontinue%s%s\n", ind, labelSuffix(s.Label), whenSuffix(s.When))
		case *Return:
			fmt.Fprintf(sb, "%sreturn %s\n", ind, sqlast.DeparseExpr(s.Expr))
		case *Perform:
			fmt.Fprintf(sb, "%sperform %s\n", ind, sqlast.DeparseQuery(s.Query))
		case *Raise:
			fmt.Fprintf(sb, "%sraise %s %q\n", ind, strings.ToLower(s.Level), s.Format)
		case *NullStmt:
			fmt.Fprintf(sb, "%snull\n", ind)
		}
	}
}

func labelPrefix(l string) string {
	if l == "" {
		return ""
	}
	return "<<" + l + ">> "
}

func labelSuffix(l string) string {
	if l == "" {
		return ""
	}
	return " " + l
}

func whenSuffix(e sqlast.Expr) string {
	if e == nil {
		return ""
	}
	return " when " + sqlast.DeparseExpr(e)
}
